// Table 11: sample optimal concise previews — the paper's three measure
// combinations on film (Cov+Cov), music (RW+Cov) and tv (RW+Ent), all at
// k=5, n=10, rendered with sampled tuples.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/discoverer.h"
#include "core/tuple_sampler.h"
#include "io/preview_renderer.h"

namespace {

using namespace egp;

void ShowPreview(const char* domain_name, KeyMeasure km, NonKeyMeasure nm) {
  const GeneratedDomain& domain = bench::Domain(domain_name);
  PreparedSchemaOptions options;
  options.key_measure = km;
  options.nonkey_measure = nm;
  auto prepared = PreparedSchema::Create(domain.schema, options,
                                         &domain.graph);
  EGP_CHECK(prepared.ok()) << prepared.status().ToString();
  PreviewDiscoverer discoverer(std::move(prepared).value());

  DiscoveryOptions discovery;
  discovery.size = {5, 10};
  auto preview = discoverer.Discover(discovery);
  EGP_CHECK(preview.ok()) << preview.status().ToString();

  std::printf("\ndomain=%s, KS=%s, NKS=%s, k=5, n=10 (score %.4g)\n",
              domain_name, KeyMeasureName(km), NonKeyMeasureName(nm),
              preview->Score(discoverer.prepared()));
  std::printf("%s",
              DescribePreview(*preview, discoverer.prepared()).c_str());

  TupleSamplerOptions sampler;
  sampler.rows_per_table = 3;
  auto mat = MaterializePreview(domain.graph, discoverer.prepared(),
                                *preview, sampler);
  EGP_CHECK(mat.ok());
  RenderOptions render;
  render.max_cell_width = 28;
  render.show_direction = true;
  std::printf("%s", RenderPreview(domain.graph, *mat, render).c_str());
}

}  // namespace

int main() {
  egp::bench::PrintHeader("Table 11: sample optimal concise previews");
  ShowPreview("film", egp::KeyMeasure::kCoverage,
              egp::NonKeyMeasure::kCoverage);
  ShowPreview("music", egp::KeyMeasure::kRandomWalk,
              egp::NonKeyMeasure::kCoverage);
  ShowPreview("tv", egp::KeyMeasure::kRandomWalk,
              egp::NonKeyMeasure::kEntropy);
  std::printf(
      "\nExpected shape (paper Table 11): selected keys cover the domain's "
      "central types (FILM and its satellites; MUSICAL RECORDING/RELEASE; "
      "TV EPISODE/PROGRAM) with their busiest relationships as columns.\n");
  return 0;
}
