// Table 6 + Figures 10-14: time spent per existence-test question.
//
// Prints, per domain, the boxplot five-number summary of simulated
// per-question times for each approach (Figs. 10-14) and the approaches
// sorted ascending by median (Table 6).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "eval/user_study.h"

int main() {
  using namespace egp;
  bench::PrintHeader(
      "Figures 10-14: per-question time boxplots (seconds, simulated)");
  const UserStudyOptions options;

  for (size_t d = 0; d < kNumStudyDomains; ++d) {
    std::printf("\ndomain=%s\n", UserStudyDomains()[d].c_str());
    bench::PrintRow("approach", {"min", "q1", "median", "q3", "max"}, 12, 8);
    std::array<std::vector<double>, kNumApproaches> times;
    for (const Approach a : AllApproaches()) {
      const SimulatedResponses responses = SimulateCell(a, d, options);
      times[static_cast<size_t>(a)] = responses.seconds;
      const FiveNumberSummary s = Summarize(responses.seconds);
      bench::PrintRow(ApproachName(a),
                      {bench::FormatDouble(s.min, 1),
                       bench::FormatDouble(s.q1, 1),
                       bench::FormatDouble(s.median, 1),
                       bench::FormatDouble(s.q3, 1),
                       bench::FormatDouble(s.max, 1)},
                      12, 8);
    }
    const auto order = SortApproachesByMedianTime(times);
    std::string row = "Table 6 row, simulated (" + UserStudyDomains()[d] +
                      "):";
    for (const Approach a : order) {
      row += " ";
      row += ApproachName(a);
    }
    std::printf("%s\n", row.c_str());
    // The exact ordering from the embedded medians (noise-free).
    std::array<std::vector<double>, kNumApproaches> exact;
    for (const Approach a : AllApproaches()) {
      exact[static_cast<size_t>(a)] = {PaperTimeMedianSeconds(a, d)};
    }
    const auto paper_order = SortApproachesByMedianTime(exact);
    row = "Table 6 row, paper     (" + UserStudyDomains()[d] + "):";
    for (const Approach a : paper_order) {
      row += " ";
      row += ApproachName(a);
    }
    std::printf("%s\n", row.c_str());
  }
  std::printf(
      "\nExpected shape (paper Table 6): Tight is fastest in 3 of 5 domains "
      "and second in a fourth; Graph and YPS09 are generally slowest.\n");
  return 0;
}
