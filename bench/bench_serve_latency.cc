// HTTP serving latency/throughput benchmark — the serving half of the
// repo's tracked perf trajectory (BENCH_serve.json; BENCH_prepare.json
// covers the scoring pipeline underneath).
//
// Boots the real stack in one process — datagen graph(s) → Engine →
// PreviewService → HttpServer on an ephemeral loopback port — and
// drives POST /v1/preview through the real socket client at each
// requested concurrency. The prepared-schema cache is warmed first, so
// the numbers measure the serving path (parse → route → discover →
// sample → serialize → socket round-trip), not cold scoring builds.
//
//   bench_serve_latency [--domains basketball] [--scale 0.2]
//                       [--connections 1,8,64] [--requests 200]
//                       [--warmup 20] [--workers 0] [--rows 2]
//                       [--out FILE]
//
// Emits one JSON document (stdout or --out) validated by
// tools/validate_bench_json.py and recorded by tools/bench_to_json.sh
// (BENCH=serve).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/stat_util.h"
#include "common/strings.h"
#include "common/timer.h"
#include "datagen/generator.h"
#include "server/api.h"
#include "server/http_client.h"
#include "server/http_server.h"

namespace egp {
namespace {

struct Options {
  std::vector<std::string> domains = {"basketball"};
  double scale = 0.2;
  std::vector<int> connections = {1, 8, 64};
  int requests = 200;
  int warmup = 20;
  unsigned workers = 0;  // 0 = server default: max(2, hardware)
  int rows = 2;
  std::string out;
};

struct RunResult {
  int connections = 0;
  uint64_t completed = 0;
  uint64_t errors = 0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// egp::Quantile with the empty (all-errors) case mapped to 0.
double Percentile(const std::vector<double>& values, double q) {
  return values.empty() ? 0.0 : Quantile(values, q);
}

/// The request mix: same measure configuration (so the prepared cache
/// serves every request) but varying constraints, like an interactive
/// user refining a preview. With several datasets loaded, requests
/// cycle across them.
std::string RequestBody(int index, int rows,
                        const std::vector<std::string>& datasets) {
  const int k = 2 + index % 3;       // 2..4
  const int n = 4 + (index / 3) % 3 * 2;  // 4, 6, 8
  std::string body = "{";
  if (datasets.size() > 1) {
    body += "\"dataset\":\"" +
            datasets[static_cast<size_t>(index) % datasets.size()] + "\",";
  }
  body += "\"k\":" + std::to_string(k) + ",\"n\":" + std::to_string(n) +
          ",\"sample\":{\"rows\":" + std::to_string(rows) + ",\"seed\":7}}";
  return body;
}

RunResult DriveLoad(uint16_t port, int connections, int requests, int rows,
                    const std::vector<std::string>& datasets) {
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(connections));
  std::vector<uint64_t> errors(static_cast<size_t>(connections), 0);
  std::vector<std::thread> threads;
  Timer wall;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      HttpClient client("127.0.0.1", port, 60'000);
      auto& mine = latencies[static_cast<size_t>(c)];
      mine.reserve(static_cast<size_t>(requests));
      for (int r = 0; r < requests; ++r) {
        Timer timer;
        const auto response = client.Post(
            "/v1/preview", RequestBody(c * requests + r, rows, datasets));
        if (!response.ok() || response->status != 200 ||
            response->body.find("\"score\":") == std::string::npos) {
          ++errors[static_cast<size_t>(c)];
          client.Disconnect();
          continue;
        }
        mine.push_back(timer.ElapsedMillis());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  RunResult result;
  result.connections = connections;
  result.wall_seconds = wall.ElapsedSeconds();
  std::vector<double> all;
  for (const auto& per_connection : latencies) {
    all.insert(all.end(), per_connection.begin(), per_connection.end());
  }
  for (const uint64_t e : errors) result.errors += e;
  std::sort(all.begin(), all.end());
  result.completed = all.size();
  result.throughput_rps =
      result.wall_seconds > 0
          ? static_cast<double>(result.completed) / result.wall_seconds
          : 0.0;
  result.p50_ms = Percentile(all, 0.50);
  result.p90_ms = Percentile(all, 0.90);
  result.p99_ms = Percentile(all, 0.99);
  result.max_ms = all.empty() ? 0.0 : all.back();
  return result;
}

int Run(const Options& options) {
  // ---- Build the catalog from datagen domains.
  std::vector<std::pair<std::string, Engine>> engines;
  struct DatasetLine {
    std::string domain;
    size_t entities;
    size_t relationships;
  };
  std::vector<DatasetLine> dataset_lines;
  for (const std::string& domain : options.domains) {
    GeneratorOptions generator;
    generator.scale = options.scale;
    auto generated = GenerateDomainByName(domain, generator);
    if (!generated.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    dataset_lines.push_back(DatasetLine{domain,
                                        generated->graph.num_entities(),
                                        generated->graph.num_edges()});
    std::fprintf(stderr, "[%s] %zu entities, %zu relationships\n",
                 domain.c_str(), generated->graph.num_entities(),
                 generated->graph.num_edges());
    engines.emplace_back(domain,
                         Engine::FromGraph(std::move(generated->graph)));
  }
  auto catalog = DatasetCatalog::FromEngines(std::move(engines));
  if (!catalog.ok()) {
    std::fprintf(stderr, "error: %s\n", catalog.status().ToString().c_str());
    return 1;
  }

  // ---- Boot the real server on an ephemeral port.
  PreviewService service(std::move(catalog).value(), "bench");
  HttpServerOptions server_options;
  server_options.workers = options.workers;
  server_options.max_connections = 4096;
  auto server = HttpServer::Start(
      [&service](const HttpRequest& request) {
        return service.Handle(request);
      },
      server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "error: %s\n", server.status().ToString().c_str());
    return 1;
  }
  service.AttachServer(server->get());
  const uint16_t port = (*server)->port();

  // ---- Warm every dataset's prepared cache and the request mix.
  {
    HttpClient client("127.0.0.1", port, 120'000);
    for (const DatasetLine& line : dataset_lines) {
      for (int w = 0; w < options.warmup; ++w) {
        const std::string body =
            "{\"dataset\":\"" + line.domain + "\"," +
            RequestBody(w, options.rows, {}).substr(1);
        const auto response = client.Post("/v1/preview", body);
        if (!response.ok() || response->status != 200) {
          std::fprintf(stderr, "error: warmup request failed (%s)\n",
                       response.ok()
                           ? std::to_string(response->status).c_str()
                           : response.status().ToString().c_str());
          return 1;
        }
      }
    }
  }

  std::vector<RunResult> runs;
  for (const int connections : options.connections) {
    const RunResult result = DriveLoad(port, connections, options.requests,
                                       options.rows, options.domains);
    std::fprintf(stderr,
                 "[c=%d] %llu ok, %llu err, %.0f req/s, p50 %.3f ms, "
                 "p99 %.3f ms\n",
                 connections,
                 static_cast<unsigned long long>(result.completed),
                 static_cast<unsigned long long>(result.errors),
                 result.throughput_rps, result.p50_ms, result.p99_ms);
    runs.push_back(result);
  }
  (*server)->Shutdown();
  (*server)->Wait();

  // ---- Emit the document.
  std::string json = "{\n  \"bench\": \"bench_serve_latency\",\n";
  json += "  \"hardware_threads\": " + std::to_string(HardwareThreads()) +
          ",\n";
  json += "  \"workers\": " +
          std::to_string(options.workers == 0 ? std::max(2u, Threads())
                                              : options.workers) +
          ",\n";
  json += "  \"scale\": " + StrFormat("%g", options.scale) + ",\n";
  json += "  \"requests_per_connection\": " +
          std::to_string(options.requests) + ",\n";
  json += "  \"datasets\": [\n";
  for (size_t i = 0; i < dataset_lines.size(); ++i) {
    const DatasetLine& line = dataset_lines[i];
    json += "    {\"domain\": \"" + line.domain + "\", \"entities\": " +
            std::to_string(line.entities) + ", \"relationships\": " +
            std::to_string(line.relationships) + "}";
    json += i + 1 < dataset_lines.size() ? ",\n" : "\n";
  }
  json += "  ],\n  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& run = runs[i];
    json += "    {\"connections\": " + std::to_string(run.connections);
    json += ", \"completed\": " + std::to_string(run.completed);
    json += ", \"errors\": " + std::to_string(run.errors);
    json += ", \"wall_seconds\": " + StrFormat("%.6f", run.wall_seconds);
    json += ", \"throughput_rps\": " + StrFormat("%.2f", run.throughput_rps);
    json += ", \"p50_ms\": " + StrFormat("%.3f", run.p50_ms);
    json += ", \"p90_ms\": " + StrFormat("%.3f", run.p90_ms);
    json += ", \"p99_ms\": " + StrFormat("%.3f", run.p99_ms);
    json += ", \"max_ms\": " + StrFormat("%.3f", run.max_ms) + "}";
    json += i + 1 < runs.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  if (options.out.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* file = std::fopen(options.out.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", options.out.c_str());
      return 1;
    }
    std::fputs(json.c_str(), file);
    std::fclose(file);
    std::fprintf(stderr, "wrote %s\n", options.out.c_str());
  }
  return 0;
}

std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos
                                          : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace
}  // namespace egp

int main(int argc, char** argv) {
  egp::Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--domains") {
      options.domains = egp::SplitList(value());
    } else if (arg == "--scale") {
      options.scale = std::atof(value());
    } else if (arg == "--connections") {
      options.connections.clear();
      for (const std::string& item : egp::SplitList(value())) {
        options.connections.push_back(std::atoi(item.c_str()));
      }
    } else if (arg == "--requests") {
      options.requests = std::atoi(value());
    } else if (arg == "--warmup") {
      options.warmup = std::atoi(value());
    } else if (arg == "--workers") {
      options.workers = static_cast<unsigned>(std::atoi(value()));
    } else if (arg == "--rows") {
      options.rows = std::atoi(value());
    } else if (arg == "--out") {
      options.out = value();
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve_latency [--domains d1,d2] "
                   "[--scale S] [--connections c1,c2] [--requests N] "
                   "[--warmup N] [--workers N] [--rows N] [--out FILE]\n");
      return 2;
    }
  }
  if (options.domains.empty() || options.connections.empty() ||
      options.requests < 1) {
    std::fprintf(stderr, "error: empty domain/connection list or "
                         "requests < 1\n");
    return 2;
  }
  for (const int connections : options.connections) {
    if (connections < 1 || connections > 4096) {
      std::fprintf(stderr, "error: connections must be in [1, 4096]\n");
      return 2;
    }
  }
  return egp::Run(options);
}
