// HTTP serving latency/throughput benchmark — the serving half of the
// repo's tracked perf trajectory (BENCH_serve.json; BENCH_prepare.json
// covers the scoring pipeline underneath).
//
// Boots the real stack in one process — datagen graph(s) → Engine →
// PreviewService → HttpServer on an ephemeral loopback port — and
// drives POST /v1/preview through the real socket client at each
// requested concurrency. The prepared-schema cache is warmed first, so
// the numbers measure the serving path (parse → route → discover →
// sample → serialize → socket round-trip), not cold scoring builds.
//
//   bench_serve_latency [--domains basketball] [--scale 0.2]
//                       [--connections 1,8,64,256+1024s] [--requests 200]
//                       [--warmup 20] [--workers 0] [--rows 2]
//                       [--trickle-bytes 16] [--trickle-interval-ms 50]
//                       [--access-log PATH] [--out FILE]
//
// The measured runs serve with tracing AND the access log on (to
// --access-log, default /dev/null: the serialization and write are
// real, the bytes are discarded) — the committed trajectory must price
// the observability the production config pays for. Afterwards the
// largest hot-only run is repeated against a second server with
// tracing off, and the document records the delta as
// "tracing_overhead" — the standing answer to "what does tracing
// cost?". The same spec then runs once more with the 99 Hz sampling
// CPU profiler live for the whole window, recorded as
// "profiler_overhead" (gated to <=10% p99 by validate_bench_json.py on
// adequately-sized runs).
//
// Each --connections item is a run spec: a count of well-behaved
// (measured) connections, optionally followed by +Ns trickling slow
// clients and/or +Mc cold clients — e.g. "256+1024s" is 256 measured
// connections alongside 1024 clients dribbling their request bytes, and
// "64+4c" mixes in 4 clients issuing never-cached (cold) preview
// requests that exercise the admission controller. Slow and cold
// clients run for the whole measured window; only the well-behaved
// connections' latencies feed the percentiles, which is the point: the
// tracked regression gate is that misbehaving neighbors cost the server
// idle connections, not the well-behaved clients' tail.
//
// Every connection performs one unmeasured warmup request and then
// parks on a start barrier, so the measured window observes a steady
// state rather than the connect/accept storm.
//
// Emits one JSON document (stdout or --out) validated by
// tools/validate_bench_json.py and recorded by tools/bench_to_json.sh
// (BENCH=serve).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/parallel.h"
#include "common/profiler.h"
#include "common/stat_util.h"
#include "common/strings.h"
#include "common/timer.h"
#include "datagen/generator.h"
#include "server/access_log.h"
#include "server/api.h"
#include "server/http_client.h"
#include "server/http_server.h"

namespace egp {
namespace {

/// One run: `hot` measured connections plus misbehaving neighbors.
struct RunSpec {
  int hot = 0;   // well-behaved, measured
  int slow = 0;  // trickling request bytes for the whole window
  int cold = 0;  // issuing never-cached (cold) preview requests
};

struct Options {
  std::vector<std::string> domains = {"basketball"};
  double scale = 0.2;
  std::vector<RunSpec> connections = {{1, 0, 0}, {8, 0, 0}, {64, 0, 0}};
  int requests = 200;
  int warmup = 20;
  unsigned workers = 0;  // 0 = server default: max(2, hardware)
  int rows = 2;
  size_t trickle_bytes = 16;
  int trickle_interval_ms = 50;
  std::string access_log = "/dev/null";
  std::string out;
};

struct RunResult {
  RunSpec spec;
  uint64_t completed = 0;
  uint64_t errors = 0;
  uint64_t slow_completed = 0;
  uint64_t slow_errors = 0;
  uint64_t cold_completed = 0;  // admitted cold builds served 200
  uint64_t cold_shed = 0;       // 503s from the admission controller
  uint64_t cold_errors = 0;     // anything else
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Releases every warmed-up worker thread at once so the measured
/// window starts from a steady state.
class StartBarrier {
 public:
  explicit StartBarrier(int parties) : waiting_for_(parties) {}

  void Arrive() {
    MutexLock lock(&mu_);
    if (--waiting_for_ == 0) cv_.NotifyAll();
    while (!released_) cv_.Wait(mu_);
  }

  /// Blocks until all parties arrived, then releases them.
  void Release() {
    MutexLock lock(&mu_);
    while (waiting_for_ != 0) cv_.Wait(mu_);
    released_ = true;
    cv_.NotifyAll();
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int waiting_for_ EGP_GUARDED_BY(mu_);
  bool released_ EGP_GUARDED_BY(mu_) = false;
};

/// egp::Quantile with the empty (all-errors) case mapped to 0.
double Percentile(const std::vector<double>& values, double q) {
  return values.empty() ? 0.0 : Quantile(values, q);
}

/// The request mix: same measure configuration (so the prepared cache
/// serves every request) but varying constraints, like an interactive
/// user refining a preview. With several datasets loaded, requests
/// cycle across them.
std::string RequestBody(int index, int rows,
                        const std::vector<std::string>& datasets) {
  const int k = 2 + index % 3;       // 2..4
  const int n = 4 + (index / 3) % 3 * 2;  // 4, 6, 8
  std::string body = "{";
  if (datasets.size() > 1) {
    body += "\"dataset\":\"" +
            datasets[static_cast<size_t>(index) % datasets.size()] + "\",";
  }
  body += "\"k\":" + std::to_string(k) + ",\"n\":" + std::to_string(n) +
          ",\"sample\":{\"rows\":" + std::to_string(rows) + ",\"seed\":7}}";
  return body;
}

/// A preview request whose measure configuration has never been (and
/// will never again be) requested: the walk smoothing perturbation puts
/// it on a unique prepared-cache key, so serving it always means a cold
/// PreparedSchema build — the admission controller's cold path.
std::string ColdRequestBody(uint64_t unique, int rows) {
  return StrFormat(
      "{\"k\":2,\"n\":4,\"measures\":{\"key\":\"randomwalk\","
      "\"nonkey\":\"coverage\",\"walk\":{\"smoothing\":%.17g}},"
      "\"sample\":{\"rows\":%d,\"seed\":7}}",
      1e-5 * (1.0 + static_cast<double>(unique) * 1e-9), rows);
}

RunResult DriveLoad(uint16_t port, const RunSpec& spec, int requests,
                    int rows, const std::vector<std::string>& datasets,
                    size_t trickle_bytes, int trickle_interval_ms) {
  const int total = spec.hot + spec.slow + spec.cold;
  StartBarrier barrier(total);
  std::atomic<bool> stop{false};

  std::vector<std::vector<double>> latencies(static_cast<size_t>(spec.hot));
  std::vector<uint64_t> errors(static_cast<size_t>(spec.hot), 0);
  std::vector<std::thread> hot_threads;
  for (int c = 0; c < spec.hot; ++c) {
    hot_threads.emplace_back([&, c] {
      HttpClient client("127.0.0.1", port, 60'000);
      auto& mine = latencies[static_cast<size_t>(c)];
      mine.reserve(static_cast<size_t>(requests));
      // Per-connection warmup: absorb the connect + first-request cost
      // outside the measured window.
      (void)client.Post("/v1/preview", RequestBody(c, rows, datasets));
      barrier.Arrive();
      for (int r = 0; r < requests; ++r) {
        Timer timer;
        const auto response = client.Post(
            "/v1/preview", RequestBody(c * requests + r, rows, datasets));
        if (!response.ok() || response->status != 200 ||
            response->body.find("\"score\":") == std::string::npos) {
          ++errors[static_cast<size_t>(c)];
          client.Disconnect();
          continue;
        }
        mine.push_back(timer.ElapsedMillis());
      }
    });
  }

  std::vector<std::thread> noise_threads;
  std::vector<uint64_t> slow_completed(static_cast<size_t>(spec.slow), 0);
  std::vector<uint64_t> slow_errors(static_cast<size_t>(spec.slow), 0);
  for (int s = 0; s < spec.slow; ++s) {
    noise_threads.emplace_back([&, s] {
      HttpClient client("127.0.0.1", port, 60'000);
      (void)client.Post("/v1/preview", RequestBody(s, rows, datasets));  // warmup
      client.SetTrickle(trickle_bytes, trickle_interval_ms);
      barrier.Arrive();
      while (!stop.load(std::memory_order_acquire)) {
        const auto response = client.Post(
            "/v1/preview", RequestBody(s, rows, datasets));
        if (response.ok() && response->status == 200) {
          ++slow_completed[static_cast<size_t>(s)];
        } else {
          ++slow_errors[static_cast<size_t>(s)];
          client.Disconnect();
        }
      }
    });
  }

  std::vector<uint64_t> cold_completed(static_cast<size_t>(spec.cold), 0);
  std::vector<uint64_t> cold_shed(static_cast<size_t>(spec.cold), 0);
  std::vector<uint64_t> cold_errors(static_cast<size_t>(spec.cold), 0);
  for (int k = 0; k < spec.cold; ++k) {
    noise_threads.emplace_back([&, k] {
      HttpClient client("127.0.0.1", port, 60'000);
      (void)client.Post("/v1/preview", RequestBody(k, rows, datasets));  // warmup
      barrier.Arrive();
      for (uint64_t r = 0; !stop.load(std::memory_order_acquire); ++r) {
        const uint64_t unique =
            static_cast<uint64_t>(k) * 1'000'003 + r;  // globally distinct
        const auto response =
            client.Post("/v1/preview", ColdRequestBody(unique, rows));
        if (!response.ok()) {
          ++cold_errors[static_cast<size_t>(k)];
          client.Disconnect();
        } else if (response->status == 200) {
          ++cold_completed[static_cast<size_t>(k)];
        } else if (response->status == 503) {
          ++cold_shed[static_cast<size_t>(k)];
        } else {
          ++cold_errors[static_cast<size_t>(k)];
        }
      }
    });
  }

  barrier.Release();
  Timer wall;
  for (std::thread& thread : hot_threads) thread.join();
  const double wall_seconds = wall.ElapsedSeconds();
  stop.store(true, std::memory_order_release);
  for (std::thread& thread : noise_threads) thread.join();

  RunResult result;
  result.spec = spec;
  result.wall_seconds = wall_seconds;
  std::vector<double> all;
  for (const auto& per_connection : latencies) {
    all.insert(all.end(), per_connection.begin(), per_connection.end());
  }
  for (const uint64_t e : errors) result.errors += e;
  for (const uint64_t n : slow_completed) result.slow_completed += n;
  for (const uint64_t n : slow_errors) result.slow_errors += n;
  for (const uint64_t n : cold_completed) result.cold_completed += n;
  for (const uint64_t n : cold_shed) result.cold_shed += n;
  for (const uint64_t n : cold_errors) result.cold_errors += n;
  std::sort(all.begin(), all.end());
  result.completed = all.size();
  result.throughput_rps =
      result.wall_seconds > 0
          ? static_cast<double>(result.completed) / result.wall_seconds
          : 0.0;
  result.p50_ms = Percentile(all, 0.50);
  result.p90_ms = Percentile(all, 0.90);
  result.p99_ms = Percentile(all, 0.99);
  result.max_ms = all.empty() ? 0.0 : all.back();
  return result;
}

int Run(const Options& options) {
  // ---- Build the catalog from datagen domains.
  std::vector<std::pair<std::string, Engine>> engines;
  struct DatasetLine {
    std::string domain;
    size_t entities;
    size_t relationships;
  };
  std::vector<DatasetLine> dataset_lines;
  for (const std::string& domain : options.domains) {
    GeneratorOptions generator;
    generator.scale = options.scale;
    auto generated = GenerateDomainByName(domain, generator);
    if (!generated.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    dataset_lines.push_back(DatasetLine{domain,
                                        generated->graph.num_entities(),
                                        generated->graph.num_edges()});
    std::fprintf(stderr, "[%s] %zu entities, %zu relationships\n",
                 domain.c_str(), generated->graph.num_entities(),
                 generated->graph.num_edges());
    engines.emplace_back(domain,
                         Engine::FromGraph(std::move(generated->graph)));
  }
  auto catalog = DatasetCatalog::FromEngines(std::move(engines));
  if (!catalog.ok()) {
    std::fprintf(stderr, "error: %s\n", catalog.status().ToString().c_str());
    return 1;
  }

  // ---- Boot the real server on an ephemeral port, with the
  // observability of a production config: tracing on and every trace
  // written through the access log (default /dev/null — the
  // serialization and write are paid, the bytes are discarded).
  PreviewService service(std::move(catalog).value(), "bench");
  AccessLogOptions access_log_options;
  access_log_options.path = options.access_log;
  auto access_log = AccessLog::Open(access_log_options);
  if (!access_log.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 access_log.status().ToString().c_str());
    return 1;
  }
  HttpServerOptions server_options;
  server_options.workers = options.workers;
  server_options.max_connections = 8192;
  // The 1k+-connection runs open their sockets in one burst before the
  // start barrier; the default backlog would refuse part of the storm.
  server_options.listen_backlog = 4096;
  server_options.tracing = true;
  server_options.trace_sink = [log = access_log->get()](
                                  const RequestTrace& trace) {
    log->Write(trace);
  };
  auto server = HttpServer::Start(
      [&service](const HttpRequest& request) {
        return service.Handle(request);
      },
      server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "error: %s\n", server.status().ToString().c_str());
    return 1;
  }
  service.AttachServer(server->get());
  const uint16_t port = (*server)->port();

  // ---- Warm every dataset's prepared cache and the request mix.
  {
    HttpClient client("127.0.0.1", port, 120'000);
    for (const DatasetLine& line : dataset_lines) {
      for (int w = 0; w < options.warmup; ++w) {
        const std::string body =
            "{\"dataset\":\"" + line.domain + "\"," +
            RequestBody(w, options.rows, {}).substr(1);
        const auto response = client.Post("/v1/preview", body);
        if (!response.ok() || response->status != 200) {
          std::fprintf(stderr, "error: warmup request failed (%s)\n",
                       response.ok()
                           ? std::to_string(response->status).c_str()
                           : response.status().ToString().c_str());
          return 1;
        }
      }
    }
  }

  std::vector<RunResult> runs;
  for (const RunSpec& spec : options.connections) {
    const RunResult result =
        DriveLoad(port, spec, options.requests, options.rows, options.domains,
                  options.trickle_bytes, options.trickle_interval_ms);
    std::fprintf(stderr,
                 "[c=%d slow=%d cold=%d] %llu ok, %llu err, %.0f req/s, "
                 "p50 %.3f ms, p99 %.3f ms, max %.3f ms",
                 spec.hot, spec.slow, spec.cold,
                 static_cast<unsigned long long>(result.completed),
                 static_cast<unsigned long long>(result.errors),
                 result.throughput_rps, result.p50_ms, result.p99_ms,
                 result.max_ms);
    if (spec.slow > 0) {
      std::fprintf(stderr, ", slow %llu ok/%llu err",
                   static_cast<unsigned long long>(result.slow_completed),
                   static_cast<unsigned long long>(result.slow_errors));
    }
    if (spec.cold > 0) {
      std::fprintf(stderr, ", cold %llu built/%llu shed/%llu err",
                   static_cast<unsigned long long>(result.cold_completed),
                   static_cast<unsigned long long>(result.cold_shed),
                   static_cast<unsigned long long>(result.cold_errors));
    }
    std::fputc('\n', stderr);
    runs.push_back(result);
  }
  (*server)->Shutdown();
  (*server)->Wait();

  // ---- Tracing on/off A/B: repeat the largest hot-only run against a
  // second server with tracing disabled (same engines, already-warm
  // prepared cache) and record the delta.
  const RunResult* traced_baseline = nullptr;
  for (const RunResult& run : runs) {
    if (run.spec.slow != 0 || run.spec.cold != 0) continue;
    if (traced_baseline == nullptr ||
        run.spec.hot > traced_baseline->spec.hot) {
      traced_baseline = &run;
    }
  }
  RunResult untraced;
  if (traced_baseline != nullptr) {
    HttpServerOptions untraced_options = server_options;
    untraced_options.tracing = false;
    untraced_options.trace_sink = nullptr;
    auto off_server = HttpServer::Start(
        [&service](const HttpRequest& request) {
          return service.Handle(request);
        },
        untraced_options);
    if (!off_server.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   off_server.status().ToString().c_str());
      return 1;
    }
    service.AttachServer(off_server->get());
    untraced = DriveLoad((*off_server)->port(), traced_baseline->spec,
                         options.requests, options.rows, options.domains,
                         options.trickle_bytes, options.trickle_interval_ms);
    std::fprintf(stderr,
                 "[tracing off, c=%d] p99 %.3f ms vs traced %.3f ms\n",
                 traced_baseline->spec.hot, untraced.p99_ms,
                 traced_baseline->p99_ms);
    (*off_server)->Shutdown();
    (*off_server)->Wait();
  }

  // ---- Profiler on/off A/B: the same largest hot-only spec against a
  // third server (identical config to the traced baseline) with the
  // sampling profiler collecting at 99 Hz for the whole run, so the
  // delta isolates SIGPROF delivery + handler cost under live load.
  // The acceptance gate lives in validate_bench_json.py (p99 within
  // 10% of baseline for adequately-sized runs).
  constexpr int kProfileHz = 99;
  RunResult profiled;
  uint64_t profiler_samples = 0;
  bool profiler_ran = false;
  if (traced_baseline != nullptr) {
    auto prof_server = HttpServer::Start(
        [&service](const HttpRequest& request) {
          return service.Handle(request);
        },
        server_options);
    if (!prof_server.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   prof_server.status().ToString().c_str());
      return 1;
    }
    service.AttachServer(prof_server->get());
    // The loop thread and handler-pool workers registered themselves at
    // Start; arm their timers now and sample for the whole run.
    const Status prof_start = Profiler::Global().Start(kProfileHz);
    if (!prof_start.ok()) {
      std::fprintf(stderr, "warning: profiler A/B skipped: %s\n",
                   prof_start.ToString().c_str());
    } else {
      profiled = DriveLoad((*prof_server)->port(), traced_baseline->spec,
                           options.requests, options.rows, options.domains,
                           options.trickle_bytes,
                           options.trickle_interval_ms);
      const auto prof = Profiler::Global().Stop();
      if (prof.ok()) profiler_samples = prof->samples;
      profiler_ran = profiled.completed > 0;
      std::fprintf(stderr,
                   "[profiler %d Hz, c=%d] p99 %.3f ms vs baseline %.3f ms "
                   "(%llu samples)\n",
                   kProfileHz, traced_baseline->spec.hot, profiled.p99_ms,
                   traced_baseline->p99_ms,
                   static_cast<unsigned long long>(profiler_samples));
    }
    (*prof_server)->Shutdown();
    (*prof_server)->Wait();
  }

  // ---- Emit the document.
  std::string json = "{\n  \"bench\": \"bench_serve_latency\",\n";
  json += "  \"hardware_threads\": " + std::to_string(HardwareThreads()) +
          ",\n";
  json += "  \"workers\": " +
          std::to_string(options.workers == 0 ? std::max(2u, Threads())
                                              : options.workers) +
          ",\n";
  json += "  \"scale\": " + StrFormat("%g", options.scale) + ",\n";
  json += "  \"requests_per_connection\": " +
          std::to_string(options.requests) + ",\n";
  json += "  \"tracing\": true,\n";
  json += "  \"access_log\": \"" + options.access_log + "\",\n";
  json += "  \"datasets\": [\n";
  for (size_t i = 0; i < dataset_lines.size(); ++i) {
    const DatasetLine& line = dataset_lines[i];
    json += "    {\"domain\": \"" + line.domain + "\", \"entities\": " +
            std::to_string(line.entities) + ", \"relationships\": " +
            std::to_string(line.relationships) + "}";
    json += i + 1 < dataset_lines.size() ? ",\n" : "\n";
  }
  json += "  ],\n  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& run = runs[i];
    json += "    {\"connections\": " + std::to_string(run.spec.hot);
    json += ", \"slow_connections\": " + std::to_string(run.spec.slow);
    json += ", \"cold_connections\": " + std::to_string(run.spec.cold);
    json += ", \"completed\": " + std::to_string(run.completed);
    json += ", \"errors\": " + std::to_string(run.errors);
    if (run.spec.slow > 0) {
      json += ", \"slow_completed\": " + std::to_string(run.slow_completed);
      json += ", \"slow_errors\": " + std::to_string(run.slow_errors);
    }
    if (run.spec.cold > 0) {
      json += ", \"cold_completed\": " + std::to_string(run.cold_completed);
      json += ", \"cold_shed\": " + std::to_string(run.cold_shed);
      json += ", \"cold_errors\": " + std::to_string(run.cold_errors);
    }
    json += ", \"wall_seconds\": " + StrFormat("%.6f", run.wall_seconds);
    json += ", \"throughput_rps\": " + StrFormat("%.2f", run.throughput_rps);
    json += ", \"p50_ms\": " + StrFormat("%.3f", run.p50_ms);
    json += ", \"p90_ms\": " + StrFormat("%.3f", run.p90_ms);
    json += ", \"p99_ms\": " + StrFormat("%.3f", run.p99_ms);
    json += ", \"max_ms\": " + StrFormat("%.3f", run.max_ms) + "}";
    json += i + 1 < runs.size() ? ",\n" : "\n";
  }
  json += "  ]";
  if (traced_baseline != nullptr && untraced.completed > 0) {
    json += ",\n  \"tracing_overhead\": {\n";
    json += "    \"connections\": " +
            std::to_string(traced_baseline->spec.hot) + ",\n";
    json += "    \"traced_p50_ms\": " +
            StrFormat("%.3f", traced_baseline->p50_ms) + ",\n";
    json += "    \"traced_p99_ms\": " +
            StrFormat("%.3f", traced_baseline->p99_ms) + ",\n";
    json += "    \"traced_rps\": " +
            StrFormat("%.2f", traced_baseline->throughput_rps) + ",\n";
    json += "    \"untraced_p50_ms\": " +
            StrFormat("%.3f", untraced.p50_ms) + ",\n";
    json += "    \"untraced_p99_ms\": " +
            StrFormat("%.3f", untraced.p99_ms) + ",\n";
    json += "    \"untraced_rps\": " +
            StrFormat("%.2f", untraced.throughput_rps) + ",\n";
    json += "    \"p99_delta_ms\": " +
            StrFormat("%.3f", traced_baseline->p99_ms - untraced.p99_ms) +
            "\n  }";
  }
  if (traced_baseline != nullptr && profiler_ran) {
    json += ",\n  \"profiler_overhead\": {\n";
    json += "    \"connections\": " +
            std::to_string(traced_baseline->spec.hot) + ",\n";
    json += "    \"hz\": " + std::to_string(kProfileHz) + ",\n";
    json += "    \"completed\": " + std::to_string(profiled.completed) +
            ",\n";
    json += "    \"samples\": " + std::to_string(profiler_samples) + ",\n";
    json += "    \"baseline_p50_ms\": " +
            StrFormat("%.3f", traced_baseline->p50_ms) + ",\n";
    json += "    \"baseline_p99_ms\": " +
            StrFormat("%.3f", traced_baseline->p99_ms) + ",\n";
    json += "    \"baseline_rps\": " +
            StrFormat("%.2f", traced_baseline->throughput_rps) + ",\n";
    json += "    \"profiled_p50_ms\": " + StrFormat("%.3f", profiled.p50_ms) +
            ",\n";
    json += "    \"profiled_p99_ms\": " + StrFormat("%.3f", profiled.p99_ms) +
            ",\n";
    json += "    \"profiled_rps\": " +
            StrFormat("%.2f", profiled.throughput_rps) + ",\n";
    json += "    \"p99_delta_ms\": " +
            StrFormat("%.3f", profiled.p99_ms - traced_baseline->p99_ms) +
            "\n  }";
  }
  json += "\n}\n";

  if (options.out.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* file = std::fopen(options.out.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", options.out.c_str());
      return 1;
    }
    std::fputs(json.c_str(), file);
    std::fclose(file);
    std::fprintf(stderr, "wrote %s\n", options.out.c_str());
  }
  return 0;
}

/// Parses one --connections item: "H", "H+Ns", "H+Mc", "H+Ns+Mc" (order
/// of the suffixed parts is free). Returns false on anything else.
bool ParseRunSpec(const std::string& item, RunSpec* spec) {
  *spec = RunSpec{};
  size_t start = 0;
  bool saw_hot = false;
  while (start <= item.size()) {
    const size_t plus = item.find('+', start);
    const std::string part = item.substr(
        start, plus == std::string::npos ? std::string::npos : plus - start);
    if (part.empty()) return false;
    char suffix = part.back();
    const bool tagged = suffix == 's' || suffix == 'c';
    const std::string digits =
        tagged ? part.substr(0, part.size() - 1) : part;
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      return false;
    }
    const int count = std::atoi(digits.c_str());
    if (tagged && suffix == 's') {
      spec->slow = count;
    } else if (tagged) {
      spec->cold = count;
    } else {
      if (saw_hot) return false;
      spec->hot = count;
      saw_hot = true;
    }
    if (plus == std::string::npos) break;
    start = plus + 1;
  }
  return saw_hot;
}

std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos
                                          : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace
}  // namespace egp

int main(int argc, char** argv) {
  egp::Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--domains") {
      options.domains = egp::SplitList(value());
    } else if (arg == "--scale") {
      options.scale = std::atof(value());
    } else if (arg == "--connections") {
      options.connections.clear();
      for (const std::string& item : egp::SplitList(value())) {
        egp::RunSpec spec;
        if (!egp::ParseRunSpec(item, &spec)) {
          std::fprintf(stderr,
                       "error: bad --connections item '%s' (want e.g. "
                       "64, 256+1024s, 64+4c)\n",
                       item.c_str());
          return 2;
        }
        options.connections.push_back(spec);
      }
    } else if (arg == "--requests") {
      options.requests = std::atoi(value());
    } else if (arg == "--warmup") {
      options.warmup = std::atoi(value());
    } else if (arg == "--workers") {
      options.workers = static_cast<unsigned>(std::atoi(value()));
    } else if (arg == "--rows") {
      options.rows = std::atoi(value());
    } else if (arg == "--trickle-bytes") {
      options.trickle_bytes = static_cast<size_t>(std::atoi(value()));
    } else if (arg == "--trickle-interval-ms") {
      options.trickle_interval_ms = std::atoi(value());
    } else if (arg == "--access-log") {
      options.access_log = value();
    } else if (arg == "--out") {
      options.out = value();
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve_latency [--domains d1,d2] "
                   "[--scale S] [--connections c1,c2+Ns+Mc] [--requests N] "
                   "[--warmup N] [--workers N] [--rows N] "
                   "[--trickle-bytes B] [--trickle-interval-ms I] "
                   "[--access-log PATH] [--out FILE]\n");
      return 2;
    }
  }
  if (options.domains.empty() || options.connections.empty() ||
      options.requests < 1) {
    std::fprintf(stderr, "error: empty domain/connection list or "
                         "requests < 1\n");
    return 2;
  }
  if (options.trickle_bytes < 1 || options.trickle_interval_ms < 0) {
    std::fprintf(stderr, "error: bad trickle parameters\n");
    return 2;
  }
  for (const egp::RunSpec& spec : options.connections) {
    if (spec.hot < 1 || spec.hot > 4096 || spec.slow < 0 ||
        spec.slow > 4096 || spec.cold < 0 || spec.cold > 4096) {
      std::fprintf(stderr,
                   "error: each run needs 1..4096 measured connections and "
                   "0..4096 slow/cold ones\n");
      return 2;
    }
  }
  return egp::Run(options);
}
