#include "bench/ztest_tables.h"

#include <array>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "eval/user_study.h"

namespace egp {
namespace bench {

void PrintZTestTable(size_t domain_index) {
  std::printf("\ndomain=%s (column approach A vs row approach B; "
              "* marks p < 0.1)\n",
              UserStudyDomains()[domain_index].c_str());
  std::array<StudyCell, kNumApproaches> cells;
  for (size_t a = 0; a < kNumApproaches; ++a) {
    cells[a] = PaperConversion(static_cast<Approach>(a), domain_index);
  }
  const ZMatrix matrix = PairwiseZTests(cells);

  std::vector<std::string> header;
  for (size_t col = 1; col < kNumApproaches; ++col) {
    header.push_back(ApproachName(static_cast<Approach>(col)));
  }
  PrintRow("", header, 10, 16);
  for (size_t row = 0; row + 1 < kNumApproaches; ++row) {
    std::vector<std::string> line;
    for (size_t col = 1; col < kNumApproaches; ++col) {
      if (col <= row) {
        line.push_back("");
        continue;
      }
      const ZTestResult& r = matrix[row][col];
      line.push_back(StrFormat("z=%+.2f p=%.4f%s", r.z, r.p,
                               r.Significant(0.1) ? "*" : ""));
    }
    PrintRow(ApproachName(static_cast<Approach>(row)), line, 10, 16);
  }
}

}  // namespace bench
}  // namespace egp
