// Ablation: incremental statistics maintenance vs full re-derivation.
//
// §5 asserts the schema graph and scores "can be incrementally updated";
// this bench quantifies the claim on the music domain: applying a batch
// of updates and re-preparing from IncrementalSchemaStats vs re-deriving
// the schema graph from the (hypothetically re-ingested) entity graph.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/incremental.h"
#include "graph/entity_graph_builder.h"

int main() {
  using namespace egp;
  bench::PrintHeader(
      "Ablation: incremental stats maintenance vs full re-derivation "
      "(music)");
  const GeneratedDomain& domain = bench::Domain("music");

  bench::PrintRow("updates", {"apply ms", "refresh ms", "rederive ms",
                              "dirty types"},
                  12, 12);
  for (const size_t batch : {100u, 1000u, 10000u, 100000u}) {
    Rng rng(77);
    std::vector<GraphUpdate> updates;
    updates.reserve(batch);
    for (size_t i = 0; i < batch; ++i) {
      if (rng.NextBernoulli(0.5)) {
        updates.push_back(GraphUpdate::AddEdge(
            static_cast<uint32_t>(rng.NextBounded(domain.schema.num_edges()))));
      } else {
        updates.push_back(GraphUpdate::AddEntity(
            static_cast<TypeId>(rng.NextBounded(domain.schema.num_types()))));
      }
    }

    IncrementalSchemaStats stats(domain.schema);
    Timer apply_timer;
    EGP_CHECK(stats.ApplyAll(updates).ok());
    const double apply_ms = apply_timer.ElapsedMillis();

    Timer refresh_timer;
    auto refreshed =
        PreparedSchema::Create(stats.ToSchemaGraph(), PreparedSchemaOptions{});
    EGP_CHECK(refreshed.ok());
    const double refresh_ms = refresh_timer.ElapsedMillis();

    // Full pipeline: re-ingest every edge into a fresh graph (what a
    // system without incremental maintenance pays), then re-derive.
    Timer rederive_timer;
    EntityGraphBuilder builder;
    for (TypeId t = 0; t < domain.graph.num_types(); ++t) {
      builder.AddEntityType(domain.graph.TypeName(t));
    }
    for (RelTypeId r = 0; r < domain.graph.num_rel_types(); ++r) {
      const RelTypeInfo& info = domain.graph.RelType(r);
      builder.AddRelationshipType(domain.graph.RelSurfaceName(r),
                                  info.src_type, info.dst_type);
    }
    for (EntityId e = 0; e < domain.graph.num_entities(); ++e) {
      const EntityId id = builder.AddEntity(domain.graph.EntityName(e));
      for (TypeId t : domain.graph.TypesOf(e)) builder.AddEntityToType(id, t);
    }
    for (const EdgeRecord& edge : domain.graph.edges()) {
      EGP_CHECK(builder.AddEdge(edge.src, edge.rel_type, edge.dst).ok());
    }
    auto rebuilt = builder.Build();
    EGP_CHECK(rebuilt.ok());
    const SchemaGraph rederived = SchemaGraph::FromEntityGraph(*rebuilt);
    auto reprepared =
        PreparedSchema::Create(rederived, PreparedSchemaOptions{});
    EGP_CHECK(reprepared.ok());
    const double rederive_ms = rederive_timer.ElapsedMillis();

    bench::PrintRow(std::to_string(batch),
                    {bench::FormatDouble(apply_ms, 2),
                     bench::FormatDouble(refresh_ms, 2),
                     bench::FormatDouble(rederive_ms, 2),
                     std::to_string(stats.DirtyTypes().size())},
                    12, 12);
  }
  std::printf(
      "\nReading: applying updates is O(1) per update and refreshing the "
      "prepared scores costs microseconds on a 69-type schema; the full "
      "re-derivation pays a pass over all data edges (and in reality would "
      "also pay re-ingestion).\n");
  return 0;
}
