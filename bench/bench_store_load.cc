// Cold-start benchmark for the .egps snapshot store — the third tracked
// perf trajectory (BENCH_load.json).
//
// Every server start (and catalog reload) pays dataset open time. This
// bench measures that cost for one logical graph in each on-disk
// representation, on the bundled datagen domains:
//
//   - text parse:     ReadNTriplesFile (tokenize, intern, build indexes)
//   - snapshot read:  OpenSnapshot kStream (one sequential read + verify)
//   - snapshot mmap:  OpenSnapshot kMmap (zero-copy CSR; with and
//                     without checksum verification)
//
// and cross-checks that previews served from every path are
// byte-identical to the text-parsed graph (exit 2 on divergence).
//
//   bench_store_load [--domains basketball,architecture] [--scale 1.0]
//                    [--repeat 3] [--dir DIR] [--out FILE]
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/strings.h"
#include "common/timer.h"
#include "datagen/generator.h"
#include "io/json_export.h"
#include "io/ntriples.h"
#include "service/engine.h"
#include "store/snapshot_reader.h"
#include "store/snapshot_writer.h"

namespace egp {
namespace {

struct BenchOptions {
  std::vector<std::string> domains = {"basketball", "architecture"};
  double scale = 1.0;
  int repeat = 3;
  std::string dir;
  std::string out;
};

std::string TempDir() {
  const char* env = std::getenv("TMPDIR");
  return env != nullptr && env[0] != '\0' ? env : "/tmp";
}

double MinSeconds(int repeat, const std::function<void()>& fn) {
  double best = 0.0;
  for (int r = 0; r < repeat; ++r) {
    Timer timer;
    fn();
    const double elapsed = timer.ElapsedSeconds();
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

size_t FileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size > 0 ? static_cast<size_t>(size) : 0;
}

/// The preview every load path must reproduce byte for byte.
PreviewRequest IdentityRequest() {
  PreviewRequest request;
  request.size = {3, 5};
  request.sample_rows = 3;
  request.sample_seed = 7;
  request.measures.key = "randomwalk";
  request.measures.nonkey = "entropy";
  return request;
}

struct PreviewFingerprint {
  std::string preview;
  std::string tuples;
  double score = 0.0;
};

Result<PreviewFingerprint> Fingerprint(const Engine& engine) {
  PreviewFingerprint print;
  auto response = engine.Preview(IdentityRequest());
  if (!response.ok()) return response.status();
  print.preview = PreviewToJson(*response->prepared, response->preview);
  print.tuples =
      MaterializedPreviewToJson(*engine.graph(), response->materialized);
  print.score = response->score;
  return print;
}

int Run(const BenchOptions& options) {
  const std::string dir = options.dir.empty() ? TempDir() : options.dir;
  std::string json;
  json += "{\n";
  json += "  \"bench\": \"bench_store_load\",\n";
  json += "  \"hardware_threads\": " + std::to_string(HardwareThreads()) +
          ",\n";
  json += "  \"scale\": " + std::to_string(options.scale) + ",\n";
  json += "  \"repeat\": " + std::to_string(options.repeat) + ",\n";
  json += "  \"datasets\": [\n";

  for (size_t d = 0; d < options.domains.size(); ++d) {
    const std::string& name = options.domains[d];
    GeneratorOptions generator;
    generator.scale = options.scale;
    auto domain = GenerateDomainByName(name, generator);
    if (!domain.ok()) {
      std::fprintf(stderr, "error: %s\n", domain.status().ToString().c_str());
      return 1;
    }
    const std::string prefix =
        dir + "/egp_store_bench_" + std::to_string(::getpid()) + "_" + name;
    const std::string nt_path = prefix + ".nt";
    const std::string egps_path = prefix + ".egps";

    // The text file is the bench's ground truth; the snapshot is
    // compiled from the *parsed* graph, exactly as egp_compile would.
    Status written = WriteNTriplesFile(domain->graph, nt_path);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
    auto parsed = ReadNTriplesFile(nt_path);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    Timer compile_timer;
    const Status compiled = CompileSnapshotFile(*parsed, egps_path);
    if (!compiled.ok()) {
      std::fprintf(stderr, "error: %s\n", compiled.ToString().c_str());
      return 1;
    }
    const double compile_seconds = compile_timer.ElapsedSeconds();

    const double parse_seconds = MinSeconds(options.repeat, [&] {
      auto graph = ReadNTriplesFile(nt_path);
      if (!graph.ok()) std::exit(1);
    });
    SnapshotOpenOptions stream_options;
    stream_options.mode = SnapshotOpenOptions::Mode::kStream;
    const double stream_seconds = MinSeconds(options.repeat, [&] {
      auto stored = OpenSnapshot(egps_path, stream_options);
      if (!stored.ok()) std::exit(1);
    });
    SnapshotOpenOptions mmap_options;  // defaults: mmap + verify
    const double mmap_seconds = MinSeconds(options.repeat, [&] {
      auto stored = OpenSnapshot(egps_path, mmap_options);
      if (!stored.ok()) std::exit(1);
    });
    SnapshotOpenOptions trusted_options;
    trusted_options.verify_checksums = false;
    const double mmap_noverify_seconds = MinSeconds(options.repeat, [&] {
      auto stored = OpenSnapshot(egps_path, trusted_options);
      if (!stored.ok()) std::exit(1);
    });

    // Bit-identity across every load path.
    auto golden = Fingerprint(Engine::FromGraph(EntityGraph(*parsed)));
    if (!golden.ok()) {
      std::fprintf(stderr, "error: %s\n", golden.status().ToString().c_str());
      return 1;
    }
    bool identical = true;
    for (const auto* open_options : {&stream_options, &mmap_options}) {
      auto stored = OpenSnapshot(egps_path, *open_options);
      if (!stored.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     stored.status().ToString().c_str());
        return 1;
      }
      auto print = Fingerprint(Engine::FromFrozen(
          std::move(stored->graph), std::move(stored->frozen)));
      if (!print.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     print.status().ToString().c_str());
        return 1;
      }
      identical = identical && print->preview == golden->preview &&
                  print->tuples == golden->tuples &&
                  print->score == golden->score;
    }
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: snapshot-served preview diverged from the text "
                   "parse on %s\n",
                   name.c_str());
      return 2;
    }

    const size_t nt_bytes = FileBytes(nt_path);
    const size_t egps_bytes = FileBytes(egps_path);
    std::remove(nt_path.c_str());
    std::remove(egps_path.c_str());

    std::fprintf(stderr,
                 "[%s] %zu entities / %zu rels: parse %.1fms, stream "
                 "%.1fms, mmap %.1fms (noverify %.1fms); %.2fx / %.2fx "
                 "faster\n",
                 name.c_str(), parsed->num_entities(), parsed->num_edges(),
                 parse_seconds * 1e3, stream_seconds * 1e3,
                 mmap_seconds * 1e3, mmap_noverify_seconds * 1e3,
                 stream_seconds > 0 ? parse_seconds / stream_seconds : 0.0,
                 mmap_seconds > 0 ? parse_seconds / mmap_seconds : 0.0);

    char buffer[512];
    json += "    {\n";
    json += "      \"domain\": \"" + name + "\",\n";
    json += "      \"entities\": " + std::to_string(parsed->num_entities()) +
            ",\n";
    json += "      \"relationships\": " +
            std::to_string(parsed->num_edges()) + ",\n";
    json += "      \"nt_bytes\": " + std::to_string(nt_bytes) + ",\n";
    json += "      \"egps_bytes\": " + std::to_string(egps_bytes) + ",\n";
    std::snprintf(buffer, sizeof(buffer),
                  "      \"compile_seconds\": %.6f,\n"
                  "      \"parse_seconds\": %.6f,\n"
                  "      \"snapshot_stream_seconds\": %.6f,\n"
                  "      \"snapshot_mmap_seconds\": %.6f,\n"
                  "      \"snapshot_mmap_noverify_seconds\": %.6f,\n"
                  "      \"speedup_stream_vs_parse\": %.3f,\n"
                  "      \"speedup_mmap_vs_parse\": %.3f,\n"
                  "      \"previews_identical\": true\n",
                  compile_seconds, parse_seconds, stream_seconds,
                  mmap_seconds, mmap_noverify_seconds,
                  stream_seconds > 0 ? parse_seconds / stream_seconds : 0.0,
                  mmap_seconds > 0 ? parse_seconds / mmap_seconds : 0.0);
    json += buffer;
    json += d + 1 < options.domains.size() ? "    },\n" : "    }\n";
  }
  json += "  ]\n";
  json += "}\n";

  if (options.out.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(options.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", options.out.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", options.out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace egp

int main(int argc, char** argv) {
  egp::BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--domains") {
      options.domains = egp::Split(value(), ',');
      std::erase(options.domains, "");
    } else if (arg == "--scale") {
      options.scale = std::atof(value());
    } else if (arg == "--repeat") {
      options.repeat = std::atoi(value());
    } else if (arg == "--dir") {
      options.dir = value();
    } else if (arg == "--out") {
      options.out = value();
    } else {
      std::fprintf(stderr,
                   "usage: bench_store_load [--domains a,b] [--scale S] "
                   "[--repeat R] [--dir DIR] [--out FILE]\n");
      return 2;
    }
  }
  if (options.domains.empty() || options.repeat < 1) {
    std::fprintf(stderr, "error: empty domain list or repeat < 1\n");
    return 2;
  }
  return egp::Run(options);
}
