// Shared driver for the pairwise conversion-rate z-test tables (7, 13-16).
#ifndef EGP_BENCH_ZTEST_TABLES_H_
#define EGP_BENCH_ZTEST_TABLES_H_

#include <cstddef>

namespace egp {
namespace bench {

/// Prints the full pairwise z/p matrix for one domain, computed exactly
/// from the embedded Table 5 sample sizes and conversion rates, plus the
/// significance verdict at α = 0.1 (the paper's light/dark cell shading).
void PrintZTestTable(size_t domain_index);

}  // namespace bench
}  // namespace egp

#endif  // EGP_BENCH_ZTEST_TABLES_H_
