// google-benchmark microbenchmarks of the core primitives: schema
// preparation, scoring, all-pairs distances and the three discovery
// algorithms, on the exact-size paper schemas.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/apriori.h"
#include "core/brute_force.h"
#include "core/discoverer.h"
#include "core/dynamic_programming.h"
#include "core/frontier.h"
#include "graph/frozen_graph.h"
#include "graph/schema_distance.h"

namespace {

using namespace egp;

const GeneratedDomain& MusicDomain() { return bench::Domain("music"); }

PreparedSchema PreparedMusic(KeyMeasure km = KeyMeasure::kCoverage,
                             NonKeyMeasure nm = NonKeyMeasure::kCoverage) {
  PreparedSchemaOptions options;
  options.key_measure = km;
  options.nonkey_measure = nm;
  auto prepared =
      PreparedSchema::Create(MusicDomain().schema, options,
                             &MusicDomain().graph);
  EGP_CHECK(prepared.ok());
  return std::move(prepared).value();
}

void BM_SchemaDerivation(benchmark::State& state) {
  const GeneratedDomain& domain = MusicDomain();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SchemaGraph::FromEntityGraph(domain.graph));
  }
}
BENCHMARK(BM_SchemaDerivation);

void BM_PrepareCoverage(benchmark::State& state) {
  for (auto _ : state) {
    auto prepared = PreparedSchema::Create(MusicDomain().schema,
                                           PreparedSchemaOptions{});
    benchmark::DoNotOptimize(prepared);
  }
}
BENCHMARK(BM_PrepareCoverage);

void BM_PrepareRandomWalk(benchmark::State& state) {
  PreparedSchemaOptions options;
  options.key_measure = KeyMeasure::kRandomWalk;
  for (auto _ : state) {
    auto prepared = PreparedSchema::Create(MusicDomain().schema, options);
    benchmark::DoNotOptimize(prepared);
  }
}
BENCHMARK(BM_PrepareRandomWalk);

void BM_PrepareEntropy(benchmark::State& state) {
  PreparedSchemaOptions options;
  options.nonkey_measure = NonKeyMeasure::kEntropy;
  for (auto _ : state) {
    auto prepared = PreparedSchema::Create(MusicDomain().schema, options,
                                           &MusicDomain().graph);
    benchmark::DoNotOptimize(prepared);
  }
}
BENCHMARK(BM_PrepareEntropy);

void BM_AllPairsDistances(benchmark::State& state) {
  for (auto _ : state) {
    SchemaDistanceMatrix dist(MusicDomain().schema);
    benchmark::DoNotOptimize(dist.Diameter());
  }
}
BENCHMARK(BM_AllPairsDistances);

void BM_DynamicProgramming(benchmark::State& state) {
  const PreparedSchema prepared = PreparedMusic();
  const SizeConstraint size{static_cast<uint32_t>(state.range(0)), 20};
  for (auto _ : state) {
    auto preview = DynamicProgrammingDiscover(prepared, size);
    benchmark::DoNotOptimize(preview);
  }
}
BENCHMARK(BM_DynamicProgramming)->Arg(3)->Arg(6)->Arg(9);

void BM_AprioriTight(benchmark::State& state) {
  const PreparedSchema prepared = PreparedMusic();
  const SizeConstraint size{static_cast<uint32_t>(state.range(0)), 20};
  for (auto _ : state) {
    auto preview =
        AprioriDiscover(prepared, size, DistanceConstraint::Tight(2));
    benchmark::DoNotOptimize(preview);
  }
}
BENCHMARK(BM_AprioriTight)->Arg(3)->Arg(5);

void BM_BruteForceSmallK(benchmark::State& state) {
  const PreparedSchema prepared = PreparedMusic();
  const SizeConstraint size{static_cast<uint32_t>(state.range(0)), 10};
  for (auto _ : state) {
    auto preview =
        BruteForceDiscover(prepared, size, DistanceConstraint::None());
    benchmark::DoNotOptimize(preview);
  }
}
BENCHMARK(BM_BruteForceSmallK)->Arg(2)->Arg(3);

void BM_ScoreFrontier(benchmark::State& state) {
  const PreparedSchema prepared = PreparedMusic();
  const uint32_t max_k = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto frontier = ComputeScoreFrontier(prepared, max_k, 2 * max_k);
    benchmark::DoNotOptimize(frontier);
  }
}
BENCHMARK(BM_ScoreFrontier)->Arg(5)->Arg(10);

void BM_FreezeGraph(benchmark::State& state) {
  for (auto _ : state) {
    FrozenGraph frozen = FrozenGraph::Freeze(MusicDomain().graph);
    benchmark::DoNotOptimize(frozen.num_arcs());
  }
}
BENCHMARK(BM_FreezeGraph);

void BM_NeighborScanEntityGraph(benchmark::State& state) {
  const EntityGraph& graph = MusicDomain().graph;
  const RelTypeId rel = 0;
  for (auto _ : state) {
    size_t total = 0;
    for (EntityId e = 0; e < graph.num_entities(); e += 13) {
      total += graph.NeighborSet(e, rel, Direction::kOutgoing).size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_NeighborScanEntityGraph);

void BM_NeighborScanFrozenGraph(benchmark::State& state) {
  static const FrozenGraph* frozen =
      new FrozenGraph(FrozenGraph::Freeze(MusicDomain().graph));
  const RelTypeId rel = 0;
  for (auto _ : state) {
    size_t total = 0;
    for (EntityId e = 0; e < frozen->num_entities(); e += 13) {
      total += frozen->NeighborSet(e, rel, Direction::kOutgoing).size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_NeighborScanFrozenGraph);

void BM_ComposePreviewScore(benchmark::State& state) {
  const PreparedSchema prepared = PreparedMusic();
  std::vector<TypeId> keys;
  for (TypeId t = 0; t < prepared.num_types() && keys.size() < 6; ++t) {
    if (prepared.Eligible(t)) keys.push_back(t);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComposePreviewScore(prepared, keys, 20));
  }
}
BENCHMARK(BM_ComposePreviewScore);

}  // namespace

BENCHMARK_MAIN();
