// Table 3: MRR of non-key attribute scoring (Coverage vs Entropy) against
// the Table 10 curated attributes, restricted (as in the paper) to entity
// types with at least 5 candidate non-key attributes.
#include <cstdio>
#include <unordered_set>

#include "bench/bench_util.h"
#include "eval/ranking_metrics.h"
#include "eval/user_study.h"

namespace {

using namespace egp;

double NonKeyMrr(const GeneratedDomain& domain, NonKeyMeasure measure,
                 size_t* types_evaluated) {
  PreparedSchemaOptions options;
  options.nonkey_measure = measure;
  auto prepared = PreparedSchema::Create(domain.schema, options,
                                         &domain.graph);
  EGP_CHECK(prepared.ok()) << prepared.status().ToString();

  std::vector<double> reciprocal_ranks;
  for (const GoldTable& gold : domain.gold.tables) {
    const auto key = domain.schema.type_names().Find(gold.key);
    EGP_CHECK(key.has_value());
    const TypeCandidates& cands = prepared->Candidates(*key);
    if (cands.size() < 5) continue;  // paper's filter (§6.1.2)
    std::vector<std::string> ranked;
    ranked.reserve(cands.size());
    for (const NonKeyCandidate& c : cands.sorted) {
      ranked.push_back(
          domain.schema.SurfaceName(domain.schema.Edge(c.schema_edge)));
    }
    GroundTruth truth(gold.nonkeys.begin(), gold.nonkeys.end());
    reciprocal_ranks.push_back(ReciprocalRank(ranked, truth));
  }
  if (types_evaluated != nullptr) {
    *types_evaluated = reciprocal_ranks.size();
  }
  return MeanReciprocalRank(reciprocal_ranks);
}

}  // namespace

int main() {
  using namespace egp;
  bench::PrintHeader("Table 3: MRR of non-key attribute scoring");
  bench::PrintRow("domain", {"Coverage", "Entropy", "#types(>=5 cands)"});
  for (const std::string& name : UserStudyDomains()) {
    const GeneratedDomain& domain = bench::Domain(name);
    size_t evaluated = 0;
    const double coverage =
        NonKeyMrr(domain, NonKeyMeasure::kCoverage, &evaluated);
    const double entropy = NonKeyMrr(domain, NonKeyMeasure::kEntropy, nullptr);
    bench::PrintRow(name, {bench::FormatDouble(coverage, 3),
                           bench::FormatDouble(entropy, 3),
                           std::to_string(evaluated)});
  }
  std::printf(
      "\nExpected shape (paper Table 3): MRR > 0.5 in every domain except "
      "film, where the curated attributes are buried (0.2 / 0.25).\n");
  return 0;
}
