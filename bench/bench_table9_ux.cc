// Tables 17-21 + Table 9: Likert user-experience scores per domain and
// the cross-domain ordering per question. Simulated responses are
// aggregated with the identical analysis pipeline; the paper's published
// means are printed alongside.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "eval/user_study.h"

int main() {
  using namespace egp;
  const UserStudyOptions options;

  bench::PrintHeader(
      "Tables 17-21: user-experience Likert means (paper | simulated)");
  for (size_t d = 0; d < kNumStudyDomains; ++d) {
    std::printf("\ndomain=%s\n", UserStudyDomains()[d].c_str());
    bench::PrintRow("approach", {"Q1", "Q2", "Q3", "Q4"}, 12, 14);
    for (const Approach a : AllApproaches()) {
      const SimulatedResponses responses = SimulateCell(a, d, options);
      std::vector<std::string> cells;
      for (size_t q = 0; q < 4; ++q) {
        cells.push_back(StrFormat("%.2f|%.2f", PaperUxScore(a, d, q),
                                  LikertMean(responses.likert[q])));
      }
      bench::PrintRow(ApproachName(a), cells, 12, 14);
    }
  }

  bench::PrintHeader(
      "Table 9: approaches sorted by mean UX score across domains");
  for (size_t q = 0; q < 4; ++q) {
    std::array<std::array<double, kNumStudyDomains>, kNumApproaches> paper{};
    std::array<std::array<double, kNumStudyDomains>, kNumApproaches> sim{};
    for (const Approach a : AllApproaches()) {
      for (size_t d = 0; d < kNumStudyDomains; ++d) {
        paper[static_cast<size_t>(a)][d] = PaperUxScore(a, d, q);
        const SimulatedResponses responses = SimulateCell(a, d, options);
        sim[static_cast<size_t>(a)][d] = LikertMean(responses.likert[q]);
      }
    }
    for (const auto& [label, scores] :
         {std::pair<const char*, decltype(paper)&>{"paper", paper},
          std::pair<const char*, decltype(paper)&>{"simulated", sim}}) {
      const auto order = SortApproachesByUxScore(scores);
      std::string row = StrFormat("Q%zu (%s):", q + 1, label);
      for (const Approach a : order) {
        row += " ";
        row += ApproachName(a);
      }
      std::printf("%s\n", row.c_str());
    }
  }
  std::printf(
      "\nExpected (paper Table 9): perception favours Freebase/Graph/"
      "Diverse presentations — a mismatch with the existence-test efficacy "
      "where Tight excels (the paper's central §6.3.2 observation).\n");
  return 0;
}
