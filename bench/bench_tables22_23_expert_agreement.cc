// Tables 22-23: cross-agreement between the Freebase gold standard and
// the consolidated expert previews — P@K of each list scored against the
// other as ground truth. The expert lists are reconstructed from these
// very tables (the published overlaps fully determine them), so the
// output must match the paper exactly.
#include <cstdio>

#include "bench/bench_util.h"
#include "eval/ranking_metrics.h"
#include "eval/user_study.h"

int main() {
  using namespace egp;
  bench::PrintHeader(
      "Table 22: P@K of Freebase key list, Experts as ground truth");
  bench::PrintRow("K", {"books", "film", "music", "tv", "people"}, 6, 8);
  for (size_t k = 1; k <= 6; ++k) {
    std::vector<std::string> cells;
    for (const std::string& name : UserStudyDomains()) {
      const GeneratedDomain& domain = bench::Domain(name);
      const GroundTruth experts(domain.gold.expert_keys.begin(),
                                domain.gold.expert_keys.end());
      cells.push_back(bench::FormatDouble(
          PrecisionAtK(domain.gold.KeyNames(), experts, k), 3));
    }
    bench::PrintRow(std::to_string(k), cells, 6, 8);
  }

  bench::PrintHeader(
      "Table 23: P@K of Experts key list, Freebase as ground truth");
  bench::PrintRow("K", {"books", "film", "music", "tv", "people"}, 6, 8);
  for (size_t k = 1; k <= 6; ++k) {
    std::vector<std::string> cells;
    for (const std::string& name : UserStudyDomains()) {
      const GeneratedDomain& domain = bench::Domain(name);
      const GroundTruth freebase = bench::GoldKeySet(domain);
      cells.push_back(bench::FormatDouble(
          PrecisionAtK(domain.gold.expert_keys, freebase, k), 3));
    }
    bench::PrintRow(std::to_string(k), cells, 6, 8);
  }
  std::printf(
      "\nExpected: exact match with the paper's Tables 22-23 (e.g. books "
      "column 1, 0.5, 0.334, 0.25, 0.2, 0.333 in Table 22).\n");
  return 0;
}
