// Table 2: sizes of entity / schema graphs for the seven domains.
//
// Schema sizes must match the paper exactly; entity-graph sizes are the
// scaled synthetic substitutes (scale factor printed per row). Pass
// --gold to also dump the embedded Table 10 gold standard.
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "graph/graph_stats.h"

int main(int argc, char** argv) {
  using namespace egp;
  const bool show_gold = argc > 1 && std::strcmp(argv[1], "--gold") == 0;

  bench::PrintHeader("Table 2: sizes of entity/schema graphs");
  bench::PrintRow("domain", {"entities", "edges", "K(paper)", "|Es|(paper)",
                             "K(ours)", "|Es|(ours)", "scale"});
  for (const DomainSpec& spec : AllDomainSpecs()) {
    const GeneratedDomain& domain = bench::Domain(spec.name);
    bench::PrintRow(
        spec.name,
        {StrFormat("%zu", domain.graph.num_entities()),
         StrFormat("%zu", domain.graph.num_edges()),
         StrFormat("%u", spec.num_types), StrFormat("%u", spec.num_rel_types),
         StrFormat("%zu", domain.schema.num_types()),
         StrFormat("%zu", domain.schema.num_edges()),
         StrFormat("%g", spec.default_scale)});
  }

  bench::PrintHeader("Schema graph structure (paper: film diameter 7, "
                     "average path length 3-4)");
  bench::PrintRow("domain", {"components", "diameter", "avg path",
                             "self loops", "parallel"});
  for (const DomainSpec& spec : AllDomainSpecs()) {
    const GeneratedDomain& domain = bench::Domain(spec.name);
    const SchemaGraphStats stats = ComputeSchemaGraphStats(domain.schema);
    bench::PrintRow(spec.name,
                    {StrFormat("%llu", (unsigned long long)stats.num_components),
                     StrFormat("%u", stats.diameter),
                     bench::FormatDouble(stats.average_path_length, 2),
                     StrFormat("%llu", (unsigned long long)stats.self_loops),
                     StrFormat("%llu",
                               (unsigned long long)stats.parallel_edge_pairs)});
  }

  if (show_gold) {
    bench::PrintHeader("Table 10: embedded Freebase gold standard");
    for (const DomainSpec* spec : GoldDomainSpecs()) {
      std::printf("\ndomain=%s\n", spec->name.c_str());
      for (const GoldTable& table : spec->gold.tables) {
        std::printf("  %-22s %s\n", table.key.c_str(),
                    Join(table.nonkeys, ", ").c_str());
      }
    }
  }
  return 0;
}
