// PreparedSchema build benchmark: serial vs parallel, and vs the seed
// implementations — the repo's tracked perf trajectory (BENCH_prepare.json).
//
// The paper computes every scoring measure before discovery (§5), so on
// large entity graphs the PreparedSchema build dominates end-to-end
// latency. This bench times that build on datagen graphs:
//
//   - at each requested thread count (ThreadPool-driven builds must be
//     bit-identical to the serial build; verified here and in
//     tests/core/prepare_determinism_test.cc), and
//   - against "seed" baselines: the original dense O(n²)-memory random
//     walk and the per-direction edge-pair-copy + global-sort entropy,
//     kept verbatim below so the algorithmic speedup stays measurable
//     after the originals left the library.
//
// Emits one JSON document (stdout or --out) for tools/bench_to_json.sh.
//
//   bench_prepare_scale [--domains basketball,architecture] [--scale 1.0]
//                       [--threads 1,2,4,8] [--repeat 3]
//                       [--key randomwalk] [--nonkey entropy]
//                       [--no-baseline] [--out FILE]
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/candidates.h"
#include "datagen/generator.h"
#include "graph/schema_graph.h"

namespace egp {
namespace {

// ---------------------------------------------------------------------------
// Seed baselines (verbatim pre-optimization algorithms, for the trajectory)
// ---------------------------------------------------------------------------

/// Seed ComputeKeyRandomWalk: dense n×n weight + transition matrices,
/// O(n²) memory and O(n²) work per lazy power-iteration step.
std::vector<double> SeedKeyRandomWalkDense(const SchemaGraph& schema,
                                           const RandomWalkOptions& options) {
  const size_t n = schema.num_types();
  if (n == 0) return {};
  if (n == 1) return {1.0};

  std::vector<double> weights(n * n, 0.0);
  for (const SchemaEdge& e : schema.edges()) {
    const double w = static_cast<double>(e.edge_count);
    weights[e.src * n + e.dst] += w;
    if (e.src != e.dst) weights[e.dst * n + e.src] += w;
  }

  std::vector<double> transition(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (size_t j = 0; j < n; ++j) {
      transition[i * n + j] = weights[i * n + j] + options.smoothing;
      row_sum += transition[i * n + j];
    }
    for (size_t j = 0; j < n; ++j) transition[i * n + j] /= row_sum;
  }

  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double p = pi[i];
      if (p == 0.0) continue;
      const double* row = &transition[i * n];
      for (size_t j = 0; j < n; ++j) next[j] += p * row[j];
    }
    double delta = 0.0;
    for (size_t j = 0; j < n; ++j) {
      next[j] = 0.5 * (next[j] + pi[j]);
      delta += std::fabs(next[j] - pi[j]);
    }
    pi.swap(next);
    if (delta < options.tolerance) break;
  }
  double total = 0.0;
  for (double p : pi) total += p;
  for (double& p : pi) p /= total;
  return pi;
}

/// Seed RelationshipEntropyFast: copies the relationship's edge list into
/// a (key, value) pair arena — once per direction — and globally sorts it.
double SeedRelationshipEntropyPairSort(const EntityGraph& graph,
                                       RelTypeId rel_type,
                                       Direction direction) {
  const auto& edge_ids = graph.EdgesOfRelType(rel_type);
  std::vector<std::pair<EntityId, EntityId>> pairs;
  pairs.reserve(edge_ids.size());
  for (EdgeId id : edge_ids) {
    const EdgeRecord& e = graph.Edge(id);
    if (direction == Direction::kOutgoing) {
      pairs.emplace_back(e.src, e.dst);
    } else {
      pairs.emplace_back(e.dst, e.src);
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  struct Span {
    size_t begin;
    size_t end;
  };
  std::vector<Span> spans;
  for (size_t i = 0; i < pairs.size();) {
    size_t j = i + 1;
    while (j < pairs.size() && pairs[j].first == pairs[i].first) ++j;
    spans.push_back(Span{i, j});
    i = j;
  }
  auto span_less = [&pairs](const Span& a, const Span& b) {
    return std::lexicographical_compare(
        pairs.begin() + a.begin, pairs.begin() + a.end,
        pairs.begin() + b.begin, pairs.begin() + b.end,
        [](const auto& x, const auto& y) { return x.second < y.second; });
  };
  auto span_equal = [&pairs](const Span& a, const Span& b) {
    return a.end - a.begin == b.end - b.begin &&
           std::equal(pairs.begin() + a.begin, pairs.begin() + a.end,
                      pairs.begin() + b.begin,
                      [](const auto& x, const auto& y) {
                        return x.second == y.second;
                      });
  };
  std::sort(spans.begin(), spans.end(), span_less);

  std::vector<uint64_t> counts;
  for (size_t i = 0; i < spans.size();) {
    size_t j = i + 1;
    while (j < spans.size() && span_equal(spans[i], spans[j])) ++j;
    counts.push_back(j - i);
    i = j;
  }
  return EntropyLog10(counts);
}

NonKeyScores SeedNonKeyEntropy(const EntityGraph& graph,
                               const SchemaGraph& schema) {
  NonKeyScores scores;
  scores.outgoing.resize(schema.num_edges());
  scores.incoming.resize(schema.num_edges());
  for (uint32_t i = 0; i < schema.num_edges(); ++i) {
    const RelTypeId rel_type = schema.RelTypeOfEdge(i);
    scores.outgoing[i] =
        SeedRelationshipEntropyPairSort(graph, rel_type, Direction::kOutgoing);
    scores.incoming[i] =
        SeedRelationshipEntropyPairSort(graph, rel_type, Direction::kIncoming);
  }
  return scores;
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

struct BenchOptions {
  std::vector<std::string> domains = {"basketball", "architecture"};
  double scale = 1.0;
  std::vector<unsigned> threads = {1, 2, 4, 8};
  int repeat = 3;
  std::string key_measure = "randomwalk";
  std::string nonkey_measure = "entropy";
  bool baseline = true;
  std::string out;
};

std::vector<std::string> SplitCommas(const std::string& value) {
  std::vector<std::string> parts = Split(value, ',');
  std::erase(parts, "");  // "a,,b" and trailing commas: drop empties
  return parts;
}

/// Minimum wall-clock seconds of fn over `repeat` runs — the standard
/// noise-resistant estimator for deterministic workloads.
double MinSeconds(int repeat, const std::function<void()>& fn) {
  double best = 0.0;
  for (int r = 0; r < repeat; ++r) {
    Timer timer;
    fn();
    const double elapsed = timer.ElapsedSeconds();
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

bool SameScores(const PreparedSchema& a, const PreparedSchema& b) {
  for (TypeId t = 0; t < a.schema().num_types(); ++t) {
    if (a.KeyScore(t) != b.KeyScore(t)) return false;
    const TypeCandidates& ca = a.Candidates(t);
    const TypeCandidates& cb = b.Candidates(t);
    if (ca.sorted.size() != cb.sorted.size()) return false;
    for (size_t i = 0; i < ca.sorted.size(); ++i) {
      if (ca.sorted[i].schema_edge != cb.sorted[i].schema_edge ||
          ca.sorted[i].direction != cb.sorted[i].direction ||
          ca.sorted[i].score != cb.sorted[i].score) {
        return false;
      }
    }
  }
  for (TypeId x = 0; x < a.schema().num_types(); ++x) {
    for (TypeId y = 0; y < a.schema().num_types(); ++y) {
      if (a.distances().Distance(x, y) != b.distances().Distance(x, y)) {
        return false;
      }
    }
  }
  return true;
}

struct BuildResult {
  unsigned threads = 0;
  PrepareTimings timings;
};

int Run(const BenchOptions& options) {
  std::string json;
  json += "{\n";
  json += "  \"bench\": \"bench_prepare_scale\",\n";
  json += "  \"hardware_threads\": " + std::to_string(HardwareThreads()) +
          ",\n";
  json += "  \"scale\": " + std::to_string(options.scale) + ",\n";
  json += "  \"repeat\": " + std::to_string(options.repeat) + ",\n";
  json += "  \"measures\": {\"key\": \"" + options.key_measure +
          "\", \"nonkey\": \"" + options.nonkey_measure + "\"},\n";
  json += "  \"datasets\": [\n";

  for (size_t d = 0; d < options.domains.size(); ++d) {
    const std::string& name = options.domains[d];
    GeneratorOptions generator;
    generator.scale = options.scale;
    auto domain = GenerateDomainByName(name, generator);
    if (!domain.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   domain.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "[%s] %zu entities, %zu relationships, %zu types, "
                 "%zu schema edges\n",
                 name.c_str(), domain->graph.num_entities(),
                 domain->graph.num_edges(), domain->schema.num_types(),
                 domain->schema.num_edges());

    MeasureSelection measures;
    measures.key = options.key_measure;
    measures.nonkey = options.nonkey_measure;

    // Serial golden build: the reference every other configuration must
    // match bit-for-bit.
    auto golden = PreparedSchema::Create(domain->schema, measures,
                                         &domain->graph);
    if (!golden.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   golden.status().ToString().c_str());
      return 1;
    }

    std::vector<BuildResult> builds;
    for (unsigned threads : options.threads) {
      ThreadPool pool(threads);
      ThreadPool* pool_ptr = threads <= 1 ? nullptr : &pool;
      PrepareTimings best;
      for (int r = 0; r < options.repeat; ++r) {
        auto built = PreparedSchema::Create(domain->schema, measures,
                                            &domain->graph, pool_ptr);
        if (!built.ok()) {
          std::fprintf(stderr, "error: %s\n",
                       built.status().ToString().c_str());
          return 1;
        }
        if (!SameScores(*golden, *built)) {
          std::fprintf(stderr,
                       "FATAL: %u-thread build diverged from the serial "
                       "golden on %s\n",
                       threads, name.c_str());
          return 2;
        }
        if (r == 0 || built->timings().total_seconds < best.total_seconds) {
          best = built->timings();
        }
      }
      builds.push_back(BuildResult{threads, best});
      std::fprintf(stderr,
                   "[%s] threads=%u total=%.1fms (key %.1f, nonkey %.1f, "
                   "dist %.1f, sort %.1f)\n",
                   name.c_str(), threads, best.total_seconds * 1e3,
                   best.key_seconds * 1e3, best.nonkey_seconds * 1e3,
                   best.distance_seconds * 1e3,
                   best.candidate_sort_seconds * 1e3);
    }

    // Seed baselines: same scoring work, pre-optimization algorithms.
    double seed_key_seconds = 0.0;
    double seed_nonkey_seconds = 0.0;
    if (options.baseline) {
      if (options.key_measure == "randomwalk") {
        seed_key_seconds = MinSeconds(options.repeat, [&] {
          SeedKeyRandomWalkDense(domain->schema, RandomWalkOptions{});
        });
      }
      if (options.nonkey_measure == "entropy") {
        seed_nonkey_seconds = MinSeconds(options.repeat, [&] {
          SeedNonKeyEntropy(domain->graph, domain->schema);
        });
      }
      std::fprintf(stderr, "[%s] seed baseline: key %.1fms, nonkey %.1fms\n",
                   name.c_str(), seed_key_seconds * 1e3,
                   seed_nonkey_seconds * 1e3);
    }

    const PrepareTimings& serial = builds.front().timings;
    const PrepareTimings& widest = builds.back().timings;
    char buffer[256];
    json += "    {\n";
    json += "      \"domain\": \"" + name + "\",\n";
    json += "      \"entities\": " +
            std::to_string(domain->graph.num_entities()) + ",\n";
    json += "      \"relationships\": " +
            std::to_string(domain->graph.num_edges()) + ",\n";
    json += "      \"types\": " +
            std::to_string(domain->schema.num_types()) + ",\n";
    json += "      \"schema_edges\": " +
            std::to_string(domain->schema.num_edges()) + ",\n";
    json += "      \"builds\": [\n";
    for (size_t b = 0; b < builds.size(); ++b) {
      const PrepareTimings& t = builds[b].timings;
      std::snprintf(buffer, sizeof(buffer),
                    "        {\"threads\": %u, \"total_seconds\": %.6f, "
                    "\"key_seconds\": %.6f, \"nonkey_seconds\": %.6f, "
                    "\"distance_seconds\": %.6f, "
                    "\"candidate_sort_seconds\": %.6f}%s\n",
                    builds[b].threads, t.total_seconds, t.key_seconds,
                    t.nonkey_seconds, t.distance_seconds,
                    t.candidate_sort_seconds,
                    b + 1 < builds.size() ? "," : "");
      json += buffer;
    }
    json += "      ],\n";
    if (options.baseline) {
      std::snprintf(buffer, sizeof(buffer),
                    "      \"seed_baseline\": {\"key_seconds\": %.6f, "
                    "\"nonkey_seconds\": %.6f},\n",
                    seed_key_seconds, seed_nonkey_seconds);
      json += buffer;
      const double seed_scoring = seed_key_seconds + seed_nonkey_seconds;
      const double serial_scoring =
          serial.key_seconds + serial.nonkey_seconds;
      const double parallel_scoring =
          widest.key_seconds + widest.nonkey_seconds;
      std::snprintf(
          buffer, sizeof(buffer),
          "      \"scoring_speedup_serial_vs_seed\": %.3f,\n"
          "      \"scoring_speedup_parallel_vs_seed\": %.3f,\n",
          serial_scoring > 0.0 ? seed_scoring / serial_scoring : 0.0,
          parallel_scoring > 0.0 ? seed_scoring / parallel_scoring : 0.0);
      json += buffer;
    }
    std::snprintf(buffer, sizeof(buffer),
                  "      \"build_speedup_parallel_vs_serial\": %.3f\n",
                  widest.total_seconds > 0.0
                      ? serial.total_seconds / widest.total_seconds
                      : 0.0);
    json += buffer;
    json += d + 1 < options.domains.size() ? "    },\n" : "    }\n";
  }
  json += "  ]\n";
  json += "}\n";

  if (options.out.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(options.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", options.out.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", options.out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace egp

int main(int argc, char** argv) {
  egp::BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--domains") {
      options.domains = egp::SplitCommas(value());
    } else if (arg == "--scale") {
      options.scale = std::atof(value());
    } else if (arg == "--threads") {
      options.threads.clear();
      for (const std::string& t : egp::SplitCommas(value())) {
        options.threads.push_back(
            static_cast<unsigned>(std::strtoul(t.c_str(), nullptr, 10)));
      }
    } else if (arg == "--repeat") {
      options.repeat = std::atoi(value());
    } else if (arg == "--key") {
      options.key_measure = value();
    } else if (arg == "--nonkey") {
      options.nonkey_measure = value();
    } else if (arg == "--no-baseline") {
      options.baseline = false;
    } else if (arg == "--out") {
      options.out = value();
    } else {
      std::fprintf(stderr,
                   "usage: bench_prepare_scale [--domains a,b] [--scale S] "
                   "[--threads 1,2,4,8] [--repeat R] [--key M] [--nonkey M] "
                   "[--no-baseline] [--out FILE]\n");
      return 2;
    }
  }
  if (options.domains.empty() || options.threads.empty() ||
      options.repeat < 1) {
    std::fprintf(stderr, "error: empty domain/thread list or repeat < 1\n");
    return 2;
  }
  // Normalize the thread list: ascending and unique, with the serial
  // reference first — the speedup fields compare builds.front() (serial)
  // against builds.back() (widest), which an unsorted --threads list
  // would silently mislabel.
  std::erase(options.threads, 0u);
  options.threads.push_back(1);
  std::sort(options.threads.begin(), options.threads.end());
  options.threads.erase(
      std::unique(options.threads.begin(), options.threads.end()),
      options.threads.end());
  return egp::Run(options);
}
