// Ablation: the size/score trade-off surface (§4's central tension),
// computed in one DP pass per domain. Prints the normalized optimal
// score across the (k, n) grid and the smallest preview retaining 90%
// of the full-budget score — data for choosing constraints rationally.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/frontier.h"
#include "eval/user_study.h"

int main() {
  using namespace egp;
  bench::PrintHeader("Ablation: preview size vs score frontier");
  constexpr uint32_t kMaxK = 8;
  constexpr uint32_t kMaxN = 16;

  for (const std::string& name : UserStudyDomains()) {
    const GeneratedDomain& domain = bench::Domain(name);
    auto prepared =
        PreparedSchema::Create(domain.schema, PreparedSchemaOptions{});
    EGP_CHECK(prepared.ok());
    auto frontier = ComputeScoreFrontier(*prepared, kMaxK, kMaxN);
    EGP_CHECK(frontier.ok()) << frontier.status().ToString();

    const double full = frontier->At(kMaxK, kMaxN);
    std::printf("\ndomain=%s (scores normalized to k=%u, n=%u)\n",
                name.c_str(), kMaxK, kMaxN);
    std::vector<std::string> header;
    for (uint32_t n = 2; n <= kMaxN; n += 2) {
      header.push_back("n=" + std::to_string(n));
    }
    bench::PrintRow("k", header, 6, 8);
    for (uint32_t k = 1; k <= kMaxK; ++k) {
      std::vector<std::string> cells;
      for (uint32_t n = 2; n <= kMaxN; n += 2) {
        if (n < k) {
          cells.push_back("-");
          continue;
        }
        const double score = frontier->At(k, n);
        cells.push_back(score < 0 ? "-" : bench::FormatDouble(score / full,
                                                              3));
      }
      bench::PrintRow(std::to_string(k), cells, 6, 8);
    }
    const ScoreFrontier::Point knee = frontier->KneeAt(0.9);
    std::printf("90%% knee: k=%u, n=%u (%.1f%% of full score)\n", knee.k,
                knee.n, 100.0 * knee.score / full);
  }
  std::printf(
      "\nReading: the marginal value of width (n) and of extra tables (k) "
      "decays quickly — a compact preview retains most of the full-budget "
      "score, which is the premise behind enforcing small (k, n).\n");
  return 0;
}
