// Ablation (DESIGN.md §6): how the choice of key / non-key scoring
// measures changes the discovered previews — key-set overlap between
// measure combinations and their gold-standard accuracy, per domain.
#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "core/discoverer.h"
#include "eval/ranking_metrics.h"
#include "eval/user_study.h"

namespace {

using namespace egp;

std::set<std::string> PreviewKeys(const GeneratedDomain& domain,
                                  KeyMeasure km, NonKeyMeasure nm) {
  PreparedSchemaOptions options;
  options.key_measure = km;
  options.nonkey_measure = nm;
  auto prepared = PreparedSchema::Create(domain.schema, options,
                                         &domain.graph);
  EGP_CHECK(prepared.ok());
  PreviewDiscoverer discoverer(std::move(prepared).value());
  DiscoveryOptions discovery;
  discovery.size = {6, 15};
  auto preview = discoverer.Discover(discovery);
  EGP_CHECK(preview.ok());
  std::set<std::string> keys;
  for (const PreviewTable& table : preview->tables) {
    keys.insert(domain.schema.TypeName(table.key));
  }
  return keys;
}

double Overlap(const std::set<std::string>& a,
               const std::set<std::string>& b) {
  size_t shared = 0;
  for (const std::string& key : a) {
    if (b.count(key) > 0) ++shared;
  }
  return static_cast<double>(shared) / static_cast<double>(a.size());
}

}  // namespace

int main() {
  using namespace egp;
  bench::PrintHeader(
      "Ablation: measure combinations vs preview keys (k=6, n=15)");
  const struct {
    const char* label;
    KeyMeasure km;
    NonKeyMeasure nm;
  } combos[] = {
      {"Cov+Cov", KeyMeasure::kCoverage, NonKeyMeasure::kCoverage},
      {"Cov+Ent", KeyMeasure::kCoverage, NonKeyMeasure::kEntropy},
      {"RW+Cov", KeyMeasure::kRandomWalk, NonKeyMeasure::kCoverage},
      {"RW+Ent", KeyMeasure::kRandomWalk, NonKeyMeasure::kEntropy},
  };

  for (const std::string& name : UserStudyDomains()) {
    const GeneratedDomain& domain = bench::Domain(name);
    std::printf("\ndomain=%s\n", name.c_str());

    std::set<std::string> gold;
    for (const auto& key : domain.gold.KeyNames()) gold.insert(key);

    std::array<std::set<std::string>, 4> keys;
    for (size_t i = 0; i < 4; ++i) {
      keys[i] = PreviewKeys(domain, combos[i].km, combos[i].nm);
    }

    bench::PrintRow("combo", {"gold-recall", "vs Cov+Cov overlap"}, 10, 20);
    for (size_t i = 0; i < 4; ++i) {
      size_t hits = 0;
      for (const std::string& key : keys[i]) {
        if (gold.count(key) > 0) ++hits;
      }
      bench::PrintRow(
          combos[i].label,
          {StrFormat("%zu/6", hits),
           bench::FormatDouble(Overlap(keys[i], keys[0]), 2)},
          10, 20);
    }
  }
  std::printf(
      "\nReading: key measure dominates which tables appear (RW favours "
      "hub types, Cov favours big types); the non-key measure mostly "
      "re-ranks attributes within tables, so overlaps stay high within a "
      "key-measure family.\n");
  return 0;
}
