// Figure 6: Average Precision of key attribute scoring, five gold domains.
#include "bench/key_accuracy.h"

int main() {
  egp::bench::RunKeyAccuracyBench(
      egp::bench::AccuracyMetric::kAveragePrecision,
      "Figure 6: Average Precision of key attribute scoring");
  return 0;
}
