// Shared helpers for the benchmark harness (one binary per paper table /
// figure; see DESIGN.md §4 for the experiment index).
#ifndef EGP_BENCH_BENCH_UTIL_H_
#define EGP_BENCH_BENCH_UTIL_H_

#include <functional>
#include <string>
#include <vector>

#include "core/brute_force.h"
#include "core/candidates.h"
#include "datagen/generator.h"
#include "eval/ranking_metrics.h"

namespace egp {
namespace bench {

/// Generates (and caches) a domain at its spec default scale. The cache
/// keeps the per-binary cost of multi-domain sweeps down.
const GeneratedDomain& Domain(const std::string& name);

/// All type names ranked by a key measure (descending score).
std::vector<std::string> RankTypesByKeyMeasure(const GeneratedDomain& domain,
                                               KeyMeasure measure);

/// All type names ranked by the YPS09 baseline's table importance.
std::vector<std::string> RankTypesByYps09(const GeneratedDomain& domain);

/// The Table 10 gold key types as a ground-truth set.
GroundTruth GoldKeySet(const GeneratedDomain& domain);

/// Wall-clock of fn averaged over `repeats` runs, in milliseconds, with
/// the paper's reporting convention (sub-millisecond rounded up to 1 ms).
double TimeMs(const std::function<void()>& fn, int repeats = 3);

/// Times brute-force discovery with a subset cap; when the cap triggers,
/// the time is linearly extrapolated from the enumerated fraction.
struct TimedDiscovery {
  double ms = 0.0;
  bool extrapolated = false;
  /// "123" or "~123456" when extrapolated.
  std::string Format() const;
};
TimedDiscovery TimeBruteForce(const PreparedSchema& prepared,
                              const SizeConstraint& size,
                              const DistanceConstraint& distance,
                              uint64_t max_subsets = 2'000'000);

/// Prints an aligned row: first column `label`, then `cells`.
void PrintRow(const std::string& label, const std::vector<std::string>& cells,
              size_t label_width = 22, size_t cell_width = 12);
void PrintHeader(const std::string& title);

std::string FormatDouble(double value, int precision = 3);

}  // namespace bench
}  // namespace egp

#endif  // EGP_BENCH_BENCH_UTIL_H_
