// Table 5: user-study sample sizes and conversion rates, seven approaches
// × five domains. Participants are simulated (DESIGN.md §2); both the
// paper's published rate and the simulated measurement are printed.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "eval/user_study.h"

int main() {
  using namespace egp;
  bench::PrintHeader(
      "Table 5: sample sizes and conversion rates (paper | simulated)");
  std::vector<std::string> header;
  for (const std::string& d : UserStudyDomains()) header.push_back(d);
  bench::PrintRow("approach", header, 12, 18);

  const UserStudyOptions options;
  for (const Approach a : AllApproaches()) {
    std::vector<std::string> cells;
    for (size_t d = 0; d < kNumStudyDomains; ++d) {
      const StudyCell paper = PaperConversion(a, d);
      const SimulatedResponses responses = SimulateCell(a, d, options);
      cells.push_back(StrFormat("n=%zu %.3f|%.3f", paper.sample_size,
                                paper.conversion_rate,
                                ConversionRate(responses.correct)));
    }
    bench::PrintRow(ApproachName(a), cells, 12, 18);
  }
  std::printf(
      "\nSimulated rates are Bernoulli draws at the published rates "
      "(n≈40-52 per cell), so deviations of ±0.05 are expected.\n");
  return 0;
}
