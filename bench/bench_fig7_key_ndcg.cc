// Figure 7: nDCG-at-K of key attribute scoring, five gold domains.
#include "bench/key_accuracy.h"

int main() {
  egp::bench::RunKeyAccuracyBench(
      egp::bench::AccuracyMetric::kNdcg,
      "Figure 7: nDCG of key attribute scoring");
  return 0;
}
