#include "bench/bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <numeric>

#include "baseline/yps09.h"
#include "common/check.h"
#include "common/strings.h"
#include "common/timer.h"

namespace egp {
namespace bench {

const GeneratedDomain& Domain(const std::string& name) {
  static std::map<std::string, GeneratedDomain>* cache =
      new std::map<std::string, GeneratedDomain>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    auto domain = GenerateDomainByName(name, GeneratorOptions{});
    EGP_CHECK(domain.ok()) << "domain generation failed: "
                           << domain.status().ToString();
    it = cache->emplace(name, std::move(domain).value()).first;
  }
  return it->second;
}

std::vector<std::string> RankTypesByKeyMeasure(const GeneratedDomain& domain,
                                               KeyMeasure measure) {
  PreparedSchemaOptions options;
  options.key_measure = measure;
  auto prepared = PreparedSchema::Create(domain.schema, options);
  EGP_CHECK(prepared.ok());
  std::vector<std::pair<double, std::string>> scored;
  for (TypeId t = 0; t < prepared->num_types(); ++t) {
    scored.emplace_back(prepared->KeyScore(t), domain.schema.TypeName(t));
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<std::string> ranked;
  ranked.reserve(scored.size());
  for (auto& [score, name] : scored) ranked.push_back(std::move(name));
  return ranked;
}

std::vector<std::string> RankTypesByYps09(const GeneratedDomain& domain) {
  auto summary = RunYps09(domain.graph, domain.schema, Yps09Options{});
  EGP_CHECK(summary.ok()) << summary.status().ToString();
  std::vector<std::string> ranked;
  ranked.reserve(summary->ranked.size());
  for (TypeId t : summary->ranked) {
    ranked.push_back(domain.schema.TypeName(t));
  }
  return ranked;
}

GroundTruth GoldKeySet(const GeneratedDomain& domain) {
  GroundTruth truth;
  for (const GoldTable& table : domain.gold.tables) truth.insert(table.key);
  return truth;
}

double TimeMs(const std::function<void()>& fn, int repeats) {
  double total = 0.0;
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    fn();
    total += timer.ElapsedMillis();
  }
  const double mean = total / repeats;
  return std::max(mean, 1.0);  // paper convention: < 1 ms reports as 1 ms
}

std::string TimedDiscovery::Format() const {
  const auto rounded = static_cast<long long>(std::llround(ms));
  return extrapolated ? StrFormat("~%lld", rounded)
                      : StrFormat("%lld", rounded);
}

TimedDiscovery TimeBruteForce(const PreparedSchema& prepared,
                              const SizeConstraint& size,
                              const DistanceConstraint& distance,
                              uint64_t max_subsets) {
  BruteForceOptions options;
  options.max_subsets = max_subsets;
  DiscoveryStats stats;
  Timer timer;
  auto preview = BruteForceDiscover(prepared, size, distance, options, &stats);
  const double elapsed = timer.ElapsedMillis();
  (void)preview;  // NotFound is fine (infeasible constraint)

  TimedDiscovery result;
  if (!stats.truncated || stats.subsets_enumerated == 0) {
    result.ms = std::max(elapsed, 1.0);
    return result;
  }
  // Extrapolate to the untruncated subset count C(eligible, k).
  size_t eligible = 0;
  for (TypeId t = 0; t < prepared.num_types(); ++t) {
    if (prepared.Eligible(t)) ++eligible;
  }
  double total_subsets = 1.0;
  for (uint32_t i = 0; i < size.k; ++i) {
    total_subsets *= static_cast<double>(eligible - i) / (i + 1);
  }
  result.ms = std::max(
      elapsed * total_subsets / static_cast<double>(stats.subsets_enumerated),
      1.0);
  result.extrapolated = true;
  return result;
}

void PrintRow(const std::string& label, const std::vector<std::string>& cells,
              size_t label_width, size_t cell_width) {
  std::printf("%-*s", static_cast<int>(label_width), label.c_str());
  for (const std::string& cell : cells) {
    std::printf(" %*s", static_cast<int>(cell_width), cell.c_str());
  }
  std::printf("\n");
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

std::string FormatDouble(double value, int precision) {
  return StrFormat("%.*f", precision, value);
}

}  // namespace bench
}  // namespace egp
