// Figure 5: Precision-at-K of key attribute scoring, five gold domains.
#include "bench/key_accuracy.h"

int main() {
  egp::bench::RunKeyAccuracyBench(
      egp::bench::AccuracyMetric::kPrecision,
      "Figure 5: Precision-at-K of key attribute scoring");
  return 0;
}
