// Ablation: beam-search approximation quality and speed vs the exact
// algorithms, on the music domain — including the regimes where Apriori
// degenerates (diverse d=2) and the beam keeps running.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/apriori.h"
#include "core/beam_search.h"
#include "core/dynamic_programming.h"

namespace {

using namespace egp;

struct Config {
  const char* label;
  SizeConstraint size;
  DistanceConstraint distance;
};

void Run(const PreparedSchema& prepared, const Config& config) {
  // Exact optimum: DP for concise, Apriori (capped) otherwise.
  double exact_score = -1.0;
  double exact_ms = -1.0;
  {
    Timer timer;
    if (config.distance.mode == DistanceMode::kNone) {
      auto exact = DynamicProgrammingDiscover(prepared, config.size);
      if (exact.ok()) exact_score = exact->Score(prepared);
    } else {
      AprioriOptions options;
      options.max_level_size = 5'000'000;
      auto exact =
          AprioriDiscover(prepared, config.size, config.distance, options);
      if (exact.ok()) exact_score = exact->Score(prepared);
    }
    exact_ms = timer.ElapsedMillis();
  }

  Timer timer;
  auto beam = BeamSearchDiscover(prepared, config.size, config.distance);
  const double beam_ms = timer.ElapsedMillis();
  const double beam_score = beam.ok() ? beam->Score(prepared) : -1.0;

  std::string ratio = "n/a";
  if (exact_score > 0 && beam_score >= 0) {
    ratio = bench::FormatDouble(beam_score / exact_score, 4);
  } else if (exact_score < 0 && beam_score >= 0) {
    ratio = "exact DNF";
  }
  bench::PrintRow(config.label,
                  {exact_score >= 0 ? bench::FormatDouble(exact_score, 0)
                                    : std::string("DNF"),
                   bench::FormatDouble(std::max(exact_ms, 1.0), 0),
                   beam_score >= 0 ? bench::FormatDouble(beam_score, 0)
                                   : std::string("none"),
                   bench::FormatDouble(std::max(beam_ms, 1.0), 0), ratio},
                  26, 12);
}

}  // namespace

int main() {
  using namespace egp;
  bench::PrintHeader(
      "Ablation: beam search vs exact discovery (music domain)");
  auto prepared_or = PreparedSchema::Create(
      bench::Domain("music").schema, PreparedSchemaOptions{});
  EGP_CHECK(prepared_or.ok());
  const PreparedSchema prepared = std::move(prepared_or).value();

  bench::PrintRow("config", {"exact", "exact ms", "beam", "beam ms",
                             "ratio"},
                  26, 12);
  const Config configs[] = {
      {"concise k=5 n=10", {5, 10}, DistanceConstraint::None()},
      {"concise k=8 n=16", {8, 16}, DistanceConstraint::None()},
      {"tight d=2 k=5 n=10", {5, 10}, DistanceConstraint::Tight(2)},
      {"tight d=2 k=7 n=14", {7, 14}, DistanceConstraint::Tight(2)},
      {"diverse d=4 k=5 n=10", {5, 10}, DistanceConstraint::Diverse(4)},
      {"diverse d=2 k=6 n=12", {6, 12}, DistanceConstraint::Diverse(2)},
      {"diverse d=2 k=8 n=16", {8, 16}, DistanceConstraint::Diverse(2)},
  };
  for (const Config& config : configs) Run(prepared, config);
  std::printf(
      "\nReading: the beam stays within a few percent of optimal at "
      "millisecond cost, and still answers in the diverse d=2 regime where "
      "the exact Apriori level tables blow past the 5M cap (DNF).\n");
  return 0;
}
