// Table 4: Pearson correlation between scoring measures and simulated
// crowd (AMT) pairwise importance judgments — 50 pairs × 20 workers per
// domain, exactly the paper's protocol with simulated workers.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "baseline/yps09.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "eval/crowd_sim.h"
#include "eval/user_study.h"

namespace {

using namespace egp;

struct DomainScores {
  std::vector<double> coverage;
  std::vector<double> random_walk;
  std::vector<double> yps09;
  std::vector<double> latent;  // ground-truth utility for the workers
};

DomainScores ComputeScores(const GeneratedDomain& domain) {
  DomainScores scores;
  {
    auto prepared =
        PreparedSchema::Create(domain.schema, PreparedSchemaOptions{});
    EGP_CHECK(prepared.ok());
    for (TypeId t = 0; t < prepared->num_types(); ++t) {
      scores.coverage.push_back(prepared->KeyScore(t));
    }
  }
  {
    PreparedSchemaOptions options;
    options.key_measure = KeyMeasure::kRandomWalk;
    auto prepared = PreparedSchema::Create(domain.schema, options);
    EGP_CHECK(prepared.ok());
    for (TypeId t = 0; t < prepared->num_types(); ++t) {
      scores.random_walk.push_back(prepared->KeyScore(t));
    }
  }
  {
    auto summary = RunYps09(domain.graph, domain.schema, Yps09Options{});
    EGP_CHECK(summary.ok());
    scores.yps09 = summary->importance;
  }
  // Workers judge "importance" by common sense; in the synthetic world
  // that latent notion blends popularity with connectivity. Rank-normalize
  // both signals so neither scale dominates, and add per-type judgment
  // noise so no measure correlates perfectly.
  auto rank_normalized = [](const std::vector<double>& values) {
    std::vector<size_t> order(values.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&values](size_t a, size_t b) {
      return values[a] < values[b];
    });
    std::vector<double> out(values.size());
    for (size_t rank = 0; rank < order.size(); ++rank) {
      out[order[rank]] =
          static_cast<double>(rank) / static_cast<double>(order.size() - 1);
    }
    return out;
  };
  const auto cov_rank = rank_normalized(scores.coverage);
  const auto walk_rank = rank_normalized(scores.random_walk);
  Rng noise(991);
  for (size_t t = 0; t < scores.coverage.size(); ++t) {
    scores.latent.push_back(0.55 * cov_rank[t] + 0.3 * walk_rank[t] +
                            0.15 * noise.NextDouble());
  }
  return scores;
}

}  // namespace

int main() {
  using namespace egp;
  bench::PrintHeader(
      "Table 4: PCC of key attribute scoring vs crowd judgments");
  bench::PrintRow("domain", {"YPS09", "Coverage", "RandomWalk"});
  size_t domain_index = 0;
  for (const std::string& name : UserStudyDomains()) {
    const GeneratedDomain& domain = bench::Domain(name);
    const DomainScores scores = ComputeScores(domain);
    Rng rng(4242 + domain_index++);
    const auto judgments =
        SimulateCrowd(scores.latent, CrowdSimOptions{}, &rng);
    bench::PrintRow(
        name,
        {bench::FormatDouble(CrowdRankingPcc(judgments, scores.yps09), 2),
         bench::FormatDouble(CrowdRankingPcc(judgments, scores.coverage), 2),
         bench::FormatDouble(CrowdRankingPcc(judgments, scores.random_walk),
                             2)});
  }
  std::printf(
      "\nExpected shape (paper Table 4, key side): at least medium positive "
      "correlation (>= 0.3) for Coverage/RandomWalk in all domains, beating "
      "YPS09 in 4 of 5.\n");
  return 0;
}
