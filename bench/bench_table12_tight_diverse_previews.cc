// Table 12: sample optimal tight (d=2) and diverse (d=4) previews on the
// film domain, Coverage/Coverage, k=5, n=10 — plus the key-spread check
// that motivates the tight/diverse distinction.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/discoverer.h"
#include "graph/schema_distance.h"

namespace {

using namespace egp;

void ShowPreview(const PreviewDiscoverer& discoverer,
                 const DistanceConstraint& constraint, const char* label) {
  DiscoveryOptions options;
  options.size = {5, 10};
  options.distance = constraint;
  auto preview = discoverer.Discover(options);
  if (!preview.ok()) {
    std::printf("\n%s: %s\n", label, preview.status().ToString().c_str());
    return;
  }
  std::printf("\n%s (score %.4g)\n", label,
              preview->Score(discoverer.prepared()));
  std::printf("%s",
              DescribePreview(*preview, discoverer.prepared()).c_str());

  // Pairwise key distances — tight previews huddle, diverse ones spread.
  const auto keys = preview->Keys();
  const SchemaDistanceMatrix& dist = discoverer.prepared().distances();
  uint32_t min_d = UINT32_MAX, max_d = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = i + 1; j < keys.size(); ++j) {
      const uint32_t d = dist.Distance(keys[i], keys[j]);
      min_d = std::min(min_d, d);
      max_d = std::max(max_d, d);
    }
  }
  std::printf("pairwise key distance range: [%u, %u]\n", min_d, max_d);
}

}  // namespace

int main() {
  using namespace egp;
  bench::PrintHeader(
      "Table 12: sample optimal tight/diverse previews (film, Cov+Cov)");
  const GeneratedDomain& domain = bench::Domain("film");
  auto prepared =
      PreparedSchema::Create(domain.schema, PreparedSchemaOptions{});
  EGP_CHECK(prepared.ok());
  PreviewDiscoverer discoverer(std::move(prepared).value());

  ShowPreview(discoverer, DistanceConstraint::Tight(2),
              "tight preview, k=5, n=10, d=2");
  ShowPreview(discoverer, DistanceConstraint::Diverse(4),
              "diverse preview, k=5, n=10, d=4");
  std::printf(
      "\nExpected shape (paper Table 12): tight keys all orbit FILM "
      "(pairwise distance <= 2); diverse keys are far apart (>= 4) and "
      "cover unrelated concepts.\n");
  return 0;
}
