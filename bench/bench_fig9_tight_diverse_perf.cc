// Figure 9: execution time of optimal tight / diverse preview discovery —
// Brute-Force (Alg. 1) vs Apriori-style (Alg. 3).
//
// Four sweeps per constraint flavour, exactly the paper's:
//   (1) domains B/A/M at k=5, n=10 (tight d=2, diverse d=4);
//   (2) k = 3..9 on music, n=20;
//   (3) n = 8..20 on music, k=6;
//   (4) d = 2..6 on music, k=6, n=16.
// Brute force is capped + extrapolated ('~'); Apriori aborts with "DNF"
// when an intermediate level would exceed 5M candidate subsets — the
// degenerate regimes the paper calls out (tight d≈diameter, diverse d=2).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/apriori.h"

namespace {

using namespace egp;

PreparedSchema Prepare(const std::string& domain_name) {
  auto prepared = PreparedSchema::Create(
      bench::Domain(domain_name).schema, PreparedSchemaOptions{});
  EGP_CHECK(prepared.ok());
  return std::move(prepared).value();
}

std::string TimeApriori(const PreparedSchema& prepared, SizeConstraint size,
                        DistanceConstraint distance) {
  AprioriOptions options;
  options.max_level_size = 5'000'000;
  Timer timer;
  auto preview = AprioriDiscover(prepared, size, distance, options);
  const double ms = std::max(timer.ElapsedMillis(), 1.0);
  if (!preview.ok() && preview.status().code() == StatusCode::kOutOfRange) {
    return "DNF";  // level cap hit: the paper's pathological regime
  }
  return bench::FormatDouble(ms, 0);
}

void Sweeps(DistanceMode mode, uint32_t default_d) {
  auto constraint = [mode](uint32_t d) {
    return mode == DistanceMode::kTight ? DistanceConstraint::Tight(d)
                                        : DistanceConstraint::Diverse(d);
  };
  const char* flavour = mode == DistanceMode::kTight ? "tight" : "diverse";

  std::printf("\n--- %s previews (default d=%u) ---\n", flavour, default_d);

  std::printf("\n(1) domain sweep, k=5, n=10, d=%u\n", default_d);
  bench::PrintRow("domain", {"BruteForce", "Apriori"});
  for (const char* name : {"basketball", "architecture", "music"}) {
    const PreparedSchema prepared = Prepare(name);
    const SizeConstraint size{5, 10};
    bench::PrintRow(
        name, {bench::TimeBruteForce(prepared, size, constraint(default_d))
                   .Format(),
               TimeApriori(prepared, size, constraint(default_d))});
  }

  const PreparedSchema music = Prepare("music");

  std::printf("\n(2) k sweep, music, n=20, d=%u\n", default_d);
  bench::PrintRow("k", {"BruteForce", "Apriori"});
  for (uint32_t k = 3; k <= 9; ++k) {
    const SizeConstraint size{k, 20};
    bench::PrintRow(
        std::to_string(k),
        {bench::TimeBruteForce(music, size, constraint(default_d)).Format(),
         TimeApriori(music, size, constraint(default_d))});
  }

  std::printf("\n(3) n sweep, music, k=6, d=%u\n", default_d);
  bench::PrintRow("n", {"BruteForce", "Apriori"});
  for (uint32_t n = 8; n <= 20; n += 2) {
    const SizeConstraint size{6, n};
    bench::PrintRow(
        std::to_string(n),
        {bench::TimeBruteForce(music, size, constraint(default_d)).Format(),
         TimeApriori(music, size, constraint(default_d))});
  }

  std::printf("\n(4) d sweep, music, k=6, n=16\n");
  bench::PrintRow("d", {"BruteForce", "Apriori"});
  for (uint32_t d = 2; d <= 6; ++d) {
    const SizeConstraint size{6, 16};
    bench::PrintRow(
        std::to_string(d),
        {bench::TimeBruteForce(music, size, constraint(d)).Format(),
         TimeApriori(music, size, constraint(d))});
  }
}

}  // namespace

int main() {
  using namespace egp;
  bench::PrintHeader(
      "Figure 9: tight/diverse preview discovery time (ms), BF vs Apriori");
  Sweeps(DistanceMode::kTight, 2);
  Sweeps(DistanceMode::kDiverse, 4);
  std::printf(
      "\nExpected shape (paper Fig. 9): Apriori beats BF by orders of "
      "magnitude except when the distance constraint filters almost "
      "nothing — tight with d near the schema diameter and diverse with "
      "d=2 — where the candidate levels explode (DNF under the 5M cap).\n");
  return 0;
}
