// Figure 8: execution time of optimal concise preview discovery —
// Brute-Force (Alg. 1) vs Dynamic-Programming (Alg. 2).
//
// Three sweeps, exactly the paper's:
//   (1) domains basketball (B), architecture (A), music (M) at k=5, n=10;
//   (2) k = 3..9 on music, n = 20;
//   (3) n = 8..20 on music, k = 6.
// Brute force is capped at 2M subsets per configuration and linearly
// extrapolated beyond (prefixed with '~'); see EXPERIMENTS.md.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/dynamic_programming.h"

namespace {

using namespace egp;

PreparedSchema Prepare(const std::string& domain_name) {
  auto prepared = PreparedSchema::Create(
      bench::Domain(domain_name).schema, PreparedSchemaOptions{});
  EGP_CHECK(prepared.ok());
  return std::move(prepared).value();
}

std::string TimeDp(const PreparedSchema& prepared, SizeConstraint size) {
  const double ms = bench::TimeMs([&] {
    auto preview = DynamicProgrammingDiscover(prepared, size);
    EGP_CHECK(preview.ok()) << preview.status().ToString();
  });
  return bench::FormatDouble(ms, 0);
}

}  // namespace

int main() {
  using namespace egp;
  bench::PrintHeader(
      "Figure 8: concise preview discovery time (ms), BF vs DP");

  std::printf("\n(1) domain sweep, k=5, n=10\n");
  bench::PrintRow("domain", {"BruteForce", "DynamicProg"});
  for (const char* name : {"basketball", "architecture", "music"}) {
    const PreparedSchema prepared = Prepare(name);
    const SizeConstraint size{5, 10};
    bench::PrintRow(
        name,
        {bench::TimeBruteForce(prepared, size, DistanceConstraint::None())
             .Format(),
         TimeDp(prepared, size)});
  }

  std::printf("\n(2) k sweep, music, n=20\n");
  bench::PrintRow("k", {"BruteForce", "DynamicProg"});
  {
    const PreparedSchema prepared = Prepare("music");
    for (uint32_t k = 3; k <= 9; ++k) {
      const SizeConstraint size{k, 20};
      bench::PrintRow(
          std::to_string(k),
          {bench::TimeBruteForce(prepared, size, DistanceConstraint::None())
               .Format(),
           TimeDp(prepared, size)});
    }
  }

  std::printf("\n(3) n sweep, music, k=6\n");
  bench::PrintRow("n", {"BruteForce", "DynamicProg"});
  {
    const PreparedSchema prepared = Prepare("music");
    for (uint32_t n = 8; n <= 20; n += 2) {
      const SizeConstraint size{6, n};
      bench::PrintRow(
          std::to_string(n),
          {bench::TimeBruteForce(prepared, size, DistanceConstraint::None())
               .Format(),
           TimeDp(prepared, size)});
    }
  }

  std::printf(
      "\nExpected shape (paper Fig. 8): DP beats BF by orders of magnitude "
      "except on the tiny basketball schema and at k=3, where BF's simple "
      "loop wins; BF grows combinatorially in k, DP stays flat.\n");
  return 0;
}
