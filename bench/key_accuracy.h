// Shared driver for the Figs. 5–7 key-attribute accuracy experiments:
// rank candidate key types per measure, score against the Table 10 gold
// standard, print one series per measure for K = 1..20.
#ifndef EGP_BENCH_KEY_ACCURACY_H_
#define EGP_BENCH_KEY_ACCURACY_H_

namespace egp {
namespace bench {

enum class AccuracyMetric { kPrecision, kAveragePrecision, kNdcg };

/// Prints the full figure (5 domains × 4 series × K=1..20).
void RunKeyAccuracyBench(AccuracyMetric metric, const char* title);

}  // namespace bench
}  // namespace egp

#endif  // EGP_BENCH_KEY_ACCURACY_H_
