#include "bench/key_accuracy.h"

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "eval/ranking_metrics.h"
#include "eval/user_study.h"

namespace egp {
namespace bench {
namespace {

double Evaluate(AccuracyMetric metric, const std::vector<std::string>& ranked,
                const GroundTruth& truth, size_t k) {
  switch (metric) {
    case AccuracyMetric::kPrecision:
      return PrecisionAtK(ranked, truth, k);
    case AccuracyMetric::kAveragePrecision:
      return AveragePrecisionAtK(ranked, truth, k);
    case AccuracyMetric::kNdcg:
      return NdcgAtK(ranked, truth, k);
  }
  return 0.0;
}

double Optimal(AccuracyMetric metric, size_t truth_size, size_t k) {
  switch (metric) {
    case AccuracyMetric::kPrecision:
      return OptimalPrecisionAtK(truth_size, k);
    case AccuracyMetric::kAveragePrecision:
      return OptimalAveragePrecisionAtK(truth_size, k);
    case AccuracyMetric::kNdcg:
      return 1.0;  // the ideal ranking has nDCG 1 at every K
  }
  return 0.0;
}

}  // namespace

void RunKeyAccuracyBench(AccuracyMetric metric, const char* title) {
  PrintHeader(title);
  for (const std::string& name : UserStudyDomains()) {
    const GeneratedDomain& domain = Domain(name);
    const GroundTruth truth = GoldKeySet(domain);
    const auto coverage =
        RankTypesByKeyMeasure(domain, KeyMeasure::kCoverage);
    const auto random_walk =
        RankTypesByKeyMeasure(domain, KeyMeasure::kRandomWalk);
    const auto yps09 = RankTypesByYps09(domain);

    std::printf("\ndomain=%s (K axis 1..20)\n", name.c_str());
    PrintRow("K", {}, 14, 0);
    struct Series {
      const char* label;
      const std::vector<std::string>* ranking;
    };
    const Series series[] = {
        {"Coverage", &coverage},
        {"RandomWalk", &random_walk},
        {"YPS09", &yps09},
    };
    for (const Series& s : series) {
      std::vector<std::string> cells;
      for (size_t k = 1; k <= 20; ++k) {
        cells.push_back(FormatDouble(Evaluate(metric, *s.ranking, truth, k),
                                     2));
      }
      PrintRow(s.label, cells, 14, 5);
    }
    std::vector<std::string> optimal_cells;
    for (size_t k = 1; k <= 20; ++k) {
      optimal_cells.push_back(FormatDouble(Optimal(metric, truth.size(), k),
                                           2));
    }
    PrintRow("Optimal", optimal_cells, 14, 5);
  }
  std::printf(
      "\nExpected shape (paper): Coverage and RandomWalk track Optimal "
      "closely (P@10 near 0.6) and beat YPS09 in 4 of 5 domains.\n");
}

}  // namespace bench
}  // namespace egp
