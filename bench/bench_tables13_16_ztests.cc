// Tables 13-16: pairwise conversion-rate z-tests for books, film, tv and
// people — exact recomputations from the published Table 5 inputs.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/ztest_tables.h"

int main() {
  egp::bench::PrintHeader(
      "Tables 13-16: pairwise conversion-rate z-tests (books/film/tv/people)");
  for (size_t domain : {0u, 1u, 3u, 4u}) {
    egp::bench::PrintZTestTable(domain);
  }
  std::printf(
      "\nExpected (paper): books favours Graph and Diverse; film favours "
      "Freebase; tv shows YPS09 worst with no clear winner; people favours "
      "Graph and Tight over Diverse.\n");
  return 0;
}
