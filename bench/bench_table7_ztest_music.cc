// Table 7: pairwise comparisons of the seven approaches' conversion rates
// in the music domain. The z/p values are exact recomputations from the
// published Table 5 inputs — no simulation involved.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/ztest_tables.h"

int main() {
  egp::bench::PrintHeader(
      "Table 7: pairwise conversion-rate z-tests, domain=music");
  egp::bench::PrintZTestTable(2);
  std::printf(
      "\nExpected (paper Table 7): Tight outperforms all but Freebase; "
      "Diverse is significantly worse than every other approach.\n");
  return 0;
}
