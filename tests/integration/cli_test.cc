// End-to-end tests of the `egp` command-line tool: each subcommand is
// exercised against the shipped sample dataset through a real process.
#include <gtest/gtest.h>

#include <string>

#include "tests/testing/subprocess.h"

namespace egp {
namespace {

#ifndef EGP_CLI_PATH
#error "EGP_CLI_PATH must be defined by the build"
#endif
#ifndef EGP_SAMPLE_NT
#error "EGP_SAMPLE_NT must be defined by the build"
#endif

using testing_util::Slurp;
using testing_util::TempPath;

/// Runs the CLI, capturing stdout into a file; returns the exit code
/// (128 + signal for a crash).
int RunCli(const std::string& args, const std::string& stdout_path) {
  return testing_util::RunCommand(std::string(EGP_CLI_PATH) + " " + args,
                                  stdout_path);
}

TEST(CliTest, StatsSubcommand) {
  const std::string out = TempPath("cli_stats.txt");
  ASSERT_EQ(RunCli(std::string("stats ") + EGP_SAMPLE_NT, out), 0);
  const std::string text = Slurp(out);
  EXPECT_NE(text.find("entity graph : 20 entities, 22 relationships"),
            std::string::npos);
  EXPECT_NE(text.find("5 entity types"), std::string::npos);
}

TEST(CliTest, PreviewSubcommand) {
  const std::string out = TempPath("cli_preview.txt");
  ASSERT_EQ(
      RunCli(std::string("preview ") + EGP_SAMPLE_NT + " --k 2 --n 5", out),
      0);
  const std::string text = Slurp(out);
  EXPECT_NE(text.find("RESEARCHER"), std::string::npos);
  EXPECT_NE(text.find("score"), std::string::npos);
  EXPECT_NE(text.find("+"), std::string::npos);  // rendered table borders
}

TEST(CliTest, PreviewJsonOutput) {
  const std::string out = TempPath("cli_preview.json");
  ASSERT_EQ(RunCli(std::string("preview ") + EGP_SAMPLE_NT +
                       " --k 2 --n 4 --json",
                   out),
            0);
  const std::string text = Slurp(out);
  EXPECT_EQ(text.rfind("{\"tables\":[", 0), 0u);
  EXPECT_NE(text.find("\"rows\":["), std::string::npos);
}

TEST(CliTest, SuggestSubcommand) {
  const std::string out = TempPath("cli_suggest.txt");
  ASSERT_EQ(RunCli(std::string("suggest ") + EGP_SAMPLE_NT +
                       " --width 80 --height 24",
                   out),
            0);
  const std::string text = Slurp(out);
  EXPECT_NE(text.find("suggested: k="), std::string::npos);
  EXPECT_NE(text.find("rationale:"), std::string::npos);
}

TEST(CliTest, ReportSubcommand) {
  const std::string out = TempPath("cli_report.md");
  ASSERT_EQ(
      RunCli(std::string("report ") + EGP_SAMPLE_NT + " --k 2 --n 5", out),
      0);
  const std::string text = Slurp(out);
  EXPECT_NE(text.find("## Dataset statistics"), std::string::npos);
  EXPECT_NE(text.find("| **RESEARCHER** |"), std::string::npos);
}

TEST(CliTest, ConvertRoundTrip) {
  const std::string egt = TempPath("cli_convert.egt");
  const std::string out = TempPath("cli_convert.txt");
  ASSERT_EQ(RunCli(std::string("convert ") + EGP_SAMPLE_NT + " " + egt, out),
            0);
  // Re-read the converted snapshot through the stats subcommand.
  ASSERT_EQ(RunCli("stats " + egt, out), 0);
  EXPECT_NE(Slurp(out).find("20 entities, 22 relationships"),
            std::string::npos);
}

TEST(CliTest, GenerateSubcommand) {
  const std::string egt = TempPath("cli_generated.egt");
  const std::string out = TempPath("cli_generate.txt");
  ASSERT_EQ(RunCli("generate basketball " + egt + " --scale 0.02", out), 0);
  EXPECT_NE(Slurp(out).find("wrote"), std::string::npos);
  ASSERT_EQ(RunCli("stats " + egt, out), 0);
  EXPECT_NE(Slurp(out).find("6 entity types"), std::string::npos);
}

TEST(CliTest, BadInvocationsFailCleanly) {
  const std::string out = TempPath("cli_errors.txt");
  EXPECT_NE(RunCli("", out), 0);
  EXPECT_NE(RunCli("unknown-subcommand", out), 0);
  EXPECT_NE(RunCli("stats /no/such/file.nt", out), 0);
  EXPECT_NE(RunCli(std::string("preview ") + EGP_SAMPLE_NT + " --k 99",
                   out),
            0);  // infeasible constraint
}

TEST(CliTest, VersionSubcommand) {
  const std::string out = TempPath("cli_version.txt");
  ASSERT_EQ(RunCli("version", out), 0);
  EXPECT_EQ(Slurp(out).rfind("egp ", 0), 0u);
  ASSERT_EQ(RunCli("--version", out), 0);
  EXPECT_EQ(Slurp(out).rfind("egp ", 0), 0u);
}

TEST(CliTest, HelpSubcommand) {
  const std::string out = TempPath("cli_help.txt");
  ASSERT_EQ(RunCli("help", out), 0);
  const std::string text = Slurp(out);
  EXPECT_NE(text.find("usage: egp"), std::string::npos);
  EXPECT_NE(text.find("preview"), std::string::npos);
}

TEST(CliTest, UnknownFlagRejectedWithUsageError) {
  const std::string out = TempPath("cli_unknown_flag_out.txt");
  const std::string err = TempPath("cli_unknown_flag_err.txt");
  EXPECT_EQ(testing_util::RunCommandCapture(
                std::string(EGP_CLI_PATH) + " preview " + EGP_SAMPLE_NT +
                    " --frobnicate 3",
                out, err),
            2);
  EXPECT_NE(Slurp(err).find("unknown flag '--frobnicate'"),
            std::string::npos);
  EXPECT_EQ(Slurp(out), "");
}

TEST(CliTest, MissingFlagValueRejected) {
  const std::string out = TempPath("cli_missing_value_out.txt");
  const std::string err = TempPath("cli_missing_value_err.txt");
  EXPECT_EQ(testing_util::RunCommandCapture(
                std::string(EGP_CLI_PATH) + " preview " + EGP_SAMPLE_NT +
                    " --k",
                out, err),
            2);
  EXPECT_NE(Slurp(err).find("requires a value"), std::string::npos);
}

TEST(CliTest, UnknownMeasureOrAlgorithmValueIsUsageError) {
  const std::string out = TempPath("cli_badvalue_out.txt");
  const std::string err = TempPath("cli_badvalue_err.txt");
  for (const char* args :
       {"--algo quantum", "--key pagerank", "--nonkey pagerank"}) {
    EXPECT_EQ(testing_util::RunCommandCapture(
                  std::string(EGP_CLI_PATH) + " preview " + EGP_SAMPLE_NT +
                      " " + args,
                  out, err),
              2)
        << args;
    EXPECT_NE(Slurp(err).find("unknown"), std::string::npos) << args;
  }
}

TEST(CliTest, NegativeFlagValueIsParsedAsValue) {
  // A value starting with '-' must bind to the preceding flag instead of
  // being dropped or misread as the next flag; the CLI then rejects the
  // out-of-range value itself.
  const std::string out = TempPath("cli_negative_out.txt");
  const std::string err = TempPath("cli_negative_err.txt");
  EXPECT_EQ(testing_util::RunCommandCapture(
                std::string(EGP_CLI_PATH) + " preview " + EGP_SAMPLE_NT +
                    " --k -1",
                out, err),
            2);
  EXPECT_NE(Slurp(err).find(">= 1"), std::string::npos);
  EXPECT_EQ(testing_util::RunCommandCapture(
                std::string(EGP_CLI_PATH) + " preview " + EGP_SAMPLE_NT +
                    " --rows -3",
                out, err),
            2);
  EXPECT_NE(Slurp(err).find("non-negative"), std::string::npos);
}

TEST(CliTest, ZeroAndNegativeNumericFlagsAreUsageErrors) {
  // --threads/--k/--n/--tight/--diverse must be >= 1: zero is as wrong
  // as a negative value or garbage, and all exit 2 without touching the
  // engine. (--rows 0 stays valid: it means "skip materialization".)
  const std::string out = TempPath("cli_zero_out.txt");
  const std::string err = TempPath("cli_zero_err.txt");
  for (const char* args :
       {"--k 0", "--n 0", "--k -2", "--n -7", "--threads 0", "--threads -1",
        "--tight 0", "--diverse 0", "--tight -4", "--k abc"}) {
    EXPECT_EQ(testing_util::RunCommandCapture(
                  std::string(EGP_CLI_PATH) + " preview " + EGP_SAMPLE_NT +
                      " " + args,
                  out, err),
              2)
        << args;
    EXPECT_NE(Slurp(err).find("usage: egp"), std::string::npos) << args;
    EXPECT_EQ(Slurp(out), "") << args;
  }
  // suggest and report share the hardened parsers.
  EXPECT_EQ(testing_util::RunCommandCapture(
                std::string(EGP_CLI_PATH) + " suggest " + EGP_SAMPLE_NT +
                    " --threads 0",
                out, err),
            2);
  EXPECT_EQ(testing_util::RunCommandCapture(
                std::string(EGP_CLI_PATH) + " report " + EGP_SAMPLE_NT +
                    " --k 0",
                out, err),
            2);
  // A valid explicit value still works.
  EXPECT_EQ(RunCli(std::string("preview ") + EGP_SAMPLE_NT +
                       " --k 2 --n 4 --threads 1",
                   out),
            0);
}

TEST(CliTest, VerbosePrintsCacheStats) {
  const std::string out = TempPath("cli_verbose_out.txt");
  const std::string err = TempPath("cli_verbose_err.txt");
  ASSERT_EQ(testing_util::RunCommandCapture(
                std::string(EGP_CLI_PATH) + " preview " + EGP_SAMPLE_NT +
                    " --k 2 --n 4 --verbose",
                out, err),
            0);
  const std::string text = Slurp(err);
  EXPECT_NE(text.find("cache   : 1 entry, 0 hit(s), 1 miss(es)"),
            std::string::npos)
      << text;
}

TEST(CliTest, BadUsagePrintsToStderrWithExitCode2) {
  const std::string out = TempPath("cli_usage_out.txt");
  const std::string err = TempPath("cli_usage_err.txt");
  for (const char* args : {"", "unknown-subcommand", "stats",
                           "preview", "generate onlyone"}) {
    EXPECT_EQ(testing_util::RunCommandCapture(
                  std::string(EGP_CLI_PATH) + " " + args, out, err),
              2)
        << args;
    EXPECT_NE(Slurp(err).find("usage: egp"), std::string::npos) << args;
    EXPECT_EQ(Slurp(out), "") << args;
  }
}

}  // namespace
}  // namespace egp
