// End-to-end test of the parse -> compile -> serve workflow through the
// real binaries: egp_compile turns the shipped sample .nt into an .egps
// snapshot, and the egp CLI must produce byte-identical previews from
// either representation.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "tests/testing/subprocess.h"

namespace egp {
namespace {

#ifndef EGP_COMPILE_PATH
#error "EGP_COMPILE_PATH must be defined by the build"
#endif
#ifndef EGP_CLI_PATH
#error "EGP_CLI_PATH must be defined by the build"
#endif
#ifndef EGP_SAMPLE_NT
#error "EGP_SAMPLE_NT must be defined by the build"
#endif

using testing_util::RunCommand;
using testing_util::Slurp;
using testing_util::TempPath;

TEST(EgpCompileTest, CompileThenPreviewIsByteIdentical) {
  const std::string snapshot = TempPath("compiled_sample.egps");
  const std::string compile_out = TempPath("compile_out.txt");
  ASSERT_EQ(RunCommand(std::string(EGP_COMPILE_PATH) + " " + EGP_SAMPLE_NT +
                           " " + snapshot + " --verify",
                       compile_out),
            0)
      << Slurp(compile_out);
  EXPECT_NE(Slurp(compile_out).find("compiled"), std::string::npos);

  const std::string flags =
      " --k 2 --n 4 --rows 3 --seed 9 --key randomwalk --nonkey entropy";
  const std::string nt_out = TempPath("preview_nt.txt");
  const std::string egps_out = TempPath("preview_egps.txt");
  ASSERT_EQ(RunCommand(std::string(EGP_CLI_PATH) + " preview " +
                           EGP_SAMPLE_NT + flags,
                       nt_out),
            0);
  ASSERT_EQ(RunCommand(std::string(EGP_CLI_PATH) + " preview " + snapshot +
                           flags,
                       egps_out),
            0);
  const std::string from_nt = Slurp(nt_out);
  ASSERT_FALSE(from_nt.empty());
  EXPECT_EQ(from_nt, Slurp(egps_out))
      << "previews from .nt and .egps diverge";

  // stats opens the snapshot too (auto-detected by magic).
  const std::string stats_out = TempPath("stats_egps.txt");
  ASSERT_EQ(RunCommand(std::string(EGP_CLI_PATH) + " stats " + snapshot,
                       stats_out),
            0);
  EXPECT_NE(Slurp(stats_out).find("20 entities"), std::string::npos);

  std::remove(snapshot.c_str());
}

TEST(EgpCompileTest, ConvertDispatchesOnOutputExtension) {
  // `egp convert x.nt out.egps` must write a real snapshot, not EGT
  // text under a snapshot name (which every loader would then reject).
  const std::string snapshot = TempPath("converted.egps");
  const std::string out = TempPath("convert_out.txt");
  ASSERT_EQ(RunCommand(std::string(EGP_CLI_PATH) + " convert " +
                           EGP_SAMPLE_NT + " " + snapshot,
                       out),
            0)
      << Slurp(out);
  ASSERT_EQ(RunCommand(std::string(EGP_CLI_PATH) + " stats " + snapshot,
                       out),
            0)
      << Slurp(out);
  EXPECT_NE(Slurp(out).find("20 entities"), std::string::npos);
  std::remove(snapshot.c_str());
}

TEST(EgpCompileTest, InPlaceRecompileIsSafe) {
  // Recompiling a snapshot onto itself must not corrupt it (the input
  // is loaded to the heap, never written through a live mapping).
  const std::string snapshot = TempPath("inplace.egps");
  const std::string out = TempPath("inplace_out.txt");
  ASSERT_EQ(RunCommand(std::string(EGP_COMPILE_PATH) + " " + EGP_SAMPLE_NT +
                           " " + snapshot,
                       out),
            0);
  ASSERT_EQ(RunCommand(std::string(EGP_COMPILE_PATH) + " " + snapshot +
                           " " + snapshot + " --verify",
                       out),
            0)
      << Slurp(out);
  EXPECT_EQ(RunCommand(std::string(EGP_CLI_PATH) + " stats " + snapshot,
                       out),
            0);
  EXPECT_NE(Slurp(out).find("20 entities"), std::string::npos);
  std::remove(snapshot.c_str());
}

TEST(EgpCompileTest, UsageAndRuntimeErrors) {
  const std::string out = TempPath("compile_err.txt");
  // Missing arguments: usage error, exit 2.
  EXPECT_EQ(RunCommand(std::string(EGP_COMPILE_PATH), out), 2);
  EXPECT_EQ(RunCommand(std::string(EGP_COMPILE_PATH) + " --threads abc a b",
                       out),
            2);
  // Unreadable input: runtime failure, exit 1.
  EXPECT_EQ(RunCommand(std::string(EGP_COMPILE_PATH) +
                           " /no/such/file.nt " + TempPath("x.egps"),
                       out),
            1);
}

TEST(EgpCompileTest, CorruptSnapshotFailsCleanlyInCli) {
  // A truncated snapshot must produce a clean error (exit 1), never a
  // crash, through the whole loading stack.
  const std::string snapshot = TempPath("to_truncate.egps");
  const std::string out = TempPath("truncate_out.txt");
  ASSERT_EQ(RunCommand(std::string(EGP_COMPILE_PATH) + " " + EGP_SAMPLE_NT +
                           " " + snapshot,
                       out),
            0);
  const std::string bytes = Slurp(snapshot);
  ASSERT_GT(bytes.size(), 100u);
  {
    std::ofstream truncated(snapshot,
                            std::ios::binary | std::ios::trunc);
    truncated.write(bytes.data(),
                    static_cast<std::streamsize>(bytes.size() / 3));
  }
  EXPECT_EQ(RunCommand(std::string(EGP_CLI_PATH) + " stats " + snapshot,
                       out),
            1);
  std::remove(snapshot.c_str());
}

}  // namespace
}  // namespace egp
