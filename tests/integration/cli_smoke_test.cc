// End-to-end smoke test of the `egp` CLI pipeline: generate a synthetic
// domain, preview it as JSON, and structurally validate the JSON output.
// Complements cli_test.cc, which exercises each subcommand against the
// shipped sample dataset.
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "tests/testing/subprocess.h"

namespace egp {
namespace {

#ifndef EGP_CLI_PATH
#error "EGP_CLI_PATH must be defined by the build"
#endif

using testing_util::Slurp;
using testing_util::TempPath;

int RunCli(const std::string& args, const std::string& stdout_path) {
  return testing_util::RunCommand(std::string(EGP_CLI_PATH) + " " + args,
                                  stdout_path);
}

/// Minimal structural JSON check: balanced braces/brackets outside strings
/// and nothing after the closing root brace. Keeps the test dependency-free
/// while still catching truncated or interleaved output.
bool IsStructurallyValidJsonObject(const std::string& text) {
  size_t i = 0;
  const size_t n = text.size();
  while (i < n && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  if (i >= n || text[i] != '{') return false;
  int depth = 0;
  bool in_string = false;
  for (; i < n; ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      if (depth < 0) return false;
      if (depth == 0) break;
    }
  }
  if (depth != 0 || in_string) return false;
  for (++i; i < n; ++i) {
    if (!std::isspace(static_cast<unsigned char>(text[i]))) return false;
  }
  return true;
}

TEST(CliSmokeTest, GeneratePreviewJsonPipeline) {
  const std::string egt = TempPath("smoke_music.egt");
  const std::string gen_out = TempPath("smoke_generate.txt");
  ASSERT_EQ(RunCli("generate music " + egt + " --scale 0.001 --seed 42",
                   gen_out),
            0);
  EXPECT_NE(Slurp(gen_out).find("wrote"), std::string::npos);

  const std::string json_out = TempPath("smoke_preview.json");
  ASSERT_EQ(RunCli("preview " + egt + " --k 2 --n 5 --json", json_out), 0);
  const std::string json = Slurp(json_out);

  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(IsStructurallyValidJsonObject(json)) << json.substr(0, 400);
  EXPECT_EQ(json.rfind("{\"tables\":[", 0), 0u);
  EXPECT_NE(json.find("\"key\":"), std::string::npos);
  EXPECT_NE(json.find("\"rows\":["), std::string::npos);
}

TEST(CliSmokeTest, GenerateIsSeedDeterministic) {
  const std::string a = TempPath("smoke_seed_a.egt");
  const std::string b = TempPath("smoke_seed_b.egt");
  const std::string out = TempPath("smoke_seed.txt");
  ASSERT_EQ(RunCli("generate music " + a + " --scale 0.001 --seed 7", out), 0);
  ASSERT_EQ(RunCli("generate music " + b + " --scale 0.001 --seed 7", out), 0);
  EXPECT_EQ(Slurp(a), Slurp(b));
  EXPECT_FALSE(Slurp(a).empty());
}

}  // namespace
}  // namespace egp
