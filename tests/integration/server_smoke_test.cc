// End-to-end smoke test of the egp_server *binary*: boots it on an
// ephemeral port against the shipped sample dataset, exercises the API
// over real HTTP, checks the served preview is bit-identical to the
// in-process Engine export, and verifies SIGTERM drains cleanly.
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "io/json_export.h"
#include "io/ntriples.h"
#include "server/http_client.h"
#include "service/engine.h"
#include "tests/testing/subprocess.h"

namespace egp {
namespace {

#ifndef EGP_SERVER_PATH
#error "EGP_SERVER_PATH must be defined by the build"
#endif
#ifndef EGP_SAMPLE_NT
#error "EGP_SAMPLE_NT must be defined by the build"
#endif

using testing_util::Slurp;
using testing_util::TempPath;
using namespace std::chrono_literals;

/// The booted server process: stdout tailed for the listening line,
/// SIGTERM + wait-for-exit on teardown.
class ServerProcess {
 public:
  bool Boot() {
    out_path_ = TempPath("server_smoke_out.txt");
    pid_path_ = TempPath("server_smoke_pid.txt");
    // Stale files from a previous run would hand us a dead port.
    std::remove(out_path_.c_str());
    std::remove(pid_path_.c_str());
    const std::string command =
        std::string(EGP_SERVER_PATH) + " --dataset sample=" + EGP_SAMPLE_NT +
        " --port 0 --workers 2 > " + out_path_ + " 2>/dev/null & echo $! > " +
        pid_path_;
    if (std::system(command.c_str()) != 0) return false;

    // Wait for the listening line (the build may be ASan-slowed).
    for (int i = 0; i < 300; ++i) {
      const std::string out = Slurp(out_path_);
      const size_t at = out.find("listening on 127.0.0.1:");
      if (at != std::string::npos) {
        port_ = std::atoi(out.c_str() + at + 23);
        pid_ = std::atoi(Slurp(pid_path_).c_str());
        return port_ > 0 && pid_ > 0;
      }
      std::this_thread::sleep_for(100ms);
    }
    return false;
  }

  /// SIGTERM then wait for the process to disappear.
  bool ShutdownGracefully() {
    if (pid_ <= 0) return false;
    if (::kill(pid_, SIGTERM) != 0) return false;
    for (int i = 0; i < 300; ++i) {
      if (::kill(pid_, 0) != 0) return true;  // gone
      std::this_thread::sleep_for(100ms);
    }
    return false;
  }

  ~ServerProcess() {
    if (pid_ > 0 && ::kill(pid_, 0) == 0) ::kill(pid_, SIGKILL);
  }

  uint16_t port() const { return static_cast<uint16_t>(port_); }
  std::string Stdout() const { return Slurp(out_path_); }

 private:
  std::string out_path_;
  std::string pid_path_;
  int port_ = 0;
  int pid_ = -1;
};

TEST(ServerSmokeTest, BootServeCompareDrain) {
  ServerProcess server;
  ASSERT_TRUE(server.Boot()) << server.Stdout();
  HttpClient client("127.0.0.1", server.port());

  // ---- /healthz
  const auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  EXPECT_NE(health->body.find("\"status\":\"ok\""), std::string::npos);

  // ---- /v1/datasets
  const auto datasets = client.Get("/v1/datasets");
  ASSERT_TRUE(datasets.ok());
  EXPECT_EQ(datasets->status, 200);
  EXPECT_NE(datasets->body.find("\"name\":\"sample\""), std::string::npos);
  EXPECT_NE(datasets->body.find("\"entities\":20"), std::string::npos);
  EXPECT_NE(datasets->body.find("\"relationships\":22"), std::string::npos);

  // ---- /v1/preview vs the in-process Engine golden
  const auto preview = client.Post(
      "/v1/preview", R"({"k":2,"n":4,"sample":{"rows":2,"seed":7}})");
  ASSERT_TRUE(preview.ok()) << preview.status().ToString();
  ASSERT_EQ(preview->status, 200) << preview->body;

  auto graph = ReadNTriplesFile(EGP_SAMPLE_NT);
  ASSERT_TRUE(graph.ok());
  const Engine engine = Engine::FromGraph(std::move(graph).value());
  PreviewRequest request;
  request.size = {2, 4};
  request.sample_rows = 2;
  request.sample_seed = 7;
  const auto golden = engine.Preview(request);
  ASSERT_TRUE(golden.ok());

  const std::string preview_json =
      "\"preview\":" + PreviewToJson(*golden->prepared, golden->preview);
  EXPECT_NE(preview->body.find(preview_json), std::string::npos)
      << "served preview != in-process export:\n" << preview->body;
  const std::string materialized_json =
      "\"materialized\":" +
      MaterializedPreviewToJson(*engine.graph(), golden->materialized);
  EXPECT_NE(preview->body.find(materialized_json), std::string::npos);

  // ---- malformed body must yield a clean 400, not a crash
  const auto bad = client.Post("/v1/preview", "{\"k\":");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400);

  // ---- graceful SIGTERM drain
  client.Disconnect();
  ASSERT_TRUE(server.ShutdownGracefully()) << server.Stdout();
  EXPECT_NE(server.Stdout().find("drained:"), std::string::npos)
      << server.Stdout();
}

}  // namespace
}  // namespace egp
