// Executable verification of the §4.1 NP-hardness reductions:
//   Clique(G, k)  ⇔  TightPreview(Gs, k, k, 1, 0)     (Theorem 1)
//   Clique(G, k)  ⇔  DiversePreview(Gs', k, k, 2, 0)  (Theorem 2)
// on randomized graphs, with the clique side solved by two independent
// exact algorithms.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/schema_distance.h"
#include "reduction/reduction.h"

namespace egp {
namespace {

SimpleGraph RandomGraph(uint64_t seed, size_t n, double density) {
  Rng rng(seed);
  SimpleGraph g(n);
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = u + 1; v < n; ++v) {
      if (rng.NextBernoulli(density)) g.AddEdge(u, v);
    }
  }
  return g;
}

TEST(ReductionConstructionTest, TightSchemaIsIsomorphic) {
  const SimpleGraph g = RandomGraph(1, 8, 0.5);
  const SchemaGraph schema = BuildTightReductionSchema(g);
  EXPECT_EQ(schema.num_types(), 8u);
  EXPECT_EQ(schema.num_edges(), g.num_edges());
}

TEST(ReductionConstructionTest, DiverseSchemaAddsHub) {
  const SimpleGraph g = RandomGraph(2, 8, 0.5);
  const SchemaGraph schema = BuildDiverseReductionSchema(g);
  EXPECT_EQ(schema.num_types(), 9u);  // + τ0
  // Complement edges + 8 hub edges.
  const size_t complement_edges = (8 * 7) / 2 - g.num_edges();
  EXPECT_EQ(schema.num_edges(), complement_edges + 8);
  // The hub (type 0) is adjacent to everything → diameter ≤ 2.
  const SchemaDistanceMatrix dist(schema);
  EXPECT_LE(dist.Diameter(), 2u);
}

TEST(ReductionConstructionTest, Figure4AdjacencySemantics) {
  // Fig. 4's walkthrough: vertices adjacent in G are at distance exactly
  // 2 in Gs (via τ0); non-adjacent vertices are at distance 1.
  SimpleGraph g(3);
  g.AddEdge(0, 1);  // adjacent in G
  const SchemaGraph schema = BuildDiverseReductionSchema(g);
  const SchemaDistanceMatrix dist(schema);
  // Types 1..3 map to vertices 0..2.
  EXPECT_EQ(dist.Distance(1, 2), 2u);  // edge in G → complement removes it
  EXPECT_EQ(dist.Distance(1, 3), 1u);  // non-edge in G → complement edge
}

class ReductionEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReductionEquivalenceTest, Theorem1TightEquivalence) {
  Rng rng(GetParam());
  const size_t n = 5 + rng.NextBounded(5);  // 5..9 vertices
  const double density = 0.3 + 0.4 * rng.NextDouble();
  const SimpleGraph g = RandomGraph(GetParam() * 31, n, density);
  const SchemaGraph schema = BuildTightReductionSchema(g);
  for (uint32_t k = 2; k <= 4; ++k) {
    const bool clique = HasKCliqueBronKerbosch(g, k);
    const auto preview = TightPreviewDecision(schema, k, k, 1, 0.0);
    ASSERT_TRUE(preview.ok()) << preview.status().ToString();
    EXPECT_EQ(*preview, clique) << "n=" << n << " k=" << k;
  }
}

TEST_P(ReductionEquivalenceTest, Theorem2DiverseEquivalence) {
  Rng rng(GetParam() * 7 + 3);
  const size_t n = 5 + rng.NextBounded(5);
  const double density = 0.3 + 0.4 * rng.NextDouble();
  const SimpleGraph g = RandomGraph(GetParam() * 57, n, density);
  const SchemaGraph schema = BuildDiverseReductionSchema(g);
  for (uint32_t k = 2; k <= 4; ++k) {
    const bool clique = HasKCliqueApriori(g, k);
    const auto preview = DiversePreviewDecision(schema, k, k, 2, 0.0);
    ASSERT_TRUE(preview.ok()) << preview.status().ToString();
    EXPECT_EQ(*preview, clique) << "n=" << n << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ReductionEquivalenceTest,
                         ::testing::Range<uint64_t>(500, 525));

TEST(ReductionEdgeCaseTest, TriangleTight) {
  SimpleGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  const SchemaGraph schema = BuildTightReductionSchema(g);
  EXPECT_TRUE(*TightPreviewDecision(schema, 3, 3, 1, 0.0));
  EXPECT_FALSE(*TightPreviewDecision(schema, 4, 4, 1, 0.0));
}

TEST(ReductionEdgeCaseTest, IndependentSetDiverse) {
  // G with NO edges: every pair is a "non-clique", so only k=1 cliques
  // exist... in the complement construction all original vertices are
  // directly connected, hence no diverse pair at distance ≥ 2.
  SimpleGraph g(4);
  const SchemaGraph schema = BuildDiverseReductionSchema(g);
  EXPECT_TRUE(*DiversePreviewDecision(schema, 1, 1, 2, 0.0));
  EXPECT_FALSE(*DiversePreviewDecision(schema, 2, 2, 2, 0.0));
  EXPECT_FALSE(HasKCliqueBronKerbosch(g, 2));
}

TEST(ReductionEdgeCaseTest, CompleteGraphDiverse) {
  SimpleGraph g(4);
  for (size_t u = 0; u < 4; ++u) {
    for (size_t v = u + 1; v < 4; ++v) g.AddEdge(u, v);
  }
  const SchemaGraph schema = BuildDiverseReductionSchema(g);
  // K4: cliques of all sizes up to 4 exist.
  EXPECT_TRUE(*DiversePreviewDecision(schema, 4, 4, 2, 0.0));
  EXPECT_TRUE(HasKCliqueBronKerbosch(g, 4));
}

}  // namespace
}  // namespace egp
