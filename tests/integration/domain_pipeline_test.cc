// End-to-end pipeline on a generated Freebase-like domain, covering the
// whole evaluation stack: generation → scoring → discovery (all three
// algorithms) → baseline ranking → accuracy metrics.
#include <gtest/gtest.h>

#include "baseline/yps09.h"
#include "core/discoverer.h"
#include "core/tuple_sampler.h"
#include "datagen/generator.h"
#include "eval/ranking_metrics.h"
#include "io/preview_renderer.h"

namespace egp {
namespace {

class DomainPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions options;
    options.scale = 0.0005;
    auto domain = GenerateDomainByName("film", options);
    ASSERT_TRUE(domain.ok()) << domain.status().ToString();
    domain_ = new GeneratedDomain(std::move(domain).value());
  }
  static void TearDownTestSuite() {
    delete domain_;
    domain_ = nullptr;
  }

  static GeneratedDomain* domain_;
};

GeneratedDomain* DomainPipelineTest::domain_ = nullptr;

TEST_F(DomainPipelineTest, AllAlgorithmsAgreeOnGeneratedSchema) {
  auto prepared_or =
      PreparedSchema::Create(domain_->schema, PreparedSchemaOptions{});
  ASSERT_TRUE(prepared_or.ok());
  PreviewDiscoverer discoverer(std::move(prepared_or).value());

  DiscoveryOptions options;
  options.size = {3, 8};
  DiscoveryStats stats;
  options.algorithm = Algorithm::kBruteForce;
  const auto bf = discoverer.Discover(options, &stats);
  options.algorithm = Algorithm::kDynamicProgramming;
  const auto dp = discoverer.Discover(options);
  ASSERT_TRUE(bf.ok() && dp.ok());
  EXPECT_NEAR(bf->Score(discoverer.prepared()),
              dp->Score(discoverer.prepared()), 1e-3);

  options.distance = DistanceConstraint::Tight(2);
  options.algorithm = Algorithm::kBruteForce;
  const auto bf_tight = discoverer.Discover(options);
  options.algorithm = Algorithm::kApriori;
  const auto ap_tight = discoverer.Discover(options);
  ASSERT_TRUE(bf_tight.ok() && ap_tight.ok());
  EXPECT_NEAR(bf_tight->Score(discoverer.prepared()),
              ap_tight->Score(discoverer.prepared()), 1e-3);
}

TEST_F(DomainPipelineTest, CoverageRankingFindsGoldTypes) {
  auto prepared_or =
      PreparedSchema::Create(domain_->schema, PreparedSchemaOptions{});
  ASSERT_TRUE(prepared_or.ok());
  const PreparedSchema& prepared = *prepared_or;

  std::vector<std::pair<double, std::string>> scored;
  for (TypeId t = 0; t < prepared.num_types(); ++t) {
    scored.emplace_back(prepared.KeyScore(t),
                        prepared.schema().TypeName(t));
  }
  std::sort(scored.rbegin(), scored.rend());
  std::vector<std::string> ranked;
  for (const auto& [score, name] : scored) ranked.push_back(name);

  GroundTruth truth;
  for (const auto& name : domain_->gold.KeyNames()) truth.insert(name);
  // Fig. 5 shape: coverage P@10 well above random (6/63 ≈ 0.10 baseline).
  EXPECT_GE(PrecisionAtK(ranked, truth, 10), 0.4);
  EXPECT_GE(NdcgAtK(ranked, truth, 10), 0.5);
}

TEST_F(DomainPipelineTest, EntropyScoringWorksOnGeneratedGraph) {
  PreparedSchemaOptions options;
  options.key_measure = KeyMeasure::kRandomWalk;
  options.nonkey_measure = NonKeyMeasure::kEntropy;
  auto prepared_or =
      PreparedSchema::Create(domain_->schema, options, &domain_->graph);
  ASSERT_TRUE(prepared_or.ok());
  PreviewDiscoverer discoverer(std::move(prepared_or).value());
  DiscoveryOptions discovery;
  discovery.size = {5, 10};
  const auto preview = discoverer.Discover(discovery);
  ASSERT_TRUE(preview.ok());
  EXPECT_TRUE(ValidatePreview(*preview, discoverer.prepared(),
                              discovery.size, discovery.distance)
                  .ok());
}

TEST_F(DomainPipelineTest, MaterializeAndRenderGeneratedPreview) {
  auto prepared_or =
      PreparedSchema::Create(domain_->schema, PreparedSchemaOptions{});
  ASSERT_TRUE(prepared_or.ok());
  PreviewDiscoverer discoverer(std::move(prepared_or).value());
  DiscoveryOptions options;
  options.size = {5, 10};
  const auto preview = discoverer.Discover(options);
  ASSERT_TRUE(preview.ok());
  const auto mat = MaterializePreview(domain_->graph, discoverer.prepared(),
                                      *preview);
  ASSERT_TRUE(mat.ok());
  EXPECT_EQ(mat->tables.size(), 5u);
  const std::string text = RenderPreview(domain_->graph, *mat);
  EXPECT_GT(text.size(), 100u);
}

TEST_F(DomainPipelineTest, Yps09BaselineRunsAndRanks) {
  const auto summary =
      RunYps09(domain_->graph, domain_->schema, Yps09Options{});
  ASSERT_TRUE(summary.ok());
  std::vector<std::string> ranked;
  for (TypeId t : summary->ranked) {
    ranked.push_back(domain_->schema.TypeName(t));
  }
  GroundTruth truth;
  for (const auto& name : domain_->gold.KeyNames()) truth.insert(name);
  // The baseline should be strictly worse than coverage here, mirroring
  // Fig. 5 (it optimizes information content, not popularity).
  auto prepared_or =
      PreparedSchema::Create(domain_->schema, PreparedSchemaOptions{});
  ASSERT_TRUE(prepared_or.ok());
  std::vector<std::pair<double, std::string>> scored;
  for (TypeId t = 0; t < prepared_or->num_types(); ++t) {
    scored.emplace_back(prepared_or->KeyScore(t),
                        prepared_or->schema().TypeName(t));
  }
  std::sort(scored.rbegin(), scored.rend());
  std::vector<std::string> coverage_ranked;
  for (const auto& [s, name] : scored) coverage_ranked.push_back(name);
  EXPECT_LE(AveragePrecisionAtK(ranked, truth, 20),
            AveragePrecisionAtK(coverage_ranked, truth, 20) + 0.15);
}

TEST_F(DomainPipelineTest, DiversePreviewSpreadsKeys) {
  auto prepared_or =
      PreparedSchema::Create(domain_->schema, PreparedSchemaOptions{});
  ASSERT_TRUE(prepared_or.ok());
  PreviewDiscoverer discoverer(std::move(prepared_or).value());
  DiscoveryOptions options;
  options.size = {4, 8};
  options.distance = DistanceConstraint::Diverse(3);
  const auto preview = discoverer.Discover(options);
  if (!preview.ok()) {
    GTEST_SKIP() << "no diverse preview at d=3 in this generated schema";
  }
  const auto keys = preview->Keys();
  const SchemaDistanceMatrix& dist = discoverer.prepared().distances();
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_GE(dist.Distance(keys[i], keys[j]), 3u);
    }
  }
}

}  // namespace
}  // namespace egp
