// End-to-end pipeline on a generated Freebase-like domain, served through
// one shared egp::Engine and covering the whole evaluation stack:
// generation → scoring → discovery (all three algorithms) → baseline
// ranking → accuracy metrics.
#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/yps09.h"
#include "datagen/generator.h"
#include "eval/ranking_metrics.h"
#include "io/preview_renderer.h"
#include "service/engine.h"

namespace egp {
namespace {

class DomainPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions options;
    options.scale = 0.0005;
    auto domain = GenerateDomainByName("film", options);
    ASSERT_TRUE(domain.ok()) << domain.status().ToString();
    domain_ = new GeneratedDomain(std::move(domain).value());
    engine_ = new Engine(Engine::FromGraph(domain_->graph));
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
    delete domain_;
    domain_ = nullptr;
  }

  /// Coverage-ranked type names from the engine's prepared snapshot.
  static std::vector<std::string> CoverageRankedNames() {
    auto prepared = engine_->Prepared();
    EXPECT_TRUE(prepared.ok());
    std::vector<std::pair<double, std::string>> scored;
    for (TypeId t = 0; t < (*prepared)->num_types(); ++t) {
      scored.emplace_back((*prepared)->KeyScore(t),
                          (*prepared)->schema().TypeName(t));
    }
    std::sort(scored.rbegin(), scored.rend());
    std::vector<std::string> ranked;
    for (const auto& [score, name] : scored) ranked.push_back(name);
    return ranked;
  }

  static GeneratedDomain* domain_;
  static Engine* engine_;
};

GeneratedDomain* DomainPipelineTest::domain_ = nullptr;
Engine* DomainPipelineTest::engine_ = nullptr;

TEST_F(DomainPipelineTest, AllAlgorithmsAgreeOnGeneratedSchema) {
  PreviewRequest request;
  request.size = {3, 8};
  request.algorithm = "bf";
  const auto bf = engine_->Preview(request);
  request.algorithm = "dp";
  const auto dp = engine_->Preview(request);
  ASSERT_TRUE(bf.ok() && dp.ok());
  EXPECT_NEAR(bf->score, dp->score, 1e-3);

  request.distance = DistanceConstraint::Tight(2);
  request.algorithm = "bf";
  const auto bf_tight = engine_->Preview(request);
  request.algorithm = "apriori";
  const auto ap_tight = engine_->Preview(request);
  ASSERT_TRUE(bf_tight.ok() && ap_tight.ok());
  EXPECT_NEAR(bf_tight->score, ap_tight->score, 1e-3);
}

TEST_F(DomainPipelineTest, CoverageRankingFindsGoldTypes) {
  const std::vector<std::string> ranked = CoverageRankedNames();
  GroundTruth truth;
  for (const auto& name : domain_->gold.KeyNames()) truth.insert(name);
  // Fig. 5 shape: coverage P@10 well above random (6/63 ≈ 0.10 baseline).
  EXPECT_GE(PrecisionAtK(ranked, truth, 10), 0.4);
  EXPECT_GE(NdcgAtK(ranked, truth, 10), 0.5);
}

TEST_F(DomainPipelineTest, EntropyScoringWorksOnGeneratedGraph) {
  PreviewRequest request;
  request.size = {5, 10};
  request.measures.key = "randomwalk";
  request.measures.nonkey = "entropy";
  const auto response = engine_->Preview(request);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(ValidatePreview(response->preview, *response->prepared,
                              response->size, response->distance)
                  .ok());
}

TEST_F(DomainPipelineTest, MaterializeAndRenderGeneratedPreview) {
  PreviewRequest request;
  request.size = {5, 10};
  request.sample_rows = 4;
  const auto response = engine_->Preview(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->materialized.tables.size(), 5u);
  const std::string text =
      RenderPreview(*engine_->graph(), response->materialized);
  EXPECT_GT(text.size(), 100u);
}

TEST_F(DomainPipelineTest, Yps09BaselineRunsAndRanks) {
  const auto summary =
      RunYps09(domain_->graph, domain_->schema, Yps09Options{});
  ASSERT_TRUE(summary.ok());
  std::vector<std::string> ranked;
  for (TypeId t : summary->ranked) {
    ranked.push_back(domain_->schema.TypeName(t));
  }
  GroundTruth truth;
  for (const auto& name : domain_->gold.KeyNames()) truth.insert(name);
  // The baseline should be strictly worse than coverage here, mirroring
  // Fig. 5 (it optimizes information content, not popularity).
  const std::vector<std::string> coverage_ranked = CoverageRankedNames();
  EXPECT_LE(AveragePrecisionAtK(ranked, truth, 20),
            AveragePrecisionAtK(coverage_ranked, truth, 20) + 0.15);
}

TEST_F(DomainPipelineTest, DiversePreviewSpreadsKeys) {
  PreviewRequest request;
  request.size = {4, 8};
  request.distance = DistanceConstraint::Diverse(3);
  const auto response = engine_->Preview(request);
  if (!response.ok()) {
    GTEST_SKIP() << "no diverse preview at d=3 in this generated schema";
  }
  const auto keys = response->preview.Keys();
  const SchemaDistanceMatrix& dist = response->prepared->distances();
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_GE(dist.Distance(keys[i], keys[j]), 3u);
    }
  }
}

}  // namespace
}  // namespace egp
