// End-to-end pipeline on the paper's running example: entity graph →
// schema graph → scoring → discovery → materialization → rendering,
// asserting the §2–§4 worked numbers at every stage.
#include <gtest/gtest.h>

#include "core/discoverer.h"
#include "core/key_scoring.h"
#include "core/nonkey_scoring.h"
#include "core/tuple_sampler.h"
#include "datagen/paper_example.h"
#include "io/preview_renderer.h"

namespace egp {
namespace {

TEST(PaperPipelineTest, ConciseCoverageCoverage) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  auto prepared = PreparedSchema::Create(schema, PreparedSchemaOptions{});
  ASSERT_TRUE(prepared.ok());
  PreviewDiscoverer discoverer(std::move(prepared).value());

  DiscoveryOptions options;
  options.size = {2, 6};
  const auto preview = discoverer.Discover(options);
  ASSERT_TRUE(preview.ok());
  EXPECT_DOUBLE_EQ(preview->Score(discoverer.prepared()), 84.0);

  // The optimum (or its tie) must include FILM; the paper's instance
  // includes FILM ACTOR as the second table.
  const auto keys = preview->Keys();
  const TypeId film =
      *discoverer.prepared().schema().type_names().Find("FILM");
  EXPECT_NE(std::find(keys.begin(), keys.end(), film), keys.end());
}

TEST(PaperPipelineTest, AllFourMeasureCombinations) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  for (KeyMeasure km : {KeyMeasure::kCoverage, KeyMeasure::kRandomWalk}) {
    for (NonKeyMeasure nm :
         {NonKeyMeasure::kCoverage, NonKeyMeasure::kEntropy}) {
      PreparedSchemaOptions popt;
      popt.key_measure = km;
      popt.nonkey_measure = nm;
      auto prepared = PreparedSchema::Create(schema, popt, &graph);
      ASSERT_TRUE(prepared.ok());
      PreviewDiscoverer discoverer(std::move(prepared).value());
      DiscoveryOptions options;
      options.size = {2, 6};
      const auto preview = discoverer.Discover(options);
      ASSERT_TRUE(preview.ok())
          << KeyMeasureName(km) << "/" << NonKeyMeasureName(nm);
      EXPECT_TRUE(ValidatePreview(*preview, discoverer.prepared(),
                                  options.size, options.distance)
                      .ok());
      EXPECT_GT(preview->Score(discoverer.prepared()), 0.0);
    }
  }
}

TEST(PaperPipelineTest, Figure2Rendering) {
  // Reproduce Fig. 2's upper table: FILM with Director and Genres, all 4
  // tuples, and verify cell contents.
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  auto prepared_or = PreparedSchema::Create(schema, PreparedSchemaOptions{});
  ASSERT_TRUE(prepared_or.ok());
  const PreparedSchema prepared = std::move(prepared_or).value();

  const TypeId film = *prepared.schema().type_names().Find("FILM");
  Preview fig2;
  PreviewTable table;
  table.key = film;
  for (const NonKeyCandidate& c : prepared.Candidates(film).sorted) {
    const SchemaEdge& e = prepared.schema().Edge(c.schema_edge);
    const std::string& name = prepared.schema().SurfaceName(e);
    if (name == "Director" || name == "Genres") table.nonkeys.push_back(c);
  }
  ASSERT_EQ(table.nonkeys.size(), 2u);
  fig2.tables.push_back(table);

  TupleSamplerOptions sampler;
  sampler.rows_per_table = 4;  // all FILM tuples
  const auto mat = MaterializePreview(graph, prepared, fig2, sampler);
  ASSERT_TRUE(mat.ok());
  ASSERT_EQ(mat->tables.size(), 1u);
  EXPECT_EQ(mat->tables[0].rows.size(), 4u);

  const std::string text = RenderPreview(graph, *mat);
  EXPECT_NE(text.find("Men in Black II"), std::string::npos);
  EXPECT_NE(text.find("Barry Sonnenfeld"), std::string::npos);
  EXPECT_NE(text.find("Action Film"), std::string::npos);
  EXPECT_NE(text.find(" - "), std::string::npos);  // Hancock's empty genres
}

TEST(PaperPipelineTest, TightVersusDiverseKeySets) {
  // Table 12's qualitative claim: tight previews stay around the hub,
  // diverse previews spread out. With k=2, n=6: tight d=1 keeps both keys
  // adjacent; diverse d=2 selects keys at distance ≥ 2.
  const EntityGraph graph = BuildPaperExampleGraph();
  auto prepared = PreparedSchema::Create(SchemaGraph::FromEntityGraph(graph),
                                         PreparedSchemaOptions{});
  ASSERT_TRUE(prepared.ok());
  PreviewDiscoverer discoverer(std::move(prepared).value());
  const SchemaDistanceMatrix& dist = discoverer.prepared().distances();

  DiscoveryOptions tight;
  tight.size = {2, 6};
  tight.distance = DistanceConstraint::Tight(1);
  const auto tight_preview = discoverer.Discover(tight);
  ASSERT_TRUE(tight_preview.ok());
  const auto tight_keys = tight_preview->Keys();
  EXPECT_EQ(dist.Distance(tight_keys[0], tight_keys[1]), 1u);

  DiscoveryOptions diverse;
  diverse.size = {2, 6};
  diverse.distance = DistanceConstraint::Diverse(2);
  const auto diverse_preview = discoverer.Discover(diverse);
  ASSERT_TRUE(diverse_preview.ok());
  const auto diverse_keys = diverse_preview->Keys();
  EXPECT_GE(dist.Distance(diverse_keys[0], diverse_keys[1]), 2u);
}

TEST(PaperPipelineTest, DiscoveryStatsAcrossAlgorithms) {
  const EntityGraph graph = BuildPaperExampleGraph();
  auto prepared = PreparedSchema::Create(SchemaGraph::FromEntityGraph(graph),
                                         PreparedSchemaOptions{});
  ASSERT_TRUE(prepared.ok());
  PreviewDiscoverer discoverer(std::move(prepared).value());
  DiscoveryOptions options;
  options.size = {3, 6};
  options.distance = DistanceConstraint::Tight(2);

  DiscoveryStats bf_stats, apriori_stats;
  options.algorithm = Algorithm::kBruteForce;
  const auto bf = discoverer.Discover(options, &bf_stats);
  options.algorithm = Algorithm::kApriori;
  const auto apriori = discoverer.Discover(options, &apriori_stats);
  ASSERT_TRUE(bf.ok() && apriori.ok());
  EXPECT_DOUBLE_EQ(bf->Score(discoverer.prepared()),
                   apriori->Score(discoverer.prepared()));
  // Apriori scores only constraint-satisfying subsets; brute force
  // enumerates all C(6,3)=20.
  EXPECT_EQ(bf_stats.subsets_enumerated, 20u);
  EXPECT_LE(apriori_stats.subsets_enumerated, bf_stats.subsets_enumerated);
}

}  // namespace
}  // namespace egp
