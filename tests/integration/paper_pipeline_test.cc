// End-to-end pipeline on the paper's running example, served through the
// egp::Engine façade: entity graph → engine → scoring → discovery →
// materialization → rendering, asserting the §2–§4 worked numbers at
// every stage.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/tuple_sampler.h"
#include "datagen/paper_example.h"
#include "io/preview_renderer.h"
#include "service/engine.h"

namespace egp {
namespace {

Engine PaperEngine() { return Engine::FromGraph(BuildPaperExampleGraph()); }

TEST(PaperPipelineTest, ConciseCoverageCoverage) {
  const Engine engine = PaperEngine();
  PreviewRequest request;
  request.size = {2, 6};
  const auto response = engine.Preview(request);
  ASSERT_TRUE(response.ok());
  EXPECT_DOUBLE_EQ(response->score, 84.0);
  EXPECT_EQ(response->algorithm, "dp");
  EXPECT_FALSE(response->prepared_cache_hit);

  // The optimum (or its tie) must include FILM; the paper's instance
  // includes FILM ACTOR as the second table.
  const auto keys = response->preview.Keys();
  const TypeId film = *engine.schema().type_names().Find("FILM");
  EXPECT_NE(std::find(keys.begin(), keys.end(), film), keys.end());
}

TEST(PaperPipelineTest, AllFourMeasureCombinations) {
  const Engine engine = PaperEngine();
  for (const char* km : {"coverage", "randomwalk"}) {
    for (const char* nm : {"coverage", "entropy"}) {
      PreviewRequest request;
      request.size = {2, 6};
      request.measures.key = km;
      request.measures.nonkey = nm;
      const auto response = engine.Preview(request);
      ASSERT_TRUE(response.ok()) << km << "/" << nm;
      EXPECT_TRUE(ValidatePreview(response->preview, *response->prepared,
                                  response->size, response->distance)
                      .ok());
      EXPECT_GT(response->score, 0.0);
    }
  }
  // Four distinct measure configurations -> four cache entries, no reuse.
  const Engine::CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_EQ(stats.misses, 4u);
}

TEST(PaperPipelineTest, Figure2Rendering) {
  // Reproduce Fig. 2's upper table: FILM with Director and Genres, all 4
  // tuples, and verify cell contents. The hand-built preview goes through
  // the internal materialization layer against the engine's shared
  // prepared snapshot.
  const Engine engine = PaperEngine();
  auto prepared_or = engine.Prepared();
  ASSERT_TRUE(prepared_or.ok());
  const PreparedSchema& prepared = **prepared_or;

  const TypeId film = *prepared.schema().type_names().Find("FILM");
  Preview fig2;
  PreviewTable table;
  table.key = film;
  for (const NonKeyCandidate& c : prepared.Candidates(film).sorted) {
    const SchemaEdge& e = prepared.schema().Edge(c.schema_edge);
    const std::string& name = prepared.schema().SurfaceName(e);
    if (name == "Director" || name == "Genres") table.nonkeys.push_back(c);
  }
  ASSERT_EQ(table.nonkeys.size(), 2u);
  fig2.tables.push_back(table);

  TupleSamplerOptions sampler;
  sampler.rows_per_table = 4;  // all FILM tuples
  const auto mat =
      MaterializePreview(*engine.graph(), prepared, fig2, sampler);
  ASSERT_TRUE(mat.ok());
  ASSERT_EQ(mat->tables.size(), 1u);
  EXPECT_EQ(mat->tables[0].rows.size(), 4u);

  const std::string text = RenderPreview(*engine.graph(), *mat);
  EXPECT_NE(text.find("Men in Black II"), std::string::npos);
  EXPECT_NE(text.find("Barry Sonnenfeld"), std::string::npos);
  EXPECT_NE(text.find("Action Film"), std::string::npos);
  EXPECT_NE(text.find(" - "), std::string::npos);  // Hancock's empty genres
}

TEST(PaperPipelineTest, TightVersusDiverseKeySets) {
  // Table 12's qualitative claim: tight previews stay around the hub,
  // diverse previews spread out. With k=2, n=6: tight d=1 keeps both keys
  // adjacent; diverse d=2 selects keys at distance ≥ 2.
  const Engine engine = PaperEngine();

  PreviewRequest tight;
  tight.size = {2, 6};
  tight.distance = DistanceConstraint::Tight(1);
  const auto tight_response = engine.Preview(tight);
  ASSERT_TRUE(tight_response.ok());
  const SchemaDistanceMatrix& dist = tight_response->prepared->distances();
  const auto tight_keys = tight_response->preview.Keys();
  EXPECT_EQ(dist.Distance(tight_keys[0], tight_keys[1]), 1u);

  PreviewRequest diverse;
  diverse.size = {2, 6};
  diverse.distance = DistanceConstraint::Diverse(2);
  const auto diverse_response = engine.Preview(diverse);
  ASSERT_TRUE(diverse_response.ok());
  // Same measures: the tight request's prepared state is reused.
  EXPECT_TRUE(diverse_response->prepared_cache_hit);
  EXPECT_EQ(diverse_response->prepared, tight_response->prepared);
  const auto diverse_keys = diverse_response->preview.Keys();
  EXPECT_GE(dist.Distance(diverse_keys[0], diverse_keys[1]), 2u);
}

TEST(PaperPipelineTest, DiscoveryStatsAcrossAlgorithms) {
  const Engine engine = PaperEngine();
  PreviewRequest request;
  request.size = {3, 6};
  request.distance = DistanceConstraint::Tight(2);

  request.algorithm = "bf";
  const auto bf = engine.Preview(request);
  request.algorithm = "apriori";
  const auto apriori = engine.Preview(request);
  ASSERT_TRUE(bf.ok() && apriori.ok());
  EXPECT_DOUBLE_EQ(bf->score, apriori->score);
  // Apriori scores only constraint-satisfying subsets; brute force
  // enumerates all C(6,3)=20.
  EXPECT_EQ(bf->stats.subsets_enumerated, 20u);
  EXPECT_LE(apriori->stats.subsets_enumerated, bf->stats.subsets_enumerated);
}

}  // namespace
}  // namespace egp
