#include "reduction/clique.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace egp {
namespace {

SimpleGraph Triangle() {
  SimpleGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  return g;
}

TEST(SimpleGraphTest, Basics) {
  SimpleGraph g(4);
  g.AddEdge(0, 1);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.num_vertices(), 4u);
}

TEST(SimpleGraphTest, ComplementInverts) {
  SimpleGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  const SimpleGraph c = g.Complement();
  EXPECT_FALSE(c.HasEdge(0, 1));
  EXPECT_FALSE(c.HasEdge(2, 3));
  EXPECT_TRUE(c.HasEdge(0, 2));
  EXPECT_TRUE(c.HasEdge(1, 3));
  EXPECT_EQ(g.num_edges() + c.num_edges(), 6u);  // C(4,2)
}

TEST(CliqueTest, TriangleHasThreeClique) {
  const SimpleGraph g = Triangle();
  EXPECT_TRUE(HasKCliqueBronKerbosch(g, 3));
  EXPECT_TRUE(HasKCliqueApriori(g, 3));
  EXPECT_FALSE(HasKCliqueBronKerbosch(g, 4));
  EXPECT_FALSE(HasKCliqueApriori(g, 4));
  EXPECT_EQ(MaxCliqueSize(g), 3u);
}

TEST(CliqueTest, PathHasNoTriangle) {
  SimpleGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  EXPECT_TRUE(HasKCliqueBronKerbosch(g, 2));
  EXPECT_FALSE(HasKCliqueBronKerbosch(g, 3));
  EXPECT_FALSE(HasKCliqueApriori(g, 3));
  EXPECT_EQ(MaxCliqueSize(g), 2u);
}

TEST(CliqueTest, TrivialCases) {
  SimpleGraph g(3);
  EXPECT_TRUE(HasKCliqueBronKerbosch(g, 0));
  EXPECT_TRUE(HasKCliqueBronKerbosch(g, 1));
  EXPECT_FALSE(HasKCliqueBronKerbosch(g, 2));  // no edges
  EXPECT_TRUE(HasKCliqueApriori(g, 1));
  EXPECT_FALSE(HasKCliqueApriori(g, 2));
  EXPECT_EQ(MaxCliqueSize(g), 1u);
}

TEST(CliqueTest, CompleteGraph) {
  SimpleGraph g(6);
  for (size_t u = 0; u < 6; ++u) {
    for (size_t v = u + 1; v < 6; ++v) g.AddEdge(u, v);
  }
  EXPECT_TRUE(HasKCliqueBronKerbosch(g, 6));
  EXPECT_TRUE(HasKCliqueApriori(g, 6));
  EXPECT_EQ(MaxCliqueSize(g), 6u);
}

TEST(CliqueTest, EmptyGraph) {
  SimpleGraph g(0);
  EXPECT_EQ(MaxCliqueSize(g), 0u);
  EXPECT_TRUE(HasKCliqueBronKerbosch(g, 0));
  EXPECT_FALSE(HasKCliqueBronKerbosch(g, 1));
}

class CliqueAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CliqueAgreementTest, BronKerboschAgreesWithApriori) {
  Rng rng(GetParam());
  const size_t n = 6 + rng.NextBounded(8);  // 6..13 vertices
  SimpleGraph g(n);
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = u + 1; v < n; ++v) {
      if (rng.NextBernoulli(0.4)) g.AddEdge(u, v);
    }
  }
  for (size_t k = 2; k <= 5; ++k) {
    EXPECT_EQ(HasKCliqueBronKerbosch(g, k), HasKCliqueApriori(g, k))
        << "n=" << n << " k=" << k;
  }
  // MaxCliqueSize is consistent with the decision versions.
  const size_t max = MaxCliqueSize(g);
  EXPECT_TRUE(HasKCliqueBronKerbosch(g, max));
  EXPECT_FALSE(HasKCliqueBronKerbosch(g, max + 1));
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, CliqueAgreementTest,
                         ::testing::Range<uint64_t>(300, 330));

}  // namespace
}  // namespace egp
