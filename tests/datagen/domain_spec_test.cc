#include "datagen/domain_spec.h"

#include <gtest/gtest.h>

#include <set>

namespace egp {
namespace {

TEST(DomainSpecTest, SevenDomains) {
  EXPECT_EQ(AllDomainSpecs().size(), 7u);
  EXPECT_EQ(GoldDomainSpecs().size(), 5u);
}

TEST(DomainSpecTest, Table2SchemaSizes) {
  struct Expected {
    const char* name;
    uint32_t types;
    uint32_t rel_types;
  };
  // Table 2, schema-side numbers (matched exactly by the generator).
  const Expected expected[] = {
      {"books", 91, 201},      {"film", 63, 136}, {"music", 69, 176},
      {"tv", 59, 177},         {"people", 45, 78}, {"basketball", 6, 21},
      {"architecture", 23, 48},
  };
  for (const Expected& e : expected) {
    const DomainSpec* spec = FindDomainSpec(e.name);
    ASSERT_NE(spec, nullptr) << e.name;
    EXPECT_EQ(spec->num_types, e.types) << e.name;
    EXPECT_EQ(spec->num_rel_types, e.rel_types) << e.name;
  }
}

TEST(DomainSpecTest, Table2EntityGraphSizes) {
  EXPECT_EQ(FindDomainSpec("music")->paper_entities, 27'000'000u);
  EXPECT_EQ(FindDomainSpec("music")->paper_edges, 187'000'000u);
  EXPECT_EQ(FindDomainSpec("basketball")->paper_entities, 19'000u);
  EXPECT_EQ(FindDomainSpec("architecture")->paper_edges, 432'000u);
}

TEST(DomainSpecTest, GoldStandardShape) {
  // Table 10: 6 key attributes per gold domain, ≤3 non-keys each.
  for (const DomainSpec* spec : GoldDomainSpecs()) {
    EXPECT_EQ(spec->gold.tables.size(), 6u) << spec->name;
    for (const GoldTable& table : spec->gold.tables) {
      EXPECT_GE(table.nonkeys.size(), 1u);
      EXPECT_LE(table.nonkeys.size(), 3u);
    }
  }
}

TEST(DomainSpecTest, GoldKeysAreDistinct) {
  for (const DomainSpec* spec : GoldDomainSpecs()) {
    std::set<std::string> keys;
    for (const GoldTable& table : spec->gold.tables) {
      EXPECT_TRUE(keys.insert(table.key).second)
          << spec->name << ": " << table.key;
    }
  }
}

TEST(DomainSpecTest, FilmGoldMatchesTable10) {
  const DomainSpec* film = FindDomainSpec("film");
  ASSERT_NE(film, nullptr);
  EXPECT_EQ(film->gold.tables[0].key, "FILM");
  EXPECT_EQ(film->gold.tables[1].key, "FILM ACTOR");
  EXPECT_EQ(film->gold.tables[3].nonkeys[0], "Films Directed");
}

TEST(DomainSpecTest, CoverageRanksWithinRange) {
  for (const DomainSpec* spec : GoldDomainSpecs()) {
    ASSERT_EQ(spec->gold_coverage_ranks.size(), 6u) << spec->name;
    std::set<uint32_t> distinct;
    for (uint32_t rank : spec->gold_coverage_ranks) {
      EXPECT_LT(rank, spec->num_types);
      distinct.insert(rank);
    }
    EXPECT_EQ(distinct.size(), 6u) << spec->name << ": ranks must differ";
  }
}

TEST(DomainSpecTest, ExpertPatternsHaveSixSlots) {
  for (const DomainSpec* spec : GoldDomainSpecs()) {
    EXPECT_EQ(spec->expert_pattern.size(), 6u) << spec->name;
    for (int entry : spec->expert_pattern) {
      EXPECT_LT(entry, 6);  // gold indices 0..5
      EXPECT_GE(entry, -6);
    }
  }
}

TEST(DomainSpecTest, LookupIsCaseSensitiveExactMatch) {
  EXPECT_NE(FindDomainSpec("books"), nullptr);
  EXPECT_EQ(FindDomainSpec("BOOKS"), nullptr);
  EXPECT_EQ(FindDomainSpec("unknown"), nullptr);
}

TEST(DomainSpecTest, RelTypeBudgetFitsGoldAndConnectivity) {
  // The generator needs R ≥ (#gold attrs) + (K − #touched-by-gold); a
  // loose sufficient check: R ≥ gold attrs + K.
  for (const DomainSpec* spec : GoldDomainSpecs()) {
    size_t gold_attrs = 0;
    for (const GoldTable& t : spec->gold.tables) gold_attrs += t.nonkeys.size();
    EXPECT_GE(spec->num_rel_types + 6u, gold_attrs + spec->num_types)
        << spec->name;
  }
}

}  // namespace
}  // namespace egp
