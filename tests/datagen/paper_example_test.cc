// Exhaustive verification of the Fig. 1 reconstruction against every
// number the paper states about its running example.
#include "datagen/paper_example.h"

#include <gtest/gtest.h>

#include <map>

namespace egp {
namespace {

class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override { graph_ = BuildPaperExampleGraph(); }

  EntityId Entity(std::string_view name) const {
    auto id = graph_.entity_names().Find(name);
    EXPECT_TRUE(id.has_value()) << name;
    return *id;
  }
  TypeId Type(std::string_view name) const {
    auto id = graph_.type_names().Find(name);
    EXPECT_TRUE(id.has_value()) << name;
    return *id;
  }

  EntityGraph graph_;
};

TEST_F(PaperExampleTest, Sizes) {
  EXPECT_EQ(graph_.num_entities(), 14u);
  EXPECT_EQ(graph_.num_types(), 6u);
  EXPECT_EQ(graph_.num_rel_types(), 7u);
  EXPECT_EQ(graph_.num_edges(), 21u);
}

TEST_F(PaperExampleTest, FilmTypeHasFourEntities) {
  EXPECT_EQ(graph_.TypeEntityCount(Type("FILM")), 4u);  // S_cov(FILM) = 4
}

TEST_F(PaperExampleTest, WillSmithIsActorAndProducer) {
  const EntityId will = Entity("Will Smith");
  EXPECT_TRUE(graph_.EntityHasType(will, Type("FILM ACTOR")));
  EXPECT_TRUE(graph_.EntityHasType(will, Type("FILM PRODUCER")));
  EXPECT_EQ(graph_.TypesOf(will).size(), 2u);
}

TEST_F(PaperExampleTest, DoubleEdgeWillToIRobot) {
  // "there are two edges Actor and Executive Producer from Will Smith to
  // I, Robot" (§2).
  const EntityId will = Entity("Will Smith");
  const EntityId irobot = Entity("I, Robot");
  int edges = 0;
  for (EdgeId id : graph_.OutEdges(will)) {
    if (graph_.Edge(id).dst == irobot) ++edges;
  }
  EXPECT_EQ(edges, 2);
}

TEST_F(PaperExampleTest, AwardWinnersSurfaceNameIsShared) {
  // Two distinct relationship types share the "Award Winners" surface.
  int award_winner_types = 0;
  for (RelTypeId r = 0; r < graph_.num_rel_types(); ++r) {
    if (graph_.RelSurfaceName(r) == "Award Winners") ++award_winner_types;
  }
  EXPECT_EQ(award_winner_types, 2);
}

TEST_F(PaperExampleTest, Figure2TupleContents) {
  // t1 = ⟨Men in Black, Barry Sonnenfeld, {Action Film, Science Fiction}⟩.
  const EntityId mib = Entity("Men in Black");
  RelTypeId director = kInvalidId, genres = kInvalidId;
  for (RelTypeId r = 0; r < graph_.num_rel_types(); ++r) {
    if (graph_.RelSurfaceName(r) == "Director") director = r;
    if (graph_.RelSurfaceName(r) == "Genres") genres = r;
  }
  const auto director_values =
      graph_.NeighborSet(mib, director, Direction::kIncoming);
  ASSERT_EQ(director_values.size(), 1u);
  EXPECT_EQ(graph_.EntityName(director_values[0]), "Barry Sonnenfeld");
  const auto genre_values =
      graph_.NeighborSet(mib, genres, Direction::kOutgoing);
  EXPECT_EQ(genre_values.size(), 2u);
  // t3 = ⟨Hancock, Peter Berg, -⟩: empty genres.
  EXPECT_TRUE(graph_.NeighborSet(Entity("Hancock"), genres,
                                 Direction::kOutgoing)
                  .empty());
}

TEST_F(PaperExampleTest, RelationshipCounts) {
  const std::map<std::string, size_t> expected = {
      {"Actor", 6}, {"Director", 4}, {"Genres", 5},
      {"Producer", 2}, {"Executive Producer", 1},
  };
  for (RelTypeId r = 0; r < graph_.num_rel_types(); ++r) {
    const std::string& name = graph_.RelSurfaceName(r);
    auto it = expected.find(name);
    if (it != expected.end()) {
      EXPECT_EQ(graph_.EdgesOfRelType(r).size(), it->second) << name;
    }
  }
}

TEST_F(PaperExampleTest, AwardWinnersSplitByType) {
  // Actor-side: Will → Saturn, Tommy → Academy. Director-side: Barry →
  // Razzie.
  for (RelTypeId r = 0; r < graph_.num_rel_types(); ++r) {
    if (graph_.RelSurfaceName(r) != "Award Winners") continue;
    const RelTypeInfo& info = graph_.RelType(r);
    if (info.src_type == Type("FILM ACTOR")) {
      EXPECT_EQ(graph_.EdgesOfRelType(r).size(), 2u);
    } else {
      EXPECT_EQ(info.src_type, Type("FILM DIRECTOR"));
      EXPECT_EQ(graph_.EdgesOfRelType(r).size(), 1u);
    }
  }
}

TEST_F(PaperExampleTest, TommyLeeJonesActedInBothMenInBlackFilms) {
  const EntityId tommy = Entity("Tommy Lee Jones");
  RelTypeId actor = kInvalidId;
  for (RelTypeId r = 0; r < graph_.num_rel_types(); ++r) {
    if (graph_.RelSurfaceName(r) == "Actor") actor = r;
  }
  const auto films = graph_.NeighborSet(tommy, actor, Direction::kOutgoing);
  ASSERT_EQ(films.size(), 2u);
}

}  // namespace
}  // namespace egp
