#include "datagen/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/graph_stats.h"

namespace egp {
namespace {

GeneratorOptions TinyScale(const char* domain) {
  GeneratorOptions options;
  // Keep tests fast: large domains at 1/5000 scale, small at 1/50.
  const std::string name(domain);
  options.scale =
      (name == "basketball" || name == "architecture") ? 0.02 : 0.0002;
  return options;
}

class GeneratorDomainTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GeneratorDomainTest, SchemaMatchesTable2Exactly) {
  const DomainSpec* spec = FindDomainSpec(GetParam());
  ASSERT_NE(spec, nullptr);
  auto domain = GenerateDomain(*spec, TinyScale(GetParam()));
  ASSERT_TRUE(domain.ok()) << domain.status().ToString();
  EXPECT_EQ(domain->schema.num_types(), spec->num_types);
  EXPECT_EQ(domain->schema.num_edges(), spec->num_rel_types);
}

TEST_P(GeneratorDomainTest, EveryTypeIsEligible) {
  auto domain = GenerateDomainByName(GetParam(), TinyScale(GetParam()));
  ASSERT_TRUE(domain.ok());
  for (TypeId t = 0; t < domain->schema.num_types(); ++t) {
    EXPECT_FALSE(domain->schema.IncidentEdges(t).empty())
        << domain->schema.TypeName(t);
    EXPECT_GE(domain->schema.TypeEntityCount(t), 2u);
  }
}

TEST_P(GeneratorDomainTest, EntityAndEdgeCountsNearTarget) {
  const DomainSpec* spec = FindDomainSpec(GetParam());
  const GeneratorOptions options = TinyScale(GetParam());
  auto domain = GenerateDomain(*spec, options);
  ASSERT_TRUE(domain.ok());
  const double target_entities =
      static_cast<double>(spec->paper_entities) * options.scale;
  const double entities = static_cast<double>(domain->graph.num_entities());
  EXPECT_GT(entities, target_entities * 0.8);
  EXPECT_LT(entities, target_entities * 1.5);
  const double target_edges =
      static_cast<double>(spec->paper_edges) * options.scale;
  const double edges = static_cast<double>(domain->graph.num_edges());
  // Dedup capping and overrides relax the lower bound.
  EXPECT_GT(edges, target_edges * 0.4);
  EXPECT_LT(edges, target_edges * 2.5);
}

TEST_P(GeneratorDomainTest, DeterministicUnderSeed) {
  auto a = GenerateDomainByName(GetParam(), TinyScale(GetParam()));
  auto b = GenerateDomainByName(GetParam(), TinyScale(GetParam()));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->graph.num_entities(), b->graph.num_entities());
  EXPECT_EQ(a->graph.num_edges(), b->graph.num_edges());
  // Spot-check structural identity on edges.
  for (EdgeId e = 0; e < std::min<size_t>(50, a->graph.num_edges()); ++e) {
    EXPECT_EQ(a->graph.Edge(e).src, b->graph.Edge(e).src);
    EXPECT_EQ(a->graph.Edge(e).dst, b->graph.Edge(e).dst);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDomains, GeneratorDomainTest,
                         ::testing::Values("books", "film", "music", "tv",
                                           "people", "basketball",
                                           "architecture"));

TEST(GeneratorGoldTest, GoldTypesExistWithConfiguredRanks) {
  auto domain = GenerateDomainByName("film", TinyScale("film"));
  ASSERT_TRUE(domain.ok());
  const DomainSpec* spec = FindDomainSpec("film");
  // Collect per-type sizes, rank them, and check the gold types sit at
  // their configured coverage ranks.
  std::vector<std::pair<uint64_t, std::string>> by_size;
  for (TypeId t = 0; t < domain->schema.num_types(); ++t) {
    by_size.emplace_back(domain->schema.TypeEntityCount(t),
                         domain->schema.TypeName(t));
  }
  std::sort(by_size.begin(), by_size.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (size_t g = 0; g < spec->gold.tables.size(); ++g) {
    const uint32_t expected_rank = spec->gold_coverage_ranks[g];
    // Multi-typing adds ±3% noise; allow a small rank drift.
    bool found_near = false;
    for (uint32_t r = expected_rank >= 2 ? expected_rank - 2 : 0;
         r <= expected_rank + 2 && r < by_size.size(); ++r) {
      if (by_size[r].second == spec->gold.tables[g].key) found_near = true;
    }
    EXPECT_TRUE(found_near)
        << spec->gold.tables[g].key << " not within 2 of rank "
        << expected_rank;
  }
}

TEST(GeneratorGoldTest, GoldNonKeysAnchoredOnKeyType) {
  auto domain = GenerateDomainByName("music", TinyScale("music"));
  ASSERT_TRUE(domain.ok());
  for (const GoldTable& gold : domain->gold.tables) {
    const auto key_id = domain->schema.type_names().Find(gold.key);
    ASSERT_TRUE(key_id.has_value()) << gold.key;
    std::set<std::string> incident_surfaces;
    for (uint32_t index : domain->schema.IncidentEdges(*key_id)) {
      incident_surfaces.insert(
          domain->schema.SurfaceName(domain->schema.Edge(index)));
    }
    for (const std::string& attr : gold.nonkeys) {
      EXPECT_TRUE(incident_surfaces.count(attr) > 0)
          << gold.key << " missing attribute " << attr;
    }
  }
}

TEST(GeneratorGoldTest, ExpertKeysResolvedToExistingTypes) {
  for (const char* name : {"books", "film", "music", "tv", "people"}) {
    auto domain = GenerateDomainByName(name, TinyScale(name));
    ASSERT_TRUE(domain.ok());
    ASSERT_EQ(domain->gold.expert_keys.size(), 6u) << name;
    std::set<std::string> distinct;
    for (const std::string& key : domain->gold.expert_keys) {
      EXPECT_TRUE(domain->schema.type_names().Find(key).has_value())
          << name << ": " << key;
      distinct.insert(key);
    }
    EXPECT_EQ(distinct.size(), 6u) << name;
  }
}

TEST(GeneratorGoldTest, ExpertOverlapMatchesTables22And23) {
  // The reconstructed expert lists must reproduce the published
  // Freebase↔Experts agreement; verified here for the intersection size.
  const std::map<std::string, size_t> expected_overlap = {
      {"books", 2}, {"film", 3}, {"music", 5}, {"tv", 3}, {"people", 3}};
  for (const auto& [name, overlap] : expected_overlap) {
    auto domain = GenerateDomainByName(name, TinyScale(name.c_str()));
    ASSERT_TRUE(domain.ok());
    std::set<std::string> gold_keys;
    for (const GoldTable& t : domain->gold.tables) gold_keys.insert(t.key);
    size_t shared = 0;
    for (const std::string& key : domain->gold.expert_keys) {
      if (gold_keys.count(key) > 0) ++shared;
    }
    EXPECT_EQ(shared, overlap) << name;
  }
}

TEST(GeneratorTest, ScaleControlsSize) {
  GeneratorOptions small, large;
  small.scale = 0.0001;
  large.scale = 0.0004;
  auto a = GenerateDomainByName("tv", small);
  auto b = GenerateDomainByName("tv", large);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(a->graph.num_entities(), b->graph.num_entities());
  EXPECT_LT(a->graph.num_edges(), b->graph.num_edges());
  // Schema never scales.
  EXPECT_EQ(a->schema.num_types(), b->schema.num_types());
  EXPECT_EQ(a->schema.num_edges(), b->schema.num_edges());
}

TEST(GeneratorTest, MultiTypedEntitiesExist) {
  auto domain = GenerateDomainByName("people", TinyScale("people"));
  ASSERT_TRUE(domain.ok());
  const EntityGraphStats stats = ComputeEntityGraphStats(domain->graph);
  EXPECT_GT(stats.multi_typed_entities, 0u);
}

TEST(GeneratorTest, SchemaIsConnected) {
  // The connectivity pass guarantees a single component.
  for (const char* name : {"film", "basketball"}) {
    auto domain = GenerateDomainByName(name, TinyScale(name));
    ASSERT_TRUE(domain.ok());
    const SchemaGraphStats stats = ComputeSchemaGraphStats(domain->schema);
    EXPECT_EQ(stats.num_components, 1u) << name;
  }
}

TEST(GeneratorTest, UnknownDomainFails) {
  EXPECT_EQ(GenerateDomainByName("nope", GeneratorOptions{}).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace egp
