// The HTTP server under injected faults, in-process: EMFILE accept
// storms shed real 503s through the reserved emergency descriptor and
// recover once the storm passes; EINTR storms on epoll_wait are
// invisible to clients; abusive RST clients don't wedge the loop; and
// none of it leaks file descriptors.
//
// Only server-side fault sites (socket.accept, epoll.wait) are armed
// here: client and server share one in-process registry, so a schedule
// on socket.send/socket.recv would fire inside the test client too.
// Whole-binary schedules live in chaos_binary_test.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/socket.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "common/fault.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/socket.h"

namespace egp {
namespace {

using namespace std::chrono_literals;

/// Open descriptors of this process, via /proc.
int CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count - 3;  // ".", "..", and the DIR's own fd
}

/// Polls until the process fd count returns to `baseline` (server-side
/// closes happen on the loop thread, a beat after the client's).
bool WaitForFdBaseline(int baseline) {
  for (int i = 0; i < 100; ++i) {
    if (CountOpenFds() <= baseline) return true;
    std::this_thread::sleep_for(10ms);
  }
  return false;
}

class ChaosServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto started = HttpServer::Start(
        [](const HttpRequest& request) {
          HttpResponse response;
          response.body = "{\"path\":\"" + std::string(request.Path()) + "\"}";
          return response;
        },
        Options());
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    server_ = std::move(started).value();
  }

  void TearDown() override {
    ClearFaults();
    server_.reset();
  }

  static HttpServerOptions Options() {
    HttpServerOptions options;
    options.workers = 2;
    options.read_timeout_ms = 2'000;
    options.write_timeout_ms = 2'000;
    return options;
  }

  HttpClient Client() const {
    return HttpClient("127.0.0.1", server_->port(), /*timeout_ms=*/5'000);
  }

  std::unique_ptr<HttpServer> server_;
};

TEST_F(ChaosServerTest, EmfileAcceptStormShedsWith503) {
  // The first accept call fails EMFILE; the emergency descriptor is
  // released, the pending connection is accepted through the freed
  // slot, answered 503 + Retry-After, and closed.
  ASSERT_TRUE(ConfigureFaults("socket.accept=err:EMFILE@1").ok());
  HttpClient shed = Client();
  const auto response = shed.Get("/ping");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 503);
  ASSERT_NE(response->FindHeader("Retry-After"), nullptr);
  EXPECT_FALSE(response->keep_alive);

  const HttpServerStats stats = server_->stats();
  EXPECT_GE(stats.accept_overloads, 1u);
  EXPECT_GE(stats.overload_sheds, 1u);
  EXPECT_GE(stats.rejected_connections, 1u);

  // The fault was one-shot: the very next connection serves normally.
  HttpClient ok = Client();
  const auto recovered = ok.Get("/ping");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->status, 200);
}

TEST_F(ChaosServerTest, PersistentEmfileShedsEveryConnectionThenRecovers) {
  ASSERT_TRUE(ConfigureFaults("socket.accept=err:EMFILE").ok());
  for (int i = 0; i < 3; ++i) {
    HttpClient client = Client();
    const auto response = client.Get("/ping");
    ASSERT_TRUE(response.ok())
        << "connection " << i << ": " << response.status().ToString();
    EXPECT_EQ(response->status, 503) << "connection " << i;
  }
  EXPECT_GE(server_->stats().overload_sheds, 3u);

  ClearFaults();  // storm over
  HttpClient client = Client();
  const auto response = client.Get("/ping");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
}

TEST_F(ChaosServerTest, EpollEintrStormIsInvisibleToClients) {
  ASSERT_TRUE(ConfigureFaults("epoll.wait=eintr@every:3").ok());
  HttpClient client = Client();
  for (int i = 0; i < 10; ++i) {
    const auto response = client.Get("/ping");
    ASSERT_TRUE(response.ok())
        << "request " << i << ": " << response.status().ToString();
    EXPECT_EQ(response->status, 200);
  }
  EXPECT_EQ(server_->stats().handled_requests, 10u);
}

TEST_F(ChaosServerTest, RstMidRequestClientsDontWedgeTheServer) {
  const int baseline = CountOpenFds();
  // Four abusive clients: send a partial request, then close with
  // SO_LINGER(0) so the kernel sends RST instead of FIN.
  for (int i = 0; i < 4; ++i) {
    auto conn = ConnectTcp("127.0.0.1", server_->port(), 2'000);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    const std::string partial =
        "POST /v1/preview HTTP/1.1\r\nHost: x\r\n"
        "Content-Length: 1048576\r\n\r\n{";
    (void)SendAll(conn->get(), partial, 2'000);
    struct linger lg;
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ASSERT_EQ(::setsockopt(conn->get(), SOL_SOCKET, SO_LINGER, &lg,
                           sizeof lg), 0);
    conn->Reset();  // RST
  }
  // The server keeps serving, and every RST'd connection's descriptor
  // comes back.
  HttpClient client = Client();
  const auto response = client.Get("/ping");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  client.Disconnect();
  EXPECT_TRUE(WaitForFdBaseline(baseline)) << "fd leak: " << CountOpenFds()
                                           << " open, baseline " << baseline;
}

TEST_F(ChaosServerTest, ShedConnectionsLeakNoDescriptors) {
  const int baseline = CountOpenFds();
  ASSERT_TRUE(ConfigureFaults("socket.accept=err:EMFILE").ok());
  for (int i = 0; i < 8; ++i) {
    HttpClient client = Client();
    const auto response = client.Get("/ping");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, 503);
  }
  ClearFaults();
  EXPECT_TRUE(WaitForFdBaseline(baseline)) << "fd leak: " << CountOpenFds()
                                           << " open, baseline " << baseline;
  // And the server still serves.
  HttpClient client = Client();
  const auto response = client.Get("/ping");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
}

}  // namespace
}  // namespace egp
