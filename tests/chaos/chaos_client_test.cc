// HttpClient resilience: transparent replay over a stale keep-alive
// connection, capped-backoff retries on connect failure, opt-in 503
// retries honoring Retry-After, and the idempotent-only retry rule for
// responses that died mid-body.
#include "server/http_client.h"

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "server/http_server.h"
#include "server/socket.h"

namespace egp {
namespace {

using namespace std::chrono_literals;

/// A scripted one-thread HTTP "server": for each entry in `scripts`, it
/// accepts one connection, reads until it has seen `\r\n\r\n`, writes
/// the scripted bytes verbatim, and closes (or keeps the socket open
/// for the next script entry when `keep_open` marks it). Lets tests
/// speak protocol violations a real HttpServer never would.
class ScriptedServer {
 public:
  struct Exchange {
    std::string response;  // raw bytes to write after one request
    bool keep_open = false;  // serve the next exchange on this socket
  };

  explicit ScriptedServer(std::vector<Exchange> script)
      : script_(std::move(script)) {
    auto listener = ListenTcp("127.0.0.1", 0, 8, &port_);
    EXPECT_TRUE(listener.ok()) << listener.status().ToString();
    listener_ = std::move(listener).value();
    thread_ = std::thread([this] { Run(); });
  }

  ~ScriptedServer() {
    // Wake the thread out of WaitAccept without invalidating the fd it
    // is concurrently reading (Reset() here raced the server thread's
    // listener_.get()); the UniqueFd closes after the join.
    ::shutdown(listener_.get(), SHUT_RDWR);
    if (thread_.joinable()) thread_.join();
  }

  uint16_t port() const { return port_; }
  int exchanges_served() const {
    return served_.load(std::memory_order_acquire);
  }

 private:
  void Run() {
    UniqueFd conn;
    for (const Exchange& exchange : script_) {
      if (!conn.valid()) {
        auto accepted = WaitAccept();
        if (!accepted.ok()) return;
        conn = std::move(accepted).value();
      }
      std::string request;
      char buf[1024];
      while (request.find("\r\n\r\n") == std::string::npos) {
        const IoResult got = RecvSome(conn.get(), buf, sizeof buf, 5'000);
        if (got.status != IoStatus::kOk) return;
        request.append(buf, got.bytes);
      }
      (void)SendAll(conn.get(), exchange.response, 5'000);
      served_.fetch_add(1, std::memory_order_release);
      if (!exchange.keep_open) conn.Reset();
    }
  }

  Result<UniqueFd> WaitAccept() {
    const IoResult ready = WaitReadable(listener_.get(), 5'000);
    if (ready.status != IoStatus::kOk) {
      return Status::IOError("listener closed or timed out");
    }
    return AcceptConnection(listener_.get());
  }

  std::vector<Exchange> script_;
  uint16_t port_ = 0;
  UniqueFd listener_;
  std::thread thread_;
  std::atomic<int> served_{0};
};

std::string SmallResponse(const std::string& body,
                          bool keep_alive,
                          const std::string& extra_headers = {}) {
  return "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n"
         "Content-Length: " + std::to_string(body.size()) + "\r\n" +
         extra_headers +
         (keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n") +
         "\r\n" + body;
}

TEST(ChaosClientTest, StaleKeepAliveConnectionIsReplayedTransparently) {
  // Exchange 1 promises keep-alive but the server closes the socket
  // anyway (a server-side idle timeout, from the client's view). The
  // client's second request finds the pooled connection dead before any
  // response byte and must replay it on a fresh connection — even with
  // retries disabled, because no response was ever in flight.
  ScriptedServer server({
      {SmallResponse("one", /*keep_alive=*/true), /*keep_open=*/false},
      {SmallResponse("two", /*keep_alive=*/true), /*keep_open=*/true},
  });
  HttpClient client("127.0.0.1", server.port(), 5'000);

  const auto first = client.Get("/a");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->body, "one");
  EXPECT_TRUE(first->keep_alive);
  EXPECT_TRUE(client.connected());  // pooled — and already dead

  // Give the scripted server time to close; the client must not notice
  // until it tries to reuse the connection.
  std::this_thread::sleep_for(50ms);

  const auto second = client.Get("/b");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->body, "two");
  EXPECT_EQ(client.transparent_reconnects(), 1u);
  EXPECT_EQ(client.retries(), 0u);  // not a policy retry
}

TEST(ChaosClientTest, ConnectFailureRetriesWithBackoff) {
  ScriptedServer server({
      {SmallResponse("hi", /*keep_alive=*/false), /*keep_open=*/false},
  });
  // The first connect attempt is refused by injection; the retry policy
  // covers it (connect failures are safe to retry for any method).
  ASSERT_TRUE(ConfigureFaults("socket.connect=err:ECONNREFUSED@1").ok());
  HttpClient client("127.0.0.1", server.port(), 5'000);
  HttpRetryOptions retry;
  retry.max_attempts = 3;
  retry.base_backoff_ms = 1;
  retry.max_backoff_ms = 5;
  client.set_retry_options(retry);

  const auto response = client.Post("/job", "{}");  // POST: connect-only retry
  ClearFaults();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->body, "hi");
  EXPECT_EQ(client.retries(), 1u);
}

TEST(ChaosClientTest, ConnectFailureWithoutRetryPolicyFailsFast) {
  ASSERT_TRUE(ConfigureFaults("socket.connect=err:ECONNREFUSED").ok());
  HttpClient client("127.0.0.1", 1, 200);  // port never dialed: injection
  const auto response = client.Get("/");
  ClearFaults();
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(client.retries(), 0u);
}

TEST(ChaosClientTest, OptIn503RetryHonorsRetryAfter) {
  // A real HttpServer whose handler sheds the first two requests.
  std::atomic<int> hits{0};
  auto started = HttpServer::Start(
      [&hits](const HttpRequest&) {
        HttpResponse response;
        if (hits.fetch_add(1) < 2) {
          response.status = 503;
          response.headers.emplace_back("Retry-After", "0");
        } else {
          response.body = "ok";
          response.content_type = "text/plain";
        }
        return response;
      },
      HttpServerOptions{});
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  auto server = std::move(started).value();

  // Default policy: a 503 is a semantic answer, surfaced as-is.
  HttpClient plain("127.0.0.1", server->port(), 5'000);
  const auto shed = plain.Get("/");
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->status, 503);
  EXPECT_EQ(plain.retries(), 0u);

  // Opt-in: retried (with Retry-After: 0 the backoff floor is ~instant)
  // until the handler relents.
  HttpClient retrying("127.0.0.1", server->port(), 5'000);
  HttpRetryOptions retry;
  retry.max_attempts = 3;
  retry.base_backoff_ms = 1;
  retry.max_backoff_ms = 10;
  retry.retry_on_503 = true;
  retrying.set_retry_options(retry);
  const auto response = retrying.Get("/");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, "ok");
  EXPECT_GE(retrying.retries(), 1u);
}

TEST(ChaosClientTest, MidBodyCloseRetriesIdempotentRequestsOnly) {
  // The server dies mid-body on the first exchange (headers promise 5
  // bytes, only 2 arrive before close). Bytes DID arrive, so this is
  // not a stale-pool case: only the retry policy may replay it, and
  // only for idempotent methods.
  const std::string truncated =
      "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n"
      "Content-Length: 5\r\nConnection: keep-alive\r\n\r\nhe";
  ScriptedServer server({
      {truncated, /*keep_open=*/false},
      {SmallResponse("hello", /*keep_alive=*/false), /*keep_open=*/false},
  });
  HttpClient client("127.0.0.1", server.port(), 2'000);
  HttpRetryOptions retry;
  retry.max_attempts = 2;
  retry.base_backoff_ms = 1;
  retry.max_backoff_ms = 5;
  client.set_retry_options(retry);

  const auto response = client.Get("/doc");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->body, "hello");
  EXPECT_EQ(client.retries(), 1u);
  EXPECT_EQ(client.transparent_reconnects(), 0u);
}

TEST(ChaosClientTest, MidBodyCloseDoesNotRetryPost) {
  const std::string truncated =
      "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n"
      "Content-Length: 5\r\nConnection: keep-alive\r\n\r\nhe";
  ScriptedServer server({
      {truncated, /*keep_open=*/false},
      {SmallResponse("hello", /*keep_alive=*/false), /*keep_open=*/false},
  });
  HttpClient client("127.0.0.1", server.port(), 2'000);
  HttpRetryOptions retry;
  retry.max_attempts = 3;
  retry.base_backoff_ms = 1;
  client.set_retry_options(retry);

  // The POST reached the server (bytes came back); replaying it could
  // double-apply. It must fail instead.
  const auto response = client.Post("/job", "{}");
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(client.retries(), 0u);
  EXPECT_EQ(server.exchanges_served(), 1);
}

}  // namespace
}  // namespace egp
