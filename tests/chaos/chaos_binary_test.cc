// The real egp_server binary under fault schedules (EGP_FAULTS in its
// environment) and degraded dataset loads: error mapping over real
// HTTP, descriptor hygiene via /proc/<pid>/fd, recovery once a fault's
// trigger is exhausted, and the loadgen's RST-mid-request clients.
#include <gtest/gtest.h>

#include <dirent.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "server/http_client.h"
#include "tests/testing/subprocess.h"

namespace egp {
namespace {

#ifndef EGP_SERVER_PATH
#error "EGP_SERVER_PATH must be defined by the build"
#endif
#ifndef EGP_LOADGEN_PATH
#error "EGP_LOADGEN_PATH must be defined by the build"
#endif
#ifndef EGP_SAMPLE_NT
#error "EGP_SAMPLE_NT must be defined by the build"
#endif

using testing_util::Slurp;
using testing_util::TempPath;
using namespace std::chrono_literals;

/// Open descriptors of process `pid`, via /proc. -1 when unreadable.
int CountOpenFds(int pid) {
  const std::string path = "/proc/" + std::to_string(pid) + "/fd";
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return -1;
  int count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count - 2;  // "." and ".."
}

/// egp_server booted as a real child process, optionally with extra
/// flags and an environment prefix (`EGP_FAULTS=... `), stdout tailed
/// for the listening line. Adapted from the integration smoke test.
class ServerProcess {
 public:
  bool Boot(const std::string& extra_args = {},
            const std::string& env_prefix = {},
            const std::string& datasets =
                std::string(" --dataset sample=") + EGP_SAMPLE_NT) {
    out_path_ = TempPath("chaos_server_out.txt");
    pid_path_ = TempPath("chaos_server_pid.txt");
    std::remove(out_path_.c_str());
    std::remove(pid_path_.c_str());
    const std::string command =
        env_prefix + EGP_SERVER_PATH + datasets +
        " --port 0 --workers 2 " + extra_args + " > " + out_path_ +
        " 2>/dev/null & echo $! > " + pid_path_;
    if (std::system(command.c_str()) != 0) return false;
    for (int i = 0; i < 300; ++i) {
      const std::string out = Slurp(out_path_);
      const size_t at = out.find("listening on 127.0.0.1:");
      if (at != std::string::npos) {
        port_ = std::atoi(out.c_str() + at + 23);
        pid_ = std::atoi(Slurp(pid_path_).c_str());
        return port_ > 0 && pid_ > 0;
      }
      std::this_thread::sleep_for(100ms);
    }
    return false;
  }

  /// Polls until the server's fd count settles back to `baseline`.
  bool WaitForFdBaseline(int baseline) const {
    for (int i = 0; i < 100; ++i) {
      const int now = CountOpenFds(pid_);
      if (now >= 0 && now <= baseline) return true;
      std::this_thread::sleep_for(10ms);
    }
    return false;
  }

  ~ServerProcess() {
    if (pid_ > 0 && ::kill(pid_, 0) == 0) ::kill(pid_, SIGKILL);
  }

  uint16_t port() const { return static_cast<uint16_t>(port_); }
  int pid() const { return pid_; }
  std::string Stdout() const { return Slurp(out_path_); }

 private:
  std::string out_path_;
  std::string pid_path_;
  int port_ = 0;
  int pid_ = -1;
};

TEST(ChaosBinaryTest, DegradedLoadServesTheHealthyDatasets) {
  ServerProcess server;
  ASSERT_TRUE(server.Boot(
      /*extra_args=*/{}, /*env_prefix=*/{},
      std::string(" --dataset sample=") + EGP_SAMPLE_NT +
          " --dataset bad=/no/such/file.nt"))
      << server.Stdout();
  HttpClient client("127.0.0.1", server.port());

  // /healthz stays 200 (the process is alive and serving) but reports
  // the degradation and names the casualty.
  const auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  EXPECT_NE(health->body.find("\"status\":\"degraded\""), std::string::npos)
      << health->body;
  EXPECT_NE(health->body.find("\"name\":\"bad\""), std::string::npos);

  // /v1/datasets lists both, with per-dataset status.
  const auto datasets = client.Get("/v1/datasets");
  ASSERT_TRUE(datasets.ok());
  EXPECT_NE(datasets->body.find("\"status\":\"loaded\""), std::string::npos);
  EXPECT_NE(datasets->body.find("\"status\":\"failed\""), std::string::npos);

  // The failed dataset answers 503 (unavailable, not unknown) ...
  const auto broken =
      client.Post("/v1/preview", R"({"dataset":"bad","k":2,"n":4})");
  ASSERT_TRUE(broken.ok()) << broken.status().ToString();
  EXPECT_EQ(broken->status, 503) << broken->body;
  EXPECT_NE(broken->body.find("failed to load"), std::string::npos);

  // ... an unknown one still answers 404 ...
  const auto unknown =
      client.Post("/v1/preview", R"({"dataset":"nope","k":2,"n":4})");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->status, 404);

  // ... and the healthy one serves previews.
  const auto preview =
      client.Post("/v1/preview", R"({"dataset":"sample","k":2,"n":4})");
  ASSERT_TRUE(preview.ok()) << preview.status().ToString();
  EXPECT_EQ(preview->status, 200) << preview->body;

  // /metrics exposes the degradation as gauges.
  const auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->body.find("egp_catalog_datasets_loaded 1"),
            std::string::npos)
      << metrics->body;
  EXPECT_NE(metrics->body.find("egp_catalog_datasets_failed 1"),
            std::string::npos);
}

TEST(ChaosBinaryTest, StrictLoadRefusesToBootOnAnyFailure) {
  const std::string out = TempPath("chaos_strict_out.txt");
  const std::string err = TempPath("chaos_strict_err.txt");
  const int exit_code = testing_util::RunCommandCapture(
      std::string(EGP_SERVER_PATH) + " --strict-load --port 0" +
          " --dataset sample=" + EGP_SAMPLE_NT +
          " --dataset bad=/no/such/file.nt",
      out, err);
  EXPECT_EQ(exit_code, 1);
  EXPECT_NE(Slurp(err).find("bad"), std::string::npos) << Slurp(err);
}

TEST(ChaosBinaryTest, SendFaultMapsToOneFailureThenRecovers) {
  // The third send(2) in the server dies with EPIPE: exactly one
  // exchange breaks; everything after serves normally and no
  // descriptor is lost to the broken connection.
  ServerProcess server;
  ASSERT_TRUE(server.Boot(
      /*extra_args=*/{},
      /*env_prefix=*/"EGP_FAULTS='socket.send=err:EPIPE@3' "))
      << server.Stdout();
  const int baseline = CountOpenFds(server.pid());
  ASSERT_GT(baseline, 0);

  int failures = 0;
  int successes = 0;
  for (int i = 0; i < 6; ++i) {
    HttpClient client("127.0.0.1", server.port(), 3'000);
    const auto response = client.Get("/healthz");
    if (response.ok() && response->status == 200) {
      ++successes;
    } else {
      ++failures;
    }
  }
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(successes, 5);

  // Recovery: the one-shot trigger is exhausted; the server is healthy
  // and back at its descriptor baseline.
  HttpClient client("127.0.0.1", server.port());
  const auto response = client.Get("/healthz");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  client.Disconnect();
  EXPECT_TRUE(server.WaitForFdBaseline(baseline))
      << "fd leak: " << CountOpenFds(server.pid()) << " open, baseline "
      << baseline;
}

TEST(ChaosBinaryTest, EintrStormsAreAbsorbedByTheWrappers) {
  ServerProcess server;
  ASSERT_TRUE(server.Boot(
      /*extra_args=*/{},
      /*env_prefix=*/"EGP_FAULTS='socket.recv=eintr@every:2;"
                     "socket.send=eintr@every:3;epoll.wait=eintr@every:5' "))
      << server.Stdout();
  HttpClient client("127.0.0.1", server.port());
  for (int i = 0; i < 10; ++i) {
    const auto response = client.Get("/healthz");
    ASSERT_TRUE(response.ok())
        << "request " << i << ": " << response.status().ToString();
    EXPECT_EQ(response->status, 200);
  }
}

TEST(ChaosBinaryTest, LoadgenRstClientsDontDisturbTheServer) {
  ServerProcess server;
  ASSERT_TRUE(server.Boot()) << server.Stdout();
  const int baseline = CountOpenFds(server.pid());
  ASSERT_GT(baseline, 0);

  const std::string out = TempPath("chaos_loadgen_out.txt");
  const int exit_code = testing_util::RunCommand(
      std::string(EGP_LOADGEN_PATH) + " --port " +
          std::to_string(server.port()) +
          " --connections 2 --requests 5 --abort-connections 4",
      out);
  EXPECT_EQ(exit_code, 0) << Slurp(out);
  EXPECT_NE(Slurp(out).find("aborted"), std::string::npos) << Slurp(out);

  // The server shrugged it off: healthy, metrics served, fds level.
  HttpClient client("127.0.0.1", server.port());
  const auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  const auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->body.find("egp_http_requests_total"), std::string::npos)
      << metrics->body;
  client.Disconnect();
  EXPECT_TRUE(server.WaitForFdBaseline(baseline))
      << "fd leak: " << CountOpenFds(server.pid()) << " open, baseline "
      << baseline;
}

}  // namespace
}  // namespace egp
