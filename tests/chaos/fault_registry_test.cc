// The fault-injection registry itself: schedule grammar, trigger
// semantics, context-token filtering, determinism of the probabilistic
// trigger, and the Posix* wrappers' handling of injected EINTR and
// short transfers.
#include "common/fault.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/posix.h"

namespace egp {
namespace {

class FaultRegistryTest : public ::testing::Test {
 protected:
  void TearDown() override { ClearFaults(); }
};

TEST_F(FaultRegistryTest, AcceptsTheDocumentedGrammar) {
  EXPECT_TRUE(ConfigureFaults("socket.send=err:EPIPE@3").ok());
  EXPECT_TRUE(ConfigureFaults("store.fsync=err:ENOSPC@1").ok());
  EXPECT_TRUE(ConfigureFaults("catalog.load=fail:dataset2").ok());
  EXPECT_TRUE(ConfigureFaults("a=eintr;b=short;c=short:7;d=fail").ok());
  EXPECT_TRUE(ConfigureFaults("x=err:EIO@2+").ok());
  EXPECT_TRUE(ConfigureFaults("x=err:EIO@every:4").ok());
  EXPECT_TRUE(ConfigureFaults("x=err:EIO@p:0.25:99").ok());
  EXPECT_TRUE(ConfigureFaults("x=err:5").ok());  // numeric errno
  // Whitespace around entries and a trailing ';' are tolerated.
  EXPECT_TRUE(ConfigureFaults(" a=eintr ; b=short ;").ok());
}

TEST_F(FaultRegistryTest, RejectsMalformedSchedules) {
  EXPECT_FALSE(ConfigureFaults("noequals").ok());
  EXPECT_FALSE(ConfigureFaults("bad site=err:EIO").ok());   // space in site
  EXPECT_FALSE(ConfigureFaults("a/b=err:EIO").ok());        // bad site char
  EXPECT_FALSE(ConfigureFaults("=err:EIO").ok());           // empty site
  EXPECT_FALSE(ConfigureFaults("x=explode").ok());          // unknown action
  EXPECT_FALSE(ConfigureFaults("x=err:ENOTANERRNO").ok());  // bad errno
  EXPECT_FALSE(ConfigureFaults("x=err:EIO@").ok());         // empty trigger
  EXPECT_FALSE(ConfigureFaults("x=err:EIO@0").ok());        // zero count
  EXPECT_FALSE(ConfigureFaults("x=err:EIO@every:0").ok());
  EXPECT_FALSE(ConfigureFaults("x=err:EIO@p:1.5").ok());    // p out of range
  EXPECT_FALSE(ConfigureFaults("x=err:EIO@p:huh").ok());
  EXPECT_FALSE(ConfigureFaults("x=eintr:3").ok());          // eintr takes none
  // A bad schedule must not leave a previous good one half-replaced.
  ASSERT_TRUE(ConfigureFaults("x=err:EIO@1").ok());
  ASSERT_FALSE(ConfigureFaults("y=bogus").ok());
  EXPECT_EQ(FaultCheck("x").kind, FaultOutcome::Kind::kErrno);
}

TEST_F(FaultRegistryTest, ArmingAndDisarming) {
  EXPECT_FALSE(FaultsEnabled());
  EXPECT_EQ(FaultCheck("x").kind, FaultOutcome::Kind::kNone);
  ASSERT_TRUE(ConfigureFaults("x=err:EIO").ok());
  EXPECT_TRUE(FaultsEnabled());
  ASSERT_TRUE(ConfigureFaults("").ok());  // empty schedule disarms
  EXPECT_FALSE(FaultsEnabled());
  ASSERT_TRUE(ConfigureFaults("x=err:EIO").ok());
  ClearFaults();
  EXPECT_FALSE(FaultsEnabled());
  EXPECT_EQ(FaultCheck("x").kind, FaultOutcome::Kind::kNone);
}

TEST_F(FaultRegistryTest, NthTriggerFiresExactlyOnce) {
  ASSERT_TRUE(ConfigureFaults("x=err:EPIPE@3").ok());
  std::vector<FaultOutcome::Kind> kinds;
  for (int i = 0; i < 6; ++i) kinds.push_back(FaultCheck("x").kind);
  const std::vector<FaultOutcome::Kind> want = {
      FaultOutcome::Kind::kNone,  FaultOutcome::Kind::kNone,
      FaultOutcome::Kind::kErrno, FaultOutcome::Kind::kNone,
      FaultOutcome::Kind::kNone,  FaultOutcome::Kind::kNone};
  EXPECT_EQ(kinds, want);
  // Unrelated sites never fire and don't advance x's counter.
  EXPECT_EQ(FaultCheck("y").kind, FaultOutcome::Kind::kNone);
}

TEST_F(FaultRegistryTest, FromNthAndEveryNthTriggers) {
  ASSERT_TRUE(ConfigureFaults("x=err:EIO@3+").ok());
  int fired = 0;
  for (int i = 1; i <= 6; ++i) {
    const bool hit = FaultCheck("x").kind == FaultOutcome::Kind::kErrno;
    EXPECT_EQ(hit, i >= 3) << "call " << i;
    fired += hit;
  }
  EXPECT_EQ(fired, 4);

  ASSERT_TRUE(ConfigureFaults("x=err:EIO@every:3").ok());
  for (int i = 1; i <= 9; ++i) {
    const bool hit = FaultCheck("x").kind == FaultOutcome::Kind::kErrno;
    EXPECT_EQ(hit, i % 3 == 0) << "call " << i;
  }
}

TEST_F(FaultRegistryTest, AbsentTriggerMeansEveryCall) {
  ASSERT_TRUE(ConfigureFaults("x=err:EPIPE").ok());
  for (int i = 0; i < 4; ++i) {
    const FaultOutcome outcome = FaultCheck("x");
    EXPECT_EQ(outcome.kind, FaultOutcome::Kind::kErrno);
    EXPECT_EQ(outcome.err, EPIPE);
  }
}

TEST_F(FaultRegistryTest, ProbabilisticTriggerIsDeterministic) {
  const auto run = [](const char* schedule) {
    EXPECT_TRUE(ConfigureFaults(schedule).ok());
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(FaultCheck("x").kind != FaultOutcome::Kind::kNone);
    }
    return fired;
  };
  const std::vector<bool> first = run("x=err:EIO@p:0.5:42");
  const std::vector<bool> second = run("x=err:EIO@p:0.5:42");
  EXPECT_EQ(first, second);  // same seed, same decision sequence
  const int count = static_cast<int>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(count, 0);
  EXPECT_LT(count, 200);
  // A different seed replays a different (but equally fixed) sequence.
  const std::vector<bool> other = run("x=err:EIO@p:0.5:43");
  EXPECT_NE(first, other);
}

TEST_F(FaultRegistryTest, EintrAliasAndShortLengths) {
  ASSERT_TRUE(ConfigureFaults("x=eintr").ok());
  const FaultOutcome eintr = FaultCheck("x");
  EXPECT_EQ(eintr.kind, FaultOutcome::Kind::kErrno);
  EXPECT_EQ(eintr.err, EINTR);

  ASSERT_TRUE(ConfigureFaults("x=short").ok());
  EXPECT_EQ(FaultCheck("x").len, 1u);  // default clamp
  ASSERT_TRUE(ConfigureFaults("x=short:5").ok());
  const FaultOutcome clamped = FaultCheck("x");
  EXPECT_EQ(clamped.kind, FaultOutcome::Kind::kShort);
  EXPECT_EQ(clamped.len, 5u);
}

TEST_F(FaultRegistryTest, FailTokenTargetsOneContext) {
  ASSERT_TRUE(ConfigureFaults("catalog.load=fail:dataset2").ok());
  EXPECT_TRUE(FaultInjectStatus("catalog.load", "dataset1").ok());
  const Status hit = FaultInjectStatus("catalog.load", "dataset2");
  EXPECT_FALSE(hit.ok());
  EXPECT_NE(hit.message().find("catalog.load"), std::string::npos);
  EXPECT_TRUE(FaultInjectStatus("catalog.load", "dataset3").ok());
  // Tokenless fail matches every context.
  ASSERT_TRUE(ConfigureFaults("catalog.load=fail").ok());
  EXPECT_FALSE(FaultInjectStatus("catalog.load", "anything").ok());
  EXPECT_FALSE(FaultInjectStatus("catalog.load").ok());
}

TEST_F(FaultRegistryTest, InjectStatusMapsErrnoAndIgnoresShort) {
  ASSERT_TRUE(ConfigureFaults("x=err:ENOSPC").ok());
  const Status status = FaultInjectStatus("x");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find(std::strerror(ENOSPC)), std::string::npos);
  // kShort has no meaning for a Status-shaped site.
  ASSERT_TRUE(ConfigureFaults("x=short:4").ok());
  EXPECT_TRUE(FaultInjectStatus("x").ok());
}

TEST_F(FaultRegistryTest, ConfiguresFromEnvironment) {
  ASSERT_EQ(::setenv("EGP_FAULTS", "x=err:EPIPE@1", 1), 0);
  ASSERT_TRUE(ConfigureFaultsFromEnv().ok());
  EXPECT_TRUE(FaultsEnabled());
  EXPECT_EQ(FaultCheck("x").err, EPIPE);

  ASSERT_EQ(::setenv("EGP_FAULTS", "x=bogus", 1), 0);
  const Status bad = ConfigureFaultsFromEnv();
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.message().find("EGP_FAULTS"), std::string::npos);

  ASSERT_EQ(::unsetenv("EGP_FAULTS"), 0);
  EXPECT_TRUE(ConfigureFaultsFromEnv().ok());  // unset: no-op, still OK
}

TEST_F(FaultRegistryTest, ReportCountsCallsAndInjections) {
  ASSERT_TRUE(ConfigureFaults("x=err:EIO@2").ok());
  FaultCheck("x");
  FaultCheck("x");
  FaultCheck("x");
  const std::string report = FaultReport();
  EXPECT_NE(report.find("x "), std::string::npos);
  EXPECT_NE(report.find("calls=3"), std::string::npos);
  EXPECT_NE(report.find("injected=1"), std::string::npos);
}

// --- Posix* wrapper behavior under injection -----------------------------

class PipeFixture : public FaultRegistryTest {
 protected:
  void SetUp() override { ASSERT_EQ(::pipe(fds_), 0); }
  void TearDown() override {
    FaultRegistryTest::TearDown();
    ::close(fds_[0]);
    ::close(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(PipeFixture, InjectedEintrIsRetriedInsideTheWrapper) {
  // Every second call at the site is interrupted; the wrapper's retry
  // loop absorbs each storm and the caller sees only full transfers.
  ASSERT_TRUE(ConfigureFaults(
      "pipe.write=eintr@every:2;pipe.read=eintr@every:2").ok());
  const char message[] = "hello";
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(PosixWrite(fds_[1], message, sizeof message, "pipe.write"),
              static_cast<ssize_t>(sizeof message));
    char buf[sizeof message] = {};
    ASSERT_EQ(PosixRead(fds_[0], buf, sizeof buf, "pipe.read"),
              static_cast<ssize_t>(sizeof buf));
    EXPECT_STREQ(buf, message);
  }
}

TEST_F(PipeFixture, InjectedErrnoPreemptsTheSyscall) {
  ASSERT_TRUE(ConfigureFaults("pipe.write=err:ENOSPC@1").ok());
  errno = 0;
  EXPECT_EQ(PosixWrite(fds_[1], "x", 1, "pipe.write"), -1);
  EXPECT_EQ(errno, ENOSPC);
  // The fault consumed; the next write reaches the real pipe.
  EXPECT_EQ(PosixWrite(fds_[1], "x", 1, "pipe.write"), 1);
  char c = 0;
  EXPECT_EQ(PosixRead(fds_[0], &c, 1), 1);
  EXPECT_EQ(c, 'x');
}

TEST_F(PipeFixture, ShortClampsTheTransferLength) {
  ASSERT_TRUE(ConfigureFaults("pipe.write=short:2").ok());
  EXPECT_EQ(PosixWrite(fds_[1], "abcdef", 6, "pipe.write"), 2);
  ClearFaults();
  char buf[8] = {};
  ASSERT_TRUE(ConfigureFaults("pipe.read=short").ok());
  EXPECT_EQ(PosixRead(fds_[0], buf, sizeof buf, "pipe.read"), 1);
  EXPECT_EQ(buf[0], 'a');
  ClearFaults();
  EXPECT_EQ(PosixRead(fds_[0], buf, sizeof buf), 1);  // the other byte
  EXPECT_EQ(buf[0], 'b');
}

TEST_F(PipeFixture, NullSiteNeverInjects) {
  ASSERT_TRUE(ConfigureFaults("pipe.write=err:EIO").ok());
  EXPECT_EQ(PosixWrite(fds_[1], "x", 1), 1);  // no site: untouched
}

}  // namespace
}  // namespace egp
