#include "eval/correlation.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace egp {
namespace {

TEST(PccTest, PerfectPositiveCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0, 1e-12);
}

TEST(PccTest, PerfectNegativeCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(PccTest, ShiftAndScaleInvariant) {
  const std::vector<double> x = {1.5, -2.0, 0.3, 7.7, 4.1};
  std::vector<double> y;
  for (double v : x) y.push_back(3.0 * v - 11.0);
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(PccTest, ConstantSeriesIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({5, 5, 5}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2, 3}, {5, 5, 5}), 0.0);
}

TEST(PccTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({}, {}), 0.0);
}

TEST(PccTest, KnownHandComputedValue) {
  // x = {1,2,3}, y = {1,3,2}: cov = (0·(-1)+... ) → PCC = 0.5.
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {1, 3, 2}), 0.5, 1e-12);
}

TEST(PccTest, IndependentNoiseNearZero) {
  Rng rng(77);
  std::vector<double> x, y;
  for (int i = 0; i < 5000; ++i) {
    x.push_back(rng.NextGaussian());
    y.push_back(rng.NextGaussian());
  }
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.0, 0.05);
}

TEST(PccTest, NoisyLinearIsStrong) {
  // Cohen bands (§6.1.3): [0.5, 1.0] is a strong correlation.
  Rng rng(78);
  std::vector<double> x, y;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.NextGaussian();
    x.push_back(v);
    y.push_back(v + rng.NextGaussian(0.0, 0.8));
  }
  const double pcc = PearsonCorrelation(x, y);
  EXPECT_GT(pcc, 0.5);
  EXPECT_LT(pcc, 1.0);
}

}  // namespace
}  // namespace egp
