#include "eval/crowd_sim.h"

#include <gtest/gtest.h>

#include <cmath>

namespace egp {
namespace {

std::vector<double> LinearUtilities(size_t n) {
  std::vector<double> utilities(n);
  for (size_t i = 0; i < n; ++i) {
    utilities[i] = static_cast<double>(n - i);  // item 0 most important
  }
  return utilities;
}

TEST(CrowdSimTest, ProducesRequestedPairs) {
  Rng rng(5);
  const auto judgments =
      SimulateCrowd(LinearUtilities(20), CrowdSimOptions{}, &rng);
  EXPECT_EQ(judgments.size(), 50u);
  for (const PairJudgment& j : judgments) {
    EXPECT_NE(j.a, j.b);
    EXPECT_LT(j.a, 20u);
    EXPECT_LT(j.b, 20u);
    EXPECT_LE(j.votes_a + j.votes_b, 20);
    EXPECT_GT(j.votes_a + j.votes_b, 0);
  }
}

TEST(CrowdSimTest, ScreeningDiscardsSomeVotes) {
  Rng rng(6);
  CrowdSimOptions options;
  options.screening_pass_rate = 0.5;
  const auto judgments = SimulateCrowd(LinearUtilities(10), options, &rng);
  double total_votes = 0;
  for (const PairJudgment& j : judgments) total_votes += j.votes_a + j.votes_b;
  // Expect roughly half of 50×20 = 1000 votes.
  EXPECT_NEAR(total_votes / (50.0 * 20.0), 0.5, 0.08);
}

TEST(CrowdSimTest, HighFidelityWorkersFavorTruth) {
  Rng rng(7);
  CrowdSimOptions options;
  options.worker_fidelity = 0.95;
  const auto judgments = SimulateCrowd(LinearUtilities(10), options, &rng);
  int majority_correct = 0;
  for (const PairJudgment& j : judgments) {
    const bool a_better = j.a < j.b;  // utilities decrease with index
    if ((j.votes_a > j.votes_b) == a_better) ++majority_correct;
  }
  EXPECT_GT(majority_correct, 45);
}

TEST(CrowdRankingPccTest, PerfectMeasureYieldsStrongPcc) {
  // Scores identical to latent utilities → pairwise rank differences align
  // with vote differences.
  Rng rng(8);
  const auto utilities = LinearUtilities(30);
  const auto judgments = SimulateCrowd(utilities, CrowdSimOptions{}, &rng);
  const double pcc = CrowdRankingPcc(judgments, utilities);
  EXPECT_GT(pcc, 0.5);  // "strong" band
}

TEST(CrowdRankingPccTest, InvertedMeasureYieldsNegativePcc) {
  Rng rng(9);
  const auto utilities = LinearUtilities(30);
  const auto judgments = SimulateCrowd(utilities, CrowdSimOptions{}, &rng);
  std::vector<double> inverted(utilities.rbegin(), utilities.rend());
  EXPECT_LT(CrowdRankingPcc(judgments, inverted), -0.3);
}

TEST(CrowdRankingPccTest, RandomMeasureNearZero) {
  Rng rng(10);
  const auto utilities = LinearUtilities(40);
  const auto judgments = SimulateCrowd(utilities, CrowdSimOptions{}, &rng);
  Rng score_rng(11);
  std::vector<double> random_scores(40);
  for (double& s : random_scores) s = score_rng.NextDouble();
  const double pcc = CrowdRankingPcc(judgments, random_scores);
  EXPECT_LT(std::fabs(pcc), 0.35);
}

TEST(CrowdSimTest, DeterministicUnderSeed) {
  Rng rng1(12), rng2(12);
  const auto utilities = LinearUtilities(15);
  const auto a = SimulateCrowd(utilities, CrowdSimOptions{}, &rng1);
  const auto b = SimulateCrowd(utilities, CrowdSimOptions{}, &rng2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].a, b[i].a);
    EXPECT_EQ(a[i].votes_a, b[i].votes_a);
  }
}

}  // namespace
}  // namespace egp
