#include "eval/ranking_metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace egp {
namespace {

const std::vector<std::string> kRanked = {"a", "b", "c", "d", "e", "f"};

TEST(PrecisionAtKTest, Basics) {
  const GroundTruth truth = {"a", "c", "z"};
  EXPECT_DOUBLE_EQ(PrecisionAtK(kRanked, truth, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(kRanked, truth, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(kRanked, truth, 3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(kRanked, truth, 6), 2.0 / 6.0);
}

TEST(PrecisionAtKTest, KBeyondRankingCountsMisses) {
  const GroundTruth truth = {"a"};
  // P@10 with only 6 ranked items: hits / 10.
  EXPECT_DOUBLE_EQ(PrecisionAtK(kRanked, truth, 10), 0.1);
}

TEST(PrecisionAtKTest, ZeroKIsZero) {
  EXPECT_DOUBLE_EQ(PrecisionAtK(kRanked, {"a"}, 0), 0.0);
}

TEST(OptimalPrecisionTest, PaperP10Bound) {
  // §6.1.2: "P@10 can be at most 0.6, since there are only 6 gold standard
  // key attributes".
  EXPECT_DOUBLE_EQ(OptimalPrecisionAtK(6, 10), 0.6);
  EXPECT_DOUBLE_EQ(OptimalPrecisionAtK(6, 3), 1.0);
  EXPECT_DOUBLE_EQ(OptimalPrecisionAtK(6, 6), 1.0);
}

TEST(AveragePrecisionTest, PerfectRanking) {
  const GroundTruth truth = {"a", "b"};
  // Both hits up front: (1/1 + 2/2) / 2 = 1.
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK(kRanked, truth, 6), 1.0);
}

TEST(AveragePrecisionTest, PaperNormalization) {
  // AvgP divides by |ground truth| even when K < |GT| hits are possible.
  const GroundTruth truth = {"a", "x", "y", "z"};
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK(kRanked, truth, 6), (1.0 / 1.0) / 4.0);
}

TEST(AveragePrecisionTest, LateHitScoresLess) {
  const GroundTruth truth = {"f"};
  // Single hit at rank 6: P@6 × 1 / 1 = 1/6.
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK(kRanked, truth, 6), 1.0 / 6.0);
}

TEST(AveragePrecisionTest, OptimalBound) {
  EXPECT_DOUBLE_EQ(OptimalAveragePrecisionAtK(6, 3), 0.5);
  EXPECT_DOUBLE_EQ(OptimalAveragePrecisionAtK(6, 10), 1.0);
}

TEST(NdcgTest, PerfectRankingIsOne) {
  const GroundTruth truth = {"a", "b", "c"};
  EXPECT_DOUBLE_EQ(NdcgAtK(kRanked, truth, 3), 1.0);
  EXPECT_DOUBLE_EQ(NdcgAtK(kRanked, truth, 6), 1.0);
}

TEST(NdcgTest, PaperDcgFormula) {
  // DCG = rel1 + Σ rel_i/log2(i): a hit at position 2 contributes
  // 1/log2(2) = 1.
  const GroundTruth truth = {"b"};
  // DCG@2 = 0 + 1/log2(2) = 1; IDCG@2 = 1 (ideal puts the hit first).
  EXPECT_DOUBLE_EQ(NdcgAtK(kRanked, truth, 2), 1.0);
  // Hit at position 3: DCG = 1/log2(3), IDCG = 1.
  const GroundTruth truth3 = {"c"};
  EXPECT_NEAR(NdcgAtK(kRanked, truth3, 3), 1.0 / std::log2(3.0), 1e-12);
}

TEST(NdcgTest, EmptyTruthIsZero) {
  EXPECT_DOUBLE_EQ(NdcgAtK(kRanked, {}, 3), 0.0);
}

TEST(ReciprocalRankTest, FirstHitPosition) {
  EXPECT_DOUBLE_EQ(ReciprocalRank(kRanked, {"a"}), 1.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank(kRanked, {"c", "f"}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank(kRanked, {"zzz"}), 0.0);
}

TEST(MrrTest, AveragesReciprocalRanks) {
  EXPECT_DOUBLE_EQ(MeanReciprocalRank({1.0, 0.5, 0.0}), 0.5);
  EXPECT_DOUBLE_EQ(MeanReciprocalRank({}), 0.0);
}

TEST(MrrTest, AboveHalfMeansTopTwoOnAverage) {
  // Table 3's interpretation: MRR > 0.5 ⇒ gold attribute in the top-2 on
  // average.
  EXPECT_GT(MeanReciprocalRank({1.0, 0.5, 1.0, 0.5}), 0.5);
}

}  // namespace
}  // namespace egp
