#include "eval/user_study.h"

#include <gtest/gtest.h>

#include <cmath>

namespace egp {
namespace {

TEST(UserStudyDataTest, Table5SampleSizes) {
  // Spot-check the embedded Table 5 data.
  EXPECT_EQ(PaperConversion(Approach::kConcise, 0).sample_size, 52u);
  EXPECT_EQ(PaperConversion(Approach::kFreebase, 4).sample_size, 44u);
  EXPECT_EQ(PaperConversion(Approach::kGraph, 2).sample_size, 40u);
  // The lost Diverse/film response (n=51).
  EXPECT_EQ(PaperConversion(Approach::kDiverse, 1).sample_size, 51u);
}

TEST(UserStudyDataTest, Table5ConversionRates) {
  EXPECT_DOUBLE_EQ(PaperConversion(Approach::kTight, 2).conversion_rate,
                   0.979);
  EXPECT_DOUBLE_EQ(PaperConversion(Approach::kGraph, 0).conversion_rate,
                   0.975);
  EXPECT_DOUBLE_EQ(PaperConversion(Approach::kYps09, 4).conversion_rate,
                   0.634);
}

TEST(UserStudyDataTest, UxTablesEmbedded) {
  // Table 17 (books): Graph Q1 = 4.4; Table 21 (people): Tight Q1 = 2.9167.
  EXPECT_DOUBLE_EQ(PaperUxScore(Approach::kGraph, 0, 0), 4.4);
  EXPECT_DOUBLE_EQ(PaperUxScore(Approach::kTight, 4, 0), 2.9167);
  EXPECT_DOUBLE_EQ(PaperUxScore(Approach::kYps09, 4, 3), 4.3846);
}

TEST(UserStudyDataTest, DomainsAndNames) {
  EXPECT_EQ(UserStudyDomains().size(), kNumStudyDomains);
  EXPECT_EQ(UserStudyDomains()[0], "books");
  EXPECT_STREQ(ApproachName(Approach::kYps09), "YPS09");
  EXPECT_EQ(AllApproaches().size(), kNumApproaches);
}

TEST(UserStudyDataTest, Table6MedianOrderings) {
  // The embedded medians must reproduce the Table 6 orderings; check the
  // fastest approach per domain.
  const Approach fastest[kNumStudyDomains] = {
      Approach::kGraph,  // books
      Approach::kTight,  // film
      Approach::kFreebase,  // music
      Approach::kTight,  // tv
      Approach::kTight,  // people
  };
  for (size_t d = 0; d < kNumStudyDomains; ++d) {
    for (const Approach a : AllApproaches()) {
      EXPECT_GE(PaperTimeMedianSeconds(a, d),
                PaperTimeMedianSeconds(fastest[d], d))
          << UserStudyDomains()[d];
    }
  }
}

TEST(UserStudySimTest, SampleSizesMatchTable5) {
  const UserStudyOptions options;
  for (const Approach a : AllApproaches()) {
    for (size_t d = 0; d < kNumStudyDomains; ++d) {
      const SimulatedResponses responses = SimulateCell(a, d, options);
      EXPECT_EQ(responses.correct.size(),
                PaperConversion(a, d).sample_size);
      EXPECT_EQ(responses.seconds.size(), responses.correct.size());
    }
  }
}

TEST(UserStudySimTest, ConversionRatesNearTargets) {
  const UserStudyOptions options;
  double total_abs_error = 0.0;
  int cells = 0;
  for (const Approach a : AllApproaches()) {
    for (size_t d = 0; d < kNumStudyDomains; ++d) {
      const SimulatedResponses responses = SimulateCell(a, d, options);
      const double measured = ConversionRate(responses.correct);
      total_abs_error +=
          std::fabs(measured - PaperConversion(a, d).conversion_rate);
      ++cells;
    }
  }
  // Bernoulli noise at n≈50 gives stddev ≈ 0.06; the average deviation
  // across 35 cells should be well under that.
  EXPECT_LT(total_abs_error / cells, 0.06);
}

TEST(UserStudySimTest, TimesCenteredOnMedians) {
  const UserStudyOptions options;
  const SimulatedResponses responses =
      SimulateCell(Approach::kTight, 2, options);
  const double median = Median(responses.seconds);
  EXPECT_NEAR(median, PaperTimeMedianSeconds(Approach::kTight, 2),
              PaperTimeMedianSeconds(Approach::kTight, 2) * 0.3);
  for (double s : responses.seconds) EXPECT_GT(s, 0.0);
}

TEST(UserStudySimTest, LikertResponsesInRange) {
  const UserStudyOptions options;
  const SimulatedResponses responses =
      SimulateCell(Approach::kExperts, 3, options);
  for (const auto& question : responses.likert) {
    EXPECT_FALSE(question.empty());
    for (int r : question) {
      EXPECT_GE(r, 1);
      EXPECT_LE(r, 5);
    }
  }
}

TEST(UserStudySimTest, LikertMeansNearTargets) {
  const UserStudyOptions options;
  double total_abs_error = 0.0;
  int cells = 0;
  for (const Approach a : AllApproaches()) {
    for (size_t d = 0; d < kNumStudyDomains; ++d) {
      const SimulatedResponses responses = SimulateCell(a, d, options);
      for (size_t q = 0; q < 4; ++q) {
        total_abs_error += std::fabs(LikertMean(responses.likert[q]) -
                                     PaperUxScore(a, d, q));
        ++cells;
      }
    }
  }
  EXPECT_LT(total_abs_error / cells, 0.45);
}

TEST(UserStudySimTest, DeterministicUnderSeed) {
  const UserStudyOptions options;
  const SimulatedResponses a = SimulateCell(Approach::kConcise, 0, options);
  const SimulatedResponses b = SimulateCell(Approach::kConcise, 0, options);
  EXPECT_EQ(a.correct, b.correct);
  EXPECT_EQ(a.seconds, b.seconds);
}

TEST(UserStudySimTest, SeedChangesResponses) {
  UserStudyOptions o1, o2;
  o2.seed = o1.seed + 1;
  const SimulatedResponses a = SimulateCell(Approach::kConcise, 0, o1);
  const SimulatedResponses b = SimulateCell(Approach::kConcise, 0, o2);
  EXPECT_NE(a.seconds, b.seconds);
}

TEST(UserStudyAnalysisTest, SortByMedianTimeReproducesTable6) {
  // Feed the analysis the embedded medians as degenerate samples and
  // verify the music-domain Table 6 row: Freebase, Tight, Experts, YPS09,
  // Concise, Diverse, Graph.
  std::array<std::vector<double>, kNumApproaches> times;
  for (const Approach a : AllApproaches()) {
    times[static_cast<size_t>(a)] = {PaperTimeMedianSeconds(a, 2)};
  }
  const auto order = SortApproachesByMedianTime(times);
  const std::vector<Approach> expected = {
      Approach::kFreebase, Approach::kTight,   Approach::kExperts,
      Approach::kYps09,    Approach::kConcise, Approach::kDiverse,
      Approach::kGraph};
  EXPECT_EQ(order, expected);
}

TEST(UserStudyAnalysisTest, UxOrderingReproducesTable9Q1) {
  // Table 9, Q1 ordering: Freebase, Diverse, Graph, Experts, YPS09,
  // Concise, Tight (descending mean across domains).
  std::array<std::array<double, kNumStudyDomains>, kNumApproaches> scores;
  for (const Approach a : AllApproaches()) {
    for (size_t d = 0; d < kNumStudyDomains; ++d) {
      scores[static_cast<size_t>(a)][d] = PaperUxScore(a, d, 0);
    }
  }
  const auto order = SortApproachesByUxScore(scores);
  const std::vector<Approach> expected = {
      Approach::kFreebase, Approach::kDiverse, Approach::kGraph,
      Approach::kExperts,  Approach::kYps09,   Approach::kConcise,
      Approach::kTight};
  EXPECT_EQ(order, expected);
}

TEST(UserStudyAnalysisTest, ConversionRateHelper) {
  EXPECT_DOUBLE_EQ(ConversionRate({true, true, false, false}), 0.5);
  EXPECT_DOUBLE_EQ(ConversionRate({}), 0.0);
  EXPECT_DOUBLE_EQ(LikertMean({4, 5, 3}), 4.0);
}

}  // namespace
}  // namespace egp
