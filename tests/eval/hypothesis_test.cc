#include "eval/hypothesis.h"

#include <gtest/gtest.h>

#include "eval/user_study.h"

namespace egp {
namespace {

TEST(ZTestTest, PaperTable7ConciseVsTight) {
  // Music domain, Concise row / Tight column (Table 7): z=1.59, p=0.0559,
  // computed from Table 5's (n=48, c=0.979) vs (n=52, c=0.903).
  const ZTestResult result =
      TwoProportionOneTailedZTest(0.979, 48, 0.903, 52);
  EXPECT_NEAR(result.z, 1.59, 0.02);
  EXPECT_NEAR(result.p, 0.0559, 0.003);
  EXPECT_TRUE(result.Significant(0.1));
}

TEST(ZTestTest, PaperTable7TightVsDiverse) {
  // Tight row / Diverse column: z=-3.48, p=0.0003
  // ((n=52, c=0.730) vs (n=48, c=0.979)).
  const ZTestResult result =
      TwoProportionOneTailedZTest(0.730, 52, 0.979, 48);
  EXPECT_NEAR(result.z, -3.48, 0.03);
  EXPECT_NEAR(result.p, 0.0003, 0.0002);
}

TEST(ZTestTest, PaperTable7DiverseVsFreebase) {
  // Diverse row / Freebase column: z=2.57, p=0.0051.
  const ZTestResult result =
      TwoProportionOneTailedZTest(0.931, 44, 0.730, 52);
  EXPECT_NEAR(result.z, 2.57, 0.03);
  EXPECT_NEAR(result.p, 0.0051, 0.002);
}

TEST(ZTestTest, PaperTable13BooksGraphVsExperts) {
  // Books, Experts row / Graph column: z=4.13, p≈0.0000.
  const ZTestResult result =
      TwoProportionOneTailedZTest(0.975, 40, 0.604, 48);
  EXPECT_NEAR(result.z, 4.13, 0.05);
  EXPECT_LT(result.p, 0.0001);
}

TEST(ZTestTest, PaperTable16PeopleTightVsDiverse) {
  // People, Tight row / Diverse column: z=2.43, p=0.0075.
  const ZTestResult result =
      TwoProportionOneTailedZTest(0.875, 48, 0.666, 48);
  EXPECT_NEAR(result.z, 2.43, 0.03);
  EXPECT_NEAR(result.p, 0.0075, 0.002);
}

TEST(ZTestTest, EqualProportionsGiveZeroZ) {
  const ZTestResult result = TwoProportionOneTailedZTest(0.8, 50, 0.8, 50);
  EXPECT_NEAR(result.z, 0.0, 1e-12);
  EXPECT_NEAR(result.p, 0.5, 1e-12);
  EXPECT_FALSE(result.Significant());
}

TEST(ZTestTest, SymmetricInSwap) {
  const ZTestResult ab = TwoProportionOneTailedZTest(0.9, 40, 0.7, 60);
  const ZTestResult ba = TwoProportionOneTailedZTest(0.7, 60, 0.9, 40);
  EXPECT_NEAR(ab.z, -ba.z, 1e-12);
  EXPECT_NEAR(ab.p, ba.p, 1e-12);
}

TEST(ZTestTest, DegenerateAllSuccess) {
  // Pooled proportion 1.0 → zero standard error → z=0, p=1 (no evidence).
  const ZTestResult result = TwoProportionOneTailedZTest(1.0, 30, 1.0, 30);
  EXPECT_DOUBLE_EQ(result.z, 0.0);
  EXPECT_DOUBLE_EQ(result.p, 1.0);
}

TEST(ZTestTest, LargerSamplesSharpenSignificance) {
  const ZTestResult small = TwoProportionOneTailedZTest(0.9, 20, 0.8, 20);
  const ZTestResult large = TwoProportionOneTailedZTest(0.9, 200, 0.8, 200);
  EXPECT_GT(large.z, small.z);
  EXPECT_LT(large.p, small.p);
}

TEST(ZMatrixTest, ReproducesTable7FromEmbeddedTable5) {
  // End-to-end: the pairwise matrix over the embedded music-domain cells
  // must reproduce the published Table 7 entries.
  std::array<StudyCell, kNumApproaches> cells;
  for (size_t a = 0; a < kNumApproaches; ++a) {
    cells[a] = PaperConversion(static_cast<Approach>(a), 2);  // music
  }
  const ZMatrix matrix = PairwiseZTests(cells);
  auto idx = [](Approach a) { return static_cast<size_t>(a); };
  // Row Concise, column Tight: 1.59.
  EXPECT_NEAR(matrix[idx(Approach::kConcise)][idx(Approach::kTight)].z, 1.59,
              0.02);
  // Row Concise, column Diverse: -2.28.
  EXPECT_NEAR(matrix[idx(Approach::kConcise)][idx(Approach::kDiverse)].z,
              -2.28, 0.03);
  // Row Diverse, column Graph: 1.70, p=0.0446.
  EXPECT_NEAR(matrix[idx(Approach::kDiverse)][idx(Approach::kGraph)].z, 1.70,
              0.03);
  EXPECT_NEAR(matrix[idx(Approach::kDiverse)][idx(Approach::kGraph)].p,
              0.0446, 0.004);
  // Row YPS09, column Graph: -0.77.
  EXPECT_NEAR(matrix[idx(Approach::kYps09)][idx(Approach::kGraph)].z, -0.77,
              0.03);
}

}  // namespace
}  // namespace egp
