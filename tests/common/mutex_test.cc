// Runtime semantics of the annotated locking wrappers (common/mutex.h).
// The *annotations* are proven by the Clang build and tests/analysis/;
// this suite pins down the behavior the wrappers must preserve over the
// standard primitives they wrap: mutual exclusion, TryLock semantics,
// condition-variable wakeups, and deadline-based timed waits.
#include "common/mutex.h"

#include <atomic>
#include <chrono>
#include <string_view>
#include <thread>
#include <vector>

#include "common/lock_stats.h"
#include "gtest/gtest.h"

namespace egp {
namespace {

TEST(MutexTest, LockUnlockRoundTrip) {
  Mutex mu;
  mu.Lock();
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, TryLockFailsWhenHeld) {
  Mutex mu;
  mu.Lock();
  std::atomic<bool> acquired{true};
  // try_lock on an already-held std::mutex from the SAME thread is UB;
  // probe from another thread.
  std::thread prober([&] { acquired.store(mu.TryLock()); });
  prober.join();
  EXPECT_FALSE(acquired.load());
  mu.Unlock();
  std::thread prober2([&] {
    const bool ok = mu.TryLock();
    acquired.store(ok);
    if (ok) mu.Unlock();
  });
  prober2.join();
  EXPECT_TRUE(acquired.load());
}

TEST(MutexTest, MutexLockProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;  // deliberately non-atomic: the lock is the proof
  constexpr int kThreads = 4;
  constexpr int kIncrementsPerThread = 2'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  MutexLock lock(&mu);
  EXPECT_EQ(counter, kThreads * kIncrementsPerThread);
}

TEST(CondVarTest, WaitReleasesAndReacquires) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    {
      MutexLock lock(&mu);
      ready = true;
    }
    cv.NotifyOne();
  });
  {
    MutexLock lock(&mu);
    // If Wait failed to release the mutex, the producer could never set
    // ready and this would deadlock (caught by the suite timeout).
    while (!ready) cv.Wait(mu);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool released = false;
  int woke = 0;
  constexpr int kWaiters = 3;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!released) cv.Wait(mu);
      ++woke;
    });
  }
  {
    MutexLock lock(&mu);
    released = true;
  }
  cv.NotifyAll();
  for (std::thread& waiter : waiters) waiter.join();
  MutexLock lock(&mu);
  EXPECT_EQ(woke, kWaiters);
}

TEST(CondVarTest, WaitUntilTimesOut) {
  Mutex mu;
  CondVar cv;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
  MutexLock lock(&mu);
  // Nobody ever notifies: the wait must report timeout, not hang.
  bool timed_out = false;
  while (!timed_out) timed_out = !cv.WaitUntil(mu, deadline);
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

TEST(CondVarTest, WaitForTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  EXPECT_FALSE(cv.WaitFor(mu, std::chrono::milliseconds(10)));
}

TEST(LockStatsTest, RegisterDedupsByName) {
  LockSite* a = RegisterLockSite("mutex_test.dedup");
  LockSite* b = RegisterLockSite("mutex_test.dedup");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
}

TEST(LockStatsTest, LabeledMutexCountsAcquisitions) {
  LockSite* site = RegisterLockSite("mutex_test.acquisitions");
  ASSERT_NE(site, nullptr);
  const uint64_t before = site->acquisitions.load();
  Mutex mu{"mutex_test.acquisitions"};
  for (int i = 0; i < 10; ++i) {
    MutexLock lock(&mu);
  }
  EXPECT_EQ(site->acquisitions.load(), before + 10);
}

TEST(LockStatsTest, ContentionRecordsWaitHistogram) {
  LockSite* site = RegisterLockSite("mutex_test.contention");
  ASSERT_NE(site, nullptr);
  const uint64_t contentions_before = site->contentions.load();
  Mutex mu{"mutex_test.contention"};
  std::atomic<bool> held{false};
  std::thread holder([&] {
    MutexLock lock(&mu);
    held.store(true);
    // Hold long enough that the main thread's Lock() reliably takes the
    // contended (timed) path.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  while (!held.load()) std::this_thread::yield();
  {
    MutexLock lock(&mu);
  }
  holder.join();
  EXPECT_GE(site->contentions.load(), contentions_before + 1);
  EXPECT_GT(site->wait_nanos.load(), 0u);
  // The wait landed in exactly one histogram bucket per contention.
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < kLockWaitBucketCount; ++i) {
    bucket_total += site->wait_buckets[i].load();
  }
  EXPECT_EQ(bucket_total, site->contentions.load());
}

TEST(LockStatsTest, SnapshotCarriesSiteNames) {
  RegisterLockSite("mutex_test.snapshot");
  bool found = false;
  for (const LockSiteSnapshot& snap : SnapshotLockSites()) {
    ASSERT_NE(snap.name, nullptr);
    if (std::string_view(snap.name) == "mutex_test.snapshot") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(LockStatsTest, RuntimeGateStopsWaitRecording) {
  LockSite* site = RegisterLockSite("mutex_test.gate");
  ASSERT_NE(site, nullptr);
  SetLockTelemetryEnabled(false);
  const uint64_t contentions_before = site->contentions.load();
  Mutex mu{"mutex_test.gate"};
  std::atomic<bool> held{false};
  std::thread holder([&] {
    MutexLock lock(&mu);
    held.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  });
  while (!held.load()) std::this_thread::yield();
  {
    MutexLock lock(&mu);
  }
  holder.join();
  SetLockTelemetryEnabled(true);
  EXPECT_EQ(site->contentions.load(), contentions_before);
}

TEST(CondVarTest, WaitUntilReturnsTrueWhenNotified) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    {
      MutexLock lock(&mu);
      ready = true;
    }
    cv.NotifyOne();
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool observed = false;
  {
    MutexLock lock(&mu);
    while (!ready) {
      if (!cv.WaitUntil(mu, deadline)) break;  // timeout: fail below
    }
    observed = ready;
  }
  producer.join();
  EXPECT_TRUE(observed);
}

}  // namespace
}  // namespace egp
