#include "common/status.h"

#include <gtest/gtest.h>

namespace egp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad k");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad k");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Caller(int x) {
  EGP_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Caller(3).ok());
  EXPECT_EQ(Caller(-1).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace egp
