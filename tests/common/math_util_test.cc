#include "common/math_util.h"

#include <gtest/gtest.h>

#include <cmath>

namespace egp {
namespace {

TEST(EntropyLog10Test, PaperDirectorExample) {
  // §3.3: S_ent(Director) with histogram {Barry:2, Peter:1, Alex:1}
  // = (2/4)log(4/2) + (1/4)log(4/1) + (1/4)log(4/1) = 0.45 (base 10).
  EXPECT_NEAR(EntropyLog10({2, 1, 1}), 0.45, 0.005);
}

TEST(EntropyLog10Test, PaperGenresExample) {
  // §3.3: S_ent(Genres) with {{Action,SciFi}:2, {Action}:1}
  // = (2/3)log(3/2) + (1/3)log(3) = 0.28.
  EXPECT_NEAR(EntropyLog10({2, 1}), 0.28, 0.005);
}

TEST(EntropyLog10Test, UniformIsLogN) {
  EXPECT_NEAR(EntropyLog10({1, 1, 1, 1, 1, 1, 1, 1, 1, 1}), 1.0, 1e-12);
}

TEST(EntropyLog10Test, SingleGroupIsZero) {
  EXPECT_DOUBLE_EQ(EntropyLog10({7}), 0.0);
}

TEST(EntropyLog10Test, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(EntropyLog10({}), 0.0);
}

TEST(EntropyLog10Test, IgnoresZeroCounts) {
  EXPECT_DOUBLE_EQ(EntropyLog10({3, 0, 3}), EntropyLog10({3, 3}));
}

TEST(EntropyLog2Test, UniformTwoGroupsIsOneBit) {
  EXPECT_NEAR(EntropyLog2({5, 5}), 1.0, 1e-12);
}

TEST(EntropyLog2Test, SkewIsLessThanUniform) {
  EXPECT_LT(EntropyLog2({9, 1}), EntropyLog2({5, 5}));
}

TEST(NormalCdfTest, StandardValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
  EXPECT_NEAR(NormalCdf(1.2816), 0.9, 1e-3);
}

TEST(NormalSfTest, ComplementOfCdf) {
  for (double z : {-2.0, -0.5, 0.0, 0.7, 2.3}) {
    EXPECT_NEAR(NormalSf(z) + NormalCdf(z), 1.0, 1e-12);
  }
}

TEST(NormalSfTest, PaperSignificanceThreshold) {
  // alpha = 0.1 one-tailed corresponds to z ≈ 1.2816.
  EXPECT_NEAR(NormalSf(1.2816), 0.1, 1e-3);
}

TEST(Log2OrZeroTest, HandlesNonPositive) {
  EXPECT_DOUBLE_EQ(Log2OrZero(0.0), 0.0);
  EXPECT_DOUBLE_EQ(Log2OrZero(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(Log2OrZero(8.0), 3.0);
}

TEST(ApproxEqualTest, Tolerance) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-10));
  EXPECT_FALSE(ApproxEqual(1.0, 1.001));
  EXPECT_TRUE(ApproxEqual(1.0, 1.001, 0.01));
}

}  // namespace
}  // namespace egp
