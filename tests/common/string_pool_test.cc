#include "common/string_pool.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/strings.h"

namespace egp {
namespace {

TEST(StringPoolTest, InternAssignsDenseIds) {
  StringPool pool;
  EXPECT_EQ(pool.Intern("a"), 0u);
  EXPECT_EQ(pool.Intern("b"), 1u);
  EXPECT_EQ(pool.Intern("c"), 2u);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(StringPoolTest, InternIsIdempotent) {
  StringPool pool;
  const uint32_t id = pool.Intern("FILM");
  EXPECT_EQ(pool.Intern("FILM"), id);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(StringPoolTest, GetReturnsOriginal) {
  StringPool pool;
  const uint32_t id = pool.Intern("Men in Black");
  EXPECT_EQ(pool.Get(id), "Men in Black");
}

TEST(StringPoolTest, FindMissingReturnsNullopt) {
  StringPool pool;
  pool.Intern("present");
  EXPECT_FALSE(pool.Find("absent").has_value());
  EXPECT_EQ(pool.Find("present").value(), 0u);
}

TEST(StringPoolTest, EmptyStringIsValidKey) {
  StringPool pool;
  const uint32_t id = pool.Intern("");
  EXPECT_EQ(pool.Get(id), "");
  EXPECT_TRUE(pool.Find("").has_value());
}

TEST(StringPoolTest, StableAcrossManyInsertions) {
  StringPool pool;
  // deque storage keeps earlier string views valid through growth.
  std::vector<uint32_t> ids;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(pool.Intern(StrFormat("entity-%d", i)));
  }
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(pool.Get(ids[i]), StrFormat("entity-%d", i));
    EXPECT_EQ(pool.Find(StrFormat("entity-%d", i)).value(), ids[i]);
  }
}

TEST(StringPoolTest, CopyIsIndependentOfSource) {
  // Regression test: the copied pool's index must point into its own
  // storage, not the source's (caught by ASan as a use-after-free when the
  // source was destroyed first).
  auto source = std::make_unique<StringPool>();
  const uint32_t film = source->Intern("FILM");
  const uint32_t actor = source->Intern("FILM ACTOR");
  StringPool copy = *source;
  source.reset();
  EXPECT_EQ(copy.Find("FILM").value(), film);
  EXPECT_EQ(copy.Find("FILM ACTOR").value(), actor);
  EXPECT_EQ(copy.Get(film), "FILM");
  // Copy assignment over a non-empty pool rebuilds the index too.
  StringPool assigned;
  assigned.Intern("stale");
  assigned = copy;
  EXPECT_EQ(assigned.Find("FILM").value(), film);
  EXPECT_FALSE(assigned.Find("stale").has_value());
  // New interns in the copy keep working after divergence.
  EXPECT_EQ(copy.Intern("AWARD"), 2u);
  EXPECT_EQ(copy.Find("AWARD").value(), 2u);
}

TEST(StringPoolDeathTest, GetOutOfRangeAborts) {
  StringPool pool;
  EXPECT_DEATH({ (void)pool.Get(0); }, "CHECK failed");
}

}  // namespace
}  // namespace egp
