#include "common/logging.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"

namespace egp {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelRoundTrips) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  // Below-threshold statements must be safe no-ops, including streaming.
  EGP_LOG(Debug) << "suppressed " << 42;
  EGP_LOG(Info) << "also suppressed" << std::string(1000, 'x');
  SUCCEED();
}

TEST(LoggingTest, EmittedMessagesGoToStderr) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  EGP_LOG(Warning) << "visible " << 7;
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("visible 7"), std::string::npos);
  EXPECT_NE(captured.find("WARN"), std::string::npos);
  EXPECT_NE(captured.find("logging_test.cc"), std::string::npos);
}

TEST(LoggingTest, LevelFiltering) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  EGP_LOG(Info) << "hidden";
  EGP_LOG(Error) << "shown";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured.find("hidden"), std::string::npos);
  EXPECT_NE(captured.find("shown"), std::string::npos);
}

// Regression: the sink write used to be two stream operations (message,
// then "\n") with no lock, so lines from concurrent threads could
// interleave mid-line. Every captured line must now be exactly one
// complete message.
TEST(LoggingTest, ConcurrentMessagesNeverInterleave) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  constexpr int kThreads = 4;
  constexpr int kMessagesPerThread = 200;
  // A long tail makes a torn write overwhelmingly likely to split a line.
  const std::string tail(512, 'x');
  ::testing::internal::CaptureStderr();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &tail] {
      for (int i = 0; i < kMessagesPerThread; ++i) {
        EGP_LOG(Info) << "thread=" << t << " msg=" << i << " " << tail;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const std::string captured = ::testing::internal::GetCapturedStderr();

  int complete_lines = 0;
  std::istringstream stream(captured);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    // One complete message: starts with its prefix, ends with the tail,
    // and contains no second prefix spliced into the middle.
    EXPECT_EQ(line.rfind("[INFO", 0), 0u) << "torn line: " << line;
    ASSERT_GE(line.size(), tail.size());
    EXPECT_EQ(line.substr(line.size() - tail.size()), tail)
        << "torn line: " << line;
    EXPECT_EQ(line.find("[INFO", 1), std::string::npos)
        << "spliced line: " << line;
    ++complete_lines;
  }
  EXPECT_EQ(complete_lines, kThreads * kMessagesPerThread);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  // Burn a little CPU deterministically.
  volatile uint64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i;
  const double elapsed_ms = timer.ElapsedMillis();
  EXPECT_GT(elapsed_ms, 0.0);
  EXPECT_LT(elapsed_ms, 10000.0);
  EXPECT_NEAR(timer.ElapsedSeconds() * 1000.0, timer.ElapsedMillis(),
              timer.ElapsedMillis() * 0.5);
}

TEST(TimerTest, ResetRestartsClock) {
  Timer timer;
  volatile uint64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i;
  const double before = timer.ElapsedMicros();
  timer.Reset();
  EXPECT_LT(timer.ElapsedMicros(), before + 1000.0);
}

}  // namespace
}  // namespace egp
