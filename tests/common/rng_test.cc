#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace egp {
namespace {

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 12);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(RngTest, LogNormalMedianIsExpMu) {
  Rng rng(19);
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) samples.push_back(rng.NextLogNormal(3.0, 0.4));
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  EXPECT_NEAR(samples[samples.size() / 2], std::exp(3.0), 1.0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, WeightedRespectsZeroWeights) {
  Rng rng(29);
  std::vector<double> weights = {0.0, 1.0, 0.0, 2.0};
  for (int i = 0; i < 200; ++i) {
    const size_t pick = rng.NextWeighted(weights);
    EXPECT_TRUE(pick == 1 || pick == 3);
  }
}

TEST(RngTest, WeightedProportions) {
  Rng rng(31);
  std::vector<double> weights = {1.0, 3.0};
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextWeighted(weights) == 1) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, SampleIndicesDistinctAndInRange) {
  Rng rng(41);
  const auto picked = rng.SampleIndices(100, 10);
  EXPECT_EQ(picked.size(), 10u);
  std::set<size_t> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 10u);
  for (size_t i : picked) EXPECT_LT(i, 100u);
}

TEST(RngTest, SampleIndicesWhenKExceedsN) {
  Rng rng(43);
  const auto picked = rng.SampleIndices(4, 10);
  EXPECT_EQ(picked.size(), 4u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(47);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfDistribution zipf(50, 1.0);
  double total = 0.0;
  for (size_t i = 0; i < zipf.size(); ++i) total += zipf.Probability(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, MonotoneDecreasing) {
  ZipfDistribution zipf(20, 0.8);
  for (size_t i = 1; i < zipf.size(); ++i) {
    EXPECT_GT(zipf.Probability(i - 1), zipf.Probability(i));
  }
}

TEST(ZipfTest, SampleFrequenciesMatchProbabilities) {
  ZipfDistribution zipf(5, 1.0);
  Rng rng(53);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, zipf.Probability(i), 0.01);
  }
}

TEST(ZipfTest, SingleElement) {
  ZipfDistribution zipf(1, 2.0);
  Rng rng(59);
  EXPECT_EQ(zipf.Sample(&rng), 0u);
  EXPECT_DOUBLE_EQ(zipf.Probability(0), 1.0);
}

}  // namespace
}  // namespace egp
