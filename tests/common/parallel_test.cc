#include "common/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace egp {
namespace {

TEST(ThreadsTest, AtLeastOne) {
  EXPECT_GE(HardwareThreads(), 1u);
  EXPECT_GE(Threads(), 1u);
}

TEST(ThreadsTest, EnvOverrideWinsAndInvalidFallsBack) {
  ASSERT_EQ(setenv("EGP_THREADS", "3", 1), 0);
  EXPECT_EQ(Threads(), 3u);
  ASSERT_EQ(setenv("EGP_THREADS", "999999", 1), 0);
  EXPECT_EQ(Threads(), 256u);  // clamped
  ASSERT_EQ(setenv("EGP_THREADS", "0", 1), 0);
  EXPECT_EQ(Threads(), HardwareThreads());
  ASSERT_EQ(setenv("EGP_THREADS", "banana", 1), 0);
  EXPECT_EQ(Threads(), HardwareThreads());
  ASSERT_EQ(unsetenv("EGP_THREADS"), 0);
  EXPECT_EQ(Threads(), HardwareThreads());
}

TEST(ThreadPoolTest, ZeroParallelismClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.parallelism(), 1u);
  int runs = 0;
  ParallelFor(&pool, 0, 4, [&runs](size_t) { ++runs; });
  EXPECT_EQ(runs, 4);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (unsigned parallelism : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(parallelism);
    for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{7}, size_t{64},
                     size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      ParallelFor(&pool, 0, n, [&hits](size_t i) { ++hits[i]; });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " at parallelism "
                                     << parallelism;
      }
    }
  }
}

TEST(ParallelForTest, NullPoolRunsInline) {
  const std::thread::id caller = std::this_thread::get_id();
  size_t count = 0;
  ParallelFor(nullptr, 5, 10, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_GE(i, 5u);
    EXPECT_LT(i, 10u);
    ++count;
  });
  EXPECT_EQ(count, 5u);
}

TEST(ParallelForTest, EmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(4);
  int runs = 0;
  ParallelFor(&pool, 3, 3, [&runs](size_t) { ++runs; });
  ParallelFor(&pool, 5, 2, [&runs](size_t) { ++runs; });
  EXPECT_EQ(runs, 0);
}

TEST(ParallelForTest, OneElementRange) {
  ThreadPool pool(4);
  std::vector<size_t> seen;
  ParallelFor(&pool, 41, 42, [&seen](size_t i) { seen.push_back(i); });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 41u);
}

TEST(ParallelForTest, ChunksPartitionTheRange) {
  ThreadPool pool(3);
  std::vector<std::pair<size_t, size_t>> chunks;
  std::mutex mu;
  ParallelForChunks(&pool, 0, 10, [&](size_t lo, size_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(lo, hi);
  });
  ASSERT_EQ(chunks.size(), 3u);
  std::sort(chunks.begin(), chunks.end());
  EXPECT_EQ(chunks.front().first, 0u);
  EXPECT_EQ(chunks.back().second, 10u);
  size_t total = 0;
  for (size_t c = 0; c < chunks.size(); ++c) {
    EXPECT_LT(chunks[c].first, chunks[c].second);
    if (c > 0) {
      EXPECT_EQ(chunks[c].first, chunks[c - 1].second);
    }
    total += chunks[c].second - chunks[c].first;
  }
  EXPECT_EQ(total, 10u);
}

TEST(ParallelForTest, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 0, 100,
                  [](size_t i) {
                    if (i == 37) throw std::runtime_error("boom at 37");
                  }),
      std::runtime_error);
  // All chunks completed (no detached stragglers): the pool stays usable.
  std::atomic<size_t> sum{0};
  ParallelFor(&pool, 0, 100, [&sum](size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ParallelForTest, ExceptionFromLowestChunkWins) {
  // Multiple chunks throw; the error from the lowest chunk index is the
  // one the caller sees, independent of scheduling.
  ThreadPool pool(4);
  for (int round = 0; round < 8; ++round) {
    try {
      ParallelFor(&pool, 0, 100, [](size_t i) {
        if (i == 0) throw std::runtime_error("first-chunk");
        if (i >= 90) throw std::runtime_error("last-chunk");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "first-chunk");
    }
  }
}

TEST(ParallelForTest, SerialExceptionAlsoPropagates) {
  EXPECT_THROW(ParallelFor(nullptr, 0, 3,
                           [](size_t) { throw std::runtime_error("serial"); }),
               std::runtime_error);
}

TEST(ParallelForTest, NestedCallIsRejected) {
  ThreadPool pool(4);
  EXPECT_THROW(ParallelFor(&pool, 0, 8,
                           [&pool](size_t) {
                             ParallelFor(&pool, 0, 2, [](size_t) {});
                           }),
               std::logic_error);
  // The serial (null-pool) path enforces the same contract.
  EXPECT_THROW(ParallelFor(nullptr, 0, 1,
                           [](size_t) {
                             ParallelFor(nullptr, 0, 1, [](size_t) {});
                           }),
               std::logic_error);
  // And the pool survives the rejection.
  std::atomic<int> runs{0};
  ParallelFor(&pool, 0, 8, [&runs](size_t) { ++runs; });
  EXPECT_EQ(runs.load(), 8);
}

TEST(ParallelForDynamicTest, CoversEveryIndexExactlyOnce) {
  for (unsigned parallelism : {1u, 3u, 8u}) {
    ThreadPool pool(parallelism);
    for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{500}}) {
      std::vector<std::atomic<int>> hits(n);
      ParallelForDynamic(&pool, 0, n, [&hits](size_t i) { ++hits[i]; });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " at parallelism "
                                     << parallelism;
      }
    }
  }
}

TEST(ParallelForDynamicTest, LoadBalancesSkewedWork) {
  // One dominant index plus many trivial ones must all complete; null
  // pool runs inline.
  std::atomic<uint64_t> sum{0};
  ParallelForDynamic(nullptr, 0, 10, [&sum](size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ParallelForDynamicTest, LowestIndexExceptionWinsAndNestingRejected) {
  ThreadPool pool(4);
  for (int round = 0; round < 4; ++round) {
    try {
      ParallelForDynamic(&pool, 0, 64, [](size_t i) {
        if (i == 3) throw std::runtime_error("low");
        if (i >= 50) throw std::runtime_error("high");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "low");
    }
  }
  EXPECT_THROW(
      ParallelForDynamic(&pool, 0, 4,
                         [&pool](size_t) {
                           ParallelForDynamic(&pool, 0, 2, [](size_t) {});
                         }),
      std::logic_error);
}

TEST(ThreadPoolTest, SharedPoolUnderContentionAndShutdown) {
  // Several caller threads hammer one pool with overlapping ParallelFors;
  // the pool must serve them all and then shut down cleanly (workers
  // drain queued chunks, nobody hangs). TSan runs this suite too.
  constexpr int kCallers = 4;
  constexpr int kRounds = 50;
  std::vector<std::atomic<uint64_t>> sums(kCallers);
  {
    ThreadPool pool(4);
    std::vector<std::thread> callers;
    for (int c = 0; c < kCallers; ++c) {
      callers.emplace_back([&pool, &sums, c] {
        for (int r = 0; r < kRounds; ++r) {
          ParallelFor(&pool, 0, 64,
                      [&sums, c](size_t i) { sums[c] += i; });
        }
      });
    }
    for (std::thread& t : callers) t.join();
  }  // pool destroyed immediately after the last call returns
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(sums[c].load(), uint64_t{2016} * kRounds);
  }
}

TEST(ThreadPoolTest, ImmediateShutdownWithoutWork) {
  for (int i = 0; i < 100; ++i) {
    ThreadPool pool(8);  // construct + destruct churn
  }
}

}  // namespace
}  // namespace egp
