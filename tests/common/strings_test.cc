#include "common/strings.h"

#include <gtest/gtest.h>

namespace egp {
namespace {

TEST(SplitTest, BasicTabSplit) {
  const auto parts = Split("a\tb\tc", '\t');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(TrimTest, PreservesInnerWhitespace) {
  EXPECT_EQ(Trim(" a b "), "a b");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(ToLowerTest, AsciiLowercasing) {
  EXPECT_EQ(ToLower("FiLm ActOr 42"), "film actor 42");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("reltype\tx", "reltype"));
  EXPECT_FALSE(StartsWith("rel", "reltype"));
  EXPECT_TRUE(EndsWith("graph.egt", ".egt"));
  EXPECT_FALSE(EndsWith("egt", ".egt"));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("k=%u n=%u", 5u, 10u), "k=5 n=10");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("%s", "plain"), "plain");
}

TEST(StrFormatTest, EmptyAndLongOutputs) {
  EXPECT_EQ(StrFormat("%s", ""), "");
  const std::string long_arg(500, 'x');
  EXPECT_EQ(StrFormat("%s", long_arg.c_str()).size(), 500u);
}

}  // namespace
}  // namespace egp
