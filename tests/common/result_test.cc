#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace egp {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> moved = std::move(result).value();
  EXPECT_EQ(*moved, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result(std::string("hello"));
  EXPECT_EQ(result->size(), 5u);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  EGP_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  return value * 2;
}

TEST(ResultTest, AssignOrReturnHappyPath) {
  auto result = Doubled(21);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto result = Doubled(-1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> result(Status::Internal("boom"));
  EXPECT_DEATH({ (void)result.value(); }, "CHECK failed");
}

}  // namespace
}  // namespace egp
