// The sampling CPU profiler (common/profiler.h): window lifecycle,
// parameter validation, sample capture on a busy thread, phase roots in
// the folded output, and drop accounting.
//
// The whole suite is skipped under ThreadSanitizer: TSan intercepts
// signal delivery and (by design) flags backtrace() from a SIGPROF
// handler, while the server-suite TSan runs cover the lock/metrics
// integration. The real signal path is exercised by the plain and
// ASan/UBSan builds plus the CI server smoke.
#include "common/profiler.h"

#include <atomic>
#include <string>
#include <thread>

#include "common/trace.h"
#include "gtest/gtest.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define EGP_TSAN 1
#endif
#endif

namespace egp {
namespace {

#ifndef EGP_TSAN

/// Spins a worker that burns CPU inside a TracePhase until told to stop.
class BusyThread {
 public:
  explicit BusyThread(TracePhase phase)
      : thread_([this, phase] {
          Profiler::RegisterCurrentThread();
          registered_.store(true);
          const ScopedTracePhase scoped(phase);
          volatile double sink = 1.0;
          while (!done_.load(std::memory_order_relaxed)) {
            for (int i = 1; i < 2048; ++i) sink = sink * 1.0000001 + i;
          }
        }) {
    while (!registered_.load()) std::this_thread::yield();
  }
  ~BusyThread() {
    done_.store(true);
    thread_.join();
  }

 private:
  std::atomic<bool> done_{false};
  std::atomic<bool> registered_{false};
  std::thread thread_;
};

TEST(ProfilerTest, StartRejectsBadHz) {
  Profiler::RegisterCurrentThread();
  EXPECT_EQ(Profiler::Global().Start(0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Profiler::Global().Start(Profiler::kMaxHz + 1).code(),
            StatusCode::kInvalidArgument);
}

TEST(ProfilerTest, StopWithoutStartFails) {
  const auto result = Profiler::Global().Stop();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ProfilerTest, CollectRejectsBadWindow) {
  Profiler::RegisterCurrentThread();
  EXPECT_EQ(Profiler::Global().Collect(0.0, 99).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Profiler::Global()
                .Collect(Profiler::kMaxWindowSeconds + 1, 99)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ProfilerTest, CollectCapturesBusyThreadWithPhaseRoot) {
  BusyThread busy(TracePhase::kDiscover);
  // 500 Hz over 300 ms of a spinning thread: expect plenty of samples
  // even on a loaded CI machine (the timer counts the thread's own
  // CPU time, so other load does not starve it).
  const auto result = Profiler::Global().Collect(0.3, 500);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->samples, 0u);
  EXPECT_EQ(result->hz, 500);
  EXPECT_GT(result->threads, 0);
  EXPECT_FALSE(result->folded.empty());
  // Folded lines are "phase;frames... count"; the busy thread's samples
  // carry its TracePhase as the synthetic root.
  EXPECT_NE(result->folded.find("discover;"), std::string::npos)
      << result->folded;
  // Every line ends in a positive count.
  size_t start = 0;
  while (start < result->folded.size()) {
    size_t end = result->folded.find('\n', start);
    if (end == std::string::npos) end = result->folded.size();
    const std::string line = result->folded.substr(start, end - start);
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(std::stoull(line.substr(space + 1)), 0u) << line;
    start = end + 1;
  }
}

TEST(ProfilerTest, SecondStartWhileActiveIsUnavailable) {
  BusyThread busy(TracePhase::kHandler);
  ASSERT_TRUE(Profiler::Global().Start(99).ok());
  EXPECT_EQ(Profiler::Global().Start(99).code(), StatusCode::kUnavailable);
  EXPECT_TRUE(Profiler::Global().active());
  const auto result = Profiler::Global().Stop();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(Profiler::Global().active());
}

TEST(ProfilerTest, StatsAccumulateAcrossWindows) {
  BusyThread busy(TracePhase::kSample);
  const ProfilerStats before = Profiler::Global().stats();
  const auto result = Profiler::Global().Collect(0.1, 200);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ProfilerStats after = Profiler::Global().stats();
  EXPECT_EQ(after.windows_total, before.windows_total + 1);
  EXPECT_GE(after.samples_total, before.samples_total + result->samples);
  EXPECT_FALSE(after.active);
  EXPECT_GT(after.registered_threads, 0);
}

TEST(ProfilerTest, ThreadExitDuringWindowIsSafe) {
  // A registered thread dying mid-window must not crash the handler or
  // the drain (its ring is torn down by its own TLS destructor).
  ASSERT_TRUE(Profiler::Global().Start(500).ok());
  {
    BusyThread busy(TracePhase::kPrepare);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }  // joins (and unregisters) while the window is active
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto result = Profiler::Global().Stop();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

#endif  // !EGP_TSAN

TEST(TracePhaseTest, ScopedPhaseNestsAndRestores) {
  EXPECT_EQ(CurrentTracePhase(), TracePhase::kIdle);
  {
    ScopedTracePhase outer(TracePhase::kHandler);
    EXPECT_EQ(CurrentTracePhase(), TracePhase::kHandler);
    {
      ScopedTracePhase inner(TracePhase::kPrepare);
      EXPECT_EQ(CurrentTracePhase(), TracePhase::kPrepare);
    }
    EXPECT_EQ(CurrentTracePhase(), TracePhase::kHandler);
  }
  EXPECT_EQ(CurrentTracePhase(), TracePhase::kIdle);
}

TEST(TracePhaseTest, PhaseNamesAreStable) {
  EXPECT_STREQ(TracePhaseName(TracePhase::kIdle), "idle");
  EXPECT_STREQ(TracePhaseName(TracePhase::kPrepare), "prepare");
  EXPECT_STREQ(TracePhaseName(TracePhase::kDiscover), "discover");
  EXPECT_STREQ(TracePhaseName(TracePhase::kFlush), "flush");
}

}  // namespace
}  // namespace egp
