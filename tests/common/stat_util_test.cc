#include "common/stat_util.h"

#include <gtest/gtest.h>

namespace egp {
namespace {

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({7}), 7.0);
}

TEST(VarianceTest, PopulationVariance) {
  EXPECT_DOUBLE_EQ(Variance({2, 4, 4, 4, 5, 5, 7, 9}), 4.0);
  EXPECT_DOUBLE_EQ(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0);
}

TEST(VarianceTest, ConstantSampleIsZero) {
  EXPECT_DOUBLE_EQ(Variance({3, 3, 3}), 0.0);
}

TEST(QuantileTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
}

TEST(QuantileTest, Extremes) {
  std::vector<double> v = {5, 1, 9, 3};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 9.0);
}

TEST(QuantileTest, LinearInterpolation) {
  // Sorted: 10, 20, 30, 40 → q=0.25 sits at position 0.75 → 17.5.
  EXPECT_DOUBLE_EQ(Quantile({40, 10, 30, 20}, 0.25), 17.5);
}

TEST(QuantileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(Quantile({42}, 0.37), 42.0);
}

TEST(SummarizeTest, FiveNumbers) {
  const FiveNumberSummary s = Summarize({1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.q1, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.q3, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(SummarizeTest, EmptyIsAllZero) {
  const FiveNumberSummary s = Summarize({});
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(SummarizeTest, OrderedInvariant) {
  const FiveNumberSummary s = Summarize({12.0, 3.5, 7.7, 21.2, 0.4, 9.9});
  EXPECT_LE(s.min, s.q1);
  EXPECT_LE(s.q1, s.median);
  EXPECT_LE(s.median, s.q3);
  EXPECT_LE(s.q3, s.max);
}

}  // namespace
}  // namespace egp
