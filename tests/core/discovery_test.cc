// Unit tests of the three discovery algorithms on the paper's running
// example and hand-checkable schema graphs.
#include <gtest/gtest.h>

#include "core/apriori.h"
#include "core/brute_force.h"
#include "core/discoverer.h"
#include "core/dynamic_programming.h"
#include "datagen/paper_example.h"

namespace egp {
namespace {

class DiscoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = BuildPaperExampleGraph();
    auto prepared = PreparedSchema::Create(
        SchemaGraph::FromEntityGraph(graph_), PreparedSchemaOptions{});
    ASSERT_TRUE(prepared.ok());
    prepared_ = std::make_unique<PreparedSchema>(std::move(prepared).value());
  }

  TypeId Type(std::string_view name) const {
    return *prepared_->schema().type_names().Find(name);
  }

  EntityGraph graph_;
  std::unique_ptr<PreparedSchema> prepared_;
};

TEST_F(DiscoveryTest, BruteForceFindsPaperConciseOptimum) {
  const auto preview = BruteForceDiscover(*prepared_, SizeConstraint{2, 6},
                                          DistanceConstraint::None());
  ASSERT_TRUE(preview.ok()) << preview.status().ToString();
  EXPECT_DOUBLE_EQ(preview->Score(*prepared_), 84.0);
  EXPECT_TRUE(ValidatePreview(*preview, *prepared_, SizeConstraint{2, 6},
                              DistanceConstraint::None())
                  .ok());
}

TEST_F(DiscoveryTest, DynamicProgrammingMatches) {
  const auto preview =
      DynamicProgrammingDiscover(*prepared_, SizeConstraint{2, 6});
  ASSERT_TRUE(preview.ok());
  EXPECT_DOUBLE_EQ(preview->Score(*prepared_), 84.0);
  EXPECT_TRUE(ValidatePreview(*preview, *prepared_, SizeConstraint{2, 6},
                              DistanceConstraint::None())
                  .ok());
}

TEST_F(DiscoveryTest, DiverseOptimumIsFilmPlusAward) {
  // §4: optimal diverse preview (k=2, n=6, d=2) = {FILM×5, AWARD×1}.
  const auto preview = AprioriDiscover(*prepared_, SizeConstraint{2, 6},
                                       DistanceConstraint::Diverse(2));
  ASSERT_TRUE(preview.ok());
  EXPECT_DOUBLE_EQ(preview->Score(*prepared_), 78.0);
  std::vector<TypeId> keys = preview->Keys();
  std::vector<TypeId> expected = {Type("FILM"), Type("AWARD")};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(keys, expected);
}

TEST_F(DiscoveryTest, TightOptimumMatchesConciseHere) {
  // All of FILM's neighbours are at distance 1, so tight d=1 admits the
  // concise optimum.
  const auto preview = AprioriDiscover(*prepared_, SizeConstraint{2, 6},
                                       DistanceConstraint::Tight(1));
  ASSERT_TRUE(preview.ok());
  EXPECT_DOUBLE_EQ(preview->Score(*prepared_), 84.0);
}

TEST_F(DiscoveryTest, SingleTablePreviews) {
  for (auto algorithm : {Algorithm::kBruteForce,
                         Algorithm::kDynamicProgramming}) {
    PreviewDiscoverer discoverer(*prepared_);
    DiscoveryOptions options;
    options.size = {1, 3};
    options.algorithm = algorithm;
    const auto preview = discoverer.Discover(options);
    ASSERT_TRUE(preview.ok());
    // Best single table: FILM with top-3 = 4·15 = 60.
    EXPECT_DOUBLE_EQ(preview->Score(*prepared_), 60.0);
  }
}

TEST_F(DiscoveryTest, KEqualsOneApriori) {
  const auto preview = AprioriDiscover(*prepared_, SizeConstraint{1, 3},
                                       DistanceConstraint::Diverse(2));
  ASSERT_TRUE(preview.ok());
  EXPECT_DOUBLE_EQ(preview->Score(*prepared_), 60.0);
}

TEST_F(DiscoveryTest, InvalidSizeConstraints) {
  EXPECT_FALSE(BruteForceDiscover(*prepared_, SizeConstraint{0, 5},
                                  DistanceConstraint::None())
                   .ok());
  EXPECT_FALSE(BruteForceDiscover(*prepared_, SizeConstraint{3, 2},
                                  DistanceConstraint::None())
                   .ok());
  EXPECT_FALSE(DynamicProgrammingDiscover(*prepared_, SizeConstraint{0, 5})
                   .ok());
  EXPECT_FALSE(AprioriDiscover(*prepared_, SizeConstraint{3, 2},
                               DistanceConstraint::Tight(2))
                   .ok());
}

TEST_F(DiscoveryTest, InfeasibleDistanceConstraintIsNotFound) {
  // No pair of types is at distance ≥ 10 in this schema.
  const auto preview = AprioriDiscover(*prepared_, SizeConstraint{2, 6},
                                       DistanceConstraint::Diverse(10));
  EXPECT_FALSE(preview.ok());
  EXPECT_EQ(preview.status().code(), StatusCode::kNotFound);
  const auto bf = BruteForceDiscover(*prepared_, SizeConstraint{2, 6},
                                     DistanceConstraint::Diverse(10));
  EXPECT_EQ(bf.status().code(), StatusCode::kNotFound);
}

TEST_F(DiscoveryTest, KExceedsEligibleTypes) {
  const auto preview = BruteForceDiscover(*prepared_, SizeConstraint{7, 10},
                                          DistanceConstraint::None());
  EXPECT_EQ(preview.status().code(), StatusCode::kNotFound);
}

TEST_F(DiscoveryTest, StatsCountSubsets) {
  DiscoveryStats stats;
  const auto preview =
      BruteForceDiscover(*prepared_, SizeConstraint{2, 6},
                         DistanceConstraint::None(), BruteForceOptions{},
                         &stats);
  ASSERT_TRUE(preview.ok());
  EXPECT_EQ(stats.subsets_enumerated, 15u);  // C(6,2)
  EXPECT_EQ(stats.subsets_scored, 15u);
  EXPECT_FALSE(stats.truncated);
}

TEST_F(DiscoveryTest, TruncationStopsEnumeration) {
  DiscoveryStats stats;
  BruteForceOptions options;
  options.max_subsets = 3;
  const auto preview = BruteForceDiscover(
      *prepared_, SizeConstraint{2, 6}, DistanceConstraint::None(), options,
      &stats);
  ASSERT_TRUE(preview.ok());  // best-so-far is still returned
  EXPECT_EQ(stats.subsets_enumerated, 3u);
  EXPECT_TRUE(stats.truncated);
}

TEST_F(DiscoveryTest, AutoDispatch) {
  PreviewDiscoverer discoverer(*prepared_);
  DiscoveryOptions concise;
  concise.size = {2, 6};
  const auto p1 = discoverer.Discover(concise);
  ASSERT_TRUE(p1.ok());
  EXPECT_DOUBLE_EQ(p1->Score(discoverer.prepared()), 84.0);

  DiscoveryOptions diverse;
  diverse.size = {2, 6};
  diverse.distance = DistanceConstraint::Diverse(2);
  const auto p2 = discoverer.Discover(diverse);
  ASSERT_TRUE(p2.ok());
  EXPECT_DOUBLE_EQ(p2->Score(discoverer.prepared()), 78.0);
}

TEST_F(DiscoveryTest, DpRejectsDistanceConstraint) {
  PreviewDiscoverer discoverer(*prepared_);
  DiscoveryOptions options;
  options.size = {2, 6};
  options.distance = DistanceConstraint::Tight(2);
  options.algorithm = Algorithm::kDynamicProgramming;
  const auto preview = discoverer.Discover(options);
  EXPECT_FALSE(preview.ok());
  EXPECT_EQ(preview.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DiscoveryTest, AlgorithmNames) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kAuto), "Auto");
  EXPECT_STREQ(AlgorithmName(Algorithm::kBruteForce), "BruteForce");
  EXPECT_STREQ(AlgorithmName(Algorithm::kDynamicProgramming),
               "DynamicProgramming");
  EXPECT_STREQ(AlgorithmName(Algorithm::kApriori), "Apriori");
}

TEST(DiscoveryEdgeCaseTest, PreviewMayUseFewerThanNAttributes) {
  // Footnote 2: a preview with fewer than n non-keys may be optimal. One
  // high-coverage key with a single huge attribute beats spreading out.
  SchemaGraph schema;
  schema.AddType("BIG", 1000);
  schema.AddType("SMALL", 1);
  schema.AddType("OTHER", 1);
  schema.AddEdge("big-rel", 0, 2, 500);
  schema.AddEdge("tiny-rel", 1, 2, 1);
  auto prepared = PreparedSchema::Create(schema, PreparedSchemaOptions{});
  ASSERT_TRUE(prepared.ok());
  const auto preview =
      DynamicProgrammingDiscover(*prepared, SizeConstraint{1, 5});
  ASSERT_TRUE(preview.ok());
  EXPECT_EQ(preview->tables[0].key, 0u);
  EXPECT_EQ(preview->TotalNonKeys(), 1u);  // only one candidate exists
}

TEST(DiscoveryEdgeCaseTest, ZeroScoreTypesStillFormValidPreviews) {
  SchemaGraph schema;
  schema.AddType("A", 0);  // zero entities → zero coverage score
  schema.AddType("B", 0);
  schema.AddEdge("r", 0, 1, 0);
  auto prepared = PreparedSchema::Create(schema, PreparedSchemaOptions{});
  ASSERT_TRUE(prepared.ok());
  const auto preview =
      DynamicProgrammingDiscover(*prepared, SizeConstraint{2, 2});
  ASSERT_TRUE(preview.ok());
  EXPECT_DOUBLE_EQ(preview->Score(*prepared), 0.0);
  EXPECT_EQ(preview->tables.size(), 2u);
}

}  // namespace
}  // namespace egp
