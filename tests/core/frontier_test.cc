#include "core/frontier.h"

#include <gtest/gtest.h>

#include "core/dynamic_programming.h"
#include "datagen/paper_example.h"
#include "tests/testing/random_schema.h"

namespace egp {
namespace {

PreparedSchema PreparePaper() {
  auto prepared =
      PreparedSchema::Create(SchemaGraph::FromEntityGraph(
                                 BuildPaperExampleGraph()),
                             PreparedSchemaOptions{});
  EXPECT_TRUE(prepared.ok());
  return std::move(prepared).value();
}

TEST(FrontierTest, MatchesKnownPaperOptima) {
  const PreparedSchema prepared = PreparePaper();
  auto frontier = ComputeScoreFrontier(prepared, 3, 8);
  ASSERT_TRUE(frontier.ok());
  // §4 example: optimal concise k=2, n=6 scores 84; single best table
  // with 3 attributes scores 60.
  EXPECT_DOUBLE_EQ(frontier->At(2, 6), 84.0);
  EXPECT_DOUBLE_EQ(frontier->At(1, 3), 60.0);
}

TEST(FrontierTest, MatchesDpOnEveryCell) {
  const PreparedSchema prepared = PreparePaper();
  const uint32_t max_k = 4, max_n = 8;
  auto frontier = ComputeScoreFrontier(prepared, max_k, max_n);
  ASSERT_TRUE(frontier.ok());
  for (uint32_t k = 1; k <= max_k; ++k) {
    for (uint32_t n = k; n <= max_n; ++n) {
      const auto preview =
          DynamicProgrammingDiscover(prepared, SizeConstraint{k, n});
      if (preview.ok()) {
        EXPECT_NEAR(frontier->At(k, n), preview->Score(prepared), 1e-9)
            << "k=" << k << " n=" << n;
      } else {
        EXPECT_LT(frontier->At(k, n), 0.0) << "k=" << k << " n=" << n;
      }
    }
  }
}

TEST(FrontierTest, MonotoneInAttributeBudget) {
  const SchemaGraph schema = testing_util::RandomSchemaGraph(42, 10, 20);
  auto prepared = PreparedSchema::Create(schema, PreparedSchemaOptions{});
  ASSERT_TRUE(prepared.ok());
  auto frontier = ComputeScoreFrontier(*prepared, 5, 10);
  ASSERT_TRUE(frontier.ok());
  // "At most n" is monotone in n by definition. Note that the frontier is
  // NOT monotone in k: with exactly k tables, every extra table consumes
  // one of the n mandatory attribute slots, so under a binding n more
  // tables can score less (Proposition 1 compares supersets, which need a
  // larger n).
  for (uint32_t k = 1; k <= 5; ++k) {
    for (uint32_t n = k + 1; n <= 10; ++n) {
      if (frontier->At(k, n) < 0 || frontier->At(k, n - 1) < 0) continue;
      EXPECT_GE(frontier->At(k, n), frontier->At(k, n - 1));
    }
  }
}

TEST(FrontierTest, InfeasibleCellsNegative) {
  SchemaGraph tiny;
  tiny.AddType("A", 3);
  tiny.AddType("B", 3);
  tiny.AddEdge("r", 0, 1, 2);
  auto prepared = PreparedSchema::Create(tiny, PreparedSchemaOptions{});
  ASSERT_TRUE(prepared.ok());
  auto frontier = ComputeScoreFrontier(*prepared, 4, 6);
  ASSERT_TRUE(frontier.ok());
  EXPECT_GE(frontier->At(2, 2), 0.0);  // two eligible types
  EXPECT_LT(frontier->At(3, 4), 0.0);  // only two types exist
}

TEST(FrontierTest, MarginalTableValues) {
  const PreparedSchema prepared = PreparePaper();
  auto frontier = ComputeScoreFrontier(prepared, 3, 8);
  ASSERT_TRUE(frontier.ok());
  EXPECT_DOUBLE_EQ(frontier->MarginalTable(1, 6), frontier->At(1, 6));
  EXPECT_NEAR(frontier->MarginalTable(2, 6),
              frontier->At(2, 6) - frontier->At(1, 6), 1e-9);
}

TEST(FrontierTest, KneeFindsCompactHighValuePreview) {
  const PreparedSchema prepared = PreparePaper();
  auto frontier = ComputeScoreFrontier(prepared, 4, 10);
  ASSERT_TRUE(frontier.ok());
  const ScoreFrontier::Point knee = frontier->KneeAt(0.8);
  ASSERT_GT(knee.k, 0u);
  EXPECT_GE(knee.score, frontier->At(4, 10) * 0.8);
  // The knee is never larger than the full budget.
  EXPECT_LE(knee.k, 4u);
  EXPECT_LE(knee.n, 10u);
  // And strictly smaller here: the paper example saturates quickly.
  EXPECT_LT(knee.k + knee.n, 14u);
}

TEST(FrontierTest, InvalidArguments) {
  const PreparedSchema prepared = PreparePaper();
  EXPECT_FALSE(ComputeScoreFrontier(prepared, 0, 5).ok());
  EXPECT_FALSE(ComputeScoreFrontier(prepared, 5, 0).ok());
  EXPECT_FALSE(ComputeScoreFrontier(prepared, 5, 3).ok());
}

}  // namespace
}  // namespace egp
