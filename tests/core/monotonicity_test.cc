// Property suite for Propositions 1 and 2 (§4): preview scores are
// monotone in the set of tables, and table scores are monotone in the set
// of non-key attributes.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/preview.h"
#include "tests/testing/random_schema.h"

namespace egp {
namespace {

class MonotonicityTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    schema_ = testing_util::RandomSchemaGraph(GetParam(), 10, 20);
    auto prepared = PreparedSchema::Create(schema_, PreparedSchemaOptions{});
    ASSERT_TRUE(prepared.ok());
    prepared_ = std::make_unique<PreparedSchema>(std::move(prepared).value());
  }

  /// Random valid preview over distinct eligible keys.
  Preview RandomPreview(Rng* rng, size_t max_tables) const {
    std::vector<TypeId> eligible;
    for (TypeId t = 0; t < prepared_->num_types(); ++t) {
      if (prepared_->Eligible(t)) eligible.push_back(t);
    }
    rng->Shuffle(&eligible);
    const size_t tables =
        1 + rng->NextBounded(std::min(max_tables, eligible.size()));
    Preview preview;
    for (size_t i = 0; i < tables; ++i) {
      PreviewTable table;
      table.key = eligible[i];
      const TypeCandidates& cands = prepared_->Candidates(table.key);
      const size_t m = 1 + rng->NextBounded(cands.size());
      table.nonkeys.assign(cands.sorted.begin(), cands.sorted.begin() + m);
      preview.tables.push_back(std::move(table));
    }
    return preview;
  }

  SchemaGraph schema_;
  std::unique_ptr<PreparedSchema> prepared_;
};

TEST_P(MonotonicityTest, Proposition1SupersetPreviewScoresAtLeastAsHigh) {
  Rng rng(GetParam() * 7 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    Preview big = RandomPreview(&rng, 5);
    if (big.tables.size() < 2) continue;
    Preview small = big;
    small.tables.pop_back();  // small ⊂ big
    EXPECT_GE(big.Score(*prepared_), small.Score(*prepared_));
  }
}

TEST_P(MonotonicityTest, Proposition2SupersetTableScoresAtLeastAsHigh) {
  Rng rng(GetParam() * 13 + 2);
  for (int trial = 0; trial < 20; ++trial) {
    Preview preview = RandomPreview(&rng, 1);
    PreviewTable& table = preview.tables[0];
    if (table.nonkeys.size() < 2) continue;
    PreviewTable smaller = table;
    smaller.nonkeys.pop_back();  // same key, subset of attributes
    EXPECT_GE(table.Score(*prepared_), smaller.Score(*prepared_));
  }
}

TEST_P(MonotonicityTest, ScoresAreNonNegative) {
  Rng rng(GetParam() * 31 + 3);
  for (int trial = 0; trial < 10; ++trial) {
    const Preview preview = RandomPreview(&rng, 4);
    EXPECT_GE(preview.Score(*prepared_), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicityTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace egp
