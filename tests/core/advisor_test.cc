#include "core/advisor.h"

#include <gtest/gtest.h>

#include "core/dynamic_programming.h"
#include "datagen/paper_example.h"
#include "tests/testing/random_schema.h"

namespace egp {
namespace {

PreparedSchema PreparePaper() {
  auto prepared =
      PreparedSchema::Create(SchemaGraph::FromEntityGraph(
                                 BuildPaperExampleGraph()),
                             PreparedSchemaOptions{});
  EXPECT_TRUE(prepared.ok());
  return std::move(prepared).value();
}

TEST(AdvisorTest, SuggestionIsFeasible) {
  const PreparedSchema prepared = PreparePaper();
  const ConstraintSuggestion s = SuggestConstraints(prepared);
  EXPECT_GE(s.size.k, 1u);
  EXPECT_GE(s.size.n, s.size.k);
  EXPECT_GE(s.tight_d, 1u);
  EXPECT_GE(s.diverse_d, 2u);
  EXPECT_FALSE(s.rationale.empty());
}

TEST(AdvisorTest, TightSuggestionBelowDiameter) {
  // §6.2: a tight constraint at/above the diameter filters nothing.
  const PreparedSchema prepared = PreparePaper();
  const ConstraintSuggestion s = SuggestConstraints(prepared);
  EXPECT_LT(s.tight_d, std::max(prepared.distances().Diameter(), 2u));
}

TEST(AdvisorTest, SmallerDisplayFewerTables) {
  const PreparedSchema prepared = PreparePaper();
  DisplayBudget phone;
  phone.width_chars = 40;
  phone.height_rows = 14;
  DisplayBudget monitor;
  monitor.width_chars = 200;
  monitor.height_rows = 80;
  const ConstraintSuggestion small = SuggestConstraints(prepared, phone);
  const ConstraintSuggestion large = SuggestConstraints(prepared, monitor);
  EXPECT_LE(small.size.k, large.size.k);
  EXPECT_LE(small.size.n, large.size.n);
}

TEST(AdvisorTest, KCappedByEligibleTypes) {
  SchemaGraph tiny;
  tiny.AddType("A", 5);
  tiny.AddType("B", 5);
  tiny.AddType("ISOLATED", 5);
  tiny.AddEdge("r", 0, 1, 3);
  auto prepared = PreparedSchema::Create(tiny, PreparedSchemaOptions{});
  ASSERT_TRUE(prepared.ok());
  DisplayBudget huge;
  huge.height_rows = 1000;
  const ConstraintSuggestion s = SuggestConstraints(*prepared, huge);
  EXPECT_LE(s.size.k, 2u);  // only two eligible key types
}

TEST(AdvisorTest, NCappedByAvailableCandidates) {
  SchemaGraph tiny;
  tiny.AddType("A", 5);
  tiny.AddType("B", 5);
  tiny.AddEdge("r", 0, 1, 3);  // two candidates total (both directions)
  auto prepared = PreparedSchema::Create(tiny, PreparedSchemaOptions{});
  ASSERT_TRUE(prepared.ok());
  DisplayBudget wide;
  wide.width_chars = 4000;
  const ConstraintSuggestion s = SuggestConstraints(*prepared, wide);
  EXPECT_LE(s.size.n, 2u);
}

TEST(AdvisorTest, SuggestionsAreDiscoverable) {
  // The advisor's output should define solvable problems on assorted
  // random schemas.
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const SchemaGraph schema =
        testing_util::RandomSchemaGraph(seed, 12, 24);
    auto prepared = PreparedSchema::Create(schema, PreparedSchemaOptions{});
    ASSERT_TRUE(prepared.ok());
    const ConstraintSuggestion s = SuggestConstraints(*prepared);
    auto preview = DynamicProgrammingDiscover(
        *prepared, SizeConstraint{s.size.k, s.size.n});
    EXPECT_TRUE(preview.ok()) << "seed " << seed << ": "
                              << preview.status().ToString();
  }
}

}  // namespace
}  // namespace egp
