// Property suite: the optimized discovery algorithms agree with the
// brute-force oracle on randomized schema graphs, across the full
// constraint grid. Scores are compared (arg max may be a tie set, §4);
// returned previews must additionally validate against the constraints
// and obey Theorem 3.
#include <gtest/gtest.h>

#include "core/apriori.h"
#include "core/brute_force.h"
#include "core/dynamic_programming.h"
#include "tests/testing/random_schema.h"

namespace egp {
namespace {

struct Instance {
  uint64_t seed;
  uint32_t num_types;
  uint32_t num_edges;
  uint32_t k;
  uint32_t n;
};

std::string InstanceName(const ::testing::TestParamInfo<Instance>& info) {
  const Instance& p = info.param;
  return "seed" + std::to_string(p.seed) + "_K" +
         std::to_string(p.num_types) + "_E" + std::to_string(p.num_edges) +
         "_k" + std::to_string(p.k) + "_n" + std::to_string(p.n);
}

class EquivalenceTest : public ::testing::TestWithParam<Instance> {
 protected:
  void SetUp() override {
    const Instance& p = GetParam();
    schema_ = testing_util::RandomSchemaGraph(p.seed, p.num_types,
                                              p.num_edges);
    auto prepared = PreparedSchema::Create(schema_, PreparedSchemaOptions{});
    ASSERT_TRUE(prepared.ok());
    prepared_ = std::make_unique<PreparedSchema>(std::move(prepared).value());
  }

  SchemaGraph schema_;
  std::unique_ptr<PreparedSchema> prepared_;
};

TEST_P(EquivalenceTest, DpMatchesBruteForceOnConcise) {
  const Instance& p = GetParam();
  const SizeConstraint size{p.k, p.n};
  const auto bf =
      BruteForceDiscover(*prepared_, size, DistanceConstraint::None());
  const auto dp = DynamicProgrammingDiscover(*prepared_, size);
  ASSERT_EQ(bf.ok(), dp.ok());
  if (!bf.ok()) return;
  EXPECT_NEAR(bf->Score(*prepared_), dp->Score(*prepared_), 1e-6);
  EXPECT_TRUE(ValidatePreview(*dp, *prepared_, size,
                              DistanceConstraint::None())
                  .ok());
}

TEST_P(EquivalenceTest, AprioriMatchesBruteForceOnTight) {
  const Instance& p = GetParam();
  const SizeConstraint size{p.k, p.n};
  for (uint32_t d = 1; d <= 3; ++d) {
    const DistanceConstraint constraint = DistanceConstraint::Tight(d);
    const auto bf = BruteForceDiscover(*prepared_, size, constraint);
    const auto apriori = AprioriDiscover(*prepared_, size, constraint);
    ASSERT_EQ(bf.ok(), apriori.ok()) << "d=" << d;
    if (!bf.ok()) continue;
    EXPECT_NEAR(bf->Score(*prepared_), apriori->Score(*prepared_), 1e-6)
        << "d=" << d;
    EXPECT_TRUE(ValidatePreview(*apriori, *prepared_, size, constraint).ok());
  }
}

TEST_P(EquivalenceTest, AprioriMatchesBruteForceOnDiverse) {
  const Instance& p = GetParam();
  const SizeConstraint size{p.k, p.n};
  for (uint32_t d = 1; d <= 3; ++d) {
    const DistanceConstraint constraint = DistanceConstraint::Diverse(d);
    const auto bf = BruteForceDiscover(*prepared_, size, constraint);
    const auto apriori = AprioriDiscover(*prepared_, size, constraint);
    ASSERT_EQ(bf.ok(), apriori.ok()) << "d=" << d;
    if (!bf.ok()) continue;
    EXPECT_NEAR(bf->Score(*prepared_), apriori->Score(*prepared_), 1e-6)
        << "d=" << d;
    EXPECT_TRUE(ValidatePreview(*apriori, *prepared_, size, constraint).ok());
  }
}

TEST_P(EquivalenceTest, Theorem3TopMAttributes) {
  // Every table of an optimal preview carries exactly the top-m candidates
  // of its key type.
  const Instance& p = GetParam();
  const auto dp =
      DynamicProgrammingDiscover(*prepared_, SizeConstraint{p.k, p.n});
  if (!dp.ok()) return;
  for (const PreviewTable& table : dp->tables) {
    const TypeCandidates& cands = prepared_->Candidates(table.key);
    ASSERT_LE(table.nonkeys.size(), cands.size());
    // Compare score sums: chosen == prefix (robust to equal-score ties).
    double chosen = 0.0;
    for (const NonKeyCandidate& c : table.nonkeys) chosen += c.score;
    EXPECT_NEAR(chosen, cands.TopSum(table.nonkeys.size()), 1e-9);
  }
}

TEST_P(EquivalenceTest, EntropyMeasureAgreesToo) {
  // Repeat DP ≡ BF under the asymmetric entropy measure on a derived
  // schema (the random schema has no entity graph, so re-derive one from
  // the paper example sizes by reusing coverage as a stand-in is not
  // possible; instead simply check with random-walk keys × coverage).
  PreparedSchemaOptions options;
  options.key_measure = KeyMeasure::kRandomWalk;
  auto prepared = PreparedSchema::Create(schema_, options);
  ASSERT_TRUE(prepared.ok());
  const Instance& p = GetParam();
  const SizeConstraint size{p.k, p.n};
  const auto bf =
      BruteForceDiscover(*prepared, size, DistanceConstraint::None());
  const auto dp = DynamicProgrammingDiscover(*prepared, size);
  ASSERT_EQ(bf.ok(), dp.ok());
  if (!bf.ok()) return;
  EXPECT_NEAR(bf->Score(*prepared), dp->Score(*prepared), 1e-9);
}

std::vector<Instance> MakeInstances() {
  std::vector<Instance> instances;
  uint64_t seed = 1000;
  for (uint32_t num_types : {4u, 6u, 9u, 12u}) {
    for (uint32_t num_edges : {5u, 12u, 24u}) {
      for (uint32_t k : {1u, 2u, 3u}) {
        for (uint32_t n : {3u, 6u}) {
          if (n < k) continue;
          instances.push_back(Instance{seed++, num_types, num_edges, k, n});
        }
      }
    }
  }
  return instances;
}

INSTANTIATE_TEST_SUITE_P(RandomSchemas, EquivalenceTest,
                         ::testing::ValuesIn(MakeInstances()), InstanceName);

}  // namespace
}  // namespace egp
