#include "core/incremental.h"

#include <gtest/gtest.h>

#include "core/candidates.h"
#include "datagen/paper_example.h"

namespace egp {
namespace {

class IncrementalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = BuildPaperExampleGraph();
    schema_ = SchemaGraph::FromEntityGraph(graph_);
    film_ = *schema_.type_names().Find("FILM");
    for (uint32_t e = 0; e < schema_.num_edges(); ++e) {
      if (schema_.SurfaceName(schema_.Edge(e)) == "Genres") genres_edge_ = e;
    }
  }

  EntityGraph graph_;
  SchemaGraph schema_;
  TypeId film_ = kInvalidId;
  uint32_t genres_edge_ = kInvalidId;
};

TEST_F(IncrementalTest, SnapshotsInitialCounts) {
  IncrementalSchemaStats stats(schema_);
  EXPECT_EQ(stats.TypeEntityCount(film_), 4u);
  EXPECT_EQ(stats.EdgeCount(genres_edge_), 5u);
  EXPECT_TRUE(stats.DirtyTypes().empty());
}

TEST_F(IncrementalTest, EntityUpdatesAdjustCounts) {
  IncrementalSchemaStats stats(schema_);
  ASSERT_TRUE(stats.Apply(GraphUpdate::AddEntity(film_)).ok());
  ASSERT_TRUE(stats.Apply(GraphUpdate::AddEntity(film_)).ok());
  EXPECT_EQ(stats.TypeEntityCount(film_), 6u);
  ASSERT_TRUE(stats.Apply(GraphUpdate::RemoveEntity(film_)).ok());
  EXPECT_EQ(stats.TypeEntityCount(film_), 5u);
  EXPECT_EQ(stats.total_updates(), 3u);
}

TEST_F(IncrementalTest, EdgeUpdatesMarkBothEndpointsDirty) {
  IncrementalSchemaStats stats(schema_);
  ASSERT_TRUE(stats.Apply(GraphUpdate::AddEdge(genres_edge_)).ok());
  EXPECT_EQ(stats.EdgeCount(genres_edge_), 6u);
  const SchemaEdge& edge = schema_.Edge(genres_edge_);
  EXPECT_TRUE(stats.IsDirty(edge.src));
  EXPECT_TRUE(stats.IsDirty(edge.dst));
  EXPECT_EQ(stats.DirtyTypes().size(), 2u);
}

TEST_F(IncrementalTest, ClearDirtyResets) {
  IncrementalSchemaStats stats(schema_);
  ASSERT_TRUE(stats.Apply(GraphUpdate::AddEntity(film_)).ok());
  EXPECT_FALSE(stats.DirtyTypes().empty());
  stats.ClearDirty();
  EXPECT_TRUE(stats.DirtyTypes().empty());
  // Counts persist across ClearDirty.
  EXPECT_EQ(stats.TypeEntityCount(film_), 5u);
}

TEST_F(IncrementalTest, UnderflowRejected) {
  IncrementalSchemaStats stats(schema_);
  // FILM PRODUCER has exactly one entity.
  const TypeId producer = *schema_.type_names().Find("FILM PRODUCER");
  ASSERT_TRUE(stats.Apply(GraphUpdate::RemoveEntity(producer)).ok());
  const Status underflow = stats.Apply(GraphUpdate::RemoveEntity(producer));
  EXPECT_EQ(underflow.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(stats.TypeEntityCount(producer), 0u);
}

TEST_F(IncrementalTest, UnknownIdsRejected) {
  IncrementalSchemaStats stats(schema_);
  EXPECT_EQ(stats.Apply(GraphUpdate::AddEntity(999)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(stats.Apply(GraphUpdate::AddEdge(999)).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(IncrementalTest, ApplyAllStopsAtFirstFailure) {
  IncrementalSchemaStats stats(schema_);
  const std::vector<GraphUpdate> updates = {
      GraphUpdate::AddEntity(film_),
      GraphUpdate::AddEntity(999),  // fails
      GraphUpdate::AddEntity(film_),
  };
  EXPECT_FALSE(stats.ApplyAll(updates).ok());
  EXPECT_EQ(stats.TypeEntityCount(film_), 5u);  // only the first applied
}

TEST_F(IncrementalTest, ToSchemaGraphReflectsUpdates) {
  IncrementalSchemaStats stats(schema_);
  ASSERT_TRUE(stats.Apply(GraphUpdate::AddEntity(film_)).ok());
  ASSERT_TRUE(stats.Apply(GraphUpdate::AddEdge(genres_edge_)).ok());
  const SchemaGraph updated = stats.ToSchemaGraph();
  EXPECT_EQ(updated.num_types(), schema_.num_types());
  EXPECT_EQ(updated.num_edges(), schema_.num_edges());
  EXPECT_EQ(updated.TypeEntityCount(film_), 5u);
  EXPECT_EQ(updated.Edge(genres_edge_).edge_count, 6u);
  // Names preserved.
  EXPECT_EQ(updated.TypeName(film_), "FILM");
}

TEST_F(IncrementalTest, RefreshedPreparationMatchesFromScratch) {
  // The §5 claim in action: apply updates incrementally, re-prepare, and
  // compare against preparing a schema built from scratch with the same
  // final counts.
  IncrementalSchemaStats stats(schema_);
  ASSERT_TRUE(stats.Apply(GraphUpdate::AddEdge(genres_edge_)).ok());
  ASSERT_TRUE(stats.Apply(GraphUpdate::AddEdge(genres_edge_)).ok());
  ASSERT_TRUE(stats.Apply(GraphUpdate::AddEntity(film_)).ok());

  auto refreshed =
      PreparedSchema::Create(stats.ToSchemaGraph(), PreparedSchemaOptions{});
  ASSERT_TRUE(refreshed.ok());
  EXPECT_DOUBLE_EQ(refreshed->KeyScore(film_), 5.0);
  // Genres coverage rose from 5 to 7: it now outranks Actor (6) in FILM's
  // candidate list.
  const TypeCandidates& cands = refreshed->Candidates(film_);
  const SchemaEdge& top = refreshed->schema().Edge(cands.sorted[0].schema_edge);
  EXPECT_EQ(refreshed->schema().SurfaceName(top), "Genres");
  EXPECT_DOUBLE_EQ(cands.sorted[0].score, 7.0);
}

TEST_F(IncrementalTest, DirtySetGuidesSelectiveRefresh) {
  IncrementalSchemaStats stats(schema_);
  const TypeId award = *schema_.type_names().Find("AWARD");
  ASSERT_TRUE(stats.Apply(GraphUpdate::AddEdge(genres_edge_)).ok());
  // AWARD is untouched by a Genres update.
  EXPECT_FALSE(stats.IsDirty(award));
  EXPECT_TRUE(stats.IsDirty(film_));
}

}  // namespace
}  // namespace egp
