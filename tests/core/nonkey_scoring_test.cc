#include "core/nonkey_scoring.h"

#include <gtest/gtest.h>

#include <cmath>

#include "datagen/generator.h"
#include "datagen/paper_example.h"
#include "graph/entity_graph_builder.h"

namespace egp {
namespace {

RelTypeId FindRelType(const EntityGraph& graph, std::string_view surface) {
  for (RelTypeId r = 0; r < graph.num_rel_types(); ++r) {
    if (graph.RelSurfaceName(r) == surface) return r;
  }
  ADD_FAILURE() << "relationship type not found: " << surface;
  return kInvalidId;
}

TEST(NonKeyCoverageTest, PaperExampleCounts) {
  // §3.3: S_cov(Director) = 4, S_cov(Genres) = 5.
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  const NonKeyScores scores = ComputeNonKeyCoverage(schema);
  for (uint32_t i = 0; i < schema.num_edges(); ++i) {
    const std::string& name = schema.SurfaceName(schema.Edge(i));
    if (name == "Director") {
      EXPECT_DOUBLE_EQ(scores.outgoing[i], 4.0);
      EXPECT_DOUBLE_EQ(scores.incoming[i], 4.0);  // symmetric (§3.3)
    } else if (name == "Genres") {
      EXPECT_DOUBLE_EQ(scores.outgoing[i], 5.0);
    } else if (name == "Actor") {
      EXPECT_DOUBLE_EQ(scores.outgoing[i], 6.0);
    }
  }
}

TEST(EntropyTest, PaperDirectorExample) {
  // S_ent^FILM(Director) = 0.45: the FILM-side view is the incoming
  // direction of Director(FILM DIRECTOR → FILM).
  const EntityGraph graph = BuildPaperExampleGraph();
  const RelTypeId director = FindRelType(graph, "Director");
  EXPECT_NEAR(RelationshipEntropy(graph, director, Direction::kIncoming),
              0.45, 0.005);
}

TEST(EntropyTest, PaperGenresExample) {
  // S_ent^FILM(Genres) = 0.28: FILM is the source of Genres, value sets
  // {Action,SciFi}:2 and {Action}:1, Hancock empty (excluded).
  const EntityGraph graph = BuildPaperExampleGraph();
  const RelTypeId genres = FindRelType(graph, "Genres");
  EXPECT_NEAR(RelationshipEntropy(graph, genres, Direction::kOutgoing), 0.28,
              0.005);
}

TEST(EntropyTest, AsymmetricAcrossDirections) {
  // §3.3: the entropy measure is asymmetric. From the FILM GENRE side,
  // Genres has 2 tuples {films-with-Action} vs {films-with-SciFi} with
  // different sets → entropy log10(2) ≈ 0.301, different from 0.28.
  const EntityGraph graph = BuildPaperExampleGraph();
  const RelTypeId genres = FindRelType(graph, "Genres");
  const double film_side =
      RelationshipEntropy(graph, genres, Direction::kOutgoing);
  const double genre_side =
      RelationshipEntropy(graph, genres, Direction::kIncoming);
  EXPECT_NE(film_side, genre_side);
  EXPECT_NEAR(genre_side, 0.301, 0.005);
}

TEST(EntropyTest, AllDistinctValuesMaximizeEntropy) {
  EntityGraphBuilder b;
  const TypeId person = b.AddEntityType("P");
  const TypeId city = b.AddEntityType("C");
  const RelTypeId rel = b.AddRelationshipType("in", person, city);
  for (int i = 0; i < 10; ++i) {
    const EntityId p = b.AddEntity("p" + std::to_string(i));
    const EntityId c = b.AddEntity("c" + std::to_string(i));
    b.AddEntityToType(p, person);
    b.AddEntityToType(c, city);
    ASSERT_TRUE(b.AddEdge(p, rel, c).ok());
  }
  auto graph = b.Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_NEAR(RelationshipEntropy(*graph, rel, Direction::kOutgoing), 1.0,
              1e-9);  // log10(10)
}

TEST(EntropyTest, AllSameValueIsZero) {
  EntityGraphBuilder b;
  const TypeId person = b.AddEntityType("P");
  const TypeId city = b.AddEntityType("C");
  const RelTypeId rel = b.AddRelationshipType("in", person, city);
  const EntityId paris = b.AddEntity("paris");
  b.AddEntityToType(paris, city);
  for (int i = 0; i < 5; ++i) {
    const EntityId p = b.AddEntity("p" + std::to_string(i));
    b.AddEntityToType(p, person);
    ASSERT_TRUE(b.AddEdge(p, rel, paris).ok());
  }
  auto graph = b.Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_DOUBLE_EQ(RelationshipEntropy(*graph, rel, Direction::kOutgoing),
                   0.0);
}

TEST(EntropyTest, MultiValuedCellsGroupBySetEquality) {
  // Two entities with the same 2-element set, one with a subset: 2 groups.
  EntityGraphBuilder b;
  const TypeId person = b.AddEntityType("P");
  const TypeId tag = b.AddEntityType("T");
  const RelTypeId rel = b.AddRelationshipType("has", person, tag);
  const EntityId t1 = b.AddEntity("t1");
  const EntityId t2 = b.AddEntity("t2");
  b.AddEntityToType(t1, tag);
  b.AddEntityToType(t2, tag);
  for (int i = 0; i < 2; ++i) {
    const EntityId p = b.AddEntity("pboth" + std::to_string(i));
    b.AddEntityToType(p, person);
    ASSERT_TRUE(b.AddEdge(p, rel, t1).ok());
    ASSERT_TRUE(b.AddEdge(p, rel, t2).ok());
  }
  const EntityId lone = b.AddEntity("plone");
  b.AddEntityToType(lone, person);
  ASSERT_TRUE(b.AddEdge(lone, rel, t1).ok());
  auto graph = b.Build();
  ASSERT_TRUE(graph.ok());
  // Histogram {2, 1} → same as the Genres example: 0.28.
  EXPECT_NEAR(RelationshipEntropy(*graph, rel, Direction::kOutgoing), 0.28,
              0.005);
}

TEST(EntropyTest, EmptyTuplesExcludedFromDenominator) {
  // 4 persons, only 2 with values (distinct): H = log10(2), not affected
  // by the 2 empty tuples.
  EntityGraphBuilder b;
  const TypeId person = b.AddEntityType("P");
  const TypeId city = b.AddEntityType("C");
  const RelTypeId rel = b.AddRelationshipType("in", person, city);
  for (int i = 0; i < 4; ++i) {
    const EntityId p = b.AddEntity("p" + std::to_string(i));
    b.AddEntityToType(p, person);
  }
  for (int i = 0; i < 2; ++i) {
    const EntityId c = b.AddEntity("c" + std::to_string(i));
    b.AddEntityToType(c, city);
    ASSERT_TRUE(
        b.AddEdge(static_cast<EntityId>(i), rel, c).ok());
  }
  auto graph = b.Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_NEAR(RelationshipEntropy(*graph, rel, Direction::kOutgoing),
              std::log10(2.0), 1e-9);
}

TEST(EntropyTest, NoEdgesIsZero) {
  EntityGraphBuilder b;
  const TypeId person = b.AddEntityType("P");
  const RelTypeId rel = b.AddRelationshipType("knows", person, person);
  b.AddTypedEntity("p0", "P");
  auto graph = b.Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_DOUBLE_EQ(RelationshipEntropy(*graph, rel, Direction::kOutgoing),
                   0.0);
}

TEST(ComputeNonKeyEntropyTest, FailsWithoutRelTypeMapping) {
  const EntityGraph graph = BuildPaperExampleGraph();
  SchemaGraph direct;  // built directly: no relationship-type mapping
  direct.AddType("A", 1);
  direct.AddType("B", 1);
  direct.AddEdge("r", 0, 1, 1);
  const auto result = ComputeNonKeyEntropy(graph, direct);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ComputeNonKeyEntropyTest, FastPathMatchesReferenceOnGeneratedDomain) {
  // ComputeNonKeyEntropy uses a single-pass-per-relationship fast path;
  // RelationshipEntropy is the reference implementation. They must agree
  // on every (edge, direction) of a realistic generated graph.
  GeneratorOptions options;
  options.scale = 0.0003;
  auto domain = GenerateDomainByName("tv", options);
  ASSERT_TRUE(domain.ok());
  const auto fast = ComputeNonKeyEntropy(domain->graph, domain->schema);
  ASSERT_TRUE(fast.ok());
  for (uint32_t i = 0; i < domain->schema.num_edges(); ++i) {
    const RelTypeId rel = domain->schema.RelTypeOfEdge(i);
    EXPECT_NEAR(fast->outgoing[i],
                RelationshipEntropy(domain->graph, rel,
                                    Direction::kOutgoing),
                1e-9)
        << "edge " << i << " outgoing";
    EXPECT_NEAR(fast->incoming[i],
                RelationshipEntropy(domain->graph, rel,
                                    Direction::kIncoming),
                1e-9)
        << "edge " << i << " incoming";
  }
}

TEST(ComputeNonKeyEntropyTest, PopulatesBothDirections) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  const auto result = ComputeNonKeyEntropy(graph, schema);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outgoing.size(), schema.num_edges());
  EXPECT_EQ(result->incoming.size(), schema.num_edges());
  for (uint32_t i = 0; i < schema.num_edges(); ++i) {
    EXPECT_GE(result->outgoing[i], 0.0);
    EXPECT_GE(result->incoming[i], 0.0);
  }
}

}  // namespace
}  // namespace egp
