#include "core/beam_search.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "datagen/paper_example.h"
#include "tests/testing/random_schema.h"

namespace egp {
namespace {

PreparedSchema PreparePaper() {
  auto prepared =
      PreparedSchema::Create(SchemaGraph::FromEntityGraph(
                                 BuildPaperExampleGraph()),
                             PreparedSchemaOptions{});
  EXPECT_TRUE(prepared.ok());
  return std::move(prepared).value();
}

TEST(BeamSearchTest, FindsPaperConciseOptimum) {
  const PreparedSchema prepared = PreparePaper();
  const auto preview = BeamSearchDiscover(prepared, SizeConstraint{2, 6},
                                          DistanceConstraint::None());
  ASSERT_TRUE(preview.ok());
  EXPECT_DOUBLE_EQ(preview->Score(prepared), 84.0);
}

TEST(BeamSearchTest, FindsPaperDiverseOptimum) {
  const PreparedSchema prepared = PreparePaper();
  const auto preview = BeamSearchDiscover(prepared, SizeConstraint{2, 6},
                                          DistanceConstraint::Diverse(2));
  ASSERT_TRUE(preview.ok());
  EXPECT_DOUBLE_EQ(preview->Score(prepared), 78.0);
}

TEST(BeamSearchTest, ResultAlwaysValid) {
  const PreparedSchema prepared = PreparePaper();
  for (uint32_t k = 1; k <= 4; ++k) {
    for (uint32_t n = k; n <= k + 4; ++n) {
      const SizeConstraint size{k, n};
      const auto preview =
          BeamSearchDiscover(prepared, size, DistanceConstraint::Tight(2));
      if (!preview.ok()) continue;
      EXPECT_TRUE(ValidatePreview(*preview, prepared, size,
                                  DistanceConstraint::Tight(2))
                      .ok())
          << "k=" << k << " n=" << n;
    }
  }
}

TEST(BeamSearchTest, InfeasibleConstraintIsNotFound) {
  const PreparedSchema prepared = PreparePaper();
  const auto preview = BeamSearchDiscover(prepared, SizeConstraint{3, 6},
                                          DistanceConstraint::Diverse(9));
  EXPECT_EQ(preview.status().code(), StatusCode::kNotFound);
}

TEST(BeamSearchTest, InvalidArguments) {
  const PreparedSchema prepared = PreparePaper();
  EXPECT_FALSE(BeamSearchDiscover(prepared, SizeConstraint{0, 5},
                                  DistanceConstraint::None())
                   .ok());
  EXPECT_FALSE(BeamSearchDiscover(prepared, SizeConstraint{3, 2},
                                  DistanceConstraint::None())
                   .ok());
  BeamSearchOptions zero;
  zero.beam_width = 0;
  EXPECT_FALSE(BeamSearchDiscover(prepared, SizeConstraint{2, 4},
                                  DistanceConstraint::None(), zero)
                   .ok());
}

struct BeamInstance {
  uint64_t seed;
  uint32_t k;
  uint32_t n;
};

class BeamQualityTest : public ::testing::TestWithParam<BeamInstance> {};

TEST_P(BeamQualityTest, NeverBeatsAndUsuallyMatchesOptimal) {
  const BeamInstance& p = GetParam();
  const SchemaGraph schema = testing_util::RandomSchemaGraph(p.seed, 12, 24);
  auto prepared = PreparedSchema::Create(schema, PreparedSchemaOptions{});
  ASSERT_TRUE(prepared.ok());
  const SizeConstraint size{p.k, p.n};
  for (const DistanceConstraint& constraint :
       {DistanceConstraint::None(), DistanceConstraint::Tight(2),
        DistanceConstraint::Diverse(2)}) {
    const auto exact = BruteForceDiscover(*prepared, size, constraint);
    const auto beam = BeamSearchDiscover(*prepared, size, constraint);
    if (!exact.ok()) {
      // Beam may also fail to find a feasible set; it must not "succeed"
      // with an invalid one.
      if (beam.ok()) {
        EXPECT_TRUE(ValidatePreview(*beam, *prepared, size, constraint).ok());
      }
      continue;
    }
    ASSERT_TRUE(beam.ok()) << "beam missed a feasible instance";
    const double optimal = exact->Score(*prepared);
    const double approx = beam->Score(*prepared);
    EXPECT_LE(approx, optimal + 1e-9);
    // With beam width 8 on 12-type schemas the approximation should stay
    // within 10% of optimal.
    EXPECT_GE(approx, optimal * 0.9)
        << "seed=" << p.seed << " k=" << p.k << " n=" << p.n;
    EXPECT_TRUE(ValidatePreview(*beam, *prepared, size, constraint).ok());
  }
}

std::vector<BeamInstance> BeamInstances() {
  std::vector<BeamInstance> instances;
  uint64_t seed = 9000;
  for (uint32_t k : {2u, 3u, 4u}) {
    for (uint32_t n : {4u, 8u}) {
      for (int repeat = 0; repeat < 4; ++repeat) {
        instances.push_back(BeamInstance{seed++, k, n});
      }
    }
  }
  return instances;
}

INSTANTIATE_TEST_SUITE_P(RandomSchemas, BeamQualityTest,
                         ::testing::ValuesIn(BeamInstances()));

}  // namespace
}  // namespace egp
