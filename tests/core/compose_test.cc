#include "core/compose.h"

#include <gtest/gtest.h>

#include "datagen/paper_example.h"

namespace egp {
namespace {

class ComposeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = BuildPaperExampleGraph();
    auto prepared = PreparedSchema::Create(
        SchemaGraph::FromEntityGraph(graph_), PreparedSchemaOptions{});
    ASSERT_TRUE(prepared.ok());
    prepared_ = std::make_unique<PreparedSchema>(std::move(prepared).value());
  }

  TypeId Type(std::string_view name) const {
    return *prepared_->schema().type_names().Find(name);
  }

  EntityGraph graph_;
  std::unique_ptr<PreparedSchema> prepared_;
};

TEST_F(ComposeTest, PaperConciseExampleScores84) {
  // §4's example: optimal concise preview with k=2, n=6 over
  // {FILM, FILM ACTOR} scores 4·(6+5+4+2) + 2·(6+2) = 84.
  const auto preview =
      ComposePreview(*prepared_, {Type("FILM"), Type("FILM ACTOR")}, 6);
  ASSERT_TRUE(preview.ok());
  EXPECT_DOUBLE_EQ(preview->Score(*prepared_), 84.0);
  EXPECT_EQ(preview->TotalNonKeys(), 6u);
}

TEST_F(ComposeTest, PaperDiverseExampleScores78) {
  // §4's diverse example {FILM×5, AWARD×1}: 4·18 + 3·2 = 78.
  const auto preview =
      ComposePreview(*prepared_, {Type("FILM"), Type("AWARD")}, 6);
  ASSERT_TRUE(preview.ok());
  EXPECT_DOUBLE_EQ(preview->Score(*prepared_), 78.0);
  // FILM takes 5 attributes (all of Γ_FILM), AWARD 1.
  EXPECT_EQ(preview->tables[0].nonkeys.size(), 5u);
  EXPECT_EQ(preview->tables[1].nonkeys.size(), 1u);
}

TEST_F(ComposeTest, ScoreOnlyMatchesMaterialized) {
  const std::vector<std::vector<TypeId>> key_sets = {
      {Type("FILM")},
      {Type("FILM"), Type("AWARD")},
      {Type("FILM ACTOR"), Type("FILM DIRECTOR")},
      {Type("FILM"), Type("FILM ACTOR"), Type("FILM GENRE")},
  };
  for (const auto& keys : key_sets) {
    for (uint32_t n : {2u, 4u, 6u, 9u}) {
      if (n < keys.size()) continue;
      const auto preview = ComposePreview(*prepared_, keys, n);
      ASSERT_TRUE(preview.ok());
      EXPECT_NEAR(ComposePreviewScore(*prepared_, keys, n),
                  preview->Score(*prepared_), 1e-9);
    }
  }
}

TEST_F(ComposeTest, EveryTableGetsItsTopCandidate) {
  // Theorem 3 / Alg. 1 line 8: the best candidate of each key is always
  // included.
  const auto preview = ComposePreview(
      *prepared_, {Type("FILM"), Type("FILM ACTOR"), Type("AWARD")}, 3);
  ASSERT_TRUE(preview.ok());
  for (const PreviewTable& table : preview->tables) {
    ASSERT_EQ(table.nonkeys.size(), 1u);
    const NonKeyCandidate& top = prepared_->Candidates(table.key).sorted[0];
    EXPECT_EQ(table.nonkeys[0].schema_edge, top.schema_edge);
    EXPECT_EQ(table.nonkeys[0].direction, top.direction);
  }
}

TEST_F(ComposeTest, RemainingSlotsMaximizeWeightedGain) {
  // With k=2 and n=3 over {FILM, FILM PRODUCER}: the third slot should go
  // to FILM (weight 4) over FILM PRODUCER (weight 1).
  const auto preview =
      ComposePreview(*prepared_, {Type("FILM"), Type("FILM PRODUCER")}, 3);
  ASSERT_TRUE(preview.ok());
  EXPECT_EQ(preview->tables[0].nonkeys.size(), 2u);
  EXPECT_EQ(preview->tables[1].nonkeys.size(), 1u);
}

TEST_F(ComposeTest, CapsAtAvailableCandidates) {
  // AWARD has only 2 candidates; asking for many slots keeps the preview
  // feasible with fewer non-keys than n.
  const auto preview = ComposePreview(*prepared_, {Type("AWARD")}, 10);
  ASSERT_TRUE(preview.ok());
  EXPECT_EQ(preview->TotalNonKeys(), 2u);
}

TEST_F(ComposeTest, ErrorWhenNLessThanK) {
  const auto preview =
      ComposePreview(*prepared_, {Type("FILM"), Type("AWARD")}, 1);
  EXPECT_FALSE(preview.ok());
  EXPECT_EQ(preview.status().code(), StatusCode::kInvalidArgument);
  EXPECT_LT(ComposePreviewScore(*prepared_, {Type("FILM"), Type("AWARD")}, 1),
            0.0);
}

TEST_F(ComposeTest, ErrorOnEmptyKeys) {
  EXPECT_FALSE(ComposePreview(*prepared_, {}, 3).ok());
}

TEST_F(ComposeTest, ErrorWhenTypeHasNoCandidates) {
  SchemaGraph schema;
  schema.AddType("A", 1);
  schema.AddType("ISOLATED", 1);
  schema.AddType("B", 1);
  schema.AddEdge("r", 0, 2, 1);
  auto prepared = PreparedSchema::Create(schema, PreparedSchemaOptions{});
  ASSERT_TRUE(prepared.ok());
  const auto preview = ComposePreview(*prepared, {0, 1}, 4);
  EXPECT_FALSE(preview.ok());
  EXPECT_EQ(preview.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ComposeTest, ExhaustiveCrossCheckOnSmallInstance) {
  // Brute-force all ways to split n attributes over two fixed keys and
  // verify the greedy merge is optimal.
  const std::vector<TypeId> keys = {Type("FILM"), Type("FILM ACTOR")};
  const uint32_t n = 4;
  double best = -1.0;
  const TypeCandidates& c0 = prepared_->Candidates(keys[0]);
  const TypeCandidates& c1 = prepared_->Candidates(keys[1]);
  for (uint32_t m0 = 1; m0 < n; ++m0) {
    const uint32_t m1 = n - m0;
    if (m0 > c0.size() || m1 > c1.size()) continue;
    const double score = prepared_->KeyScore(keys[0]) * c0.TopSum(m0) +
                         prepared_->KeyScore(keys[1]) * c1.TopSum(m1);
    best = std::max(best, score);
  }
  EXPECT_NEAR(ComposePreviewScore(*prepared_, keys, n), best, 1e-9);
}

}  // namespace
}  // namespace egp
