#include "core/key_scoring.h"

#include <gtest/gtest.h>

#include <numeric>

#include "datagen/paper_example.h"

namespace egp {
namespace {

SchemaGraph PaperSchema() {
  return SchemaGraph::FromEntityGraph(BuildPaperExampleGraph());
}

TEST(KeyCoverageTest, PaperExampleCounts) {
  const SchemaGraph schema = PaperSchema();
  const auto scores = ComputeKeyCoverage(schema);
  EXPECT_DOUBLE_EQ(scores[*schema.type_names().Find("FILM")], 4.0);
  EXPECT_DOUBLE_EQ(scores[*schema.type_names().Find("FILM ACTOR")], 2.0);
  EXPECT_DOUBLE_EQ(scores[*schema.type_names().Find("FILM PRODUCER")], 1.0);
  EXPECT_DOUBLE_EQ(scores[*schema.type_names().Find("AWARD")], 3.0);
}

TEST(TransitionProbabilityTest, PaperWorkedExample) {
  // §3.2: M(FILM→FILM GENRE) = 5/18 ≈ 0.28; M(FILM→FILM PRODUCER) = 3/18
  // ≈ 0.17.
  const SchemaGraph schema = PaperSchema();
  const TypeId film = *schema.type_names().Find("FILM");
  const TypeId genre = *schema.type_names().Find("FILM GENRE");
  const TypeId producer = *schema.type_names().Find("FILM PRODUCER");
  EXPECT_NEAR(TransitionProbability(schema, film, genre), 0.28, 0.005);
  EXPECT_NEAR(TransitionProbability(schema, film, producer), 0.17, 0.005);
}

TEST(TransitionProbabilityTest, RowSumsToOne) {
  const SchemaGraph schema = PaperSchema();
  const TypeId film = *schema.type_names().Find("FILM");
  double row = 0.0;
  for (TypeId t = 0; t < schema.num_types(); ++t) {
    row += TransitionProbability(schema, film, t);
  }
  EXPECT_NEAR(row, 1.0, 1e-12);
}

TEST(RandomWalkTest, StationaryDistributionSumsToOne) {
  const SchemaGraph schema = PaperSchema();
  const auto pi = ComputeKeyRandomWalk(schema);
  EXPECT_NEAR(std::accumulate(pi.begin(), pi.end(), 0.0), 1.0, 1e-9);
  for (double p : pi) EXPECT_GT(p, 0.0);
}

TEST(RandomWalkTest, HubDominatesStarGraph) {
  SchemaGraph schema;
  const TypeId hub = schema.AddType("HUB", 1);
  for (int i = 0; i < 5; ++i) {
    const TypeId leaf = schema.AddType("LEAF" + std::to_string(i), 1);
    schema.AddEdge("r", hub, leaf, 10);
  }
  const auto pi = ComputeKeyRandomWalk(schema);
  for (TypeId t = 1; t < schema.num_types(); ++t) {
    EXPECT_GT(pi[hub], pi[t]);
  }
}

TEST(RandomWalkTest, SymmetricGraphIsUniform) {
  // A 4-cycle with equal weights: all types equally central.
  SchemaGraph schema;
  for (int i = 0; i < 4; ++i) schema.AddType("T" + std::to_string(i), 1);
  for (int i = 0; i < 4; ++i) {
    schema.AddEdge("r", static_cast<TypeId>(i),
                   static_cast<TypeId>((i + 1) % 4), 5);
  }
  const auto pi = ComputeKeyRandomWalk(schema);
  for (double p : pi) EXPECT_NEAR(p, 0.25, 1e-6);
}

TEST(RandomWalkTest, WeightsDriveStationaryMass) {
  // A—B heavily connected, C attached lightly: C gets the least mass.
  SchemaGraph schema;
  schema.AddType("A", 1);
  schema.AddType("B", 1);
  schema.AddType("C", 1);
  schema.AddEdge("r", 0, 1, 100);
  schema.AddEdge("r", 1, 2, 1);
  const auto pi = ComputeKeyRandomWalk(schema);
  EXPECT_GT(pi[0], pi[2]);
  EXPECT_GT(pi[1], pi[0]);  // B touches both
}

TEST(RandomWalkTest, DisconnectedGraphConvergesViaSmoothing) {
  // §6: the 1e-5 smoothing guarantees convergence on disconnected schema
  // graphs.
  SchemaGraph schema;
  schema.AddType("A", 1);
  schema.AddType("B", 1);
  schema.AddType("C", 1);  // isolated
  schema.AddEdge("r", 0, 1, 50);
  const auto pi = ComputeKeyRandomWalk(schema);
  EXPECT_NEAR(std::accumulate(pi.begin(), pi.end(), 0.0), 1.0, 1e-9);
  EXPECT_GT(pi[2], 0.0);
  EXPECT_GT(pi[0], pi[2]);
}

TEST(RandomWalkTest, PaperExampleFilmIsCentral) {
  const SchemaGraph schema = PaperSchema();
  const auto pi = ComputeKeyRandomWalk(schema);
  const TypeId film = *schema.type_names().Find("FILM");
  for (TypeId t = 0; t < schema.num_types(); ++t) {
    if (t == film) continue;
    EXPECT_GT(pi[film], pi[t]) << "FILM should be the most central type";
  }
}

TEST(RandomWalkTest, SelfLoopRetainsMass) {
  SchemaGraph schema;
  schema.AddType("A", 1);
  schema.AddType("B", 1);
  schema.AddType("C", 1);
  schema.AddEdge("r", 0, 1, 10);
  schema.AddEdge("r", 1, 2, 10);
  const auto base = ComputeKeyRandomWalk(schema);
  SchemaGraph with_loop;
  with_loop.AddType("A", 1);
  with_loop.AddType("B", 1);
  with_loop.AddType("C", 1);
  with_loop.AddEdge("r", 0, 1, 10);
  with_loop.AddEdge("r", 1, 2, 10);
  with_loop.AddEdge("self", 0, 0, 50);
  const auto looped = ComputeKeyRandomWalk(with_loop);
  EXPECT_GT(looped[0], base[0]);
}

TEST(RandomWalkTest, SingleType) {
  SchemaGraph schema;
  schema.AddType("A", 7);
  const auto pi = ComputeKeyRandomWalk(schema);
  ASSERT_EQ(pi.size(), 1u);
  EXPECT_DOUBLE_EQ(pi[0], 1.0);
}

}  // namespace
}  // namespace egp
