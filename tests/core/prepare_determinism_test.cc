// Determinism regression: a PreparedSchema built on a thread pool must be
// bit-identical to the serial golden — key scores, non-key scores, the Γτ
// candidate ordering and prefix sums, and the distance matrix — at every
// parallelism. The parallel pipeline statically partitions index ranges
// and each job writes its own slot with a fixed-order accumulation, so
// nothing here is allowed to depend on scheduling. Runs under the TSan
// build like every suite (see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/parallel.h"
#include "core/candidates.h"
#include "core/key_scoring.h"
#include "datagen/generator.h"
#include "tests/testing/random_schema.h"

namespace egp {
namespace {

/// Bit-exact comparison of every score surface of two prepared schemas.
void ExpectBitIdentical(const PreparedSchema& golden,
                        const PreparedSchema& built, unsigned threads) {
  const size_t num_types = golden.schema().num_types();
  ASSERT_EQ(built.schema().num_types(), num_types);
  for (TypeId t = 0; t < num_types; ++t) {
    // EXPECT_EQ on doubles is exact, which is the point.
    EXPECT_EQ(golden.KeyScore(t), built.KeyScore(t))
        << "key score of type " << t << " at " << threads << " threads";
    const TypeCandidates& a = golden.Candidates(t);
    const TypeCandidates& b = built.Candidates(t);
    ASSERT_EQ(a.sorted.size(), b.sorted.size()) << "Γτ size of type " << t;
    for (size_t i = 0; i < a.sorted.size(); ++i) {
      EXPECT_EQ(a.sorted[i].schema_edge, b.sorted[i].schema_edge)
          << "Γτ order of type " << t << " slot " << i << " at " << threads
          << " threads";
      EXPECT_EQ(a.sorted[i].direction, b.sorted[i].direction)
          << "Γτ direction of type " << t << " slot " << i;
      EXPECT_EQ(a.sorted[i].score, b.sorted[i].score)
          << "non-key score of type " << t << " slot " << i << " at "
          << threads << " threads";
    }
    ASSERT_EQ(a.prefix.size(), b.prefix.size());
    for (size_t i = 0; i < a.prefix.size(); ++i) {
      EXPECT_EQ(a.prefix[i], b.prefix[i])
          << "prefix sum of type " << t << " slot " << i;
    }
    for (TypeId u = 0; u < num_types; ++u) {
      EXPECT_EQ(golden.distances().Distance(t, u),
                built.distances().Distance(t, u))
          << "distance " << t << "→" << u << " at " << threads << " threads";
    }
  }
}

void CheckAllParallelisms(const SchemaGraph& schema,
                          const MeasureSelection& measures,
                          const EntityGraph* graph) {
  auto golden = PreparedSchema::Create(schema, measures, graph);
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  for (unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    auto built = PreparedSchema::Create(schema, measures, graph, &pool);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    ExpectBitIdentical(*golden, *built, threads);
  }
}

TEST(PrepareDeterminismTest, RandomSchemasCoverageAndRandomWalk) {
  for (uint64_t seed : {7u, 21u, 98u}) {
    const SchemaGraph schema =
        testing_util::RandomSchemaGraph(seed, 60, 240);
    for (const char* key : {"coverage", "randomwalk"}) {
      MeasureSelection measures;
      measures.key = key;
      measures.nonkey = "coverage";
      SCOPED_TRACE(std::string("seed ") + std::to_string(seed) + " key " +
                   key);
      CheckAllParallelisms(schema, measures, nullptr);
    }
  }
}

TEST(PrepareDeterminismTest, GeneratedDomainWithEntropy) {
  // The entropy measure exercises the FrozenGraph CSR path end to end.
  GeneratorOptions options;
  options.scale = 0.002;
  for (const char* domain_name : {"tv", "basketball"}) {
    auto domain = GenerateDomainByName(domain_name, options);
    ASSERT_TRUE(domain.ok()) << domain.status().ToString();
    MeasureSelection measures;
    measures.key = "randomwalk";
    measures.nonkey = "entropy";
    SCOPED_TRACE(domain_name);
    CheckAllParallelisms(domain->schema, measures, &domain->graph);
  }
}

TEST(PrepareDeterminismTest, RepeatedParallelBuildsAreStable) {
  // Same pool, several builds: results must not drift run to run.
  const SchemaGraph schema = testing_util::RandomSchemaGraph(5, 40, 160);
  MeasureSelection measures;
  measures.key = "randomwalk";
  ThreadPool pool(8);
  auto first = PreparedSchema::Create(schema, measures, nullptr, &pool);
  ASSERT_TRUE(first.ok());
  for (int round = 0; round < 3; ++round) {
    auto again = PreparedSchema::Create(schema, measures, nullptr, &pool);
    ASSERT_TRUE(again.ok());
    ExpectBitIdentical(*first, *again, 8);
  }
}

TEST(PrepareDeterminismTest, SparseWalkMatchesDenseSemantics) {
  // The CSR walk replaced a dense-matrix implementation; its stationary
  // distribution must still be a probability vector with the same
  // qualitative structure on random schemas (exact values are covered by
  // key_scoring_test's worked examples).
  for (uint64_t seed : {3u, 11u}) {
    const SchemaGraph schema = testing_util::RandomSchemaGraph(seed, 50, 200);
    const std::vector<double> pi = ComputeKeyRandomWalk(schema);
    ASSERT_EQ(pi.size(), schema.num_types());
    double total = 0.0;
    for (double p : pi) {
      EXPECT_GT(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace egp
