#include "core/candidates.h"

#include <gtest/gtest.h>

#include "datagen/paper_example.h"

namespace egp {
namespace {

PreparedSchema PreparePaperExample(KeyMeasure key, NonKeyMeasure nonkey) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  PreparedSchemaOptions options;
  options.key_measure = key;
  options.nonkey_measure = nonkey;
  auto prepared = PreparedSchema::Create(schema, options, &graph);
  EXPECT_TRUE(prepared.ok()) << prepared.status().ToString();
  return std::move(prepared).value();
}

TEST(PreparedSchemaTest, CandidatesSortedDescending) {
  const PreparedSchema prepared =
      PreparePaperExample(KeyMeasure::kCoverage, NonKeyMeasure::kCoverage);
  for (TypeId t = 0; t < prepared.num_types(); ++t) {
    const TypeCandidates& cands = prepared.Candidates(t);
    for (size_t i = 1; i < cands.sorted.size(); ++i) {
      EXPECT_GE(cands.sorted[i - 1].score, cands.sorted[i].score);
    }
  }
}

TEST(PreparedSchemaTest, PrefixSumsMatchScores) {
  const PreparedSchema prepared =
      PreparePaperExample(KeyMeasure::kCoverage, NonKeyMeasure::kCoverage);
  for (TypeId t = 0; t < prepared.num_types(); ++t) {
    const TypeCandidates& cands = prepared.Candidates(t);
    double sum = 0.0;
    EXPECT_DOUBLE_EQ(cands.TopSum(0), 0.0);
    for (size_t m = 0; m < cands.size(); ++m) {
      sum += cands.sorted[m].score;
      EXPECT_DOUBLE_EQ(cands.TopSum(m + 1), sum);
    }
  }
}

TEST(PreparedSchemaTest, FilmCandidatesOrderedByCoverage) {
  // FILM's candidates by coverage: Actor 6, Genres 5, Director 4,
  // Producer 2, Executive Producer 1.
  const PreparedSchema prepared =
      PreparePaperExample(KeyMeasure::kCoverage, NonKeyMeasure::kCoverage);
  const TypeId film = *prepared.schema().type_names().Find("FILM");
  const TypeCandidates& cands = prepared.Candidates(film);
  ASSERT_EQ(cands.size(), 5u);
  std::vector<double> expected = {6, 5, 4, 2, 1};
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(cands.sorted[i].score, expected[i]);
  }
  EXPECT_DOUBLE_EQ(cands.TopSum(5), 18.0);
}

TEST(PreparedSchemaTest, TableScoreIsKeyTimesTopSum) {
  const PreparedSchema prepared =
      PreparePaperExample(KeyMeasure::kCoverage, NonKeyMeasure::kCoverage);
  const TypeId film = *prepared.schema().type_names().Find("FILM");
  // S(FILM) = 4; top-3 = 6+5+4 = 15 → table score 60 (Eq. 2 + Thm. 3).
  EXPECT_DOUBLE_EQ(prepared.TableScore(film, 3), 60.0);
}

TEST(PreparedSchemaTest, EligibilityRequiresCandidates) {
  SchemaGraph schema;
  schema.AddType("CONNECTED", 5);
  schema.AddType("OTHER", 5);
  schema.AddType("ISOLATED", 5);
  schema.AddEdge("r", 0, 1, 3);
  auto prepared = PreparedSchema::Create(schema, PreparedSchemaOptions{});
  ASSERT_TRUE(prepared.ok());
  EXPECT_TRUE(prepared->Eligible(0));
  EXPECT_TRUE(prepared->Eligible(1));
  EXPECT_FALSE(prepared->Eligible(2));
}

TEST(PreparedSchemaTest, SelfLoopYieldsTwoCandidates) {
  SchemaGraph schema;
  schema.AddType("EPISODE", 10);
  schema.AddEdge("Next", 0, 0, 9);
  auto prepared = PreparedSchema::Create(schema, PreparedSchemaOptions{});
  ASSERT_TRUE(prepared.ok());
  const TypeCandidates& cands = prepared->Candidates(0);
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_NE(cands.sorted[0].direction, cands.sorted[1].direction);
}

TEST(PreparedSchemaTest, TotalCandidatesCountsBothEndpoints) {
  // N = 2|Es| in the paper's complexity analysis.
  const PreparedSchema prepared =
      PreparePaperExample(KeyMeasure::kCoverage, NonKeyMeasure::kCoverage);
  EXPECT_EQ(prepared.TotalCandidates(), 2 * prepared.schema().num_edges());
}

TEST(PreparedSchemaTest, EntropyMeasureRequiresGraph) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  PreparedSchemaOptions options;
  options.nonkey_measure = NonKeyMeasure::kEntropy;
  const auto without_graph = PreparedSchema::Create(schema, options);
  EXPECT_FALSE(without_graph.ok());
  EXPECT_EQ(without_graph.status().code(), StatusCode::kInvalidArgument);
  const auto with_graph = PreparedSchema::Create(schema, options, &graph);
  EXPECT_TRUE(with_graph.ok());
}

TEST(PreparedSchemaTest, RandomWalkKeyScores) {
  const PreparedSchema prepared =
      PreparePaperExample(KeyMeasure::kRandomWalk, NonKeyMeasure::kCoverage);
  double total = 0.0;
  for (TypeId t = 0; t < prepared.num_types(); ++t) {
    total += prepared.KeyScore(t);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  const TypeId film = *prepared.schema().type_names().Find("FILM");
  const TypeId producer = *prepared.schema().type_names().Find("FILM PRODUCER");
  EXPECT_GT(prepared.KeyScore(film), prepared.KeyScore(producer));
}

TEST(PreparedSchemaTest, MeasureNames) {
  EXPECT_STREQ(KeyMeasureName(KeyMeasure::kCoverage), "Coverage");
  EXPECT_STREQ(KeyMeasureName(KeyMeasure::kRandomWalk), "RandomWalk");
  EXPECT_STREQ(NonKeyMeasureName(NonKeyMeasure::kCoverage), "Coverage");
  EXPECT_STREQ(NonKeyMeasureName(NonKeyMeasure::kEntropy), "Entropy");
}

TEST(PreparedSchemaTest, DeterministicTieBreaks) {
  SchemaGraph schema;
  schema.AddType("A", 1);
  schema.AddType("B", 1);
  schema.AddType("C", 1);
  schema.AddEdge("r1", 0, 1, 5);  // equal scores
  schema.AddEdge("r2", 0, 2, 5);
  auto prepared = PreparedSchema::Create(schema, PreparedSchemaOptions{});
  ASSERT_TRUE(prepared.ok());
  const TypeCandidates& cands = prepared->Candidates(0);
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_LT(cands.sorted[0].schema_edge, cands.sorted[1].schema_edge);
}

}  // namespace
}  // namespace egp
