#include "core/tuple_sampler.h"

#include <gtest/gtest.h>

#include "core/discoverer.h"
#include "datagen/paper_example.h"

namespace egp {
namespace {

class TupleSamplerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = BuildPaperExampleGraph();
    auto prepared = PreparedSchema::Create(
        SchemaGraph::FromEntityGraph(graph_), PreparedSchemaOptions{});
    ASSERT_TRUE(prepared.ok());
    prepared_ = std::make_unique<PreparedSchema>(std::move(prepared).value());
    PreviewDiscoverer discoverer(*prepared_);
    DiscoveryOptions options;
    options.size = {2, 6};
    auto preview = discoverer.Discover(options);
    ASSERT_TRUE(preview.ok());
    preview_ = std::move(preview).value();
  }

  EntityGraph graph_;
  std::unique_ptr<PreparedSchema> prepared_;
  Preview preview_;
};

TEST_F(TupleSamplerTest, MaterializesRequestedRows) {
  TupleSamplerOptions options;
  options.rows_per_table = 2;
  const auto mat = MaterializePreview(graph_, *prepared_, preview_, options);
  ASSERT_TRUE(mat.ok());
  ASSERT_EQ(mat->tables.size(), 2u);
  for (const MaterializedTable& table : mat->tables) {
    EXPECT_LE(table.rows.size(), 2u);
    EXPECT_GE(table.rows.size(), 1u);
    EXPECT_EQ(table.columns.size(),
              preview_.tables[&table - mat->tables.data()].nonkeys.size());
  }
}

TEST_F(TupleSamplerTest, AllTuplesWhenFewerThanRequested) {
  TupleSamplerOptions options;
  options.rows_per_table = 100;
  const auto mat = MaterializePreview(graph_, *prepared_, preview_, options);
  ASSERT_TRUE(mat.ok());
  // FILM has 4 entities; the table shows all of them.
  EXPECT_EQ(mat->tables[0].rows.size(), mat->tables[0].total_tuples);
}

TEST_F(TupleSamplerTest, CellsMatchNeighborSets) {
  TupleSamplerOptions options;
  options.rows_per_table = 100;
  const auto mat = MaterializePreview(graph_, *prepared_, preview_, options);
  ASSERT_TRUE(mat.ok());
  for (const MaterializedTable& table : mat->tables) {
    for (const MaterializedRow& row : table.rows) {
      ASSERT_EQ(row.cells.size(), table.columns.size());
      for (size_t c = 0; c < table.columns.size(); ++c) {
        ASSERT_EQ(table.columns[c].rel_types.size(), 1u);
        const auto expected =
            graph_.NeighborSet(row.key, table.columns[c].rel_types[0],
                               table.columns[c].direction);
        EXPECT_EQ(row.cells[c].values, expected);
      }
    }
  }
}

TEST_F(TupleSamplerTest, DeterministicUnderSeed) {
  TupleSamplerOptions options;
  options.rows_per_table = 2;
  options.seed = 99;
  const auto a = MaterializePreview(graph_, *prepared_, preview_, options);
  const auto b = MaterializePreview(graph_, *prepared_, preview_, options);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t t = 0; t < a->tables.size(); ++t) {
    ASSERT_EQ(a->tables[t].rows.size(), b->tables[t].rows.size());
    for (size_t r = 0; r < a->tables[t].rows.size(); ++r) {
      EXPECT_EQ(a->tables[t].rows[r].key, b->tables[t].rows[r].key);
    }
  }
}

TEST_F(TupleSamplerTest, FrequencyWeightedPrefersFilledRows) {
  // Under the frequency-weighted strategy, the FILM table should prefer
  // films with non-empty Genres/Director cells (Hancock lacks genres).
  TupleSamplerOptions options;
  options.rows_per_table = 1;
  options.strategy = SamplingStrategy::kFrequencyWeighted;
  const auto mat = MaterializePreview(graph_, *prepared_, preview_, options);
  ASSERT_TRUE(mat.ok());
  const MaterializedTable& film = mat->tables[0];
  ASSERT_EQ(film.rows.size(), 1u);
  size_t non_empty = 0;
  for (const MaterializedCell& cell : film.rows[0].cells) {
    if (!cell.values.empty()) ++non_empty;
  }
  EXPECT_GE(non_empty, film.columns.size() - 1);
}

TEST_F(TupleSamplerTest, FailsOnUnderivedSchema) {
  SchemaGraph direct;
  direct.AddType("A", 1);
  direct.AddType("B", 1);
  direct.AddEdge("r", 0, 1, 1);
  auto prepared = PreparedSchema::Create(direct, PreparedSchemaOptions{});
  ASSERT_TRUE(prepared.ok());
  Preview preview;
  PreviewTable table;
  table.key = 0;
  table.nonkeys = {prepared->Candidates(0).sorted[0]};
  preview.tables = {table};
  const auto mat = MaterializePreview(graph_, *prepared, preview);
  EXPECT_FALSE(mat.ok());
  EXPECT_EQ(mat.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(TupleSamplerTest, MultiwayMergeFoldsSameSurfaceColumns) {
  // Appendix B: attributes sharing a surface name fold into one multi-way
  // column. AWARD's two "Award Winners" relationship types (actor- and
  // director-side) become a single column listing both target types.
  const TypeId award = *prepared_->schema().type_names().Find("AWARD");
  Preview preview;
  PreviewTable table;
  table.key = award;
  table.nonkeys = prepared_->Candidates(award).sorted;  // both variants
  preview.tables = {table};

  TupleSamplerOptions options;
  options.rows_per_table = 3;
  options.merge_multiway_columns = true;
  const auto mat = MaterializePreview(graph_, *prepared_, preview, options);
  ASSERT_TRUE(mat.ok());
  ASSERT_EQ(mat->tables[0].columns.size(), 1u);
  const MaterializedColumn& column = mat->tables[0].columns[0];
  EXPECT_EQ(column.name, "Award Winners");
  EXPECT_EQ(column.rel_types.size(), 2u);
  EXPECT_NE(column.target.find("FILM ACTOR"), std::string::npos);
  EXPECT_NE(column.target.find("FILM DIRECTOR"), std::string::npos);
  // Razzie Award's winner comes via the director-side relationship; the
  // merged cell still finds it.
  const EntityId razzie = *graph_.entity_names().Find("Razzie Award");
  bool found_barry = false;
  for (const MaterializedRow& row : mat->tables[0].rows) {
    if (row.key != razzie) continue;
    for (EntityId v : row.cells[0].values) {
      if (graph_.EntityName(v) == "Barry Sonnenfeld") found_barry = true;
    }
  }
  EXPECT_TRUE(found_barry);
}

TEST_F(TupleSamplerTest, MultiwayMergeOffKeepsColumnsSeparate) {
  const TypeId award = *prepared_->schema().type_names().Find("AWARD");
  Preview preview;
  PreviewTable table;
  table.key = award;
  table.nonkeys = prepared_->Candidates(award).sorted;
  preview.tables = {table};
  const auto mat = MaterializePreview(graph_, *prepared_, preview);
  ASSERT_TRUE(mat.ok());
  EXPECT_EQ(mat->tables[0].columns.size(), 2u);
}

TEST_F(TupleSamplerTest, ColumnMetadataNamesTargets) {
  const auto mat = MaterializePreview(graph_, *prepared_, preview_);
  ASSERT_TRUE(mat.ok());
  const MaterializedTable& film = mat->tables[0];
  EXPECT_EQ(film.key_name, "FILM");
  bool found_genres = false;
  for (const MaterializedColumn& column : film.columns) {
    if (column.name == "Genres") {
      found_genres = true;
      EXPECT_EQ(column.target, "FILM GENRE");
      EXPECT_EQ(column.direction, Direction::kOutgoing);
    }
  }
  EXPECT_TRUE(found_genres);
}

}  // namespace
}  // namespace egp
