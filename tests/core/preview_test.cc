#include "core/preview.h"

#include <gtest/gtest.h>

#include "datagen/paper_example.h"

namespace egp {
namespace {

class PreviewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = BuildPaperExampleGraph();
    schema_ = SchemaGraph::FromEntityGraph(graph_);
    auto prepared = PreparedSchema::Create(schema_, PreparedSchemaOptions{});
    ASSERT_TRUE(prepared.ok());
    prepared_ = std::make_unique<PreparedSchema>(std::move(prepared).value());
  }

  TypeId Type(std::string_view name) const {
    auto id = prepared_->schema().type_names().Find(name);
    EXPECT_TRUE(id.has_value()) << name;
    return *id;
  }

  NonKeyCandidate Candidate(TypeId key, size_t rank) const {
    return prepared_->Candidates(key).sorted[rank];
  }

  EntityGraph graph_;
  SchemaGraph schema_;
  std::unique_ptr<PreparedSchema> prepared_;
};

TEST_F(PreviewTest, TableScoreIsEq2) {
  PreviewTable table;
  table.key = Type("FILM");
  table.nonkeys = {Candidate(table.key, 0), Candidate(table.key, 1)};
  // S(FILM) × (Actor + Genres) = 4 × 11 = 44.
  EXPECT_DOUBLE_EQ(table.Score(*prepared_), 44.0);
}

TEST_F(PreviewTest, PreviewScoreIsSumOfTables) {
  Preview preview;
  PreviewTable film;
  film.key = Type("FILM");
  film.nonkeys = {Candidate(film.key, 0)};
  PreviewTable actor;
  actor.key = Type("FILM ACTOR");
  actor.nonkeys = {Candidate(actor.key, 0)};
  preview.tables = {film, actor};
  EXPECT_DOUBLE_EQ(preview.Score(*prepared_),
                   film.Score(*prepared_) + actor.Score(*prepared_));
  EXPECT_EQ(preview.TotalNonKeys(), 2u);
}

TEST_F(PreviewTest, ValidPreviewPasses) {
  Preview preview;
  PreviewTable film;
  film.key = Type("FILM");
  film.nonkeys = {Candidate(film.key, 0), Candidate(film.key, 1)};
  PreviewTable actor;
  actor.key = Type("FILM ACTOR");
  actor.nonkeys = {Candidate(actor.key, 0)};
  preview.tables = {film, actor};
  EXPECT_TRUE(ValidatePreview(preview, *prepared_, SizeConstraint{2, 6},
                              DistanceConstraint::None())
                  .ok());
}

TEST_F(PreviewTest, RejectsWrongTableCount) {
  Preview preview;
  PreviewTable film;
  film.key = Type("FILM");
  film.nonkeys = {Candidate(film.key, 0)};
  preview.tables = {film};
  const Status status = ValidatePreview(preview, *prepared_,
                                        SizeConstraint{2, 6},
                                        DistanceConstraint::None());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(PreviewTest, RejectsTooManyNonKeys) {
  Preview preview;
  PreviewTable film;
  film.key = Type("FILM");
  for (size_t i = 0; i < 5; ++i) film.nonkeys.push_back(Candidate(film.key, i));
  preview.tables = {film};
  const Status status = ValidatePreview(preview, *prepared_,
                                        SizeConstraint{1, 3},
                                        DistanceConstraint::None());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(PreviewTest, RejectsDuplicateKeys) {
  Preview preview;
  PreviewTable a, b;
  a.key = b.key = Type("FILM");
  a.nonkeys = {Candidate(a.key, 0)};
  b.nonkeys = {Candidate(b.key, 1)};
  preview.tables = {a, b};
  EXPECT_FALSE(ValidatePreview(preview, *prepared_, SizeConstraint{2, 6},
                               DistanceConstraint::None())
                   .ok());
}

TEST_F(PreviewTest, RejectsEmptyTable) {
  Preview preview;
  PreviewTable film;
  film.key = Type("FILM");  // Def. 1: at least one non-key attribute
  preview.tables = {film};
  EXPECT_FALSE(ValidatePreview(preview, *prepared_, SizeConstraint{1, 3},
                               DistanceConstraint::None())
                   .ok());
}

TEST_F(PreviewTest, RejectsForeignNonKey) {
  Preview preview;
  PreviewTable film;
  film.key = Type("FILM");
  film.nonkeys = {Candidate(Type("AWARD"), 0)};  // not incident on FILM
  preview.tables = {film};
  EXPECT_FALSE(ValidatePreview(preview, *prepared_, SizeConstraint{1, 3},
                               DistanceConstraint::None())
                   .ok());
}

TEST_F(PreviewTest, RejectsDuplicateNonKey) {
  Preview preview;
  PreviewTable film;
  film.key = Type("FILM");
  film.nonkeys = {Candidate(film.key, 0), Candidate(film.key, 0)};
  preview.tables = {film};
  EXPECT_FALSE(ValidatePreview(preview, *prepared_, SizeConstraint{1, 3},
                               DistanceConstraint::None())
                   .ok());
}

TEST_F(PreviewTest, EnforcesTightDistance) {
  Preview preview;
  PreviewTable film, award;
  film.key = Type("FILM");
  film.nonkeys = {Candidate(film.key, 0)};
  award.key = Type("AWARD");
  award.nonkeys = {Candidate(award.key, 0)};
  preview.tables = {film, award};
  // dist(FILM, AWARD) = 2: fails tight d=1, passes tight d=2 and diverse
  // d=2.
  EXPECT_FALSE(ValidatePreview(preview, *prepared_, SizeConstraint{2, 6},
                               DistanceConstraint::Tight(1))
                   .ok());
  EXPECT_TRUE(ValidatePreview(preview, *prepared_, SizeConstraint{2, 6},
                              DistanceConstraint::Tight(2))
                  .ok());
  EXPECT_TRUE(ValidatePreview(preview, *prepared_, SizeConstraint{2, 6},
                              DistanceConstraint::Diverse(2))
                  .ok());
  EXPECT_FALSE(ValidatePreview(preview, *prepared_, SizeConstraint{2, 6},
                               DistanceConstraint::Diverse(3))
                   .ok());
}

TEST_F(PreviewTest, KeysSorted) {
  Preview preview;
  PreviewTable a, b;
  a.key = Type("FILM GENRE");
  a.nonkeys = {Candidate(a.key, 0)};
  b.key = Type("FILM");
  b.nonkeys = {Candidate(b.key, 0)};
  preview.tables = {a, b};
  const auto keys = preview.Keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_LE(keys[0], keys[1]);
}

TEST_F(PreviewTest, DescribeMentionsNames) {
  Preview preview;
  PreviewTable film;
  film.key = Type("FILM");
  film.nonkeys = {Candidate(film.key, 0)};
  preview.tables = {film};
  const std::string text = DescribePreview(preview, *prepared_);
  EXPECT_NE(text.find("FILM"), std::string::npos);
  EXPECT_NE(text.find("Actor"), std::string::npos);
}

TEST(DistanceConstraintTest, UnreachablePairs) {
  // Unreachable pairs fail tight and satisfy diverse constraints.
  const uint32_t inf = SchemaDistanceMatrix::kUnreachable;
  EXPECT_FALSE(DistanceConstraint::Tight(5).SatisfiedBy(inf));
  EXPECT_TRUE(DistanceConstraint::Diverse(5).SatisfiedBy(inf));
  EXPECT_TRUE(DistanceConstraint::None().SatisfiedBy(inf));
}

TEST(DistanceConstraintTest, Boundaries) {
  EXPECT_TRUE(DistanceConstraint::Tight(2).SatisfiedBy(2));
  EXPECT_FALSE(DistanceConstraint::Tight(2).SatisfiedBy(3));
  EXPECT_TRUE(DistanceConstraint::Diverse(2).SatisfiedBy(2));
  EXPECT_FALSE(DistanceConstraint::Diverse(2).SatisfiedBy(1));
}

}  // namespace
}  // namespace egp
