#include "graph/entity_graph.h"

#include <gtest/gtest.h>

#include "graph/entity_graph_builder.h"

namespace egp {
namespace {

class EntityGraphTest : public ::testing::Test {
 protected:
  // A small two-type graph: two PERSON entities each connected to a CITY.
  EntityGraph MakeSmallGraph() {
    EntityGraphBuilder b;
    const TypeId person = b.AddEntityType("PERSON");
    const TypeId city = b.AddEntityType("CITY");
    const RelTypeId lives_in = b.AddRelationshipType("Lives In", person, city);
    const EntityId alice = b.AddEntity("Alice");
    const EntityId bob = b.AddEntity("Bob");
    const EntityId paris = b.AddEntity("Paris");
    b.AddEntityToType(alice, person);
    b.AddEntityToType(bob, person);
    b.AddEntityToType(paris, city);
    EXPECT_TRUE(b.AddEdge(alice, lives_in, paris).ok());
    EXPECT_TRUE(b.AddEdge(bob, lives_in, paris).ok());
    auto result = b.Build();
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }
};

TEST_F(EntityGraphTest, SizesAreConsistent) {
  const EntityGraph g = MakeSmallGraph();
  EXPECT_EQ(g.num_entities(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.num_types(), 2u);
  EXPECT_EQ(g.num_rel_types(), 1u);
}

TEST_F(EntityGraphTest, NamesRoundTrip) {
  const EntityGraph g = MakeSmallGraph();
  EXPECT_EQ(g.EntityName(0), "Alice");
  EXPECT_EQ(g.TypeName(0), "PERSON");
  EXPECT_EQ(g.RelSurfaceName(0), "Lives In");
}

TEST_F(EntityGraphTest, TypeMembership) {
  const EntityGraph g = MakeSmallGraph();
  EXPECT_EQ(g.EntitiesOfType(0).size(), 2u);
  EXPECT_EQ(g.TypeEntityCount(1), 1u);
  EXPECT_TRUE(g.EntityHasType(0, 0));
  EXPECT_FALSE(g.EntityHasType(0, 1));
}

TEST_F(EntityGraphTest, AdjacencyIndexes) {
  const EntityGraph g = MakeSmallGraph();
  EXPECT_EQ(g.OutEdges(0).size(), 1u);
  EXPECT_EQ(g.InEdges(2).size(), 2u);
  EXPECT_TRUE(g.OutEdges(2).empty());
  EXPECT_EQ(g.EdgesOfRelType(0).size(), 2u);
}

TEST_F(EntityGraphTest, NeighborSetDirections) {
  const EntityGraph g = MakeSmallGraph();
  const auto out = g.NeighborSet(0, 0, Direction::kOutgoing);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(g.EntityName(out[0]), "Paris");
  const auto in = g.NeighborSet(2, 0, Direction::kIncoming);
  EXPECT_EQ(in.size(), 2u);
  EXPECT_TRUE(g.NeighborSet(0, 0, Direction::kIncoming).empty());
}

TEST(EntityGraphBuilderTest, EntityInterningIsIdempotent) {
  EntityGraphBuilder b;
  EXPECT_EQ(b.AddEntity("X"), b.AddEntity("X"));
  EXPECT_EQ(b.num_entities(), 1u);
}

TEST(EntityGraphBuilderTest, RelTypeTripleIsUnique) {
  EntityGraphBuilder b;
  const TypeId t1 = b.AddEntityType("A");
  const TypeId t2 = b.AddEntityType("B");
  const RelTypeId r1 = b.AddRelationshipType("rel", t1, t2);
  EXPECT_EQ(b.AddRelationshipType("rel", t1, t2), r1);
  // Same surface, different endpoints → distinct relationship type (§2's
  // "Award Winners" point).
  EXPECT_NE(b.AddRelationshipType("rel", t2, t1), r1);
}

TEST(EntityGraphBuilderTest, MultiTypedEntities) {
  EntityGraphBuilder b;
  const TypeId actor = b.AddEntityType("ACTOR");
  const TypeId producer = b.AddEntityType("PRODUCER");
  const EntityId will = b.AddEntity("Will");
  b.AddEntityToType(will, actor);
  b.AddEntityToType(will, producer);
  b.AddEntityToType(will, actor);  // idempotent
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->TypesOf(will).size(), 2u);
  EXPECT_EQ(g->TypeEntityCount(actor), 1u);
  EXPECT_EQ(g->TypeEntityCount(producer), 1u);
}

TEST(EntityGraphBuilderTest, AddEdgeValidatesEndpointTypes) {
  EntityGraphBuilder b;
  const TypeId person = b.AddEntityType("PERSON");
  const TypeId city = b.AddEntityType("CITY");
  const RelTypeId rel = b.AddRelationshipType("Lives In", person, city);
  const EntityId alice = b.AddEntity("Alice");
  const EntityId paris = b.AddEntity("Paris");
  b.AddEntityToType(alice, person);
  b.AddEntityToType(paris, city);
  // Wrong direction: Paris is not a PERSON.
  const Status wrong = b.AddEdge(paris, rel, alice);
  EXPECT_EQ(wrong.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(b.AddEdge(alice, rel, paris).ok());
}

TEST(EntityGraphBuilderTest, AddEdgeRejectsUnknownIds) {
  EntityGraphBuilder b;
  const TypeId t = b.AddEntityType("T");
  const RelTypeId rel = b.AddRelationshipType("r", t, t);
  const EntityId e = b.AddEntity("e");
  b.AddEntityToType(e, t);
  EXPECT_EQ(b.AddEdge(99, rel, e).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(b.AddEdge(e, 99, e).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(b.AddEdge(e, rel, 99).code(), StatusCode::kInvalidArgument);
}

TEST(EntityGraphBuilderTest, BuildEmptyFails) {
  EntityGraphBuilder b;
  EXPECT_EQ(b.Build().status().code(), StatusCode::kFailedPrecondition);
}

TEST(EntityGraphBuilderTest, SelfLoopEdgesSupported) {
  EntityGraphBuilder b;
  const TypeId episode = b.AddEntityType("EPISODE");
  const RelTypeId next = b.AddRelationshipType("Next", episode, episode);
  const EntityId e1 = b.AddEntity("ep1");
  const EntityId e2 = b.AddEntity("ep2");
  b.AddEntityToType(e1, episode);
  b.AddEntityToType(e2, episode);
  ASSERT_TRUE(b.AddEdge(e1, next, e2).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NeighborSet(e1, next, Direction::kOutgoing).size(), 1u);
  EXPECT_EQ(g->NeighborSet(e2, next, Direction::kIncoming).size(), 1u);
}

TEST(EntityGraphBuilderTest, ParallelEdgesOfDifferentTypes) {
  // The paper's Actor + Executive Producer double edge between the same
  // entity pair.
  EntityGraphBuilder b;
  const TypeId person = b.AddEntityType("PERSON");
  const TypeId film = b.AddEntityType("FILM");
  const RelTypeId r1 = b.AddRelationshipType("Actor", person, film);
  const RelTypeId r2 = b.AddRelationshipType("Producer", person, film);
  const EntityId will = b.AddEntity("Will");
  const EntityId movie = b.AddEntity("Movie");
  b.AddEntityToType(will, person);
  b.AddEntityToType(movie, film);
  ASSERT_TRUE(b.AddEdge(will, r1, movie).ok());
  ASSERT_TRUE(b.AddEdge(will, r2, movie).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
  EXPECT_EQ(g->OutEdges(will).size(), 2u);
}

TEST(EntityGraphBuilderTest, BuildResetsBuilder) {
  EntityGraphBuilder b;
  b.AddTypedEntity("X", "T");
  ASSERT_TRUE(b.Build().ok());
  EXPECT_EQ(b.num_entities(), 0u);
}

}  // namespace
}  // namespace egp
