#include "graph/validate.h"

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "datagen/paper_example.h"
#include "graph/entity_graph_builder.h"
#include "io/graph_io.h"

namespace egp {
namespace {

TEST(ValidateTest, PaperExampleIsValid) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const ValidationReport report = ValidateEntityGraph(graph);
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_TRUE(CheckEntityGraph(graph).ok());
}

TEST(ValidateTest, GeneratedDomainsAreValid) {
  GeneratorOptions options;
  options.scale = 0.0003;
  for (const char* name : {"film", "people"}) {
    auto domain = GenerateDomainByName(name, options);
    ASSERT_TRUE(domain.ok());
    const ValidationReport report = ValidateEntityGraph(domain->graph);
    EXPECT_TRUE(report.ok())
        << name << ": " << report.violations.front();
  }
}

TEST(ValidateTest, RoundTrippedGraphIsValid) {
  const EntityGraph original = BuildPaperExampleGraph();
  std::stringstream buffer;
  ASSERT_TRUE(WriteEntityGraph(original, buffer).ok());
  auto restored = ReadEntityGraph(buffer);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(CheckEntityGraph(*restored).ok());
}

TEST(ValidateTest, EmptyishGraphIsValid) {
  EntityGraphBuilder b;
  b.AddTypedEntity("only", "T");
  auto graph = b.Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(ValidateEntityGraph(*graph).ok());
}

TEST(ValidateTest, ReportsAreBoundedAndDescriptive) {
  // The validator cannot be fed a corrupt graph through the public API
  // (the builder enforces the invariants), so check the report mechanics
  // on a valid graph instead: empty report, ok() semantics.
  const EntityGraph graph = BuildPaperExampleGraph();
  const ValidationReport report = ValidateEntityGraph(graph);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_TRUE(report.ok());
}

}  // namespace
}  // namespace egp
