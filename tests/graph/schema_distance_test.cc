#include "graph/schema_distance.h"

#include <gtest/gtest.h>

#include "datagen/paper_example.h"

namespace egp {
namespace {

SchemaGraph PathGraph(size_t n) {
  SchemaGraph schema;
  for (size_t i = 0; i < n; ++i) {
    schema.AddType("T" + std::to_string(i), 1);
  }
  for (size_t i = 0; i + 1 < n; ++i) {
    schema.AddEdge("r", static_cast<TypeId>(i), static_cast<TypeId>(i + 1),
                   1);
  }
  return schema;
}

TEST(SchemaDistanceTest, PaperExampleDistances) {
  // §4: dist(FILM, FILM ACTOR) = 1; dist(FILM, AWARD) = 2.
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  const SchemaDistanceMatrix dist(schema);
  const TypeId film = *schema.type_names().Find("FILM");
  const TypeId actor = *schema.type_names().Find("FILM ACTOR");
  const TypeId award = *schema.type_names().Find("AWARD");
  const TypeId genre = *schema.type_names().Find("FILM GENRE");
  EXPECT_EQ(dist.Distance(film, actor), 1u);
  EXPECT_EQ(dist.Distance(film, award), 2u);
  EXPECT_EQ(dist.Distance(genre, award), 3u);
  EXPECT_EQ(dist.Distance(film, film), 0u);
}

TEST(SchemaDistanceTest, DistanceIsSymmetric) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  const SchemaDistanceMatrix dist(schema);
  for (TypeId a = 0; a < schema.num_types(); ++a) {
    for (TypeId b = 0; b < schema.num_types(); ++b) {
      EXPECT_EQ(dist.Distance(a, b), dist.Distance(b, a));
    }
  }
}

TEST(SchemaDistanceTest, PathGraphDistances) {
  const SchemaGraph schema = PathGraph(5);
  const SchemaDistanceMatrix dist(schema);
  EXPECT_EQ(dist.Distance(0, 4), 4u);
  EXPECT_EQ(dist.Distance(1, 3), 2u);
  EXPECT_EQ(dist.Diameter(), 4u);
}

TEST(SchemaDistanceTest, DisconnectedComponents) {
  SchemaGraph schema;
  schema.AddType("A", 1);
  schema.AddType("B", 1);
  schema.AddType("C", 1);
  schema.AddEdge("r", 0, 1, 1);
  const SchemaDistanceMatrix dist(schema);
  EXPECT_EQ(dist.Distance(0, 1), 1u);
  EXPECT_EQ(dist.Distance(0, 2), SchemaDistanceMatrix::kUnreachable);
  EXPECT_EQ(dist.Distance(2, 2), 0u);
  EXPECT_EQ(dist.Diameter(), 1u);  // only finite pairs count
}

TEST(SchemaDistanceTest, EdgeDirectionIgnored) {
  // Undirected paths (§4 footnote 1): distances ignore orientation.
  SchemaGraph schema;
  schema.AddType("A", 1);
  schema.AddType("B", 1);
  schema.AddType("C", 1);
  schema.AddEdge("r", 1, 0, 1);  // B -> A
  schema.AddEdge("r", 1, 2, 1);  // B -> C
  const SchemaDistanceMatrix dist(schema);
  EXPECT_EQ(dist.Distance(0, 2), 2u);
}

TEST(SchemaDistanceTest, ParallelEdgesDoNotShorten) {
  SchemaGraph schema;
  schema.AddType("A", 1);
  schema.AddType("B", 1);
  schema.AddEdge("r1", 0, 1, 1);
  schema.AddEdge("r2", 0, 1, 9);
  const SchemaDistanceMatrix dist(schema);
  EXPECT_EQ(dist.Distance(0, 1), 1u);
}

TEST(SchemaDistanceTest, AveragePathLength) {
  const SchemaGraph schema = PathGraph(3);  // distances: 1,1,2
  const SchemaDistanceMatrix dist(schema);
  EXPECT_NEAR(dist.AveragePathLength(), (1 + 1 + 2) / 3.0, 1e-12);
}

TEST(SchemaDistanceTest, SingleVertex) {
  SchemaGraph schema;
  schema.AddType("A", 1);
  const SchemaDistanceMatrix dist(schema);
  EXPECT_EQ(dist.Distance(0, 0), 0u);
  EXPECT_EQ(dist.Diameter(), 0u);
  EXPECT_DOUBLE_EQ(dist.AveragePathLength(), 0.0);
}

}  // namespace
}  // namespace egp
