#include "graph/graph_stats.h"

#include <gtest/gtest.h>

#include "datagen/paper_example.h"

namespace egp {
namespace {

TEST(EntityGraphStatsTest, PaperExample) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const EntityGraphStats stats = ComputeEntityGraphStats(graph);
  EXPECT_EQ(stats.num_entities, 14u);
  EXPECT_EQ(stats.num_edges, 21u);
  EXPECT_EQ(stats.num_types, 6u);
  EXPECT_EQ(stats.num_rel_types, 7u);
  EXPECT_EQ(stats.multi_typed_entities, 1u);  // Will Smith
  EXPECT_EQ(stats.isolated_entities, 0u);
  EXPECT_NEAR(stats.avg_out_degree, 21.0 / 14.0, 1e-12);
  EXPECT_EQ(stats.max_out_degree, 8u);  // Will Smith: 4 actor + 3 prod + 1 award
}

TEST(SchemaGraphStatsTest, PaperExample) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  const SchemaGraphStats stats = ComputeSchemaGraphStats(schema);
  EXPECT_EQ(stats.num_types, 6u);
  EXPECT_EQ(stats.num_rel_types, 7u);
  EXPECT_EQ(stats.num_components, 1u);
  EXPECT_EQ(stats.diameter, 3u);  // GENRE ... AWARD
  EXPECT_EQ(stats.self_loops, 0u);
  // FILM PRODUCER—FILM carry Producer + Executive Producer; FILM
  // ACTOR/DIRECTOR—AWARD carry one each.
  EXPECT_EQ(stats.parallel_edge_pairs, 1u);
}

TEST(SchemaComponentsTest, CountsComponents) {
  SchemaGraph schema;
  schema.AddType("A", 1);
  schema.AddType("B", 1);
  schema.AddType("C", 1);
  schema.AddType("D", 1);
  schema.AddEdge("r", 0, 1, 1);
  schema.AddEdge("r", 2, 3, 1);
  uint32_t count = 0;
  const auto component = SchemaComponents(schema, &count);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(component[0], component[1]);
  EXPECT_EQ(component[2], component[3]);
  EXPECT_NE(component[0], component[2]);
}

TEST(SchemaComponentsTest, IsolatedVerticesAreOwnComponents) {
  SchemaGraph schema;
  schema.AddType("A", 1);
  schema.AddType("B", 1);
  uint32_t count = 0;
  SchemaComponents(schema, &count);
  EXPECT_EQ(count, 2u);
}

TEST(SchemaGraphStatsTest, SelfLoopCounted) {
  SchemaGraph schema;
  schema.AddType("A", 1);
  schema.AddEdge("next", 0, 0, 3);
  const SchemaGraphStats stats = ComputeSchemaGraphStats(schema);
  EXPECT_EQ(stats.self_loops, 1u);
  EXPECT_EQ(stats.parallel_edge_pairs, 0u);
}

}  // namespace
}  // namespace egp
