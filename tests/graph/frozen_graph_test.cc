#include "graph/frozen_graph.h"

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "datagen/paper_example.h"
#include "graph/entity_graph_builder.h"

namespace egp {
namespace {

TEST(FrozenGraphTest, ArcCountsMatch) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const FrozenGraph frozen = FrozenGraph::Freeze(graph);
  EXPECT_EQ(frozen.num_entities(), graph.num_entities());
  EXPECT_EQ(frozen.num_arcs(), graph.num_edges());
  for (EntityId e = 0; e < graph.num_entities(); ++e) {
    EXPECT_EQ(frozen.OutDegree(e), graph.OutEdges(e).size());
    EXPECT_EQ(frozen.InDegree(e), graph.InEdges(e).size());
  }
}

TEST(FrozenGraphTest, ArcsSortedByRelTypeThenNeighbor) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const FrozenGraph frozen = FrozenGraph::Freeze(graph);
  for (EntityId e = 0; e < graph.num_entities(); ++e) {
    const auto arcs = frozen.OutArcs(e);
    for (size_t i = 1; i < arcs.size(); ++i) {
      const bool ordered =
          arcs[i - 1].rel_type < arcs[i].rel_type ||
          (arcs[i - 1].rel_type == arcs[i].rel_type &&
           arcs[i - 1].neighbor <= arcs[i].neighbor);
      EXPECT_TRUE(ordered);
    }
  }
}

TEST(FrozenGraphTest, NeighborSetsMatchEntityGraphOnPaperExample) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const FrozenGraph frozen = FrozenGraph::Freeze(graph);
  for (EntityId e = 0; e < graph.num_entities(); ++e) {
    for (RelTypeId r = 0; r < graph.num_rel_types(); ++r) {
      for (Direction d : {Direction::kOutgoing, Direction::kIncoming}) {
        EXPECT_EQ(frozen.NeighborSet(e, r, d), graph.NeighborSet(e, r, d))
            << "entity " << e << " rel " << r;
      }
    }
  }
}

TEST(FrozenGraphTest, NeighborSetsMatchOnGeneratedDomain) {
  GeneratorOptions options;
  options.scale = 0.0003;
  auto domain = GenerateDomainByName("people", options);
  ASSERT_TRUE(domain.ok());
  const FrozenGraph frozen = FrozenGraph::Freeze(domain->graph);
  // Spot-check a deterministic sample of (entity, rel type) pairs.
  for (EntityId e = 0; e < domain->graph.num_entities(); e += 97) {
    for (RelTypeId r = 0; r < domain->graph.num_rel_types(); r += 7) {
      for (Direction d : {Direction::kOutgoing, Direction::kIncoming}) {
        EXPECT_EQ(frozen.NeighborSet(e, r, d),
                  domain->graph.NeighborSet(e, r, d));
      }
    }
  }
}

TEST(FrozenGraphTest, MemoryAccountingIsPlausible) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const FrozenGraph frozen = FrozenGraph::Freeze(graph);
  // Two arc arrays + two offset arrays; arcs are 8 bytes each.
  const size_t lower_bound =
      2 * graph.num_edges() * sizeof(FrozenGraph::Arc) +
      2 * (graph.num_entities() + 1) * sizeof(uint64_t);
  EXPECT_GE(frozen.MemoryBytes(), lower_bound);
  EXPECT_LT(frozen.MemoryBytes(), 4 * lower_bound);
}

TEST(FrozenGraphTest, EmptyAdjacency) {
  EntityGraphBuilder b;
  b.AddTypedEntity("lonely", "T");
  auto graph = b.Build();
  ASSERT_TRUE(graph.ok());
  const FrozenGraph frozen = FrozenGraph::Freeze(*graph);
  EXPECT_TRUE(frozen.OutArcs(0).empty());
  EXPECT_TRUE(frozen.InArcs(0).empty());
  EXPECT_TRUE(frozen.NeighborSet(0, 0, Direction::kOutgoing).empty());
}

}  // namespace
}  // namespace egp
