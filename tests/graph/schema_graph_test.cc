#include "graph/schema_graph.h"

#include <gtest/gtest.h>

#include "datagen/paper_example.h"
#include "graph/entity_graph_builder.h"

namespace egp {
namespace {

TEST(SchemaGraphTest, DerivedFromPaperExample) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  // Fig. 3: 6 entity types, 7 relationship types.
  EXPECT_EQ(schema.num_types(), 6u);
  EXPECT_EQ(schema.num_edges(), 7u);
}

TEST(SchemaGraphTest, EntityCountsCarryOver) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  const TypeId film = *schema.type_names().Find("FILM");
  const TypeId award = *schema.type_names().Find("AWARD");
  EXPECT_EQ(schema.TypeEntityCount(film), 4u);   // S_cov(FILM) = 4
  EXPECT_EQ(schema.TypeEntityCount(award), 3u);
}

TEST(SchemaGraphTest, PairWeightsMatchPaper) {
  // §3.2 worked example: w(FILM, GENRE)=5, w(FILM, ACTOR)=6,
  // w(FILM, DIRECTOR)=4, w(FILM, PRODUCER)=3.
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  const TypeId film = *schema.type_names().Find("FILM");
  const TypeId genre = *schema.type_names().Find("FILM GENRE");
  const TypeId actor = *schema.type_names().Find("FILM ACTOR");
  const TypeId director = *schema.type_names().Find("FILM DIRECTOR");
  const TypeId producer = *schema.type_names().Find("FILM PRODUCER");
  EXPECT_EQ(schema.PairWeight(film, genre), 5u);
  EXPECT_EQ(schema.PairWeight(film, actor), 6u);
  EXPECT_EQ(schema.PairWeight(film, director), 4u);
  EXPECT_EQ(schema.PairWeight(film, producer), 3u);
  // Symmetry.
  EXPECT_EQ(schema.PairWeight(genre, film), 5u);
  // Unrelated pair.
  const TypeId award = *schema.type_names().Find("AWARD");
  EXPECT_EQ(schema.PairWeight(genre, award), 0u);
}

TEST(SchemaGraphTest, EdgeCountIsRelationshipSupport) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  uint64_t genres_count = 0;
  for (const SchemaEdge& e : schema.edges()) {
    if (schema.SurfaceName(e) == "Genres") genres_count = e.edge_count;
  }
  EXPECT_EQ(genres_count, 5u);  // S_cov^FILM(Genres) = 5
}

TEST(SchemaGraphTest, IncidentEdgesBothDirections) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  const TypeId film = *schema.type_names().Find("FILM");
  // FILM touches Actor, Director, Genres, Producer, Executive Producer.
  EXPECT_EQ(schema.IncidentEdges(film).size(), 5u);
  const TypeId award = *schema.type_names().Find("AWARD");
  // Two distinct Award Winners relationship types.
  EXPECT_EQ(schema.IncidentEdges(award).size(), 2u);
}

TEST(SchemaGraphTest, NeighborTypesDeduplicated) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  const TypeId film = *schema.type_names().Find("FILM");
  // Producer + Executive Producer both connect to FILM PRODUCER: the
  // neighbour list still names it once.
  const auto neighbors = schema.NeighborTypes(film);
  EXPECT_EQ(neighbors.size(), 4u);
}

TEST(SchemaGraphTest, RelTypeMappingPreserved) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  for (uint32_t i = 0; i < schema.num_edges(); ++i) {
    const RelTypeId rel = schema.RelTypeOfEdge(i);
    ASSERT_NE(rel, kInvalidId);
    const SchemaEdge& e = schema.Edge(i);
    EXPECT_EQ(graph.RelType(rel).src_type, e.src);
    EXPECT_EQ(graph.RelType(rel).dst_type, e.dst);
    EXPECT_EQ(graph.EdgesOfRelType(rel).size(), e.edge_count);
  }
}

TEST(SchemaGraphTest, DirectConstruction) {
  SchemaGraph schema;
  const TypeId a = schema.AddType("A", 10);
  const TypeId b = schema.AddType("B", 20);
  const uint32_t e1 = schema.AddEdge("r1", a, b, 7);
  const uint32_t e2 = schema.AddEdge("r2", a, b, 3);  // parallel edge
  EXPECT_EQ(schema.num_types(), 2u);
  EXPECT_EQ(schema.num_edges(), 2u);
  EXPECT_EQ(schema.PairWeight(a, b), 10u);
  EXPECT_EQ(schema.RelTypeOfEdge(e1), kInvalidId);
  EXPECT_EQ(schema.Edge(e2).edge_count, 3u);
}

TEST(SchemaGraphTest, SelfLoopIncidentOnce) {
  SchemaGraph schema;
  const TypeId a = schema.AddType("A", 5);
  schema.AddEdge("next", a, a, 4);
  EXPECT_EQ(schema.IncidentEdges(a).size(), 1u);
  EXPECT_TRUE(schema.NeighborTypes(a).empty());
  EXPECT_EQ(schema.PairWeight(a, a), 4u);
}

TEST(SchemaGraphTest, UnusedRelationshipTypeExcluded) {
  // §2: γ ∈ Es iff a data edge of that type exists.
  EntityGraphBuilder b;
  const TypeId t1 = b.AddEntityType("A");
  const TypeId t2 = b.AddEntityType("B");
  b.AddRelationshipType("unused", t1, t2);
  const RelTypeId used = b.AddRelationshipType("used", t1, t2);
  const EntityId x = b.AddEntity("x");
  const EntityId y = b.AddEntity("y");
  b.AddEntityToType(x, t1);
  b.AddEntityToType(y, t2);
  ASSERT_TRUE(b.AddEdge(x, used, y).ok());
  auto graph = b.Build();
  ASSERT_TRUE(graph.ok());
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(*graph);
  EXPECT_EQ(schema.num_edges(), 1u);
  EXPECT_EQ(schema.SurfaceName(schema.Edge(0)), "used");
}

}  // namespace
}  // namespace egp
