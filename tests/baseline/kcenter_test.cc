#include "baseline/kcenter.h"

#include <gtest/gtest.h>

namespace egp {
namespace {

/// Distance matrix for points on a line at the given coordinates.
std::vector<double> LineDistances(const std::vector<double>& coords) {
  const size_t n = coords.size();
  std::vector<double> dist(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      dist[i * n + j] = std::abs(coords[i] - coords[j]);
    }
  }
  return dist;
}

TEST(KCenterTest, SeedIsMostImportant) {
  const auto dist = LineDistances({0, 1, 2, 3});
  const std::vector<double> weight = {1, 5, 1, 1};
  const auto result = WeightedKCenter(dist, weight, 4, 2);
  ASSERT_GE(result.centers.size(), 1u);
  EXPECT_EQ(result.centers[0], 1u);
}

TEST(KCenterTest, TwoClustersOnALine) {
  // Points {0, 1} and {10, 11}: with k=2 the second centre must come from
  // the far group.
  const auto dist = LineDistances({0, 1, 10, 11});
  const std::vector<double> weight = {2, 1, 1, 1};
  const auto result = WeightedKCenter(dist, weight, 4, 2);
  ASSERT_EQ(result.centers.size(), 2u);
  EXPECT_EQ(result.centers[0], 0u);
  EXPECT_TRUE(result.centers[1] == 2u || result.centers[1] == 3u);
  // Assignment respects proximity.
  EXPECT_EQ(result.cluster_of[0], 0u);
  EXPECT_EQ(result.cluster_of[1], 0u);
  EXPECT_EQ(result.cluster_of[2], 1u);
  EXPECT_EQ(result.cluster_of[3], 1u);
}

TEST(KCenterTest, WeightsBreakDistanceTies) {
  // Two candidates equally far from the seed; the heavier one wins the
  // second centre slot.
  const auto dist = LineDistances({0, 5, -5});
  const std::vector<double> weight = {10, 1, 3};
  const auto result = WeightedKCenter(dist, weight, 3, 2);
  ASSERT_EQ(result.centers.size(), 2u);
  EXPECT_EQ(result.centers[1], 2u);
}

TEST(KCenterTest, KLargerThanItems) {
  const auto dist = LineDistances({0, 1});
  const std::vector<double> weight = {1, 1};
  const auto result = WeightedKCenter(dist, weight, 2, 5);
  EXPECT_EQ(result.centers.size(), 2u);
}

TEST(KCenterTest, EveryItemAssignedToNearestCenter) {
  const auto dist = LineDistances({0, 2, 4, 6, 8, 10});
  const std::vector<double> weight = {1, 1, 1, 1, 1, 6};
  const auto result = WeightedKCenter(dist, weight, 6, 3);
  for (size_t i = 0; i < 6; ++i) {
    const TypeId assigned = result.centers[result.cluster_of[i]];
    for (const TypeId center : result.centers) {
      EXPECT_LE(dist[assigned * 6 + i], dist[center * 6 + i] + 1e-12);
    }
  }
}

TEST(KCenterTest, SingleItem) {
  const auto result = WeightedKCenter({0.0}, {1.0}, 1, 1);
  ASSERT_EQ(result.centers.size(), 1u);
  EXPECT_EQ(result.centers[0], 0u);
  EXPECT_EQ(result.cluster_of[0], 0u);
}

}  // namespace
}  // namespace egp
