#include "baseline/table_importance.h"

#include <gtest/gtest.h>

#include <numeric>

#include "datagen/paper_example.h"
#include "graph/entity_graph_builder.h"

namespace egp {
namespace {

TEST(TableImportanceTest, SumsToOne) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  const auto tables = BuildRelationalView(graph, schema);
  const auto importance = ComputeTableImportance(tables, schema);
  EXPECT_NEAR(std::accumulate(importance.begin(), importance.end(), 0.0),
              1.0, 1e-9);
  for (double i : importance) EXPECT_GT(i, 0.0);
}

TEST(TableImportanceTest, HubTableIsMostImportant) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  const auto tables = BuildRelationalView(graph, schema);
  const auto importance = ComputeTableImportance(tables, schema);
  const TypeId film = *schema.type_names().Find("FILM");
  for (TypeId t = 0; t < schema.num_types(); ++t) {
    if (t == film) continue;
    EXPECT_GT(importance[film], importance[t]);
  }
}

TEST(TableImportanceTest, RankingIsDescending) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  const auto tables = BuildRelationalView(graph, schema);
  const auto importance = ComputeTableImportance(tables, schema);
  const auto ranked = RankByImportance(importance);
  ASSERT_EQ(ranked.size(), importance.size());
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(importance[ranked[i - 1]], importance[ranked[i]]);
  }
}

TEST(TableImportanceTest, DisconnectedTablesStillScored) {
  EntityGraphBuilder b;
  const TypeId a = b.AddEntityType("A");
  const TypeId bt = b.AddEntityType("B");
  const TypeId lonely = b.AddEntityType("LONELY");
  const RelTypeId rel = b.AddRelationshipType("r", a, bt);
  const EntityId x = b.AddEntity("x");
  const EntityId y = b.AddEntity("y");
  b.AddEntity("z");
  b.AddEntityToType(x, a);
  b.AddEntityToType(y, bt);
  b.AddEntityToType(2, lonely);
  ASSERT_TRUE(b.AddEdge(x, rel, y).ok());
  auto graph = b.Build();
  ASSERT_TRUE(graph.ok());
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(*graph);
  const auto tables = BuildRelationalView(*graph, schema);
  const auto importance = ComputeTableImportance(tables, schema);
  EXPECT_GT(importance[lonely], 0.0);  // restart mass keeps it positive
  EXPECT_NEAR(std::accumulate(importance.begin(), importance.end(), 0.0),
              1.0, 1e-9);
}

TEST(TableImportanceTest, RichTablesBeatPoorOnes) {
  // Two symmetric joins; the table with higher information content (more
  // rows) should receive more importance.
  EntityGraphBuilder b;
  const TypeId big = b.AddEntityType("BIG");
  const TypeId mid = b.AddEntityType("MID");
  const TypeId small = b.AddEntityType("SMALL");
  const RelTypeId r1 = b.AddRelationshipType("r1", big, mid);
  const RelTypeId r2 = b.AddRelationshipType("r2", small, mid);
  const EntityId hubm = b.AddEntity("m");
  b.AddEntityToType(hubm, mid);
  for (int i = 0; i < 20; ++i) {
    const EntityId e = b.AddEntity("big" + std::to_string(i));
    b.AddEntityToType(e, big);
    ASSERT_TRUE(b.AddEdge(e, r1, hubm).ok());
  }
  const EntityId s = b.AddEntity("s0");
  b.AddEntityToType(s, small);
  ASSERT_TRUE(b.AddEdge(s, r2, hubm).ok());
  auto graph = b.Build();
  ASSERT_TRUE(graph.ok());
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(*graph);
  const auto tables = BuildRelationalView(*graph, schema);
  const auto importance = ComputeTableImportance(tables, schema);
  EXPECT_GT(importance[big], importance[small]);
}

}  // namespace
}  // namespace egp
