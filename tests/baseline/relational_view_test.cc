#include "baseline/relational_view.h"

#include <gtest/gtest.h>

#include <cmath>

#include "datagen/paper_example.h"
#include "graph/entity_graph_builder.h"

namespace egp {
namespace {

class RelationalViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = BuildPaperExampleGraph();
    schema_ = SchemaGraph::FromEntityGraph(graph_);
    tables_ = BuildRelationalView(graph_, schema_);
  }

  const RelationalTable& TableOf(std::string_view name) const {
    const TypeId t = *schema_.type_names().Find(name);
    return tables_[t];
  }

  EntityGraph graph_;
  SchemaGraph schema_;
  std::vector<RelationalTable> tables_;
};

TEST_F(RelationalViewTest, OneTablePerType) {
  EXPECT_EQ(tables_.size(), schema_.num_types());
  for (TypeId t = 0; t < schema_.num_types(); ++t) {
    EXPECT_EQ(tables_[t].type, t);
    EXPECT_EQ(tables_[t].name, schema_.TypeName(t));
  }
}

TEST_F(RelationalViewTest, ColumnsCoverIncidentRelTypes) {
  // FILM: Actor(in), Director(in), Genres(out), Producer(in), Exec(in).
  EXPECT_EQ(TableOf("FILM").columns.size(), 5u);
  // AWARD: two Award Winners columns (incoming).
  EXPECT_EQ(TableOf("AWARD").columns.size(), 2u);
}

TEST_F(RelationalViewTest, BaseRowsAreEntityCounts) {
  EXPECT_EQ(TableOf("FILM").base_rows, 4u);
  EXPECT_EQ(TableOf("FILM PRODUCER").base_rows, 1u);
}

TEST_F(RelationalViewTest, ColumnEntropyReflectsValueSkew) {
  // The FILM table's Director column values: {Barry:2, Peter:1, Alex:1}
  // → H2 = 1.5 bits.
  const RelationalTable& film = TableOf("FILM");
  const RelationalColumn* director = nullptr;
  for (const RelationalColumn& c : film.columns) {
    if (c.name == "Director") director = &c;
  }
  ASSERT_NE(director, nullptr);
  EXPECT_NEAR(director->entropy, 1.5, 1e-9);
  EXPECT_EQ(director->distinct_values, 3u);
  EXPECT_EQ(director->value_occurrences, 4u);
}

TEST_F(RelationalViewTest, InformationContentIncludesKeyColumn) {
  // IC ≥ log2(rows): the key column alone contributes log2(4) = 2 bits
  // for FILM.
  EXPECT_GE(TableOf("FILM").information_content, 2.0);
}

TEST_F(RelationalViewTest, IsolatedTypeHasNoColumns) {
  SchemaGraph schema;
  schema.AddType("LONELY", 10);
  EntityGraphBuilder b;
  b.AddTypedEntity("x", "LONELY");
  auto graph = b.Build();
  ASSERT_TRUE(graph.ok());
  const auto tables = BuildRelationalView(*graph, schema);
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_TRUE(tables[0].columns.empty());
  EXPECT_NEAR(tables[0].information_content, std::log2(10.0), 1e-9);
}

TEST_F(RelationalViewTest, SelfLoopYieldsTwoColumns) {
  EntityGraphBuilder b;
  const TypeId ep = b.AddEntityType("EPISODE");
  const RelTypeId next = b.AddRelationshipType("Next", ep, ep);
  const EntityId e1 = b.AddEntity("e1");
  const EntityId e2 = b.AddEntity("e2");
  b.AddEntityToType(e1, ep);
  b.AddEntityToType(e2, ep);
  ASSERT_TRUE(b.AddEdge(e1, next, e2).ok());
  auto graph = b.Build();
  ASSERT_TRUE(graph.ok());
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(*graph);
  const auto tables = BuildRelationalView(*graph, schema);
  EXPECT_EQ(tables[0].columns.size(), 2u);  // Next (out) + Next (in)
}

}  // namespace
}  // namespace egp
