#include "baseline/yps09.h"

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "datagen/paper_example.h"
#include "graph/entity_graph_builder.h"

namespace egp {
namespace {

TEST(Yps09Test, RunsOnPaperExample) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  Yps09Options options;
  options.num_clusters = 2;
  const auto summary = RunYps09(graph, schema, options);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->tables.size(), 6u);
  EXPECT_EQ(summary->ranked.size(), 6u);
  EXPECT_EQ(summary->clustering.centers.size(), 2u);
  // FILM is the hub: it should lead the ranking and seed the clustering.
  const TypeId film = *schema.type_names().Find("FILM");
  EXPECT_EQ(summary->ranked[0], film);
  EXPECT_EQ(summary->clustering.centers[0], film);
}

TEST(Yps09Test, ClusterAssignmentsCoverAllTypes) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  const auto summary = RunYps09(graph, schema, Yps09Options{});
  ASSERT_TRUE(summary.ok());
  ASSERT_EQ(summary->clustering.cluster_of.size(), schema.num_types());
  for (uint32_t cluster : summary->clustering.cluster_of) {
    EXPECT_LT(cluster, summary->clustering.centers.size());
  }
}

TEST(Yps09Test, WorksOnGeneratedDomain) {
  GeneratorOptions options;
  options.scale = 0.0002;  // tiny for test speed
  auto domain = GenerateDomainByName("people", options);
  ASSERT_TRUE(domain.ok()) << domain.status().ToString();
  const auto summary = RunYps09(domain->graph, domain->schema, Yps09Options{});
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->ranked.size(), domain->schema.num_types());
  // Importance is a distribution.
  double total = 0.0;
  for (double i : summary->importance) total += i;
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(Yps09Test, EmptySchemaRejected) {
  EntityGraphBuilder b;
  b.AddTypedEntity("x", "T");
  auto graph = b.Build();
  ASSERT_TRUE(graph.ok());
  SchemaGraph empty;
  EXPECT_FALSE(RunYps09(*graph, empty, Yps09Options{}).ok());
}

}  // namespace
}  // namespace egp
