// MUST NOT COMPILE under -Wthread-safety -Werror: reads and writes a
// guarded field without holding its mutex. The matching
// *_is_tsa_specific test proves this is valid C++ otherwise.
#include "common/mutex.h"

namespace {

class Counter {
 public:
  // No lock taken, no EGP_REQUIRES: the analysis must reject both the
  // write and the read of value_.
  void Increment() { ++value_; }
  int Value() const { return value_; }

 private:
  mutable egp::Mutex mu_;
  int value_ EGP_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.Value();
}
