// MUST NOT COMPILE under -Wthread-safety -Werror: releases a mutex
// through a helper that is not annotated EGP_RELEASE, so the analysis
// sees the capability still held at scope exit (and a double-unlock at
// the explicit Unlock call). The matching *_is_tsa_specific test proves
// this is valid C++ otherwise.
#include "common/mutex.h"

namespace {

class Widget {
 public:
  void Poke() EGP_EXCLUDES(mu_) {
    mu_.Lock();
    ++value_;
    SneakyUnlock();  // analysis: mu_ still held here...
    mu_.Unlock();    // ...so this is releasing a lock twice
  }

 private:
  // Missing EGP_RELEASE(mu_): the unlock is invisible to the analysis.
  void SneakyUnlock() { mu_.Unlock(); }

  egp::Mutex mu_;
  int value_ EGP_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Widget widget;
  widget.Poke();
  return 0;
}
