// Positive control for the negative-compilation suite: idiomatic use of
// egp::Mutex / MutexLock / CondVar that must compile cleanly under
// -Wthread-safety -Werror. If this file fails, the sibling WILL_FAIL
// tests are meaningless (everything would "fail").
#include "common/mutex.h"

namespace {

class Counter {
 public:
  void Increment() EGP_EXCLUDES(mu_) {
    egp::MutexLock lock(&mu_);
    ++value_;
    changed_.NotifyAll();
  }

  int WaitForAtLeast(int target) EGP_EXCLUDES(mu_) {
    egp::MutexLock lock(&mu_);
    while (value_ < target) changed_.Wait(mu_);
    return value_;
  }

  int ValueLocked() const EGP_REQUIRES(mu_) { return value_; }

  int Value() const EGP_EXCLUDES(mu_) {
    egp::MutexLock lock(&mu_);
    return ValueLocked();
  }

 private:
  mutable egp::Mutex mu_;
  egp::CondVar changed_;
  int value_ EGP_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.Value() == 1 ? 0 : 1;
}
