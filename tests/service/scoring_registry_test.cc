// ScoringRegistry: built-in measures, user registration, lookup errors,
// and the name-based PreparedSchema::Create path.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/candidates.h"
#include "core/scoring_registry.h"
#include "datagen/paper_example.h"

namespace egp {

/// Grants tests a private registry instance (the public entry point is the
/// process-wide Global()).
class ScoringRegistryTestPeer {
 public:
  ScoringRegistry registry;
};

namespace {

bool Contains(const std::vector<std::string>& names, const char* name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

TEST(ScoringRegistryTest, BuiltInsArePreRegistered) {
  ScoringRegistryTestPeer peer;
  EXPECT_TRUE(Contains(peer.registry.KeyMeasureNames(), "coverage"));
  EXPECT_TRUE(Contains(peer.registry.KeyMeasureNames(), "randomwalk"));
  EXPECT_TRUE(Contains(peer.registry.NonKeyMeasureNames(), "coverage"));
  EXPECT_TRUE(Contains(peer.registry.NonKeyMeasureNames(), "entropy"));
  EXPECT_TRUE(peer.registry.HasKeyMeasure("coverage"));
  EXPECT_FALSE(peer.registry.HasKeyMeasure("entropy"));  // non-key only
}

TEST(ScoringRegistryTest, BuiltInScorersMatchTheDirectFunctions) {
  ScoringRegistryTestPeer peer;
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  const ScoringContext context{schema, &graph, RandomWalkOptions{}};

  auto coverage = peer.registry.FindKeyMeasure("coverage");
  ASSERT_TRUE(coverage.ok());
  const auto scores = (*coverage)(context);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(*scores, ComputeKeyCoverage(schema));

  auto entropy = peer.registry.FindNonKeyMeasure("entropy");
  ASSERT_TRUE(entropy.ok());
  const auto nonkey = (*entropy)(context);
  ASSERT_TRUE(nonkey.ok());
  const auto direct = ComputeNonKeyEntropy(graph, schema);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(nonkey->outgoing, direct->outgoing);
  EXPECT_EQ(nonkey->incoming, direct->incoming);
}

TEST(ScoringRegistryTest, EntropyWithoutTheDataGraphFails) {
  ScoringRegistryTestPeer peer;
  const SchemaGraph schema =
      SchemaGraph::FromEntityGraph(BuildPaperExampleGraph());
  const ScoringContext context{schema, nullptr, RandomWalkOptions{}};
  auto entropy = peer.registry.FindNonKeyMeasure("entropy");
  ASSERT_TRUE(entropy.ok());
  const auto scores = (*entropy)(context);
  ASSERT_FALSE(scores.ok());
  EXPECT_EQ(scores.status().code(), StatusCode::kInvalidArgument);
}

TEST(ScoringRegistryTest, LookupOfUnknownMeasureListsWhatExists) {
  ScoringRegistryTestPeer peer;
  const auto missing = peer.registry.FindKeyMeasure("pagerank");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_NE(missing.status().message().find("coverage"), std::string::npos);
  EXPECT_NE(missing.status().message().find("randomwalk"),
            std::string::npos);
}

TEST(ScoringRegistryTest, RegistrationRejectsDuplicatesAndEmpties) {
  ScoringRegistryTestPeer peer;
  const auto constant = [](const ScoringContext& context) {
    return Result<std::vector<double>>(
        std::vector<double>(context.schema.num_types(), 1.0));
  };
  EXPECT_TRUE(peer.registry.RegisterKeyMeasure("uniform", constant).ok());
  const Status duplicate =
      peer.registry.RegisterKeyMeasure("uniform", constant);
  EXPECT_EQ(duplicate.code(), StatusCode::kAlreadyExists);
  const Status builtin =
      peer.registry.RegisterKeyMeasure("coverage", constant);
  EXPECT_EQ(builtin.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(peer.registry.RegisterKeyMeasure("", constant).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(peer.registry.RegisterKeyMeasure("x", nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(ScoringRegistryTest, GlobalRegistrationFlowsIntoPreparedSchema) {
  // Registered through the global registry, usable by name in
  // MeasureSelection — and a wrong-sized score vector is rejected.
  ASSERT_TRUE(ScoringRegistry::Global()
                  .RegisterNonKeyMeasure(
                      "registry-test-halves",
                      [](const ScoringContext& context) {
                        NonKeyScores scores;
                        scores.outgoing.assign(context.schema.num_edges(),
                                               0.5);
                        scores.incoming.assign(context.schema.num_edges(),
                                               0.5);
                        return Result<NonKeyScores>(std::move(scores));
                      })
                  .ok());
  const SchemaGraph schema =
      SchemaGraph::FromEntityGraph(BuildPaperExampleGraph());
  MeasureSelection measures;
  measures.nonkey = "registry-test-halves";
  const auto prepared = PreparedSchema::Create(schema, measures);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared->measures().nonkey, "registry-test-halves");
  // Every candidate scored 0.5: the best 2-attribute table of any type
  // scores S(τ) * 1.0.
  for (TypeId t = 0; t < prepared->num_types(); ++t) {
    if (prepared->Candidates(t).size() >= 2) {
      EXPECT_DOUBLE_EQ(prepared->TableScore(t, 2),
                       prepared->KeyScore(t) * 1.0);
    }
  }

  ASSERT_TRUE(ScoringRegistry::Global()
                  .RegisterKeyMeasure(
                      "registry-test-broken",
                      [](const ScoringContext&) {
                        return Result<std::vector<double>>(
                            std::vector<double>{1.0});  // wrong size
                      })
                  .ok());
  MeasureSelection broken;
  broken.key = "registry-test-broken";
  const auto invalid = PreparedSchema::Create(schema, broken);
  ASSERT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.status().code(), StatusCode::kInternal);
}

TEST(ScoringRegistryTest, EnumCreatePathUsesRegistryNames) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  PreparedSchemaOptions options;
  options.key_measure = KeyMeasure::kRandomWalk;
  options.nonkey_measure = NonKeyMeasure::kEntropy;
  const auto prepared = PreparedSchema::Create(schema, options, &graph);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->measures().key, "randomwalk");
  EXPECT_EQ(prepared->measures().nonkey, "entropy");
  EXPECT_EQ(prepared->options().key_measure, KeyMeasure::kRandomWalk);
  EXPECT_EQ(prepared->options().nonkey_measure, NonKeyMeasure::kEntropy);
}

}  // namespace
}  // namespace egp
