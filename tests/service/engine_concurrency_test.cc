// Engine concurrency: many threads issuing mixed requests against one
// Engine must produce exactly the results the single-threaded internal
// layer (PreparedSchema::Create + PreviewDiscoverer) produces, with no
// data races. Run under ASan/UBSan in the sanitize CI job and under
// ThreadSanitizer in the tsan job (EGP_SANITIZE=thread).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/beam_search.h"
#include "core/discoverer.h"
#include "datagen/generator.h"
#include "datagen/paper_example.h"
#include "service/engine.h"

namespace egp {
namespace {

struct RequestCase {
  PreviewRequest request;
  double golden_score = 0.0;
  std::string label;
};

/// Computes the golden score for one request the single-threaded way,
/// through the internal layer the Engine wraps.
double GoldenScore(const EntityGraph& graph, const PreviewRequest& request) {
  PreparedSchemaOptions options;
  options.key_measure = request.measures.key == "randomwalk"
                            ? KeyMeasure::kRandomWalk
                            : KeyMeasure::kCoverage;
  options.nonkey_measure = request.measures.nonkey == "entropy"
                               ? NonKeyMeasure::kEntropy
                               : NonKeyMeasure::kCoverage;
  auto prepared = PreparedSchema::Create(SchemaGraph::FromEntityGraph(graph),
                                         options, &graph);
  EXPECT_TRUE(prepared.ok()) << prepared.status().ToString();
  if (request.algorithm == "beam") {
    const auto preview = BeamSearchDiscover(*prepared, request.size,
                                            request.distance);
    EXPECT_TRUE(preview.ok());
    return preview->Score(*prepared);
  }
  PreviewDiscoverer discoverer(std::move(prepared).value());
  DiscoveryOptions discovery;
  discovery.size = request.size;
  discovery.distance = request.distance;
  if (request.algorithm == "bf") {
    discovery.algorithm = Algorithm::kBruteForce;
  } else if (request.algorithm == "apriori") {
    discovery.algorithm = Algorithm::kApriori;
  }
  const auto preview = discoverer.Discover(discovery);
  EXPECT_TRUE(preview.ok()) << preview.status().ToString();
  return preview->Score(discoverer.prepared());
}

/// The mixed request matrix: sizes × distance constraints × measures ×
/// algorithms, all combinations that are valid on the paper example.
std::vector<RequestCase> BuildCases(const EntityGraph& graph) {
  std::vector<RequestCase> cases;
  const std::pair<const char*, const char*> measure_pairs[] = {
      {"coverage", "coverage"},
      {"randomwalk", "coverage"},
      {"coverage", "entropy"},
      {"randomwalk", "entropy"},
  };
  for (const auto& [km, nm] : measure_pairs) {
    for (const SizeConstraint size :
         {SizeConstraint{2, 6}, SizeConstraint{3, 7}}) {
      for (const DistanceConstraint distance :
           {DistanceConstraint::None(), DistanceConstraint::Tight(2),
            DistanceConstraint::Diverse(2)}) {
        for (const char* algorithm : {"auto", "bf", "beam"}) {
          RequestCase c;
          c.request.size = size;
          c.request.distance = distance;
          c.request.measures.key = km;
          c.request.measures.nonkey = nm;
          c.request.algorithm = algorithm;
          c.golden_score = GoldenScore(graph, c.request);
          c.label = std::string(km) + "/" + nm + " k" +
                    std::to_string(size.k) + "n" + std::to_string(size.n) +
                    " d" + std::to_string(static_cast<int>(distance.mode)) +
                    " " + algorithm;
          cases.push_back(std::move(c));
        }
      }
    }
  }
  return cases;
}

TEST(EngineConcurrencyTest, MixedRequestsMatchSingleThreadedGoldens) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const std::vector<RequestCase> cases = BuildCases(graph);
  ASSERT_FALSE(cases.empty());

  const Engine engine = Engine::FromGraph(BuildPaperExampleGraph());
  constexpr int kThreads = 8;
  constexpr int kRounds = 5;

  // Threads collect their own failures; asserting happens after join so
  // the test body stays free of cross-thread GoogleTest state.
  std::vector<std::vector<std::string>> failures(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Each thread walks the case list from its own offset so the
        // interleaving differs across threads.
        for (size_t i = 0; i < cases.size(); ++i) {
          const RequestCase& c =
              cases[(i + static_cast<size_t>(t) * 7) % cases.size()];
          const auto response = engine.Preview(c.request);
          if (!response.ok()) {
            failures[t].push_back(c.label + ": " +
                                  response.status().ToString());
            continue;
          }
          if (response->score != c.golden_score) {
            failures[t].push_back(
                c.label + ": score " + std::to_string(response->score) +
                " != golden " + std::to_string(c.golden_score));
          }
          const Status valid =
              ValidatePreview(response->preview, *response->prepared,
                              response->size, response->distance);
          if (!valid.ok()) {
            failures[t].push_back(c.label + ": " + valid.ToString());
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    for (const std::string& failure : failures[t]) {
      ADD_FAILURE() << "thread " << t << ": " << failure;
    }
  }

  // Four measure configurations were in play; every other request hit.
  const Engine::CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.hits,
            static_cast<uint64_t>(kThreads) * kRounds * cases.size() -
                stats.misses);
}

TEST(EngineConcurrencyTest, ConcurrentSuggestAndPreparedAreSafe) {
  GeneratorOptions options;
  options.scale = 0.0003;
  auto domain = GenerateDomainByName("music", options);
  ASSERT_TRUE(domain.ok());
  const Engine engine = Engine::FromGraph(std::move(domain->graph));

  constexpr int kThreads = 6;
  std::vector<int> errors(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        switch ((t + i) % 3) {
          case 0: {
            DisplayBudget budget;
            budget.width_chars = 80 + 10 * (i % 4);
            if (!engine.Suggest(budget).ok()) ++errors[t];
            break;
          }
          case 1: {
            MeasureSelection measures;
            measures.key = (i % 2) == 0 ? "coverage" : "randomwalk";
            if (!engine.Prepared(measures).ok()) ++errors[t];
            break;
          }
          default: {
            PreviewRequest request;
            request.size = {2, 5};
            request.sample_rows = 2;
            request.sample_seed = static_cast<uint64_t>(i);
            if (!engine.Preview(request).ok()) ++errors[t];
            break;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(errors[t], 0) << t;
}

}  // namespace
}  // namespace egp
