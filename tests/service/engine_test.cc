// egp::Engine request/response behaviour: constraint resolution, measure
// selection by name, algorithm dispatch, prepared-state memoization, and
// the schema-only serving mode.
#include <gtest/gtest.h>

#include "datagen/paper_example.h"
#include "service/engine.h"

namespace egp {
namespace {

Engine PaperEngine() { return Engine::FromGraph(BuildPaperExampleGraph()); }

TEST(EngineTest, ServesThePaperExample) {
  const Engine engine = PaperEngine();
  PreviewRequest request;
  request.size = {2, 6};
  request.sample_rows = 4;
  const auto response = engine.Preview(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_DOUBLE_EQ(response->score, 84.0);  // §4's worked optimum
  EXPECT_EQ(response->algorithm, "dp");     // auto resolves to DP (concise)
  EXPECT_EQ(response->size.k, 2u);
  EXPECT_EQ(response->size.n, 6u);
  EXPECT_TRUE(response->rationale.empty());
  ASSERT_NE(response->prepared, nullptr);
  EXPECT_TRUE(ValidatePreview(response->preview, *response->prepared,
                              response->size, response->distance)
                  .ok());
  EXPECT_EQ(response->materialized.tables.size(),
            response->preview.tables.size());
  EXPECT_GE(response->prepare_seconds, 0.0);
  EXPECT_GE(response->discover_seconds, 0.0);
}

TEST(EngineTest, SampleRowsZeroSkipsMaterialization) {
  const Engine engine = PaperEngine();
  PreviewRequest request;
  request.size = {2, 6};
  const auto response = engine.Preview(request);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->materialized.tables.empty());
  EXPECT_EQ(response->sample_seconds, 0.0);
}

TEST(EngineTest, SecondRequestWithSameMeasuresSkipsRescoring) {
  // The acceptance shape of the memoization: same measure configuration,
  // different (k, n) — the expensive scored-candidate state is reused.
  const Engine engine = PaperEngine();
  PreviewRequest first;
  first.size = {2, 6};
  const auto a = engine.Preview(first);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(a->prepared_cache_hit);

  PreviewRequest second;
  second.size = {3, 4};
  second.distance = DistanceConstraint::Tight(2);
  const auto b = engine.Preview(second);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->prepared_cache_hit);
  EXPECT_EQ(a->prepared.get(), b->prepared.get());  // literally shared

  const Engine::CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(EngineTest, DifferentMeasureConfigurationsGetOwnEntries) {
  const Engine engine = PaperEngine();
  PreviewRequest request;
  request.size = {2, 6};
  ASSERT_TRUE(engine.Preview(request).ok());
  request.measures.key = "randomwalk";
  const auto rw = engine.Preview(request);
  ASSERT_TRUE(rw.ok());
  EXPECT_FALSE(rw->prepared_cache_hit);
  // Same measure name but different walk parameters is a different
  // configuration as well.
  request.measures.walk.smoothing = 1e-3;
  const auto smoothed = engine.Preview(request);
  ASSERT_TRUE(smoothed.ok());
  EXPECT_FALSE(smoothed->prepared_cache_hit);
  EXPECT_EQ(engine.cache_stats().entries, 3u);
}

TEST(EngineTest, CacheCapacityEvictsLeastRecentlyUsed) {
  EngineOptions options;
  options.prepared_cache_capacity = 2;
  const Engine engine =
      Engine::FromGraph(BuildPaperExampleGraph(), options);
  PreviewRequest a;
  a.size = {2, 6};
  PreviewRequest b = a;
  b.measures.key = "randomwalk";
  PreviewRequest c = a;
  c.measures.nonkey = "entropy";

  ASSERT_TRUE(engine.Preview(a).ok());
  ASSERT_TRUE(engine.Preview(b).ok());
  EXPECT_EQ(engine.cache_stats().evictions, 0u);  // still within capacity
  ASSERT_TRUE(engine.Preview(a).ok());  // touch a: b is now the LRU
  ASSERT_TRUE(engine.Preview(c).ok());  // at capacity: evicts b
  EXPECT_EQ(engine.cache_stats().entries, 2u);
  EXPECT_EQ(engine.cache_stats().evictions, 1u);

  const auto a_again = engine.Preview(a);
  ASSERT_TRUE(a_again.ok());
  EXPECT_TRUE(a_again->prepared_cache_hit);  // a survived
  const auto b_again = engine.Preview(b);
  ASSERT_TRUE(b_again.ok());
  EXPECT_FALSE(b_again->prepared_cache_hit);  // b was evicted, rebuilt
  EXPECT_EQ(engine.cache_stats().evictions, 2u);  // rebuilding b evicted a|c

  // The counters reconcile: every miss either sits in the cache, was
  // LRU-evicted, or was a failure drop (none here).
  const Engine::CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, stats.entries + stats.evictions);
}

TEST(EngineTest, FailedPreparationsAreNotCached) {
  const Engine engine = Engine::FromSchema(
      SchemaGraph::FromEntityGraph(BuildPaperExampleGraph()));
  PreviewRequest entropy;
  entropy.size = {2, 6};
  entropy.measures.nonkey = "entropy";  // needs the data graph: fails
  ASSERT_FALSE(engine.Preview(entropy).ok());
  EXPECT_EQ(engine.cache_stats().entries, 0u);  // the failure was dropped
}

TEST(EngineTest, NearEqualWalkParametersDoNotAlias) {
  const Engine engine = PaperEngine();
  PreviewRequest request;
  request.size = {2, 6};
  request.measures.key = "randomwalk";
  request.measures.walk.tolerance = 1e-12;
  ASSERT_TRUE(engine.Preview(request).ok());
  // Sub-1e-6 differences must be distinct cache entries, not hits on
  // state built under the other tolerance.
  request.measures.walk.tolerance = 1e-7;
  const auto response = engine.Preview(request);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->prepared_cache_hit);
}

TEST(EngineTest, CopiedEngineSharesSnapshotAndCache) {
  const Engine engine = PaperEngine();
  const Engine copy = engine;
  PreviewRequest request;
  request.size = {2, 6};
  ASSERT_TRUE(engine.Preview(request).ok());
  const auto through_copy = copy.Preview(request);
  ASSERT_TRUE(through_copy.ok());
  EXPECT_TRUE(through_copy->prepared_cache_hit);
  EXPECT_EQ(copy.graph(), engine.graph());
}

TEST(EngineTest, BudgetRequestsRunTheAdvisor) {
  const Engine engine = PaperEngine();
  // A two-table display: small enough that the suggested tight
  // constraint is feasible on the paper's star-shaped schema.
  DisplayBudget budget;
  budget.height_rows = 14;
  PreviewRequest request;
  request.size = {999, 999};  // ignored: the budget decides
  request.budget = budget;
  const auto response = engine.Preview(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->rationale.empty());
  EXPECT_GT(response->size.k, 0u);
  EXPECT_LT(response->size.k, 999u);
  EXPECT_EQ(response->distance.mode, DistanceMode::kNone);

  const auto suggestion = engine.Suggest(budget);
  ASSERT_TRUE(suggestion.ok());
  EXPECT_EQ(response->size.k, suggestion->size.k);
  EXPECT_EQ(response->size.n, suggestion->size.n);
  EXPECT_EQ(response->rationale, suggestion->rationale);

  PreviewRequest tight = request;
  tight.suggested_distance = DistanceMode::kTight;
  const auto tight_response = engine.Preview(tight);
  ASSERT_TRUE(tight_response.ok());
  EXPECT_EQ(tight_response->distance.mode, DistanceMode::kTight);
  EXPECT_EQ(tight_response->distance.d, suggestion->tight_d);
}

TEST(EngineTest, UnknownMeasureNameFails) {
  const Engine engine = PaperEngine();
  PreviewRequest request;
  request.measures.key = "pagerank";
  const auto response = engine.Preview(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);
  EXPECT_NE(response.status().message().find("randomwalk"),
            std::string::npos);  // the error lists what exists
}

TEST(EngineTest, UnknownAlgorithmNameFails) {
  const Engine engine = PaperEngine();
  PreviewRequest request;
  request.algorithm = "quantum";
  const auto response = engine.Preview(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, DpRejectsDistanceConstraints) {
  const Engine engine = PaperEngine();
  PreviewRequest request;
  request.size = {2, 6};
  request.distance = DistanceConstraint::Tight(1);
  request.algorithm = "dp";
  const auto response = engine.Preview(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, AllAlgorithmsServeAndAgreeOnTheOptimum) {
  const Engine engine = PaperEngine();
  for (const char* algo : {"auto", "bf", "dp", "apriori", "beam"}) {
    PreviewRequest request;
    request.size = {2, 6};
    request.algorithm = algo;
    const auto response = engine.Preview(request);
    ASSERT_TRUE(response.ok()) << algo;
    // The schema is tiny; even the approximate beam finds the optimum.
    EXPECT_DOUBLE_EQ(response->score, 84.0) << algo;
  }
}

TEST(EngineTest, SchemaOnlyEngineServesSchemaLevelRequests) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const Engine engine = Engine::FromSchema(SchemaGraph::FromEntityGraph(graph));
  EXPECT_EQ(engine.graph(), nullptr);

  PreviewRequest request;
  request.size = {2, 6};
  const auto response = engine.Preview(request);
  ASSERT_TRUE(response.ok());
  EXPECT_DOUBLE_EQ(response->score, 84.0);

  PreviewRequest entropy = request;
  entropy.measures.nonkey = "entropy";
  EXPECT_FALSE(engine.Preview(entropy).ok());  // needs the data graph

  PreviewRequest sampled = request;
  sampled.sample_rows = 3;
  const auto sampled_response = engine.Preview(sampled);
  ASSERT_FALSE(sampled_response.ok());
  EXPECT_EQ(sampled_response.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, UserRegisteredMeasureServesEndToEnd) {
  // A degree-style custom key measure registered at runtime is selectable
  // by name like the built-ins, engine-side caching included.
  ASSERT_TRUE(ScoringRegistry::Global()
                  .RegisterKeyMeasure(
                      "engine-test-degree",
                      [](const ScoringContext& context) {
                        std::vector<double> scores(
                            context.schema.num_types(), 0.0);
                        for (TypeId t = 0; t < context.schema.num_types();
                             ++t) {
                          for (const uint32_t e :
                               context.schema.IncidentEdges(t)) {
                            scores[t] +=
                                context.schema.Edge(e).edge_count;
                          }
                        }
                        return Result<std::vector<double>>(
                            std::move(scores));
                      })
                  .ok());
  const Engine engine = PaperEngine();
  PreviewRequest request;
  request.size = {2, 6};
  request.measures.key = "engine-test-degree";
  const auto response = engine.Preview(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_GT(response->score, 0.0);
  EXPECT_TRUE(ValidatePreview(response->preview, *response->prepared,
                              response->size, response->distance)
                  .ok());
  const auto again = engine.Preview(request);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->prepared_cache_hit);
}

TEST(EngineTest, ThreadedEngineMatchesSerialEngineExactly) {
  // EngineOptions::threads trades build latency only: the served preview,
  // score, and every prepared surface must be bit-identical to a serial
  // engine's.
  EngineOptions serial_options;
  serial_options.threads = 1;
  const Engine serial =
      Engine::FromGraph(BuildPaperExampleGraph(), serial_options);
  EngineOptions threaded_options;
  threaded_options.threads = 8;
  const Engine threaded =
      Engine::FromGraph(BuildPaperExampleGraph(), threaded_options);

  PreviewRequest request;
  request.size = {2, 6};
  request.measures.key = "randomwalk";
  request.measures.nonkey = "entropy";
  const auto a = serial.Preview(request);
  const auto b = threaded.Preview(request);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->score, b->score);  // exact, not approximate
  ASSERT_EQ(a->preview.tables.size(), b->preview.tables.size());
  for (size_t i = 0; i < a->preview.tables.size(); ++i) {
    EXPECT_EQ(a->preview.tables[i].key, b->preview.tables[i].key);
  }
  for (TypeId t = 0; t < a->prepared->num_types(); ++t) {
    EXPECT_EQ(a->prepared->KeyScore(t), b->prepared->KeyScore(t));
  }
}

TEST(EngineTest, ResponseCarriesPrepareTimings) {
  const Engine engine = PaperEngine();
  PreviewRequest request;
  request.size = {2, 6};
  const auto response = engine.Preview(request);
  ASSERT_TRUE(response.ok());
  const PrepareTimings& t = response->prepare_timings;
  EXPECT_GE(t.key_seconds, 0.0);
  EXPECT_GE(t.nonkey_seconds, 0.0);
  EXPECT_GE(t.distance_seconds, 0.0);
  EXPECT_GE(t.candidate_sort_seconds, 0.0);
  // The phases are timed inside the total.
  EXPECT_GE(t.total_seconds, t.key_seconds + t.nonkey_seconds +
                                 t.distance_seconds +
                                 t.candidate_sort_seconds);
  // A cache hit reports the original build's timings, not zeros.
  const auto again = engine.Preview(request);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->prepared_cache_hit);
  EXPECT_EQ(again->prepare_timings.total_seconds, t.total_seconds);
}

}  // namespace
}  // namespace egp
