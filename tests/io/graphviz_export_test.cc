#include "io/graphviz_export.h"

#include <gtest/gtest.h>

#include "core/discoverer.h"
#include "datagen/paper_example.h"

namespace egp {
namespace {

class GraphvizTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = BuildPaperExampleGraph();
    schema_ = SchemaGraph::FromEntityGraph(graph_);
  }

  EntityGraph graph_;
  SchemaGraph schema_;
};

TEST_F(GraphvizTest, SchemaDotStructure) {
  const std::string dot = SchemaToDot(schema_);
  EXPECT_EQ(dot.rfind("digraph schema {", 0), 0u);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("FILM"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("Award Winners"), std::string::npos);
  // One node per type, one edge per relationship type.
  size_t nodes = 0, edges = 0;
  for (size_t pos = 0; (pos = dot.find("[label=", pos)) != std::string::npos;
       ++pos) {
    ++nodes;
  }
  for (size_t pos = 0; (pos = dot.find("->", pos)) != std::string::npos;
       ++pos) {
    ++edges;
  }
  EXPECT_EQ(nodes, schema_.num_types() + schema_.num_edges());
  EXPECT_EQ(edges, schema_.num_edges());
}

TEST_F(GraphvizTest, CountsToggle) {
  GraphvizOptions with_counts;
  GraphvizOptions without;
  without.show_counts = false;
  const std::string a = SchemaToDot(schema_, with_counts);
  const std::string b = SchemaToDot(schema_, without);
  EXPECT_NE(a.find("(4)"), std::string::npos);   // S_cov(FILM)
  EXPECT_EQ(b.find("(4)"), std::string::npos);
}

TEST_F(GraphvizTest, PreviewHighlightsKeysAndAttributes) {
  auto prepared = PreparedSchema::Create(schema_, PreparedSchemaOptions{});
  ASSERT_TRUE(prepared.ok());
  PreviewDiscoverer discoverer(std::move(prepared).value());
  DiscoveryOptions options;
  options.size = {2, 6};
  auto preview = discoverer.Discover(options);
  ASSERT_TRUE(preview.ok());
  const std::string dot = PreviewToDot(discoverer.prepared(), *preview);
  EXPECT_NE(dot.find("fillcolor=lightblue"), std::string::npos);
  EXPECT_NE(dot.find("penwidth=2.5"), std::string::npos);
  // Exactly k key nodes are highlighted.
  size_t highlighted = 0;
  for (size_t pos = 0;
       (pos = dot.find("fillcolor=lightblue", pos)) != std::string::npos;
       ++pos) {
    ++highlighted;
  }
  EXPECT_EQ(highlighted, 2u);
}

TEST_F(GraphvizTest, LabelsEscapedAndTruncated) {
  SchemaGraph schema;
  schema.AddType("TYPE \"WITH QUOTES\" AND A VERY LONG NAME INDEED", 1);
  schema.AddType("B", 1);
  schema.AddEdge("rel \\ backslash", 0, 1, 1);
  GraphvizOptions options;
  options.max_label_length = 16;
  const std::string dot = SchemaToDot(schema, options);
  EXPECT_NE(dot.find("\\\""), std::string::npos);  // escaped quote
  EXPECT_NE(dot.find("..."), std::string::npos);   // truncated
  EXPECT_NE(dot.find("\\\\"), std::string::npos);  // escaped backslash
}

}  // namespace
}  // namespace egp
