#include "io/preview_renderer.h"

#include <gtest/gtest.h>

#include "core/discoverer.h"
#include "datagen/paper_example.h"

namespace egp {
namespace {

class RendererTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = BuildPaperExampleGraph();
    auto prepared = PreparedSchema::Create(
        SchemaGraph::FromEntityGraph(graph_), PreparedSchemaOptions{});
    ASSERT_TRUE(prepared.ok());
    prepared_ = std::make_unique<PreparedSchema>(std::move(prepared).value());
    PreviewDiscoverer discoverer(*prepared_);
    DiscoveryOptions options;
    options.size = {2, 6};
    auto preview = discoverer.Discover(options);
    ASSERT_TRUE(preview.ok());
    TupleSamplerOptions sampler;
    sampler.rows_per_table = 4;
    auto mat = MaterializePreview(graph_, *prepared_, *preview, sampler);
    ASSERT_TRUE(mat.ok());
    materialized_ = std::move(mat).value();
  }

  EntityGraph graph_;
  std::unique_ptr<PreparedSchema> prepared_;
  MaterializedPreview materialized_;
};

TEST_F(RendererTest, AsciiContainsKeyTypeAndEntities) {
  const std::string text = RenderPreview(graph_, materialized_);
  EXPECT_NE(text.find("FILM"), std::string::npos);
  EXPECT_NE(text.find("Men in Black"), std::string::npos);
  EXPECT_NE(text.find("+"), std::string::npos);  // table borders
}

TEST_F(RendererTest, KeyAttributeUnderlined) {
  // Fig. 2 marks key attributes with underlines; the ASCII renderer uses
  // a '~' run below the key header.
  const std::string text = RenderTable(graph_, materialized_.tables[0]);
  EXPECT_NE(text.find("~~~~"), std::string::npos);
}

TEST_F(RendererTest, EmptyCellRendersDash) {
  // Hancock has no genres (t3.Genres = "-" in Fig. 2).
  RenderOptions options;
  const std::string text = RenderPreview(graph_, materialized_, options);
  EXPECT_NE(text.find(" - "), std::string::npos);
}

TEST_F(RendererTest, MultiValuedCellUsesBraces) {
  const std::string text = RenderPreview(graph_, materialized_);
  EXPECT_NE(text.find("{"), std::string::npos);
}

TEST_F(RendererTest, MarkdownFormat) {
  RenderOptions options;
  options.format = RenderOptions::Format::kMarkdown;
  const std::string text = RenderPreview(graph_, materialized_, options);
  EXPECT_NE(text.find("| **FILM** |"), std::string::npos);
  EXPECT_NE(text.find("|---|"), std::string::npos);
}

TEST_F(RendererTest, TruncatesLongCells) {
  RenderOptions options;
  options.max_cell_width = 10;
  const std::string text = RenderPreview(graph_, materialized_, options);
  EXPECT_NE(text.find("..."), std::string::npos);
}

TEST_F(RendererTest, MaxValuesPerCellRespected) {
  RenderOptions options;
  options.max_values_per_cell = 1;
  options.max_cell_width = 200;
  const std::string text = RenderPreview(graph_, materialized_, options);
  // A multi-valued cell shows one value then an ellipsis marker.
  EXPECT_NE(text.find(", ...}"), std::string::npos);
}

TEST_F(RendererTest, DirectionAnnotationOptIn) {
  RenderOptions options;
  options.show_direction = true;
  const std::string text = RenderPreview(graph_, materialized_, options);
  EXPECT_NE(text.find("<-"), std::string::npos);
}

TEST_F(RendererTest, SampledRowNoteShown) {
  // When fewer rows than tuples are shown the renderer says so.
  TupleSamplerOptions sampler;
  sampler.rows_per_table = 1;
  auto preview = materialized_;
  PreviewDiscoverer discoverer(*prepared_);
  DiscoveryOptions options;
  options.size = {1, 2};
  auto p = discoverer.Discover(options);
  ASSERT_TRUE(p.ok());
  auto mat = MaterializePreview(graph_, *prepared_, *p, sampler);
  ASSERT_TRUE(mat.ok());
  const std::string text = RenderPreview(graph_, *mat);
  EXPECT_NE(text.find("of 4 tuples shown"), std::string::npos);
}

}  // namespace
}  // namespace egp
