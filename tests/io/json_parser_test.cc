// Strict JSON parser: acceptance of valid documents and rejection of the
// hostile inputs the HTTP server must survive (truncated bodies, bad
// UTF-8, duplicate keys, pathological nesting).
#include "io/json_parser.h"

#include <gtest/gtest.h>

#include <string>

#include "io/json_export.h"

namespace egp {
namespace {

Result<JsonValue> Parse(std::string_view text) { return ParseJson(text); }

TEST(JsonParserTest, ParsesScalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_TRUE(Parse("true")->bool_value());
  EXPECT_FALSE(Parse("false")->bool_value());
  EXPECT_DOUBLE_EQ(Parse("0")->number_value(), 0.0);
  EXPECT_DOUBLE_EQ(Parse("-0.5")->number_value(), -0.5);
  EXPECT_DOUBLE_EQ(Parse("1e3")->number_value(), 1000.0);
  EXPECT_DOUBLE_EQ(Parse("2.5E-1")->number_value(), 0.25);
  EXPECT_EQ(Parse("\"hi\"")->string_value(), "hi");
  EXPECT_EQ(Parse("  \"ws\" \t\r\n")->string_value(), "ws");
}

TEST(JsonParserTest, ParsesContainersPreservingOrder) {
  const auto doc = Parse("{\"b\":[1,2,{\"c\":null}],\"a\":false}");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(doc->is_object());
  ASSERT_EQ(doc->object().size(), 2u);
  EXPECT_EQ(doc->object()[0].first, "b");  // insertion order, not sorted
  EXPECT_EQ(doc->object()[1].first, "a");
  const JsonValue* b = doc->Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->array().size(), 3u);
  EXPECT_DOUBLE_EQ(b->array()[1].number_value(), 2.0);
  EXPECT_TRUE(b->array()[2].Find("c")->is_null());
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(JsonParserTest, DecodesEscapes) {
  const auto doc = Parse(R"("a\"b\\c\/d\b\f\n\r\t")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->string_value(), "a\"b\\c/d\b\f\n\r\t");
  EXPECT_EQ(Parse(R"("\u0041")")->string_value(), "A");
  EXPECT_EQ(Parse(R"("\u00e9")")->string_value(), "\xc3\xa9");     // e-acute
  EXPECT_EQ(Parse(R"("\u20ac")")->string_value(), "\xe2\x82\xac");  // euro sign
  // Surrogate pair decodes to U+1F600.
  EXPECT_EQ(Parse(R"("\ud83d\ude00")")->string_value(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParserTest, AcceptsRawUtf8) {
  EXPECT_EQ(Parse("\"caf\xc3\xa9\"")->string_value(), "caf\xc3\xa9");
  EXPECT_EQ(Parse("\"\xf0\x9f\x98\x80\"")->string_value(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParserTest, RoundTripsExportEscaping) {
  // What json_export writes, json_parser reads back verbatim.
  const std::string original = "quote\" slash\\ tab\t newline\n bell\x07";
  const auto doc = Parse("\"" + JsonEscape(original) + "\"");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->string_value(), original);
}

TEST(JsonParserTest, RejectsTruncatedBodies) {
  // Every proper prefix of a valid document must fail, never crash — the
  // shape of a request cut off mid-flight.
  const std::string valid =
      R"({"k":2,"measures":{"key":"coverage"},"list":[1,2.5e-1,"xA"]})";
  ASSERT_TRUE(Parse(valid).ok());
  for (size_t len = 0; len < valid.size(); ++len) {
    EXPECT_FALSE(Parse(valid.substr(0, len)).ok())
        << "prefix of length " << len << " unexpectedly parsed";
  }
}

TEST(JsonParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(Parse("{} {}").ok());
  EXPECT_FALSE(Parse("1 2").ok());
  EXPECT_FALSE(Parse("null x").ok());
  EXPECT_FALSE(Parse("\"a\"\"b\"").ok());
}

TEST(JsonParserTest, RejectsMalformedNumbers) {
  for (const char* bad :
       {"01", "+1", ".5", "1.", "1e", "1e+", "-", "--1", "0x10", "NaN",
        "Infinity", "1.2.3", "1e99999"}) {
    EXPECT_FALSE(Parse(bad).ok()) << bad;
  }
}

TEST(JsonParserTest, RejectsBadUtf8) {
  // Stray continuation byte, truncated 2-byte and 4-byte sequences,
  // overlong '/', raw surrogate, out-of-range code point, 0xFF.
  for (const std::string& bad :
       {std::string("\"\x80\""), std::string("\"\xc3\""),
        std::string("\"\xf0\x9f\x98\""), std::string("\"\xc0\xaf\""),
        std::string("\"\xed\xa0\x80\""), std::string("\"\xf4\x90\x80\x80\""),
        std::string("\"\xff\"")}) {
    EXPECT_FALSE(Parse(bad).ok()) << "accepted invalid UTF-8";
  }
}

TEST(JsonParserTest, RejectsBadEscapes) {
  for (const char* bad :
       {R"("\x41")", R"("\u00g1")", R"("\u12")", R"("\")", R"("\q")",
        // Unpaired / misordered surrogates.
        R"("\ud83d")", R"("\ud83dA")", R"("\ude00")",
        R"("\ud83dx")"}) {
    EXPECT_FALSE(Parse(bad).ok()) << bad;
  }
}

TEST(JsonParserTest, RejectsUnescapedControlCharacters) {
  using namespace std::string_literals;
  EXPECT_FALSE(Parse("\"a\nb\"").ok());
  EXPECT_FALSE(Parse("\"a\0b\""s).ok());  // embedded NUL
  EXPECT_FALSE(Parse("\"a\x1f\"").ok());
}

TEST(JsonParserTest, RejectsDuplicateKeysByDefault) {
  const std::string doc = R"({"k":1,"k":2})";
  const auto strict = Parse(doc);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("duplicate"), std::string::npos);

  JsonParseOptions lax;
  lax.reject_duplicate_keys = false;
  const auto parsed = ParseJson(doc, lax);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->object().size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->Find("k")->number_value(), 1.0);  // first wins
}

TEST(JsonParserTest, EnforcesDepthLimit) {
  JsonParseOptions options;
  options.max_depth = 8;
  std::string nested;  // 9 levels: one past the limit
  for (int i = 0; i < 9; ++i) nested += "[";
  for (int i = 0; i < 9; ++i) nested += "]";
  EXPECT_FALSE(ParseJson(nested, options).ok()) << "depth 9 vs limit 8";
  std::string ok = nested.substr(1, nested.size() - 2);  // exactly 8: fine
  EXPECT_TRUE(ParseJson(ok, options).ok());

  // A pathological 100k-bracket body must be rejected cheaply, not
  // overflow the stack (the default limit applies).
  std::string hostile(100000, '[');
  EXPECT_FALSE(Parse(hostile).ok());
  std::string hostile_obj;
  for (int i = 0; i < 50000; ++i) hostile_obj += "{\"a\":";
  EXPECT_FALSE(Parse(hostile_obj).ok());
}

TEST(JsonParserTest, RejectsStructuralNoise) {
  for (const char* bad :
       {"", "   ", "{", "}", "[", "]", "{\"a\"}", "{\"a\":}", "{\"a\":1,}",
        "[1,]", "[,1]", "{,}", "{1:2}", "{\"a\":1 \"b\":2}", "[1 2]",
        "tru", "nul", "falsee", "'single'", "{\"a\":1}}"}) {
    EXPECT_FALSE(Parse(bad).ok()) << "'" << bad << "'";
  }
}

TEST(JsonParserTest, ErrorsCarryByteOffsets) {
  const auto status = Parse("{\"a\": nope}").status();
  EXPECT_NE(status.message().find("byte 6"), std::string::npos)
      << status.message();
}

}  // namespace
}  // namespace egp
