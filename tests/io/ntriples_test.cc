#include "io/ntriples.h"

#include <gtest/gtest.h>

#include <sstream>

namespace egp {
namespace {

TEST(NTriplesTest, BasicTriples) {
  std::stringstream in(
      "<Will Smith> <a> <FILM ACTOR> .\n"
      "<Men in Black> <a> <FILM> .\n"
      "<Will Smith> <Actor> <Men in Black> .\n");
  NTriplesStats stats;
  auto graph = ReadNTriples(in, &stats);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(stats.triples, 3u);
  EXPECT_EQ(stats.type_assertions, 2u);
  EXPECT_EQ(stats.relationships, 1u);
  EXPECT_EQ(graph->num_entities(), 2u);
  EXPECT_EQ(graph->num_edges(), 1u);
  EXPECT_EQ(graph->num_types(), 2u);
}

TEST(NTriplesTest, BareTokensAndRdfType) {
  std::stringstream in(
      "alice rdf:type Person .\n"
      "bob http://www.w3.org/1999/02/22-rdf-syntax-ns#type Person .\n"
      "alice knows bob .\n");
  auto graph = ReadNTriples(in);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_entities(), 2u);
  EXPECT_EQ(graph->num_edges(), 1u);
}

TEST(NTriplesTest, TypeAssertionsAfterRelationships) {
  // Relationship triples buffer until all types are known.
  std::stringstream in(
      "alice knows bob .\n"
      "alice a Person .\n"
      "bob a Person .\n");
  auto graph = ReadNTriples(in);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 1u);
}

TEST(NTriplesTest, UntypedEndpointsSkipped) {
  std::stringstream in(
      "alice a Person .\n"
      "alice knows ghost .\n");
  NTriplesStats stats;
  auto graph = ReadNTriples(in, &stats);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(stats.skipped_untyped, 1u);
  EXPECT_EQ(graph->num_edges(), 0u);
}

TEST(NTriplesTest, PrimaryTypeDeterminesRelType) {
  // "actor" asserted first for will → the Acted In relationship type is
  // (Acted In, ACTOR, FILM) even though will is also a PRODUCER.
  std::stringstream in(
      "will a ACTOR .\n"
      "will a PRODUCER .\n"
      "mib a FILM .\n"
      "will <Acted In> mib .\n");
  auto graph = ReadNTriples(in);
  ASSERT_TRUE(graph.ok());
  ASSERT_EQ(graph->num_rel_types(), 1u);
  const RelTypeInfo& info = graph->RelType(0);
  EXPECT_EQ(graph->TypeName(info.src_type), "ACTOR");
  EXPECT_EQ(graph->TypeName(info.dst_type), "FILM");
}

TEST(NTriplesTest, QuotedLiteralsAsNames) {
  std::stringstream in(
      "\"The Matrix\" a FILM .\n"
      "keanu a ACTOR .\n"
      "keanu starred \"The Matrix\" .\n");
  auto graph = ReadNTriples(in);
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(graph->entity_names().Find("The Matrix").has_value());
}

TEST(NTriplesTest, CommentsAndBlanksIgnored) {
  std::stringstream in(
      "# header\n"
      "\n"
      "x a T .\n");
  auto graph = ReadNTriples(in);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_entities(), 1u);
}

TEST(NTriplesTest, MalformedLineRejected) {
  {
    std::stringstream in("only two .\n");
    EXPECT_EQ(ReadNTriples(in).status().code(), StatusCode::kCorruption);
  }
  {
    std::stringstream in("<unterminated bracket .\n");
    EXPECT_EQ(ReadNTriples(in).status().code(), StatusCode::kCorruption);
  }
  {
    std::stringstream in("a b c d e .\n");
    EXPECT_EQ(ReadNTriples(in).status().code(), StatusCode::kCorruption);
  }
}

TEST(NTriplesTest, ErrorMentionsLineNumber) {
  std::stringstream in("x a T .\nbroken\n");
  const auto result = ReadNTriples(in);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(NTriplesTest, MissingFileIsIOError) {
  EXPECT_EQ(ReadNTriplesFile("/no/such/file.nt").status().code(),
            StatusCode::kIOError);
}

TEST(NTriplesTest, EscapeSequencesInLiterals) {
  std::stringstream in(
      "\"Tab\\there\" a T .\n"
      "\"quote \\\" backslash \\\\ newline \\n\" a T .\n"
      "\"uni \\u00E9 astral \\U0001F600\" a T .\n");
  auto graph = ReadNTriples(in);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_TRUE(graph->entity_names().Find("Tab\there").has_value());
  EXPECT_TRUE(graph->entity_names()
                  .Find("quote \" backslash \\ newline \n")
                  .has_value());
  EXPECT_TRUE(graph->entity_names()
                  .Find("uni \xC3\xA9 astral \xF0\x9F\x98\x80")
                  .has_value());
}

TEST(NTriplesTest, InvalidEscapesRejectedWithOffset) {
  {
    // \q is not in the escape set; its backslash sits at column 8.
    std::stringstream in("\"abcdef\\q\" a T .\n");
    const auto result = ReadNTriples(in);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
    EXPECT_NE(result.status().message().find("line 1, col 8"),
              std::string::npos)
        << result.status().message();
    EXPECT_NE(result.status().message().find("escape"), std::string::npos);
  }
  {
    std::stringstream in("\"bad \\uZZZZ\" a T .\n");
    EXPECT_FALSE(ReadNTriples(in).ok());
  }
  {
    std::stringstream in("\"surrogate \\uD800\" a T .\n");
    EXPECT_FALSE(ReadNTriples(in).ok());
  }
  {
    std::stringstream in("\"trunc \\u12\" a T .\n");
    EXPECT_FALSE(ReadNTriples(in).ok());
  }
  {
    std::stringstream in("\"dangling \\");
    EXPECT_FALSE(ReadNTriples(in).ok());
  }
}

TEST(NTriplesTest, EscapedQuoteDoesNotTerminateLiteral) {
  std::stringstream in(
      "\"say \\\"hi\\\"\" a T .\n"
      "x a T .\n"
      "x knows \"say \\\"hi\\\"\" .\n");
  auto graph = ReadNTriples(in);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->num_edges(), 1u);
  EXPECT_TRUE(graph->entity_names().Find("say \"hi\"").has_value());
}

TEST(NTriplesTest, CrlfLineEndings) {
  std::stringstream in(
      "x a T .\r\n"
      "y a T .\r\n"
      "x rel y .\r\n");
  NTriplesStats stats;
  auto graph = ReadNTriples(in, &stats);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(stats.triples, 3u);
  EXPECT_EQ(graph->num_edges(), 1u);
  // No stray \r in any interned name.
  EXPECT_TRUE(graph->entity_names().Find("y").has_value());
  EXPECT_FALSE(graph->entity_names().Find("y\r").has_value());
}

TEST(NTriplesTest, TrailingCommentsAndBlankVariants) {
  std::stringstream in(
      "x a T . # trailing comment\n"
      "   \t  \n"
      "# full-line comment\n"
      "  # indented comment\n"
      "y a T .   #no space after hash\n"
      "x rel y .\n");
  NTriplesStats stats;
  auto graph = ReadNTriples(in, &stats);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(stats.triples, 3u);
  EXPECT_EQ(graph->num_edges(), 1u);
}

TEST(NTriplesTest, MalformedLineReportsColumnOffset) {
  // Both tokens parse; the stray fourth token starts at column 11 and
  // the error points at the position where parsing stopped.
  std::stringstream in("x a T .\nab cd ef gh .\n");
  const auto result = ReadNTriples(in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_NE(result.status().message().find("line 2, col 10"),
            std::string::npos)
      << result.status().message();
  // Leading indentation shifts the reported column accordingly.
  std::stringstream indented("   <unterminated\n");
  const auto shifted = ReadNTriples(indented);
  ASSERT_FALSE(shifted.ok());
  EXPECT_NE(shifted.status().message().find("line 1, col 4"),
            std::string::npos)
      << shifted.status().message();
}

TEST(NTriplesTest, WriterRoundTripsEscapedNames) {
  std::stringstream in(
      "\"weird > name \\\" with \\\\ stuff\\n\" a T .\n"
      "plain a T .\n"
      "plain rel \"weird > name \\\" with \\\\ stuff\\n\" .\n");
  auto graph = ReadNTriples(in);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  std::stringstream out;
  ASSERT_TRUE(WriteNTriples(*graph, out).ok());
  auto reparsed = ReadNTriples(out);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->num_entities(), graph->num_entities());
  ASSERT_EQ(reparsed->num_edges(), graph->num_edges());
  for (EntityId e = 0; e < graph->num_entities(); ++e) {
    EXPECT_EQ(reparsed->EntityName(e), graph->EntityName(e));
  }
}

TEST(NTriplesTest, DuplicatePredicatesBecomeOneRelType) {
  std::stringstream in(
      "a1 a T .\n"
      "a2 a T .\n"
      "b1 a U .\n"
      "a1 rel b1 .\n"
      "a2 rel b1 .\n");
  auto graph = ReadNTriples(in);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_rel_types(), 1u);
  EXPECT_EQ(graph->EdgesOfRelType(0).size(), 2u);
}

}  // namespace
}  // namespace egp
