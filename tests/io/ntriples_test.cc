#include "io/ntriples.h"

#include <gtest/gtest.h>

#include <sstream>

namespace egp {
namespace {

TEST(NTriplesTest, BasicTriples) {
  std::stringstream in(
      "<Will Smith> <a> <FILM ACTOR> .\n"
      "<Men in Black> <a> <FILM> .\n"
      "<Will Smith> <Actor> <Men in Black> .\n");
  NTriplesStats stats;
  auto graph = ReadNTriples(in, &stats);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(stats.triples, 3u);
  EXPECT_EQ(stats.type_assertions, 2u);
  EXPECT_EQ(stats.relationships, 1u);
  EXPECT_EQ(graph->num_entities(), 2u);
  EXPECT_EQ(graph->num_edges(), 1u);
  EXPECT_EQ(graph->num_types(), 2u);
}

TEST(NTriplesTest, BareTokensAndRdfType) {
  std::stringstream in(
      "alice rdf:type Person .\n"
      "bob http://www.w3.org/1999/02/22-rdf-syntax-ns#type Person .\n"
      "alice knows bob .\n");
  auto graph = ReadNTriples(in);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_entities(), 2u);
  EXPECT_EQ(graph->num_edges(), 1u);
}

TEST(NTriplesTest, TypeAssertionsAfterRelationships) {
  // Relationship triples buffer until all types are known.
  std::stringstream in(
      "alice knows bob .\n"
      "alice a Person .\n"
      "bob a Person .\n");
  auto graph = ReadNTriples(in);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 1u);
}

TEST(NTriplesTest, UntypedEndpointsSkipped) {
  std::stringstream in(
      "alice a Person .\n"
      "alice knows ghost .\n");
  NTriplesStats stats;
  auto graph = ReadNTriples(in, &stats);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(stats.skipped_untyped, 1u);
  EXPECT_EQ(graph->num_edges(), 0u);
}

TEST(NTriplesTest, PrimaryTypeDeterminesRelType) {
  // "actor" asserted first for will → the Acted In relationship type is
  // (Acted In, ACTOR, FILM) even though will is also a PRODUCER.
  std::stringstream in(
      "will a ACTOR .\n"
      "will a PRODUCER .\n"
      "mib a FILM .\n"
      "will <Acted In> mib .\n");
  auto graph = ReadNTriples(in);
  ASSERT_TRUE(graph.ok());
  ASSERT_EQ(graph->num_rel_types(), 1u);
  const RelTypeInfo& info = graph->RelType(0);
  EXPECT_EQ(graph->TypeName(info.src_type), "ACTOR");
  EXPECT_EQ(graph->TypeName(info.dst_type), "FILM");
}

TEST(NTriplesTest, QuotedLiteralsAsNames) {
  std::stringstream in(
      "\"The Matrix\" a FILM .\n"
      "keanu a ACTOR .\n"
      "keanu starred \"The Matrix\" .\n");
  auto graph = ReadNTriples(in);
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(graph->entity_names().Find("The Matrix").has_value());
}

TEST(NTriplesTest, CommentsAndBlanksIgnored) {
  std::stringstream in(
      "# header\n"
      "\n"
      "x a T .\n");
  auto graph = ReadNTriples(in);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_entities(), 1u);
}

TEST(NTriplesTest, MalformedLineRejected) {
  {
    std::stringstream in("only two .\n");
    EXPECT_EQ(ReadNTriples(in).status().code(), StatusCode::kCorruption);
  }
  {
    std::stringstream in("<unterminated bracket .\n");
    EXPECT_EQ(ReadNTriples(in).status().code(), StatusCode::kCorruption);
  }
  {
    std::stringstream in("a b c d e .\n");
    EXPECT_EQ(ReadNTriples(in).status().code(), StatusCode::kCorruption);
  }
}

TEST(NTriplesTest, ErrorMentionsLineNumber) {
  std::stringstream in("x a T .\nbroken\n");
  const auto result = ReadNTriples(in);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(NTriplesTest, MissingFileIsIOError) {
  EXPECT_EQ(ReadNTriplesFile("/no/such/file.nt").status().code(),
            StatusCode::kIOError);
}

TEST(NTriplesTest, DuplicatePredicatesBecomeOneRelType) {
  std::stringstream in(
      "a1 a T .\n"
      "a2 a T .\n"
      "b1 a U .\n"
      "a1 rel b1 .\n"
      "a2 rel b1 .\n");
  auto graph = ReadNTriples(in);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_rel_types(), 1u);
  EXPECT_EQ(graph->EdgesOfRelType(0).size(), 2u);
}

}  // namespace
}  // namespace egp
