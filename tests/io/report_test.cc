#include "io/report.h"

#include <gtest/gtest.h>

#include "datagen/paper_example.h"

namespace egp {
namespace {

TEST(ReportTest, ContainsAllSections) {
  const EntityGraph graph = BuildPaperExampleGraph();
  ReportOptions options;
  options.title = "Film excerpt";
  options.discovery.size = {2, 6};
  const auto report = GeneratePreviewReport(graph, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("# Film excerpt"), std::string::npos);
  EXPECT_NE(report->find("## Dataset statistics"), std::string::npos);
  EXPECT_NE(report->find("## Most important entity types"),
            std::string::npos);
  EXPECT_NE(report->find("## Preview (k=2, n=6"), std::string::npos);
  EXPECT_NE(report->find("| **FILM** |"), std::string::npos);
  EXPECT_NE(report->find("score 84"), std::string::npos);
}

TEST(ReportTest, StatisticsValuesPresent) {
  const EntityGraph graph = BuildPaperExampleGraph();
  const auto report = GeneratePreviewReport(graph, ReportOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("| entities | 14 |"), std::string::npos);
  EXPECT_NE(report->find("| relationships | 21 |"), std::string::npos);
  EXPECT_NE(report->find("| entity types | 6 |"), std::string::npos);
}

TEST(ReportTest, DistanceConstraintNoted) {
  const EntityGraph graph = BuildPaperExampleGraph();
  ReportOptions options;
  options.discovery.size = {2, 6};
  options.discovery.distance = DistanceConstraint::Diverse(2);
  const auto report = GeneratePreviewReport(graph, options);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("diverse d=2"), std::string::npos);
  EXPECT_NE(report->find("score 78"), std::string::npos);
}

TEST(ReportTest, DotAppendixOptIn) {
  const EntityGraph graph = BuildPaperExampleGraph();
  ReportOptions without;
  without.discovery.size = {2, 6};
  ReportOptions with = without;
  with.include_dot = true;
  const auto a = GeneratePreviewReport(graph, without);
  const auto b = GeneratePreviewReport(graph, with);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->find("digraph preview"), std::string::npos);
  EXPECT_NE(b->find("digraph preview"), std::string::npos);
}

TEST(ReportTest, InfeasibleDiscoveryPropagates) {
  const EntityGraph graph = BuildPaperExampleGraph();
  ReportOptions options;
  options.discovery.size = {9, 12};  // more tables than types
  const auto report = GeneratePreviewReport(graph, options);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
}

TEST(ReportTest, RandomWalkEntropyMeasures) {
  const EntityGraph graph = BuildPaperExampleGraph();
  ReportOptions options;
  options.measures.key_measure = KeyMeasure::kRandomWalk;
  options.measures.nonkey_measure = NonKeyMeasure::kEntropy;
  options.discovery.size = {2, 5};
  const auto report = GeneratePreviewReport(graph, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("RandomWalk"), std::string::npos);
}

}  // namespace
}  // namespace egp
