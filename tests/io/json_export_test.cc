#include "io/json_export.h"

#include <gtest/gtest.h>

#include "core/discoverer.h"
#include "datagen/paper_example.h"
#include "graph/entity_graph_builder.h"

namespace egp {
namespace {

TEST(JsonEscapeTest, PassthroughPlainText) {
  EXPECT_EQ(JsonEscape("Men in Black"), "Men in Black");
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

class JsonExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = BuildPaperExampleGraph();
    auto prepared = PreparedSchema::Create(
        SchemaGraph::FromEntityGraph(graph_), PreparedSchemaOptions{});
    ASSERT_TRUE(prepared.ok());
    prepared_ = std::make_unique<PreparedSchema>(std::move(prepared).value());
    PreviewDiscoverer discoverer(*prepared_);
    DiscoveryOptions options;
    options.size = {2, 6};
    auto preview = discoverer.Discover(options);
    ASSERT_TRUE(preview.ok());
    preview_ = std::move(preview).value();
  }

  EntityGraph graph_;
  std::unique_ptr<PreparedSchema> prepared_;
  Preview preview_;
};

TEST_F(JsonExportTest, PreviewJsonStructure) {
  const std::string json = PreviewToJson(*prepared_, preview_);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"score\":84"), std::string::npos);
  EXPECT_NE(json.find("\"key\":\"FILM\""), std::string::npos);
  EXPECT_NE(json.find("\"direction\":\"in\""), std::string::npos);
  EXPECT_NE(json.find("\"keyScore\":4"), std::string::npos);
}

TEST_F(JsonExportTest, MaterializedJsonContainsTuples) {
  auto mat = MaterializePreview(graph_, *prepared_, preview_);
  ASSERT_TRUE(mat.ok());
  const std::string json = MaterializedPreviewToJson(graph_, *mat);
  EXPECT_NE(json.find("\"totalTuples\":4"), std::string::npos);
  EXPECT_NE(json.find("Men in Black"), std::string::npos);
  EXPECT_NE(json.find("\"rows\":["), std::string::npos);
  EXPECT_NE(json.find("\"cells\":[["), std::string::npos);
}

TEST_F(JsonExportTest, BalancedBracketsAndQuotes) {
  auto mat = MaterializePreview(graph_, *prepared_, preview_);
  ASSERT_TRUE(mat.ok());
  for (const std::string& json :
       {PreviewToJson(*prepared_, preview_),
        MaterializedPreviewToJson(graph_, *mat)}) {
    int braces = 0, brackets = 0, quotes = 0;
    bool in_string = false;
    for (size_t i = 0; i < json.size(); ++i) {
      const char c = json[i];
      if (c == '"' && (i == 0 || json[i - 1] != '\\')) {
        in_string = !in_string;
        ++quotes;
      }
      if (in_string) continue;
      if (c == '{') ++braces;
      if (c == '}') --braces;
      if (c == '[') ++brackets;
      if (c == ']') --brackets;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
    EXPECT_EQ(quotes % 2, 0);
    EXPECT_FALSE(in_string);
  }
}

TEST_F(JsonExportTest, DeterministicOutput) {
  const std::string a = PreviewToJson(*prepared_, preview_);
  const std::string b = PreviewToJson(*prepared_, preview_);
  EXPECT_EQ(a, b);
}

TEST(JsonExportEdgeTest, EscapableEntityNames) {
  EntityGraphBuilder b;
  const TypeId t = b.AddEntityType("TYPE \"QUOTED\"");
  const TypeId u = b.AddEntityType("OTHER");
  const RelTypeId rel = b.AddRelationshipType("has\ttab", t, u);
  const EntityId e1 = b.AddEntity("entity\nnewline");
  const EntityId e2 = b.AddEntity("back\\slash");
  b.AddEntityToType(e1, t);
  b.AddEntityToType(e2, u);
  ASSERT_TRUE(b.AddEdge(e1, rel, e2).ok());
  auto graph = b.Build();
  ASSERT_TRUE(graph.ok());
  auto prepared = PreparedSchema::Create(
      SchemaGraph::FromEntityGraph(*graph), PreparedSchemaOptions{});
  ASSERT_TRUE(prepared.ok());
  Preview preview;
  PreviewTable table;
  table.key = 0;
  table.nonkeys = {prepared->Candidates(0).sorted[0]};
  preview.tables = {table};
  auto mat = MaterializePreview(*graph, *prepared, preview);
  ASSERT_TRUE(mat.ok());
  const std::string json = MaterializedPreviewToJson(*graph, *mat);
  EXPECT_NE(json.find("entity\\nnewline"), std::string::npos);
  EXPECT_NE(json.find("back\\\\slash"), std::string::npos);
  EXPECT_EQ(json.find("\nnewline"), std::string::npos);  // raw newline gone
}

}  // namespace
}  // namespace egp
