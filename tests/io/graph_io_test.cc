#include "io/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "datagen/generator.h"
#include "datagen/paper_example.h"

namespace egp {
namespace {

TEST(GraphIoTest, PaperExampleRoundTrips) {
  const EntityGraph original = BuildPaperExampleGraph();
  std::stringstream buffer;
  ASSERT_TRUE(WriteEntityGraph(original, buffer).ok());
  auto restored = ReadEntityGraph(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_entities(), original.num_entities());
  EXPECT_EQ(restored->num_edges(), original.num_edges());
  EXPECT_EQ(restored->num_types(), original.num_types());
  EXPECT_EQ(restored->num_rel_types(), original.num_rel_types());
}

TEST(GraphIoTest, RoundTripPreservesStructure) {
  const EntityGraph original = BuildPaperExampleGraph();
  std::stringstream buffer;
  ASSERT_TRUE(WriteEntityGraph(original, buffer).ok());
  auto restored = ReadEntityGraph(buffer);
  ASSERT_TRUE(restored.ok());
  // Check a specific entity's neighbourhood survives: Will Smith's out
  // edges by surface name.
  const EntityId will_a = *original.entity_names().Find("Will Smith");
  const EntityId will_b = *restored->entity_names().Find("Will Smith");
  EXPECT_EQ(original.OutEdges(will_a).size(),
            restored->OutEdges(will_b).size());
  EXPECT_EQ(original.TypesOf(will_a).size(),
            restored->TypesOf(will_b).size());
}

TEST(GraphIoTest, RoundTripPreservesScores) {
  // The schema-graph statistics that drive scoring must be identical.
  const EntityGraph original = BuildPaperExampleGraph();
  std::stringstream buffer;
  ASSERT_TRUE(WriteEntityGraph(original, buffer).ok());
  auto restored = ReadEntityGraph(buffer);
  ASSERT_TRUE(restored.ok());
  const SchemaGraph sa = SchemaGraph::FromEntityGraph(original);
  const SchemaGraph sb = SchemaGraph::FromEntityGraph(*restored);
  ASSERT_EQ(sa.num_edges(), sb.num_edges());
  for (uint32_t i = 0; i < sa.num_edges(); ++i) {
    const std::string& name_a = sa.SurfaceName(sa.Edge(i));
    bool matched = false;
    for (uint32_t j = 0; j < sb.num_edges(); ++j) {
      if (sb.SurfaceName(sb.Edge(j)) == name_a &&
          sb.TypeName(sb.Edge(j).src) == sa.TypeName(sa.Edge(i).src) &&
          sb.Edge(j).edge_count == sa.Edge(i).edge_count) {
        matched = true;
      }
    }
    EXPECT_TRUE(matched) << name_a;
  }
}

TEST(GraphIoTest, GeneratedDomainRoundTrips) {
  GeneratorOptions options;
  options.scale = 0.0002;
  auto domain = GenerateDomainByName("people", options);
  ASSERT_TRUE(domain.ok());
  std::stringstream buffer;
  ASSERT_TRUE(WriteEntityGraph(domain->graph, buffer).ok());
  auto restored = ReadEntityGraph(buffer);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_entities(), domain->graph.num_entities());
  EXPECT_EQ(restored->num_edges(), domain->graph.num_edges());
  EXPECT_EQ(restored->num_rel_types(), domain->graph.num_rel_types());
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# a comment\n"
      "\n"
      "type\tx\tT\n"
      "   \n"
      "# another\n"
      "type\ty\tT\n");
  auto graph = ReadEntityGraph(in);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_entities(), 2u);
}

TEST(GraphIoTest, EdgeLineCreatesEverything) {
  std::stringstream in("edge\twill\tActor\tACTOR\tFILM\tmib\n");
  auto graph = ReadEntityGraph(in);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_entities(), 2u);
  EXPECT_EQ(graph->num_types(), 2u);
  EXPECT_EQ(graph->num_edges(), 1u);
  const EntityId will = *graph->entity_names().Find("will");
  EXPECT_TRUE(graph->EntityHasType(will, *graph->type_names().Find("ACTOR")));
}

TEST(GraphIoTest, MalformedLinesRejected) {
  {
    std::stringstream in("type\tonly-two-fields\n");
    EXPECT_EQ(ReadEntityGraph(in).status().code(), StatusCode::kCorruption);
  }
  {
    std::stringstream in("edge\ta\tb\tc\n");
    EXPECT_EQ(ReadEntityGraph(in).status().code(), StatusCode::kCorruption);
  }
  {
    std::stringstream in("frobnicate\tx\ty\n");
    EXPECT_EQ(ReadEntityGraph(in).status().code(), StatusCode::kCorruption);
  }
}

TEST(GraphIoTest, ErrorMentionsLineNumber) {
  std::stringstream in("type\ta\tT\nbogus\tz\n");
  const auto result = ReadEntityGraph(in);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(GraphIoTest, FileIoErrors) {
  EXPECT_EQ(ReadEntityGraphFile("/nonexistent/path.egt").status().code(),
            StatusCode::kIOError);
  const EntityGraph graph = BuildPaperExampleGraph();
  EXPECT_EQ(WriteEntityGraphFile(graph, "/nonexistent/dir/out.egt").code(),
            StatusCode::kIOError);
}

TEST(GraphIoTest, FileRoundTrip) {
  const EntityGraph original = BuildPaperExampleGraph();
  const std::string path = ::testing::TempDir() + "/egp_roundtrip.egt";
  ASSERT_TRUE(WriteEntityGraphFile(original, path).ok());
  auto restored = ReadEntityGraphFile(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_edges(), original.num_edges());
}

}  // namespace
}  // namespace egp
