// Parser robustness: feed the readers randomized garbage and mutated
// valid inputs; they must never crash and must fail with a clean Status
// (or succeed with a graph that validates).
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "datagen/paper_example.h"
#include "graph/validate.h"
#include "io/graph_io.h"
#include "io/ntriples.h"

namespace egp {
namespace {

std::string RandomBytes(Rng* rng, size_t length) {
  // Printable-heavy mix with occasional control characters, tabs and
  // newlines — the characters the formats are sensitive to.
  static const char kAlphabet[] =
      "abcXYZ012 <>\"\t\n.\\#-_";
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out += kAlphabet[rng->NextBounded(sizeof(kAlphabet) - 1)];
  }
  return out;
}

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, NTriplesNeverCrashes) {
  Rng rng(GetParam());
  const std::string input = RandomBytes(&rng, 200 + rng.NextBounded(800));
  std::stringstream in(input);
  auto result = ReadNTriples(in);
  if (result.ok()) {
    EXPECT_TRUE(CheckEntityGraph(*result).ok());
  } else {
    EXPECT_FALSE(result.status().message().empty());
  }
}

TEST_P(ParserFuzzTest, GraphIoNeverCrashes) {
  Rng rng(GetParam() * 31 + 7);
  const std::string input = RandomBytes(&rng, 200 + rng.NextBounded(800));
  std::stringstream in(input);
  auto result = ReadEntityGraph(in);
  if (result.ok()) {
    EXPECT_TRUE(CheckEntityGraph(*result).ok());
  } else {
    EXPECT_FALSE(result.status().message().empty());
  }
}

TEST_P(ParserFuzzTest, MutatedSnapshotDegradesGracefully) {
  // Start from a valid snapshot and flip a handful of characters.
  std::stringstream buffer;
  ASSERT_TRUE(WriteEntityGraph(BuildPaperExampleGraph(), buffer).ok());
  std::string snapshot = buffer.str();
  Rng rng(GetParam() * 977 + 3);
  for (int flips = 0; flips < 8; ++flips) {
    const size_t pos = rng.NextBounded(snapshot.size());
    snapshot[pos] = static_cast<char>('a' + rng.NextBounded(26));
  }
  std::stringstream in(snapshot);
  auto result = ReadEntityGraph(in);
  if (result.ok()) {
    // Mutations that keep the format valid must still yield a
    // structurally consistent graph.
    EXPECT_TRUE(CheckEntityGraph(*result).ok());
  } else {
    const StatusCode code = result.status().code();
    EXPECT_TRUE(code == StatusCode::kCorruption ||
                code == StatusCode::kFailedPrecondition)
        << result.status().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Range<uint64_t>(7000, 7040));

}  // namespace
}  // namespace egp
