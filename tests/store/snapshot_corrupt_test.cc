// Malformed-input battery for the .egps reader: truncations, bit flips,
// wrong magic/version/endianness, hostile TOC entries, and structurally
// corrupt payloads must all come back as clean Status errors — never a
// crash, hang, or out-of-bounds read (this suite runs under ASan/UBSan
// in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <memory>
#include <sstream>
#include <vector>

#include "graph/entity_graph_builder.h"
#include "store/format.h"
#include "store/mapped_file.h"
#include "store/snapshot_reader.h"
#include "store/snapshot_writer.h"
#include "tests/testing/subprocess.h"

namespace egp {
namespace {

using testing_util::TempPath;

EntityGraph SmallGraph() {
  EntityGraphBuilder builder;
  const TypeId t = builder.AddEntityType("T");
  const TypeId u = builder.AddEntityType("U");
  const EntityId a = builder.AddTypedEntity("a", "T");
  const EntityId b = builder.AddTypedEntity("b", "U");
  const EntityId c = builder.AddTypedEntity("c", "U");
  const RelTypeId r = builder.AddRelationshipType("rel", t, u);
  builder.AddRelationshipType("rel2", t, u);  // declared, no edges
  EXPECT_TRUE(builder.AddEdge(a, r, b).ok());
  EXPECT_TRUE(builder.AddEdge(a, r, c).ok());
  auto graph = builder.Build();
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

std::vector<uint8_t> ValidSnapshotBytes() {
  const EntityGraph graph = SmallGraph();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  EXPECT_TRUE(
      WriteSnapshot(graph, FrozenGraph::Freeze(graph), buffer).ok());
  const std::string bytes = buffer.str();
  return std::vector<uint8_t>(bytes.begin(), bytes.end());
}

/// Opens a byte image; the backing keeps the copy alive for the call.
Result<StoredGraph> Open(std::vector<uint8_t> bytes,
                         bool verify_checksums = true) {
  auto owned = std::make_shared<std::vector<uint8_t>>(std::move(bytes));
  return OpenSnapshotBytes({owned->data(), owned->size()}, owned,
                           verify_checksums);
}

TEST(SnapshotCorruptTest, ValidImageOpens) {
  const auto stored = Open(ValidSnapshotBytes());
  ASSERT_TRUE(stored.ok()) << stored.status().ToString();
  EXPECT_EQ(stored->graph.num_entities(), 3u);
  EXPECT_EQ(stored->graph.num_edges(), 2u);
}

TEST(SnapshotCorruptTest, EveryTruncationFailsCleanly) {
  const std::vector<uint8_t> valid = ValidSnapshotBytes();
  for (size_t length = 0; length < valid.size(); ++length) {
    const auto result =
        Open(std::vector<uint8_t>(valid.begin(), valid.begin() + length));
    ASSERT_FALSE(result.ok()) << "truncation to " << length
                              << " bytes was accepted";
  }
}

TEST(SnapshotCorruptTest, HeaderAndTocBitFlipsAllDetected) {
  const std::vector<uint8_t> valid = ValidSnapshotBytes();
  // Every byte of the header + TOC is load-bearing: magic, version,
  // endianness, sizes, and the checksums that cover the rest.
  const size_t critical = sizeof(SnapshotHeader) +
                          kSnapshotSectionCount * sizeof(SectionEntry);
  ASSERT_LE(critical, valid.size());
  for (size_t at = 0; at < critical; ++at) {
    for (const uint8_t flip : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::vector<uint8_t> corrupt = valid;
      corrupt[at] ^= flip;
      const auto result = Open(std::move(corrupt));
      ASSERT_FALSE(result.ok())
          << "flip 0x" << std::hex << int{flip} << " at byte " << std::dec
          << at << " was accepted";
    }
  }
}

TEST(SnapshotCorruptTest, PayloadFlipsFailChecksums) {
  const std::vector<uint8_t> valid = ValidSnapshotBytes();
  SnapshotHeader header;
  std::memcpy(&header, valid.data(), sizeof(header));
  for (uint32_t i = 0; i < header.section_count; ++i) {
    SectionEntry entry;
    std::memcpy(&entry,
                valid.data() + sizeof(header) + i * sizeof(entry),
                sizeof(entry));
    if (entry.length == 0) continue;
    for (const uint64_t at :
         {entry.offset, entry.offset + entry.length / 2,
          entry.offset + entry.length - 1}) {
      std::vector<uint8_t> corrupt = valid;
      corrupt[at] ^= 0xFF;
      const auto result = Open(std::move(corrupt));
      ASSERT_FALSE(result.ok()) << "payload flip in section " << entry.id
                                << " at " << at << " was accepted";
    }
  }
}

TEST(SnapshotCorruptTest, WrongVersionAndEndiannessRejected) {
  std::vector<uint8_t> bytes = ValidSnapshotBytes();
  SnapshotHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));

  std::vector<uint8_t> wrong_version = bytes;
  header.version = kSnapshotVersion + 1;
  std::memcpy(wrong_version.data(), &header, sizeof(header));
  const auto version_result = Open(std::move(wrong_version));
  ASSERT_FALSE(version_result.ok());
  EXPECT_NE(version_result.status().message().find("version"),
            std::string::npos);

  std::memcpy(&header, bytes.data(), sizeof(header));
  std::vector<uint8_t> wrong_endian = bytes;
  header.endian_tag = __builtin_bswap32(kSnapshotEndianTag);
  std::memcpy(wrong_endian.data(), &header, sizeof(header));
  EXPECT_FALSE(Open(std::move(wrong_endian)).ok());
}

TEST(SnapshotCorruptTest, MisalignedImageBaseRejected) {
  // CSR arrays are served in place, so an image at an odd offset of a
  // larger buffer must be rejected up front, not read misaligned.
  const std::vector<uint8_t> valid = ValidSnapshotBytes();
  // 1-byte prefix: the image base inside the buffer is odd.
  auto shifted = std::make_shared<std::vector<uint8_t>>(valid.size() + 1);
  std::copy(valid.begin(), valid.end(), shifted->begin() + 1);
  const auto result = OpenSnapshotBytes(
      {shifted->data() + 1, valid.size()}, shifted);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("aligned"), std::string::npos);
}

TEST(SnapshotCorruptTest, NotASnapshotRejected) {
  const std::string text = "edge\ta\trel\tT\tU\tb\n";
  EXPECT_FALSE(Open({text.begin(), text.end()}).ok());
  EXPECT_FALSE(Open({}).ok());
  EXPECT_FALSE(Open({'E', 'G', 'P', 'S'}).ok());  // magic prefix only
}

/// Structural corruption with checksums *recomputed* (a hostile writer,
/// not random damage): bounds checks must still catch everything. Flips
/// bytes via a patch function, then re-seals section and TOC checksums.
std::vector<uint8_t> ResealedPatch(
    std::vector<uint8_t> bytes,
    const std::function<void(std::vector<uint8_t>&)>& patch) {
  patch(bytes);
  SnapshotHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  for (uint32_t i = 0; i < header.section_count; ++i) {
    SectionEntry entry;
    uint8_t* slot = bytes.data() + sizeof(header) + i * sizeof(entry);
    std::memcpy(&entry, slot, sizeof(entry));
    entry.checksum = Fnv1a64(bytes.data() + entry.offset, entry.length);
    std::memcpy(slot, &entry, sizeof(entry));
  }
  header.toc_checksum =
      Fnv1a64(bytes.data() + sizeof(header),
              header.section_count * sizeof(SectionEntry));
  std::memcpy(bytes.data(), &header, sizeof(header));
  return bytes;
}

/// Locates a section's TOC entry.
SectionEntry FindSection(const std::vector<uint8_t>& bytes, uint32_t id) {
  SnapshotHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  for (uint32_t i = 0; i < header.section_count; ++i) {
    SectionEntry entry;
    std::memcpy(&entry, bytes.data() + sizeof(header) + i * sizeof(entry),
                sizeof(entry));
    if (entry.id == id) return entry;
  }
  ADD_FAILURE() << "section " << id << " not found";
  return SectionEntry{};
}

TEST(SnapshotCorruptTest, HostileStructuralEditsRejected) {
  const std::vector<uint8_t> valid = ValidSnapshotBytes();

  // Edge endpoint out of range.
  {
    const SectionEntry edges = FindSection(valid, kSectionEdges);
    auto bytes = ResealedPatch(valid, [&](std::vector<uint8_t>& b) {
      const uint32_t huge = 0xFFFF;
      std::memcpy(b.data() + edges.offset, &huge, sizeof(huge));
    });
    for (const bool verify : {true, false}) {
      const auto result = Open(bytes, verify);
      ASSERT_FALSE(result.ok());
      EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
    }
  }
  // Entity type id out of range.
  {
    const SectionEntry types = FindSection(valid, kSectionEntityTypes);
    auto bytes = ResealedPatch(valid, [&](std::vector<uint8_t>& b) {
      // Flat type array sits after count + (count+1) offsets.
      const size_t flat = types.offset + 8 * (1 + 3 + 1);
      const uint32_t huge = 77;
      std::memcpy(b.data() + flat, &huge, sizeof(huge));
    });
    EXPECT_FALSE(Open(std::move(bytes)).ok());
  }
  // Duplicate relationship-type identity (second record rewritten to
  // equal the first): no builder can produce this, so the reader must
  // reject it rather than serve split relationship types.
  {
    const SectionEntry rels = FindSection(valid, kSectionRelTypes);
    auto bytes = ResealedPatch(valid, [&](std::vector<uint8_t>& b) {
      std::memcpy(b.data() + rels.offset + sizeof(RelTypeRecord),
                  b.data() + rels.offset, sizeof(RelTypeRecord));
    });
    const auto result = Open(std::move(bytes));
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("duplicate relationship"),
              std::string::npos)
        << result.status().message();
  }
  // Non-monotone CSR offsets. The middle entry is patched far past the
  // arc array: the reader must reject it from the offset table alone,
  // without ever dereferencing arcs[offsets[i]] (a huge entry whose
  // decrease only shows up later used to drive out-of-bounds reads).
  {
    const SectionEntry offsets = FindSection(valid, kSectionOutOffsets);
    auto bytes = ResealedPatch(valid, [&](std::vector<uint8_t>& b) {
      const uint64_t big = 1u << 30;
      std::memcpy(b.data() + offsets.offset + 8, &big, sizeof(big));
    });
    const auto result = Open(std::move(bytes));
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("decrease"),
              std::string::npos)
        << result.status().message();
  }
  // Unsorted arc run (swap the two out-arcs of entity 'a').
  {
    const SectionEntry arcs = FindSection(valid, kSectionOutArcs);
    auto bytes = ResealedPatch(valid, [&](std::vector<uint8_t>& b) {
      uint64_t first, second;
      std::memcpy(&first, b.data() + arcs.offset, 8);
      std::memcpy(&second, b.data() + arcs.offset + 8, 8);
      std::memcpy(b.data() + arcs.offset, &second, 8);
      std::memcpy(b.data() + arcs.offset + 8, &first, 8);
    });
    EXPECT_FALSE(Open(std::move(bytes)).ok());
  }
  // Structurally valid arcs that disagree with the edge array: entity
  // c's reverse arc re-pointed from a to b (in bounds, run of one stays
  // sorted, checksums resealed). The multiset fingerprint must catch it.
  {
    const SectionEntry arcs = FindSection(valid, kSectionInArcs);
    auto bytes = ResealedPatch(valid, [&](std::vector<uint8_t>& b) {
      const uint32_t entity_b = 1;
      std::memcpy(b.data() + arcs.offset + 8, &entity_b,
                  sizeof(entity_b));
    });
    const auto result = Open(std::move(bytes));
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("disagrees with the edge"),
              std::string::npos)
        << result.status().message();
  }
  // Section pushed outside the file.
  {
    auto bytes = ResealedPatch(valid, [&](std::vector<uint8_t>& b) {
      SnapshotHeader header;
      std::memcpy(&header, b.data(), sizeof(header));
      SectionEntry entry;
      uint8_t* slot = b.data() + sizeof(header);
      std::memcpy(&entry, slot, sizeof(entry));
      entry.offset = (b.size() + 8) & ~size_t{7};
      entry.length = 0;  // keep the test's own reseal in bounds
      std::memcpy(slot, &entry, sizeof(entry));
    });
    EXPECT_FALSE(Open(std::move(bytes)).ok());
  }
  // A required section relabeled away.
  {
    auto bytes = ResealedPatch(valid, [&](std::vector<uint8_t>& b) {
      SnapshotHeader header;
      std::memcpy(&header, b.data(), sizeof(header));
      SectionEntry entry;
      uint8_t* slot = b.data() + sizeof(header);
      std::memcpy(&entry, slot, sizeof(entry));
      entry.id = 900;  // unknown ids are skipped; meta now missing
      std::memcpy(slot, &entry, sizeof(entry));
    });
    const auto result = Open(std::move(bytes));
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("missing"), std::string::npos);
  }
  // Duplicate string in the entity-name table (swap blob bytes so both
  // names read "a").
  {
    const SectionEntry names = FindSection(valid, kSectionEntityNames);
    auto bytes = ResealedPatch(valid, [&](std::vector<uint8_t>& b) {
      // blob = "abc" after count + 4 offsets; make it "aac".
      const size_t blob = names.offset + 8 * (1 + 4);
      b[blob + 1] = 'a';
    });
    const auto result = Open(std::move(bytes));
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("duplicate"),
              std::string::npos);
  }
}

TEST(SnapshotCorruptTest, FileLevelErrors) {
  EXPECT_EQ(OpenSnapshot("/no/such/file.egps").status().code(),
            StatusCode::kIOError);
  // A directory is not a snapshot; both modes must fail cleanly.
  for (const auto mode : {SnapshotOpenOptions::Mode::kMmap,
                          SnapshotOpenOptions::Mode::kStream}) {
    SnapshotOpenOptions options;
    options.mode = mode;
    EXPECT_FALSE(OpenSnapshot("/tmp", options).ok());
  }
  // Truncated on disk (mmap path must bounds-check, not fault).
  const std::vector<uint8_t> valid = ValidSnapshotBytes();
  const std::string path = TempPath("truncated.egps");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(valid.data()),
              static_cast<std::streamsize>(valid.size() / 2));
  }
  for (const auto mode : {SnapshotOpenOptions::Mode::kMmap,
                          SnapshotOpenOptions::Mode::kStream}) {
    SnapshotOpenOptions options;
    options.mode = mode;
    EXPECT_FALSE(OpenSnapshot(path, options).ok());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace egp
