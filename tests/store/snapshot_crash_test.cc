// Crash-safety of the snapshot writer under injected write-path faults:
// ENOSPC mid-write, fsync failure, open failure, and a failed rename
// must each return a Status, remove the temp file, and leave a
// previously committed .egps byte-for-byte intact. Injected short
// writes are absorbed by the FdSink loop and corrupt nothing.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/fault.h"
#include "datagen/paper_example.h"
#include "graph/frozen_graph.h"
#include "store/snapshot_writer.h"
#include "tests/testing/subprocess.h"

namespace egp {
namespace {

using testing_util::Slurp;
using testing_util::TempPath;

class SnapshotCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = BuildPaperExampleGraph();
    frozen_ = FrozenGraph::Freeze(graph_);
    dir_ = TempPath("snapshot_crash");
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(std::filesystem::create_directory(dir_));
    path_ = dir_ + "/graph.egps";
    ASSERT_TRUE(WriteSnapshotFile(graph_, frozen_, path_).ok());
    golden_ = Slurp(path_);
    ASSERT_FALSE(golden_.empty());
  }

  void TearDown() override {
    ClearFaults();
    std::filesystem::remove_all(dir_);
  }

  /// Files in the snapshot directory besides the committed .egps.
  std::vector<std::string> StrayFiles() const {
    std::vector<std::string> strays;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      if (entry.path().string() != path_) {
        strays.push_back(entry.path().filename().string());
      }
    }
    return strays;
  }

  /// One faulted overwrite attempt: must fail, clean its temp file, and
  /// leave the committed snapshot untouched.
  void ExpectFailedRewriteLeavesSnapshotIntact(const char* schedule) {
    SCOPED_TRACE(schedule);
    ASSERT_TRUE(ConfigureFaults(schedule).ok());
    const Status write = WriteSnapshotFile(graph_, frozen_, path_);
    ClearFaults();
    EXPECT_FALSE(write.ok()) << "schedule should have failed the write";
    EXPECT_TRUE(StrayFiles().empty())
        << "temp file left behind: " << StrayFiles()[0];
    EXPECT_EQ(Slurp(path_), golden_) << "committed snapshot was disturbed";
  }

  EntityGraph graph_;
  FrozenGraph frozen_;
  std::string dir_;
  std::string path_;
  std::string golden_;
};

TEST_F(SnapshotCrashTest, EnospcMidWriteCleansUp) {
  ExpectFailedRewriteLeavesSnapshotIntact("store.write=err:ENOSPC@2");
}

TEST_F(SnapshotCrashTest, EnospcOnFirstWriteCleansUp) {
  ExpectFailedRewriteLeavesSnapshotIntact("store.write=err:ENOSPC@1");
}

TEST_F(SnapshotCrashTest, FsyncFailureCleansUp) {
  ExpectFailedRewriteLeavesSnapshotIntact("store.fsync=err:ENOSPC@1");
}

TEST_F(SnapshotCrashTest, OpenFailureLeavesSnapshotIntact) {
  ExpectFailedRewriteLeavesSnapshotIntact("store.open=err:EMFILE@1");
}

TEST_F(SnapshotCrashTest, RenameFailureCleansUp) {
  ExpectFailedRewriteLeavesSnapshotIntact("store.rename=err:EIO@1");
}

TEST_F(SnapshotCrashTest, ShortWritesAreAbsorbedNotCorrupting) {
  // Every second write is clamped to 3 bytes; the FdSink retry loop
  // must still deliver every byte, in order.
  ASSERT_TRUE(ConfigureFaults("store.write=short:3@every:2").ok());
  const std::string rewritten = dir_ + "/rewritten.egps";
  const Status write = WriteSnapshotFile(graph_, frozen_, rewritten);
  ClearFaults();
  ASSERT_TRUE(write.ok()) << write.ToString();
  EXPECT_EQ(Slurp(rewritten), golden_);
}

TEST_F(SnapshotCrashTest, RecoveryAfterTheFaultClears) {
  ASSERT_TRUE(ConfigureFaults("store.fsync=err:ENOSPC").ok());
  EXPECT_FALSE(WriteSnapshotFile(graph_, frozen_, path_).ok());
  ClearFaults();
  // Same writer, same destination, no fault: the rewrite commits.
  EXPECT_TRUE(WriteSnapshotFile(graph_, frozen_, path_).ok());
  EXPECT_EQ(Slurp(path_), golden_);
  EXPECT_TRUE(StrayFiles().empty());
}

}  // namespace
}  // namespace egp
