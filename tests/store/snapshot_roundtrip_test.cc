// Round-trip fidelity of the .egps snapshot store: a written snapshot
// reopens (streaming and mmap) into a graph that matches the original
// structure for structure — names, multi-typing, membership order,
// relationship types, edge order, CSR arrays — and previews served from
// it are byte-identical to previews from the source graph.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <vector>

#include "datagen/generator.h"
#include "graph/entity_graph_builder.h"
#include "graph/frozen_graph.h"
#include "io/graph_io.h"
#include "io/json_export.h"
#include "io/ntriples.h"
#include "service/engine.h"
#include "store/snapshot_reader.h"
#include "store/snapshot_writer.h"
#include "tests/testing/subprocess.h"

namespace egp {
namespace {

#ifndef EGP_SAMPLE_NT
#error "EGP_SAMPLE_NT must be defined by the build"
#endif

using testing_util::TempPath;

/// A graph exercising the corners the format must carry: multi-typed
/// entities, membership order that differs from entity-id order, two
/// relationship types sharing a surface name, parallel edges, names
/// needing escapes, and an untyped entity.
EntityGraph CornersGraph() {
  EntityGraphBuilder builder;
  const TypeId person = builder.AddEntityType("PERSON");
  const TypeId film = builder.AddEntityType("FILM");
  const TypeId award = builder.AddEntityType("AWARD");
  const EntityId grace = builder.AddEntity("Grace \"Amazing\" Hopper");
  const EntityId mib = builder.AddEntity("Men in Black\t<1997>");
  const EntityId oscar = builder.AddEntity("Oscar");
  const EntityId will = builder.AddEntity("Will Smith");
  builder.AddEntity("loner");  // no types, no edges
  // Membership order differs from id order: will before grace.
  builder.AddEntityToType(will, person);
  builder.AddEntityToType(grace, person);
  builder.AddEntityToType(grace, film);  // multi-typed
  builder.AddEntityToType(mib, film);
  builder.AddEntityToType(oscar, award);
  // Same surface name, distinct endpoint types.
  const RelTypeId won_p =
      builder.AddRelationshipType("Award Winners", person, award);
  const RelTypeId won_f =
      builder.AddRelationshipType("Award Winners", film, award);
  const RelTypeId acted =
      builder.AddRelationshipType("Actor", person, film);
  EXPECT_TRUE(builder.AddEdge(will, acted, mib).ok());
  EXPECT_TRUE(builder.AddEdge(will, acted, mib).ok());  // parallel edge
  EXPECT_TRUE(builder.AddEdge(will, won_p, oscar).ok());
  EXPECT_TRUE(builder.AddEdge(mib, won_f, oscar).ok());
  EXPECT_TRUE(builder.AddEdge(grace, won_p, oscar).ok());
  auto graph = builder.Build();
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

void ExpectSameGraph(const EntityGraph& a, const EntityGraph& b) {
  ASSERT_EQ(a.num_entities(), b.num_entities());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.num_types(), b.num_types());
  ASSERT_EQ(a.num_rel_types(), b.num_rel_types());
  for (EntityId e = 0; e < a.num_entities(); ++e) {
    EXPECT_EQ(a.EntityName(e), b.EntityName(e));
    EXPECT_EQ(a.TypesOf(e), b.TypesOf(e));
    EXPECT_EQ(a.OutEdges(e), b.OutEdges(e));
    EXPECT_EQ(a.InEdges(e), b.InEdges(e));
  }
  for (TypeId t = 0; t < a.num_types(); ++t) {
    EXPECT_EQ(a.TypeName(t), b.TypeName(t));
    // Order preserved, not just the set: sampling is order-sensitive.
    EXPECT_EQ(a.EntitiesOfType(t), b.EntitiesOfType(t));
  }
  for (RelTypeId r = 0; r < a.num_rel_types(); ++r) {
    EXPECT_EQ(a.RelSurfaceName(r), b.RelSurfaceName(r));
    EXPECT_EQ(a.RelType(r).src_type, b.RelType(r).src_type);
    EXPECT_EQ(a.RelType(r).dst_type, b.RelType(r).dst_type);
    EXPECT_EQ(a.EdgesOfRelType(r), b.EdgesOfRelType(r));
  }
  for (EdgeId id = 0; id < a.num_edges(); ++id) {
    EXPECT_EQ(a.Edge(id).src, b.Edge(id).src);
    EXPECT_EQ(a.Edge(id).dst, b.Edge(id).dst);
    EXPECT_EQ(a.Edge(id).rel_type, b.Edge(id).rel_type);
  }
}

void ExpectSameFrozen(const FrozenGraph& a, const FrozenGraph& b) {
  ASSERT_EQ(a.num_entities(), b.num_entities());
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  for (EntityId e = 0; e < a.num_entities(); ++e) {
    const auto out_a = a.OutArcs(e), out_b = b.OutArcs(e);
    const auto in_a = a.InArcs(e), in_b = b.InArcs(e);
    ASSERT_EQ(out_a.size(), out_b.size());
    ASSERT_EQ(in_a.size(), in_b.size());
    for (size_t i = 0; i < out_a.size(); ++i) {
      EXPECT_EQ(out_a[i].neighbor, out_b[i].neighbor);
      EXPECT_EQ(out_a[i].rel_type, out_b[i].rel_type);
    }
    for (size_t i = 0; i < in_a.size(); ++i) {
      EXPECT_EQ(in_a[i].neighbor, in_b[i].neighbor);
      EXPECT_EQ(in_a[i].rel_type, in_b[i].rel_type);
    }
  }
}

TEST(SnapshotRoundtripTest, CornersGraphBothOpenModes) {
  const EntityGraph graph = CornersGraph();
  const FrozenGraph frozen = FrozenGraph::Freeze(graph);
  const std::string path = TempPath("corners.egps");
  ASSERT_TRUE(WriteSnapshotFile(graph, frozen, path).ok());

  for (const auto mode : {SnapshotOpenOptions::Mode::kStream,
                          SnapshotOpenOptions::Mode::kMmap}) {
    SCOPED_TRACE(mode == SnapshotOpenOptions::Mode::kMmap ? "mmap"
                                                          : "stream");
    SnapshotOpenOptions options;
    options.mode = mode;
    auto stored = OpenSnapshot(path, options);
    ASSERT_TRUE(stored.ok()) << stored.status().ToString();
    EXPECT_EQ(stored->zero_copy,
              mode == SnapshotOpenOptions::Mode::kMmap);
    EXPECT_EQ(stored->frozen.is_view(), true);
    ExpectSameGraph(graph, stored->graph);
    ExpectSameFrozen(frozen, stored->frozen);
  }
  std::remove(path.c_str());
}

TEST(SnapshotRoundtripTest, DatagenDomainSurvives) {
  GeneratorOptions options;
  options.scale = 0.05;
  auto domain = GenerateDomainByName("basketball", options);
  ASSERT_TRUE(domain.ok());
  const FrozenGraph frozen = FrozenGraph::Freeze(domain->graph);
  std::stringstream buffer(std::ios::in | std::ios::out |
                           std::ios::binary);
  ASSERT_TRUE(WriteSnapshot(domain->graph, frozen, buffer).ok());
  const std::string bytes = buffer.str();
  auto owned = std::make_shared<std::vector<uint8_t>>(bytes.begin(),
                                                      bytes.end());
  auto stored = OpenSnapshotBytes({owned->data(), owned->size()}, owned);
  ASSERT_TRUE(stored.ok()) << stored.status().ToString();
  ExpectSameGraph(domain->graph, stored->graph);
  ExpectSameFrozen(frozen, stored->frozen);
}

TEST(SnapshotRoundtripTest, PreviewBitIdentityAllMeasures) {
  auto parsed = ReadNTriplesFile(EGP_SAMPLE_NT);
  ASSERT_TRUE(parsed.ok());
  const std::string path = TempPath("sample_identity.egps");
  ASSERT_TRUE(CompileSnapshotFile(*parsed, path).ok());

  PreviewRequest request;
  request.size = {2, 4};
  request.sample_rows = 3;
  request.sample_seed = 7;
  request.measures.key = "randomwalk";
  request.measures.nonkey = "entropy";  // exercises the prebuilt CSR path

  const Engine golden_engine = Engine::FromGraph(EntityGraph(*parsed));
  const auto golden = golden_engine.Preview(request);
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  const std::string golden_preview =
      PreviewToJson(*golden->prepared, golden->preview);
  const std::string golden_tuples = MaterializedPreviewToJson(
      *golden_engine.graph(), golden->materialized);

  for (const auto mode : {SnapshotOpenOptions::Mode::kStream,
                          SnapshotOpenOptions::Mode::kMmap}) {
    SCOPED_TRACE(mode == SnapshotOpenOptions::Mode::kMmap ? "mmap"
                                                          : "stream");
    SnapshotOpenOptions options;
    options.mode = mode;
    auto stored = OpenSnapshot(path, options);
    ASSERT_TRUE(stored.ok()) << stored.status().ToString();
    const Engine engine = Engine::FromFrozen(std::move(stored->graph),
                                             std::move(stored->frozen));
    ASSERT_NE(engine.frozen(), nullptr);
    const auto served = engine.Preview(request);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_EQ(golden->score, served->score);
    EXPECT_EQ(golden_preview,
              PreviewToJson(*served->prepared, served->preview));
    EXPECT_EQ(golden_tuples, MaterializedPreviewToJson(*engine.graph(),
                                                       served->materialized));
  }
  std::remove(path.c_str());
}

TEST(SnapshotRoundtripTest, AutoLoaderDetectsByMagicNotExtension) {
  auto parsed = ReadNTriplesFile(EGP_SAMPLE_NT);
  ASSERT_TRUE(parsed.ok());
  // Snapshot written under a .nt name still opens as a snapshot.
  const std::string disguised = TempPath("disguised_snapshot.nt");
  ASSERT_TRUE(CompileSnapshotFile(*parsed, disguised).ok());
  auto magic = FileHasSnapshotMagic(disguised);
  ASSERT_TRUE(magic.ok());
  EXPECT_TRUE(*magic);
  auto loaded = LoadGraphFileAuto(disguised);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->storage, GraphStorage::kSnapshot);
  ASSERT_TRUE(loaded->frozen.has_value());
  ExpectSameGraph(*parsed, loaded->graph);
  std::remove(disguised.c_str());

  // A text file named .egps is rejected, not mis-parsed.
  const std::string fake = TempPath("fake.egps");
  {
    std::ofstream out(fake);
    out << "x a T .\n";
  }
  EXPECT_EQ(LoadGraphFileAuto(fake).status().code(),
            StatusCode::kCorruption);
  std::remove(fake.c_str());
}

TEST(SnapshotRoundtripTest, NTriplesWriterRoundTrips) {
  auto parsed = ReadNTriplesFile(EGP_SAMPLE_NT);
  ASSERT_TRUE(parsed.ok());
  std::stringstream out;
  ASSERT_TRUE(WriteNTriples(*parsed, out).ok());
  auto reparsed = ReadNTriples(out);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ExpectSameGraph(*parsed, *reparsed);
}

TEST(SnapshotRoundtripTest, FrozenHandleSharesBacking) {
  const EntityGraph graph = CornersGraph();
  FrozenGraph frozen = FrozenGraph::Freeze(graph);
  // Copies are cheap handles onto the same arrays.
  const FrozenGraph copy = frozen;
  EXPECT_EQ(copy.out_arcs().data(), frozen.out_arcs().data());
  // The backing outlives the original handle.
  frozen = FrozenGraph();
  EXPECT_EQ(copy.num_arcs(), graph.num_edges());
  EXPECT_EQ(copy.OutArcs(0).size(), copy.OutDegree(0));
}

}  // namespace
}  // namespace egp
