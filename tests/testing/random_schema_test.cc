// Determinism tests for the random schema-graph helper: every property
// suite in tests/ assumes RandomSchemaGraph(seed, ...) is reproducible, so
// that assumption is itself pinned here.
#include "tests/testing/random_schema.h"

#include <gtest/gtest.h>

#include <vector>

namespace egp {
namespace {

using testing_util::RandomSchemaGraph;

/// Flattens a schema graph into a comparable fingerprint.
std::vector<uint64_t> Fingerprint(const SchemaGraph& schema) {
  std::vector<uint64_t> out;
  out.push_back(schema.num_types());
  out.push_back(schema.num_edges());
  for (TypeId t = 0; t < schema.num_types(); ++t) {
    out.push_back(schema.TypeEntityCount(t));
  }
  for (const SchemaEdge& e : schema.edges()) {
    out.push_back(e.src);
    out.push_back(e.dst);
    out.push_back(e.edge_count);
    out.push_back(e.surface_name);
  }
  return out;
}

TEST(RandomSchemaTest, SameSeedIsReproducibleAcrossCalls) {
  for (uint64_t seed = 0; seed < 16; ++seed) {
    const SchemaGraph a = RandomSchemaGraph(seed, 12, 30);
    const SchemaGraph b = RandomSchemaGraph(seed, 12, 30);
    EXPECT_EQ(Fingerprint(a), Fingerprint(b)) << "seed " << seed;
  }
}

TEST(RandomSchemaTest, RequestedShapeIsHonored) {
  const SchemaGraph schema = RandomSchemaGraph(7, 9, 21);
  EXPECT_EQ(schema.num_types(), 9u);
  EXPECT_EQ(schema.num_edges(), 21u);
  for (TypeId t = 0; t < schema.num_types(); ++t) {
    EXPECT_EQ(schema.TypeName(t), "T" + std::to_string(t));
    EXPECT_GE(schema.TypeEntityCount(t), 1u);
    EXPECT_LE(schema.TypeEntityCount(t), 100u);
  }
  for (const SchemaEdge& e : schema.edges()) {
    EXPECT_LT(e.src, schema.num_types());
    EXPECT_LT(e.dst, schema.num_types());
    EXPECT_GE(e.edge_count, 1u);
    EXPECT_LE(e.edge_count, 50u);
  }
}

TEST(RandomSchemaTest, DistinctSeedsDiverge) {
  // Not a hard guarantee of the generator, but with 40+ random draws per
  // graph two seeds colliding would indicate a broken Rng.
  const SchemaGraph a = RandomSchemaGraph(1, 12, 30);
  const SchemaGraph b = RandomSchemaGraph(2, 12, 30);
  EXPECT_NE(Fingerprint(a), Fingerprint(b));
}

}  // namespace
}  // namespace egp
