// Test helper: random schema graphs for property suites.
#ifndef EGP_TESTS_TESTING_RANDOM_SCHEMA_H_
#define EGP_TESTS_TESTING_RANDOM_SCHEMA_H_

#include <string>

#include "common/rng.h"
#include "graph/schema_graph.h"

namespace egp {
namespace testing_util {

/// Random multigraph schema: `num_types` types with entity counts in
/// [1, 100], `num_edges` edges with uniform endpoints (self-loops with low
/// probability) and edge counts in [1, 50].
inline SchemaGraph RandomSchemaGraph(uint64_t seed, uint32_t num_types,
                                     uint32_t num_edges) {
  Rng rng(seed);
  SchemaGraph schema;
  for (uint32_t t = 0; t < num_types; ++t) {
    schema.AddType("T" + std::to_string(t),
                   static_cast<uint64_t>(rng.NextInt(1, 100)));
  }
  for (uint32_t e = 0; e < num_edges; ++e) {
    const TypeId src = static_cast<TypeId>(rng.NextBounded(num_types));
    TypeId dst = static_cast<TypeId>(rng.NextBounded(num_types));
    if (dst == src && !rng.NextBernoulli(0.1)) {
      dst = (dst + 1) % num_types;
    }
    schema.AddEdge("r" + std::to_string(e), src, dst,
                   static_cast<uint64_t>(rng.NextInt(1, 50)));
  }
  return schema;
}

}  // namespace testing_util
}  // namespace egp

#endif  // EGP_TESTS_TESTING_RANDOM_SCHEMA_H_
