// Test helpers for suites that shell out to built binaries (the CLI
// end-to-end suites). Shared so exit-status handling stays in one place.
#ifndef EGP_TESTS_TESTING_SUBPROCESS_H_
#define EGP_TESTS_TESTING_SUBPROCESS_H_

#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace egp {
namespace testing_util {

inline std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

/// Runs `command`, capturing stdout into a file. Returns the exit code for
/// a normal exit; 128 + signal for a signal death (so a crashing binary
/// never masquerades as success); -1 if the shell could not be spawned.
inline int RunCommand(const std::string& command,
                      const std::string& stdout_path) {
  const std::string full = command + " > " + stdout_path + " 2>/dev/null";
  const int status = std::system(full.c_str());
  if (status == -1) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

/// Like RunCommand, but captures stderr into its own file as well (for
/// asserting on diagnostics and usage errors).
inline int RunCommandCapture(const std::string& command,
                             const std::string& stdout_path,
                             const std::string& stderr_path) {
  const std::string full =
      command + " > " + stdout_path + " 2> " + stderr_path;
  const int status = std::system(full.c_str());
  if (status == -1) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

inline std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace testing_util
}  // namespace egp

#endif  // EGP_TESTS_TESTING_SUBPROCESS_H_
