// HttpRequestParser / response serialization unit tests: the bytes →
// message layer in isolation, including every limit and error mapping.
#include "server/http.h"

#include <gtest/gtest.h>

#include <string>

namespace egp {
namespace {

using State = HttpRequestParser::State;

TEST(HttpParserTest, ParsesASimpleGet) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"),
            State::kComplete);
  const HttpRequest request = parser.Take();
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/healthz");
  EXPECT_EQ(request.minor_version, 1);
  ASSERT_NE(request.FindHeader("host"), nullptr);  // case-insensitive
  EXPECT_EQ(*request.FindHeader("HOST"), "x");
  EXPECT_TRUE(request.body.empty());
  EXPECT_TRUE(request.KeepAlive());
}

TEST(HttpParserTest, ParsesAPostBodyByContentLength) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed("POST /v1/preview HTTP/1.1\r\n"
                        "Content-Type: application/json\r\n"
                        "Content-Length: 7\r\n\r\n{\"k\":2}"),
            State::kComplete);
  const HttpRequest request = parser.Take();
  EXPECT_EQ(request.body, "{\"k\":2}");
  EXPECT_EQ(request.Path(), "/v1/preview");
}

TEST(HttpParserTest, AcceptsByteByByteDelivery) {
  const std::string raw =
      "POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc";
  HttpRequestParser parser;
  for (size_t i = 0; i < raw.size() - 1; ++i) {
    ASSERT_EQ(parser.Feed(std::string_view(&raw[i], 1)), State::kNeedMore)
        << "byte " << i;
  }
  ASSERT_EQ(parser.Feed(std::string_view(&raw[raw.size() - 1], 1)),
            State::kComplete);
  EXPECT_EQ(parser.Take().body, "abc");
}

TEST(HttpParserTest, HandlesPipelinedRequestsAcrossTake) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"),
            State::kComplete);
  EXPECT_EQ(parser.Take().target, "/a");
  ASSERT_EQ(parser.Continue(), State::kComplete);
  EXPECT_EQ(parser.Take().target, "/b");
  EXPECT_TRUE(parser.AtMessageBoundary());
}

TEST(HttpParserTest, QueryStringSplitsFromPath) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed("GET /v1/datasets?verbose=1 HTTP/1.1\r\n\r\n"),
            State::kComplete);
  const HttpRequest request = parser.Take();
  EXPECT_EQ(request.Path(), "/v1/datasets");
  EXPECT_EQ(request.Query(), "verbose=1");
}

TEST(HttpParserTest, ConnectionHeaderControlsKeepAlive) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"),
            State::kComplete);
  EXPECT_FALSE(parser.Take().KeepAlive());
  ASSERT_EQ(parser.Feed("GET / HTTP/1.0\r\n\r\n"), State::kComplete);
  EXPECT_FALSE(parser.Take().KeepAlive());  // 1.0 default: close
  ASSERT_EQ(parser.Feed("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"),
            State::kComplete);
  EXPECT_TRUE(parser.Take().KeepAlive());
}

TEST(HttpParserTest, ConnectionHeaderIsATokenList) {
  // RFC 9110 §7.6.1: Connection is a comma-separated token list.
  // "close, TE" must close exactly like a lone "close"; matching must be
  // case-insensitive and whole-token ("closet" is not "close").
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed("GET / HTTP/1.1\r\nConnection: close, TE\r\n\r\n"),
            State::kComplete);
  EXPECT_FALSE(parser.Take().KeepAlive());
  ASSERT_EQ(parser.Feed("GET / HTTP/1.1\r\nConnection: TE ,Close\r\n\r\n"),
            State::kComplete);
  EXPECT_FALSE(parser.Take().KeepAlive());
  ASSERT_EQ(parser.Feed("GET / HTTP/1.1\r\nConnection: closet\r\n\r\n"),
            State::kComplete);
  EXPECT_TRUE(parser.Take().KeepAlive());  // not the close token
  ASSERT_EQ(
      parser.Feed("GET / HTTP/1.0\r\nConnection: TE, Keep-Alive\r\n\r\n"),
      State::kComplete);
  EXPECT_TRUE(parser.Take().KeepAlive());
  // close wins when a confused client sends both.
  ASSERT_EQ(parser.Feed(
                "GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n"),
            State::kComplete);
  EXPECT_FALSE(parser.Take().KeepAlive());
}

TEST(HeaderListContainsTokenTest, MatchesTokensNotSubstrings) {
  EXPECT_TRUE(HeaderListContainsToken("close", "close"));
  EXPECT_TRUE(HeaderListContainsToken("close, TE", "close"));
  EXPECT_TRUE(HeaderListContainsToken("TE , close", "close"));
  EXPECT_TRUE(HeaderListContainsToken("CLOSE", "close"));
  EXPECT_TRUE(HeaderListContainsToken(", ,close", "close"));  // empty elems
  EXPECT_FALSE(HeaderListContainsToken("closet", "close"));
  EXPECT_FALSE(HeaderListContainsToken("pre-close", "close"));
  EXPECT_FALSE(HeaderListContainsToken("", "close"));
}

TEST(HttpParserTest, RejectsMalformedRequestLines) {
  for (const char* bad : {
           "GET\r\n\r\n",                        // no target/version
           "GET / HTTP/1.1 extra\r\n\r\n",       // junk after version
           "GET  / HTTP/1.1\r\n\r\n",            // double space
           "G@T / HTTP/1.1\r\n\r\n",             // bad method token
           "GET relative HTTP/1.1\r\n\r\n",      // not origin-form
       }) {
    HttpRequestParser parser;
    ASSERT_EQ(parser.Feed(bad), State::kError) << bad;
    EXPECT_EQ(parser.error_status(), 400) << bad;
  }
}

TEST(HttpParserTest, RejectsUnsupportedVersions) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed("GET / HTTP/2.0\r\n\r\n"), State::kError);
  EXPECT_EQ(parser.error_status(), 505);
}

TEST(HttpParserTest, RejectsTransferEncoding) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed("POST / HTTP/1.1\r\n"
                        "Transfer-Encoding: chunked\r\n\r\n"),
            State::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpParserTest, RejectsBadContentLength) {
  for (const char* value : {"abc", "-1", "1 2", "", "99999999999999999999"}) {
    HttpRequestParser parser;
    const std::string raw = std::string("POST / HTTP/1.1\r\nContent-Length: ") +
                            value + "\r\n\r\n";
    ASSERT_EQ(parser.Feed(raw), State::kError) << value;
    EXPECT_EQ(parser.error_status(), 400) << value;
  }
  // Duplicate-but-equal lengths are tolerated; conflicting ones are not.
  HttpRequestParser equal;
  EXPECT_EQ(equal.Feed("POST / HTTP/1.1\r\nContent-Length: 1\r\n"
                       "Content-Length: 1\r\n\r\nx"),
            State::kComplete);
  HttpRequestParser conflict;
  ASSERT_EQ(conflict.Feed("POST / HTTP/1.1\r\nContent-Length: 1\r\n"
                          "Content-Length: 2\r\n\r\n"),
            State::kError);
  EXPECT_EQ(conflict.error_status(), 400);
}

TEST(HttpParserTest, RejectsObsoleteHeaderFolding) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed("GET / HTTP/1.1\r\nA: 1\r\n  folded\r\n\r\n"),
            State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, EnforcesHeadLimit) {
  HttpParserLimits limits;
  limits.max_head_bytes = 128;
  HttpRequestParser parser(limits);
  // Oversized before the blank line ever arrives.
  const std::string huge =
      "GET / HTTP/1.1\r\nX-Padding: " + std::string(200, 'a');
  ASSERT_EQ(parser.Feed(huge), State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, EnforcesBodyLimit) {
  HttpParserLimits limits;
  limits.max_body_bytes = 16;
  HttpRequestParser parser(limits);
  ASSERT_EQ(parser.Feed("POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n"),
            State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpResponseTest, SerializesStatusAndFraming) {
  HttpResponse response;
  response.status = 200;
  response.body = "{\"ok\":true}";
  const std::string keep = SerializeResponse(response, true);
  EXPECT_EQ(keep.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(keep.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_NE(keep.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_NE(keep.find("Content-Type: application/json\r\n"),
            std::string::npos);
  EXPECT_NE(keep.find("\r\n\r\n{\"ok\":true}"), std::string::npos);

  response.close_connection = true;
  const std::string close = SerializeResponse(response, true);
  EXPECT_NE(close.find("Connection: close\r\n"), std::string::npos);
}

TEST(HttpResponseTest, OmitBodyKeepsContentLength) {
  // HEAD framing: the head — including the Content-Length the matching
  // GET would carry — without the body bytes.
  HttpResponse response;
  response.body = "{\"ok\":true}";
  const std::string head_only =
      SerializeResponse(response, true, /*omit_body=*/true);
  EXPECT_NE(head_only.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_EQ(head_only.find("{\"ok\":true}"), std::string::npos);
  EXPECT_EQ(head_only.substr(head_only.size() - 4), "\r\n\r\n");
}

TEST(HttpResponseTest, JsonErrorBodyEscapes) {
  EXPECT_EQ(JsonErrorBody(400, "bad \"quote\"\n"),
            "{\"error\":{\"status\":400,\"message\":"
            "\"bad \\\"quote\\\"\\n\"}}");
}

TEST(HttpResponseTest, ReasonPhrases) {
  EXPECT_EQ(HttpStatusReason(404), "Not Found");
  EXPECT_EQ(HttpStatusReason(503), "Service Unavailable");
  EXPECT_EQ(HttpStatusReason(418), "Error");  // unmapped non-2xx
}

}  // namespace
}  // namespace egp
