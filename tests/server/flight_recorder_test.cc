// FlightRecorder (server/flight_recorder.h): ring wraparound ordering,
// the recorded-vs-retained counters, the Filter combinations the debug
// endpoint exposes, and scrape-while-recording safety (the case the
// server hits whenever /v1/debug/requests races live traffic; run under
// TSan by the sanitized suite).
#include "server/flight_recorder.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace egp {
namespace {

RequestTrace MakeTrace(int sequence, double total_seconds = 0.001,
                       int status = 200, const std::string& dataset = "") {
  RequestTrace trace;
  trace.id = "trace-" + std::to_string(sequence);
  trace.status = status;
  trace.total_seconds = total_seconds;
  trace.dataset = dataset;
  return trace;
}

TEST(FlightRecorderTest, WraparoundKeepsNewestCapacityTraces) {
  constexpr size_t kCapacity = 8;
  constexpr int kExtra = 5;
  FlightRecorder recorder(kCapacity);
  for (int i = 0; i < static_cast<int>(kCapacity) + kExtra; ++i) {
    recorder.Record(MakeTrace(i));
  }
  EXPECT_EQ(recorder.recorded(), kCapacity + kExtra);
  EXPECT_EQ(recorder.capacity(), kCapacity);

  const std::vector<RequestTrace> traces = recorder.Snapshot();
  ASSERT_EQ(traces.size(), kCapacity);
  // Newest first: ids count down from the last recorded; the first
  // kExtra traces were overwritten.
  for (size_t i = 0; i < traces.size(); ++i) {
    const int expected = static_cast<int>(kCapacity) + kExtra - 1 -
                         static_cast<int>(i);
    EXPECT_EQ(traces[i].id, "trace-" + std::to_string(expected));
  }
}

TEST(FlightRecorderTest, BeforeWraparoundRetainsEverything) {
  FlightRecorder recorder(16);
  for (int i = 0; i < 5; ++i) recorder.Record(MakeTrace(i));
  const std::vector<RequestTrace> traces = recorder.Snapshot();
  ASSERT_EQ(traces.size(), 5u);
  EXPECT_EQ(traces.front().id, "trace-4");  // newest first
  EXPECT_EQ(traces.back().id, "trace-0");
}

TEST(FlightRecorderTest, LimitTakesNewest) {
  FlightRecorder recorder(16);
  for (int i = 0; i < 10; ++i) recorder.Record(MakeTrace(i));
  FlightRecorder::Filter filter;
  filter.limit = 3;
  const std::vector<RequestTrace> traces = recorder.Snapshot(filter);
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0].id, "trace-9");
  EXPECT_EQ(traces[2].id, "trace-7");
}

TEST(FlightRecorderTest, DatasetFilterIsExact) {
  FlightRecorder recorder(16);
  recorder.Record(MakeTrace(0, 0.001, 200, "music"));
  recorder.Record(MakeTrace(1, 0.001, 200, "movies"));
  recorder.Record(MakeTrace(2, 0.001, 200, "music"));
  FlightRecorder::Filter filter;
  filter.dataset = "music";
  const std::vector<RequestTrace> traces = recorder.Snapshot(filter);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].id, "trace-2");
  EXPECT_EQ(traces[1].id, "trace-0");
}

TEST(FlightRecorderTest, FiltersAreConjunctive) {
  FlightRecorder recorder(16);
  recorder.Record(MakeTrace(0, 0.500, 200, "music"));   // slow, 200
  recorder.Record(MakeTrace(1, 0.500, 503, "music"));   // slow, 503
  recorder.Record(MakeTrace(2, 0.0001, 503, "music"));  // fast, 503
  recorder.Record(MakeTrace(3, 0.500, 503, "movies"));  // other dataset
  FlightRecorder::Filter filter;
  filter.min_ms = 100;
  filter.status = 503;
  filter.dataset = "music";
  const std::vector<RequestTrace> traces = recorder.Snapshot(filter);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].id, "trace-1");
}

TEST(FlightRecorderTest, LimitAppliesAfterOtherFilters) {
  FlightRecorder recorder(16);
  for (int i = 0; i < 8; ++i) {
    recorder.Record(MakeTrace(i, 0.001, i % 2 == 0 ? 200 : 500));
  }
  FlightRecorder::Filter filter;
  filter.status = 500;
  filter.limit = 2;
  const std::vector<RequestTrace> traces = recorder.Snapshot(filter);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].id, "trace-7");
  EXPECT_EQ(traces[1].id, "trace-5");
}

TEST(FlightRecorderTest, ConcurrentRecordAndSnapshot) {
  // Writers hammer the ring past several wraparounds while readers
  // scrape; every snapshot must be internally consistent (full traces,
  // newest-first by construction) and the run must be data-race free
  // (the property the TSan suite checks).
  constexpr size_t kCapacity = 32;
  constexpr int kWriters = 3;
  constexpr int kTracesPerWriter = 2'000;
  FlightRecorder recorder(kCapacity);
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      for (int i = 0; i < kTracesPerWriter; ++i) {
        recorder.Record(
            MakeTrace(w * kTracesPerWriter + i, 0.001, 200, "paper"));
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::vector<RequestTrace> traces = recorder.Snapshot();
      EXPECT_LE(traces.size(), kCapacity);
      for (const RequestTrace& trace : traces) {
        // A torn copy would show a default-constructed or mixed trace.
        EXPECT_EQ(trace.status, 200);
        EXPECT_EQ(trace.dataset, "paper");
        EXPECT_EQ(trace.id.rfind("trace-", 0), 0u);
      }
    }
  });
  for (std::thread& writer : writers) writer.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(recorder.recorded(),
            static_cast<uint64_t>(kWriters) * kTracesPerWriter);
  EXPECT_EQ(recorder.Snapshot().size(), kCapacity);
}

}  // namespace
}  // namespace egp
