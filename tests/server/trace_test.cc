// End-to-end request tracing over the real event loop: X-Request-Id
// propagation, the per-phase breakdown, the trace_sink handoff, the
// flight-recorder debug endpoint, and the access-log JSON lines. The
// shed and trickle cases exercise the outcome taxonomy the runbook
// keys on ("shed", nonzero read_seconds).
#include "common/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"
#include "datagen/paper_example.h"
#include "server/access_log.h"
#include "server/admission.h"
#include "server/api.h"
#include "server/flight_recorder.h"
#include "server/http_client.h"
#include "server/http_server.h"

namespace egp {
namespace {

using namespace std::chrono_literals;

/// Collects finalized traces from the server's trace_sink (which runs
/// on the event-loop thread) for the test thread to inspect.
class TraceCollector {
 public:
  void Add(const RequestTrace& trace) {
    MutexLock lock(&mu_);
    traces_.push_back(trace);
  }

  /// Blocks until at least `n` traces arrived (bounded wait: tests must
  /// fail, not hang, when the sink never fires).
  std::vector<RequestTrace> WaitFor(size_t n) {
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    for (;;) {
      {
        MutexLock lock(&mu_);
        if (traces_.size() >= n) return traces_;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        MutexLock lock(&mu_);
        return traces_;
      }
      std::this_thread::sleep_for(2ms);
    }
  }

 private:
  Mutex mu_;
  std::vector<RequestTrace> traces_ EGP_GUARDED_BY(mu_);
};

/// One serving stack: PreviewService over the paper-example graph,
/// HttpServer with tracing on, flight recorder + collector wired into
/// the sink — the same shape tools/egp_server.cc assembles.
struct TracedServer {
  // Declaration order matters: the server must be destroyed first
  // (stopping the loop thread, and with it the trace_sink) while the
  // sink's targets below it are still alive.
  std::unique_ptr<PreviewService> service;
  FlightRecorder recorder{16};
  TraceCollector collector;
  std::unique_ptr<HttpServer> server;

  uint16_t port() const { return server->port(); }
};

std::unique_ptr<TracedServer> StartTracedServer(
    const AdmissionOptions& admission = AdmissionOptions()) {
  auto traced = std::make_unique<TracedServer>();
  std::vector<std::pair<std::string, Engine>> engines;
  engines.emplace_back("paper", Engine::FromGraph(BuildPaperExampleGraph()));
  auto catalog = DatasetCatalog::FromEngines(std::move(engines));
  EXPECT_TRUE(catalog.ok()) << catalog.status().ToString();
  traced->service = std::make_unique<PreviewService>(
      std::move(catalog).value(), "test", admission);

  HttpServerOptions options;
  options.workers = 2;
  options.read_timeout_ms = 5000;
  options.write_timeout_ms = 5000;
  options.tracing = true;
  options.trace_id_seed = 42;
  TracedServer* raw = traced.get();
  options.trace_sink = [raw](const RequestTrace& trace) {
    raw->recorder.Record(trace);
    raw->collector.Add(trace);
  };
  auto server = HttpServer::Start(
      [raw](const HttpRequest& request) {
        return raw->service->Handle(request);
      },
      options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  traced->server = std::move(server).value();
  traced->service->AttachServer(traced->server.get());
  traced->service->AttachFlightRecorder(&traced->recorder);
  return traced;
}

constexpr std::string_view kPreviewBody =
    R"({"k":2,"n":6,"sample":{"rows":2,"seed":5}})";

std::string RequestWithId(std::string_view id) {
  std::string request = "POST /v1/preview HTTP/1.1\r\n";
  request += "Content-Type: application/json\r\n";
  request += "X-Request-Id: ";
  request += id;
  request += "\r\nContent-Length: ";
  request += std::to_string(kPreviewBody.size());
  request += "\r\n\r\n";
  request += kPreviewBody;
  return request;
}

double PhaseSum(const RequestTrace& trace) {
  return trace.read_seconds + trace.queue_seconds + trace.admission_seconds +
         trace.handler_seconds + trace.serialize_seconds +
         trace.flush_seconds;
}

TEST(TraceTest, EchoesClientRequestIdWithFullPhaseBreakdown) {
  auto traced = StartTracedServer();
  HttpClient client("127.0.0.1", traced->port());

  const auto response = client.RawExchange(RequestWithId("trace-test-foo"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  const std::string* echoed = response->FindHeader("X-Request-Id");
  ASSERT_NE(echoed, nullptr);
  EXPECT_EQ(*echoed, "trace-test-foo");

  const auto traces = traced->collector.WaitFor(1);
  ASSERT_EQ(traces.size(), 1u);
  const RequestTrace& trace = traces[0];
  EXPECT_EQ(trace.id, "trace-test-foo");
  EXPECT_EQ(trace.method, "POST");
  EXPECT_EQ(trace.path, "/v1/preview");
  EXPECT_EQ(trace.dataset, "paper");
  EXPECT_EQ(trace.status, 200);
  EXPECT_EQ(trace.outcome, "ok");
  EXPECT_GT(trace.bytes_in, kPreviewBody.size());
  EXPECT_GT(trace.bytes_out, 0u);

  // Every phase is a real measurement (>= 0) and the breakdown accounts
  // for the total: the only untimed gap is the completion-queue handback
  // to the loop thread, so the sum can fall short of total only by
  // scheduling noise, and can never exceed it.
  EXPECT_GE(trace.read_seconds, 0.0);
  EXPECT_GE(trace.queue_seconds, 0.0);
  EXPECT_GE(trace.admission_seconds, 0.0);
  EXPECT_GT(trace.handler_seconds, 0.0);
  EXPECT_GE(trace.serialize_seconds, 0.0);
  EXPECT_GE(trace.flush_seconds, 0.0);
  EXPECT_GT(trace.total_seconds, 0.0);
  const double sum = PhaseSum(trace);
  EXPECT_LE(sum, trace.total_seconds * 1.01 + 1e-6);
  EXPECT_LT(trace.total_seconds - sum, 0.25);

  // The Engine annotated the same trace through CurrentRequestTrace.
  EXPECT_GT(trace.discover_seconds + trace.prepare_seconds +
                trace.sample_seconds,
            0.0);
}

TEST(TraceTest, GeneratesUniqueIdsAndServesThemFromDebugEndpoint) {
  auto traced = StartTracedServer();
  HttpClient client("127.0.0.1", traced->port());

  for (int i = 0; i < 3; ++i) {
    const auto response =
        client.Post("/v1/preview", kPreviewBody);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->status, 200);
    const std::string* id = response->FindHeader("X-Request-Id");
    ASSERT_NE(id, nullptr);
    EXPECT_EQ(id->size(), 16u);
    for (const char c : *id) {
      EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
          << "non-hex trace id char in " << *id;
    }
  }
  const auto traces = traced->collector.WaitFor(3);
  ASSERT_GE(traces.size(), 3u);
  EXPECT_NE(traces[0].id, traces[1].id);
  EXPECT_NE(traces[1].id, traces[2].id);
  EXPECT_NE(traces[0].id, traces[2].id);

  // The flight recorder serves the same traces back, newest first.
  const auto debug = client.Get("/v1/debug/requests");
  ASSERT_TRUE(debug.ok());
  ASSERT_EQ(debug->status, 200);
  EXPECT_NE(debug->body.find("\"recorded\":"), std::string::npos);
  EXPECT_NE(debug->body.find("\"capacity\":16"), std::string::npos);
  for (const RequestTrace& trace : traces) {
    EXPECT_NE(debug->body.find("\"id\":\"" + trace.id + "\""),
              std::string::npos)
        << "trace " << trace.id << " missing from /v1/debug/requests";
  }

  // Filters: an absurd min_ms excludes everything; garbage is a 400.
  const auto filtered = client.Get("/v1/debug/requests?min_ms=1000000");
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->status, 200);
  EXPECT_NE(filtered->body.find("\"requests\":[]"), std::string::npos);
  const auto bad = client.Get("/v1/debug/requests?min_ms=abc");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400);
  const auto bad_status = client.Get("/v1/debug/requests?status=42");
  ASSERT_TRUE(bad_status.ok());
  EXPECT_EQ(bad_status->status, 400);
}

TEST(TraceTest, ShedRequestIsTracedAsShed) {
  AdmissionOptions admission;
  admission.max_cold_inflight = 1;
  admission.max_cold_queue = 0;  // shed immediately: deterministic test
  admission.queue_timeout_ms = 50;
  admission.retry_after_seconds = 7;
  auto traced = StartTracedServer(admission);

  // Occupy the only cold-build slot, as a concurrent build would; the
  // unprepared measure configuration below is then shed with 503.
  AdmissionController::Ticket slot =
      traced->service->admission().AcquireCold();
  ASSERT_TRUE(slot.admitted());

  HttpClient client("127.0.0.1", traced->port());
  const auto shed = client.Post("/v1/preview", R"({"k":2,"n":6})");
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->status, 503);
  ASSERT_NE(shed->FindHeader("X-Request-Id"), nullptr);

  const auto traces = traced->collector.WaitFor(1);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].status, 503);
  EXPECT_EQ(traces[0].outcome, "shed");
  EXPECT_GE(traces[0].admission_seconds, 0.0);

  // The shed trace is filterable by status on the debug endpoint.
  const auto debug = client.Get("/v1/debug/requests?status=503");
  ASSERT_TRUE(debug.ok());
  EXPECT_NE(debug->body.find("\"outcome\":\"shed\""), std::string::npos);
}

TEST(TraceTest, TrickledRequestAccruesReadTime) {
  auto traced = StartTracedServer();
  HttpClient client("127.0.0.1", traced->port());
  client.SetTrickle(16, 20);  // drip the request: ~8 chunks, 20ms apart

  const auto response = client.Post("/v1/preview", kPreviewBody);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);

  const auto traces = traced->collector.WaitFor(1);
  ASSERT_EQ(traces.size(), 1u);
  // The request needed several trickle intervals to arrive, and all of
  // that waiting lands in the read phase (not in handler or queue).
  EXPECT_GT(traces[0].read_seconds, 0.02);
  EXPECT_GT(traces[0].total_seconds, traces[0].handler_seconds);
}

// ---------------------------------------------------------------------------
// Access-log serialization (no server needed: the sink formats traces).
// ---------------------------------------------------------------------------

RequestTrace SampleTrace() {
  RequestTrace trace;
  trace.id = "cafe012345678901";
  trace.method = "POST";
  trace.path = "/v1/preview";
  trace.dataset = "paper";
  trace.status = 200;
  trace.bytes_in = 120;
  trace.bytes_out = 640;
  trace.read_seconds = 0.001;
  trace.queue_seconds = 0.0005;
  trace.admission_seconds = 0.0;
  trace.handler_seconds = 0.01;
  trace.serialize_seconds = 0.0002;
  trace.flush_seconds = 0.0001;
  trace.total_seconds = 0.0118;
  trace.cache_hit = true;
  trace.discover_seconds = 0.009;
  return trace;
}

TEST(TraceTest, RequestTraceToJsonCarriesTheDocumentedSchema) {
  const std::string json = RequestTraceToJson(SampleTrace(), "info");
  for (const char* field :
       {"\"id\":\"cafe012345678901\"", "\"level\":\"info\"",
        "\"method\":\"POST\"", "\"path\":\"/v1/preview\"",
        "\"dataset\":\"paper\"", "\"status\":200", "\"outcome\":\"ok\"",
        "\"cacheHit\":true", "\"bytesIn\":120", "\"bytesOut\":640",
        "\"totalMs\":", "\"phases\":{", "\"readMs\":", "\"queueMs\":",
        "\"admissionMs\":", "\"handlerMs\":", "\"serializeMs\":",
        "\"flushMs\":", "\"engine\":{", "\"prepareMs\":",
        "\"discoverMs\":", "\"sampleMs\":"}) {
    EXPECT_NE(json.find(field), std::string::npos)
        << "missing " << field << " in " << json;
  }
  // Without a level the field is omitted (flight-recorder form).
  EXPECT_EQ(RequestTraceToJson(SampleTrace()).find("\"level\""),
            std::string::npos);
}

TEST(TraceTest, AccessLogWritesLevelGatedLines) {
  const std::string path =
      ::testing::TempDir() + "/egp_access_log_test.jsonl";
  std::remove(path.c_str());
  AccessLogOptions options;
  options.path = path;
  options.slow_request_ms = 5.0;  // the 11.8ms sample promotes to warning
  auto log = AccessLog::Open(options);
  ASSERT_TRUE(log.ok()) << log.status().ToString();

  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  RequestTrace slow = SampleTrace();
  (*log)->Write(slow);  // 11.8ms >= 5ms -> warning line
  RequestTrace fast = SampleTrace();
  fast.id = "fast000000000001";
  fast.total_seconds = 0.001;
  (*log)->Write(fast);  // info line
  SetLogLevel(LogLevel::kWarning);
  RequestTrace gated = SampleTrace();
  gated.id = "gated00000000001";
  gated.total_seconds = 0.001;
  (*log)->Write(gated);  // info < warning -> suppressed
  SetLogLevel(saved);
  EXPECT_EQ((*log)->lines_written(), 2u);

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  EXPECT_NE(contents.find("\"id\":\"cafe012345678901\""), std::string::npos);
  EXPECT_NE(contents.find("\"level\":\"warning\""), std::string::npos);
  EXPECT_NE(contents.find("\"id\":\"fast000000000001\""), std::string::npos);
  EXPECT_EQ(contents.find("gated00000000001"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace egp
