// PreviewService: JSON request mapping, routing, error statuses, and the
// bit-identity of served previews with in-process Engine results — all
// without a socket (the transport is covered by server_test).
#include "server/api.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/profiler.h"
#include "datagen/paper_example.h"
#include "io/json_export.h"

namespace egp {
namespace {

PreviewService MakeService() {
  std::vector<std::pair<std::string, Engine>> engines;
  engines.emplace_back("paper", Engine::FromGraph(BuildPaperExampleGraph()));
  auto catalog = DatasetCatalog::FromEngines(std::move(engines));
  EXPECT_TRUE(catalog.ok());
  return PreviewService(std::move(catalog).value(), "test");
}

HttpRequest Post(std::string_view target, std::string body) {
  HttpRequest request;
  request.method = "POST";
  request.target = std::string(target);
  request.body = std::move(body);
  return request;
}

HttpRequest Get(std::string_view target) {
  HttpRequest request;
  request.method = "GET";
  request.target = std::string(target);
  return request;
}

// ---------------------------------------------------------------------------
// Request JSON mapping
// ---------------------------------------------------------------------------

TEST(ParsePreviewRequestTest, DefaultsMatchPreviewRequest) {
  const auto parsed = ParsePreviewRequestJson(*ParseJson("{}"));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->dataset.empty());
  EXPECT_EQ(parsed->request.size.k, 2u);
  EXPECT_EQ(parsed->request.size.n, 6u);
  EXPECT_EQ(parsed->request.distance.mode, DistanceMode::kNone);
  EXPECT_EQ(parsed->request.measures.key, "coverage");
  EXPECT_EQ(parsed->request.algorithm, "auto");
  EXPECT_EQ(parsed->request.sample_rows, 0u);
}

TEST(ParsePreviewRequestTest, ParsesTheFullSurface) {
  const auto parsed = ParsePreviewRequestJson(*ParseJson(R"({
    "dataset": "paper",
    "k": 3, "n": 5, "diverse": 2,
    "measures": {"key": "randomwalk", "nonkey": "entropy",
                 "walk": {"smoothing": 0.001, "maxIterations": 100,
                          "tolerance": 1e-9}},
    "algorithm": "apriori",
    "sample": {"rows": 4, "seed": 99, "strategy": "frequency",
               "mergeMultiway": true}
  })"));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->dataset, "paper");
  EXPECT_EQ(parsed->request.size.k, 3u);
  EXPECT_EQ(parsed->request.size.n, 5u);
  EXPECT_EQ(parsed->request.distance.mode, DistanceMode::kDiverse);
  EXPECT_EQ(parsed->request.distance.d, 2u);
  EXPECT_EQ(parsed->request.measures.key, "randomwalk");
  EXPECT_EQ(parsed->request.measures.nonkey, "entropy");
  EXPECT_DOUBLE_EQ(parsed->request.measures.walk.smoothing, 0.001);
  EXPECT_EQ(parsed->request.measures.walk.max_iterations, 100);
  EXPECT_EQ(parsed->request.algorithm, "apriori");
  EXPECT_EQ(parsed->request.sample_rows, 4u);
  EXPECT_EQ(parsed->request.sample_seed, 99u);
  EXPECT_EQ(parsed->request.sample_strategy,
            SamplingStrategy::kFrequencyWeighted);
  EXPECT_TRUE(parsed->request.merge_multiway_columns);
}

TEST(ParsePreviewRequestTest, BudgetModeParses) {
  const auto parsed = ParsePreviewRequestJson(*ParseJson(R"({
    "budget": {"widthChars": 100, "heightRows": 30},
    "suggestedDistance": "tight"
  })"));
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->request.budget.has_value());
  EXPECT_EQ(parsed->request.budget->width_chars, 100u);
  EXPECT_EQ(parsed->request.suggested_distance, DistanceMode::kTight);
}

TEST(ParsePreviewRequestTest, RejectsBadShapes) {
  for (const char* bad : {
           R"([1,2])",                                   // not an object
           R"({"k": 0})",                                // zero k
           R"({"n": -3})",                               // negative n
           R"({"k": 2.5})",                              // non-integer
           R"({"k": "2"})",                              // wrong kind
           R"({"tight": 1, "diverse": 1})",              // exclusive
           R"({"tight": 0})",                            // zero distance
           R"({"budget": {"widthChars": 10}, "k": 2})",  // budget+explicit
           R"({"suggestedDistance": "tight"})",          // needs budget
           R"({"algoritm": "dp"})",                      // unknown field
           R"({"sample": {"rows": -1}})",                // negative rows
           R"({"sample": {"strategy": "best"}})",        // unknown strategy
           R"({"measures": {"walk": {"smoothing": -1}}})",
           R"({"budget": {"widthChars": 0}})",
       }) {
    const auto doc = ParseJson(bad);
    ASSERT_TRUE(doc.ok()) << bad;
    EXPECT_FALSE(ParsePreviewRequestJson(*doc).ok()) << bad;
  }
}

TEST(ParseSuggestRequestTest, ParsesBudgetAndMeasures) {
  const auto parsed = ParseSuggestRequestJson(*ParseJson(R"({
    "budget": {"widthChars": 80, "heightRows": 24},
    "measures": {"key": "randomwalk"}
  })"));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->budget.width_chars, 80u);
  EXPECT_EQ(parsed->measures.key, "randomwalk");
  EXPECT_FALSE(ParseSuggestRequestJson(*ParseJson(R"({"k": 2})")).ok());
}

// ---------------------------------------------------------------------------
// Routing + serving
// ---------------------------------------------------------------------------

TEST(PreviewServiceTest, HealthzAndDatasets) {
  PreviewService service = MakeService();
  const HttpResponse health = service.Handle(Get("/healthz"));
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"status\":\"ok\""), std::string::npos);

  const HttpResponse datasets = service.Handle(Get("/v1/datasets"));
  EXPECT_EQ(datasets.status, 200);
  EXPECT_NE(datasets.body.find("\"name\":\"paper\""), std::string::npos);
  // Operators can see what a catalog serves: per-dataset counts and the
  // storage kind ("memory" for FromEngines catalogs, "nt"/"egt"/
  // "snapshot" for disk loads).
  EXPECT_NE(datasets.body.find("\"storage\":\"memory\""),
            std::string::npos);
  EXPECT_NE(datasets.body.find("\"entities\":"), std::string::npos);
  EXPECT_NE(datasets.body.find("\"relationships\":"), std::string::npos);
  EXPECT_NE(datasets.body.find("\"entityTypes\":"), std::string::npos);
  EXPECT_NE(datasets.body.find("\"relationshipTypes\":"),
            std::string::npos);
}

TEST(PreviewServiceTest, ServedPreviewIsBitIdenticalToEngine) {
  PreviewService service = MakeService();
  const HttpResponse response = service.Handle(
      Post("/v1/preview", R"({"k":2,"n":6,"sample":{"rows":3,"seed":11}})"));
  ASSERT_EQ(response.status, 200) << response.body;

  // In-process golden: same request through the Engine directly.
  const Engine engine = Engine::FromGraph(BuildPaperExampleGraph());
  PreviewRequest request;
  request.size = {2, 6};
  request.sample_rows = 3;
  request.sample_seed = 11;
  const auto served = engine.Preview(request);
  ASSERT_TRUE(served.ok());
  EXPECT_DOUBLE_EQ(served->score, 84.0);  // §4's worked optimum

  const std::string preview_json =
      "\"preview\":" + PreviewToJson(*served->prepared, served->preview);
  EXPECT_NE(response.body.find(preview_json), std::string::npos)
      << "server preview JSON diverges from in-process export";
  const std::string materialized_json =
      "\"materialized\":" +
      MaterializedPreviewToJson(*engine.graph(), served->materialized);
  EXPECT_NE(response.body.find(materialized_json), std::string::npos)
      << "server materialized JSON diverges from in-process export";
  EXPECT_NE(response.body.find("\"score\":84"), std::string::npos);
  EXPECT_NE(response.body.find("\"algorithm\":\"dp\""), std::string::npos);
}

TEST(PreviewServiceTest, SuggestMatchesEngine) {
  PreviewService service = MakeService();
  const HttpResponse response = service.Handle(
      Post("/v1/suggest", R"({"budget":{"widthChars":90,"heightRows":28}})"));
  ASSERT_EQ(response.status, 200) << response.body;

  const Engine engine = Engine::FromGraph(BuildPaperExampleGraph());
  DisplayBudget budget;
  budget.width_chars = 90;
  budget.height_rows = 28;
  const auto suggestion = engine.Suggest(budget);
  ASSERT_TRUE(suggestion.ok());
  EXPECT_NE(
      response.body.find("\"k\":" + std::to_string(suggestion->size.k)),
      std::string::npos);
  EXPECT_NE(
      response.body.find("\"n\":" + std::to_string(suggestion->size.n)),
      std::string::npos);
}

TEST(PreviewServiceTest, ErrorStatuses) {
  PreviewService service = MakeService();
  // Malformed JSON body → 400 with parse context.
  EXPECT_EQ(service.Handle(Post("/v1/preview", "{")).status, 400);
  // Unknown dataset → 404.
  EXPECT_EQ(
      service.Handle(Post("/v1/preview", R"({"dataset":"nope"})")).status,
      404);
  // Unknown measure → 400 (bad parameter, not bad URL).
  EXPECT_EQ(service
                .Handle(Post("/v1/preview",
                             R"({"measures":{"key":"wat"}})"))
                .status,
            400);
  // DP with a distance constraint → 400 (Engine InvalidArgument).
  EXPECT_EQ(service
                .Handle(Post("/v1/preview",
                             R"({"algorithm":"dp","tight":2})"))
                .status,
            400);
  // Wrong method → 405; unknown path → 404.
  EXPECT_EQ(service.Handle(Get("/v1/preview")).status, 405);
  EXPECT_EQ(service.Handle(Post("/healthz", "{}")).status, 405);
  EXPECT_EQ(service.Handle(Get("/wat")).status, 404);
}

TEST(PreviewServiceTest, MetricsReflectServedRequests) {
  PreviewService service = MakeService();
  service.Handle(Post("/v1/preview", R"({"k":2,"n":4})"));
  service.Handle(Post("/v1/preview", R"({"k":3,"n":4})"));  // cache hit
  service.Handle(Post("/v1/preview", "{"));                 // 400
  const HttpResponse metrics = service.Handle(Get("/metrics"));
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find(
                "egp_http_requests_total{endpoint=\"/v1/preview\","
                "status=\"200\"} 2"),
            std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find(
                "egp_http_requests_total{endpoint=\"/v1/preview\","
                "status=\"400\"} 1"),
            std::string::npos);
  EXPECT_NE(
      metrics.body.find("egp_prepared_cache_hits_total{dataset=\"paper\"} 1"),
      std::string::npos);
  EXPECT_NE(metrics.body.find(
                "egp_prepared_cache_misses_total{dataset=\"paper\"} 1"),
            std::string::npos);
  EXPECT_EQ(metrics.content_type.rfind("text/plain", 0), 0u);
}

TEST(PreviewServiceTest, CacheHitFlagAppearsInResponse) {
  PreviewService service = MakeService();
  const HttpResponse cold =
      service.Handle(Post("/v1/preview", R"({"k":2,"n":6})"));
  EXPECT_NE(cold.body.find("\"cacheHit\":false"), std::string::npos);
  const HttpResponse warm =
      service.Handle(Post("/v1/preview", R"({"k":3,"n":4})"));
  EXPECT_NE(warm.body.find("\"cacheHit\":true"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Cost-based admission: cold (schema-building) previews are gated, hot
// (cache-hit) ones pass under the flat connection cap.
// ---------------------------------------------------------------------------

const std::string* FindHeader(const HttpResponse& response,
                              std::string_view name) {
  for (const auto& [key, value] : response.headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

TEST(PreviewServiceTest, ColdRequestsShedWith503WhileHotOnesServe) {
  AdmissionOptions admission;
  admission.max_cold_inflight = 1;
  admission.max_cold_queue = 0;  // shed immediately: deterministic test
  admission.queue_timeout_ms = 50;
  admission.retry_after_seconds = 7;
  std::vector<std::pair<std::string, Engine>> engines;
  engines.emplace_back("paper", Engine::FromGraph(BuildPaperExampleGraph()));
  auto catalog = DatasetCatalog::FromEngines(std::move(engines));
  ASSERT_TRUE(catalog.ok());
  PreviewService service(std::move(catalog).value(), "test", admission);

  // Occupy the only cold-build slot, as a concurrent build would.
  AdmissionController::Ticket slot = service.admission().AcquireCold();
  ASSERT_TRUE(slot.admitted());

  // An unprepared measure configuration is cold → shed with Retry-After.
  const HttpResponse shed =
      service.Handle(Post("/v1/preview", R"({"k":2,"n":6})"));
  EXPECT_EQ(shed.status, 503);
  EXPECT_NE(shed.body.find("cold preview capacity"), std::string::npos);
  const std::string* retry_after = FindHeader(shed, "Retry-After");
  ASSERT_NE(retry_after, nullptr);
  EXPECT_EQ(*retry_after, "7");

  // Slot freed → the same request is admitted and builds the schema.
  slot = AdmissionController::Ticket();
  const HttpResponse built =
      service.Handle(Post("/v1/preview", R"({"k":2,"n":6})"));
  EXPECT_EQ(built.status, 200);

  // Now the configuration is prepared: the request is hot and serves
  // even while the cold slot is busy again.
  slot = service.admission().AcquireCold();
  ASSERT_TRUE(slot.admitted());
  const HttpResponse hot =
      service.Handle(Post("/v1/preview", R"({"k":3,"n":4})"));
  EXPECT_EQ(hot.status, 200);

  const AdmissionStats stats = service.admission().stats();
  EXPECT_EQ(stats.cold_shed, 1u);
  EXPECT_EQ(stats.cold_admitted, 3u);  // two manual slots + the build
  EXPECT_EQ(stats.hot_admitted, 1u);
  EXPECT_EQ(stats.cold_inflight, 1u);  // the still-held manual slot

  // The gate is visible on /metrics (queue depths included).
  const HttpResponse metrics = service.Handle(Get("/metrics"));
  EXPECT_NE(metrics.body.find("egp_admission_cold_shed_total 1"),
            std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("egp_admission_hot_total"), std::string::npos);
  EXPECT_NE(metrics.body.find("egp_admission_cold_queue_depth 0"),
            std::string::npos);
}

TEST(PreviewServiceTest, ColdRequestsQueueForAFreedSlot) {
  AdmissionOptions admission;
  admission.max_cold_inflight = 1;
  admission.max_cold_queue = 4;
  admission.queue_timeout_ms = 2'000;
  std::vector<std::pair<std::string, Engine>> engines;
  engines.emplace_back("paper", Engine::FromGraph(BuildPaperExampleGraph()));
  auto catalog = DatasetCatalog::FromEngines(std::move(engines));
  ASSERT_TRUE(catalog.ok());
  PreviewService service(std::move(catalog).value(), "test", admission);

  AdmissionController::Ticket slot = service.admission().AcquireCold();
  ASSERT_TRUE(slot.admitted());
  std::thread releaser([&slot] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    slot = AdmissionController::Ticket();  // free the slot
  });
  // Queues (rather than sheds), gets the slot once freed, serves 200.
  const HttpResponse queued =
      service.Handle(Post("/v1/preview", R"({"k":2,"n":6})"));
  releaser.join();
  EXPECT_EQ(queued.status, 200);
  const AdmissionStats stats = service.admission().stats();
  EXPECT_EQ(stats.cold_queued, 1u);
  EXPECT_EQ(stats.cold_shed, 0u);
}

// ---------------------------------------------------------------------------
// Observability endpoints: per-dataset metrics, debug filters, lock and
// cache introspection, and the profiler endpoint's gating.
// ---------------------------------------------------------------------------

TEST(PreviewServiceTest, PerDatasetMetricsOnResolvedRequestsOnly) {
  PreviewService service = MakeService();
  service.Handle(Post("/v1/preview", R"({"dataset":"paper","k":2,"n":4})"));
  // Unknown dataset: resolution fails, so no dataset label is minted.
  service.Handle(Post("/v1/preview", R"({"dataset":"nope","k":2,"n":4})"));
  const HttpResponse metrics = service.Handle(Get("/metrics"));
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find(
                "egp_requests_total{dataset=\"paper\",status=\"200\"} 1"),
            std::string::npos)
      << metrics.body;
  EXPECT_EQ(metrics.body.find("dataset=\"nope\""), std::string::npos);
  EXPECT_NE(metrics.body.find("egp_dataset_request_duration_seconds_count{"
                              "dataset=\"paper\"} 1"),
            std::string::npos);
  // The lock-site families are always present once any labeled mutex
  // has been constructed.
  EXPECT_NE(metrics.body.find("egp_mutex_contentions_total{site="),
            std::string::npos);
  EXPECT_NE(metrics.body.find(
                "# TYPE egp_mutex_wait_seconds histogram"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("# TYPE egp_profiler_windows_total counter"),
            std::string::npos);
}

TEST(PreviewServiceTest, DebugRequestsLimitAndDatasetFilters) {
  PreviewService service = MakeService();
  FlightRecorder recorder(16);
  service.AttachFlightRecorder(&recorder);
  for (int i = 0; i < 5; ++i) {
    RequestTrace trace;
    trace.id = "t" + std::to_string(i);
    trace.status = 200;
    trace.dataset = i % 2 == 0 ? "paper" : "other";
    trace.total_seconds = 0.001;
    recorder.Record(trace);
  }

  const HttpResponse limited =
      service.Handle(Get("/v1/debug/requests?limit=2"));
  ASSERT_EQ(limited.status, 200);
  EXPECT_NE(limited.body.find("\"t4\""), std::string::npos);
  EXPECT_NE(limited.body.find("\"t3\""), std::string::npos);
  EXPECT_EQ(limited.body.find("\"t2\""), std::string::npos);

  const HttpResponse filtered =
      service.Handle(Get("/v1/debug/requests?dataset=paper"));
  ASSERT_EQ(filtered.status, 200);
  EXPECT_NE(filtered.body.find("\"t0\""), std::string::npos);
  EXPECT_NE(filtered.body.find("\"t4\""), std::string::npos);
  EXPECT_EQ(filtered.body.find("\"t1\""), std::string::npos);

  // Garbage is rejected loudly, not coerced.
  EXPECT_EQ(service.Handle(Get("/v1/debug/requests?limit=abc")).status, 400);
  EXPECT_EQ(service.Handle(Get("/v1/debug/requests?limit=-1")).status, 400);
  EXPECT_EQ(service.Handle(Get("/v1/debug/requests?limit=2x")).status, 400);
}

TEST(PreviewServiceTest, DebugLocksListsLabeledSites) {
  PreviewService service = MakeService();
  service.Handle(Post("/v1/preview", R"({"k":2,"n":4})"));
  const HttpResponse response = service.Handle(Get("/v1/debug/locks"));
  ASSERT_EQ(response.status, 200);
  // Sites touched by the request path above must be present.
  EXPECT_NE(response.body.find("\"metrics.requests\""), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"engine.prepared_cache\""),
            std::string::npos);
  EXPECT_NE(response.body.find("\"acquisitions\""), std::string::npos);
  EXPECT_NE(response.body.find("\"waitSeconds\""), std::string::npos);
}

TEST(PreviewServiceTest, DebugCacheShowsPreparedEntries) {
  PreviewService service = MakeService();
  const HttpResponse empty = service.Handle(Get("/v1/debug/cache"));
  ASSERT_EQ(empty.status, 200);
  EXPECT_NE(empty.body.find("\"dataset\":\"paper\""), std::string::npos);
  EXPECT_NE(empty.body.find("\"entries\":[]"), std::string::npos);

  service.Handle(Post("/v1/preview", R"({"k":2,"n":4})"));
  service.Handle(Post("/v1/preview", R"({"k":3,"n":4})"));  // cache hit
  const HttpResponse warm = service.Handle(Get("/v1/debug/cache"));
  ASSERT_EQ(warm.status, 200);
  EXPECT_NE(warm.body.find("\"measures\":\"key=coverage nonkey=coverage"),
            std::string::npos)
      << warm.body;
  EXPECT_NE(warm.body.find("\"ready\":true"), std::string::npos);
  EXPECT_NE(warm.body.find("\"hits\":1"), std::string::npos);
  EXPECT_NE(warm.body.find("\"approxBytes\":"), std::string::npos);
}

TEST(PreviewServiceTest, ProfileEndpointGatedBehindFlag) {
  PreviewService service = MakeService();
  const HttpResponse disabled =
      service.Handle(Get("/v1/debug/profile?seconds=1"));
  EXPECT_EQ(disabled.status, 503);
  EXPECT_NE(disabled.body.find("--profiler"), std::string::npos);

  service.EnableProfiler(99);
  // Parameter validation happens before any window starts.
  EXPECT_EQ(service.Handle(Get("/v1/debug/profile?seconds=abc")).status,
            400);
  EXPECT_EQ(service.Handle(Get("/v1/debug/profile?seconds=0")).status, 400);
  EXPECT_EQ(service.Handle(Get("/v1/debug/profile?seconds=61")).status, 400);
  EXPECT_EQ(service.Handle(Get("/v1/debug/profile?hz=0")).status, 400);
  EXPECT_EQ(service.Handle(Get("/v1/debug/profile?hz=1001")).status, 400);
  EXPECT_EQ(service.Handle(Get("/v1/debug/profile?hz=9x")).status, 400);
}

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define EGP_TEST_TSAN 1
#endif
#endif
#ifndef EGP_TEST_TSAN
// Skipped under TSan: the SIGPROF handler's backtrace() is outside what
// TSan supports; the signal path is covered by the plain and ASan runs.
TEST(PreviewServiceTest, ProfileEndpointCollectsWhenEnabled) {
  PreviewService service = MakeService();
  service.EnableProfiler(99);
  Profiler::RegisterCurrentThread();
  const HttpResponse response =
      service.Handle(Get("/v1/debug/profile?seconds=0.1&hz=100"));
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(response.content_type.rfind("text/plain", 0), 0u);
  const std::string* samples = FindHeader(response, "X-Egp-Profile-Samples");
  ASSERT_NE(samples, nullptr);
  const std::string* hz = FindHeader(response, "X-Egp-Profile-Hz");
  ASSERT_NE(hz, nullptr);
  EXPECT_EQ(*hz, "100");
}
#endif

}  // namespace
}  // namespace egp
