// DatasetCatalog: spec parsing, loading from disk, multi-dataset lookup.
#include "server/catalog.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "datagen/paper_example.h"
#include "io/ntriples.h"
#include "store/snapshot_writer.h"
#include "tests/testing/subprocess.h"

namespace egp {
namespace {

#ifndef EGP_SAMPLE_NT
#error "EGP_SAMPLE_NT must be defined by the build"
#endif

TEST(DatasetSpecTest, ParsesNameEqualsPath) {
  const auto spec = ParseDatasetSpec("sample=/data/x.nt");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name, "sample");
  EXPECT_EQ(spec->path, "/data/x.nt");
  // '=' in the path survives (split at the first '=').
  EXPECT_EQ(ParseDatasetSpec("a=/p/x=y.nt")->path, "/p/x=y.nt");
}

TEST(DatasetSpecTest, RejectsBadSpecs) {
  EXPECT_FALSE(ParseDatasetSpec("noequals").ok());
  EXPECT_FALSE(ParseDatasetSpec("=path").ok());         // empty name
  EXPECT_FALSE(ParseDatasetSpec("name=").ok());         // empty path
  EXPECT_FALSE(ParseDatasetSpec("bad name=x").ok());    // space in name
  EXPECT_FALSE(ParseDatasetSpec("a/b=x").ok());         // URL-hostile char
  EXPECT_TRUE(ParseDatasetSpec("ok-Name_1.2=x").ok());
}

TEST(DatasetCatalogTest, LoadsFromDisk) {
  const auto catalog =
      DatasetCatalog::Load({DatasetSpec{"sample", EGP_SAMPLE_NT}});
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  ASSERT_EQ(catalog->size(), 1u);
  const DatasetCatalog::Info& info = catalog->infos()[0];
  EXPECT_EQ(info.name, "sample");
  EXPECT_EQ(info.path, EGP_SAMPLE_NT);
  EXPECT_EQ(info.entities, 20u);
  EXPECT_EQ(info.relationships, 22u);
  EXPECT_EQ(info.entity_types, 5u);
  ASSERT_NE(catalog->Find("sample"), nullptr);
  EXPECT_EQ(catalog->Find("nope"), nullptr);
  // Single dataset: it is the default.
  EXPECT_EQ(catalog->Default(), catalog->Find("sample"));
  EXPECT_EQ(catalog->default_name(), "sample");
}

TEST(DatasetCatalogTest, ReportsStorageKindAndLoadTime) {
  const auto catalog =
      DatasetCatalog::Load({DatasetSpec{"sample", EGP_SAMPLE_NT}});
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog->infos()[0].storage, "nt");
  EXPECT_GT(catalog->infos()[0].load_seconds, 0.0);
}

TEST(DatasetCatalogTest, LoadsSnapshotsAndHandsFrozenToEngine) {
  auto graph = ReadNTriplesFile(EGP_SAMPLE_NT);
  ASSERT_TRUE(graph.ok());
  const std::string path = testing_util::TempPath("catalog_sample.egps");
  ASSERT_TRUE(CompileSnapshotFile(*graph, path).ok());

  for (const auto mode : {SnapshotOpenOptions::Mode::kMmap,
                          SnapshotOpenOptions::Mode::kStream}) {
    CatalogLoadOptions options;
    options.snapshot.mode = mode;
    const auto catalog = DatasetCatalog::Load(
        {DatasetSpec{"snap", path}, DatasetSpec{"text", EGP_SAMPLE_NT}},
        options);
    ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
    ASSERT_EQ(catalog->size(), 2u);
    EXPECT_EQ(catalog->infos()[0].name, "snap");
    EXPECT_EQ(catalog->infos()[0].storage, "snapshot");
    EXPECT_EQ(catalog->infos()[1].storage, "nt");
    // The snapshot engine carries the prebuilt CSR; the text one not.
    ASSERT_NE(catalog->Find("snap"), nullptr);
    EXPECT_NE(catalog->Find("snap")->frozen(), nullptr);
    EXPECT_EQ(catalog->Find("text")->frozen(), nullptr);
    // Both serve the same graph.
    EXPECT_EQ(catalog->infos()[0].entities, catalog->infos()[1].entities);
    EXPECT_EQ(catalog->infos()[0].relationships,
              catalog->infos()[1].relationships);
  }
  std::remove(path.c_str());
}

TEST(DatasetCatalogTest, ParallelLoadMatchesSequential) {
  // Eight datasets (same file under different names) loaded with one
  // thread and with the auto fan-out must produce identical catalogs.
  std::vector<DatasetSpec> specs;
  for (int i = 0; i < 8; ++i) {
    specs.push_back(DatasetSpec{"d" + std::to_string(i), EGP_SAMPLE_NT});
  }
  CatalogLoadOptions sequential;
  sequential.load_threads = 1;
  const auto serial = DatasetCatalog::Load(specs, sequential);
  ASSERT_TRUE(serial.ok());
  CatalogLoadOptions fanout;
  fanout.load_threads = 0;  // auto
  const auto parallel = DatasetCatalog::Load(specs, fanout);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(serial->size(), parallel->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    EXPECT_EQ(serial->infos()[i].name, parallel->infos()[i].name);
    EXPECT_EQ(serial->infos()[i].entities, parallel->infos()[i].entities);
    EXPECT_EQ(serial->infos()[i].storage, parallel->infos()[i].storage);
  }
  // A failing dataset degrades the catalog by default: the healthy ones
  // still serve, the failure names itself, and the implicit default is
  // gone.
  specs.push_back(DatasetSpec{"broken", "/no/such/file.nt"});
  const auto degraded = DatasetCatalog::Load(specs, fanout);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->degraded());
  EXPECT_EQ(degraded->size(), 8u);
  ASSERT_EQ(degraded->failed().size(), 1u);
  EXPECT_EQ(degraded->failed()[0].name, "broken");
  EXPECT_NE(degraded->failed()[0].error.find("broken"), std::string::npos);
  EXPECT_NE(degraded->FindFailed("broken"), nullptr);
  EXPECT_EQ(degraded->FindFailed("d0"), nullptr);
  EXPECT_EQ(degraded->Find("broken"), nullptr);
  EXPECT_NE(degraded->Find("d0"), nullptr);
  // Strict mode keeps the old all-or-nothing contract.
  CatalogLoadOptions strict = fanout;
  strict.allow_partial = false;
  const auto failed = DatasetCatalog::Load(specs, strict);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("broken"), std::string::npos);
}

TEST(DatasetCatalogTest, DegradedSingleSurvivorHasNoDefault) {
  // One loaded + one failed: requests must still name the dataset; the
  // survivor must not silently become the default.
  const auto catalog = DatasetCatalog::Load(
      {DatasetSpec{"good", EGP_SAMPLE_NT},
       DatasetSpec{"bad", "/no/such/file.nt"}});
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  EXPECT_TRUE(catalog->degraded());
  EXPECT_EQ(catalog->size(), 1u);
  EXPECT_EQ(catalog->Default(), nullptr);
  EXPECT_TRUE(catalog->default_name().empty());
  EXPECT_NE(catalog->Find("good"), nullptr);
}

TEST(DatasetCatalogTest, AllDatasetsFailingIsAnError) {
  const auto catalog = DatasetCatalog::Load(
      {DatasetSpec{"x", "/no/such/a.nt"}, DatasetSpec{"y", "/no/such/b.nt"}});
  ASSERT_FALSE(catalog.ok());
}

TEST(DatasetCatalogTest, LoadErrorsNameTheDataset) {
  const auto catalog =
      DatasetCatalog::Load({DatasetSpec{"gone", "/no/such/file.nt"}});
  ASSERT_FALSE(catalog.ok());
  EXPECT_NE(catalog.status().message().find("gone"), std::string::npos);
}

TEST(DatasetCatalogTest, MultiDatasetHasNoDefault) {
  std::vector<std::pair<std::string, Engine>> engines;
  engines.emplace_back("b", Engine::FromGraph(BuildPaperExampleGraph()));
  engines.emplace_back("a", Engine::FromGraph(BuildPaperExampleGraph()));
  const auto catalog = DatasetCatalog::FromEngines(std::move(engines));
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog->size(), 2u);
  EXPECT_EQ(catalog->infos()[0].name, "a");  // sorted
  EXPECT_EQ(catalog->Default(), nullptr);
  EXPECT_NE(catalog->Find("a"), nullptr);
  EXPECT_NE(catalog->Find("b"), nullptr);
}

TEST(DatasetCatalogTest, RejectsDuplicatesAndEmpty) {
  std::vector<std::pair<std::string, Engine>> engines;
  engines.emplace_back("x", Engine::FromGraph(BuildPaperExampleGraph()));
  engines.emplace_back("x", Engine::FromGraph(BuildPaperExampleGraph()));
  EXPECT_FALSE(DatasetCatalog::FromEngines(std::move(engines)).ok());
  EXPECT_FALSE(DatasetCatalog::Load({}).ok());
}

}  // namespace
}  // namespace egp
