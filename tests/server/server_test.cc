// HttpServer end-to-end over real sockets on loopback: keep-alive,
// concurrency, malformed requests, slow clients, backpressure, and
// graceful drain. Uses a trivial echo-style handler so transport
// behaviour is isolated from the preview API (api_test covers that);
// one suite at the end wires the real PreviewService through.
#include "server/http_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "datagen/paper_example.h"
#include "server/api.h"
#include "server/http_client.h"

namespace egp {
namespace {

using namespace std::chrono_literals;

HttpServerOptions FastOptions() {
  HttpServerOptions options;
  options.workers = 4;
  options.read_timeout_ms = 2000;
  options.write_timeout_ms = 2000;
  return options;
}

std::unique_ptr<HttpServer> StartEcho(
    const HttpServerOptions& options = FastOptions()) {
  auto server = HttpServer::Start(
      [](const HttpRequest& request) {
        HttpResponse response;
        response.body = "{\"method\":\"" + request.method +
                        "\",\"target\":\"" + std::string(request.Path()) +
                        "\",\"bytes\":" + std::to_string(request.body.size()) +
                        "}";
        return response;
      },
      options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(server).value();
}

TEST(HttpServerTest, ServesAndKeepsAlive) {
  auto server = StartEcho();
  HttpClient client("127.0.0.1", server->port());

  const auto first = client.Get("/a");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->status, 200);
  EXPECT_EQ(first->body, "{\"method\":\"GET\",\"target\":\"/a\",\"bytes\":0}");
  EXPECT_TRUE(first->keep_alive);
  ASSERT_TRUE(client.connected());  // the connection survived

  const auto second = client.Post("/b", "12345");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->body,
            "{\"method\":\"POST\",\"target\":\"/b\",\"bytes\":5}");

  const HttpServerStats stats = server->stats();
  EXPECT_EQ(stats.accepted_connections, 1u);  // both rode one connection
  EXPECT_EQ(stats.handled_requests, 2u);
}

TEST(HttpServerTest, ConcurrentClients) {
  auto server = StartEcho();
  constexpr int kClients = 8;
  constexpr int kRequests = 25;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&server, &ok_count] {
      HttpClient client("127.0.0.1", server->port());
      for (int r = 0; r < kRequests; ++r) {
        const auto response = client.Post("/x", "req");
        if (response.ok() && response->status == 200 &&
            response->body.find("\"bytes\":3") != std::string::npos) {
          ok_count.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(ok_count.load(), kClients * kRequests);
  EXPECT_EQ(server->stats().handled_requests,
            static_cast<uint64_t>(kClients * kRequests));
}

TEST(HttpServerTest, MalformedRequestGets400AndClose) {
  auto server = StartEcho();
  HttpClient client("127.0.0.1", server->port());
  const auto response = client.RawExchange("NOT A REQUEST\r\n\r\n");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 400);
  EXPECT_FALSE(response->keep_alive);
  EXPECT_NE(response->body.find("\"error\""), std::string::npos);
  EXPECT_EQ(server->stats().parse_errors, 1u);
}

TEST(HttpServerTest, OversizedBodyGets413) {
  HttpServerOptions options = FastOptions();
  options.limits.max_body_bytes = 64;
  auto server = StartEcho(options);
  HttpClient client("127.0.0.1", server->port());
  const auto response =
      client.Post("/x", std::string(100, 'a'));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 413);
}

TEST(HttpServerTest, SlowClientTimesOutWith408) {
  HttpServerOptions options = FastOptions();
  options.read_timeout_ms = 300;  // fast test
  auto server = StartEcho(options);
  HttpClient client("127.0.0.1", server->port());
  // Half a request, then silence: the server must cut us off rather
  // than pin a worker forever.
  const auto response = client.RawExchange("POST /x HTTP/1.1\r\nContent-");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 408);
  EXPECT_EQ(server->stats().timed_out_connections, 1u);
}

TEST(HttpServerTest, ConnectionCapRejectsWith503) {
  HttpServerOptions options = FastOptions();
  options.max_connections = 1;
  auto server = StartEcho(options);

  // First client occupies the only slot with a half-sent request.
  HttpClient holder("127.0.0.1", server->port());
  auto hold = std::thread([&holder] {
    // Sends a partial request then waits: RawExchange blocks reading the
    // 408 the server sends at read-timeout.
    const auto response = holder.RawExchange("POST /x HTTP/1.1\r\nA: b");
    (void)response;
  });
  // Wait until the server has actually accepted the holder.
  for (int i = 0; i < 200 && server->stats().accepted_connections == 0; ++i) {
    std::this_thread::sleep_for(10ms);
  }
  ASSERT_EQ(server->stats().accepted_connections, 1u);

  HttpClient rejected("127.0.0.1", server->port());
  const auto response = rejected.Get("/x");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 503);
  EXPECT_GE(server->stats().rejected_connections, 1u);
  hold.join();
}

TEST(HttpServerTest, GracefulDrainFinishesInFlightRequests) {
  std::atomic<bool> in_handler{false};
  std::atomic<bool> release{false};
  auto server = HttpServer::Start(
      [&](const HttpRequest&) {
        in_handler.store(true);
        while (!release.load()) std::this_thread::sleep_for(1ms);
        HttpResponse response;
        response.body = "{\"done\":true}";
        return response;
      },
      FastOptions());
  ASSERT_TRUE(server.ok());

  Result<HttpClientResponse> slow_response = Status::Internal("unset");
  std::thread requester([&] {
    HttpClient client("127.0.0.1", (*server)->port());
    slow_response = client.Get("/slow");
  });
  while (!in_handler.load()) std::this_thread::sleep_for(1ms);

  // Drain while the request is mid-handler: Shutdown must wait for it.
  (*server)->Shutdown();
  EXPECT_TRUE((*server)->draining());
  std::this_thread::sleep_for(20ms);
  release.store(true);
  (*server)->Wait();
  requester.join();

  ASSERT_TRUE(slow_response.ok()) << slow_response.status().ToString();
  EXPECT_EQ(slow_response->status, 200);
  EXPECT_EQ(slow_response->body, "{\"done\":true}");
  // Drained: the response was sent with Connection: close.
  EXPECT_FALSE(slow_response->keep_alive);

  // New connections are refused after the drain.
  HttpClient late("127.0.0.1", (*server)->port(), 500);
  EXPECT_FALSE(late.Get("/x").ok());
}

TEST(HttpServerTest, ShutdownFdTriggersDrain) {
  auto server = StartEcho();
  const char byte = 'x';
  ASSERT_EQ(::write(server->shutdown_fd(), &byte, 1), 1);
  server->Wait();  // returns ⇔ the drain ran
  EXPECT_TRUE(server->draining());
}

TEST(HttpServerTest, HandlerExceptionBecomes500) {
  auto server = HttpServer::Start(
      [](const HttpRequest&) -> HttpResponse {
        throw std::runtime_error("boom");
      },
      FastOptions());
  ASSERT_TRUE(server.ok());
  HttpClient client("127.0.0.1", (*server)->port());
  const auto response = client.Get("/x");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 500);
  EXPECT_NE(response->body.find("boom"), std::string::npos);
}

TEST(HttpServerTest, StartFailureReturnsErrorWithoutHanging) {
  auto first = StartEcho();
  HttpServerOptions options = FastOptions();
  options.port = first->port();  // already bound
  auto second = HttpServer::Start(
      [](const HttpRequest&) { return HttpResponse{}; }, options);
  ASSERT_FALSE(second.ok());  // and destroying the failed server is fine
  EXPECT_NE(second.status().message().find("bind"), std::string::npos);
}

TEST(HttpServerTest, HeadResponsesCarryNoBody) {
  auto server = StartEcho();
  auto conn = ConnectTcp("127.0.0.1", server->port(), 2000);
  ASSERT_TRUE(conn.ok());
  ASSERT_EQ(SendAll(conn->get(),
                    "HEAD /h HTTP/1.1\r\nConnection: close\r\n\r\n", 2000)
                .status,
            IoStatus::kOk);
  // Connection: close lets us read to EOF: everything the server sends.
  std::string response;
  char buf[4096];
  for (;;) {
    const IoResult r = RecvSome(conn->get(), buf, sizeof(buf), 2000);
    if (r.status != IoStatus::kOk) break;
    response.append(buf, r.bytes);
  }
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  // Content-Length names the GET body size, but no body follows.
  EXPECT_NE(response.find("Content-Length: "), std::string::npos);
  EXPECT_EQ(response.find("Content-Length: 0"), std::string::npos);
  EXPECT_EQ(response.substr(response.size() - 4), "\r\n\r\n");
  EXPECT_EQ(response.find("\"method\""), std::string::npos);
}

TEST(HttpServerTest, InlineModeServesWithoutWorkers) {
  HttpServerOptions options = FastOptions();
  options.workers = 1;  // connections served on the accept thread
  auto server = StartEcho(options);
  HttpClient client("127.0.0.1", server->port());
  const auto response = client.Get("/inline");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
}

TEST(HttpServerTest, SlowReaderGets408WhileOthersAreServed) {
  // A trickling client must cost the server one idle connection, not a
  // pinned worker: while it dribbles header bytes, other clients keep
  // getting served, and at the read deadline it gets its 408. (Under the
  // old thread-per-connection transport each byte of progress restarted
  // the read budget, so this client could hold its worker forever.)
  HttpServerOptions options = FastOptions();
  options.read_timeout_ms = 600;
  auto server = StartEcho(options);

  auto conn = ConnectTcp("127.0.0.1", server->port(), 2000);
  ASSERT_TRUE(conn.ok());
  const int64_t start = MonotonicMillis();
  std::thread trickler([fd = conn->get()] {
    // One header byte per 50 ms: steady progress, never a full request.
    const std::string_view head = "POST /x HTTP/1.1\r\nX-Slow: yes\r\n";
    for (char c : head) {
      if (SendAll(fd, std::string_view(&c, 1), 1000).status != IoStatus::kOk) {
        return;
      }
      std::this_thread::sleep_for(50ms);
    }
  });

  // Meanwhile well-behaved clients are unaffected. Scoped so the
  // keep-alive connection closes before it could idle out itself (an
  // idle reap at the message boundary also counts as timed out).
  {
    HttpClient fast("127.0.0.1", server->port());
    for (int i = 0; i < 5; ++i) {
      const auto response = fast.Get("/fast");
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      EXPECT_EQ(response->status, 200);
    }
  }

  // The trickler's total read budget expires despite its progress.
  std::string answer;
  char buf[4096];
  for (;;) {
    const IoResult r = RecvSome(conn->get(), buf, sizeof(buf), 3000);
    if (r.status != IoStatus::kOk) break;
    answer.append(buf, r.bytes);
  }
  trickler.join();
  const int64_t elapsed = MonotonicMillis() - start;
  EXPECT_NE(answer.find("HTTP/1.1 408"), std::string::npos);
  EXPECT_GE(elapsed, 500);
  EXPECT_LE(elapsed, 5000);  // bounded by the deadline, not the trickle
  EXPECT_EQ(server->stats().timed_out_connections, 1u);
}

TEST(HttpServerTest, SlowResponseReaderIsCutOffAtTheWriteDeadline) {
  // A client that requests a large response and then never reads it
  // stalls the send once the socket buffers fill. The write deadline is
  // a budget on the WHOLE response: the server must drop the connection
  // at the deadline instead of nursing it along.
  HttpServerOptions options = FastOptions();
  options.write_timeout_ms = 500;
  auto server = HttpServer::Start(
      [](const HttpRequest&) {
        HttpResponse response;
        response.content_type = "application/octet-stream";
        response.body.assign(32 * 1024 * 1024, 'z');  // >> socket buffers
        return response;
      },
      options);
  ASSERT_TRUE(server.ok());

  auto conn = ConnectTcp("127.0.0.1", (*server)->port(), 2000);
  ASSERT_TRUE(conn.ok());
  ASSERT_EQ(SendAll(conn->get(), "GET /big HTTP/1.1\r\n\r\n", 2000).status,
            IoStatus::kOk);
  // Read nothing. The server must give up on its own schedule.
  const int64_t start = MonotonicMillis();
  while ((*server)->stats().timed_out_connections == 0 &&
         MonotonicMillis() - start < 5000) {
    std::this_thread::sleep_for(10ms);
  }
  const int64_t elapsed = MonotonicMillis() - start;
  EXPECT_EQ((*server)->stats().timed_out_connections, 1u);
  EXPECT_GE(elapsed, 400);
  EXPECT_LE(elapsed, 5000);
}

TEST(HttpServerTest, RejectsStayPromptWhileSlowRejectedClientsLinger) {
  // 503s at the connection cap are non-blocking writes on the event
  // loop: a pile of rejected clients that never read their 503 must not
  // delay either new rejects or the admitted connection.
  HttpServerOptions options = FastOptions();
  options.max_connections = 1;
  auto server = StartEcho(options);

  HttpClient holder("127.0.0.1", server->port());
  auto hold = std::thread([&holder] {
    const auto response = holder.RawExchange("POST /x HTTP/1.1\r\nA: b");
    (void)response;
  });
  for (int i = 0; i < 200 && server->stats().accepted_connections == 0; ++i) {
    std::this_thread::sleep_for(10ms);
  }
  ASSERT_EQ(server->stats().accepted_connections, 1u);

  // Ten connections that never read their 503 (and never send a byte).
  std::vector<UniqueFd> lingerers;
  for (int i = 0; i < 10; ++i) {
    auto conn = ConnectTcp("127.0.0.1", server->port(), 2000);
    ASSERT_TRUE(conn.ok());
    lingerers.push_back(std::move(conn).value());
  }
  // A well-behaved client still gets its 503 promptly.
  const int64_t start = MonotonicMillis();
  HttpClient polite("127.0.0.1", server->port());
  const auto response = polite.Get("/x");
  const int64_t elapsed = MonotonicMillis() - start;
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 503);
  EXPECT_NE(response->FindHeader("Retry-After"), nullptr);
  EXPECT_LE(elapsed, 1000);
  EXPECT_GE(server->stats().rejected_connections, 11u);
  EXPECT_EQ(server->stats().accepted_connections, 1u);
  hold.join();
}

TEST(HttpServerTest, DrainLetsAMidReadRequestFinish) {
  // Shutdown during the *read* phase of an exchange (not just
  // mid-handler): the in-flight request may finish arriving, is served,
  // and the response carries Connection: close.
  auto server = StartEcho();
  auto conn = ConnectTcp("127.0.0.1", server->port(), 2000);
  ASSERT_TRUE(conn.ok());
  ASSERT_EQ(SendAll(conn->get(),
                    "POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nab", 2000)
                .status,
            IoStatus::kOk);
  for (int i = 0; i < 200 && server->stats().accepted_connections == 0; ++i) {
    std::this_thread::sleep_for(10ms);
  }
  server->Shutdown();
  std::this_thread::sleep_for(30ms);  // let the drain pass run
  ASSERT_EQ(SendAll(conn->get(), "cde", 2000).status, IoStatus::kOk);

  std::string answer;
  char buf[4096];
  for (;;) {
    const IoResult r = RecvSome(conn->get(), buf, sizeof(buf), 3000);
    if (r.status != IoStatus::kOk) break;
    answer.append(buf, r.bytes);
  }
  EXPECT_NE(answer.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(answer.find("\"bytes\":5"), std::string::npos);
  EXPECT_NE(answer.find("Connection: close"), std::string::npos);
  server->Wait();
}

TEST(HttpServerTest, PipelinedRequestsAreServedInOrder) {
  // Two requests in one write: the event loop must serve both from its
  // parser buffer (the second arrives before the first response is out).
  auto server = StartEcho();
  auto conn = ConnectTcp("127.0.0.1", server->port(), 2000);
  ASSERT_TRUE(conn.ok());
  ASSERT_EQ(SendAll(conn->get(),
                    "GET /first HTTP/1.1\r\n\r\n"
                    "GET /second HTTP/1.1\r\nConnection: close\r\n\r\n",
                    2000)
                .status,
            IoStatus::kOk);
  std::string answer;
  char buf[4096];
  for (;;) {
    const IoResult r = RecvSome(conn->get(), buf, sizeof(buf), 3000);
    if (r.status != IoStatus::kOk) break;
    answer.append(buf, r.bytes);
  }
  const size_t first = answer.find("\"target\":\"/first\"");
  const size_t second = answer.find("\"target\":\"/second\"");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_EQ(server->stats().handled_requests, 2u);
  EXPECT_EQ(server->stats().accepted_connections, 1u);
}

// ---------------------------------------------------------------------------
// The real API over the real transport.
// ---------------------------------------------------------------------------

TEST(HttpServerTest, ServesPreviewServiceEndToEnd) {
  std::vector<std::pair<std::string, Engine>> engines;
  engines.emplace_back("paper", Engine::FromGraph(BuildPaperExampleGraph()));
  auto catalog = DatasetCatalog::FromEngines(std::move(engines));
  ASSERT_TRUE(catalog.ok());
  PreviewService service(std::move(catalog).value(), "test");
  auto server = HttpServer::Start(
      [&service](const HttpRequest& request) {
        return service.Handle(request);
      },
      FastOptions());
  ASSERT_TRUE(server.ok());
  service.AttachServer(server->get());

  constexpr int kClients = 4;
  std::vector<std::string> bodies(kClients);
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&server, &bodies, t] {
      HttpClient client("127.0.0.1", (*server)->port());
      const auto response = client.Post(
          "/v1/preview", R"({"k":2,"n":6,"sample":{"rows":2,"seed":5}})");
      if (response.ok() && response->status == 200) {
        bodies[static_cast<size_t>(t)] = response->body;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Concurrent identical requests: all succeed, all byte-identical
  // except the volatile fields — compare through the stable prefix
  // (everything before "timings").
  for (int t = 0; t < kClients; ++t) {
    ASSERT_FALSE(bodies[static_cast<size_t>(t)].empty()) << "client " << t;
  }
  auto stable = [](const std::string& body) {
    return body.substr(0, body.find(",\"cacheHit\""));
  };
  for (int t = 1; t < kClients; ++t) {
    EXPECT_EQ(stable(bodies[0]), stable(bodies[static_cast<size_t>(t)]));
  }
  EXPECT_NE(bodies[0].find("\"score\":84"), std::string::npos);

  // /metrics over the wire includes the transport gauges.
  HttpClient client("127.0.0.1", (*server)->port());
  const auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->body.find("egp_http_connections_accepted_total"),
            std::string::npos);
}

}  // namespace
}  // namespace egp
