// ServerMetrics: histogram bucketing/quantiles and Prometheus rendering.
#include "server/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace egp {
namespace {

TEST(LatencyHistogramTest, BucketsAndCount) {
  LatencyHistogram histogram;
  histogram.Observe(0.0001);  // <= 0.0005, first bucket
  histogram.Observe(0.003);   // <= 0.005
  histogram.Observe(0.003);
  histogram.Observe(99.0);    // +Inf
  const auto snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.cumulative[0], 1u);          // <= 0.5ms
  EXPECT_EQ(snap.cumulative[3], 3u);          // <= 5ms
  EXPECT_EQ(snap.cumulative.back(), 3u);      // <= 10s (the 99s is beyond)
  EXPECT_NEAR(snap.sum_seconds, 99.0061, 1e-3);
}

TEST(LatencyHistogramTest, QuantilesInterpolate) {
  LatencyHistogram histogram;
  for (int i = 0; i < 100; ++i) histogram.Observe(0.002);  // (0.001, 0.0025]
  const auto snap = histogram.snapshot();
  const double p50 = snap.Quantile(0.5);
  EXPECT_GT(p50, 0.001);
  EXPECT_LE(p50, 0.0025);
  EXPECT_EQ(LatencyHistogram::Snapshot{}.Quantile(0.5), 0.0);
}

TEST(LatencyHistogramTest, ConcurrentObserversDontLose) {
  LatencyHistogram histogram;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < 1000; ++i) histogram.Observe(0.001);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram.snapshot().count, 4000u);
}

TEST(ServerMetricsTest, CountsByEndpointAndStatus) {
  ServerMetrics metrics;
  metrics.RecordRequest("/v1/preview", 200, 0.001);
  metrics.RecordRequest("/v1/preview", 200, 0.002);
  metrics.RecordRequest("/v1/preview", 400, 0.0001);
  metrics.RecordRequest("/healthz", 200, 0.00005);
  EXPECT_EQ(metrics.total_requests(), 4u);

  const auto counts = metrics.request_counts();
  ASSERT_EQ(counts.size(), 3u);  // (preview,200) (preview,400) (healthz,200)
  uint64_t preview_ok = 0;
  for (const auto& rc : counts) {
    if (rc.endpoint == "/v1/preview" && rc.status == 200) {
      preview_ok = rc.count;
    }
  }
  EXPECT_EQ(preview_ok, 2u);
}

TEST(ServerMetricsTest, PrometheusTextShape) {
  ServerMetrics metrics;
  metrics.RecordRequest("/v1/preview", 200, 0.001);
  const std::string text = metrics.PrometheusText();
  EXPECT_NE(text.find("# TYPE egp_http_requests_total counter"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "egp_http_requests_total{endpoint=\"/v1/preview\",status=\"200\"} "
          "1"),
      std::string::npos);
  EXPECT_NE(text.find("# TYPE egp_http_request_duration_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("egp_http_request_duration_seconds_bucket{le=\"+Inf\"} "
                      "1"),
            std::string::npos);
  EXPECT_NE(text.find("egp_http_request_duration_seconds_count 1"),
            std::string::npos);
}

}  // namespace
}  // namespace egp
