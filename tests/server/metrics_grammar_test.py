#!/usr/bin/env python3
"""Grammar ctest for GET /metrics: boots the real egp_server binary on
an ephemeral port against the shipped sample dataset, scrapes /metrics
over HTTP (before and after serving a preview, so counters have moved),
and runs tools/validate_metrics.py over the live exposition text.

usage: metrics_grammar_test.py <egp_server> <sample.nt> <validate_metrics.py>
"""

import re
import subprocess
import sys
import time
import urllib.request


def wait_for_port(proc, deadline_s=30.0):
    """Tails the server's stdout for its listening line."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit("server exited before printing its port")
        sys.stderr.write(line)
        m = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
        if m:
            return int(m.group(1))
    raise SystemExit("timed out waiting for the server's listening line")


def fetch(port, path, body=None):
    url = f"http://127.0.0.1:{port}{path}"
    request = urllib.request.Request(
        url, data=body,
        headers={"Content-Type": "application/json"} if body else {})
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.read().decode("utf-8")


def main():
    if len(sys.argv) != 4:
        raise SystemExit(__doc__)
    server_path, sample_nt, validator = sys.argv[1:4]
    proc = subprocess.Popen(
        [server_path, "--dataset", "sample=" + sample_nt,
         "--port", "0", "--workers", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
    try:
        port = wait_for_port(proc)
        # Move the counters and histograms off their initial state so
        # the validator sees populated series, not just zeros.
        fetch(port, "/v1/preview",
              body=b'{"k":2,"n":6,"sample":{"rows":2,"seed":5}}')
        exposition = fetch(port, "/metrics")
    finally:
        proc.terminate()
        proc.wait(timeout=15)

    for series in ("egp_http_requests_total", "egp_loop_lag_seconds_bucket",
                   "egp_connections{", "egp_process_resident_bytes",
                   "egp_process_open_fds", "egp_process_uptime_seconds"):
        if series not in exposition:
            raise SystemExit(f"/metrics is missing {series!r}")

    result = subprocess.run(
        [sys.executable, validator], input=exposition,
        capture_output=True, text=True)
    sys.stdout.write(result.stdout)
    sys.stderr.write(result.stderr)
    if result.returncode != 0:
        raise SystemExit("validate_metrics.py rejected the live exposition")
    print("metrics_grammar_test: live /metrics output passed the grammar "
          "validator")


if __name__ == "__main__":
    main()
