// Deadline semantics of the socket layer. The central regression here:
// timed I/O is budgeted against an absolute deadline, so a peer that
// keeps making one byte of progress per poll window can NOT extend an
// operation past its total budget (the restart-the-clock bug that let
// slow clients pin server workers indefinitely). Also covers the
// HttpClient response connection semantics (RFC 9110 token lists,
// HTTP/1.1 default keep-alive) against canned server bytes.
#include "server/socket.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "server/http_client.h"

namespace egp {
namespace {

/// A connected AF_UNIX stream pair with deliberately small buffers so
/// writes block quickly.
struct SocketPair {
  UniqueFd a;
  UniqueFd b;
};

SocketPair MakePair(int buffer_bytes = 4096) {
  int fds[2] = {-1, -1};
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  for (const int fd : fds) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buffer_bytes,
                 sizeof(buffer_bytes));
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buffer_bytes,
                 sizeof(buffer_bytes));
    // The timed helpers require non-blocking fds (poll + non-blocking
    // syscall per step) — a blocking send() would park in the kernel
    // past any deadline.
    SetNonBlocking(fd);
  }
  return SocketPair{UniqueFd(fds[0]), UniqueFd(fds[1])};
}

TEST(DeadlineTest, DeadlineAfterMillisMapsNegativeToNoDeadline) {
  EXPECT_EQ(DeadlineAfterMillis(-1), kNoDeadline);
  const int64_t before = MonotonicMillis();
  const int64_t deadline = DeadlineAfterMillis(250);
  EXPECT_GE(deadline, before + 250);
  EXPECT_LE(deadline, MonotonicMillis() + 250);
}

TEST(DeadlineTest, RecvSomeUntilReturnsAtTheDeadline) {
  SocketPair pair = MakePair();
  char buf[64];
  const int64_t start = MonotonicMillis();
  const IoResult r =
      RecvSomeUntil(pair.a.get(), buf, sizeof(buf), DeadlineAfterMillis(200));
  const int64_t elapsed = MonotonicMillis() - start;
  EXPECT_EQ(r.status, IoStatus::kTimeout);
  EXPECT_GE(elapsed, 150);
  EXPECT_LE(elapsed, 2'000);  // generous: CI boxes stall
}

// THE regression test for the deadline bug: a peer that reads a trickle
// of bytes — each read makes the blocked sender writable again, i.e.
// "progress" — must not reset SendAll's clock. Under the old
// per-poll-iteration timeout, every sliver of progress restarted the
// full budget and this send ran until the peer stopped humoring it;
// with an absolute deadline it returns kTimeout on schedule with a
// partial byte count.
TEST(DeadlineTest, TricklingPeerCannotExtendSendAllPastItsBudget) {
  SocketPair pair = MakePair();
  std::atomic<bool> stop{false};
  std::thread trickler([&] {
    char byte;
    while (!stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      if (::recv(pair.b.get(), &byte, 1, MSG_DONTWAIT) < 0 &&
          errno != EAGAIN && errno != EWOULDBLOCK) {
        return;
      }
    }
  });

  const std::string payload(4 * 1024 * 1024, 'x');
  const int64_t start = MonotonicMillis();
  const IoResult sent = SendAll(pair.a.get(), payload, /*timeout_ms=*/400);
  const int64_t elapsed = MonotonicMillis() - start;
  stop.store(true, std::memory_order_release);
  trickler.join();

  EXPECT_EQ(sent.status, IoStatus::kTimeout);
  EXPECT_LT(sent.bytes, payload.size());  // partial progress is reported
  EXPECT_GE(elapsed, 350);
  // ~10 trickle reads fit in the budget; with the restart bug each one
  // re-armed 400 ms and this send ran for minutes. Allow generous CI
  // scheduling slack while staying far below the buggy behavior.
  EXPECT_LE(elapsed, 5'000);
}

TEST(DeadlineTest, SendAllUntilWithoutDeadlineCompletes) {
  SocketPair pair = MakePair();
  std::thread drainer([fd = pair.b.get()] {
    char buf[16 * 1024];
    size_t total = 0;
    while (total < 1024 * 1024) {
      const IoResult r = RecvSome(fd, buf, sizeof(buf), 5'000);
      if (r.status != IoStatus::kOk) return;
      total += r.bytes;
    }
  });
  const std::string payload(1024 * 1024, 'y');
  const IoResult sent = SendAllUntil(pair.a.get(), payload, kNoDeadline);
  drainer.join();
  EXPECT_EQ(sent.status, IoStatus::kOk);
  EXPECT_EQ(sent.bytes, payload.size());
}

// ---------------------------------------------------------------------------
// HttpClient response connection semantics, against canned bytes.
// ---------------------------------------------------------------------------

/// Serves exactly `response_bytes` to the first connection, after
/// reading the request head, then holds the socket open until asked to
/// stop (Content-Length framing must suffice — EOF is not the signal).
Result<HttpClientResponse> ExchangeWithCannedServer(
    const std::string& response_bytes) {
  uint16_t port = 0;
  auto listener = ListenTcp("127.0.0.1", 0, 4, &port);
  EXPECT_TRUE(listener.ok());
  std::atomic<bool> done{false};
  std::thread server([&listener, &response_bytes, &done] {
    if (WaitReadable(listener->get(), 5'000).status != IoStatus::kOk) return;
    auto conn = AcceptConnection(listener->get());
    if (!conn.ok()) return;
    std::string request;
    char buf[4096];
    while (request.find("\r\n\r\n") == std::string::npos) {
      const IoResult r = RecvSome(conn->get(), buf, sizeof(buf), 5'000);
      if (r.status != IoStatus::kOk) return;
      request.append(buf, r.bytes);
    }
    // Best-effort: the test asserts on the client side, not this send.
    (void)SendAll(conn->get(), response_bytes, 5'000);
    while (!done.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  HttpClient client("127.0.0.1", port, 5'000);
  auto response = client.Get("/probe");
  done.store(true, std::memory_order_release);
  server.join();
  return response;
}

TEST(HttpClientConnectionTest, Http11WithoutConnectionHeaderKeepsAlive) {
  const auto response = ExchangeWithCannedServer(
      "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, "hi");
  EXPECT_TRUE(response->keep_alive);  // HTTP/1.1 default is keep-alive
}

TEST(HttpClientConnectionTest, Http10WithoutConnectionHeaderCloses) {
  const auto response = ExchangeWithCannedServer(
      "HTTP/1.0 200 OK\r\nContent-Length: 0\r\n\r\n");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->keep_alive);
}

TEST(HttpClientConnectionTest, CloseTokenInConnectionListCloses) {
  // "close" buried in an RFC 9110 token list must count — substring-less
  // parsing ("closet") must not.
  const auto response = ExchangeWithCannedServer(
      "HTTP/1.1 200 OK\r\nContent-Length: 0\r\nConnection: close, TE\r\n\r\n");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->keep_alive);
}

TEST(HttpClientConnectionTest, KeepAliveTokenOverridesHttp10Default) {
  const auto response = ExchangeWithCannedServer(
      "HTTP/1.0 200 OK\r\nContent-Length: 0\r\n"
      "Connection: Keep-Alive\r\n\r\n");  // case-insensitive
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->keep_alive);
}

}  // namespace
}  // namespace egp
