// JSON export of previews, for UI / notebook consumption.
//
// Two levels of detail: the schema-level preview (key + attribute
// metadata and scores) and the materialized preview (with sampled
// tuples). Output is deterministic, minified JSON with full string
// escaping; no external JSON library is required.
#ifndef EGP_IO_JSON_EXPORT_H_
#define EGP_IO_JSON_EXPORT_H_

#include <string>

#include "core/preview.h"
#include "core/tuple_sampler.h"
#include "graph/entity_graph.h"

namespace egp {

/// Escapes a string for inclusion inside JSON quotes.
std::string JsonEscape(std::string_view text);

/// {"score": ..., "tables": [{"key": ..., "keyScore": ...,
///   "nonkeys": [{"name": ..., "direction": "out", "target": ...,
///                "score": ...}, ...]}, ...]}
std::string PreviewToJson(const PreparedSchema& prepared,
                          const Preview& preview);

/// Adds sampled rows: {"tables": [{"key": ..., "columns": [...],
///   "totalTuples": ..., "rows": [{"key": ..., "cells": [[...], ...]},
///   ...]}]}
std::string MaterializedPreviewToJson(const EntityGraph& graph,
                                      const MaterializedPreview& preview);

}  // namespace egp

#endif  // EGP_IO_JSON_EXPORT_H_
