// N-Triples-lite loader for RDF-shaped inputs.
//
//   <subject> <predicate> <object> .
//
// `a` (or rdf:type) predicates assert entity types; any other predicate is
// a relationship whose type is inferred as (predicate surface, primary type
// of subject, primary type of object) — "primary" meaning first-asserted.
// This mirrors how a raw Freebase/Linked-Data dump would be ingested when
// relationship types are not pre-declared; triples whose endpoints have no
// asserted type yet are buffered until all type assertions are seen.
#ifndef EGP_IO_NTRIPLES_H_
#define EGP_IO_NTRIPLES_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "graph/entity_graph.h"

namespace egp {

struct NTriplesStats {
  uint64_t triples = 0;
  uint64_t type_assertions = 0;
  uint64_t relationships = 0;
  uint64_t skipped_untyped = 0;  // relationships dropped: untyped endpoint
};

Result<EntityGraph> ReadNTriples(std::istream& in,
                                 NTriplesStats* stats = nullptr);
Result<EntityGraph> ReadNTriplesFile(const std::string& path,
                                     NTriplesStats* stats = nullptr);

}  // namespace egp

#endif  // EGP_IO_NTRIPLES_H_
