// N-Triples-lite loader for RDF-shaped inputs.
//
//   <subject> <predicate> <object> .      # trailing comments allowed
//
// `a` (or rdf:type) predicates assert entity types; any other predicate is
// a relationship whose type is inferred as (predicate surface, primary type
// of subject, primary type of object) — "primary" meaning first-asserted.
// This mirrors how a raw Freebase/Linked-Data dump would be ingested when
// relationship types are not pre-declared; triples whose endpoints have no
// asserted type yet are buffered until all type assertions are seen.
//
// Tokens: <bracketed> IRIs (raw bytes, may contain spaces), "quoted"
// literals with the W3C escape set (\t \b \n \r \f \" \' \\ and \uXXXX /
// \UXXXXXXXX encoded as UTF-8), and bare words. Lines may end CRLF;
// blank lines and full-line or post-terminator `#` comments are
// ignored. Malformed lines are rejected with the 1-based line and
// column of the offending byte.
#ifndef EGP_IO_NTRIPLES_H_
#define EGP_IO_NTRIPLES_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "graph/entity_graph.h"

namespace egp {

struct NTriplesStats {
  uint64_t triples = 0;
  uint64_t type_assertions = 0;
  uint64_t relationships = 0;
  uint64_t skipped_untyped = 0;  // relationships dropped: untyped endpoint
};

Result<EntityGraph> ReadNTriples(std::istream& in,
                                 NTriplesStats* stats = nullptr);
Result<EntityGraph> ReadNTriplesFile(const std::string& path,
                                     NTriplesStats* stats = nullptr);

/// Serializes `graph` as N-Triples-lite: one `a` triple per (entity,
/// type) assertion in assertion order, then one triple per edge in edge
/// order. Names print as <bracketed> IRIs unless they contain bytes the
/// bracket form cannot carry ('>', '"', '\', control characters), which
/// are written as escaped quoted literals instead.
///
/// Round-trip caveat (inherent to the format, not the writer): reading
/// the output back reconstructs the same graph only when every edge's
/// relationship type is anchored on its endpoints' primary types, no
/// surface name collides with the `a` / rdf:type predicates, and every
/// entity carries at least one type — untyped entities have no triple
/// to appear in (they cannot be edge endpoints either), so they are
/// dropped and later EntityIds shift. All of this holds for .nt-parsed
/// and datagen graphs; EGT (graph_io.h) or .egps (store/) snapshots
/// are the exact formats.
Status WriteNTriples(const EntityGraph& graph, std::ostream& out);
Status WriteNTriplesFile(const EntityGraph& graph, const std::string& path);

}  // namespace egp

#endif  // EGP_IO_NTRIPLES_H_
