// Strict JSON parsing, the inbound half of the io layer's JSON support
// (json_export.h is the outbound half).
//
// Built for hostile input: the HTTP serving subsystem feeds it raw
// request bodies, so the parser must reject — never crash on — anything
// malformed. It implements RFC 8259 strictly:
//   * full UTF-8 validation of the input (overlong encodings, surrogates,
//     out-of-range code points, and truncated sequences are errors);
//   * \uXXXX escapes with mandatory surrogate pairing;
//   * RFC number grammar only (no leading '+', no bare '.', no hex,
//     no NaN/Infinity); values that overflow double are errors;
//   * no trailing garbage after the top-level value;
//   * a recursion depth limit (stack safety) and optional duplicate-key
//     rejection, both on by default.
// Errors are Status::InvalidArgument with the byte offset of the fault.
// No external JSON library is required anywhere in the repo.
#ifndef EGP_IO_JSON_PARSER_H_
#define EGP_IO_JSON_PARSER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace egp {

/// One parsed JSON value. Objects preserve member order (first to last as
/// written); lookup is linear, which is the right trade-off for the small
/// request documents this exists for.
class JsonValue {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() = default;  // null

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool value);
  static JsonValue MakeNumber(double value);
  static JsonValue MakeString(std::string value);
  static JsonValue MakeArray(Array values);
  static JsonValue MakeObject(Object members);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; calling the wrong one aborts (check kind() first).
  bool bool_value() const;
  double number_value() const;
  const std::string& string_value() const;
  const Array& array() const;
  const Object& object() const;

  /// First member with `key` in an object, nullptr when absent. Aborts on
  /// non-objects.
  const JsonValue* Find(std::string_view key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// "null", "bool", "number", "string", "array", "object".
std::string_view JsonKindName(JsonValue::Kind kind);

struct JsonParseOptions {
  /// Maximum nesting depth of arrays/objects; deeper input is rejected
  /// (stack safety against e.g. 100k opening brackets).
  size_t max_depth = 64;
  /// Reject objects with repeated keys. RFC 8259 leaves the behaviour
  /// unspecified; for request parsing, silent last-wins would let an
  /// attacker smuggle contradictory parameters past logging, so strict
  /// mode refuses them.
  bool reject_duplicate_keys = true;
};

/// Parses exactly one JSON document from `text` (the whole input; leading
/// and trailing RFC whitespace allowed, anything else after the value is
/// an error).
Result<JsonValue> ParseJson(std::string_view text,
                            const JsonParseOptions& options = {});

}  // namespace egp

#endif  // EGP_IO_JSON_PARSER_H_
