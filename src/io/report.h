// Markdown dataset-preview reports.
//
// The artifact the paper's introduction motivates: a document a data
// worker reads *before* fetching a dataset. Bundles the graph and schema
// statistics, the top key attributes under both measures, the discovered
// preview with sampled tuples (Markdown tables), and optionally the DOT
// source of the preview-annotated schema graph.
#ifndef EGP_IO_REPORT_H_
#define EGP_IO_REPORT_H_

#include <string>

#include "common/result.h"
#include "core/discoverer.h"
#include "core/tuple_sampler.h"
#include "graph/entity_graph.h"

namespace egp {

struct ReportOptions {
  std::string title = "Dataset preview";
  PreparedSchemaOptions measures;
  DiscoveryOptions discovery = {{3, 9}, {}, Algorithm::kAuto};
  TupleSamplerOptions sampler;
  size_t top_keys = 8;       // ranking table length
  bool include_dot = false;  // appendix with Graphviz source
  /// Prebuilt CSR of the graph (e.g. from an .egps snapshot); scoring
  /// reuses it instead of re-freezing. Must outlive the call.
  const FrozenGraph* frozen = nullptr;
};

/// Renders the full report; fails if discovery is infeasible under the
/// requested constraints.
Result<std::string> GeneratePreviewReport(const EntityGraph& graph,
                                          const ReportOptions& options = {});

}  // namespace egp

#endif  // EGP_IO_REPORT_H_
