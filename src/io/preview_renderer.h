// Renders materialized previews as ASCII or Markdown tables (Fig. 2 style).
#ifndef EGP_IO_PREVIEW_RENDERER_H_
#define EGP_IO_PREVIEW_RENDERER_H_

#include <string>

#include "core/tuple_sampler.h"
#include "graph/entity_graph.h"

namespace egp {

struct RenderOptions {
  size_t max_cell_width = 36;   // longer cells are truncated with "..."
  size_t max_values_per_cell = 3;
  bool show_direction = false;  // annotate columns with <- for incoming
  enum class Format { kAscii, kMarkdown } format = Format::kAscii;
};

/// Renders every table of the preview; key column is marked with
/// underlining (ASCII) or bold (Markdown), mirroring Fig. 2.
std::string RenderPreview(const EntityGraph& graph,
                          const MaterializedPreview& preview,
                          const RenderOptions& options = {});

std::string RenderTable(const EntityGraph& graph,
                        const MaterializedTable& table,
                        const RenderOptions& options = {});

}  // namespace egp

#endif  // EGP_IO_PREVIEW_RENDERER_H_
