#include "io/json_parser.h"

#include <charconv>

#include "common/check.h"
#include "common/fault.h"
#include "common/strings.h"

namespace egp {

JsonValue JsonValue::MakeBool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::MakeNumber(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::MakeString(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::MakeArray(Array values) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(values);
  return v;
}

JsonValue JsonValue::MakeObject(Object members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

bool JsonValue::bool_value() const {
  EGP_CHECK(is_bool()) << "JsonValue is " << JsonKindName(kind_)
                       << ", not bool";
  return bool_;
}

double JsonValue::number_value() const {
  EGP_CHECK(is_number()) << "JsonValue is " << JsonKindName(kind_)
                         << ", not number";
  return number_;
}

const std::string& JsonValue::string_value() const {
  EGP_CHECK(is_string()) << "JsonValue is " << JsonKindName(kind_)
                         << ", not string";
  return string_;
}

const JsonValue::Array& JsonValue::array() const {
  EGP_CHECK(is_array()) << "JsonValue is " << JsonKindName(kind_)
                        << ", not array";
  return array_;
}

const JsonValue::Object& JsonValue::object() const {
  EGP_CHECK(is_object()) << "JsonValue is " << JsonKindName(kind_)
                         << ", not object";
  return object_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const Member& member : object()) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

std::string_view JsonKindName(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull:
      return "null";
    case JsonValue::Kind::kBool:
      return "bool";
    case JsonValue::Kind::kNumber:
      return "number";
    case JsonValue::Kind::kString:
      return "string";
    case JsonValue::Kind::kArray:
      return "array";
    case JsonValue::Kind::kObject:
      return "object";
  }
  return "?";
}

namespace {

/// Recursive-descent parser over a fixed buffer. All methods return false
/// on failure after recording the error; the entry point converts that
/// into a Status carrying the byte offset.
class Parser {
 public:
  Parser(std::string_view text, const JsonParseOptions& options)
      : text_(text), options_(options) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    SkipWhitespace();
    if (!ParseValue(&value, 0)) return TakeError();
    SkipWhitespace();
    if (pos_ != text_.size()) {
      Error("trailing characters after the JSON value");
      return TakeError();
    }
    return value;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  /// Records the first error only (later cascade errors would be noise).
  void Error(const std::string& message) {
    if (error_.empty()) {
      error_ = message;
      error_pos_ = pos_;
    }
  }

  Status TakeError() {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(error_pos_) + ": " +
                                   error_);
  }

  bool ParseValue(JsonValue* out, size_t depth) {
    if (AtEnd()) {
      Error("unexpected end of input, expected a value");
      return false;
    }
    switch (Peek()) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = JsonValue::MakeString(std::move(s));
        return true;
      }
      case 't':
        if (!ConsumeLiteral("true")) return false;
        *out = JsonValue::MakeBool(true);
        return true;
      case 'f':
        if (!ConsumeLiteral("false")) return false;
        *out = JsonValue::MakeBool(false);
        return true;
      case 'n':
        if (!ConsumeLiteral("null")) return false;
        *out = JsonValue::MakeNull();
        return true;
      default:
        return ParseNumber(out);
    }
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      Error("invalid literal (expected '" + std::string(literal) + "')");
      return false;
    }
    pos_ += literal.size();
    return true;
  }

  bool ParseObject(JsonValue* out, size_t depth) {
    if (depth >= options_.max_depth) {
      Error("nesting deeper than " + std::to_string(options_.max_depth));
      return false;
    }
    ++pos_;  // '{'
    JsonValue::Object members;
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      *out = JsonValue::MakeObject(std::move(members));
      return true;
    }
    for (;;) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') {
        Error("expected a string object key");
        return false;
      }
      const size_t key_pos = pos_;
      std::string key;
      if (!ParseString(&key)) return false;
      if (options_.reject_duplicate_keys) {
        for (const JsonValue::Member& member : members) {
          if (member.first == key) {
            pos_ = key_pos;
            Error("duplicate object key \"" + key + "\"");
            return false;
          }
        }
      }
      SkipWhitespace();
      if (AtEnd() || Peek() != ':') {
        Error("expected ':' after object key");
        return false;
      }
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (AtEnd()) {
        Error("unterminated object (expected ',' or '}')");
        return false;
      }
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        *out = JsonValue::MakeObject(std::move(members));
        return true;
      }
      Error("expected ',' or '}' in object");
      return false;
    }
  }

  bool ParseArray(JsonValue* out, size_t depth) {
    if (depth >= options_.max_depth) {
      Error("nesting deeper than " + std::to_string(options_.max_depth));
      return false;
    }
    ++pos_;  // '['
    JsonValue::Array values;
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      *out = JsonValue::MakeArray(std::move(values));
      return true;
    }
    for (;;) {
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      values.push_back(std::move(value));
      SkipWhitespace();
      if (AtEnd()) {
        Error("unterminated array (expected ',' or ']')");
        return false;
      }
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        *out = JsonValue::MakeArray(std::move(values));
        return true;
      }
      Error("expected ',' or ']' in array");
      return false;
    }
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    // Integer part: '0' alone or a non-zero digit run (no leading zeros).
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      pos_ = start;
      Error("invalid value");
      return false;
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        Error("expected digits after the decimal point");
        return false;
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        Error("expected digits in the exponent");
        return false;
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const std::from_chars_result parsed = std::from_chars(first, last, value);
    if (parsed.ec != std::errc() || parsed.ptr != last) {
      pos_ = start;
      Error(parsed.ec == std::errc::result_out_of_range
                ? "number out of double range"
                : "malformed number");
      return false;
    }
    *out = JsonValue::MakeNumber(value);
    return true;
  }

  /// One UTF-8 sequence of raw (non-escape) string bytes. Validates
  /// structure and rejects overlong forms, surrogates, and > U+10FFFF so
  /// no invalid byte sequence survives into parsed values.
  bool ConsumeUtf8Sequence(std::string* out) {
    const unsigned char lead = static_cast<unsigned char>(Peek());
    size_t length;
    uint32_t code;
    if (lead < 0x80) {
      length = 1;
      code = lead;
    } else if ((lead & 0xE0) == 0xC0) {
      length = 2;
      code = lead & 0x1F;
    } else if ((lead & 0xF0) == 0xE0) {
      length = 3;
      code = lead & 0x0F;
    } else if ((lead & 0xF8) == 0xF0) {
      length = 4;
      code = lead & 0x07;
    } else {
      Error("invalid UTF-8 lead byte");
      return false;
    }
    if (pos_ + length > text_.size()) {
      Error("truncated UTF-8 sequence");
      return false;
    }
    for (size_t i = 1; i < length; ++i) {
      const unsigned char cont = static_cast<unsigned char>(text_[pos_ + i]);
      if ((cont & 0xC0) != 0x80) {
        Error("invalid UTF-8 continuation byte");
        return false;
      }
      code = (code << 6) | (cont & 0x3F);
    }
    constexpr uint32_t kMinForLength[5] = {0, 0, 0x80, 0x800, 0x10000};
    if (length > 1 && code < kMinForLength[length]) {
      Error("overlong UTF-8 encoding");
      return false;
    }
    if (code >= 0xD800 && code <= 0xDFFF) {
      Error("raw UTF-16 surrogate in UTF-8 input");
      return false;
    }
    if (code > 0x10FFFF) {
      Error("code point beyond U+10FFFF");
      return false;
    }
    out->append(text_.substr(pos_, length));
    pos_ += length;
    return true;
  }

  /// Four hex digits of a \u escape.
  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) {
      Error("truncated \\u escape");
      return false;
    }
    uint32_t value = 0;
    for (size_t i = 0; i < 4; ++i) {
      const int digit = HexDigitValue(text_[pos_ + i]);
      if (digit < 0) {
        Error("non-hex digit in \\u escape");
        return false;
      }
      value = (value << 4) | static_cast<uint32_t>(digit);
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    for (;;) {
      if (AtEnd()) {
        Error("unterminated string");
        return false;
      }
      const unsigned char c = static_cast<unsigned char>(Peek());
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) {
        Error("unescaped control character in string");
        return false;
      }
      if (c != '\\') {
        if (!ConsumeUtf8Sequence(out)) return false;
        continue;
      }
      ++pos_;  // backslash
      if (AtEnd()) {
        Error("truncated escape sequence");
        return false;
      }
      const char escape = Peek();
      ++pos_;
      switch (escape) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t code = 0;
          if (!ParseHex4(&code)) return false;
          if (code >= 0xDC00 && code <= 0xDFFF) {
            pos_ -= 6;
            Error("unpaired low surrogate");
            return false;
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            // A high surrogate must be followed by \uDC00..\uDFFF.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              Error("high surrogate not followed by \\u escape");
              return false;
            }
            pos_ += 2;
            uint32_t low = 0;
            if (!ParseHex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              Error("high surrogate not followed by a low surrogate");
              return false;
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          // `code` is a validated scalar value by now; the shared
          // encoder re-checks and cannot fail here.
          if (!egp::AppendUtf8(out, code)) {
            Error("invalid \\u escape");
            return false;
          }
          break;
        }
        default:
          pos_ -= 2;
          Error("invalid escape sequence");
          return false;
      }
    }
  }

  std::string_view text_;
  const JsonParseOptions& options_;
  size_t pos_ = 0;
  std::string error_;
  size_t error_pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text,
                            const JsonParseOptions& options) {
  EGP_RETURN_IF_ERROR(FaultInjectStatus("json.parse"));
  return Parser(text, options).Parse();
}

}  // namespace egp
