// EGT snapshot format: a line-oriented TSV serialization of entity graphs
// that round-trips exactly (names, multi-typing, relationship types).
//
//   # comment
//   reltype <TAB> <surface> <TAB> <src type> <TAB> <dst type>
//   type    <TAB> <entity>  <TAB> <type>
//   edge    <TAB> <src> <TAB> <surface> <TAB> <src type> <TAB> <dst type> <TAB> <dst>
//
// `reltype` lines pre-declare relationship types (optional — edge lines
// create them on demand); `type` lines assert entity types and create
// entities; `edge` lines add relationship instances.
#ifndef EGP_IO_GRAPH_IO_H_
#define EGP_IO_GRAPH_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "common/result.h"
#include "graph/entity_graph.h"
#include "graph/frozen_graph.h"
#include "store/snapshot_reader.h"

namespace egp {

Result<EntityGraph> ReadEntityGraph(std::istream& in);
Result<EntityGraph> ReadEntityGraphFile(const std::string& path);

Status WriteEntityGraph(const EntityGraph& graph, std::ostream& out);
Status WriteEntityGraphFile(const EntityGraph& graph,
                            const std::string& path);

// ---------------------------------------------------------------------------
// Unified loading: one entry point for every on-disk graph representation
// (.nt text, .egt text, .egps binary snapshot), shared by the CLI and the
// server's DatasetCatalog.
// ---------------------------------------------------------------------------

/// How a graph file is stored on disk.
enum class GraphStorage { kNTriples, kEgt, kSnapshot };

/// Stable lower-case label for logs and the /v1/datasets API:
/// "nt", "egt", or "snapshot".
const char* GraphStorageName(GraphStorage storage);

struct LoadedGraph {
  EntityGraph graph;
  /// The prebuilt CSR; set iff storage == kSnapshot (possibly viewing
  /// the mapped file zero-copy — see StoredGraph::zero_copy).
  std::optional<FrozenGraph> frozen;
  GraphStorage storage = GraphStorage::kEgt;
  bool zero_copy = false;
};

/// Loads a graph with content sniffing: a file starting with the EGPS
/// magic opens as a binary snapshot whatever its name; otherwise a
/// ".nt" extension parses N-Triples and anything else the EGT text
/// format. A file *named* .egps without the magic is rejected outright
/// (a mangled snapshot should not fall through to a text parse).
Result<LoadedGraph> LoadGraphFileAuto(
    const std::string& path, const SnapshotOpenOptions& snapshot_options = {});

}  // namespace egp

#endif  // EGP_IO_GRAPH_IO_H_
