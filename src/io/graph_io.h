// EGT snapshot format: a line-oriented TSV serialization of entity graphs
// that round-trips exactly (names, multi-typing, relationship types).
//
//   # comment
//   reltype <TAB> <surface> <TAB> <src type> <TAB> <dst type>
//   type    <TAB> <entity>  <TAB> <type>
//   edge    <TAB> <src> <TAB> <surface> <TAB> <src type> <TAB> <dst type> <TAB> <dst>
//
// `reltype` lines pre-declare relationship types (optional — edge lines
// create them on demand); `type` lines assert entity types and create
// entities; `edge` lines add relationship instances.
#ifndef EGP_IO_GRAPH_IO_H_
#define EGP_IO_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "graph/entity_graph.h"

namespace egp {

Result<EntityGraph> ReadEntityGraph(std::istream& in);
Result<EntityGraph> ReadEntityGraphFile(const std::string& path);

Status WriteEntityGraph(const EntityGraph& graph, std::ostream& out);
Status WriteEntityGraphFile(const EntityGraph& graph,
                            const std::string& path);

}  // namespace egp

#endif  // EGP_IO_GRAPH_IO_H_
