// Graphviz (DOT) export of schema graphs, optionally highlighting a
// preview — the visual "schema graph" presentation the paper's user
// study compares against (the "Graph" approach of §6.3), plus a way to
// see which star subgraphs a preview selected (Fig. 3's #1/#2 overlays).
#ifndef EGP_IO_GRAPHVIZ_EXPORT_H_
#define EGP_IO_GRAPHVIZ_EXPORT_H_

#include <string>

#include "core/preview.h"
#include "graph/schema_graph.h"

namespace egp {

struct GraphvizOptions {
  /// Scale node labels with entity counts and edge labels with
  /// relationship counts.
  bool show_counts = true;
  /// Limit label length (long synthetic names stay readable).
  size_t max_label_length = 24;
};

/// DOT digraph of the schema: one node per entity type, one edge per
/// relationship type (surface name as label).
std::string SchemaToDot(const SchemaGraph& schema,
                        const GraphvizOptions& options = {});

/// Same, with the preview's key types filled and its chosen non-key
/// attributes drawn bold — the star-shaped subgraphs of Def. 1.
std::string PreviewToDot(const PreparedSchema& prepared,
                         const Preview& preview,
                         const GraphvizOptions& options = {});

}  // namespace egp

#endif  // EGP_IO_GRAPHVIZ_EXPORT_H_
