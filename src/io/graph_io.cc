#include "io/graph_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/strings.h"
#include "graph/entity_graph_builder.h"
#include "io/ntriples.h"

namespace egp {

Result<EntityGraph> ReadEntityGraph(std::istream& in) {
  EntityGraphBuilder builder;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view view = Trim(line);
    if (view.empty() || view[0] == '#') continue;
    const std::vector<std::string> fields = Split(view, '\t');
    const std::string& kind = fields[0];
    auto error = [&](const char* what) {
      return Status::Corruption(StrFormat("line %zu: %s", line_number, what));
    };
    if (kind == "reltype") {
      if (fields.size() != 4) return error("reltype needs 3 fields");
      const TypeId src = builder.AddEntityType(fields[2]);
      const TypeId dst = builder.AddEntityType(fields[3]);
      builder.AddRelationshipType(fields[1], src, dst);
    } else if (kind == "type") {
      if (fields.size() != 3) return error("type needs 2 fields");
      builder.AddTypedEntity(fields[1], fields[2]);
    } else if (kind == "edge") {
      if (fields.size() != 6) return error("edge needs 5 fields");
      const TypeId src_type = builder.AddEntityType(fields[3]);
      const TypeId dst_type = builder.AddEntityType(fields[4]);
      const RelTypeId rel =
          builder.AddRelationshipType(fields[2], src_type, dst_type);
      const EntityId src = builder.AddEntity(fields[1]);
      const EntityId dst = builder.AddEntity(fields[5]);
      // Edges imply membership of their endpoints in the endpoint types.
      builder.AddEntityToType(src, src_type);
      builder.AddEntityToType(dst, dst_type);
      EGP_RETURN_IF_ERROR(builder.AddEdge(src, rel, dst));
    } else {
      return error("unknown record kind");
    }
  }
  return builder.Build();
}

Result<EntityGraph> ReadEntityGraphFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  return ReadEntityGraph(in);
}

Status WriteEntityGraph(const EntityGraph& graph, std::ostream& out) {
  out << "# EGT snapshot: " << graph.num_entities() << " entities, "
      << graph.num_edges() << " edges, " << graph.num_types() << " types, "
      << graph.num_rel_types() << " relationship types\n";
  for (RelTypeId r = 0; r < graph.num_rel_types(); ++r) {
    const RelTypeInfo& info = graph.RelType(r);
    out << "reltype\t" << graph.RelSurfaceName(r) << "\t"
        << graph.TypeName(info.src_type) << "\t"
        << graph.TypeName(info.dst_type) << "\n";
  }
  for (EntityId e = 0; e < graph.num_entities(); ++e) {
    for (TypeId t : graph.TypesOf(e)) {
      out << "type\t" << graph.EntityName(e) << "\t" << graph.TypeName(t)
          << "\n";
    }
  }
  for (const EdgeRecord& edge : graph.edges()) {
    const RelTypeInfo& info = graph.RelType(edge.rel_type);
    out << "edge\t" << graph.EntityName(edge.src) << "\t"
        << graph.RelSurfaceName(edge.rel_type) << "\t"
        << graph.TypeName(info.src_type) << "\t"
        << graph.TypeName(info.dst_type) << "\t"
        << graph.EntityName(edge.dst) << "\n";
  }
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Status WriteEntityGraphFile(const EntityGraph& graph,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  return WriteEntityGraph(graph, out);
}

const char* GraphStorageName(GraphStorage storage) {
  switch (storage) {
    case GraphStorage::kNTriples:
      return "nt";
    case GraphStorage::kEgt:
      return "egt";
    case GraphStorage::kSnapshot:
      return "snapshot";
  }
  return "unknown";
}

Result<LoadedGraph> LoadGraphFileAuto(
    const std::string& path, const SnapshotOpenOptions& snapshot_options) {
  bool is_snapshot = false;
  EGP_ASSIGN_OR_RETURN(is_snapshot, FileHasSnapshotMagic(path));
  LoadedGraph loaded;
  if (is_snapshot) {
    StoredGraph stored;
    EGP_ASSIGN_OR_RETURN(stored, OpenSnapshot(path, snapshot_options));
    loaded.graph = std::move(stored.graph);
    loaded.frozen = std::move(stored.frozen);
    loaded.storage = GraphStorage::kSnapshot;
    loaded.zero_copy = stored.zero_copy;
    return loaded;
  }
  if (EndsWith(path, ".egps")) {
    return Status::Corruption(path +
                              ": named .egps but does not start with the "
                              "EGPS magic (corrupt or not a snapshot)");
  }
  if (EndsWith(path, ".nt")) {
    EGP_ASSIGN_OR_RETURN(loaded.graph, ReadNTriplesFile(path));
    loaded.storage = GraphStorage::kNTriples;
    return loaded;
  }
  EGP_ASSIGN_OR_RETURN(loaded.graph, ReadEntityGraphFile(path));
  loaded.storage = GraphStorage::kEgt;
  return loaded;
}

}  // namespace egp
