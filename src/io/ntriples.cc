#include "io/ntriples.h"

#include <fstream>
#include <istream>
#include <vector>

#include "common/strings.h"
#include "graph/entity_graph_builder.h"

namespace egp {
namespace {

/// Splits `<a> <b> <c> .` into three tokens; angle brackets and the final
/// dot are optional. Tokens may contain spaces when bracketed.
Status ParseTriple(std::string_view line, std::string* s, std::string* p,
                   std::string* o) {
  std::vector<std::string> tokens;
  size_t i = 0;
  const size_t n = line.size();
  while (i < n && tokens.size() < 3) {
    while (i < n && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i >= n) break;
    if (line[i] == '<') {
      const size_t close = line.find('>', i + 1);
      if (close == std::string_view::npos) {
        return Status::Corruption("unterminated '<' token");
      }
      tokens.emplace_back(line.substr(i + 1, close - i - 1));
      i = close + 1;
    } else if (line[i] == '"') {
      const size_t close = line.find('"', i + 1);
      if (close == std::string_view::npos) {
        return Status::Corruption("unterminated '\"' token");
      }
      tokens.emplace_back(line.substr(i + 1, close - i - 1));
      i = close + 1;
    } else {
      size_t end = i;
      while (end < n && !std::isspace(static_cast<unsigned char>(line[end]))) {
        ++end;
      }
      std::string_view token = line.substr(i, end - i);
      if (token == ".") break;  // bare statement terminator, not a token
      tokens.emplace_back(token);
      i = end;
    }
  }
  // Anything after the third token must be the statement terminator.
  while (i < n && (std::isspace(static_cast<unsigned char>(line[i])) ||
                   line[i] == '.')) {
    ++i;
  }
  if (tokens.size() != 3 || i != n) {
    return Status::Corruption("expected '<s> <p> <o> .'");
  }
  *s = std::move(tokens[0]);
  *p = std::move(tokens[1]);
  *o = std::move(tokens[2]);
  return Status::OK();
}

bool IsTypePredicate(std::string_view p) {
  return p == "a" || p == "rdf:type" ||
         p == "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
}

}  // namespace

Result<EntityGraph> ReadNTriples(std::istream& in, NTriplesStats* stats) {
  EntityGraphBuilder builder;
  NTriplesStats local;
  struct PendingEdge {
    std::string s, p, o;
  };
  std::vector<PendingEdge> pending;

  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view view = Trim(line);
    if (view.empty() || view[0] == '#') continue;
    std::string s, p, o;
    Status status = ParseTriple(view, &s, &p, &o);
    if (!status.ok()) {
      return Status::Corruption(
          StrFormat("line %zu: %s", line_number, status.message().c_str()));
    }
    ++local.triples;
    if (IsTypePredicate(p)) {
      ++local.type_assertions;
      builder.AddTypedEntity(s, o);
    } else {
      // Relationship triples are resolved after all type assertions, since
      // the inferred relationship type needs endpoint types.
      pending.push_back(PendingEdge{std::move(s), std::move(p), std::move(o)});
    }
  }

  for (PendingEdge& edge : pending) {
    const EntityId src = builder.AddEntity(edge.s);
    const EntityId dst = builder.AddEntity(edge.o);
    // Relationship type inferred from primary (first-asserted) types.
    const std::vector<TypeId>& src_types = builder.TypesOf(src);
    const std::vector<TypeId>& dst_types = builder.TypesOf(dst);
    if (src_types.empty() || dst_types.empty()) {
      ++local.skipped_untyped;
      continue;
    }
    const RelTypeId rel =
        builder.AddRelationshipType(edge.p, src_types[0], dst_types[0]);
    EGP_RETURN_IF_ERROR(builder.AddEdge(src, rel, dst));
    ++local.relationships;
  }

  if (stats != nullptr) *stats = local;
  return builder.Build();
}

Result<EntityGraph> ReadNTriplesFile(const std::string& path,
                                     NTriplesStats* stats) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  return ReadNTriples(in, stats);
}

}  // namespace egp
