#include "io/ntriples.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "common/strings.h"
#include "graph/entity_graph_builder.h"

namespace egp {
namespace {

bool IsSpace(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

/// Splits `<a> <b> <c> .` into three tokens; angle brackets and the final
/// dot are optional, a `#` after the terminator comments out the rest of
/// the line. Bracketed tokens may contain spaces; quoted tokens support
/// the W3C N-Triples escape set. On error, `*error_at` is the 0-based
/// offset of the offending byte within `line`.
Status ParseTriple(std::string_view line, std::string* s, std::string* p,
                   std::string* o, size_t* error_at) {
  auto fail = [error_at](size_t at, const char* what) {
    *error_at = at;
    return Status::Corruption(what);
  };
  std::vector<std::string> tokens;
  size_t i = 0;
  const size_t n = line.size();
  while (i < n && tokens.size() < 3) {
    while (i < n && IsSpace(line[i])) ++i;
    if (i >= n) break;
    if (line[i] == '<') {
      const size_t close = line.find('>', i + 1);
      if (close == std::string_view::npos) {
        return fail(i, "unterminated '<' token");
      }
      tokens.emplace_back(line.substr(i + 1, close - i - 1));
      i = close + 1;
    } else if (line[i] == '"') {
      const size_t open = i;
      ++i;
      std::string token;
      bool closed = false;
      while (i < n) {
        const char c = line[i];
        if (c == '"') {
          closed = true;
          ++i;
          break;
        }
        if (c != '\\') {
          token.push_back(c);
          ++i;
          continue;
        }
        if (i + 1 >= n) return fail(i, "dangling '\\' in literal");
        const char escape = line[i + 1];
        switch (escape) {
          case 't': token.push_back('\t'); i += 2; break;
          case 'b': token.push_back('\b'); i += 2; break;
          case 'n': token.push_back('\n'); i += 2; break;
          case 'r': token.push_back('\r'); i += 2; break;
          case 'f': token.push_back('\f'); i += 2; break;
          case '"': token.push_back('"'); i += 2; break;
          case '\'': token.push_back('\''); i += 2; break;
          case '\\': token.push_back('\\'); i += 2; break;
          case 'u':
          case 'U': {
            const size_t digits = escape == 'u' ? 4 : 8;
            if (i + 2 + digits > n) {
              return fail(i, "truncated \\u escape in literal");
            }
            uint32_t cp = 0;
            for (size_t d = 0; d < digits; ++d) {
              const int value = HexDigitValue(line[i + 2 + d]);
              if (value < 0) {
                return fail(i + 2 + d, "bad hex digit in \\u escape");
              }
              cp = (cp << 4) | static_cast<uint32_t>(value);
            }
            if (!AppendUtf8(&token, cp)) {
              return fail(i, "\\u escape is not a Unicode scalar value");
            }
            i += 2 + digits;
            break;
          }
          default:
            return fail(i, "invalid escape sequence in literal");
        }
      }
      if (!closed) return fail(open, "unterminated '\"' token");
      tokens.push_back(std::move(token));
    } else {
      size_t end = i;
      while (end < n && !IsSpace(line[end])) ++end;
      std::string_view token = line.substr(i, end - i);
      if (token == ".") break;  // bare statement terminator, not a token
      tokens.emplace_back(token);
      i = end;
    }
  }
  // Anything after the third token must be the statement terminator,
  // optionally followed by a comment to end of line.
  while (i < n && (IsSpace(line[i]) || line[i] == '.')) ++i;
  if (i < n && line[i] == '#') i = n;
  if (tokens.size() != 3 || i != n) {
    return fail(i, "expected '<s> <p> <o> .'");
  }
  *s = std::move(tokens[0]);
  *p = std::move(tokens[1]);
  *o = std::move(tokens[2]);
  return Status::OK();
}

bool IsTypePredicate(std::string_view p) {
  return p == "a" || p == "rdf:type" ||
         p == "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
}

/// Whether `name` survives the <bracketed> form byte for byte.
bool BracketSafe(std::string_view name) {
  for (const char c : name) {
    if (c == '>' || c == '"' || c == '\\' ||
        static_cast<unsigned char>(c) < 0x20) {
      return false;
    }
  }
  return true;
}

void AppendToken(std::string* out, std::string_view name) {
  if (BracketSafe(name)) {
    *out += '<';
    *out += name;
    *out += '>';
    return;
  }
  *out += '"';
  for (const char c : name) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04X",
                        static_cast<unsigned>(c));
          *out += buffer;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

}  // namespace

Result<EntityGraph> ReadNTriples(std::istream& in, NTriplesStats* stats) {
  EntityGraphBuilder builder;
  NTriplesStats local;
  struct PendingEdge {
    std::string s, p, o;
  };
  std::vector<PendingEdge> pending;

  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view view = Trim(line);
    if (view.empty() || view[0] == '#') continue;
    std::string s, p, o;
    size_t error_at = 0;
    Status status = ParseTriple(view, &s, &p, &o, &error_at);
    if (!status.ok()) {
      // 1-based column in the original (untrimmed) line.
      const size_t column =
          static_cast<size_t>(view.data() - line.data()) + error_at + 1;
      return Status::Corruption(StrFormat("line %zu, col %zu: %s",
                                          line_number, column,
                                          status.message().c_str()));
    }
    ++local.triples;
    if (IsTypePredicate(p)) {
      ++local.type_assertions;
      builder.AddTypedEntity(s, o);
    } else {
      // Relationship triples are resolved after all type assertions, since
      // the inferred relationship type needs endpoint types.
      pending.push_back(PendingEdge{std::move(s), std::move(p), std::move(o)});
    }
  }

  for (PendingEdge& edge : pending) {
    const EntityId src = builder.AddEntity(edge.s);
    const EntityId dst = builder.AddEntity(edge.o);
    // Relationship type inferred from primary (first-asserted) types.
    const std::vector<TypeId>& src_types = builder.TypesOf(src);
    const std::vector<TypeId>& dst_types = builder.TypesOf(dst);
    if (src_types.empty() || dst_types.empty()) {
      ++local.skipped_untyped;
      continue;
    }
    const RelTypeId rel =
        builder.AddRelationshipType(edge.p, src_types[0], dst_types[0]);
    EGP_RETURN_IF_ERROR(builder.AddEdge(src, rel, dst));
    ++local.relationships;
  }

  if (stats != nullptr) *stats = local;
  return builder.Build();
}

Result<EntityGraph> ReadNTriplesFile(const std::string& path,
                                     NTriplesStats* stats) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  return ReadNTriples(in, stats);
}

Status WriteNTriples(const EntityGraph& graph, std::ostream& out) {
  std::string buffer;
  buffer.reserve(1 << 16);
  const auto flush = [&out, &buffer]() {
    out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    buffer.clear();
  };
  for (EntityId e = 0; e < graph.num_entities(); ++e) {
    for (const TypeId t : graph.TypesOf(e)) {
      AppendToken(&buffer, graph.EntityName(e));
      buffer += " a ";
      AppendToken(&buffer, graph.TypeName(t));
      buffer += " .\n";
      if (buffer.size() > (1 << 15)) flush();
    }
  }
  for (const EdgeRecord& edge : graph.edges()) {
    AppendToken(&buffer, graph.EntityName(edge.src));
    buffer += ' ';
    AppendToken(&buffer, graph.RelSurfaceName(edge.rel_type));
    buffer += ' ';
    AppendToken(&buffer, graph.EntityName(edge.dst));
    buffer += " .\n";
    if (buffer.size() > (1 << 15)) flush();
  }
  flush();
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Status WriteNTriplesFile(const EntityGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  return WriteNTriples(graph, out);
}

}  // namespace egp
