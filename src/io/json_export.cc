#include "io/json_export.h"

#include <sstream>

#include "common/strings.h"

namespace egp {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string Quoted(std::string_view text) {
  return "\"" + JsonEscape(text) + "\"";
}

std::string Number(double value) {
  // Shortest form that round-trips typical scores; trailing zeros kept
  // minimal for stable golden tests.
  std::string out = StrFormat("%.10g", value);
  return out;
}

}  // namespace

std::string PreviewToJson(const PreparedSchema& prepared,
                          const Preview& preview) {
  const SchemaGraph& schema = prepared.schema();
  std::ostringstream out;
  out << "{\"score\":" << Number(preview.Score(prepared)) << ",\"tables\":[";
  for (size_t t = 0; t < preview.tables.size(); ++t) {
    const PreviewTable& table = preview.tables[t];
    if (t > 0) out << ",";
    out << "{\"key\":" << Quoted(schema.TypeName(table.key))
        << ",\"keyScore\":" << Number(prepared.KeyScore(table.key))
        << ",\"nonkeys\":[";
    for (size_t a = 0; a < table.nonkeys.size(); ++a) {
      const NonKeyCandidate& c = table.nonkeys[a];
      const SchemaEdge& e = schema.Edge(c.schema_edge);
      const TypeId other = c.direction == Direction::kOutgoing ? e.dst : e.src;
      if (a > 0) out << ",";
      out << "{\"name\":" << Quoted(schema.SurfaceName(e))
          << ",\"direction\":" << Quoted(DirectionName(c.direction))
          << ",\"target\":" << Quoted(schema.TypeName(other))
          << ",\"score\":" << Number(c.score) << "}";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

std::string MaterializedPreviewToJson(const EntityGraph& graph,
                                      const MaterializedPreview& preview) {
  std::ostringstream out;
  out << "{\"tables\":[";
  for (size_t t = 0; t < preview.tables.size(); ++t) {
    const MaterializedTable& table = preview.tables[t];
    if (t > 0) out << ",";
    out << "{\"key\":" << Quoted(table.key_name) << ",\"totalTuples\":"
        << table.total_tuples << ",\"columns\":[";
    for (size_t c = 0; c < table.columns.size(); ++c) {
      const MaterializedColumn& column = table.columns[c];
      if (c > 0) out << ",";
      out << "{\"name\":" << Quoted(column.name)
          << ",\"direction\":" << Quoted(DirectionName(column.direction))
          << ",\"target\":" << Quoted(column.target) << "}";
    }
    out << "],\"rows\":[";
    for (size_t r = 0; r < table.rows.size(); ++r) {
      const MaterializedRow& row = table.rows[r];
      if (r > 0) out << ",";
      out << "{\"key\":" << Quoted(graph.EntityName(row.key))
          << ",\"cells\":[";
      for (size_t c = 0; c < row.cells.size(); ++c) {
        if (c > 0) out << ",";
        out << "[";
        for (size_t v = 0; v < row.cells[c].values.size(); ++v) {
          if (v > 0) out << ",";
          out << Quoted(graph.EntityName(row.cells[c].values[v]));
        }
        out << "]";
      }
      out << "]}";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

}  // namespace egp
