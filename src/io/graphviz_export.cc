#include "io/graphviz_export.h"

#include <set>
#include <sstream>

#include "common/strings.h"

namespace egp {
namespace {

std::string DotEscape(std::string_view text, size_t max_length) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
    if (out.size() >= max_length) {
      out += "...";
      break;
    }
  }
  return out;
}

void EmitNodes(const SchemaGraph& schema, const GraphvizOptions& options,
               const std::set<TypeId>& highlighted, std::ostream& out) {
  for (TypeId t = 0; t < schema.num_types(); ++t) {
    std::string label = DotEscape(schema.TypeName(t),
                                  options.max_label_length);
    if (options.show_counts) {
      label += StrFormat("\\n(%llu)",
                         (unsigned long long)schema.TypeEntityCount(t));
    }
    out << "  t" << t << " [label=\"" << label << "\"";
    if (highlighted.count(t) > 0) {
      out << ", style=filled, fillcolor=lightblue, penwidth=2";
    }
    out << "];\n";
  }
}

void EmitEdges(const SchemaGraph& schema, const GraphvizOptions& options,
               const std::set<std::pair<uint32_t, Direction>>& bold,
               std::ostream& out) {
  for (uint32_t index = 0; index < schema.num_edges(); ++index) {
    const SchemaEdge& e = schema.Edge(index);
    std::string label = DotEscape(schema.SurfaceName(e),
                                  options.max_label_length);
    if (options.show_counts) {
      label += StrFormat(" (%llu)", (unsigned long long)e.edge_count);
    }
    out << "  t" << e.src << " -> t" << e.dst << " [label=\"" << label
        << "\"";
    const bool is_bold = bold.count({index, Direction::kOutgoing}) > 0 ||
                         bold.count({index, Direction::kIncoming}) > 0;
    if (is_bold) out << ", penwidth=2.5, color=blue";
    out << "];\n";
  }
}

}  // namespace

std::string SchemaToDot(const SchemaGraph& schema,
                        const GraphvizOptions& options) {
  std::ostringstream out;
  out << "digraph schema {\n  rankdir=LR;\n  node [shape=box];\n";
  EmitNodes(schema, options, {}, out);
  EmitEdges(schema, options, {}, out);
  out << "}\n";
  return out.str();
}

std::string PreviewToDot(const PreparedSchema& prepared,
                         const Preview& preview,
                         const GraphvizOptions& options) {
  const SchemaGraph& schema = prepared.schema();
  std::set<TypeId> keys;
  std::set<std::pair<uint32_t, Direction>> chosen;
  for (const PreviewTable& table : preview.tables) {
    keys.insert(table.key);
    for (const NonKeyCandidate& c : table.nonkeys) {
      chosen.insert({c.schema_edge, c.direction});
    }
  }
  std::ostringstream out;
  out << "digraph preview {\n  rankdir=LR;\n  node [shape=box];\n";
  EmitNodes(schema, options, keys, out);
  EmitEdges(schema, options, chosen, out);
  out << "}\n";
  return out.str();
}

}  // namespace egp
