#include "io/preview_renderer.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace egp {
namespace {

std::string Truncate(std::string text, size_t width) {
  if (text.size() <= width) return text;
  if (width <= 3) return text.substr(0, width);
  return text.substr(0, width - 3) + "...";
}

std::string CellText(const EntityGraph& graph, const MaterializedCell& cell,
                     const RenderOptions& options) {
  if (cell.values.empty()) return "-";
  std::string text;
  const size_t shown = std::min(cell.values.size(),
                                options.max_values_per_cell);
  const bool braces = cell.values.size() > 1;
  if (braces) text += "{";
  for (size_t i = 0; i < shown; ++i) {
    if (i > 0) text += ", ";
    text += graph.EntityName(cell.values[i]);
  }
  if (shown < cell.values.size()) text += ", ...";
  if (braces) text += "}";
  return Truncate(std::move(text), options.max_cell_width);
}

std::string ColumnHeader(const MaterializedColumn& column,
                         const RenderOptions& options) {
  std::string header = column.name;
  if (options.show_direction && column.direction == Direction::kIncoming) {
    header += " <-";
  }
  return header;
}

}  // namespace

std::string RenderTable(const EntityGraph& graph,
                        const MaterializedTable& table,
                        const RenderOptions& options) {
  const size_t num_columns = table.columns.size() + 1;
  std::vector<std::vector<std::string>> grid;

  std::vector<std::string> header(num_columns);
  header[0] = table.key_name;  // key attribute, underlined below
  for (size_t c = 0; c < table.columns.size(); ++c) {
    header[c + 1] = ColumnHeader(table.columns[c], options);
  }
  grid.push_back(header);

  for (const MaterializedRow& row : table.rows) {
    std::vector<std::string> cells(num_columns);
    cells[0] = Truncate(graph.EntityName(row.key), options.max_cell_width);
    for (size_t c = 0; c < row.cells.size(); ++c) {
      cells[c + 1] = CellText(graph, row.cells[c], options);
    }
    grid.push_back(std::move(cells));
  }

  std::ostringstream out;
  if (options.format == RenderOptions::Format::kMarkdown) {
    out << "| **" << grid[0][0] << "** |";
    for (size_t c = 1; c < num_columns; ++c) out << " " << grid[0][c] << " |";
    out << "\n|";
    for (size_t c = 0; c < num_columns; ++c) out << "---|";
    out << "\n";
    for (size_t r = 1; r < grid.size(); ++r) {
      out << "|";
      for (size_t c = 0; c < num_columns; ++c) {
        out << " " << grid[r][c] << " |";
      }
      out << "\n";
    }
    out << "\n";
    return out.str();
  }

  std::vector<size_t> widths(num_columns, 0);
  for (const auto& row : grid) {
    for (size_t c = 0; c < num_columns; ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&](char fill) {
    out << "+";
    for (size_t c = 0; c < num_columns; ++c) {
      out << std::string(widths[c] + 2, fill) << "+";
    }
    out << "\n";
  };
  rule('-');
  // Header with the key attribute underlined on a second line.
  out << "|";
  for (size_t c = 0; c < num_columns; ++c) {
    out << " " << grid[0][c]
        << std::string(widths[c] - grid[0][c].size(), ' ') << " |";
  }
  out << "\n|";
  for (size_t c = 0; c < num_columns; ++c) {
    const std::string underline =
        c == 0 ? std::string(grid[0][0].size(), '~') : "";
    out << " " << underline << std::string(widths[c] - underline.size(), ' ')
        << " |";
  }
  out << "\n";
  rule('=');
  for (size_t r = 1; r < grid.size(); ++r) {
    out << "|";
    for (size_t c = 0; c < num_columns; ++c) {
      out << " " << grid[r][c]
          << std::string(widths[c] - grid[r][c].size(), ' ') << " |";
    }
    out << "\n";
  }
  rule('-');
  if (table.rows.size() < table.total_tuples) {
    out << "(" << table.rows.size() << " of " << table.total_tuples
        << " tuples shown)\n";
  }
  return out.str();
}

std::string RenderPreview(const EntityGraph& graph,
                          const MaterializedPreview& preview,
                          const RenderOptions& options) {
  std::string out;
  for (const MaterializedTable& table : preview.tables) {
    out += RenderTable(graph, table, options);
    out += "\n";
  }
  return out;
}

}  // namespace egp
