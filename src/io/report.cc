#include "io/report.h"

#include <algorithm>
#include <sstream>

#include "common/strings.h"
#include "graph/graph_stats.h"
#include "io/graphviz_export.h"
#include "io/preview_renderer.h"

namespace egp {

Result<std::string> GeneratePreviewReport(const EntityGraph& graph,
                                          const ReportOptions& options) {
  const SchemaGraph schema = SchemaGraph::FromEntityGraph(graph);
  EGP_ASSIGN_OR_RETURN(
      PreparedSchema prepared,
      PreparedSchema::Create(schema, options.measures, &graph,
                             /*pool=*/nullptr, options.frozen));

  std::ostringstream out;
  out << "# " << options.title << "\n\n";

  // --- Statistics ---------------------------------------------------------
  const EntityGraphStats g = ComputeEntityGraphStats(graph);
  const SchemaGraphStats s = ComputeSchemaGraphStats(schema);
  out << "## Dataset statistics\n\n";
  out << "| metric | value |\n|---|---|\n";
  out << "| entities | " << g.num_entities << " |\n";
  out << "| relationships | " << g.num_edges << " |\n";
  out << "| entity types | " << s.num_types << " |\n";
  out << "| relationship types | " << s.num_rel_types << " |\n";
  out << "| multi-typed entities | " << g.multi_typed_entities << " |\n";
  out << StrFormat("| schema diameter / avg path | %u / %.2f |\n",
                   s.diameter, s.average_path_length);
  out << "| schema components | " << s.num_components << " |\n\n";

  // --- Key attribute ranking ----------------------------------------------
  out << "## Most important entity types ("
      << KeyMeasureName(options.measures.key_measure) << ")\n\n";
  out << "| rank | entity type | score | entities |\n|---|---|---|---|\n";
  std::vector<std::pair<double, TypeId>> ranked;
  for (TypeId t = 0; t < prepared.num_types(); ++t) {
    ranked.emplace_back(prepared.KeyScore(t), t);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (size_t i = 0; i < std::min(options.top_keys, ranked.size()); ++i) {
    out << "| " << (i + 1) << " | " << schema.TypeName(ranked[i].second)
        << " | " << StrFormat("%.6g", ranked[i].first) << " | "
        << schema.TypeEntityCount(ranked[i].second) << " |\n";
  }
  out << "\n";

  // --- Preview -------------------------------------------------------------
  PreviewDiscoverer discoverer(std::move(prepared));
  EGP_ASSIGN_OR_RETURN(Preview preview,
                       discoverer.Discover(options.discovery));
  out << "## Preview (k=" << options.discovery.size.k
      << ", n=" << options.discovery.size.n;
  if (options.discovery.distance.mode == DistanceMode::kTight) {
    out << ", tight d=" << options.discovery.distance.d;
  } else if (options.discovery.distance.mode == DistanceMode::kDiverse) {
    out << ", diverse d=" << options.discovery.distance.d;
  }
  out << ", score " << StrFormat("%.6g", preview.Score(discoverer.prepared()))
      << ")\n\n";

  EGP_ASSIGN_OR_RETURN(
      MaterializedPreview materialized,
      MaterializePreview(graph, discoverer.prepared(), preview,
                         options.sampler));
  RenderOptions render;
  render.format = RenderOptions::Format::kMarkdown;
  render.show_direction = true;
  out << RenderPreview(graph, materialized, render);

  // --- Appendix --------------------------------------------------------------
  if (options.include_dot) {
    out << "## Appendix: schema graph (Graphviz)\n\n```dot\n"
        << PreviewToDot(discoverer.prepared(), preview) << "```\n";
  }
  return out.str();
}

}  // namespace egp
