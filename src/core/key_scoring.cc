#include "core/key_scoring.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/parallel.h"

namespace egp {
namespace {

/// Undirected pairwise weights w_ij in CSR form: for each type i, the
/// distinct neighbour types j (sorted) with their aggregated relationship
/// counts. Symmetric; self-loops appear once per row.
struct WeightCsr {
  std::vector<size_t> offsets;  // n + 1
  std::vector<TypeId> cols;
  std::vector<double> weights;
  std::vector<double> row_sums;  // d_i = sum_j w_ij
};

WeightCsr BuildWeightCsr(const SchemaGraph& schema) {
  const size_t n = schema.num_types();
  struct Entry {
    TypeId row;
    TypeId col;
    double weight;
  };
  std::vector<Entry> entries;
  entries.reserve(2 * schema.num_edges());
  for (const SchemaEdge& e : schema.edges()) {
    const double w = static_cast<double>(e.edge_count);
    entries.push_back(Entry{e.src, e.dst, w});
    if (e.src != e.dst) entries.push_back(Entry{e.dst, e.src, w});
  }
  // Stable sort: parallel schema edges between the same pair keep their
  // insertion order, so the aggregation below sums in a fixed order.
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.row != b.row) return a.row < b.row;
                     return a.col < b.col;
                   });

  WeightCsr csr;
  csr.offsets.assign(n + 1, 0);
  csr.row_sums.assign(n, 0.0);
  for (size_t i = 0; i < entries.size();) {
    size_t j = i + 1;
    double w = entries[i].weight;
    while (j < entries.size() && entries[j].row == entries[i].row &&
           entries[j].col == entries[i].col) {
      w += entries[j].weight;
      ++j;
    }
    csr.cols.push_back(entries[i].col);
    csr.weights.push_back(w);
    ++csr.offsets[entries[i].row + 1];
    csr.row_sums[entries[i].row] += w;
    i = j;
  }
  for (size_t i = 0; i < n; ++i) csr.offsets[i + 1] += csr.offsets[i];
  return csr;
}

}  // namespace

std::vector<double> ComputeKeyCoverage(const SchemaGraph& schema) {
  std::vector<double> scores(schema.num_types());
  for (TypeId t = 0; t < schema.num_types(); ++t) {
    scores[t] = static_cast<double>(schema.TypeEntityCount(t));
  }
  return scores;
}

std::vector<double> ComputeKeyRandomWalk(const SchemaGraph& schema,
                                         const RandomWalkOptions& options,
                                         ThreadPool* pool) {
  const size_t n = schema.num_types();
  if (n == 0) return {};
  if (n == 1) return {1.0};

  // The row-stochastic transition matrix of the smoothed walk is
  //   T_ij = (w_ij + s) / r_i,   r_i = d_i + s·n,
  // i.e. sparse weights plus a rank-1 all-ones term. One step is then
  //   (πT)_j = Σ_i w_ij·x_i + s·Σ_i x_i   with  x_i = π_i / r_i,
  // so the smoothing never needs to be materialized: a sparse product
  // plus one scalar. W is symmetric (w_ij = w_ji), which makes the
  // pull form exact: row j of the CSR *is* column j, and each (πT)_j
  // sums its terms in that row's fixed order — deterministic at any
  // parallelism, O(E_schema + n) per iteration.
  const WeightCsr csr = BuildWeightCsr(schema);
  const double s = options.smoothing;
  std::vector<double> inv_row_total(n);
  for (size_t i = 0; i < n; ++i) {
    const double r = csr.row_sums[i] + s * static_cast<double>(n);
    EGP_CHECK(r > 0.0) << "zero transition row";
    inv_row_total[i] = 1.0 / r;
  }

  // Lazy power iteration: π ← ½(πT + π). The lazy walk has the same
  // stationary distribution as T but is aperiodic, so the iteration also
  // converges on (near-)bipartite schema graphs where plain π ← πT
  // oscillates with period 2.
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> x(n, 0.0);
  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Grain: one index is a handful of flops — only spread across the
    // pool when rows number in the thousands.
    constexpr size_t kWalkGrain = 2048;
    ParallelFor(
        pool, 0, n, [&](size_t i) { x[i] = pi[i] * inv_row_total[i]; },
        kWalkGrain);
    // The scalar reductions (smoothing mass, convergence delta) stay
    // serial: they are O(n), and chunked summation would tie the bits to
    // the thread count.
    double smoothing_mass = 0.0;
    for (size_t i = 0; i < n; ++i) smoothing_mass += x[i];
    smoothing_mass *= s;
    ParallelFor(
        pool, 0, n,
        [&](size_t j) {
          double acc = smoothing_mass;
          for (size_t k = csr.offsets[j]; k < csr.offsets[j + 1]; ++k) {
            acc += csr.weights[k] * x[csr.cols[k]];
          }
          next[j] = 0.5 * (acc + pi[j]);
        },
        kWalkGrain);
    double delta = 0.0;
    for (size_t j = 0; j < n; ++j) delta += std::fabs(next[j] - pi[j]);
    pi.swap(next);
    if (delta < options.tolerance) break;
  }

  // Normalize defensively against floating-point drift.
  double total = 0.0;
  for (double p : pi) total += p;
  for (double& p : pi) p /= total;
  return pi;
}

double TransitionProbability(const SchemaGraph& schema, TypeId from,
                             TypeId to) {
  double weight_to = 0.0;
  double weight_total = 0.0;
  for (TypeId other = 0; other < schema.num_types(); ++other) {
    const double w = static_cast<double>(schema.PairWeight(from, other));
    weight_total += w;
    if (other == to) weight_to = w;
  }
  return weight_total == 0.0 ? 0.0 : weight_to / weight_total;
}

}  // namespace egp
