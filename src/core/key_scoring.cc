#include "core/key_scoring.h"

#include <cmath>

#include "common/check.h"

namespace egp {

std::vector<double> ComputeKeyCoverage(const SchemaGraph& schema) {
  std::vector<double> scores(schema.num_types());
  for (TypeId t = 0; t < schema.num_types(); ++t) {
    scores[t] = static_cast<double>(schema.TypeEntityCount(t));
  }
  return scores;
}

std::vector<double> ComputeKeyRandomWalk(const SchemaGraph& schema,
                                         const RandomWalkOptions& options) {
  const size_t n = schema.num_types();
  if (n == 0) return {};
  if (n == 1) return {1.0};

  // Undirected pairwise weights w_ij: total relationship count between the
  // two types in either direction. Self-loops contribute to w_ii.
  std::vector<double> weights(n * n, 0.0);
  for (const SchemaEdge& e : schema.edges()) {
    const double w = static_cast<double>(e.edge_count);
    weights[e.src * n + e.dst] += w;
    if (e.src != e.dst) weights[e.dst * n + e.src] += w;
  }

  // Row-stochastic transition matrix with smoothing between every ordered
  // pair (isolated types become uniform jumpers).
  std::vector<double> transition(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (size_t j = 0; j < n; ++j) {
      transition[i * n + j] = weights[i * n + j] + options.smoothing;
      row_sum += transition[i * n + j];
    }
    EGP_CHECK(row_sum > 0.0) << "zero transition row";
    for (size_t j = 0; j < n; ++j) transition[i * n + j] /= row_sum;
  }

  // Lazy power iteration: π ← ½(πM + π). The lazy walk has the same
  // stationary distribution as M but is aperiodic, so the iteration also
  // converges on (near-)bipartite schema graphs where plain π ← πM
  // oscillates with period 2.
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double p = pi[i];
      if (p == 0.0) continue;
      const double* row = &transition[i * n];
      for (size_t j = 0; j < n; ++j) next[j] += p * row[j];
    }
    double delta = 0.0;
    for (size_t j = 0; j < n; ++j) {
      next[j] = 0.5 * (next[j] + pi[j]);
      delta += std::fabs(next[j] - pi[j]);
    }
    pi.swap(next);
    if (delta < options.tolerance) break;
  }

  // Normalize defensively against floating-point drift.
  double total = 0.0;
  for (double p : pi) total += p;
  for (double& p : pi) p /= total;
  return pi;
}

double TransitionProbability(const SchemaGraph& schema, TypeId from,
                             TypeId to) {
  double weight_to = 0.0;
  double weight_total = 0.0;
  for (TypeId other = 0; other < schema.num_types(); ++other) {
    const double w = static_cast<double>(schema.PairWeight(from, other));
    weight_total += w;
    if (other == to) weight_to = w;
  }
  return weight_total == 0.0 ? 0.0 : weight_to / weight_total;
}

}  // namespace egp
