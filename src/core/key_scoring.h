// Key-attribute scoring measures (§3.2).
//
// S_cov(τ): number of entities of type τ.
// S_walk(τ): stationary probability of τ under a random walk over the
//   undirected type graph weighted by relationship counts, smoothed with a
//   small probability (default 1e-5) between every ordered pair of types so
//   the walk converges on disconnected schema graphs (§6 setup).
#ifndef EGP_CORE_KEY_SCORING_H_
#define EGP_CORE_KEY_SCORING_H_

#include <vector>

#include "graph/schema_graph.h"

namespace egp {

class ThreadPool;

/// Coverage scores for every type: S_cov(τ_i) = entity count of τ_i.
std::vector<double> ComputeKeyCoverage(const SchemaGraph& schema);

struct RandomWalkOptions {
  /// Smoothing probability mass added between every ordered pair of types
  /// (including self), as in the paper's experimental setup.
  double smoothing = 1e-5;
  /// Power-iteration stop conditions.
  int max_iterations = 500;
  double tolerance = 1e-12;
};

/// Stationary distribution π of the smoothed random walk; sums to 1.
///
/// Sparse implementation: the weight graph is held as a CSR over the
/// schema's type adjacency and the uniform smoothing term is folded in
/// analytically as a rank-1 update, so one lazy power-iteration step is
/// O(E_schema + n) time and the whole computation O(E_schema + n) memory
/// (never an n×n matrix). Each π_j is accumulated in a fixed per-row
/// order, so the result is bit-identical at any `pool` parallelism
/// (including none).
std::vector<double> ComputeKeyRandomWalk(const SchemaGraph& schema,
                                         const RandomWalkOptions& options = {},
                                         ThreadPool* pool = nullptr);

/// The transition probability M_ij from the paper's running example
/// (unsmoothed): w_ij / Σ_k w_ik, or 0 if τ_i has no incident weight.
double TransitionProbability(const SchemaGraph& schema, TypeId from, TypeId to);

}  // namespace egp

#endif  // EGP_CORE_KEY_SCORING_H_
