#include "core/beam_search.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "core/compose.h"

namespace egp {
namespace {

struct Partial {
  std::vector<TypeId> keys;  // strictly increasing
  double score = 0.0;        // optimistic ComposePreviewScore
};

}  // namespace

namespace {

Result<Preview> BeamSearchAttempt(const PreparedSchema& prepared,
                                  const SizeConstraint& size,
                                  const DistanceConstraint& distance,
                                  const BeamSearchOptions& options,
                                  DiscoveryStats* stats) {
  const uint32_t k = size.k;
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (size.n < k) {
    return Status::InvalidArgument(
        StrFormat("n=%u < k=%u: every table needs one non-key attribute",
                  size.n, k));
  }
  if (options.beam_width == 0) {
    return Status::InvalidArgument("beam_width must be positive");
  }

  std::vector<TypeId> eligible;
  for (TypeId t = 0; t < prepared.num_types(); ++t) {
    if (prepared.Eligible(t)) eligible.push_back(t);
  }
  if (eligible.size() < k) {
    return Status::NotFound(StrFormat(
        "only %zu eligible key types, need k=%u", eligible.size(), k));
  }

  DiscoveryStats local_stats;
  const SchemaDistanceMatrix& dist = prepared.distances();

  // Level 1: all singletons (sorted by score, trimmed to the beam).
  std::vector<Partial> beam;
  for (TypeId t : eligible) {
    Partial partial;
    partial.keys = {t};
    partial.score = ComposePreviewScore(prepared, partial.keys, size.n);
    ++local_stats.subsets_enumerated;
    beam.push_back(std::move(partial));
  }
  auto trim = [&options](std::vector<Partial>* level) {
    std::sort(level->begin(), level->end(),
              [](const Partial& a, const Partial& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.keys < b.keys;  // deterministic tie-break
              });
    if (level->size() > options.beam_width) {
      level->resize(options.beam_width);
    }
  };
  // Level 1 is kept untrimmed: under sparse constraints (e.g. diverse
  // with large d) the feasible sets often avoid the highest-scoring
  // types, and trimming singletons would lose feasibility entirely. The
  // beam narrows from level 2 on.
  std::sort(beam.begin(), beam.end(), [](const Partial& a, const Partial& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.keys < b.keys;
  });

  std::set<std::vector<TypeId>> seen;
  for (uint32_t level = 2; level <= k; ++level) {
    std::vector<Partial> next;
    seen.clear();
    for (const Partial& partial : beam) {
      // Extend with every compatible type; canonical (sorted) key sets
      // deduplicate extensions reached from different beam entries.
      for (TypeId t : eligible) {
        if (std::binary_search(partial.keys.begin(), partial.keys.end(), t)) {
          continue;
        }
        bool satisfies = true;
        for (TypeId existing : partial.keys) {
          if (!distance.SatisfiedBy(dist.Distance(existing, t))) {
            satisfies = false;
            break;
          }
        }
        if (!satisfies) continue;
        Partial extended;
        extended.keys = partial.keys;
        extended.keys.insert(
            std::lower_bound(extended.keys.begin(), extended.keys.end(), t),
            t);
        if (!seen.insert(extended.keys).second) continue;
        extended.score =
            ComposePreviewScore(prepared, extended.keys, size.n);
        ++local_stats.subsets_enumerated;
        next.push_back(std::move(extended));
      }
    }
    if (next.empty()) {
      if (stats != nullptr) *stats = local_stats;
      return Status::NotFound(
          "beam search found no k-subset satisfying the constraint");
    }
    trim(&next);
    beam = std::move(next);
  }

  local_stats.subsets_scored = local_stats.subsets_enumerated;
  if (stats != nullptr) *stats = local_stats;
  return ComposePreview(prepared, beam.front().keys, size.n);
}

}  // namespace

Result<Preview> BeamSearchDiscover(const PreparedSchema& prepared,
                                   const SizeConstraint& size,
                                   const DistanceConstraint& distance,
                                   const BeamSearchOptions& options,
                                   DiscoveryStats* stats) {
  BeamSearchOptions attempt = options;
  DiscoveryStats accumulated;
  for (;;) {
    DiscoveryStats local;
    auto preview = BeamSearchAttempt(prepared, size, distance, attempt,
                                     &local);
    accumulated.subsets_enumerated += local.subsets_enumerated;
    accumulated.subsets_scored += local.subsets_scored;
    const bool dead_end =
        !preview.ok() && preview.status().code() == StatusCode::kNotFound &&
        local.subsets_enumerated > 0;
    if (!dead_end || attempt.beam_width >= options.max_beam_width) {
      if (stats != nullptr) *stats = accumulated;
      return preview;
    }
    // Widen and retry: rare feasible sets under sparse constraints tend
    // to avoid the highest-scoring types the narrow beam keeps.
    attempt.beam_width = std::min(options.max_beam_width,
                                  attempt.beam_width * 4);
  }
}

}  // namespace egp
