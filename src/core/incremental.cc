#include "core/incremental.h"

#include <algorithm>

#include "common/strings.h"

namespace egp {

IncrementalSchemaStats::IncrementalSchemaStats(const SchemaGraph& schema)
    : schema_(&schema) {
  type_counts_.resize(schema.num_types());
  for (TypeId t = 0; t < schema.num_types(); ++t) {
    type_counts_[t] = schema.TypeEntityCount(t);
  }
  edge_counts_.resize(schema.num_edges());
  for (uint32_t e = 0; e < schema.num_edges(); ++e) {
    edge_counts_[e] = schema.Edge(e).edge_count;
  }
  dirty_.assign(schema.num_types(), false);
}

Status IncrementalSchemaStats::Apply(const GraphUpdate& update) {
  switch (update.kind) {
    case GraphUpdate::Kind::kAddEntity:
    case GraphUpdate::Kind::kRemoveEntity: {
      if (update.type >= type_counts_.size()) {
        return Status::InvalidArgument("unknown type in update");
      }
      if (update.kind == GraphUpdate::Kind::kRemoveEntity) {
        if (type_counts_[update.type] == 0) {
          return Status::FailedPrecondition(StrFormat(
              "type '%s' has no entities to remove",
              schema_->TypeName(update.type).c_str()));
        }
        --type_counts_[update.type];
      } else {
        ++type_counts_[update.type];
      }
      dirty_[update.type] = true;
      break;
    }
    case GraphUpdate::Kind::kAddEdge:
    case GraphUpdate::Kind::kRemoveEdge: {
      if (update.schema_edge >= edge_counts_.size()) {
        return Status::InvalidArgument("unknown schema edge in update");
      }
      if (update.kind == GraphUpdate::Kind::kRemoveEdge) {
        if (edge_counts_[update.schema_edge] == 0) {
          return Status::FailedPrecondition(
              "relationship type has no edges to remove");
        }
        --edge_counts_[update.schema_edge];
      } else {
        ++edge_counts_[update.schema_edge];
      }
      const SchemaEdge& edge = schema_->Edge(update.schema_edge);
      dirty_[edge.src] = true;
      dirty_[edge.dst] = true;
      break;
    }
  }
  ++total_updates_;
  return Status::OK();
}

Status IncrementalSchemaStats::ApplyAll(
    const std::vector<GraphUpdate>& updates) {
  for (const GraphUpdate& update : updates) {
    EGP_RETURN_IF_ERROR(Apply(update));
  }
  return Status::OK();
}

uint64_t IncrementalSchemaStats::TypeEntityCount(TypeId type) const {
  EGP_CHECK(type < type_counts_.size()) << "bad type id";
  return type_counts_[type];
}

uint64_t IncrementalSchemaStats::EdgeCount(uint32_t schema_edge) const {
  EGP_CHECK(schema_edge < edge_counts_.size()) << "bad schema edge";
  return edge_counts_[schema_edge];
}

std::vector<TypeId> IncrementalSchemaStats::DirtyTypes() const {
  std::vector<TypeId> dirty;
  for (TypeId t = 0; t < dirty_.size(); ++t) {
    if (dirty_[t]) dirty.push_back(t);
  }
  return dirty;
}

bool IncrementalSchemaStats::IsDirty(TypeId type) const {
  EGP_CHECK(type < dirty_.size()) << "bad type id";
  return dirty_[type];
}

void IncrementalSchemaStats::ClearDirty() {
  std::fill(dirty_.begin(), dirty_.end(), false);
}

SchemaGraph IncrementalSchemaStats::ToSchemaGraph() const {
  SchemaGraph out;
  for (TypeId t = 0; t < schema_->num_types(); ++t) {
    out.AddType(schema_->TypeName(t), type_counts_[t]);
  }
  for (uint32_t e = 0; e < schema_->num_edges(); ++e) {
    const SchemaEdge& edge = schema_->Edge(e);
    out.AddEdge(schema_->SurfaceName(edge), edge.src, edge.dst,
                edge_counts_[e]);
  }
  return out;
}

}  // namespace egp
