// Non-key attribute scoring measures (§3.3).
//
// Sτ_cov(γ): number of data edges of relationship type γ. Symmetric: the
//   same value regardless of which endpoint type is the table key.
// Sτ_ent(γ): entropy (base-10) of the distribution of γ-value sets over
//   tuples with non-empty values, grouping multi-valued cells by set
//   equality. Asymmetric: depends on which endpoint is the key.
#ifndef EGP_CORE_NONKEY_SCORING_H_
#define EGP_CORE_NONKEY_SCORING_H_

#include <vector>

#include "common/result.h"
#include "graph/entity_graph.h"
#include "graph/frozen_graph.h"
#include "graph/schema_graph.h"

namespace egp {

class ThreadPool;

/// Scores for every schema edge, per direction of use. outgoing[i] is the
/// score of schema edge i when the table key is its source type (γ(τ, τ'));
/// incoming[i] when the key is its destination type (γ(τ', τ)).
struct NonKeyScores {
  std::vector<double> outgoing;
  std::vector<double> incoming;
};

/// Coverage scores: outgoing == incoming == data-edge count.
NonKeyScores ComputeNonKeyCoverage(const SchemaGraph& schema);

/// Entropy scores. Requires `schema` to have been derived from `graph`
/// (schema edges must map to relationship types); fails otherwise.
///
/// Freezes the graph to CSR once and reads every (relationship,
/// direction) pair's value sets straight out of the adjacency spans —
/// both orientations come from the forward and reverse CSR index, so no
/// per-direction edge-list copy or global edge sort is ever made. The
/// independent (relationship, direction) jobs run on `pool` when one is
/// given, with bit-identical scores at any parallelism. When `frozen`
/// (the prebuilt CSR of `graph`, e.g. loaded from an .egps snapshot) is
/// given, the freeze is skipped entirely.
Result<NonKeyScores> ComputeNonKeyEntropy(const EntityGraph& graph,
                                          const SchemaGraph& schema,
                                          ThreadPool* pool = nullptr,
                                          const FrozenGraph* frozen = nullptr);

/// Entropy of a single relationship type from the perspective of one
/// endpoint (exposed for tests of the paper's worked example). Reference
/// implementation: one NeighborSet allocation per key entity.
double RelationshipEntropy(const EntityGraph& graph, RelTypeId rel_type,
                           Direction direction);

/// The CSR fast path behind ComputeNonKeyEntropy, for one relationship
/// type and direction. Same result as RelationshipEntropy.
double RelationshipEntropyCsr(const FrozenGraph& frozen,
                              const EntityGraph& graph, RelTypeId rel_type,
                              Direction direction);

}  // namespace egp

#endif  // EGP_CORE_NONKEY_SCORING_H_
