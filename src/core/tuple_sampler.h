// Tuple sampling: materializes a few display rows per preview table.
//
// The paper shows "a few randomly sampled tuples in each preview table"
// (§1/§2) and leaves representative-tuple selection to future work; we
// provide the random strategy plus a frequency-weighted extension that
// prefers entities with more non-empty attribute cells.
#ifndef EGP_CORE_TUPLE_SAMPLER_H_
#define EGP_CORE_TUPLE_SAMPLER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/preview.h"
#include "graph/entity_graph.h"

namespace egp {

/// One rendered cell: the set of neighbour entities (possibly empty).
struct MaterializedCell {
  std::vector<EntityId> values;
};

struct MaterializedRow {
  EntityId key;
  std::vector<MaterializedCell> cells;  // parallel to columns
};

struct MaterializedColumn {
  std::string name;        // relationship surface name
  std::string target;      // other endpoint type name(s), comma-joined
  Direction direction;
  /// Usually one relationship type; several when multi-way merging folds
  /// same-surface attributes into one column (Appendix B: "presenting
  /// values for all participating entity types").
  std::vector<RelTypeId> rel_types;
};

struct MaterializedTable {
  TypeId key_type;
  std::string key_name;
  std::vector<MaterializedColumn> columns;
  std::vector<MaterializedRow> rows;
  uint64_t total_tuples = 0;  // |T.τ|, before sampling
};

struct MaterializedPreview {
  std::vector<MaterializedTable> tables;
};

enum class SamplingStrategy : uint8_t {
  kRandom = 0,           // the paper's approach
  kFrequencyWeighted,    // prefer rows with more non-empty cells (extension)
};

struct TupleSamplerOptions {
  size_t rows_per_table = 4;
  uint64_t seed = 42;
  SamplingStrategy strategy = SamplingStrategy::kRandom;
  /// Folds a table's non-key attributes that share surface name and
  /// direction into one multi-way column (e.g. the paper's "Performances
  /// (FILM ACTOR, FILM CHARACTER)"); cells union the value sets.
  bool merge_multiway_columns = false;
};

/// Requires the preview's PreparedSchema to be derived from `graph` so
/// schema edges map back to relationship types.
Result<MaterializedPreview> MaterializePreview(
    const EntityGraph& graph, const PreparedSchema& prepared,
    const Preview& preview, const TupleSamplerOptions& options = {});

}  // namespace egp

#endif  // EGP_CORE_TUPLE_SAMPLER_H_
