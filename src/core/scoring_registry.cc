#include "core/scoring_registry.h"

#include <utility>

namespace egp {
namespace {

template <typename Map>
std::string JoinNames(const Map& map) {
  std::string names;
  for (const auto& [name, fn] : map) {
    if (!names.empty()) names += ", ";
    names += name;
  }
  return names;
}

}  // namespace

ScoringRegistry::ScoringRegistry() {
  key_measures_["coverage"] = [](const ScoringContext& context) {
    return Result<std::vector<double>>(ComputeKeyCoverage(context.schema));
  };
  key_measures_["randomwalk"] = [](const ScoringContext& context) {
    return Result<std::vector<double>>(
        ComputeKeyRandomWalk(context.schema, context.walk, context.pool));
  };
  nonkey_measures_["coverage"] = [](const ScoringContext& context) {
    return Result<NonKeyScores>(ComputeNonKeyCoverage(context.schema));
  };
  nonkey_measures_["entropy"] = [](const ScoringContext& context) {
    if (context.graph == nullptr) {
      return Result<NonKeyScores>(Status::InvalidArgument(
          "the 'entropy' non-key measure requires the entity graph, but "
          "only a schema graph is available"));
    }
    return ComputeNonKeyEntropy(*context.graph, context.schema, context.pool,
                                context.frozen);
  };
}

ScoringRegistry& ScoringRegistry::Global() {
  static ScoringRegistry* registry = new ScoringRegistry();
  return *registry;
}

Status ScoringRegistry::RegisterKeyMeasure(const std::string& name,
                                           KeyScorerFn scorer) {
  if (name.empty() || !scorer) {
    return Status::InvalidArgument(
        "key measure registration needs a name and a scorer");
  }
  MutexLock lock(&mu_);
  if (!key_measures_.emplace(name, std::move(scorer)).second) {
    return Status::AlreadyExists("key measure '" + name +
                                 "' is already registered");
  }
  return Status::OK();
}

Status ScoringRegistry::RegisterNonKeyMeasure(const std::string& name,
                                              NonKeyScorerFn scorer) {
  if (name.empty() || !scorer) {
    return Status::InvalidArgument(
        "non-key measure registration needs a name and a scorer");
  }
  MutexLock lock(&mu_);
  if (!nonkey_measures_.emplace(name, std::move(scorer)).second) {
    return Status::AlreadyExists("non-key measure '" + name +
                                 "' is already registered");
  }
  return Status::OK();
}

Result<KeyScorerFn> ScoringRegistry::FindKeyMeasure(
    const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = key_measures_.find(name);
  if (it == key_measures_.end()) {
    return Status::NotFound("unknown key measure '" + name +
                            "' (registered: " + JoinNames(key_measures_) +
                            ")");
  }
  return it->second;
}

Result<NonKeyScorerFn> ScoringRegistry::FindNonKeyMeasure(
    const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = nonkey_measures_.find(name);
  if (it == nonkey_measures_.end()) {
    return Status::NotFound("unknown non-key measure '" + name +
                            "' (registered: " + JoinNames(nonkey_measures_) +
                            ")");
  }
  return it->second;
}

bool ScoringRegistry::HasKeyMeasure(const std::string& name) const {
  MutexLock lock(&mu_);
  return key_measures_.count(name) > 0;
}

bool ScoringRegistry::HasNonKeyMeasure(const std::string& name) const {
  MutexLock lock(&mu_);
  return nonkey_measures_.count(name) > 0;
}

std::vector<std::string> ScoringRegistry::KeyMeasureNames() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  for (const auto& [name, fn] : key_measures_) names.push_back(name);
  return names;
}

std::vector<std::string> ScoringRegistry::NonKeyMeasureNames() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  for (const auto& [name, fn] : nonkey_measures_) names.push_back(name);
  return names;
}

}  // namespace egp
