#include "core/advisor.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace egp {

ConstraintSuggestion SuggestConstraints(const PreparedSchema& prepared,
                                        const DisplayBudget& budget) {
  ConstraintSuggestion suggestion;

  size_t eligible = 0;
  for (TypeId t = 0; t < prepared.num_types(); ++t) {
    if (prepared.Eligible(t)) ++eligible;
  }

  // Vertical budget: how many table blocks fit.
  const uint32_t table_blocks =
      std::max<uint32_t>(1, budget.height_rows /
                                std::max<uint32_t>(1, budget.rows_per_table));
  uint32_t k = std::clamp<uint32_t>(table_blocks, 1,
                                    static_cast<uint32_t>(
                                        std::max<size_t>(eligible, 1)));
  // Previews with a single table rarely convey a graph's structure; use
  // at least two when the schema allows it.
  if (k < 2 && eligible >= 2) k = 2;

  // Horizontal budget: columns per table, minus the key column.
  const uint32_t columns_per_table = std::max<uint32_t>(
      1, budget.width_chars / std::max<uint32_t>(1, budget.column_width) - 1);
  // Cap by what the schema can actually supply.
  size_t total_candidates = 0;
  for (TypeId t = 0; t < prepared.num_types(); ++t) {
    total_candidates += prepared.Candidates(t).size();
  }
  uint32_t n = std::min<uint32_t>(k * columns_per_table,
                                  static_cast<uint32_t>(total_candidates));
  n = std::max(n, k);  // every table needs one attribute

  // Distance suggestions from the schema's metric structure.
  const SchemaDistanceMatrix& distances = prepared.distances();
  const double avg_path = distances.AveragePathLength();
  const uint32_t diameter = std::max<uint32_t>(distances.Diameter(), 1);
  uint32_t tight_d = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::lround(avg_path / 2.0)));
  // A tight constraint at or beyond the diameter is vacuous (§6.2).
  tight_d = std::min(tight_d, diameter > 1 ? diameter - 1 : 1);
  uint32_t diverse_d = std::min<uint32_t>(
      diameter, static_cast<uint32_t>(std::lround(avg_path)) + 1);
  diverse_d = std::max<uint32_t>(diverse_d, 2);

  suggestion.size = SizeConstraint{k, n};
  suggestion.tight_d = tight_d;
  suggestion.diverse_d = diverse_d;
  suggestion.rationale = StrFormat(
      "display %ux%u fits %u table blocks of %u rows and %u columns of %u "
      "chars; schema: %zu eligible key types, diameter %u, average path "
      "%.2f -> k=%u, n=%u, tight d=%u (vacuous at >= diameter), diverse "
      "d=%u",
      budget.width_chars, budget.height_rows, table_blocks,
      budget.rows_per_table, columns_per_table + 1, budget.column_width,
      eligible, diameter, avg_path, k, n, tight_d, diverse_d);
  return suggestion;
}

}  // namespace egp
