#include "core/brute_force.h"

#include <algorithm>

#include "common/strings.h"

namespace egp {

Result<Preview> BruteForceDiscover(const PreparedSchema& prepared,
                                   const SizeConstraint& size,
                                   const DistanceConstraint& distance,
                                   const BruteForceOptions& options,
                                   DiscoveryStats* stats) {
  const uint32_t k = size.k;
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (size.n < k) {
    return Status::InvalidArgument(
        StrFormat("n=%u < k=%u: every table needs one non-key attribute",
                  size.n, k));
  }

  // Only types with at least one candidate non-key attribute can key a
  // table (Def. 1).
  std::vector<TypeId> eligible;
  for (TypeId t = 0; t < prepared.num_types(); ++t) {
    if (prepared.Eligible(t)) eligible.push_back(t);
  }
  if (eligible.size() < k) {
    return Status::NotFound(StrFormat(
        "only %zu eligible key types, need k=%u", eligible.size(), k));
  }

  DiscoveryStats local_stats;
  const SchemaDistanceMatrix& dist = prepared.distances();

  double best_score = -1.0;
  std::vector<TypeId> best_keys;

  // Iterative k-combination enumeration over `eligible` (faithful to
  // Alg. 1: each complete subset is distance-checked pairwise, no pruning
  // during enumeration).
  const size_t pool = eligible.size();
  std::vector<size_t> index(k);
  for (uint32_t i = 0; i < k; ++i) index[i] = i;
  std::vector<TypeId> keys(k);
  bool done = false;
  while (!done) {
    ++local_stats.subsets_enumerated;
    for (uint32_t i = 0; i < k; ++i) keys[i] = eligible[index[i]];

    bool satisfies = true;
    for (uint32_t i = 0; i < k && satisfies; ++i) {
      for (uint32_t j = i + 1; j < k; ++j) {
        if (!distance.SatisfiedBy(dist.Distance(keys[i], keys[j]))) {
          satisfies = false;
          break;
        }
      }
    }
    if (satisfies) {
      ++local_stats.subsets_scored;
      const double score = ComposePreviewScore(prepared, keys, size.n);
      if (score > best_score) {
        best_score = score;
        best_keys = keys;
      }
    }

    if (options.max_subsets != 0 &&
        local_stats.subsets_enumerated >= options.max_subsets) {
      local_stats.truncated = true;
      break;
    }

    // Advance to the next combination.
    int pos = static_cast<int>(k) - 1;
    while (pos >= 0 && index[pos] == pool - k + pos) --pos;
    if (pos < 0) {
      done = true;
    } else {
      ++index[pos];
      for (uint32_t i = pos + 1; i < k; ++i) index[i] = index[i - 1] + 1;
    }
  }

  if (stats != nullptr) *stats = local_stats;
  if (best_keys.empty()) {
    return Status::NotFound("no preview satisfies the distance constraint");
  }
  return ComposePreview(prepared, best_keys, size.n);
}

}  // namespace egp
