// Preview and PreviewTable (Def. 1) plus scoring (Eq. 1–2) and validation.
#ifndef EGP_CORE_PREVIEW_H_
#define EGP_CORE_PREVIEW_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/candidates.h"
#include "core/constraints.h"

namespace egp {

/// One preview table: a key entity type plus chosen non-key attributes
/// (each a schema edge used in a direction). Corresponds to a star-shaped
/// subgraph of the schema graph centred on `key`.
struct PreviewTable {
  TypeId key = kInvalidId;
  std::vector<NonKeyCandidate> nonkeys;

  /// S(T) = S(τ) · Σ Sτ(γ) (Eq. 2).
  double Score(const PreparedSchema& prepared) const;
};

/// A preview: a set of preview tables with pairwise-distinct keys.
struct Preview {
  std::vector<PreviewTable> tables;

  /// S(P) = Σ S(T) (Eq. 1).
  double Score(const PreparedSchema& prepared) const;

  size_t TotalNonKeys() const;
  /// Sorted list of key types (for comparisons in tests).
  std::vector<TypeId> Keys() const;
};

/// Checks Def. 1/2 structural validity: k tables with distinct keys, every
/// table has ≥1 non-key attribute drawn from edges incident on its key in
/// the correct direction, ≤ n non-keys in total, and the pairwise distance
/// constraint holds.
Status ValidatePreview(const Preview& preview, const PreparedSchema& prepared,
                       const SizeConstraint& size,
                       const DistanceConstraint& distance);

/// Human-readable one-line-per-table description (type / attribute names).
std::string DescribePreview(const Preview& preview,
                            const PreparedSchema& prepared);

}  // namespace egp

#endif  // EGP_CORE_PREVIEW_H_
