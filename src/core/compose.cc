#include "core/compose.h"

#include <algorithm>
#include <queue>

#include "common/strings.h"

namespace egp {
namespace {

/// Merge cursor over one type's sorted candidate list, starting after the
/// mandatory top-1 attribute.
struct Cursor {
  size_t table_index;  // position within `keys`
  TypeId type;
  size_t next;         // next candidate index in Candidates(type).sorted
  double weighted;     // S(type) * candidate score — the marginal gain

  bool operator<(const Cursor& other) const {
    // std::priority_queue is a max-heap on operator<; tie-break on
    // (type, next) for determinism.
    if (weighted != other.weighted) return weighted < other.weighted;
    if (type != other.type) return type > other.type;
    return next > other.next;
  }
};

}  // namespace

Result<Preview> ComposePreview(const PreparedSchema& prepared,
                               const std::vector<TypeId>& keys, uint32_t n) {
  const uint32_t k = static_cast<uint32_t>(keys.size());
  if (k == 0) return Status::InvalidArgument("ComposePreview: no key types");
  if (n < k) {
    return Status::InvalidArgument(StrFormat(
        "ComposePreview: n=%u < k=%u (each table needs one attribute)", n, k));
  }

  Preview preview;
  preview.tables.resize(k);
  std::priority_queue<Cursor> heap;
  for (uint32_t i = 0; i < k; ++i) {
    const TypeId t = keys[i];
    const TypeCandidates& cands = prepared.Candidates(t);
    if (cands.sorted.empty()) {
      return Status::FailedPrecondition(
          StrFormat("type '%s' has no candidate non-key attributes",
                    prepared.schema().TypeName(t).c_str()));
    }
    preview.tables[i].key = t;
    preview.tables[i].nonkeys.push_back(cands.sorted[0]);  // Theorem 3 top-1
    if (cands.sorted.size() > 1) {
      heap.push(Cursor{i, t, 1,
                       prepared.KeyScore(t) * cands.sorted[1].score});
    }
  }

  // Fill the remaining n−k slots with the globally best weighted candidates.
  for (uint32_t slot = 0; slot < n - k && !heap.empty(); ++slot) {
    Cursor top = heap.top();
    heap.pop();
    const TypeCandidates& cands = prepared.Candidates(top.type);
    preview.tables[top.table_index].nonkeys.push_back(cands.sorted[top.next]);
    const size_t next = top.next + 1;
    if (next < cands.sorted.size()) {
      heap.push(Cursor{top.table_index, top.type, next,
                       prepared.KeyScore(top.type) * cands.sorted[next].score});
    }
  }
  return preview;
}

double ComposePreviewScore(const PreparedSchema& prepared,
                           const std::vector<TypeId>& keys, uint32_t n) {
  const uint32_t k = static_cast<uint32_t>(keys.size());
  if (k == 0 || n < k) return -1.0;

  double score = 0.0;
  std::priority_queue<Cursor> heap;
  for (uint32_t i = 0; i < k; ++i) {
    const TypeId t = keys[i];
    const TypeCandidates& cands = prepared.Candidates(t);
    if (cands.sorted.empty()) return -1.0;
    score += prepared.KeyScore(t) * cands.sorted[0].score;
    if (cands.sorted.size() > 1) {
      heap.push(Cursor{i, t, 1,
                       prepared.KeyScore(t) * cands.sorted[1].score});
    }
  }
  for (uint32_t slot = 0; slot < n - k && !heap.empty(); ++slot) {
    Cursor top = heap.top();
    heap.pop();
    score += top.weighted;
    const TypeCandidates& cands = prepared.Candidates(top.type);
    const size_t next = top.next + 1;
    if (next < cands.sorted.size()) {
      heap.push(Cursor{top.table_index, top.type, next,
                       prepared.KeyScore(top.type) * cands.sorted[next].score});
    }
  }
  return score;
}

}  // namespace egp
