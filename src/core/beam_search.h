// Approximate preview discovery by beam search (extension).
//
// §5.3 notes that "any more efficient or even approximate algorithm ...
// can be plugged into" the two-step tight/diverse framework. This module
// supplies such an algorithm: a beam over partial key sets, scoring each
// partial with the optimistic ComposePreviewScore (the attributes a
// partial set would get with the full budget n — an admissible ranking
// heuristic because adding tables can only redistribute budget). Runs in
// O(k · beam · K) score evaluations regardless of constraint shape, so it
// stays fast exactly where Apriori degenerates (diverse d=2, tight d near
// the diameter); the trade is optimality, quantified by
// bench_ablation_beam.
#ifndef EGP_CORE_BEAM_SEARCH_H_
#define EGP_CORE_BEAM_SEARCH_H_

#include "common/result.h"
#include "core/brute_force.h"  // DiscoveryStats
#include "core/constraints.h"
#include "core/preview.h"

namespace egp {

struct BeamSearchOptions {
  uint32_t beam_width = 8;
  /// When the beam dead-ends under a sparse constraint (no extension of
  /// any kept partial is feasible) the search retries with a 4× wider
  /// beam, up to this cap, before reporting NotFound. Set equal to
  /// beam_width to disable widening.
  uint32_t max_beam_width = 1024;
};

Result<Preview> BeamSearchDiscover(const PreparedSchema& prepared,
                                   const SizeConstraint& size,
                                   const DistanceConstraint& distance,
                                   const BeamSearchOptions& options = {},
                                   DiscoveryStats* stats = nullptr);

}  // namespace egp

#endif  // EGP_CORE_BEAM_SEARCH_H_
