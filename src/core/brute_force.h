// Brute-force optimal preview discovery (Alg. 1).
//
// Enumerates every k-subset of eligible key types, filters by the pairwise
// distance constraint, and scores each subset's best preview (Theorem 3).
// Exponential in k; kept as the correctness oracle and the baseline of the
// Fig. 8/9 performance experiments.
#ifndef EGP_CORE_BRUTE_FORCE_H_
#define EGP_CORE_BRUTE_FORCE_H_

#include <cstdint>

#include "common/result.h"
#include "core/compose.h"
#include "core/constraints.h"
#include "core/preview.h"

namespace egp {

/// Instrumentation shared by the discovery algorithms.
struct DiscoveryStats {
  uint64_t subsets_enumerated = 0;  // complete k-subsets examined
  uint64_t subsets_scored = 0;      // subsets passing the distance filter
  bool truncated = false;           // stopped early by max_subsets
};

struct BruteForceOptions {
  /// Stop after enumerating this many subsets (0 = unlimited). When hit,
  /// the best preview so far is returned and stats->truncated is set; used
  /// by the benchmark harness to extrapolate infeasible configurations.
  uint64_t max_subsets = 0;
};

Result<Preview> BruteForceDiscover(const PreparedSchema& prepared,
                                   const SizeConstraint& size,
                                   const DistanceConstraint& distance,
                                   const BruteForceOptions& options = {},
                                   DiscoveryStats* stats = nullptr);

}  // namespace egp

#endif  // EGP_CORE_BRUTE_FORCE_H_
