// String-keyed registry of scoring measures.
//
// The paper fixes two key measures (§3.2) and two non-key measures (§3.3),
// but the serving layer treats measures as pluggable: callers select them
// by name ("coverage", "randomwalk", "entropy") and extensions register
// new ones without touching any options struct. The registry is the single
// source of truth for what a measure name means; the legacy KeyMeasure /
// NonKeyMeasure enums map onto it for the benches and internal callers.
#ifndef EGP_CORE_SCORING_REGISTRY_H_
#define EGP_CORE_SCORING_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "core/key_scoring.h"
#include "core/nonkey_scoring.h"
#include "graph/entity_graph.h"
#include "graph/schema_graph.h"

namespace egp {

class ThreadPool;

/// Everything a scorer may consult. `graph` is null when only the schema
/// graph is available (schema-only serving, synthetic workloads) —
/// measures that need the data graph must fail cleanly in that case.
/// `pool` is the thread pool the surrounding PreparedSchema build runs
/// on, or null for a serial build; scorers may ParallelFor over it but
/// must produce results independent of its parallelism. `frozen`, when
/// set, is the CSR snapshot of `graph` (e.g. opened zero-copy from an
/// .egps file); scorers that scan adjacency use it instead of
/// re-freezing.
struct ScoringContext {
  const SchemaGraph& schema;
  const EntityGraph* graph = nullptr;
  RandomWalkOptions walk;
  ThreadPool* pool = nullptr;
  const FrozenGraph* frozen = nullptr;
};

/// S(τ) for every type; indexed by TypeId.
using KeyScorerFn =
    std::function<Result<std::vector<double>>(const ScoringContext&)>;
/// Sτ(γ) per schema edge and direction.
using NonKeyScorerFn = std::function<Result<NonKeyScores>(const ScoringContext&)>;

/// Selects scoring measures by registry name. The default configuration
/// reproduces the paper's headline setting (coverage / coverage).
struct MeasureSelection {
  std::string key = "coverage";
  std::string nonkey = "coverage";
  /// Parameters for the "randomwalk" key measure; ignored by others.
  RandomWalkOptions walk;
};

/// Thread-safe name → scorer registry. `Global()` comes preloaded with the
/// paper's measures:
///   key:    "coverage" (S_cov), "randomwalk" (S_walk)
///   nonkey: "coverage" (Sτ_cov), "entropy" (Sτ_ent; needs the data graph)
class ScoringRegistry {
 public:
  /// The process-wide registry used by name-based PreparedSchema creation
  /// and the serving Engine.
  static ScoringRegistry& Global();

  /// Registers a measure. Fails with AlreadyExists if the name is taken
  /// (including the built-in names) and InvalidArgument on an empty name
  /// or scorer.
  Status RegisterKeyMeasure(const std::string& name, KeyScorerFn scorer);
  Status RegisterNonKeyMeasure(const std::string& name, NonKeyScorerFn scorer);

  /// Looks a measure up; NotFound errors list the registered names.
  Result<KeyScorerFn> FindKeyMeasure(const std::string& name) const;
  Result<NonKeyScorerFn> FindNonKeyMeasure(const std::string& name) const;

  bool HasKeyMeasure(const std::string& name) const;
  bool HasNonKeyMeasure(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> KeyMeasureNames() const;
  std::vector<std::string> NonKeyMeasureNames() const;

 private:
  friend class ScoringRegistryTestPeer;
  ScoringRegistry();

  mutable Mutex mu_;
  std::map<std::string, KeyScorerFn> key_measures_ EGP_GUARDED_BY(mu_);
  std::map<std::string, NonKeyScorerFn> nonkey_measures_ EGP_GUARDED_BY(mu_);
};

}  // namespace egp

#endif  // EGP_CORE_SCORING_REGISTRY_H_
