// Score frontier: the preview size/score trade-off surface.
//
// §4 frames preview size against goodness as the central trade-off; the
// DP recurrence of Alg. 2 computes, as a by-product, the optimal concise
// score for *every* (k', n') ≤ (k, n). This module exposes that surface
// in one DP pass — the data a UI (or the advisor) needs to let a user
// pick constraints by looking at the marginal value of one more table or
// attribute.
#ifndef EGP_CORE_FRONTIER_H_
#define EGP_CORE_FRONTIER_H_

#include <vector>

#include "common/result.h"
#include "core/candidates.h"

namespace egp {

class ScoreFrontier {
 public:
  /// Optimal concise-preview score with exactly k tables and at most n
  /// non-key attributes; negative if infeasible (fewer than k eligible
  /// types). k in [1, max_k], n in [k, max_n].
  double At(uint32_t k, uint32_t n) const;

  uint32_t max_k() const { return max_k_; }
  uint32_t max_n() const { return max_n_; }

  /// Marginal value of allowing one more table at attribute budget n:
  /// At(k, n) − At(k−1, n); negative when k is infeasible.
  double MarginalTable(uint32_t k, uint32_t n) const;

  /// Smallest (k, n) whose score is at least `fraction` of At(max_k,
  /// max_n) — "how small can the preview get while keeping 90% of the
  /// value". Returns k = 0 if the frontier is empty.
  struct Point {
    uint32_t k = 0;
    uint32_t n = 0;
    double score = 0.0;
  };
  Point KneeAt(double fraction) const;

 private:
  friend Result<ScoreFrontier> ComputeScoreFrontier(
      const PreparedSchema& prepared, uint32_t max_k, uint32_t max_n);

  uint32_t max_k_ = 0;
  uint32_t max_n_ = 0;
  std::vector<double> scores_;  // (k-1) * max_n_ + (n-1), row-major
};

/// One DP pass over the prepared schema; O(K · max_k · max_n²).
Result<ScoreFrontier> ComputeScoreFrontier(const PreparedSchema& prepared,
                                           uint32_t max_k, uint32_t max_n);

}  // namespace egp

#endif  // EGP_CORE_FRONTIER_H_
