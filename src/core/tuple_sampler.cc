#include "core/tuple_sampler.h"

#include <algorithm>

#include "common/rng.h"

namespace egp {
namespace {

/// Union of the entity's neighbour sets across a column's relationship
/// types (one for plain columns, several for merged multi-way columns).
std::vector<EntityId> ColumnValues(const EntityGraph& graph, EntityId entity,
                                   const MaterializedColumn& column) {
  std::vector<EntityId> values;
  for (RelTypeId rel : column.rel_types) {
    std::vector<EntityId> part =
        graph.NeighborSet(entity, rel, column.direction);
    values.insert(values.end(), part.begin(), part.end());
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

}  // namespace

Result<MaterializedPreview> MaterializePreview(
    const EntityGraph& graph, const PreparedSchema& prepared,
    const Preview& preview, const TupleSamplerOptions& options) {
  const SchemaGraph& schema = prepared.schema();
  Rng rng(options.seed);
  MaterializedPreview out;

  for (const PreviewTable& table : preview.tables) {
    MaterializedTable mat;
    mat.key_type = table.key;
    mat.key_name = schema.TypeName(table.key);

    for (const NonKeyCandidate& c : table.nonkeys) {
      const RelTypeId rel_type = schema.RelTypeOfEdge(c.schema_edge);
      if (rel_type == kInvalidId) {
        return Status::FailedPrecondition(
            "MaterializePreview requires a schema derived from the entity "
            "graph");
      }
      const SchemaEdge& e = schema.Edge(c.schema_edge);
      const std::string& target = schema.TypeName(
          c.direction == Direction::kOutgoing ? e.dst : e.src);

      if (options.merge_multiway_columns) {
        // Fold into an existing column with the same surface name and
        // direction (a multi-way relationship seen from this key type).
        MaterializedColumn* merged = nullptr;
        for (MaterializedColumn& existing : mat.columns) {
          if (existing.name == schema.SurfaceName(e) &&
              existing.direction == c.direction) {
            merged = &existing;
            break;
          }
        }
        if (merged != nullptr) {
          merged->rel_types.push_back(rel_type);
          merged->target += ", " + target;
          continue;
        }
      }

      MaterializedColumn column;
      column.name = schema.SurfaceName(e);
      column.direction = c.direction;
      column.rel_types = {rel_type};
      column.target = target;
      mat.columns.push_back(std::move(column));
    }

    const std::vector<EntityId>& members = graph.EntitiesOfType(table.key);
    mat.total_tuples = members.size();

    std::vector<size_t> picked;
    switch (options.strategy) {
      case SamplingStrategy::kRandom:
        picked = rng.SampleIndices(members.size(), options.rows_per_table);
        break;
      case SamplingStrategy::kFrequencyWeighted: {
        // Score each member by its number of non-empty cells; keep the
        // top rows (ties broken randomly via jitter).
        std::vector<std::pair<double, size_t>> scored;
        scored.reserve(members.size());
        for (size_t i = 0; i < members.size(); ++i) {
          double filled = 0.0;
          for (const MaterializedColumn& column : mat.columns) {
            if (!ColumnValues(graph, members[i], column).empty()) {
              filled += 1.0;
            }
          }
          scored.emplace_back(filled + rng.NextDouble() * 0.5, i);
        }
        const size_t take = std::min(options.rows_per_table, scored.size());
        std::partial_sort(scored.begin(), scored.begin() + take, scored.end(),
                          [](const auto& a, const auto& b) {
                            return a.first > b.first;
                          });
        for (size_t i = 0; i < take; ++i) picked.push_back(scored[i].second);
        break;
      }
    }
    std::sort(picked.begin(), picked.end());

    for (size_t index : picked) {
      MaterializedRow row;
      row.key = members[index];
      for (const MaterializedColumn& column : mat.columns) {
        MaterializedCell mcell;
        mcell.values = ColumnValues(graph, row.key, column);
        row.cells.push_back(std::move(mcell));
      }
      mat.rows.push_back(std::move(row));
    }
    out.tables.push_back(std::move(mat));
  }
  return out;
}

}  // namespace egp
