#include "core/nonkey_scoring.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>

#include "common/math_util.h"

namespace egp {
namespace {

/// Batched entropy for one relationship type and direction. A single pass
/// over the type's edge list (instead of scanning every key entity's full
/// adjacency) collects (key, value) pairs; sorting groups them into
/// per-tuple value-set spans in an arena, and a second sort over the
/// spans counts set-equality classes — no per-tuple allocations.
/// O(E log E) in the relationship's edge count.
double RelationshipEntropyFast(const EntityGraph& graph, RelTypeId rel_type,
                               Direction direction) {
  const auto& edge_ids = graph.EdgesOfRelType(rel_type);
  std::vector<std::pair<EntityId, EntityId>> pairs;
  pairs.reserve(edge_ids.size());
  for (EdgeId id : edge_ids) {
    const EdgeRecord& e = graph.Edge(id);
    if (direction == Direction::kOutgoing) {
      pairs.emplace_back(e.src, e.dst);
    } else {
      pairs.emplace_back(e.dst, e.src);
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  // Value-set spans per key tuple, over the sorted pair arena.
  struct Span {
    size_t begin;
    size_t end;
  };
  std::vector<Span> spans;
  for (size_t i = 0; i < pairs.size();) {
    size_t j = i + 1;
    while (j < pairs.size() && pairs[j].first == pairs[i].first) ++j;
    spans.push_back(Span{i, j});
    i = j;
  }

  // Group by value-set equality: order spans lexicographically by their
  // value sequences, then count equal runs.
  auto span_less = [&pairs](const Span& a, const Span& b) {
    return std::lexicographical_compare(
        pairs.begin() + a.begin, pairs.begin() + a.end,
        pairs.begin() + b.begin, pairs.begin() + b.end,
        [](const auto& x, const auto& y) { return x.second < y.second; });
  };
  auto span_equal = [&pairs](const Span& a, const Span& b) {
    return a.end - a.begin == b.end - b.begin &&
           std::equal(pairs.begin() + a.begin, pairs.begin() + a.end,
                      pairs.begin() + b.begin,
                      [](const auto& x, const auto& y) {
                        return x.second == y.second;
                      });
  };
  std::sort(spans.begin(), spans.end(), span_less);

  std::vector<uint64_t> counts;
  for (size_t i = 0; i < spans.size();) {
    size_t j = i + 1;
    while (j < spans.size() && span_equal(spans[i], spans[j])) ++j;
    counts.push_back(j - i);
    i = j;
  }
  return EntropyLog10(counts);
}

}  // namespace

NonKeyScores ComputeNonKeyCoverage(const SchemaGraph& schema) {
  NonKeyScores scores;
  scores.outgoing.resize(schema.num_edges());
  scores.incoming.resize(schema.num_edges());
  for (uint32_t i = 0; i < schema.num_edges(); ++i) {
    const double support = static_cast<double>(schema.Edge(i).edge_count);
    scores.outgoing[i] = support;
    scores.incoming[i] = support;
  }
  return scores;
}

double RelationshipEntropy(const EntityGraph& graph, RelTypeId rel_type,
                           Direction direction) {
  const RelTypeInfo& info = graph.RelType(rel_type);
  const TypeId key_type =
      direction == Direction::kOutgoing ? info.src_type : info.dst_type;

  // Group tuples by their full value set (multi-valued cells are equal iff
  // equal as sets; NeighborSet returns sorted, deduplicated vectors).
  std::map<std::vector<EntityId>, uint64_t> groups;
  for (EntityId e : graph.EntitiesOfType(key_type)) {
    std::vector<EntityId> value_set = graph.NeighborSet(e, rel_type, direction);
    if (value_set.empty()) continue;  // |t.γ| counts non-empty tuples only.
    ++groups[std::move(value_set)];
  }
  std::vector<uint64_t> counts;
  counts.reserve(groups.size());
  for (const auto& [values, count] : groups) counts.push_back(count);
  return EntropyLog10(counts);
}

Result<NonKeyScores> ComputeNonKeyEntropy(const EntityGraph& graph,
                                          const SchemaGraph& schema) {
  NonKeyScores scores;
  scores.outgoing.resize(schema.num_edges());
  scores.incoming.resize(schema.num_edges());
  for (uint32_t i = 0; i < schema.num_edges(); ++i) {
    const RelTypeId rel_type = schema.RelTypeOfEdge(i);
    if (rel_type == kInvalidId) {
      return Status::FailedPrecondition(
          "entropy scoring requires a schema graph derived from the entity "
          "graph (schema edge lacks relationship-type mapping)");
    }
    scores.outgoing[i] =
        RelationshipEntropyFast(graph, rel_type, Direction::kOutgoing);
    scores.incoming[i] =
        RelationshipEntropyFast(graph, rel_type, Direction::kIncoming);
  }
  return scores;
}

}  // namespace egp
