#include "core/nonkey_scoring.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <span>

#include "common/math_util.h"
#include "common/parallel.h"

namespace egp {
namespace {

/// Value-set span inside a shared arena of entity ids, with an FNV-1a
/// hash of the (sorted, deduplicated) sequence so set-equality grouping
/// can bucket by (length, hash) instead of lexicographic sorting —
/// element compares only run inside hash buckets.
struct ValueSpan {
  size_t begin;
  size_t end;
  uint64_t hash;
};

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvStep(uint64_t hash, EntityId value) {
  return (hash ^ static_cast<uint64_t>(value)) * kFnvPrime;
}

}  // namespace

NonKeyScores ComputeNonKeyCoverage(const SchemaGraph& schema) {
  NonKeyScores scores;
  scores.outgoing.resize(schema.num_edges());
  scores.incoming.resize(schema.num_edges());
  for (uint32_t i = 0; i < schema.num_edges(); ++i) {
    const double support = static_cast<double>(schema.Edge(i).edge_count);
    scores.outgoing[i] = support;
    scores.incoming[i] = support;
  }
  return scores;
}

double RelationshipEntropy(const EntityGraph& graph, RelTypeId rel_type,
                           Direction direction) {
  const RelTypeInfo& info = graph.RelType(rel_type);
  const TypeId key_type =
      direction == Direction::kOutgoing ? info.src_type : info.dst_type;

  // Group tuples by their full value set (multi-valued cells are equal iff
  // equal as sets; NeighborSet returns sorted, deduplicated vectors).
  std::map<std::vector<EntityId>, uint64_t> groups;
  for (EntityId e : graph.EntitiesOfType(key_type)) {
    std::vector<EntityId> value_set = graph.NeighborSet(e, rel_type, direction);
    if (value_set.empty()) continue;  // |t.γ| counts non-empty tuples only.
    ++groups[std::move(value_set)];
  }
  std::vector<uint64_t> counts;
  counts.reserve(groups.size());
  for (const auto& [values, count] : groups) counts.push_back(count);
  return EntropyLog10(counts);
}

/// Batched entropy for one relationship type and direction, off the CSR.
/// Each key entity's γ-run is a contiguous, neighbor-sorted span of the
/// frozen adjacency (forward index for outgoing, reverse for incoming),
/// so value sets stream into an arena with one adjacent-dedup pass — no
/// per-tuple allocation, no edge-list copy, no global edge sort. A sort
/// over the per-tuple spans then counts set-equality classes.
/// O(values + tuples·log(tuples)·set̄) per call.
double RelationshipEntropyCsr(const FrozenGraph& frozen,
                              const EntityGraph& graph, RelTypeId rel_type,
                              Direction direction) {
  const RelTypeInfo& info = graph.RelType(rel_type);
  const TypeId key_type =
      direction == Direction::kOutgoing ? info.src_type : info.dst_type;

  std::vector<EntityId> arena;
  std::vector<ValueSpan> spans;
  for (EntityId e : graph.EntitiesOfType(key_type)) {
    const std::span<const FrozenGraph::Arc> run =
        frozen.RelArcs(e, rel_type, direction);
    if (run.empty()) continue;  // |t.γ| counts non-empty tuples only.
    const size_t begin = arena.size();
    uint64_t hash = kFnvOffset;
    for (const FrozenGraph::Arc& arc : run) {
      // Runs are neighbor-sorted: multigraph repeats are adjacent.
      if (arena.size() == begin || arena.back() != arc.neighbor) {
        arena.push_back(arc.neighbor);
        hash = FnvStep(hash, arc.neighbor);
      }
    }
    spans.push_back(ValueSpan{begin, arena.size(), hash});
  }

  // Group by value-set equality: bucket spans by (length, hash) — a
  // cheap scalar sort with a fixed arena-position tiebreak, so the order
  // (hence the histogram below) is a pure function of the input — then
  // confirm true equality inside each bucket, where near-all members
  // belong to one group and full compares are rare.
  std::sort(spans.begin(), spans.end(),
            [](const ValueSpan& a, const ValueSpan& b) {
              const size_t len_a = a.end - a.begin;
              const size_t len_b = b.end - b.begin;
              if (len_a != len_b) return len_a < len_b;
              if (a.hash != b.hash) return a.hash < b.hash;
              return a.begin < b.begin;
            });
  auto span_equal = [&arena](const ValueSpan& a, const ValueSpan& b) {
    return std::equal(arena.begin() + a.begin, arena.begin() + a.end,
                      arena.begin() + b.begin);
  };

  std::vector<uint64_t> counts;
  // Equality groups of the current bucket: (representative span index,
  // index into counts). Buckets almost always hold exactly one group;
  // the inner scan only pays when 64-bit hashes collide.
  std::vector<std::pair<size_t, size_t>> bucket_groups;
  for (size_t i = 0; i < spans.size();) {
    // One (length, hash) bucket: [i, j).
    size_t j = i + 1;
    while (j < spans.size() &&
           spans[j].end - spans[j].begin == spans[i].end - spans[i].begin &&
           spans[j].hash == spans[i].hash) {
      ++j;
    }
    bucket_groups.clear();
    for (size_t s = i; s < j; ++s) {
      bool matched = false;
      for (const auto& [representative, count_index] : bucket_groups) {
        if (span_equal(spans[s], spans[representative])) {
          ++counts[count_index];
          matched = true;
          break;
        }
      }
      if (!matched) {
        bucket_groups.emplace_back(s, counts.size());
        counts.push_back(1);
      }
    }
    i = j;
  }
  return EntropyLog10(counts);
}

Result<NonKeyScores> ComputeNonKeyEntropy(const EntityGraph& graph,
                                          const SchemaGraph& schema,
                                          ThreadPool* pool,
                                          const FrozenGraph* prebuilt) {
  for (uint32_t i = 0; i < schema.num_edges(); ++i) {
    if (schema.RelTypeOfEdge(i) == kInvalidId) {
      return Status::FailedPrecondition(
          "entropy scoring requires a schema graph derived from the entity "
          "graph (schema edge lacks relationship-type mapping)");
    }
  }

  // One freeze serves every (relationship, direction) job: outgoing reads
  // the forward CSR index, incoming the reverse — the single pass over
  // the edges happens here, not per direction. A caller-supplied CSR
  // (snapshot-loaded graphs) skips even that; copying the handle is
  // cheap (shared backing).
  const FrozenGraph frozen =
      prebuilt != nullptr ? *prebuilt : FrozenGraph::Freeze(graph, pool);

  NonKeyScores scores;
  scores.outgoing.resize(schema.num_edges());
  scores.incoming.resize(schema.num_edges());
  // Jobs are (edge, direction) pairs; each writes one disjoint slot, so
  // the scores are bit-identical at any parallelism — including under
  // dynamic scheduling, which matters here because job cost is each
  // relationship's edge count (heavily skewed): a static chunk holding
  // the dominant relationship would bound the whole phase.
  ParallelForDynamic(pool, 0, 2 * schema.num_edges(), [&](size_t job) {
    const uint32_t edge = static_cast<uint32_t>(job >> 1);
    const RelTypeId rel_type = schema.RelTypeOfEdge(edge);
    if ((job & 1) == 0) {
      scores.outgoing[edge] =
          RelationshipEntropyCsr(frozen, graph, rel_type,
                                 Direction::kOutgoing);
    } else {
      scores.incoming[edge] =
          RelationshipEntropyCsr(frozen, graph, rel_type,
                                 Direction::kIncoming);
    }
  });
  return scores;
}

}  // namespace egp
