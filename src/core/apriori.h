// Apriori-style optimal tight/diverse preview discovery (Alg. 3).
//
// Step 1 finds all k-subsets of key types whose pairwise distances satisfy
// the constraint, by level-wise joining of (i−1)-subsets that share an
// (i−2)-prefix — only the two differing last elements need a distance
// check, exactly as Apriori candidate generation (correct by induction:
// every other pair lies inside one of the two joined subsets).
// Step 2 scores each surviving subset with ComputePreview (Theorem 3).
#ifndef EGP_CORE_APRIORI_H_
#define EGP_CORE_APRIORI_H_

#include "common/result.h"
#include "core/brute_force.h"  // DiscoveryStats
#include "core/constraints.h"
#include "core/preview.h"

namespace egp {

struct AprioriOptions {
  /// Abort if an intermediate level would exceed this many subsets
  /// (0 = unlimited). Guards the degenerate constraints the paper flags
  /// (tight with d near the diameter, diverse with tiny d).
  uint64_t max_level_size = 0;
};

Result<Preview> AprioriDiscover(const PreparedSchema& prepared,
                                const SizeConstraint& size,
                                const DistanceConstraint& distance,
                                const AprioriOptions& options = {},
                                DiscoveryStats* stats = nullptr);

}  // namespace egp

#endif  // EGP_CORE_APRIORI_H_
