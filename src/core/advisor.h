// Constraint advisor: suggests (k, n) and distance constraints.
//
// §2/§4 leave k, n, d to the user or "automatically suggested based on
// the size of a display space"; §8 lists parameter suggestion as future
// work. This module implements that direction with transparent
// heuristics:
//   * k from the vertical display budget (each table costs a header block
//     plus its sample rows), clamped to the eligible-type count;
//   * n from the horizontal budget (columns that fit at a nominal cell
//     width) spread over k tables;
//   * tight d around half the schema's average path length — §6.2 shows
//     constraints near the diameter are vacuous ("setting d=6 ... will
//     make most previews tight. It is unnecessary to enforce such a
//     distance constraint");
//   * diverse d just above the average path length, capped below the
//     diameter so feasibility is likely.
#ifndef EGP_CORE_ADVISOR_H_
#define EGP_CORE_ADVISOR_H_

#include <string>

#include "core/candidates.h"
#include "core/constraints.h"

namespace egp {

/// Display space available for the preview, in character cells.
struct DisplayBudget {
  uint32_t width_chars = 120;
  uint32_t height_rows = 40;
  /// Nominal rendered width of one column and height of one table block
  /// (header + rule + sample rows); used as the unit costs.
  uint32_t column_width = 16;
  uint32_t rows_per_table = 7;
};

struct ConstraintSuggestion {
  SizeConstraint size;
  uint32_t tight_d = 1;    // for DistanceConstraint::Tight
  uint32_t diverse_d = 2;  // for DistanceConstraint::Diverse
  std::string rationale;   // human-readable explanation
};

ConstraintSuggestion SuggestConstraints(const PreparedSchema& prepared,
                                        const DisplayBudget& budget = {});

}  // namespace egp

#endif  // EGP_CORE_ADVISOR_H_
