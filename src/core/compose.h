// ComputePreview (§5, Alg. 1 lines 5–14 / Alg. 3 line 17): given k chosen
// key types, build the best preview by Theorem 3 — each table takes its
// top-scoring candidate, then the remaining n−k slots are filled by a merge
// of the per-type sorted candidate lists, weighted by S(τ).
#ifndef EGP_CORE_COMPOSE_H_
#define EGP_CORE_COMPOSE_H_

#include <vector>

#include "common/result.h"
#include "core/constraints.h"
#include "core/preview.h"

namespace egp {

/// Returns the optimal preview over exactly the given key types with at
/// most n total non-key attributes. Fails if any key type has no candidate
/// non-key attribute or if n < keys.size().
Result<Preview> ComposePreview(const PreparedSchema& prepared,
                               const std::vector<TypeId>& keys, uint32_t n);

/// Score-only variant (no preview materialization) for hot enumeration
/// loops; returns a negative value if infeasible.
double ComposePreviewScore(const PreparedSchema& prepared,
                           const std::vector<TypeId>& keys, uint32_t n);

}  // namespace egp

#endif  // EGP_CORE_COMPOSE_H_
