// PreviewDiscoverer: the library's front door for optimal preview discovery.
//
// Wraps a PreparedSchema and dispatches to the right algorithm for the
// requested constraint space: DP for concise previews, Apriori for
// tight/diverse, brute force on demand (oracle/benchmarks).
#ifndef EGP_CORE_DISCOVERER_H_
#define EGP_CORE_DISCOVERER_H_

#include "common/result.h"
#include "core/apriori.h"
#include "core/brute_force.h"
#include "core/constraints.h"
#include "core/dynamic_programming.h"
#include "core/preview.h"

namespace egp {

enum class Algorithm : uint8_t {
  kAuto = 0,
  kBruteForce,
  kDynamicProgramming,
  kApriori,
};

const char* AlgorithmName(Algorithm a);

struct DiscoveryOptions {
  SizeConstraint size;
  DistanceConstraint distance;
  Algorithm algorithm = Algorithm::kAuto;
};

class PreviewDiscoverer {
 public:
  explicit PreviewDiscoverer(PreparedSchema prepared)
      : prepared_(std::move(prepared)) {}

  const PreparedSchema& prepared() const { return prepared_; }

  /// Finds an optimal preview in the requested space. With kAuto,
  /// selects DP for concise and Apriori for tight/diverse previews.
  /// DP cannot honour distance constraints (§5.2) and returns
  /// InvalidArgument if asked to.
  Result<Preview> Discover(const DiscoveryOptions& options,
                           DiscoveryStats* stats = nullptr) const;

 private:
  PreparedSchema prepared_;
};

}  // namespace egp

#endif  // EGP_CORE_DISCOVERER_H_
