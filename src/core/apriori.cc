#include "core/apriori.h"

#include <algorithm>

#include "common/strings.h"
#include "core/compose.h"

namespace egp {
namespace {

/// Flat storage of fixed-arity sorted id tuples, lexicographically ordered
/// by construction.
struct Level {
  uint32_t arity = 0;
  std::vector<uint32_t> flat;  // size = arity * count

  size_t count() const { return arity == 0 ? 0 : flat.size() / arity; }
  const uint32_t* tuple(size_t idx) const { return &flat[idx * arity]; }
};

}  // namespace

Result<Preview> AprioriDiscover(const PreparedSchema& prepared,
                                const SizeConstraint& size,
                                const DistanceConstraint& distance,
                                const AprioriOptions& options,
                                DiscoveryStats* stats) {
  const uint32_t k = size.k;
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (size.n < k) {
    return Status::InvalidArgument(
        StrFormat("n=%u < k=%u: every table needs one non-key attribute",
                  size.n, k));
  }

  std::vector<TypeId> eligible;
  for (TypeId t = 0; t < prepared.num_types(); ++t) {
    if (prepared.Eligible(t)) eligible.push_back(t);
  }
  if (eligible.size() < k) {
    return Status::NotFound(StrFormat(
        "only %zu eligible key types, need k=%u", eligible.size(), k));
  }

  DiscoveryStats local_stats;
  const SchemaDistanceMatrix& dist = prepared.distances();
  auto pair_ok = [&](TypeId a, TypeId b) {
    return distance.SatisfiedBy(dist.Distance(a, b));
  };

  // Build L_k level-wise. Tuples store TypeIds in increasing order; the
  // lexicographic order of `flat` is maintained by the join.
  Level level;
  if (k == 1) {
    level.arity = 1;
    level.flat = eligible;
  } else {
    // L2: all constraint-satisfying pairs.
    level.arity = 2;
    for (size_t i = 0; i < eligible.size(); ++i) {
      for (size_t j = i + 1; j < eligible.size(); ++j) {
        if (pair_ok(eligible[i], eligible[j])) {
          level.flat.push_back(eligible[i]);
          level.flat.push_back(eligible[j]);
        }
      }
    }
    // Join L_{i-1} with itself to get L_i.
    for (uint32_t arity = 3; arity <= k && level.count() > 0; ++arity) {
      Level next;
      next.arity = arity;
      const uint32_t prefix_len = arity - 2;
      size_t block_start = 0;
      const size_t count = level.count();
      while (block_start < count) {
        // A block shares the first (arity-2) elements.
        size_t block_end = block_start + 1;
        while (block_end < count &&
               std::equal(level.tuple(block_start),
                          level.tuple(block_start) + prefix_len,
                          level.tuple(block_end))) {
          ++block_end;
        }
        for (size_t a = block_start; a < block_end; ++a) {
          const uint32_t last_a = level.tuple(a)[arity - 2];
          for (size_t b = a + 1; b < block_end; ++b) {
            const uint32_t last_b = level.tuple(b)[arity - 2];
            // Tuples are sorted, so last_a < last_b within a block.
            if (!pair_ok(last_a, last_b)) continue;
            next.flat.insert(next.flat.end(), level.tuple(a),
                             level.tuple(a) + arity - 1);
            next.flat.push_back(last_b);
          }
        }
        block_start = block_end;
        if (options.max_level_size != 0 &&
            next.count() > options.max_level_size) {
          return Status::OutOfRange(StrFormat(
              "Apriori level %u exceeded max_level_size=%llu", arity,
              static_cast<unsigned long long>(options.max_level_size)));
        }
      }
      level = std::move(next);
    }
  }

  if (level.count() == 0 || level.arity != k) {
    if (stats != nullptr) *stats = local_stats;
    return Status::NotFound("no k-subset satisfies the distance constraint");
  }

  // Step 2: score every qualifying k-subset.
  double best_score = -1.0;
  std::vector<TypeId> best_keys;
  std::vector<TypeId> keys(k);
  for (size_t idx = 0; idx < level.count(); ++idx) {
    const uint32_t* tuple = level.tuple(idx);
    keys.assign(tuple, tuple + k);
    ++local_stats.subsets_enumerated;
    ++local_stats.subsets_scored;
    const double score = ComposePreviewScore(prepared, keys, size.n);
    if (score > best_score) {
      best_score = score;
      best_keys = keys;
    }
  }
  if (stats != nullptr) *stats = local_stats;
  if (best_keys.empty()) {
    return Status::NotFound("no preview satisfies the distance constraint");
  }
  return ComposePreview(prepared, best_keys, size.n);
}

}  // namespace egp
