#include "core/discoverer.h"

namespace egp {

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kAuto:
      return "Auto";
    case Algorithm::kBruteForce:
      return "BruteForce";
    case Algorithm::kDynamicProgramming:
      return "DynamicProgramming";
    case Algorithm::kApriori:
      return "Apriori";
  }
  return "?";
}

Result<Preview> PreviewDiscoverer::Discover(const DiscoveryOptions& options,
                                            DiscoveryStats* stats) const {
  Algorithm algorithm = options.algorithm;
  if (algorithm == Algorithm::kAuto) {
    algorithm = options.distance.mode == DistanceMode::kNone
                    ? Algorithm::kDynamicProgramming
                    : Algorithm::kApriori;
  }
  switch (algorithm) {
    case Algorithm::kBruteForce:
      return BruteForceDiscover(prepared_, options.size, options.distance,
                                BruteForceOptions{}, stats);
    case Algorithm::kDynamicProgramming:
      if (options.distance.mode != DistanceMode::kNone) {
        return Status::InvalidArgument(
            "the dynamic-programming algorithm only solves the concise "
            "space; distance constraints lack its optimal substructure");
      }
      return DynamicProgrammingDiscover(prepared_, options.size);
    case Algorithm::kApriori:
      return AprioriDiscover(prepared_, options.size, options.distance,
                             AprioriOptions{}, stats);
    case Algorithm::kAuto:
      break;
  }
  return Status::Internal("unreachable algorithm dispatch");
}

}  // namespace egp
