#include "core/frontier.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace egp {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

double ScoreFrontier::At(uint32_t k, uint32_t n) const {
  EGP_CHECK(k >= 1 && k <= max_k_) << "k out of range: " << k;
  EGP_CHECK(n >= 1 && n <= max_n_) << "n out of range: " << n;
  const double score = scores_[(k - 1) * max_n_ + (n - 1)];
  return score;
}

double ScoreFrontier::MarginalTable(uint32_t k, uint32_t n) const {
  if (k <= 1) return At(1, n);
  const double with = At(k, n);
  const double without = At(k - 1, n);
  if (with < 0) return with;
  return with - std::max(without, 0.0);
}

ScoreFrontier::Point ScoreFrontier::KneeAt(double fraction) const {
  Point best;
  const double full = At(max_k_, max_n_);
  if (full < 0) return best;
  const double target = full * fraction;
  // Smallest total footprint (k + n), ties by smaller n.
  uint32_t best_cost = UINT32_MAX;
  for (uint32_t k = 1; k <= max_k_; ++k) {
    for (uint32_t n = k; n <= max_n_; ++n) {
      const double score = At(k, n);
      if (score < target) continue;
      const uint32_t cost = k + n;
      if (cost < best_cost || (cost == best_cost && n < best.n)) {
        best_cost = cost;
        best = Point{k, n, score};
      }
    }
  }
  return best;
}

Result<ScoreFrontier> ComputeScoreFrontier(const PreparedSchema& prepared,
                                           uint32_t max_k, uint32_t max_n) {
  if (max_k == 0 || max_n == 0) {
    return Status::InvalidArgument("frontier needs positive max_k/max_n");
  }
  if (max_n < max_k) {
    return Status::InvalidArgument("max_n must be at least max_k");
  }
  const size_t num_types = prepared.num_types();
  if (num_types == 0) return Status::NotFound("empty schema graph");

  // Score-only version of the Alg. 2 recurrence, all (i, j) retained.
  const size_t cells = static_cast<size_t>(max_k + 1) * (max_n + 1);
  auto cell = [max_n](uint32_t i, uint32_t j) -> size_t {
    return static_cast<size_t>(i) * (max_n + 1) + j;
  };
  std::vector<double> prev(cells, kNegInf);
  std::vector<double> cur(cells, kNegInf);
  prev[cell(0, 0)] = 0.0;

  for (size_t x = 1; x <= num_types; ++x) {
    const TypeId type = static_cast<TypeId>(x - 1);
    const uint32_t available = static_cast<uint32_t>(
        std::min<size_t>(prepared.Candidates(type).size(), max_n));
    for (uint32_t i = 0; i <= std::min<uint32_t>(max_k, x); ++i) {
      for (uint32_t j = i; j <= max_n; ++j) {
        double best = prev[cell(i, j)];
        if (i >= 1) {
          const uint32_t limit = std::min(available, j - (i - 1));
          for (uint32_t m = 1; m <= limit; ++m) {
            const double below = prev[cell(i - 1, j - m)];
            if (below == kNegInf) continue;
            best = std::max(best, below + prepared.TableScore(type, m));
          }
        }
        cur[cell(i, j)] = best;
      }
    }
    prev.swap(cur);
    std::fill(cur.begin(), cur.end(), kNegInf);
  }

  // Collapse "exactly j" into "at most n" via a running max per row.
  ScoreFrontier frontier;
  frontier.max_k_ = max_k;
  frontier.max_n_ = max_n;
  frontier.scores_.assign(static_cast<size_t>(max_k) * max_n, -1.0);
  for (uint32_t k = 1; k <= max_k; ++k) {
    double running = kNegInf;
    for (uint32_t n = 1; n <= max_n; ++n) {
      running = std::max(running, prev[cell(k, n)]);
      frontier.scores_[(k - 1) * max_n + (n - 1)] =
          running == kNegInf ? -1.0 : running;
    }
  }
  return frontier;
}

}  // namespace egp
