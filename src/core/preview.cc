#include "core/preview.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/strings.h"

namespace egp {

double PreviewTable::Score(const PreparedSchema& prepared) const {
  double nonkey_sum = 0.0;
  for (const NonKeyCandidate& c : nonkeys) nonkey_sum += c.score;
  return prepared.KeyScore(key) * nonkey_sum;
}

double Preview::Score(const PreparedSchema& prepared) const {
  double total = 0.0;
  for (const PreviewTable& t : tables) total += t.Score(prepared);
  return total;
}

size_t Preview::TotalNonKeys() const {
  size_t total = 0;
  for (const PreviewTable& t : tables) total += t.nonkeys.size();
  return total;
}

std::vector<TypeId> Preview::Keys() const {
  std::vector<TypeId> keys;
  keys.reserve(tables.size());
  for (const PreviewTable& t : tables) keys.push_back(t.key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

Status ValidatePreview(const Preview& preview, const PreparedSchema& prepared,
                       const SizeConstraint& size,
                       const DistanceConstraint& distance) {
  const SchemaGraph& schema = prepared.schema();
  if (preview.tables.size() != size.k) {
    return Status::FailedPrecondition(
        StrFormat("preview has %zu tables, expected k=%u",
                  preview.tables.size(), size.k));
  }
  if (preview.TotalNonKeys() > size.n) {
    return Status::FailedPrecondition(
        StrFormat("preview has %zu non-key attributes, allowed n=%u",
                  preview.TotalNonKeys(), size.n));
  }
  std::set<TypeId> seen_keys;
  for (const PreviewTable& table : preview.tables) {
    if (table.key >= schema.num_types()) {
      return Status::FailedPrecondition("table key type out of range");
    }
    if (!seen_keys.insert(table.key).second) {
      return Status::FailedPrecondition(StrFormat(
          "duplicate key attribute '%s'", schema.TypeName(table.key).c_str()));
    }
    if (table.nonkeys.empty()) {
      return Status::FailedPrecondition(
          StrFormat("table '%s' has no non-key attribute",
                    schema.TypeName(table.key).c_str()));
    }
    std::set<std::pair<uint32_t, Direction>> seen_attrs;
    for (const NonKeyCandidate& c : table.nonkeys) {
      if (c.schema_edge >= schema.num_edges()) {
        return Status::FailedPrecondition("non-key schema edge out of range");
      }
      const SchemaEdge& e = schema.Edge(c.schema_edge);
      const TypeId anchor =
          c.direction == Direction::kOutgoing ? e.src : e.dst;
      if (anchor != table.key) {
        return Status::FailedPrecondition(StrFormat(
            "non-key attribute '%s' (%s) is not incident on key '%s' in the "
            "claimed direction",
            schema.SurfaceName(e).c_str(), DirectionName(c.direction),
            schema.TypeName(table.key).c_str()));
      }
      if (!seen_attrs.insert({c.schema_edge, c.direction}).second) {
        return Status::FailedPrecondition(
            StrFormat("duplicate non-key attribute in table '%s'",
                      schema.TypeName(table.key).c_str()));
      }
    }
  }
  for (size_t i = 0; i < preview.tables.size(); ++i) {
    for (size_t j = i + 1; j < preview.tables.size(); ++j) {
      const uint32_t dist = prepared.distances().Distance(
          preview.tables[i].key, preview.tables[j].key);
      if (!distance.SatisfiedBy(dist)) {
        return Status::FailedPrecondition(StrFormat(
            "tables '%s' and '%s' violate the distance constraint (dist=%u)",
            schema.TypeName(preview.tables[i].key).c_str(),
            schema.TypeName(preview.tables[j].key).c_str(), dist));
      }
    }
  }
  return Status::OK();
}

std::string DescribePreview(const Preview& preview,
                            const PreparedSchema& prepared) {
  const SchemaGraph& schema = prepared.schema();
  std::ostringstream out;
  for (const PreviewTable& table : preview.tables) {
    out << schema.TypeName(table.key) << ":";
    for (const NonKeyCandidate& c : table.nonkeys) {
      const SchemaEdge& e = schema.Edge(c.schema_edge);
      const TypeId other = c.direction == Direction::kOutgoing ? e.dst : e.src;
      out << " " << schema.SurfaceName(e) << "("
          << DirectionName(c.direction) << "->" << schema.TypeName(other)
          << ")";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace egp
