// Incremental schema-statistics maintenance.
//
// §5 notes that the schema graph and scoring measures "can be
// incrementally updated when the underlying entity graph is updated"
// (while optimal previews cannot). This module implements that claim: it
// maintains the statistics scoring depends on — per-type entity counts
// and per-relationship-type edge counts — under a stream of data-graph
// updates, tracks which types' candidate lists are dirty, and rebuilds a
// SchemaGraph (for re-preparation) without touching the entity graph.
#ifndef EGP_CORE_INCREMENTAL_H_
#define EGP_CORE_INCREMENTAL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/schema_graph.h"

namespace egp {

/// One data-graph change, expressed at the schema level (the statistics
/// are oblivious to entity identity; only type/relationship-type
/// membership counts matter for scoring).
struct GraphUpdate {
  enum class Kind : uint8_t {
    kAddEntity = 0,     // an entity gained membership in `type`
    kRemoveEntity,      // an entity lost membership in `type`
    kAddEdge,           // a relationship of `schema_edge`'s type appeared
    kRemoveEdge,        // one disappeared
  };
  Kind kind;
  TypeId type = kInvalidId;        // for entity updates
  uint32_t schema_edge = kInvalidId;  // for edge updates (schema edge index)

  static GraphUpdate AddEntity(TypeId type) {
    return {Kind::kAddEntity, type, kInvalidId};
  }
  static GraphUpdate RemoveEntity(TypeId type) {
    return {Kind::kRemoveEntity, type, kInvalidId};
  }
  static GraphUpdate AddEdge(uint32_t schema_edge) {
    return {Kind::kAddEdge, kInvalidId, schema_edge};
  }
  static GraphUpdate RemoveEdge(uint32_t schema_edge) {
    return {Kind::kRemoveEdge, kInvalidId, schema_edge};
  }
};

class IncrementalSchemaStats {
 public:
  /// Snapshots the counts of `schema`. The schema's structure (type and
  /// edge sets) is fixed; only counts evolve.
  explicit IncrementalSchemaStats(const SchemaGraph& schema);

  /// Applies one update. Fails on unknown ids or if a count would go
  /// negative; failed updates change nothing.
  Status Apply(const GraphUpdate& update);

  /// Applies a batch; stops at the first failure (earlier updates stay
  /// applied — callers wanting atomicity should validate first).
  Status ApplyAll(const std::vector<GraphUpdate>& updates);

  uint64_t TypeEntityCount(TypeId type) const;
  uint64_t EdgeCount(uint32_t schema_edge) const;
  uint64_t total_updates() const { return total_updates_; }

  /// Types whose key score or candidate list may have changed since the
  /// last ClearDirty(): the endpoint types of updated edges and the types
  /// with membership changes. Sorted, deduplicated.
  std::vector<TypeId> DirtyTypes() const;
  bool IsDirty(TypeId type) const;
  void ClearDirty();

  /// Rebuilds a SchemaGraph with the current counts (same structure and
  /// names); feed it to PreparedSchema::Create to refresh scores.
  SchemaGraph ToSchemaGraph() const;

 private:
  const SchemaGraph* schema_;  // structure + names (not owned)
  std::vector<uint64_t> type_counts_;
  std::vector<uint64_t> edge_counts_;
  std::vector<bool> dirty_;
  uint64_t total_updates_ = 0;
};

}  // namespace egp

#endif  // EGP_CORE_INCREMENTAL_H_
