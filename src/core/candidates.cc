#include "core/candidates.h"

#include <algorithm>

#include "common/check.h"

namespace egp {

const char* KeyMeasureName(KeyMeasure m) {
  return m == KeyMeasure::kCoverage ? "Coverage" : "RandomWalk";
}

const char* NonKeyMeasureName(NonKeyMeasure m) {
  return m == NonKeyMeasure::kCoverage ? "Coverage" : "Entropy";
}

Result<PreparedSchema> PreparedSchema::Create(
    SchemaGraph schema, const PreparedSchemaOptions& options,
    const EntityGraph* graph) {
  PreparedSchema prepared;
  prepared.options_ = options;

  // Key-attribute scores.
  switch (options.key_measure) {
    case KeyMeasure::kCoverage:
      prepared.key_scores_ = ComputeKeyCoverage(schema);
      break;
    case KeyMeasure::kRandomWalk:
      prepared.key_scores_ = ComputeKeyRandomWalk(schema, options.walk);
      break;
  }

  // Non-key attribute scores per schema edge and direction.
  NonKeyScores nonkey;
  switch (options.nonkey_measure) {
    case NonKeyMeasure::kCoverage:
      nonkey = ComputeNonKeyCoverage(schema);
      break;
    case NonKeyMeasure::kEntropy: {
      if (graph == nullptr) {
        return Status::InvalidArgument(
            "entropy non-key scoring requires the entity graph");
      }
      EGP_ASSIGN_OR_RETURN(nonkey, ComputeNonKeyEntropy(*graph, schema));
      break;
    }
  }

  // Γτ per type: every incident edge contributes the direction(s) in which
  // τ is an endpoint; a self-loop contributes both directions.
  const size_t num_types = schema.num_types();
  prepared.candidates_.resize(num_types);
  for (uint32_t index = 0; index < schema.num_edges(); ++index) {
    const SchemaEdge& e = schema.Edge(index);
    prepared.candidates_[e.src].sorted.push_back(
        NonKeyCandidate{index, Direction::kOutgoing, nonkey.outgoing[index]});
    prepared.candidates_[e.dst].sorted.push_back(
        NonKeyCandidate{index, Direction::kIncoming, nonkey.incoming[index]});
  }
  for (TypeId t = 0; t < num_types; ++t) {
    auto& cands = prepared.candidates_[t].sorted;
    std::sort(cands.begin(), cands.end(),
              [](const NonKeyCandidate& a, const NonKeyCandidate& b) {
                if (a.score != b.score) return a.score > b.score;
                if (a.schema_edge != b.schema_edge) {
                  return a.schema_edge < b.schema_edge;
                }
                return a.direction < b.direction;
              });
    auto& prefix = prepared.candidates_[t].prefix;
    prefix.resize(cands.size() + 1);
    prefix[0] = 0.0;
    for (size_t m = 0; m < cands.size(); ++m) {
      prefix[m + 1] = prefix[m] + cands[m].score;
    }
  }

  prepared.distances_ = std::make_shared<SchemaDistanceMatrix>(schema);
  prepared.schema_ = std::move(schema);
  return prepared;
}

size_t PreparedSchema::TotalCandidates() const {
  size_t total = 0;
  for (const TypeCandidates& c : candidates_) total += c.size();
  return total;
}

}  // namespace egp
