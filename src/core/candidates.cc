#include "core/candidates.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "common/timer.h"

namespace egp {

const char* KeyMeasureName(KeyMeasure m) {
  return m == KeyMeasure::kCoverage ? "Coverage" : "RandomWalk";
}

const char* NonKeyMeasureName(NonKeyMeasure m) {
  return m == NonKeyMeasure::kCoverage ? "Coverage" : "Entropy";
}

const char* KeyMeasureRegistryName(KeyMeasure m) {
  return m == KeyMeasure::kCoverage ? "coverage" : "randomwalk";
}

const char* NonKeyMeasureRegistryName(NonKeyMeasure m) {
  return m == NonKeyMeasure::kCoverage ? "coverage" : "entropy";
}

Result<PreparedSchema> PreparedSchema::Create(SchemaGraph schema,
                                              const MeasureSelection& measures,
                                              const EntityGraph* graph,
                                              ThreadPool* pool,
                                              const FrozenGraph* frozen) {
  const Timer total_timer;
  Timer phase_timer;
  PreparedSchema prepared;
  prepared.measures_ = measures;
  // Best-effort legacy enum view of the selection; unrecognized (custom)
  // names read as the defaults.
  prepared.options_.key_measure = measures.key == "randomwalk"
                                      ? KeyMeasure::kRandomWalk
                                      : KeyMeasure::kCoverage;
  prepared.options_.nonkey_measure = measures.nonkey == "entropy"
                                         ? NonKeyMeasure::kEntropy
                                         : NonKeyMeasure::kCoverage;
  prepared.options_.walk = measures.walk;

  const ScoringContext context{schema, graph, measures.walk, pool, frozen};
  ScoringRegistry& registry = ScoringRegistry::Global();

  KeyScorerFn key_scorer;
  EGP_ASSIGN_OR_RETURN(key_scorer, registry.FindKeyMeasure(measures.key));
  phase_timer.Reset();
  EGP_ASSIGN_OR_RETURN(prepared.key_scores_, key_scorer(context));
  prepared.timings_.key_seconds = phase_timer.ElapsedSeconds();
  if (prepared.key_scores_.size() != schema.num_types()) {
    return Status::Internal("key measure '" + measures.key + "' returned " +
                            std::to_string(prepared.key_scores_.size()) +
                            " scores for " +
                            std::to_string(schema.num_types()) + " types");
  }

  NonKeyScorerFn nonkey_scorer;
  EGP_ASSIGN_OR_RETURN(nonkey_scorer,
                       registry.FindNonKeyMeasure(measures.nonkey));
  NonKeyScores nonkey;
  phase_timer.Reset();
  EGP_ASSIGN_OR_RETURN(nonkey, nonkey_scorer(context));
  prepared.timings_.nonkey_seconds = phase_timer.ElapsedSeconds();
  if (nonkey.outgoing.size() != schema.num_edges() ||
      nonkey.incoming.size() != schema.num_edges()) {
    return Status::Internal("non-key measure '" + measures.nonkey +
                            "' returned a score vector not matching the " +
                            std::to_string(schema.num_edges()) +
                            " schema edges");
  }

  // Γτ per type: every incident edge contributes the direction(s) in which
  // τ is an endpoint; a self-loop contributes both directions. The sort
  // comparator is a total order (ties broken by edge then direction), so
  // the per-type sorts parallelize with a unique, append-order-independent
  // result.
  phase_timer.Reset();
  const size_t num_types = schema.num_types();
  prepared.candidates_.resize(num_types);
  for (uint32_t index = 0; index < schema.num_edges(); ++index) {
    const SchemaEdge& e = schema.Edge(index);
    prepared.candidates_[e.src].sorted.push_back(
        NonKeyCandidate{index, Direction::kOutgoing, nonkey.outgoing[index]});
    prepared.candidates_[e.dst].sorted.push_back(
        NonKeyCandidate{index, Direction::kIncoming, nonkey.incoming[index]});
  }
  ParallelFor(
      pool, 0, num_types,
      [&prepared](size_t t) {
        auto& cands = prepared.candidates_[t].sorted;
        std::sort(cands.begin(), cands.end(),
                  [](const NonKeyCandidate& a, const NonKeyCandidate& b) {
                    if (a.score != b.score) return a.score > b.score;
                    if (a.schema_edge != b.schema_edge) {
                      return a.schema_edge < b.schema_edge;
                    }
                    return a.direction < b.direction;
                  });
        auto& prefix = prepared.candidates_[t].prefix;
        prefix.resize(cands.size() + 1);
        prefix[0] = 0.0;
        for (size_t m = 0; m < cands.size(); ++m) {
          prefix[m + 1] = prefix[m] + cands[m].score;
        }
      },
      /*grain=*/8);
  prepared.timings_.candidate_sort_seconds = phase_timer.ElapsedSeconds();

  phase_timer.Reset();
  prepared.distances_ = std::make_shared<SchemaDistanceMatrix>(schema, pool);
  prepared.timings_.distance_seconds = phase_timer.ElapsedSeconds();
  prepared.schema_ = std::move(schema);
  prepared.timings_.total_seconds = total_timer.ElapsedSeconds();
  return prepared;
}

Result<PreparedSchema> PreparedSchema::Create(
    SchemaGraph schema, const PreparedSchemaOptions& options,
    const EntityGraph* graph, ThreadPool* pool, const FrozenGraph* frozen) {
  MeasureSelection measures;
  measures.key = KeyMeasureRegistryName(options.key_measure);
  measures.nonkey = NonKeyMeasureRegistryName(options.nonkey_measure);
  measures.walk = options.walk;
  return Create(std::move(schema), measures, graph, pool, frozen);
}

size_t PreparedSchema::TotalCandidates() const {
  size_t total = 0;
  for (const TypeCandidates& c : candidates_) total += c.size();
  return total;
}

}  // namespace egp
