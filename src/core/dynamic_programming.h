// Dynamic-programming optimal *concise* preview discovery (Alg. 2).
//
// Popt(i, j, x): best preview with exactly i tables and exactly j non-key
// attributes drawn from the first x entity types. Either type x is skipped,
// or it contributes a table with its top-m candidates (Theorem 3). The
// distance-constrained spaces have no such optimal substructure (§5.2), so
// this algorithm is only exposed for DistanceMode::kNone.
// Complexity O(K·k·n²) after the one-off candidate sort.
#ifndef EGP_CORE_DYNAMIC_PROGRAMMING_H_
#define EGP_CORE_DYNAMIC_PROGRAMMING_H_

#include "common/result.h"
#include "core/constraints.h"
#include "core/preview.h"

namespace egp {

Result<Preview> DynamicProgrammingDiscover(const PreparedSchema& prepared,
                                           const SizeConstraint& size);

}  // namespace egp

#endif  // EGP_CORE_DYNAMIC_PROGRAMMING_H_
