// Constraint definitions for the optimization problems of §4.
#ifndef EGP_CORE_CONSTRAINTS_H_
#define EGP_CORE_CONSTRAINTS_H_

#include <cstdint>

#include "graph/schema_distance.h"

namespace egp {

/// (k, n): k preview tables, at most n non-key attributes in total (Def. 2).
struct SizeConstraint {
  uint32_t k = 0;
  uint32_t n = 0;
};

/// Distance constraint selecting tight (pairwise dist ≤ d), diverse
/// (pairwise dist ≥ d) or unconstrained (concise) previews.
enum class DistanceMode : uint8_t { kNone = 0, kTight, kDiverse };

struct DistanceConstraint {
  DistanceMode mode = DistanceMode::kNone;
  uint32_t d = 0;

  static DistanceConstraint None() { return {DistanceMode::kNone, 0}; }
  static DistanceConstraint Tight(uint32_t d) {
    return {DistanceMode::kTight, d};
  }
  static DistanceConstraint Diverse(uint32_t d) {
    return {DistanceMode::kDiverse, d};
  }

  /// Whether a pair of key types at (possibly unreachable) `distance`
  /// satisfies the constraint. Unreachable pairs fail tight constraints and
  /// satisfy diverse ones.
  bool SatisfiedBy(uint32_t distance) const {
    switch (mode) {
      case DistanceMode::kNone:
        return true;
      case DistanceMode::kTight:
        return distance != SchemaDistanceMatrix::kUnreachable && distance <= d;
      case DistanceMode::kDiverse:
        return distance == SchemaDistanceMatrix::kUnreachable || distance >= d;
    }
    return true;
  }
};

}  // namespace egp

#endif  // EGP_CORE_CONSTRAINTS_H_
