// PreparedSchema: everything discovery algorithms need, computed once.
//
// Mirrors the paper's cost model (§5): "Both the schema graph and the
// scoring measures ... are computed before optimal preview discovery."
// Holds the chosen key-attribute scores, the per-type candidate non-key
// attribute lists Γτ sorted by score with prefix sums, and the all-pairs
// type distance matrix.
#ifndef EGP_CORE_CANDIDATES_H_
#define EGP_CORE_CANDIDATES_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/key_scoring.h"
#include "core/nonkey_scoring.h"
#include "core/scoring_registry.h"
#include "graph/schema_distance.h"
#include "graph/schema_graph.h"

namespace egp {

class ThreadPool;

/// Legacy enum selectors for the paper's built-in measures. Internal
/// callers (benches, unit tests) may keep using them; they resolve to the
/// ScoringRegistry names "coverage"/"randomwalk"/"entropy". New code and
/// everything above the core layer should select measures by name via
/// MeasureSelection (see scoring_registry.h) or the egp::Engine façade.
enum class KeyMeasure : uint8_t { kCoverage = 0, kRandomWalk };
enum class NonKeyMeasure : uint8_t { kCoverage = 0, kEntropy };

const char* KeyMeasureName(KeyMeasure m);
const char* NonKeyMeasureName(NonKeyMeasure m);

/// Registry names of the built-in measures ("coverage", "randomwalk",
/// "entropy") — the join point between the enums and MeasureSelection.
const char* KeyMeasureRegistryName(KeyMeasure m);
const char* NonKeyMeasureRegistryName(NonKeyMeasure m);

/// A candidate non-key attribute of some table: a schema edge used in a
/// specific direction relative to the table's key type. A self-loop edge
/// yields one candidate per direction.
struct NonKeyCandidate {
  uint32_t schema_edge;
  Direction direction;
  double score;
};

/// Γτ: candidates of one key type, sorted by score descending (ties broken
/// by edge index then direction for determinism), with prefix sums so the
/// best m-subset score is O(1) (Theorem 3: optimal tables take the top-m).
struct TypeCandidates {
  std::vector<NonKeyCandidate> sorted;
  std::vector<double> prefix;  // prefix[m] = sum of top-m scores; prefix[0]=0

  size_t size() const { return sorted.size(); }
  double TopSum(size_t m) const { return prefix[m]; }
};

struct PreparedSchemaOptions {
  KeyMeasure key_measure = KeyMeasure::kCoverage;
  NonKeyMeasure nonkey_measure = NonKeyMeasure::kCoverage;
  RandomWalkOptions walk;
};

/// Wall-clock breakdown of one PreparedSchema build, by phase. The paper
/// computes all scoring measures before discovery (§5), so on large
/// graphs these phases — not the discovery algorithms — dominate
/// end-to-end latency; the breakdown is what the perf benches and the
/// CLI's --verbose mode report.
struct PrepareTimings {
  double key_seconds = 0.0;            // key-measure scoring
  double nonkey_seconds = 0.0;         // non-key-measure scoring
  double distance_seconds = 0.0;       // all-pairs type distances
  double candidate_sort_seconds = 0.0; // Γτ sort + prefix sums
  double total_seconds = 0.0;          // whole Create call
};

class PreparedSchema {
 public:
  /// Builds from a schema graph (and the entity graph when a measure needs
  /// it, e.g. "entropy"). Measures are resolved by name against
  /// ScoringRegistry::Global(). Owns a copy of the schema graph.
  ///
  /// Internal layer: application code should obtain prepared state through
  /// egp::Engine (src/service/engine.h), which memoizes instances per
  /// measure configuration and shares them across threads.
  ///
  /// When `pool` is given, the whole build — scoring, distances, Γτ sorts
  /// — runs across it; results are bit-identical to a serial (null-pool)
  /// build at any parallelism. `frozen`, when given, must be the CSR
  /// snapshot of `graph` (e.g. opened from an .egps file); adjacency-
  /// scanning measures then skip their re-freeze.
  static Result<PreparedSchema> Create(SchemaGraph schema,
                                       const MeasureSelection& measures,
                                       const EntityGraph* graph = nullptr,
                                       ThreadPool* pool = nullptr,
                                       const FrozenGraph* frozen = nullptr);

  /// Legacy enum spelling; forwards to the registry-based overload.
  static Result<PreparedSchema> Create(SchemaGraph schema,
                                       const PreparedSchemaOptions& options,
                                       const EntityGraph* graph = nullptr,
                                       ThreadPool* pool = nullptr,
                                       const FrozenGraph* frozen = nullptr);

  const SchemaGraph& schema() const { return schema_; }
  /// The measure names this instance was prepared with.
  const MeasureSelection& measures() const { return measures_; }
  const PreparedSchemaOptions& options() const { return options_; }
  const SchemaDistanceMatrix& distances() const { return *distances_; }
  /// Per-phase wall-clock cost of the Create call that built this.
  const PrepareTimings& timings() const { return timings_; }

  size_t num_types() const { return schema_.num_types(); }

  /// S(τ).
  double KeyScore(TypeId t) const { return key_scores_[t]; }
  /// Γτ, sorted.
  const TypeCandidates& Candidates(TypeId t) const { return candidates_[t]; }
  /// S(τ) · Σ top-m non-key scores — the score of the best m-attribute
  /// table keyed on τ (Eq. 2 + Theorem 3).
  double TableScore(TypeId t, size_t m) const {
    return key_scores_[t] * candidates_[t].TopSum(m);
  }
  /// Whether τ can key a table at all (≥1 candidate; Def. 1 requires at
  /// least one non-key attribute).
  bool Eligible(TypeId t) const { return !candidates_[t].sorted.empty(); }

  /// N in the paper's complexity analysis: total candidate count over all
  /// types (= 2|Es| counting both directions).
  size_t TotalCandidates() const;

  /// Rough resident size of the prepared state: scored candidates with
  /// prefix sums, key scores, and the n×n distance matrix. Approximate
  /// by design (the schema graph copy's internals are not walked) — for
  /// cache introspection (/v1/debug/cache), not accounting.
  size_t ApproximateBytes() const {
    size_t bytes = sizeof(*this);
    bytes += key_scores_.capacity() * sizeof(double);
    for (const TypeCandidates& tc : candidates_) {
      bytes += sizeof(TypeCandidates);
      bytes += tc.sorted.capacity() * sizeof(NonKeyCandidate);
      bytes += tc.prefix.capacity() * sizeof(double);
    }
    if (distances_ != nullptr) {
      bytes += distances_->num_types() * distances_->num_types() *
               sizeof(uint32_t);
    }
    return bytes;
  }

 private:
  PreparedSchema() = default;

  SchemaGraph schema_;
  MeasureSelection measures_;
  PreparedSchemaOptions options_;
  PrepareTimings timings_;
  std::vector<double> key_scores_;
  std::vector<TypeCandidates> candidates_;
  std::shared_ptr<const SchemaDistanceMatrix> distances_;
};

}  // namespace egp

#endif  // EGP_CORE_CANDIDATES_H_
