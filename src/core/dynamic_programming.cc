#include "core/dynamic_programming.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/strings.h"
#include "core/compose.h"

namespace egp {

Result<Preview> DynamicProgrammingDiscover(const PreparedSchema& prepared,
                                           const SizeConstraint& size) {
  const uint32_t k = size.k;
  const uint32_t n = size.n;
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (n < k) {
    return Status::InvalidArgument(
        StrFormat("n=%u < k=%u: every table needs one non-key attribute",
                  n, k));
  }
  const size_t num_types = prepared.num_types();
  if (num_types == 0) return Status::NotFound("empty schema graph");

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  const size_t cells = static_cast<size_t>(k + 1) * (n + 1);
  auto cell = [n](uint32_t i, uint32_t j) -> size_t {
    return static_cast<size_t>(i) * (n + 1) + j;
  };

  // g[x][i][j]: best score with exactly i tables / j non-keys among the
  // first x types; rolled over x. choice[x][i][j] = m (#attributes type x
  // contributes; 0 = skipped) for reconstruction.
  std::vector<double> prev(cells, kNegInf);
  std::vector<double> cur(cells, kNegInf);
  std::vector<uint16_t> choice(num_types * cells, 0);
  prev[cell(0, 0)] = 0.0;

  for (size_t x = 1; x <= num_types; ++x) {
    const TypeId type = static_cast<TypeId>(x - 1);
    const TypeCandidates& cands = prepared.Candidates(type);
    const uint32_t max_m =
        static_cast<uint32_t>(std::min<size_t>(cands.size(), n));
    uint16_t* choice_row = &choice[(x - 1) * cells];

    for (uint32_t i = 0; i <= std::min(k, static_cast<uint32_t>(x)); ++i) {
      for (uint32_t j = i; j <= n; ++j) {
        // Option 1: type x contributes nothing.
        double best = prev[cell(i, j)];
        uint16_t best_m = 0;
        if (i >= 1) {
          // Option 2: type x keys a table with its top-m candidates.
          const uint32_t limit = std::min(max_m, j - (i - 1));
          for (uint32_t m = 1; m <= limit; ++m) {
            const double below = prev[cell(i - 1, j - m)];
            if (below == kNegInf) continue;
            const double score = below + prepared.TableScore(type, m);
            if (score > best) {
              best = score;
              best_m = static_cast<uint16_t>(m);
            }
          }
        }
        cur[cell(i, j)] = best;
        choice_row[cell(i, j)] = best_m;
      }
    }
    prev.swap(cur);
    std::fill(cur.begin(), cur.end(), kNegInf);
  }

  // A preview may use fewer than n non-keys and still win (footnote 2);
  // take the best over j = k..n.
  double best_score = kNegInf;
  uint32_t best_j = 0;
  for (uint32_t j = k; j <= n; ++j) {
    if (prev[cell(k, j)] > best_score) {
      best_score = prev[cell(k, j)];
      best_j = j;
    }
  }
  if (best_score == kNegInf) {
    return Status::NotFound(
        StrFormat("fewer than k=%u eligible key types", k));
  }

  // Reconstruct the chosen (type, m) pairs by replaying the choices.
  std::vector<TypeId> keys;
  std::vector<uint32_t> key_m;
  uint32_t i = k;
  uint32_t j = best_j;
  for (size_t x = num_types; x >= 1; --x) {
    const uint16_t m = choice[(x - 1) * cells + cell(i, j)];
    if (m > 0) {
      keys.push_back(static_cast<TypeId>(x - 1));
      key_m.push_back(m);
      i -= 1;
      j -= m;
    }
    if (i == 0 && j == 0) break;
  }
  EGP_CHECK(i == 0 && j == 0) << "DP reconstruction failed";
  std::reverse(keys.begin(), keys.end());
  std::reverse(key_m.begin(), key_m.end());

  Preview preview;
  preview.tables.resize(keys.size());
  for (size_t t = 0; t < keys.size(); ++t) {
    preview.tables[t].key = keys[t];
    const TypeCandidates& cands = prepared.Candidates(keys[t]);
    preview.tables[t].nonkeys.assign(cands.sorted.begin(),
                                     cands.sorted.begin() + key_m[t]);
  }
  return preview;
}

}  // namespace egp
