// In-memory flight recorder: a fixed-size ring of the last N completed
// RequestTraces, exposed at GET /v1/debug/requests so a stuck or slow
// production node can be diagnosed without restarting it (and without
// having had debug logging on in advance).
//
// Lock-light: Record() copies one trace into the ring under a short
// mutex hold; the serving path never allocates inside the lock beyond
// the string moves of the copy. Snapshot() (the debug endpoint, rare)
// copies matching entries out.
#ifndef EGP_SERVER_FLIGHT_RECORDER_H_
#define EGP_SERVER_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/trace.h"

namespace egp {

class FlightRecorder {
 public:
  /// `capacity` traces are retained; the oldest is overwritten.
  explicit FlightRecorder(size_t capacity = 256)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Record(const RequestTrace& trace);

  /// Snapshot filters, all conjunctive. Defaults match everything.
  struct Filter {
    double min_ms = 0.0;       // keep traces with total latency >= this
    int status = 0;            // > 0: keep only this exact HTTP status
    std::string dataset;       // non-empty: keep only this dataset
    size_t limit = 0;          // > 0: at most this many (newest) traces
  };

  /// Retained traces, newest first, filtered.
  std::vector<RequestTrace> Snapshot(const Filter& filter) const;

  /// Convenience overload for the common min_ms/status pair.
  std::vector<RequestTrace> Snapshot(double min_ms = 0.0,
                                     int status = 0) const {
    Filter filter;
    filter.min_ms = min_ms;
    filter.status = status;
    return Snapshot(filter);
  }

  /// Traces ever recorded (not just retained); for tests and /metrics.
  uint64_t recorded() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_{"flight_recorder"};
  std::vector<RequestTrace> ring_ EGP_GUARDED_BY(mu_);
  size_t next_ EGP_GUARDED_BY(mu_) = 0;  // ring slot the next trace takes
  uint64_t recorded_ EGP_GUARDED_BY(mu_) = 0;
};

}  // namespace egp

#endif  // EGP_SERVER_FLIGHT_RECORDER_H_
