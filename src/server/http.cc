#include "server/http.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"
#include "io/json_export.h"

namespace egp {
namespace {

/// RFC 9110 token characters (method and header names).
bool IsTokenChar(char c) {
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!':
    case '#':
    case '$':
    case '%':
    case '&':
    case '\'':
    case '*':
    case '+':
    case '-':
    case '.':
    case '^':
    case '_':
    case '`':
    case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool IsToken(std::string_view s) {
  return !s.empty() && std::all_of(s.begin(), s.end(), IsTokenChar);
}

std::string_view TrimOws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::string JsonErrorBody(int status, std::string_view message) {
  std::string body = "{\"error\":{\"status\":";
  body += std::to_string(status);
  body += ",\"message\":\"";
  body += JsonEscape(message);
  body += "\"}}";
  return body;
}

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

std::string_view HttpRequest::Path() const {
  const std::string_view t = target;
  const size_t q = t.find('?');
  return q == std::string_view::npos ? t : t.substr(0, q);
}

std::string_view HttpRequest::Query() const {
  const std::string_view t = target;
  const size_t q = t.find('?');
  return q == std::string_view::npos ? std::string_view() : t.substr(q + 1);
}

bool HeaderListContainsToken(std::string_view value, std::string_view token) {
  // RFC 9110 §5.6.1 list syntax: elements separated by commas, OWS
  // around each, empty elements ignored.
  while (!value.empty()) {
    const size_t comma = value.find(',');
    const std::string_view element =
        TrimOws(value.substr(0, comma == std::string_view::npos
                                    ? value.size()
                                    : comma));
    if (EqualsIgnoreCase(element, token)) return true;
    if (comma == std::string_view::npos) break;
    value.remove_prefix(comma + 1);
  }
  return false;
}

bool HttpRequest::KeepAlive() const {
  // Connection is a comma-separated token list (RFC 9110 §7.6.1):
  // "Connection: close, TE" closes just like "Connection: close".
  // close wins over keep-alive when a confused client sends both.
  const std::string* connection = FindHeader("Connection");
  if (connection != nullptr) {
    if (HeaderListContainsToken(*connection, "close")) return false;
    if (HeaderListContainsToken(*connection, "keep-alive")) return true;
  }
  return minor_version >= 1;
}

HttpRequestParser::State HttpRequestParser::Fail(int status,
                                                 std::string message) {
  state_ = State::kError;
  error_status_ = status;
  error_message_ = std::move(message);
  return state_;
}

HttpRequestParser::State HttpRequestParser::Feed(std::string_view data) {
  if (state_ == State::kError) return state_;
  buffer_.append(data);

  if (!head_done_) {
    // Wait for the blank line, bounding how much head we will buffer.
    const size_t head_end = buffer_.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (buffer_.size() > limits_.max_head_bytes) {
        return Fail(431, "request head exceeds " +
                             std::to_string(limits_.max_head_bytes) +
                             " bytes");
      }
      state_ = State::kNeedMore;
      return state_;
    }
    if (head_end + 4 > limits_.max_head_bytes) {
      return Fail(431, "request head exceeds " +
                           std::to_string(limits_.max_head_bytes) + " bytes");
    }
    const State parsed = ParseHead();
    if (parsed == State::kError) return parsed;
  }

  if (body_needed_ > 0) {
    const size_t take = std::min(body_needed_, buffer_.size());
    request_.body.append(buffer_, 0, take);
    buffer_.erase(0, take);
    body_needed_ -= take;
    message_bytes_ += take;
  }
  state_ = body_needed_ == 0 ? State::kComplete : State::kNeedMore;
  return state_;
}

HttpRequestParser::State HttpRequestParser::ParseHead() {
  const size_t head_end = buffer_.find("\r\n\r\n");
  const std::string_view head =
      std::string_view(buffer_).substr(0, head_end + 2);

  // ---- Request line: METHOD SP TARGET SP HTTP/1.x CRLF
  const size_t line_end = head.find("\r\n");
  std::string_view line = head.substr(0, line_end);
  if (line.find('\n') != std::string_view::npos ||
      line.find('\r') != std::string_view::npos) {
    return Fail(400, "bare CR or LF in request line");
  }
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    return Fail(400, "malformed request line");
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (!IsToken(method)) return Fail(400, "malformed method");
  if (target.empty() || target.find(' ') != std::string_view::npos) {
    return Fail(400, "malformed request target");
  }
  // Origin-form only ("/path"); asterisk-form tolerated for OPTIONS.
  if (target[0] != '/' && target != "*") {
    return Fail(400, "request target must be origin-form");
  }
  if (version == "HTTP/1.1") {
    request_.minor_version = 1;
  } else if (version == "HTTP/1.0") {
    request_.minor_version = 0;
  } else if (version.rfind("HTTP/", 0) == 0) {
    return Fail(505, "unsupported protocol version '" +
                         std::string(version) + "'");
  } else {
    return Fail(400, "malformed request line");
  }
  request_.method = std::string(method);
  request_.target = std::string(target);

  // ---- Headers
  size_t pos = line_end + 2;
  while (pos < head.size()) {
    const size_t eol = head.find("\r\n", pos);
    std::string_view field = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (field.find('\n') != std::string_view::npos ||
        field.find('\r') != std::string_view::npos) {
      return Fail(400, "bare CR or LF in header field");
    }
    if (field.empty()) break;
    if (field[0] == ' ' || field[0] == '\t') {
      return Fail(400, "obsolete header line folding");
    }
    const size_t colon = field.find(':');
    if (colon == std::string_view::npos) {
      return Fail(400, "header field without ':'");
    }
    const std::string_view name = field.substr(0, colon);
    if (!IsToken(name)) return Fail(400, "malformed header name");
    const std::string_view value = TrimOws(field.substr(colon + 1));
    request_.headers.emplace_back(std::string(name), std::string(value));
  }

  // ---- Body framing
  if (request_.FindHeader("Transfer-Encoding") != nullptr) {
    return Fail(501, "Transfer-Encoding is not supported");
  }
  size_t content_length = 0;
  bool have_length = false;
  for (const auto& [name, value] : request_.headers) {
    if (!EqualsIgnoreCase(name, "Content-Length")) continue;
    if (value.empty() ||
        !std::all_of(value.begin(), value.end(),
                     [](char c) { return c >= '0' && c <= '9'; }) ||
        value.size() > 18) {
      return Fail(400, "malformed Content-Length");
    }
    const size_t parsed = std::stoull(value);
    if (have_length && parsed != content_length) {
      return Fail(400, "conflicting Content-Length headers");
    }
    content_length = parsed;
    have_length = true;
  }
  if (content_length > limits_.max_body_bytes) {
    return Fail(413, "request body exceeds " +
                         std::to_string(limits_.max_body_bytes) + " bytes");
  }

  buffer_.erase(0, head_end + 4);
  head_done_ = true;
  message_bytes_ = head_end + 4;
  body_needed_ = content_length;
  request_.body.reserve(content_length);
  return State::kNeedMore;
}

HttpRequest HttpRequestParser::Take() {
  HttpRequest request = std::move(request_);
  request_ = HttpRequest{};
  head_done_ = false;
  body_needed_ = 0;
  message_bytes_ = 0;
  state_ = State::kNeedMore;
  return request;
}

std::string_view HttpStatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 204:
      return "No Content";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Content Too Large";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    case 505:
      return "HTTP Version Not Supported";
    default:
      return status >= 200 && status < 300 ? "OK" : "Error";
  }
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive,
                              bool omit_body) {
  const bool keep = keep_alive && !response.close_connection;
  std::string out;
  out.reserve(128 + (omit_body ? 0 : response.body.size()));
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += HttpStatusReason(response.status);
  out += "\r\n";
  if (!response.content_type.empty()) {
    out += "Content-Type: ";
    out += response.content_type;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\n";
  out += keep ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  if (!omit_body) out += response.body;
  return out;
}

}  // namespace egp
