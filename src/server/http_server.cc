#include "server/http_server.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "common/fault.h"
#include "common/posix.h"
#include "common/profiler.h"

namespace egp {
namespace {

/// One epoll_wait batch. Level-triggered epoll re-reports anything left
/// unconsumed, so a small batch only costs extra wakeups, never lost
/// events.
constexpr int kMaxEvents = 64;

/// How long accepting stays paused after an fd-exhaustion storm the
/// emergency-fd shed could not absorb.
constexpr int kAcceptOverloadPauseMs = 100;

bool IsResourceExhaustion(int err) {
  return err == EMFILE || err == ENFILE || err == ENOBUFS || err == ENOMEM;
}

}  // namespace

Result<std::unique_ptr<HttpServer>> HttpServer::Start(
    Handler handler, const HttpServerOptions& options) {
  if (!handler) return Status::InvalidArgument("null handler");
  if (options.max_connections == 0) {
    return Status::InvalidArgument("max_connections must be >= 1");
  }
  if (options.read_timeout_ms <= 0 || options.write_timeout_ms <= 0) {
    return Status::InvalidArgument("timeouts must be positive");
  }

  // unique_ptr because the loop thread captures `this`: the server must
  // never move.
  std::unique_ptr<HttpServer> server(new HttpServer());
  server->options_ = options;
  server->handler_ = std::move(handler);
  server->host_ = options.host;

  EGP_ASSIGN_OR_RETURN(
      server->listen_fd_,
      ListenTcp(options.host, options.port, options.listen_backlog,
                &server->port_));
  // The loop accepts until EAGAIN; a connection that is gone by the time
  // we accept it must not block the whole loop.
  SetNonBlocking(server->listen_fd_.get());

  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) return Status::IOError("epoll_create1 failed");
  server->epoll_fd_ = UniqueFd(epoll_fd);

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    return Status::IOError("pipe2: failed to create shutdown pipe");
  }
  server->shutdown_pipe_read_ = UniqueFd(pipe_fds[0]);
  server->shutdown_pipe_write_ = UniqueFd(pipe_fds[1]);
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    return Status::IOError("pipe2: failed to create wakeup pipe");
  }
  server->wakeup_pipe_read_ = UniqueFd(pipe_fds[0]);
  server->wakeup_pipe_write_ = UniqueFd(pipe_fds[1]);

  // Best effort: without the spare, an EMFILE storm falls back to
  // pausing the accept path instead of shedding.
  server->emergency_fd_ =
      UniqueFd(PosixOpen("/dev/null", O_RDONLY | O_CLOEXEC));

  const int static_fds[3] = {server->listen_fd_.get(),
                             server->shutdown_pipe_read_.get(),
                             server->wakeup_pipe_read_.get()};
  for (const int fd : static_fds) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      return Status::IOError("epoll_ctl: failed to register fd");
    }
  }

  server->trace_ids_.Reseed(options.trace_id_seed);

  const unsigned workers =
      options.workers == 0 ? std::max(2u, Threads()) : options.workers;
  if (workers > 1) {
    // ThreadPool(n) supplies n-1 worker threads; the loop thread never
    // participates, so ask for workers+1 to get `workers` real threads.
    server->pool_ = std::make_unique<ThreadPool>(workers + 1);
  }
  {
    MutexLock lock(&server->mu_);
    server->loop_started_ = true;  // before spawn: Wait() keys off this
  }
  {
    MutexLock join_lock(&server->join_mu_);
    server->loop_thread_ = std::thread([s = server.get()] { s->Loop(); });
  }
  return server;
}

HttpServer::~HttpServer() {
  Shutdown();
  Wait();
  // The loop exits only once every connection closed, which implies every
  // handler task completed; pool destruction joins idle workers.
  pool_.reset();
}

void HttpServer::Shutdown() {
  draining_.store(true, std::memory_order_release);
  // Wake the event loop. A full pipe is impossible here (one byte per
  // Shutdown call, drained by the loop), but even EAGAIN would be fine:
  // draining_ is already visible.
  const char byte = 'q';
  [[maybe_unused]] const ssize_t n =
      PosixWrite(shutdown_pipe_write_.get(), &byte, 1);
}

void HttpServer::Wait() {
  {
    // A server whose Start failed before the loop thread spawned has
    // nothing to wait for (its destructor still runs this path).
    MutexLock lock(&mu_);
    while (!loop_exited_ && loop_started_) idle_.Wait(mu_);
  }
  // Serialize the join so concurrent Wait() callers (say, the owner and
  // the destructor) can't race on the thread object.
  MutexLock join_lock(&join_mu_);
  if (loop_thread_.joinable()) loop_thread_.join();
}

HttpServerStats HttpServer::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

HttpServerRuntimeStats HttpServer::runtime_stats() const {
  HttpServerRuntimeStats stats;
  stats.loop_lag = loop_lag_.snapshot();
  stats.connections_reading = phase_counts_[0].load(std::memory_order_relaxed);
  stats.connections_handling =
      phase_counts_[1].load(std::memory_order_relaxed);
  stats.connections_writing = phase_counts_[2].load(std::memory_order_relaxed);
  stats.timer_heap_depth = timer_depth_.load(std::memory_order_relaxed);
  {
    MutexLock lock(&completion_mu_);
    stats.completion_queue_depth = completions_.size();
  }
  return stats;
}

void HttpServer::SetPhase(Connection* conn, Connection::Phase phase) {
  phase_counts_[static_cast<size_t>(conn->phase)].fetch_sub(
      1, std::memory_order_relaxed);
  conn->phase = phase;
  phase_counts_[static_cast<size_t>(phase)].fetch_add(
      1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Event loop. Everything below runs on the loop thread unless noted.

void HttpServer::Loop() {
  // The loop thread carries read/serialize/flush work — profile it.
  Profiler::RegisterCurrentThread();
  epoll_event events[kMaxEvents];
  for (;;) {
    const int timeout_ms = NextTimeoutMillis();
    int n;
    const FaultOutcome fault = FaultCheck("epoll.wait");
    if (fault.kind == FaultOutcome::Kind::kErrno) {
      errno = fault.err;
      n = -1;
    } else {
      n = ::epoll_wait(epoll_fd_.get(), events, kMaxEvents, timeout_ms);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll on our own fds failing is unrecoverable
    }
    // Loop lag: how long this pass keeps the loop away from epoll_wait —
    // the queueing delay every other ready event is paying right now.
    const int64_t pass_start_ns = MonotonicNanos();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t mask = events[i].events;
      if (fd == shutdown_pipe_read_.get()) {
        char buf[64];
        while (PosixRead(fd, buf, sizeof(buf)) > 0) {
        }
        BeginDrain();
        continue;
      }
      if (fd == wakeup_pipe_read_.get()) {
        char buf[64];
        while (PosixRead(fd, buf, sizeof(buf)) > 0) {
        }
        DrainCompletions();
        continue;
      }
      if (fd == listen_fd_.get()) {
        AcceptPending();
        continue;
      }
      // A connection event. The connection may have been closed earlier
      // in this same batch (completion or sibling event) — and the fd
      // even reused by a fresh accept; the phase checks inside the
      // handlers make a misdelivered stale event harmless.
      const auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      Connection* conn = it->second.get();
      if ((mask & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0 &&
          conn->phase == Connection::Phase::kReading) {
        // EPOLLHUP/ERR while reading: recv() reports the EOF or error.
        OnReadable(conn);
      } else if ((mask & (EPOLLOUT | EPOLLERR | EPOLLHUP)) != 0 &&
                 conn->phase == Connection::Phase::kWriting) {
        OnWritable(conn);
      }
    }
    ExpireDeadlines();
    // Completions are also drained inline (not just on wakeup bytes) so a
    // wakeup write that raced with this pass can't strand a response
    // until the next unrelated event.
    DrainCompletions();
    loop_lag_.Observe(
        static_cast<double>(MonotonicNanos() - pass_start_ns) * 1e-9);
    timer_depth_.store(timers_.size(), std::memory_order_relaxed);
    if (draining_.load(std::memory_order_acquire) && connections_.empty()) {
      break;
    }
  }

  {
    MutexLock lock(&mu_);
    loop_exited_ = true;
  }
  idle_.NotifyAll();
}

void HttpServer::AcceptPending() {
  if (draining_.load(std::memory_order_acquire)) return;
  for (;;) {
    const int raw = PosixAccept4(listen_fd_.get(),
                                 SOCK_NONBLOCK | SOCK_CLOEXEC,
                                 "socket.accept");
    if (raw < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // The handshake died before we got to it; the next one may be fine.
      if (errno == ECONNABORTED || errno == EPROTO) continue;
      if (IsResourceExhaustion(errno)) {
        // Out of descriptors (or kernel memory). Left alone this would
        // hot-spin: the backlog stays readable under level-triggered
        // epoll while accept() keeps failing.
        HandleAcceptOverload();
        return;
      }
      return;  // anything else: leave the backlog for the next wakeup
    }
    auto conn = std::make_unique<Connection>(UniqueFd(raw),
                                             ++next_generation_,
                                             options_.limits);
    Connection* c = conn.get();
    connections_.emplace(raw, std::move(conn));
    phase_counts_[static_cast<size_t>(c->phase)].fetch_add(
        1, std::memory_order_relaxed);
    c->request_start_ns = MonotonicNanos();

    if (admitted_connections_ >= options_.max_connections) {
      // Backpressure: queue a 503 as a plain non-blocking write. A slow
      // rejected peer costs one connection object on a short deadline —
      // it can no longer stall the accept path (the old thread-per-
      // connection design blocked the accept thread right here).
      {
        MutexLock lock(&mu_);
        ++stats_.rejected_connections;
      }
      HttpResponse response;
      response.status = 503;
      response.body = JsonErrorBody(503, "server at connection capacity");
      response.headers.emplace_back("Retry-After", "1");
      SetPhase(c, Connection::Phase::kWriting);
      c->close_after_write = true;
      c->outbox = SerializeResponse(response, /*keep_alive=*/false);
      ArmDeadline(c, std::min(1'000, options_.write_timeout_ms));
      FlushOutbox(c);  // may close c
      continue;
    }

    ++admitted_connections_;
    c->counted = true;
    {
      MutexLock lock(&mu_);
      ++stats_.accepted_connections;
    }
    ArmDeadline(c, options_.read_timeout_ms);
    SetEpoll(c, EPOLLIN);
  }
}

void HttpServer::HandleAcceptOverload() {
  {
    MutexLock lock(&mu_);
    ++stats_.accept_overloads;
  }
  bool shed = false;
  if (emergency_fd_.valid()) {
    // Release the reserved descriptor, use the freed slot to accept one
    // pending connection, answer it 503, close it, and re-arm the spare.
    // The client gets a real answer instead of hanging in the backlog
    // until its own timeout.
    emergency_fd_.Reset();
    const int raw = PosixAccept4(listen_fd_.get(),
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (raw >= 0) {
      UniqueFd conn(raw);
      HttpResponse response;
      response.status = 503;
      response.body = JsonErrorBody(503, "server out of file descriptors");
      response.headers.emplace_back("Retry-After", "1");
      const std::string bytes =
          SerializeResponse(response, /*keep_alive=*/false);
      // One best-effort non-blocking write; holding the connection for a
      // slow reader would defeat the point of shedding it.
      (void)PosixSend(conn.get(), bytes.data(), bytes.size(), MSG_NOSIGNAL);
      shed = true;
      {
        MutexLock lock(&mu_);
        ++stats_.rejected_connections;
        ++stats_.overload_sheds;
      }
    }
    emergency_fd_ = UniqueFd(PosixOpen("/dev/null", O_RDONLY | O_CLOEXEC));
  }
  if (!shed || !emergency_fd_.valid()) {
    // Could not shed (or could not re-arm the spare): back off so the
    // always-readable listen fd doesn't spin the loop.
    PauseAccepting(kAcceptOverloadPauseMs);
  }
}

void HttpServer::PauseAccepting(int pause_ms) {
  if (accept_paused_ || !listen_fd_.valid()) return;
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, listen_fd_.get(), nullptr);
  accept_paused_ = true;
  accept_resume_ms_ = MonotonicMillis() + pause_ms;
}

void HttpServer::MaybeResumeAccepting(int64_t now_ms) {
  if (!accept_paused_ || now_ms < accept_resume_ms_) return;
  accept_paused_ = false;
  accept_resume_ms_ = kNoDeadline;
  if (!listen_fd_.valid()) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_.get();
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, listen_fd_.get(), &ev);
  // Level-triggered: a still-pending backlog re-reports on the next
  // epoll_wait; nothing more to do here.
}

void HttpServer::BeginDrain() {
  draining_.store(true, std::memory_order_release);
  if (listen_fd_.valid()) {
    // ENOENT when accepting was paused (already deleted) is harmless.
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, listen_fd_.get(), nullptr);
    listen_fd_.Reset();  // new connects fail immediately
  }
  accept_paused_ = false;
  accept_resume_ms_ = kNoDeadline;
  // Idle keep-alive connections close now; anything mid-exchange finishes
  // its current request (with Connection: close — CompleteRequest and
  // BeginNextRequest both observe draining_).
  std::vector<Connection*> idle;
  for (const auto& [fd, conn] : connections_) {
    if (conn->phase == Connection::Phase::kReading &&
        conn->parser.AtMessageBoundary()) {
      idle.push_back(conn.get());
    }
  }
  for (Connection* conn : idle) CloseConnection(conn);
}

void HttpServer::OnReadable(Connection* conn) {
  const ScopedTracePhase profiled_phase(TracePhase::kRead);
  char buf[16 * 1024];
  for (;;) {
    const ssize_t n =
        PosixRecv(conn->fd.get(), buf, sizeof(buf), 0, "socket.recv");
    if (n > 0) {
      const HttpRequestParser::State state =
          conn->parser.Feed(std::string_view(buf, static_cast<size_t>(n)));
      if (state == HttpRequestParser::State::kComplete) {
        DispatchRequest(conn);
        return;
      }
      if (state == HttpRequestParser::State::kError) {
        FailParse(conn);
        return;
      }
      continue;  // kNeedMore: keep reading until EAGAIN
    }
    if (n == 0) {  // peer closed
      CloseConnection(conn);
      return;
    }
    // EINTR is retried inside PosixRecv.
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    CloseConnection(conn);
    return;
  }
}

void HttpServer::OnWritable(Connection* conn) { FlushOutbox(conn); }

void HttpServer::OnDeadline(Connection* conn) {
  switch (conn->phase) {
    case Connection::Phase::kReading: {
      if (conn->counted && !conn->timed_out_counted) {
        conn->timed_out_counted = true;
        MutexLock lock(&mu_);
        ++stats_.timed_out_connections;
      }
      if (conn->parser.AtMessageBoundary()) {
        // Idle between keep-alive requests: just an idle close.
        CloseConnection(conn);
        return;
      }
      // Mid-request gets a 408; silence would leave the client guessing.
      if (options_.tracing) BeginTrace(conn, nullptr, "read_timeout", 408);
      HttpResponse timeout;
      timeout.status = 408;
      timeout.body = JsonErrorBody(408, "timed out reading request");
      SendResponse(conn, timeout, /*keep=*/false, /*omit_body=*/false);
      return;
    }
    case Connection::Phase::kWriting: {
      if (conn->counted && !conn->timed_out_counted) {
        conn->timed_out_counted = true;
        MutexLock lock(&mu_);
        ++stats_.timed_out_connections;
      }
      if (conn->trace != nullptr) conn->trace->outcome = "write_timeout";
      CloseConnection(conn);
      return;
    }
    case Connection::Phase::kHandling:
      // Unreachable: dispatch disarms the deadline, and TimerEntryLive
      // filters the stale heap entry.
      return;
  }
}

void HttpServer::DispatchRequest(Connection* conn) {
  const size_t message_bytes = conn->parser.message_bytes();
  // shared_ptr because ThreadPool::Submit takes std::function, which
  // demands copyable captures.
  auto request = std::make_shared<HttpRequest>(conn->parser.Take());
  ++conn->served;
  SetPhase(conn, Connection::Phase::kHandling);
  conn->request_was_head = request->method == "HEAD";
  conn->request_keep_alive =
      request->KeepAlive() &&
      conn->served < options_.max_requests_per_connection;
  conn->deadline_ms = kNoDeadline;  // no I/O deadline while computing
  // Out of epoll entirely: a level-triggered EPOLLIN (or a peer hangup)
  // would otherwise busy-loop the poll while the handler runs.
  SetEpoll(conn, 0);

  if (options_.tracing) {
    BeginTrace(conn, request.get(), "ok", 0);
    conn->trace->bytes_in = message_bytes;
  }

  if (pool_ != nullptr) {
    const int fd = conn->fd.get();
    const uint64_t generation = conn->generation;
    // The task shares the trace with the connection: the pool thread owns
    // its handler-side fields until the completion is queued (the
    // completion mutex orders the handback).
    pool_->Submit([this, fd, generation, request, trace = conn->trace] {
      Completion completion;
      completion.fd = fd;
      completion.generation = generation;
      if (trace != nullptr) {
        const int64_t start_ns = MonotonicNanos();
        trace->queue_seconds =
            static_cast<double>(start_ns - trace->dispatch_ns) * 1e-9;
        ScopedRequestTrace scope(trace.get());
        completion.response = RunHandler(*request);
        // The admission wait is reported as its own phase, not as
        // handler compute.
        trace->handler_seconds =
            static_cast<double>(MonotonicNanos() - start_ns) * 1e-9 -
            trace->admission_seconds;
      } else {
        completion.response = RunHandler(*request);
      }
      PushCompletion(std::move(completion));
    });
  } else {
    // workers == 1: inline on the loop thread (ThreadPool(1) has no
    // workers, a submitted task would never run).
    HttpResponse response;
    if (conn->trace != nullptr) {
      RequestTrace* trace = conn->trace.get();
      const int64_t start_ns = MonotonicNanos();
      trace->queue_seconds =
          static_cast<double>(start_ns - trace->dispatch_ns) * 1e-9;
      ScopedRequestTrace scope(trace);
      response = RunHandler(*request);
      trace->handler_seconds =
          static_cast<double>(MonotonicNanos() - start_ns) * 1e-9 -
          trace->admission_seconds;
    } else {
      response = RunHandler(*request);
    }
    CompleteRequest(conn, response);
  }
}

void HttpServer::BeginTrace(Connection* conn, const HttpRequest* request,
                            std::string_view outcome, int status) {
  auto trace = std::make_shared<RequestTrace>();
  const std::string* id =
      request != nullptr ? request->FindHeader("X-Request-Id") : nullptr;
  trace->id = id != nullptr && !id->empty() ? *id : trace_ids_.Next();
  if (request != nullptr) {
    trace->method = request->method;
    trace->path = std::string(request->Path());
  }
  trace->outcome = std::string(outcome);
  trace->status = status;
  trace->start_ns = conn->request_start_ns;
  const int64_t now_ns = MonotonicNanos();
  trace->dispatch_ns = now_ns;
  trace->read_seconds =
      static_cast<double>(now_ns - conn->request_start_ns) * 1e-9;
  conn->trace = std::move(trace);
}

void HttpServer::FinishTrace(Connection* conn) {
  if (conn->trace == nullptr) return;
  RequestTrace& trace = *conn->trace;
  const int64_t now_ns = MonotonicNanos();
  if (conn->flush_start_ns != 0) {
    trace.flush_seconds =
        static_cast<double>(now_ns - conn->flush_start_ns) * 1e-9;
  }
  trace.total_seconds = static_cast<double>(now_ns - trace.start_ns) * 1e-9;
  // Transport-level outcomes ("parse_error", "shed", ...) were set at
  // their source; a plain error status is classified here.
  if (trace.outcome == "ok" && trace.status >= 400) trace.outcome = "error";
  if (options_.trace_sink) options_.trace_sink(trace);
  conn->trace.reset();
  conn->flush_start_ns = 0;
}

HttpResponse HttpServer::RunHandler(const HttpRequest& request) {
  // Runs on a pool thread (or the loop thread in inline mode).
  const ScopedTracePhase profiled_phase(TracePhase::kHandler);
  try {
    return handler_(request);
  } catch (const std::exception& e) {
    HttpResponse response;
    response.status = 500;
    response.body =
        JsonErrorBody(500, std::string("handler error: ") + e.what());
    response.close_connection = true;
    return response;
  } catch (...) {
    HttpResponse response;
    response.status = 500;
    response.body = JsonErrorBody(500, "handler error");
    response.close_connection = true;
    return response;
  }
}

void HttpServer::PushCompletion(Completion completion) {
  // Pool thread → loop thread handoff.
  {
    MutexLock lock(&completion_mu_);
    completions_.push_back(std::move(completion));
  }
  // EAGAIN (pipe full) is fine: a full pipe is already readable, so the
  // loop is waking up regardless and drains the queue inline.
  const char byte = 'c';
  [[maybe_unused]] const ssize_t n =
      PosixWrite(wakeup_pipe_write_.get(), &byte, 1);
}

void HttpServer::DrainCompletions() {
  std::vector<Completion> batch;
  {
    MutexLock lock(&completion_mu_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    const auto it = connections_.find(completion.fd);
    if (it == connections_.end() ||
        it->second->generation != completion.generation ||
        it->second->phase != Connection::Phase::kHandling) {
      // The loop never closes a kHandling connection, so this is only
      // reachable through fd-reuse races; drop the orphan.
      continue;
    }
    CompleteRequest(it->second.get(), completion.response);
  }
}

void HttpServer::CompleteRequest(Connection* conn, HttpResponse& response) {
  {
    MutexLock lock(&mu_);
    ++stats_.handled_requests;
  }
  const bool keep = conn->request_keep_alive && !response.close_connection &&
                    !draining_.load(std::memory_order_acquire);
  // HEAD gets the head only; Content-Length still describes the body the
  // corresponding GET would have sent.
  SendResponse(conn, response, keep, /*omit_body=*/conn->request_was_head);
}

void HttpServer::FailParse(Connection* conn) {
  {
    MutexLock lock(&mu_);
    ++stats_.parse_errors;
    ++stats_.handled_requests;
  }
  if (options_.tracing) {
    BeginTrace(conn, nullptr, "parse_error", conn->parser.error_status());
  }
  HttpResponse error;
  error.status = conn->parser.error_status();
  error.body =
      JsonErrorBody(conn->parser.error_status(), conn->parser.error_message());
  SendResponse(conn, error, /*keep=*/false, /*omit_body=*/false);
}

void HttpServer::SendResponse(Connection* conn, HttpResponse& response,
                              bool keep, bool omit_body) {
  const ScopedTracePhase profiled_phase(TracePhase::kSerialize);
  SetPhase(conn, Connection::Phase::kWriting);
  conn->close_after_write = !keep || response.close_connection;
  if (conn->trace != nullptr) {
    RequestTrace& trace = *conn->trace;
    trace.status = response.status;
    response.headers.emplace_back("X-Request-Id", trace.id);
    const int64_t serialize_start_ns = MonotonicNanos();
    conn->outbox = SerializeResponse(response, keep, omit_body);
    const int64_t flush_start_ns = MonotonicNanos();
    trace.serialize_seconds =
        static_cast<double>(flush_start_ns - serialize_start_ns) * 1e-9;
    trace.bytes_out = conn->outbox.size();
    conn->flush_start_ns = flush_start_ns;
  } else {
    conn->outbox = SerializeResponse(response, keep, omit_body);
  }
  conn->outbox_sent = 0;
  // One absolute budget for the whole response: progress (a trickle-
  // reading peer taking a byte at a time) does not restart it.
  ArmDeadline(conn, options_.write_timeout_ms);
  FlushOutbox(conn);
}

void HttpServer::FlushOutbox(Connection* conn) {
  const ScopedTracePhase profiled_phase(TracePhase::kFlush);
  while (conn->outbox_sent < conn->outbox.size()) {
    const ssize_t n = PosixSend(
        conn->fd.get(), conn->outbox.data() + conn->outbox_sent,
        conn->outbox.size() - conn->outbox_sent, MSG_NOSIGNAL, "socket.send");
    if (n > 0) {
      conn->outbox_sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      SetEpoll(conn, EPOLLOUT);  // resume when the socket drains
      return;
    }
    CloseConnection(conn);  // peer reset mid-response
    return;
  }
  // Fully flushed: the request is over — finalize and emit its trace
  // before the connection moves on (or goes away).
  FinishTrace(conn);
  if (conn->close_after_write) {
    CloseConnection(conn);
    return;
  }
  BeginNextRequest(conn);
}

void HttpServer::BeginNextRequest(Connection* conn) {
  if (draining_.load(std::memory_order_acquire)) {
    // Raced with drain after the keep-alive response was serialized.
    CloseConnection(conn);
    return;
  }
  SetPhase(conn, Connection::Phase::kReading);
  conn->request_start_ns = MonotonicNanos();
  conn->outbox.clear();
  conn->outbox_sent = 0;
  ArmDeadline(conn, options_.read_timeout_ms);
  SetEpoll(conn, EPOLLIN);
  // A pipelined request may already be buffered in the parser.
  const HttpRequestParser::State state = conn->parser.Continue();
  if (state == HttpRequestParser::State::kComplete) {
    DispatchRequest(conn);
  } else if (state == HttpRequestParser::State::kError) {
    FailParse(conn);
  }
}

void HttpServer::CloseConnection(Connection* conn) {
  SetEpoll(conn, 0);
  if (conn->trace != nullptr) {
    // A live trace here means the exchange never completed; unless a more
    // specific outcome was already recorded, the peer went away.
    if (conn->trace->outcome == "ok") conn->trace->outcome = "disconnect";
    FinishTrace(conn);
  }
  phase_counts_[static_cast<size_t>(conn->phase)].fetch_sub(
      1, std::memory_order_relaxed);
  if (conn->counted) --admitted_connections_;
  connections_.erase(conn->fd.get());  // destroys conn, closes the fd
}

void HttpServer::ArmDeadline(Connection* conn, int timeout_ms) {
  conn->deadline_ms = DeadlineAfterMillis(timeout_ms);
  if (conn->deadline_ms == kNoDeadline) return;
  // Lazy deletion: re-arming just pushes a fresh entry; stale ones are
  // filtered by TimerEntryLive when they surface.
  timers_.push(TimerEntry{conn->deadline_ms, conn->fd.get(),
                          conn->generation});
}

void HttpServer::SetEpoll(Connection* conn, uint32_t events) {
  if (events == 0) {
    if (conn->in_epoll) {
      ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, conn->fd.get(), nullptr);
      conn->in_epoll = false;
      conn->epoll_events = 0;
    }
    return;
  }
  if (conn->in_epoll && conn->epoll_events == events) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = conn->fd.get();
  const int op = conn->in_epoll ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
  if (::epoll_ctl(epoll_fd_.get(), op, conn->fd.get(), &ev) != 0) {
    // Only plausible for a dead fd; the close path tolerates that too.
    CloseConnection(conn);
    return;
  }
  conn->in_epoll = true;
  conn->epoll_events = events;
}

bool HttpServer::TimerEntryLive(const TimerEntry& entry) const {
  const auto it = connections_.find(entry.fd);
  return it != connections_.end() &&
         it->second->generation == entry.generation &&
         it->second->deadline_ms == entry.deadline_ms;
}

int HttpServer::NextTimeoutMillis() {
  while (!timers_.empty() && !TimerEntryLive(timers_.top())) {
    timers_.pop();
  }
  int64_t next = kNoDeadline;
  if (!timers_.empty()) next = timers_.top().deadline_ms;
  if (accept_paused_ &&
      (next == kNoDeadline || accept_resume_ms_ < next)) {
    next = accept_resume_ms_;
  }
  if (next == kNoDeadline) return -1;  // epoll_wait blocks until an event
  const int64_t remaining = next - MonotonicMillis();
  if (remaining <= 0) return 0;
  return static_cast<int>(std::min<int64_t>(remaining, 60'000));
}

void HttpServer::ExpireDeadlines() {
  const int64_t now = MonotonicMillis();
  MaybeResumeAccepting(now);
  for (;;) {
    while (!timers_.empty() && !TimerEntryLive(timers_.top())) {
      timers_.pop();
    }
    if (timers_.empty() || timers_.top().deadline_ms > now) return;
    const TimerEntry entry = timers_.top();
    timers_.pop();
    OnDeadline(connections_.find(entry.fd)->second.get());
  }
}

}  // namespace egp
