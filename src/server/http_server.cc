#include "server/http_server.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

namespace egp {

Result<std::unique_ptr<HttpServer>> HttpServer::Start(
    Handler handler, const HttpServerOptions& options) {
  if (!handler) return Status::InvalidArgument("null handler");
  if (options.max_connections == 0) {
    return Status::InvalidArgument("max_connections must be >= 1");
  }
  if (options.read_timeout_ms <= 0 || options.write_timeout_ms <= 0) {
    return Status::InvalidArgument("timeouts must be positive");
  }

  // unique_ptr because threads capture `this`: the server must never move.
  std::unique_ptr<HttpServer> server(new HttpServer());
  server->options_ = options;
  server->handler_ = std::move(handler);
  server->host_ = options.host;

  EGP_ASSIGN_OR_RETURN(
      server->listen_fd_,
      ListenTcp(options.host, options.port, options.listen_backlog,
                &server->port_));

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::IOError("pipe: failed to create shutdown pipe");
  }
  server->shutdown_pipe_read_ = UniqueFd(pipe_fds[0]);
  server->shutdown_pipe_write_ = UniqueFd(pipe_fds[1]);

  const unsigned workers =
      options.workers == 0 ? std::max(2u, Threads()) : options.workers;
  if (workers > 1) {
    // ThreadPool(n) supplies n-1 worker threads; the accept thread never
    // participates, so ask for workers+1 to get `workers` real threads.
    server->pool_ = std::make_unique<ThreadPool>(workers + 1);
  }
  server->accept_started_ = true;  // before spawn: Wait() keys off this
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

HttpServer::~HttpServer() {
  Shutdown();
  Wait();
  // Workers may still be finishing their final FinishConnection() notify;
  // pool destruction joins them (its queue is already empty: Wait()
  // returned only after every connection task completed).
  pool_.reset();
}

void HttpServer::Shutdown() {
  draining_.store(true, std::memory_order_release);
  // Wake the accept loop's poll. A full pipe is impossible here (we write
  // at most one byte per Shutdown call and the loop drains it), but even
  // EAGAIN would be fine: draining_ is already visible.
  const char byte = 'q';
  [[maybe_unused]] const ssize_t n =
      ::write(shutdown_pipe_write_.get(), &byte, 1);
}

void HttpServer::Wait() {
  {
    // A server whose Start failed before the accept thread spawned has
    // nothing to wait for (its destructor still runs this path).
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return accept_exited_ || !accept_started_; });
  }
  // Serialize the join so concurrent Wait() callers (say, the owner and
  // the destructor) can't race on the thread object.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (accept_thread_.joinable()) accept_thread_.join();
}

HttpServerStats HttpServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void HttpServer::AcceptLoop() {
  for (;;) {
    struct pollfd fds[2];
    fds[0].fd = listen_fd_.get();
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = shutdown_pipe_read_.get();
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // poll on our own sockets failing is unrecoverable
    }
    if ((fds[1].revents & POLLIN) != 0 ||
        draining_.load(std::memory_order_acquire)) {
      // A byte on the self-pipe (signal handler path) must have the same
      // effect as Shutdown(): make the drain visible to workers too.
      draining_.store(true, std::memory_order_release);
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;

    auto conn = AcceptConnection(listen_fd_.get());
    if (!conn.ok()) {
      // Transient (ECONNABORTED, EMFILE, ...): keep serving. A hard
      // listener failure shows up as poll errors next round.
      continue;
    }

    if (active_connections_.load(std::memory_order_acquire) >=
        options_.max_connections) {
      // Backpressure: answer 503 right here (short write budget; a peer
      // too slow to take 120 bytes forfeits the courtesy) and move on.
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.rejected_connections;
      }
      HttpResponse response;
      response.status = 503;
      response.body = JsonErrorBody(503, "server at connection capacity");
      response.headers.emplace_back("Retry-After", "1");
      SendAll(conn->get(), SerializeResponse(response, false), 100);
      continue;
    }

    active_connections_.fetch_add(1, std::memory_order_acq_rel);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.accepted_connections;
    }
    if (pool_ != nullptr) {
      // std::function needs copyable captures: pass the raw fd through
      // and re-wrap inside the task.
      const int raw = conn->Release();
      pool_->Submit([this, raw] {
        ServeConnection(UniqueFd(raw));
        FinishConnection();
      });
    } else {
      ServeConnection(std::move(conn).value());
      FinishConnection();
    }
  }

  // Drain: no new connections; in-flight ones observe draining_ and
  // close after their current request.
  listen_fd_.Reset();
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] {
    return active_connections_.load(std::memory_order_acquire) == 0;
  });
  accept_exited_ = true;
  idle_.notify_all();
}

void HttpServer::FinishConnection() {
  if (active_connections_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last one out: wake the drain wait (and anyone in Wait()). The lock
    // pairs with the condition check so the notify can't be missed.
    std::lock_guard<std::mutex> lock(mu_);
    idle_.notify_all();
  }
}

void HttpServer::ServeConnection(UniqueFd fd) {
  HttpRequestParser parser(options_.limits);
  char buf[16 * 1024];
  size_t served = 0;

  for (;;) {
    // ---- Read one full request, staying responsive to drain: the
    // timeout budget is spent in short poll slices so a drain never
    // waits out a 10 s idle keep-alive read.
    HttpRequestParser::State state = parser.Continue();
    int waited_ms = 0;
    bool connection_dead = false;
    while (state == HttpRequestParser::State::kNeedMore) {
      if (draining_.load(std::memory_order_acquire) &&
          parser.AtMessageBoundary()) {
        return;  // idle between requests: close immediately
      }
      const int slice = std::min(250, options_.read_timeout_ms - waited_ms);
      if (slice <= 0) {
        // Timed out. Mid-request gets a 408; silence would leave the
        // client guessing. Between requests it is just an idle close.
        // (Stats update precedes the send so a client that reads the
        // response immediately observes them.)
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.timed_out_connections;
        }
        if (!parser.AtMessageBoundary()) {
          HttpResponse timeout;
          timeout.status = 408;
          timeout.body = JsonErrorBody(408, "timed out reading request");
          SendAll(fd.get(), SerializeResponse(timeout, false),
                  options_.write_timeout_ms);
        }
        return;
      }
      const IoResult r = RecvSome(fd.get(), buf, sizeof(buf), slice);
      if (r.status == IoStatus::kTimeout) {
        waited_ms += slice;
        continue;
      }
      if (r.status != IoStatus::kOk) {
        connection_dead = true;  // EOF or socket error
        break;
      }
      waited_ms = 0;  // progress resets the stall budget
      state = parser.Feed(std::string_view(buf, r.bytes));
    }
    if (connection_dead) return;

    if (state == HttpRequestParser::State::kError) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.parse_errors;
        ++stats_.handled_requests;
      }
      HttpResponse error;
      error.status = parser.error_status();
      error.body = JsonErrorBody(parser.error_status(), parser.error_message());
      SendAll(fd.get(), SerializeResponse(error, false),
              options_.write_timeout_ms);
      return;
    }

    // ---- Dispatch.
    const HttpRequest request = parser.Take();
    ++served;
    HttpResponse response;
    try {
      response = handler_(request);
    } catch (const std::exception& e) {
      response = HttpResponse{};
      response.status = 500;
      response.body = JsonErrorBody(500, std::string("handler error: ") + e.what());
      response.close_connection = true;
    } catch (...) {
      response = HttpResponse{};
      response.status = 500;
      response.body = JsonErrorBody(500, "handler error");
      response.close_connection = true;
    }

    const bool keep = request.KeepAlive() &&
                      served < options_.max_requests_per_connection &&
                      !draining_.load(std::memory_order_acquire) &&
                      !response.close_connection;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.handled_requests;
    }
    // HEAD gets the head only; Content-Length still describes the body
    // the corresponding GET would have sent.
    const IoResult w = SendAll(
        fd.get(),
        SerializeResponse(response, keep,
                          /*omit_body=*/request.method == "HEAD"),
        options_.write_timeout_ms);
    if (w.status == IoStatus::kTimeout) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.timed_out_connections;
    }
    if (w.status != IoStatus::kOk || !keep) return;
  }
}

}  // namespace egp
