#include "server/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace egp {
namespace {

Status ErrnoStatus(const std::string& what, int err) {
  return Status::IOError(what + ": " + std::strerror(err));
}

void SetNoDelay(int fd) {
  int one = 1;
  // Best effort: latency tuning, not correctness.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void SetCloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

/// Connections must be non-blocking: the timed I/O below is poll + a
/// non-blocking syscall per step. On a *blocking* socket, send() past
/// POLLOUT can still park the thread until the peer drains its window —
/// which would let a stalled reader defeat the write timeout entirely.
void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// poll() for `events`, retrying on EINTR with the remaining budget. A
/// negative timeout waits forever.
IoResult PollFor(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  for (;;) {
    pfd.revents = 0;
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n > 0) return IoResult{IoStatus::kOk, 0, 0};
    if (n == 0) return IoResult{IoStatus::kTimeout, 0, 0};
    if (errno != EINTR) return IoResult{IoStatus::kError, 0, errno};
    // EINTR: retry. The residual-budget bookkeeping isn't worth it for
    // the coarse timeouts used here; a signal storm only extends the
    // wait, never shortens it below the request.
  }
}

}  // namespace

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog, uint16_t* bound_port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: '" + host + "'");
  }

  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket", errno);
  SetCloexec(fd.get());
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return ErrnoStatus("bind " + host + ":" + std::to_string(port), errno);
  }
  if (::listen(fd.get(), backlog) != 0) {
    return ErrnoStatus("listen", errno);
  }
  if (bound_port != nullptr) {
    struct sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<struct sockaddr*>(&bound),
                      &len) != 0) {
      return ErrnoStatus("getsockname", errno);
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

Result<UniqueFd> AcceptConnection(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      UniqueFd conn(fd);
      SetCloexec(fd);
      SetNoDelay(fd);
      SetNonBlocking(fd);
      return conn;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("accept", errno);
  }
}

Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port,
                            int timeout_ms) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: '" + host + "'");
  }

  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0));
  if (!fd.valid()) return ErrnoStatus("socket", errno);
  SetCloexec(fd.get());

  if (::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      return ErrnoStatus("connect " + host + ":" + std::to_string(port),
                         errno);
    }
    const IoResult wait = PollFor(fd.get(), POLLOUT, timeout_ms);
    if (wait.status == IoStatus::kTimeout) {
      return Status::IOError("connect " + host + ":" + std::to_string(port) +
                             ": timed out");
    }
    if (wait.status == IoStatus::kError) {
      return ErrnoStatus("connect poll", wait.error);
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
      return ErrnoStatus("getsockopt", errno);
    }
    if (so_error != 0) {
      return ErrnoStatus("connect " + host + ":" + std::to_string(port),
                         so_error);
    }
  }

  // Stays non-blocking: all I/O on it goes through the timed helpers.
  SetNoDelay(fd.get());
  return fd;
}

IoResult RecvSome(int fd, char* buf, size_t len, int timeout_ms) {
  for (;;) {
    const IoResult wait = PollFor(fd, POLLIN, timeout_ms);
    if (wait.status != IoStatus::kOk) return wait;
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n > 0) return IoResult{IoStatus::kOk, static_cast<size_t>(n), 0};
    if (n == 0) return IoResult{IoStatus::kEof, 0, 0};
    // EAGAIN after POLLIN is a spurious wakeup on a non-blocking socket:
    // re-poll rather than spin.
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return IoResult{IoStatus::kError, 0, errno};
  }
}

IoResult SendAll(int fd, std::string_view data, int timeout_ms) {
  size_t sent = 0;
  while (sent < data.size()) {
    const IoResult wait = PollFor(fd, POLLOUT, timeout_ms);
    if (wait.status != IoStatus::kOk) {
      return IoResult{wait.status, sent, wait.error};
    }
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n >= 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return IoResult{IoStatus::kError, sent, errno};
  }
  return IoResult{IoStatus::kOk, sent, 0};
}

IoResult WaitReadable(int fd, int timeout_ms) {
  return PollFor(fd, POLLIN, timeout_ms);
}

}  // namespace egp
