#include "server/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstring>

#include "common/fault.h"
#include "common/posix.h"

namespace egp {
namespace {

Status ErrnoStatus(const std::string& what, int err) {
  return Status::IOError(what + ": " + std::strerror(err));
}

void SetNoDelay(int fd) {
  int one = 1;
  // Best effort: latency tuning, not correctness.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void SetCloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

/// poll() for `events` until the absolute deadline, retrying on EINTR
/// with the *remaining* budget — the clock never restarts, so neither a
/// signal storm nor a trickling peer can stretch the wait past the
/// deadline. kNoDeadline waits forever.
IoResult PollUntil(int fd, short events, int64_t deadline_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  for (;;) {
    int wait_ms = -1;
    if (deadline_ms != kNoDeadline) {
      const int64_t remaining = deadline_ms - MonotonicMillis();
      if (remaining <= 0) return IoResult{IoStatus::kTimeout, 0, 0};
      wait_ms = static_cast<int>(std::min<int64_t>(remaining, INT_MAX));
    }
    pfd.revents = 0;
    const int n = ::poll(&pfd, 1, wait_ms);
    if (n > 0) return IoResult{IoStatus::kOk, 0, 0};
    if (n == 0) return IoResult{IoStatus::kTimeout, 0, 0};
    if (errno != EINTR) return IoResult{IoStatus::kError, 0, errno};
  }
}

}  // namespace

int64_t MonotonicMillis() {
  struct timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1'000'000;
}

int64_t DeadlineAfterMillis(int timeout_ms) {
  return timeout_ms < 0 ? kNoDeadline : MonotonicMillis() + timeout_ms;
}

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

/// Connections must be non-blocking: the timed I/O below is poll + a
/// non-blocking syscall per step. On a *blocking* socket, send() past
/// POLLOUT can still park the thread until the peer drains its window —
/// which would let a stalled reader defeat the write deadline entirely.
void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog, uint16_t* bound_port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: '" + host + "'");
  }

  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket", errno);
  SetCloexec(fd.get());
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return ErrnoStatus("bind " + host + ":" + std::to_string(port), errno);
  }
  if (::listen(fd.get(), backlog) != 0) {
    return ErrnoStatus("listen", errno);
  }
  if (bound_port != nullptr) {
    struct sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<struct sockaddr*>(&bound),
                      &len) != 0) {
      return ErrnoStatus("getsockname", errno);
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

Result<UniqueFd> AcceptConnection(int listen_fd) {
  const int fd = PosixAccept4(listen_fd, SOCK_CLOEXEC, "socket.accept");
  if (fd < 0) return ErrnoStatus("accept", errno);
  UniqueFd conn(fd);
  SetNoDelay(fd);
  SetNonBlocking(fd);
  return conn;
}

Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port,
                            int timeout_ms) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: '" + host + "'");
  }

  const FaultOutcome fault = FaultCheck("socket.connect");
  if (fault.kind == FaultOutcome::Kind::kErrno ||
      fault.kind == FaultOutcome::Kind::kFail) {
    const int err =
        fault.kind == FaultOutcome::Kind::kErrno ? fault.err : EIO;
    return ErrnoStatus("connect " + host + ":" + std::to_string(port), err);
  }

  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0));
  if (!fd.valid()) return ErrnoStatus("socket", errno);
  SetCloexec(fd.get());

  if (::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      return ErrnoStatus("connect " + host + ":" + std::to_string(port),
                         errno);
    }
    const IoResult wait =
        PollUntil(fd.get(), POLLOUT, DeadlineAfterMillis(timeout_ms));
    if (wait.status == IoStatus::kTimeout) {
      return Status::IOError("connect " + host + ":" + std::to_string(port) +
                             ": timed out");
    }
    if (wait.status == IoStatus::kError) {
      return ErrnoStatus("connect poll", wait.error);
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
      return ErrnoStatus("getsockopt", errno);
    }
    if (so_error != 0) {
      return ErrnoStatus("connect " + host + ":" + std::to_string(port),
                         so_error);
    }
  }

  // Stays non-blocking: all I/O on it goes through the timed helpers.
  SetNoDelay(fd.get());
  return fd;
}

IoResult RecvSomeUntil(int fd, char* buf, size_t len, int64_t deadline_ms) {
  for (;;) {
    const IoResult wait = PollUntil(fd, POLLIN, deadline_ms);
    if (wait.status != IoStatus::kOk) return wait;
    const ssize_t n = PosixRecv(fd, buf, len, 0, "socket.recv");
    if (n > 0) return IoResult{IoStatus::kOk, static_cast<size_t>(n), 0};
    if (n == 0) return IoResult{IoStatus::kEof, 0, 0};
    // EAGAIN after POLLIN is a spurious wakeup on a non-blocking socket:
    // re-poll (against the same deadline) rather than spin. EINTR is
    // retried inside PosixRecv.
    if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return IoResult{IoStatus::kError, 0, errno};
  }
}

IoResult SendAllUntil(int fd, std::string_view data, int64_t deadline_ms) {
  size_t sent = 0;
  while (sent < data.size()) {
    const IoResult wait = PollUntil(fd, POLLOUT, deadline_ms);
    if (wait.status != IoStatus::kOk) {
      return IoResult{wait.status, sent, wait.error};
    }
    const ssize_t n = PosixSend(fd, data.data() + sent, data.size() - sent,
                                MSG_NOSIGNAL, "socket.send");
    if (n >= 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return IoResult{IoStatus::kError, sent, errno};
  }
  return IoResult{IoStatus::kOk, sent, 0};
}

IoResult RecvSome(int fd, char* buf, size_t len, int timeout_ms) {
  return RecvSomeUntil(fd, buf, len, DeadlineAfterMillis(timeout_ms));
}

IoResult SendAll(int fd, std::string_view data, int timeout_ms) {
  return SendAllUntil(fd, data, DeadlineAfterMillis(timeout_ms));
}

IoResult WaitReadable(int fd, int timeout_ms) {
  return PollUntil(fd, POLLIN, DeadlineAfterMillis(timeout_ms));
}

}  // namespace egp
