// Process-level gauges for /metrics: resident memory, open descriptor
// count, and uptime. Read straight from /proc (Linux); on failure each
// field degrades to its zero value rather than erroring the scrape.
#ifndef EGP_SERVER_PROCESS_STATS_H_
#define EGP_SERVER_PROCESS_STATS_H_

#include <cstdint>

namespace egp {

struct ProcessStats {
  uint64_t resident_bytes = 0;  // RSS from /proc/self/statm
  uint64_t open_fds = 0;        // entries in /proc/self/fd
  double uptime_seconds = 0.0;  // since the process-stats clock anchor
};

/// Snapshot of the current process. Cheap enough for every scrape.
ProcessStats ReadProcessStats();

}  // namespace egp

#endif  // EGP_SERVER_PROCESS_STATS_H_
