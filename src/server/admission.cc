#include "server/admission.h"

#include <chrono>

namespace egp {

AdmissionController::Ticket AdmissionController::AcquireCold() {
  MutexLock lock(&mu_);
  if (options_.max_cold_inflight == 0) {  // admission control off
    ++cold_inflight_;
    ++cold_admitted_;
    return Ticket(this);
  }
  if (cold_inflight_ < options_.max_cold_inflight) {
    ++cold_inflight_;
    ++cold_admitted_;
    return Ticket(this);
  }
  if (waiting_ >= options_.max_cold_queue) {
    ++cold_shed_;
    return Ticket();
  }
  ++waiting_;
  ++cold_queued_;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.queue_timeout_ms);
  bool timed_out = false;
  while (!timed_out && cold_inflight_ >= options_.max_cold_inflight) {
    timed_out = !slot_freed_.WaitUntil(mu_, deadline);
  }
  --waiting_;
  if (cold_inflight_ >= options_.max_cold_inflight) {
    ++cold_shed_;
    return Ticket();
  }
  ++cold_inflight_;
  ++cold_admitted_;
  return Ticket(this);
}

void AdmissionController::RecordHot() {
  MutexLock lock(&mu_);
  ++hot_admitted_;
}

void AdmissionController::Release() {
  MutexLock lock(&mu_);
  --cold_inflight_;
  slot_freed_.NotifyOne();
}

AdmissionStats AdmissionController::stats() const {
  MutexLock lock(&mu_);
  AdmissionStats stats;
  stats.hot_admitted = hot_admitted_;
  stats.cold_admitted = cold_admitted_;
  stats.cold_queued = cold_queued_;
  stats.cold_shed = cold_shed_;
  stats.cold_inflight = cold_inflight_;
  stats.cold_queue_depth = waiting_;
  return stats;
}

}  // namespace egp
