// Structured JSON-lines access logging: one self-contained JSON object
// per completed request, built from the transport's RequestTrace. The
// line carries the full phase breakdown (read/queue/admission/handler/
// serialize/flush), byte counts, Engine timings, and the outcome — the
// per-request causality that /metrics aggregates away.
//
// Lines are level-gated through the process log level: a normal request
// logs at INFO, and a request slower than `slow_request_ms` is promoted
// to WARNING (so `--log-level warning` keeps exactly the slow-request
// forensics and drops the rest).
#ifndef EGP_SERVER_ACCESS_LOG_H_
#define EGP_SERVER_ACCESS_LOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

#include "common/mutex.h"
#include "common/result.h"
#include "common/trace.h"

namespace egp {

/// The access-log JSON document for one trace (no trailing newline).
/// `level` ("info"/"warning"), when non-empty, is included as a field —
/// the access log sets it; the flight-recorder endpoint leaves it out.
std::string RequestTraceToJson(const RequestTrace& trace,
                               std::string_view level = {});

struct AccessLogOptions {
  /// Destination: a file path (append mode) or the literal "stderr".
  std::string path = "stderr";
  /// Requests with total latency above this are logged at WARNING
  /// instead of INFO. Negative: never promote.
  double slow_request_ms = -1.0;
};

/// Thread-safe JSON-lines sink; one instance per server process.
class AccessLog {
 public:
  static Result<std::unique_ptr<AccessLog>> Open(
      const AccessLogOptions& options);
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Emits one line for `trace`, subject to the process log level.
  void Write(const RequestTrace& trace);

  /// Lines actually written (post level-gating); for tests.
  uint64_t lines_written() const;

 private:
  AccessLog(std::FILE* stream, bool owns_stream,
            const AccessLogOptions& options)
      : options_(options), stream_(stream), owns_stream_(owns_stream) {}

  const AccessLogOptions options_;
  mutable Mutex mu_{"access_log"};
  std::FILE* stream_ EGP_GUARDED_BY(mu_);
  const bool owns_stream_;
  uint64_t lines_ EGP_GUARDED_BY(mu_) = 0;
};

}  // namespace egp

#endif  // EGP_SERVER_ACCESS_LOG_H_
