#include "server/metrics.h"

#include "common/strings.h"

namespace egp {

void LatencyHistogram::Observe(double seconds) {
  if (seconds < 0) seconds = 0;
  size_t bucket = kBounds.size();  // +Inf
  for (size_t i = 0; i < kBounds.size(); ++i) {
    if (seconds <= kBounds[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                       std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot snap;
  uint64_t running = 0;
  for (size_t i = 0; i < kBounds.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    snap.cumulative[i] = running;
  }
  snap.count =
      running + buckets_[kBounds.size()].load(std::memory_order_relaxed);
  snap.sum_seconds =
      static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  return snap;
}

double LatencyHistogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const double rank = q * static_cast<double>(count);
  uint64_t previous = 0;
  for (size_t i = 0; i < kBounds.size(); ++i) {
    if (static_cast<double>(cumulative[i]) >= rank) {
      const uint64_t in_bucket = cumulative[i] - previous;
      const double lower = i == 0 ? 0.0 : kBounds[i - 1];
      const double upper = kBounds[i];
      if (in_bucket == 0) return upper;
      const double frac =
          (rank - static_cast<double>(previous)) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * frac;
    }
    previous = cumulative[i];
  }
  return kBounds.back();  // fell in +Inf: report the largest finite bound
}

void ServerMetrics::RecordRequest(std::string_view endpoint, int status,
                                  double seconds) {
  latency_.Observe(seconds);
  MutexLock lock(&mu_);
  ++counts_[{std::string(endpoint), status}];
}

std::vector<ServerMetrics::RequestCount> ServerMetrics::request_counts()
    const {
  MutexLock lock(&mu_);
  std::vector<RequestCount> out;
  out.reserve(counts_.size());
  for (const auto& [key, count] : counts_) {
    out.push_back(RequestCount{key.first, key.second, count});
  }
  return out;
}

uint64_t ServerMetrics::total_requests() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& [key, count] : counts_) total += count;
  return total;
}

void AppendMetricHeader(std::string* out, std::string_view name,
                        std::string_view type, std::string_view help) {
  out->append("# HELP ").append(name).append(" ").append(help).append("\n");
  out->append("# TYPE ").append(name).append(" ").append(type).append("\n");
}

void AppendMetric(std::string* out, std::string_view name,
                  std::string_view labels, double value) {
  out->append(name);
  if (!labels.empty()) out->append("{").append(labels).append("}");
  out->append(" ").append(StrFormat("%.9g", value)).append("\n");
}

void AppendMetric(std::string* out, std::string_view name,
                  std::string_view labels, uint64_t value) {
  out->append(name);
  if (!labels.empty()) out->append("{").append(labels).append("}");
  out->append(" ").append(std::to_string(value)).append("\n");
}

void AppendHistogram(std::string* out, std::string_view name,
                     std::string_view help,
                     const LatencyHistogram::Snapshot& snap) {
  AppendMetricHeader(out, name, "histogram", help);
  const std::string bucket_name = std::string(name) + "_bucket";
  for (size_t i = 0; i < LatencyHistogram::kBounds.size(); ++i) {
    AppendMetric(out, bucket_name,
                 "le=\"" + StrFormat("%g", LatencyHistogram::kBounds[i]) +
                     "\"",
                 snap.cumulative[i]);
  }
  AppendMetric(out, bucket_name, "le=\"+Inf\"", snap.count);
  AppendMetric(out, std::string(name) + "_sum", "", snap.sum_seconds);
  AppendMetric(out, std::string(name) + "_count", "", snap.count);
}

std::string ServerMetrics::PrometheusText() const {
  std::string out;
  out.reserve(2048);

  AppendMetricHeader(&out, "egp_http_requests_total", "counter",
                     "Requests served, by endpoint and status.");
  for (const RequestCount& rc : request_counts()) {
    AppendMetric(&out, "egp_http_requests_total",
                 "endpoint=\"" + rc.endpoint +
                     "\",status=\"" + std::to_string(rc.status) + "\"",
                 rc.count);
  }

  AppendHistogram(&out, "egp_http_request_duration_seconds",
                  "End-to-end request handling latency.",
                  latency_.snapshot());
  return out;
}

}  // namespace egp
