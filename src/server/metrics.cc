#include "server/metrics.h"

#include "common/strings.h"

namespace egp {

void LatencyHistogram::Observe(double seconds) {
  if (seconds < 0) seconds = 0;
  size_t bucket = kBounds.size();  // +Inf
  for (size_t i = 0; i < kBounds.size(); ++i) {
    if (seconds <= kBounds[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                       std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot snap;
  uint64_t running = 0;
  for (size_t i = 0; i < kBounds.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    snap.cumulative[i] = running;
  }
  snap.count =
      running + buckets_[kBounds.size()].load(std::memory_order_relaxed);
  snap.sum_seconds =
      static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  return snap;
}

double LatencyHistogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const double rank = q * static_cast<double>(count);
  uint64_t previous = 0;
  for (size_t i = 0; i < kBounds.size(); ++i) {
    if (static_cast<double>(cumulative[i]) >= rank) {
      const uint64_t in_bucket = cumulative[i] - previous;
      const double lower = i == 0 ? 0.0 : kBounds[i - 1];
      const double upper = kBounds[i];
      if (in_bucket == 0) return upper;
      const double frac =
          (rank - static_cast<double>(previous)) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * frac;
    }
    previous = cumulative[i];
  }
  return kBounds.back();  // fell in +Inf: report the largest finite bound
}

void ServerMetrics::RecordRequest(std::string_view endpoint, int status,
                                  double seconds) {
  latency_.Observe(seconds);
  MutexLock lock(&mu_);
  ++counts_[{std::string(endpoint), status}];
}

void ServerMetrics::RecordDataset(std::string_view dataset, int status,
                                  double seconds) {
  LatencyHistogram* histogram = nullptr;
  {
    MutexLock lock(&mu_);
    ++dataset_counts_[{std::string(dataset), status}];
    auto& slot = dataset_latency_[std::string(dataset)];
    if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
    histogram = slot.get();
  }
  histogram->Observe(seconds);  // atomics only; no need to hold mu_
}

std::vector<ServerMetrics::DatasetCount> ServerMetrics::dataset_counts()
    const {
  MutexLock lock(&mu_);
  std::vector<DatasetCount> out;
  out.reserve(dataset_counts_.size());
  for (const auto& [key, count] : dataset_counts_) {
    out.push_back(DatasetCount{key.first, key.second, count});
  }
  return out;
}

std::vector<std::pair<std::string, LatencyHistogram::Snapshot>>
ServerMetrics::dataset_latency() const {
  MutexLock lock(&mu_);
  std::vector<std::pair<std::string, LatencyHistogram::Snapshot>> out;
  out.reserve(dataset_latency_.size());
  for (const auto& [dataset, histogram] : dataset_latency_) {
    out.emplace_back(dataset, histogram->snapshot());
  }
  return out;
}

std::vector<ServerMetrics::RequestCount> ServerMetrics::request_counts()
    const {
  MutexLock lock(&mu_);
  std::vector<RequestCount> out;
  out.reserve(counts_.size());
  for (const auto& [key, count] : counts_) {
    out.push_back(RequestCount{key.first, key.second, count});
  }
  return out;
}

uint64_t ServerMetrics::total_requests() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& [key, count] : counts_) total += count;
  return total;
}

void AppendMetricHeader(std::string* out, std::string_view name,
                        std::string_view type, std::string_view help) {
  out->append("# HELP ").append(name).append(" ").append(help).append("\n");
  out->append("# TYPE ").append(name).append(" ").append(type).append("\n");
}

void AppendMetric(std::string* out, std::string_view name,
                  std::string_view labels, double value) {
  out->append(name);
  if (!labels.empty()) out->append("{").append(labels).append("}");
  out->append(" ").append(StrFormat("%.9g", value)).append("\n");
}

void AppendMetric(std::string* out, std::string_view name,
                  std::string_view labels, uint64_t value) {
  out->append(name);
  if (!labels.empty()) out->append("{").append(labels).append("}");
  out->append(" ").append(std::to_string(value)).append("\n");
}

void AppendHistogram(std::string* out, std::string_view name,
                     std::string_view help,
                     const LatencyHistogram::Snapshot& snap) {
  AppendMetricHeader(out, name, "histogram", help);
  AppendHistogramSamples(out, name, "", snap);
}

void AppendHistogramSamples(std::string* out, std::string_view name,
                            std::string_view label_prefix,
                            const LatencyHistogram::Snapshot& snap) {
  const std::string bucket_name = std::string(name) + "_bucket";
  const std::string prefix =
      label_prefix.empty() ? std::string() : std::string(label_prefix) + ",";
  for (size_t i = 0; i < LatencyHistogram::kBounds.size(); ++i) {
    AppendMetric(out, bucket_name,
                 prefix + "le=\"" + StrFormat("%g", LatencyHistogram::kBounds[i]) +
                     "\"",
                 snap.cumulative[i]);
  }
  AppendMetric(out, bucket_name, prefix + "le=\"+Inf\"", snap.count);
  AppendMetric(out, std::string(name) + "_sum", label_prefix,
               snap.sum_seconds);
  AppendMetric(out, std::string(name) + "_count", label_prefix, snap.count);
}

std::string ServerMetrics::PrometheusText() const {
  std::string out;
  out.reserve(2048);

  AppendMetricHeader(&out, "egp_http_requests_total", "counter",
                     "Requests served, by endpoint and status.");
  for (const RequestCount& rc : request_counts()) {
    AppendMetric(&out, "egp_http_requests_total",
                 "endpoint=\"" + rc.endpoint +
                     "\",status=\"" + std::to_string(rc.status) + "\"",
                 rc.count);
  }

  AppendHistogram(&out, "egp_http_request_duration_seconds",
                  "End-to-end request handling latency.",
                  latency_.snapshot());

  // Dataset-scoped series appear once the first dataset request lands;
  // a headed histogram family with zero series would fail the
  // exposition-grammar check, so both families are emitted only when
  // non-empty.
  const auto by_dataset = dataset_counts();
  if (!by_dataset.empty()) {
    AppendMetricHeader(&out, "egp_requests_total", "counter",
                       "Dataset-scoped requests, by dataset and status.");
    for (const DatasetCount& dc : by_dataset) {
      AppendMetric(&out, "egp_requests_total",
                   "dataset=\"" + dc.dataset +
                       "\",status=\"" + std::to_string(dc.status) + "\"",
                   dc.count);
    }
  }
  const auto dataset_histograms = dataset_latency();
  if (!dataset_histograms.empty()) {
    AppendMetricHeader(&out, "egp_dataset_request_duration_seconds",
                       "histogram",
                       "Dataset-scoped request latency, by dataset.");
    for (const auto& [dataset, snap] : dataset_histograms) {
      AppendHistogramSamples(&out, "egp_dataset_request_duration_seconds",
                             "dataset=\"" + dataset + "\"", snap);
    }
  }
  return out;
}

}  // namespace egp
