// Thin POSIX TCP layer for the serving subsystem: RAII descriptors,
// listener/connect helpers, and deadline-based timed I/O. No third-party
// network dependency — everything sits directly on <sys/socket.h>.
//
// All timed I/O here is budgeted against an *absolute* CLOCK_MONOTONIC
// deadline, not a per-poll-iteration stall allowance. A peer that
// trickles one byte per poll window therefore cannot extend a "timed"
// operation past its total budget (that restart-the-clock bug is exactly
// how slow clients used to pin workers forever). The convenience
// timeout_ms entry points convert to a deadline exactly once, on entry.
#ifndef EGP_SERVER_SOCKET_H_
#define EGP_SERVER_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace egp {

/// Owns one file descriptor; closes it on destruction. Movable.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset();

 private:
  int fd_ = -1;
};

/// Outcome of one timed I/O step.
enum class IoStatus : uint8_t {
  kOk = 0,    // made progress (bytes transferred)
  kEof,       // orderly shutdown from the peer (recv only)
  kTimeout,   // the deadline passed before the operation completed
  kError,     // socket error (errno captured)
};

struct [[nodiscard]] IoResult {
  IoStatus status = IoStatus::kOk;
  size_t bytes = 0;  // transferred this call (kOk; partial on kTimeout too)
  int error = 0;     // errno for kError
};

/// CLOCK_MONOTONIC now, in milliseconds. The time base for every
/// deadline below (and for the event loop's per-connection timers).
int64_t MonotonicMillis();

/// No-deadline sentinel: wait forever.
inline constexpr int64_t kNoDeadline = -1;

/// `timeout_ms` from now as an absolute deadline (negative → kNoDeadline).
int64_t DeadlineAfterMillis(int timeout_ms);

/// A listening IPv4 TCP socket bound to host:port (REUSEADDR set).
/// `port` 0 binds an ephemeral port; `bound_port` receives the actual
/// one. `host` must be a dotted-quad address ("127.0.0.1", "0.0.0.0").
Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog, uint16_t* bound_port);

/// Accepts one pending connection (the caller polled for readiness);
/// sets TCP_NODELAY so small request/response exchanges aren't Nagled.
Result<UniqueFd> AcceptConnection(int listen_fd);

/// Connects to host:port with a handshake timeout. TCP_NODELAY set.
Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port,
                            int timeout_ms);

/// Makes `fd` non-blocking (best effort). Connections from
/// AcceptConnection/ConnectTcp already are; this is for descriptors
/// created elsewhere (listen sockets feeding an event loop, pipes).
void SetNonBlocking(int fd);

/// Receives up to `len` bytes, waiting until `deadline_ms` (absolute,
/// MonotonicMillis base; kNoDeadline waits forever) for the first byte.
IoResult RecvSomeUntil(int fd, char* buf, size_t len, int64_t deadline_ms);

/// Sends all of `data` before `deadline_ms` passes. The deadline bounds
/// the WHOLE send: partial progress never restarts the clock. On
/// kTimeout, `bytes` reports how much was sent.
IoResult SendAllUntil(int fd, std::string_view data, int64_t deadline_ms);

/// Receives up to `len` bytes within a total budget of `timeout_ms` from
/// now (-1 waits forever).
IoResult RecvSome(int fd, char* buf, size_t len, int timeout_ms);

/// Sends all of `data` within a total budget of `timeout_ms` from now
/// (-1 waits forever).
IoResult SendAll(int fd, std::string_view data, int timeout_ms);

/// Blocks until `fd` is readable or `timeout_ms` expires. Used by
/// test clients and tools.
IoResult WaitReadable(int fd, int timeout_ms);

}  // namespace egp

#endif  // EGP_SERVER_SOCKET_H_
