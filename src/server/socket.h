// Thin POSIX TCP layer for the serving subsystem: RAII descriptors,
// listener/connect helpers, and poll-based timed I/O. No third-party
// network dependency — everything sits directly on <sys/socket.h>.
//
// All I/O here is *timed*: a slow or stalled peer can never park a server
// worker forever. Timeouts are per poll wait (time to the next byte of
// progress), not per whole message — the HTTP layer above composes them
// into per-request behaviour.
#ifndef EGP_SERVER_SOCKET_H_
#define EGP_SERVER_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace egp {

/// Owns one file descriptor; closes it on destruction. Movable.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset();

 private:
  int fd_ = -1;
};

/// Outcome of one timed I/O step.
enum class IoStatus : uint8_t {
  kOk = 0,    // made progress (bytes transferred)
  kEof,       // orderly shutdown from the peer (recv only)
  kTimeout,   // no progress within the allowed time
  kError,     // socket error (errno captured)
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  size_t bytes = 0;  // transferred this call (kOk only)
  int error = 0;     // errno for kError
};

/// A listening IPv4 TCP socket bound to host:port (REUSEADDR set).
/// `port` 0 binds an ephemeral port; `bound_port` receives the actual
/// one. `host` must be a dotted-quad address ("127.0.0.1", "0.0.0.0").
Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog, uint16_t* bound_port);

/// Accepts one pending connection (the caller polled for readiness);
/// sets TCP_NODELAY so small request/response exchanges aren't Nagled.
Result<UniqueFd> AcceptConnection(int listen_fd);

/// Connects to host:port with a handshake timeout. TCP_NODELAY set.
Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port,
                            int timeout_ms);

/// Receives up to `len` bytes, waiting at most `timeout_ms` for the
/// first byte (-1 waits forever).
IoResult RecvSome(int fd, char* buf, size_t len, int timeout_ms);

/// Sends all of `data`, allowing up to `timeout_ms` of stall between
/// progress steps. Partial progress then a stall is a kTimeout.
IoResult SendAll(int fd, std::string_view data, int timeout_ms);

/// Blocks until `fd` is readable or `timeout_ms` expires. Used by accept
/// loops (with the shutdown pipe) and test clients.
IoResult WaitReadable(int fd, int timeout_ms);

}  // namespace egp

#endif  // EGP_SERVER_SOCKET_H_
