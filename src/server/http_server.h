// HttpServer: the transport half of the serving subsystem — a single
// epoll (level-triggered) event-loop thread plus a ThreadPool used ONLY
// for handler compute.
//
// Architecture (the ROADMAP's "event-loop serving core" layer):
//   * one loop thread owns every connection: it accepts, does all
//     non-blocking reads and writes, and arms one deadline timer per
//     connection (a lazy-deletion min-heap; epoll_wait's timeout is the
//     nearest deadline). No thread ever blocks on a socket.
//   * when a full request has been parsed, the connection is taken out
//     of epoll and the handler runs as one ThreadPool task; the finished
//     response comes back to the loop over a completion queue + wakeup
//     pipe and is flushed non-blockingly. A slow or stalled client
//     therefore costs one idle connection object, never a pinned worker
//     — tail latency survives trickle-readers and trickle-writers.
//   * deadlines are whole-exchange budgets on the CLOCK_MONOTONIC base:
//     read_timeout_ms bounds receiving one complete request (408 if it
//     expires mid-request, a silent close if the connection was idle
//     between keep-alive requests), write_timeout_ms bounds flushing one
//     complete response (expiry disconnects). Progress does not restart
//     either clock.
//   * in-flight connections are bounded: beyond the cap the loop queues
//     an immediate 503 on the new connection as just another
//     non-blocking write — a slow rejected client can no longer stall
//     accepting (it used to block the accept thread).
//   * Shutdown() (or a byte on shutdown_fd(), which is the only
//     async-signal-safe way in) stops accepting, closes idle keep-alive
//     connections, lets each in-flight exchange finish with
//     Connection: close, and Wait() returns once the loop exits — a
//     graceful drain.
//
// The handler runs on pool threads concurrently: it must be thread-safe
// (PreviewService is; the Engine it wraps was built for this).
#ifndef EGP_SERVER_HTTP_SERVER_H_
#define EGP_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/parallel.h"
#include "common/result.h"
#include "common/trace.h"
#include "server/http.h"
#include "server/metrics.h"
#include "server/socket.h"

namespace egp {

struct HttpServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the result from port().
  uint16_t port = 0;
  /// Handler compute threads. 0 resolves to max(2, egp::Threads()). 1
  /// means no pool at all: handlers run inline on the loop thread
  /// (useful for debugging; serializes compute, but I/O still never
  /// blocks).
  unsigned workers = 0;
  /// listen(2) backlog for the kernel's accept queue.
  int listen_backlog = 128;
  /// In-flight connection cap (accepted, not yet closed). Beyond it new
  /// connections get an immediate non-blocking 503. Must be >= 1.
  size_t max_connections = 256;
  /// Total budget for reading one complete request (and for keep-alive
  /// idle time between requests). Expiry mid-request answers 408;
  /// between requests it closes silently. Absolute deadline: trickled
  /// bytes do not restart the clock.
  int read_timeout_ms = 10'000;
  /// Total budget for flushing one complete response; expiry
  /// disconnects. Absolute deadline, as above.
  int write_timeout_ms = 10'000;
  /// Requests served on one connection before it is closed.
  size_t max_requests_per_connection = 1'000;
  HttpParserLimits limits;
  /// Per-request tracing: every request gets a RequestTrace (ID taken
  /// from the X-Request-Id header, else generated deterministically),
  /// the ID is echoed as X-Request-Id on the response, and the finished
  /// trace goes to `trace_sink`. Cheap enough to leave on (measured in
  /// BENCH_serve.json); turn off only for A/B overhead runs.
  bool tracing = true;
  /// Seed for generated trace IDs (deterministic by design).
  uint64_t trace_id_seed = 0x7261636554726163ull;
  /// Receives each finalized trace on the event-loop thread (access
  /// log + flight recorder wiring). Must be fast and non-blocking; may
  /// be empty.
  std::function<void(const RequestTrace&)> trace_sink;
};

/// Counters for /metrics and tests; all monotone since Start().
struct HttpServerStats {
  uint64_t accepted_connections = 0;
  uint64_t rejected_connections = 0;  // 503 at the connection cap
  uint64_t handled_requests = 0;      // responses queued (any status)
  uint64_t parse_errors = 0;          // 4xx/5xx from the parser itself
  uint64_t timed_out_connections = 0;  // read or write deadline expiries
  uint64_t accept_overloads = 0;  // accept() hit EMFILE/ENFILE/ENOBUFS
  uint64_t overload_sheds = 0;    // connections answered 503 via the
                                  // emergency fd during an overload
};

/// Event-loop introspection for /metrics: how the loop itself is doing,
/// as opposed to what it served (HttpServerStats). All cheap to scrape.
struct HttpServerRuntimeStats {
  /// Duration of one event-processing pass (epoll wake -> back to
  /// epoll_wait): the latency tax every ready event pays before the
  /// loop gets back to waiting.
  LatencyHistogram::Snapshot loop_lag;
  size_t connections_reading = 0;
  size_t connections_handling = 0;
  size_t connections_writing = 0;
  size_t timer_heap_depth = 0;        // incl. lazily-deleted stale entries
  size_t completion_queue_depth = 0;  // handler results awaiting the loop
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Binds, spawns the worker pool and the event-loop thread. The
  /// returned server is already serving.
  static Result<std::unique_ptr<HttpServer>> Start(
      Handler handler, const HttpServerOptions& options);

  /// Destructor shuts down and drains if the caller didn't.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (the actual one when options.port was 0).
  uint16_t port() const { return port_; }
  const std::string& host() const { return host_; }

  /// Begins a graceful drain: stop accepting, finish in-flight
  /// exchanges, close. Safe to call from any thread, and idempotent.
  /// NOT async-signal-safe — from a signal handler, write a byte to
  /// shutdown_fd() instead.
  void Shutdown();

  /// Write end of the self-pipe the event loop polls; write(2) one byte
  /// to trigger the same drain as Shutdown(). Valid for the server's
  /// lifetime.
  int shutdown_fd() const { return shutdown_pipe_write_.get(); }

  /// Blocks until the drain completes (all connections closed, loop
  /// thread exited). Returns immediately if already drained.
  void Wait();

  /// True once Shutdown()/shutdown_fd() has been triggered.
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  HttpServerStats stats() const;
  HttpServerRuntimeStats runtime_stats() const;

 private:
  /// Per-connection state, owned and touched by the loop thread only.
  struct Connection {
    UniqueFd fd;
    uint64_t generation = 0;  // guards timer/completion entries across fd reuse
    enum class Phase : uint8_t { kReading, kHandling, kWriting } phase =
        Phase::kReading;
    HttpRequestParser parser;
    std::string outbox;     // serialized response bytes still to write
    size_t outbox_sent = 0;
    bool counted = false;   // admitted (counts against max_connections)
    bool close_after_write = false;
    bool request_was_head = false;
    bool request_keep_alive = false;
    bool timed_out_counted = false;  // at most one stats_ tick per conn
    size_t served = 0;      // requests dispatched on this connection
    int64_t deadline_ms = kNoDeadline;  // armed absolute deadline
    bool in_epoll = false;
    uint32_t epoll_events = 0;
    /// Trace of the in-flight request. shared_ptr: the pool-thread task
    /// holds a reference while it fills in the handler-side timings (the
    /// loop thread does not touch it during kHandling; the completion
    /// queue's mutex orders the handoff back).
    std::shared_ptr<RequestTrace> trace;
    int64_t request_start_ns = 0;  // began owing the current request
    int64_t flush_start_ns = 0;    // response fully serialized

    Connection(UniqueFd fd_in, uint64_t generation_in,
               const HttpParserLimits& limits)
        : fd(std::move(fd_in)), generation(generation_in), parser(limits) {}
  };

  /// A finished handler result on its way back to the loop thread.
  struct Completion {
    int fd = -1;
    uint64_t generation = 0;
    HttpResponse response;
  };

  struct TimerEntry {
    int64_t deadline_ms = 0;
    int fd = -1;
    uint64_t generation = 0;
    bool operator>(const TimerEntry& other) const {
      return deadline_ms > other.deadline_ms;
    }
  };

  HttpServer() = default;

  void Loop();
  void AcceptPending();
  void HandleAcceptOverload();
  void PauseAccepting(int pause_ms);
  void MaybeResumeAccepting(int64_t now_ms);
  void BeginDrain();
  void OnReadable(Connection* conn);
  void OnWritable(Connection* conn);
  void OnDeadline(Connection* conn);
  void DispatchRequest(Connection* conn);
  void CompleteRequest(Connection* conn, HttpResponse& response);
  void FailParse(Connection* conn);
  void SendResponse(Connection* conn, HttpResponse& response, bool keep,
                    bool omit_body);
  void BeginTrace(Connection* conn, const HttpRequest* request,
                  std::string_view outcome, int status);
  void FinishTrace(Connection* conn);
  void SetPhase(Connection* conn, Connection::Phase phase);
  void FlushOutbox(Connection* conn);
  void BeginNextRequest(Connection* conn);
  void CloseConnection(Connection* conn);
  void ArmDeadline(Connection* conn, int timeout_ms);
  void SetEpoll(Connection* conn, uint32_t events);
  bool TimerEntryLive(const TimerEntry& entry) const;
  int NextTimeoutMillis();
  void ExpireDeadlines();
  void DrainCompletions();
  HttpResponse RunHandler(const HttpRequest& request);
  void PushCompletion(Completion completion);

  std::string host_;
  uint16_t port_ = 0;
  HttpServerOptions options_;
  Handler handler_;

  UniqueFd epoll_fd_;
  UniqueFd listen_fd_;
  /// Reserved descriptor (open on /dev/null) released during an EMFILE
  /// accept storm so one pending connection can still be accepted and
  /// shed with a 503 instead of dangling in the backlog.
  UniqueFd emergency_fd_;
  UniqueFd shutdown_pipe_read_;
  UniqueFd shutdown_pipe_write_;
  UniqueFd wakeup_pipe_read_;
  UniqueFd wakeup_pipe_write_;

  std::unique_ptr<ThreadPool> pool_;  // null when workers == 1 (inline)

  std::atomic<bool> draining_{false};

  // ---- Introspection (atomics: written by the loop thread, scraped by
  // any thread via runtime_stats()).
  TraceIdGenerator trace_ids_;
  LatencyHistogram loop_lag_;
  std::atomic<size_t> phase_counts_[3]{};  // indexed by Connection::Phase
  std::atomic<size_t> timer_depth_{0};

  // ---- Loop-thread state (no locking: one owner).
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  size_t admitted_connections_ = 0;  // excludes 503-reject writers
  /// While an fd-exhaustion storm persists the listen fd leaves epoll
  /// (level-triggered readiness would hot-spin the loop) until
  /// accept_resume_ms_; ExpireDeadlines re-arms it.
  bool accept_paused_ = false;
  int64_t accept_resume_ms_ = kNoDeadline;
  uint64_t next_generation_ = 0;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>,
                      std::greater<TimerEntry>>
      timers_;

  // ---- Cross-thread state.
  mutable Mutex completion_mu_{"http.completions"};
  std::vector<Completion> completions_ EGP_GUARDED_BY(completion_mu_);

  mutable Mutex mu_{"http.stats"};  // stats + loop lifecycle flags
  CondVar idle_;      // loop_exited_ flipped
  /// Thread spawned (stays false when Start fails early). Written once
  /// by Start before the thread exists, then read-only — but guarded
  /// anyway so the proof does not rest on "Start happens-before Wait".
  bool loop_started_ EGP_GUARDED_BY(mu_) = false;
  bool loop_exited_ EGP_GUARDED_BY(mu_) = false;
  HttpServerStats stats_ EGP_GUARDED_BY(mu_);

  Mutex join_mu_;  // serializes loop_thread_.join() across Wait() callers
  std::thread loop_thread_ EGP_GUARDED_BY(join_mu_);
};

}  // namespace egp

#endif  // EGP_SERVER_HTTP_SERVER_H_
