// HttpServer: the transport half of the serving subsystem — a POSIX
// listener thread plus a ThreadPool of connection workers.
//
// Architecture (the ROADMAP's "serving heavy traffic" layer):
//   * one accept thread polls the listening socket and a self-pipe;
//   * each accepted connection becomes one task on the shared ThreadPool
//     (src/common/parallel.h) and is served start-to-finish by one
//     worker: read (timed) → parse (HttpRequestParser) → handler →
//     write (timed), looping while keep-alive holds;
//   * in-flight connections are bounded: beyond the cap the accept
//     thread answers 503 immediately instead of queueing unboundedly —
//     backpressure, not collapse;
//   * Shutdown() (or a byte on shutdown_fd(), which is the only
//     async-signal-safe way in) stops accepting, lets each in-flight
//     connection finish its current request with Connection: close, and
//     Wait() returns once the last worker is done — a graceful drain.
//
// The handler runs on worker threads concurrently: it must be
// thread-safe (PreviewService is; the Engine it wraps was built for
// this).
#ifndef EGP_SERVER_HTTP_SERVER_H_
#define EGP_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/parallel.h"
#include "common/result.h"
#include "server/http.h"
#include "server/socket.h"

namespace egp {

struct HttpServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the result from port().
  uint16_t port = 0;
  /// Connection workers. 0 resolves to max(2, egp::Threads()). 1 means
  /// no worker threads at all: connections are served inline on the
  /// accept thread (useful for debugging; serial, but still correct).
  unsigned workers = 0;
  /// listen(2) backlog for the kernel's accept queue.
  int listen_backlog = 128;
  /// In-flight connection cap (accepted, not yet closed). Beyond it new
  /// connections get an immediate 503. Must be >= 1.
  size_t max_connections = 256;
  /// Longest stall while reading one request before the connection is
  /// closed (408 if mid-request; silently if between keep-alive
  /// requests).
  int read_timeout_ms = 10'000;
  /// Longest stall while writing one response.
  int write_timeout_ms = 10'000;
  /// Requests served on one connection before it is closed (bounds how
  /// long a client can pin a worker).
  size_t max_requests_per_connection = 1'000;
  HttpParserLimits limits;
};

/// Counters for /metrics and tests; all monotone since Start().
struct HttpServerStats {
  uint64_t accepted_connections = 0;
  uint64_t rejected_connections = 0;  // 503 at the accept gate
  uint64_t handled_requests = 0;      // responses written (any status)
  uint64_t parse_errors = 0;          // 4xx/5xx from the parser itself
  uint64_t timed_out_connections = 0;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Binds, spawns the worker pool and the accept thread. The returned
  /// server is already serving.
  static Result<std::unique_ptr<HttpServer>> Start(
      Handler handler, const HttpServerOptions& options);

  /// Destructor shuts down and drains if the caller didn't.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (the actual one when options.port was 0).
  uint16_t port() const { return port_; }
  const std::string& host() const { return host_; }

  /// Begins a graceful drain: stop accepting, finish in-flight requests,
  /// close. Safe to call from any thread, and idempotent. NOT
  /// async-signal-safe — from a signal handler, write a byte to
  /// shutdown_fd() instead.
  void Shutdown();

  /// Write end of the self-pipe the accept loop polls; write(2) one byte
  /// to trigger the same drain as Shutdown(). Valid for the server's
  /// lifetime.
  int shutdown_fd() const { return shutdown_pipe_write_.get(); }

  /// Blocks until the drain completes (all connections closed, accept
  /// thread exited). Returns immediately if already drained.
  void Wait();

  /// True once Shutdown()/shutdown_fd() has been triggered.
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  HttpServerStats stats() const;

 private:
  HttpServer() = default;

  void AcceptLoop();
  void ServeConnection(UniqueFd fd);
  void FinishConnection();

  std::string host_;
  uint16_t port_ = 0;
  HttpServerOptions options_;
  Handler handler_;

  UniqueFd listen_fd_;
  UniqueFd shutdown_pipe_read_;
  UniqueFd shutdown_pipe_write_;

  std::unique_ptr<ThreadPool> pool_;  // null when workers == 1 (inline)
  std::thread accept_thread_;

  std::atomic<bool> draining_{false};
  std::atomic<size_t> active_connections_{0};

  mutable std::mutex mu_;
  std::condition_variable idle_;  // active_connections_ reached 0
  bool accept_started_ = false;   // thread spawned (false on failed Start)
  bool accept_exited_ = false;
  std::mutex join_mu_;  // serializes accept_thread_.join()
  HttpServerStats stats_;
};

}  // namespace egp

#endif  // EGP_SERVER_HTTP_SERVER_H_
