#include "server/http_client.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/strings.h"
#include "server/http.h"

namespace egp {

const std::string* HttpClientResponse::FindHeader(
    std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

Status HttpClient::EnsureConnected() {
  if (fd_.valid()) return Status::OK();
  leftover_.clear();
  EGP_ASSIGN_OR_RETURN(fd_, ConnectTcp(host_, port_, timeout_ms_));
  return Status::OK();
}

Status HttpClient::SendBytes(std::string_view bytes) {
  if (trickle_bytes_ == 0) {
    const IoResult sent = SendAll(fd_.get(), bytes, timeout_ms_);
    if (sent.status != IoStatus::kOk) {
      fd_.Reset();
      return Status::IOError("send failed");
    }
    return Status::OK();
  }
  // Trickle mode: each chunk gets the full timeout (the point is to be
  // slow on purpose, not to time ourselves out).
  for (size_t offset = 0; offset < bytes.size();
       offset += trickle_bytes_) {
    if (offset > 0 && trickle_interval_ms_ > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(trickle_interval_ms_));
    }
    const IoResult sent = SendAll(
        fd_.get(), bytes.substr(offset, trickle_bytes_), timeout_ms_);
    if (sent.status != IoStatus::kOk) {
      fd_.Reset();
      return Status::IOError("send failed");
    }
  }
  return Status::OK();
}

Result<HttpClientResponse> HttpClient::Request(std::string_view method,
                                               std::string_view target,
                                               std::string_view body,
                                               std::string_view content_type) {
  EGP_RETURN_IF_ERROR(EnsureConnected());

  std::string request;
  request.reserve(128 + body.size());
  request.append(method).append(" ").append(target).append(" HTTP/1.1\r\n");
  request.append("Host: ").append(host_).append("\r\n");
  if (!content_type.empty()) {
    request.append("Content-Type: ").append(content_type).append("\r\n");
  }
  if (!body.empty() || method == "POST" || method == "PUT") {
    request.append("Content-Length: ")
        .append(std::to_string(body.size()))
        .append("\r\n");
  }
  request.append("\r\n").append(body);

  EGP_RETURN_IF_ERROR(SendBytes(request));
  auto response = ReadResponse();
  if (!response.ok() || !response->keep_alive) fd_.Reset();
  return response;
}

Result<HttpClientResponse> HttpClient::RawExchange(std::string_view bytes) {
  EGP_RETURN_IF_ERROR(EnsureConnected());
  EGP_RETURN_IF_ERROR(SendBytes(bytes));
  auto response = ReadResponse();
  if (!response.ok() || !response->keep_alive) fd_.Reset();
  return response;
}

Result<HttpClientResponse> HttpClient::ReadResponse() {
  std::string buffer = std::move(leftover_);
  leftover_.clear();
  char chunk[16 * 1024];

  // ---- Head
  size_t head_end;
  while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    if (buffer.size() > 64 * 1024) {
      return Status::Corruption("response head too large");
    }
    const IoResult r = RecvSome(fd_.get(), chunk, sizeof(chunk), timeout_ms_);
    if (r.status == IoStatus::kTimeout) {
      return Status::IOError("timed out reading response head");
    }
    if (r.status != IoStatus::kOk) {
      return Status::IOError("connection closed mid-response");
    }
    buffer.append(chunk, r.bytes);
  }

  HttpClientResponse response;
  const std::string_view head = std::string_view(buffer).substr(0, head_end);
  const size_t line_end = head.find("\r\n");
  const std::string_view status_line =
      head.substr(0, line_end == std::string_view::npos ? head.size()
                                                        : line_end);
  // "HTTP/1.1 200 OK"
  if (status_line.size() < 12 || status_line.substr(0, 7) != "HTTP/1.") {
    return Status::Corruption("malformed status line");
  }
  const int minor_version = status_line[7] == '0' ? 0 : 1;
  response.status = 0;
  for (size_t i = 9; i < 12 && i < status_line.size(); ++i) {
    const char c = status_line[i];
    if (c < '0' || c > '9') return Status::Corruption("malformed status code");
    response.status = response.status * 10 + (c - '0');
  }

  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view field = head.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = field.find(':');
    if (colon == std::string_view::npos) continue;
    std::string_view value = field.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    response.headers.emplace_back(std::string(field.substr(0, colon)),
                                  std::string(value));
  }

  // ---- Body (Content-Length framing; that's all egp_server emits).
  size_t content_length = 0;
  if (const std::string* value = response.FindHeader("Content-Length")) {
    char* end = nullptr;
    content_length = std::strtoull(value->c_str(), &end, 10);
    if (end == value->c_str() || *end != '\0') {
      return Status::Corruption("malformed Content-Length");
    }
  }
  buffer.erase(0, head_end + 4);
  while (buffer.size() < content_length) {
    const IoResult r = RecvSome(fd_.get(), chunk, sizeof(chunk), timeout_ms_);
    if (r.status == IoStatus::kTimeout) {
      return Status::IOError("timed out reading response body");
    }
    if (r.status != IoStatus::kOk) {
      return Status::IOError("connection closed mid-body");
    }
    buffer.append(chunk, r.bytes);
  }
  response.body = buffer.substr(0, content_length);
  leftover_ = buffer.substr(content_length);

  // Connection is a token list (RFC 9110); an HTTP/1.1 response without
  // the header defaults to keep-alive, HTTP/1.0 to close.
  const std::string* connection = response.FindHeader("Connection");
  if (connection != nullptr &&
      HeaderListContainsToken(*connection, "close")) {
    response.keep_alive = false;
  } else if (connection != nullptr &&
             HeaderListContainsToken(*connection, "keep-alive")) {
    response.keep_alive = true;
  } else {
    response.keep_alive = minor_version >= 1;
  }
  return response;
}

}  // namespace egp
