#include "server/http_client.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/strings.h"
#include "server/http.h"

namespace egp {

const std::string* HttpClientResponse::FindHeader(
    std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

Status HttpClient::EnsureConnected() {
  if (fd_.valid()) return Status::OK();
  leftover_.clear();
  EGP_ASSIGN_OR_RETURN(fd_, ConnectTcp(host_, port_, timeout_ms_));
  return Status::OK();
}

Status HttpClient::SendBytes(std::string_view bytes) {
  if (trickle_bytes_ == 0) {
    const IoResult sent = SendAll(fd_.get(), bytes, timeout_ms_);
    if (sent.status != IoStatus::kOk) {
      fd_.Reset();
      return Status::IOError("send failed");
    }
    return Status::OK();
  }
  // Trickle mode: each chunk gets the full timeout (the point is to be
  // slow on purpose, not to time ourselves out).
  for (size_t offset = 0; offset < bytes.size();
       offset += trickle_bytes_) {
    if (offset > 0 && trickle_interval_ms_ > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(trickle_interval_ms_));
    }
    const IoResult sent = SendAll(
        fd_.get(), bytes.substr(offset, trickle_bytes_), timeout_ms_);
    if (sent.status != IoStatus::kOk) {
      fd_.Reset();
      return Status::IOError("send failed");
    }
  }
  return Status::OK();
}

namespace {

/// Retry-After in milliseconds, when present as delta-seconds (the only
/// form egp_server emits); 0 otherwise.
int64_t RetryAfterMillis(const HttpClientResponse& response) {
  const std::string* value = response.FindHeader("Retry-After");
  if (value == nullptr) return 0;
  char* end = nullptr;
  const long seconds = std::strtol(value->c_str(), &end, 10);
  if (end == value->c_str() || *end != '\0' || seconds < 0) return 0;
  return static_cast<int64_t>(seconds) * 1000;
}

}  // namespace

void HttpClient::BackoffSleep(int attempt, int64_t min_wait_ms) {
  int64_t backoff = retry_.base_backoff_ms;
  for (int i = 1; i < attempt && backoff < retry_.max_backoff_ms; ++i) {
    backoff *= 2;
  }
  backoff = std::min<int64_t>(backoff, retry_.max_backoff_ms);
  // Deterministic jitter in [backoff/2, backoff] (xorshift64*): spreads
  // synchronized retries without making tests time-flaky.
  jitter_state_ ^= jitter_state_ >> 12;
  jitter_state_ ^= jitter_state_ << 25;
  jitter_state_ ^= jitter_state_ >> 27;
  const int64_t half = backoff / 2;
  if (half > 0) {
    backoff = half + static_cast<int64_t>(
                         (jitter_state_ * 0x2545f4914f6cdd1dull) %
                         static_cast<uint64_t>(half + 1));
  }
  // A server-stated Retry-After is a floor, still capped so a hostile
  // value can't stall the caller.
  backoff = std::max(backoff, min_wait_ms);
  backoff = std::min<int64_t>(backoff, retry_.max_backoff_ms);
  if (backoff > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
  }
}

Result<HttpClientResponse> HttpClient::ExchangeOnce(std::string_view bytes,
                                                    bool* connect_failure) {
  // Two passes at most: a pooled keep-alive connection the server has
  // meanwhile closed (ECONNRESET/EPIPE on the write, or EOF before any
  // response byte) is replayed once on a fresh connection. A failure on
  // a fresh connection is real and surfaces.
  for (int pass = 0; pass < 2; ++pass) {
    const bool reused = fd_.valid();
    const Status connected = EnsureConnected();
    if (!connected.ok()) {
      *connect_failure = true;
      return connected;
    }
    const Status sent = SendBytes(bytes);  // resets fd_ on failure
    if (!sent.ok()) {
      if (reused && pass == 0) {
        ++transparent_reconnects_;
        continue;
      }
      return sent;
    }
    bool stale_candidate = false;
    auto response = ReadResponse(&stale_candidate);
    if (!response.ok()) {
      fd_.Reset();
      if (reused && stale_candidate && pass == 0) {
        ++transparent_reconnects_;
        continue;
      }
      return response;
    }
    if (!response->keep_alive) fd_.Reset();
    return response;
  }
  return Status::Internal("unreachable: reconnect pass fell through");
}

Result<HttpClientResponse> HttpClient::Request(std::string_view method,
                                               std::string_view target,
                                               std::string_view body,
                                               std::string_view content_type) {
  std::string request;
  request.reserve(128 + body.size());
  request.append(method).append(" ").append(target).append(" HTTP/1.1\r\n");
  request.append("Host: ").append(host_).append("\r\n");
  if (!content_type.empty()) {
    request.append("Content-Type: ").append(content_type).append("\r\n");
  }
  if (!body.empty() || method == "POST" || method == "PUT") {
    request.append("Content-Length: ")
        .append(std::to_string(body.size()))
        .append("\r\n");
  }
  request.append("\r\n").append(body);

  const bool idempotent = method == "GET" || method == "HEAD";
  for (int attempt = 1;; ++attempt) {
    bool connect_failure = false;
    auto response = ExchangeOnce(request, &connect_failure);
    if (response.ok()) {
      if (response->status == 503 && retry_.retry_on_503 &&
          attempt < retry_.max_attempts) {
        ++retries_;
        BackoffSleep(attempt, RetryAfterMillis(*response));
        continue;
      }
      return response;
    }
    // A request that never reached the server is safe to replay for any
    // method; otherwise only idempotent methods retry.
    if ((idempotent || connect_failure) && attempt < retry_.max_attempts) {
      ++retries_;
      BackoffSleep(attempt, 0);
      continue;
    }
    return response;
  }
}

Result<HttpClientResponse> HttpClient::RawExchange(std::string_view bytes) {
  EGP_RETURN_IF_ERROR(EnsureConnected());
  EGP_RETURN_IF_ERROR(SendBytes(bytes));
  bool ignored = false;
  auto response = ReadResponse(&ignored);
  if (!response.ok() || !response->keep_alive) fd_.Reset();
  return response;
}

Result<HttpClientResponse> HttpClient::ReadResponse(bool* stale_candidate) {
  std::string buffer = std::move(leftover_);
  leftover_.clear();
  char chunk[16 * 1024];

  // ---- Head
  size_t head_end;
  while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    if (buffer.size() > 64 * 1024) {
      return Status::Corruption("response head too large");
    }
    const IoResult r = RecvSome(fd_.get(), chunk, sizeof(chunk), timeout_ms_);
    if (r.status == IoStatus::kTimeout) {
      return Status::IOError("timed out reading response head");
    }
    if (r.status != IoStatus::kOk) {
      // Close/reset before a single response byte is the signature of a
      // pooled connection the server reaped; anything later is a real
      // mid-response failure.
      if (buffer.empty()) *stale_candidate = true;
      return Status::IOError("connection closed mid-response");
    }
    buffer.append(chunk, r.bytes);
  }

  HttpClientResponse response;
  const std::string_view head = std::string_view(buffer).substr(0, head_end);
  const size_t line_end = head.find("\r\n");
  const std::string_view status_line =
      head.substr(0, line_end == std::string_view::npos ? head.size()
                                                        : line_end);
  // "HTTP/1.1 200 OK"
  if (status_line.size() < 12 || status_line.substr(0, 7) != "HTTP/1.") {
    return Status::Corruption("malformed status line");
  }
  const int minor_version = status_line[7] == '0' ? 0 : 1;
  response.status = 0;
  for (size_t i = 9; i < 12 && i < status_line.size(); ++i) {
    const char c = status_line[i];
    if (c < '0' || c > '9') return Status::Corruption("malformed status code");
    response.status = response.status * 10 + (c - '0');
  }

  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view field = head.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = field.find(':');
    if (colon == std::string_view::npos) continue;
    std::string_view value = field.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    response.headers.emplace_back(std::string(field.substr(0, colon)),
                                  std::string(value));
  }

  // ---- Body (Content-Length framing; that's all egp_server emits).
  size_t content_length = 0;
  if (const std::string* value = response.FindHeader("Content-Length")) {
    char* end = nullptr;
    content_length = std::strtoull(value->c_str(), &end, 10);
    if (end == value->c_str() || *end != '\0') {
      return Status::Corruption("malformed Content-Length");
    }
  }
  buffer.erase(0, head_end + 4);
  while (buffer.size() < content_length) {
    const IoResult r = RecvSome(fd_.get(), chunk, sizeof(chunk), timeout_ms_);
    if (r.status == IoStatus::kTimeout) {
      return Status::IOError("timed out reading response body");
    }
    if (r.status != IoStatus::kOk) {
      return Status::IOError("connection closed mid-body");
    }
    buffer.append(chunk, r.bytes);
  }
  response.body = buffer.substr(0, content_length);
  leftover_ = buffer.substr(content_length);

  // Connection is a token list (RFC 9110); an HTTP/1.1 response without
  // the header defaults to keep-alive, HTTP/1.0 to close.
  const std::string* connection = response.FindHeader("Connection");
  if (connection != nullptr &&
      HeaderListContainsToken(*connection, "close")) {
    response.keep_alive = false;
  } else if (connection != nullptr &&
             HeaderListContainsToken(*connection, "keep-alive")) {
    response.keep_alive = true;
  } else {
    response.keep_alive = minor_version >= 1;
  }
  return response;
}

}  // namespace egp
