// Request metrics for the serving subsystem: per-endpoint counters and a
// fixed-bucket latency histogram, exported in the Prometheus text
// exposition format on GET /metrics.
//
// Lock-light by design: Observe() on the histogram is a couple of
// relaxed atomic increments (serving-path cost ~nothing); only the
// per-(endpoint, status) counter map takes a mutex, and that map is tiny
// and hit once per request.
#ifndef EGP_SERVER_METRICS_H_
#define EGP_SERVER_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.h"

namespace egp {

/// Cumulative histogram over fixed latency bucket bounds (seconds),
/// Prometheus-style: bucket i counts observations <= bounds[i], plus an
/// implicit +Inf bucket, a total count, and a sum.
class LatencyHistogram {
 public:
  /// 500µs .. 10s in roughly 2.5× steps — wide enough for a cache-hit
  /// preview (sub-ms) and a cold multi-second prepare on a big graph.
  static constexpr std::array<double, 12> kBounds = {
      0.0005, 0.001, 0.0025, 0.005, 0.010, 0.025,
      0.050,  0.100, 0.250,  0.500, 1.0,   10.0};

  void Observe(double seconds);

  struct Snapshot {
    std::array<uint64_t, kBounds.size()> cumulative{};  // counts <= bound
    uint64_t count = 0;
    double sum_seconds = 0.0;

    /// Latency below which `q` (0..1) of observations fall, estimated by
    /// linear interpolation inside the winning bucket; an empty
    /// histogram gives 0.
    double Quantile(double q) const;
  };
  Snapshot snapshot() const;

 private:
  std::array<std::atomic<uint64_t>, kBounds.size() + 1> buckets_{};
  std::atomic<uint64_t> sum_nanos_{0};
};

/// All metrics the server exports. One instance per server, shared by
/// worker threads.
class ServerMetrics {
 public:
  /// Records one served request. `endpoint` should be the route label
  /// ("/v1/preview"), not the raw target (no per-query-string series).
  void RecordRequest(std::string_view endpoint, int status, double seconds);

  /// Records one dataset-scoped request (preview/suggest after dataset
  /// resolution) under egp_requests_total{dataset=,status=} plus a
  /// per-dataset latency histogram. Dataset names come from the catalog
  /// (a bounded set), so per-dataset series cannot explode.
  void RecordDataset(std::string_view dataset, int status, double seconds);

  struct RequestCount {
    std::string endpoint;
    int status = 0;
    uint64_t count = 0;
  };
  std::vector<RequestCount> request_counts() const;

  struct DatasetCount {
    std::string dataset;
    int status = 0;
    uint64_t count = 0;
  };
  std::vector<DatasetCount> dataset_counts() const;
  std::vector<std::pair<std::string, LatencyHistogram::Snapshot>>
  dataset_latency() const;

  LatencyHistogram::Snapshot latency() const { return latency_.snapshot(); }
  uint64_t total_requests() const;

  /// The Prometheus exposition text for everything recorded here.
  /// Caller appends its own gauges (Engine cache stats, connection
  /// counters) via PrometheusText's helpers below.
  std::string PrometheusText() const;

 private:
  mutable Mutex mu_{"metrics.requests"};
  std::map<std::pair<std::string, int>, uint64_t> counts_ EGP_GUARDED_BY(mu_);
  std::map<std::pair<std::string, int>, uint64_t> dataset_counts_
      EGP_GUARDED_BY(mu_);
  // unique_ptr: LatencyHistogram is an array of atomics (immovable), and
  // Observe() must run outside mu_ — the pointer is stable across
  // rehashing inserts of other datasets.
  std::map<std::string, std::unique_ptr<LatencyHistogram>> dataset_latency_
      EGP_GUARDED_BY(mu_);
  LatencyHistogram latency_;
};

/// Appends "# HELP name help" and "# TYPE name type" headers; tiny
/// helpers so ad-hoc gauges (cache stats, uptime) format consistently.
/// The exposition-grammar ctest rejects series missing either header.
void AppendMetricHeader(std::string* out, std::string_view name,
                        std::string_view type, std::string_view help);
void AppendMetric(std::string* out, std::string_view name,
                  std::string_view labels, double value);
void AppendMetric(std::string* out, std::string_view name,
                  std::string_view labels, uint64_t value);

/// Appends one full histogram family (headers, per-bound `_bucket`
/// samples, `+Inf`, `_sum`, `_count`) from a snapshot.
void AppendHistogram(std::string* out, std::string_view name,
                     std::string_view help,
                     const LatencyHistogram::Snapshot& snap);

/// Appends one labeled series of an already-headed histogram family:
/// `_bucket{<label_prefix>,le=...}` samples plus `_sum`/`_count` carrying
/// `label_prefix` (e.g. `dataset="paper"`). For families with one series
/// per dataset/site: emit the header once (AppendMetricHeader, type
/// histogram), then call this per label set.
void AppendHistogramSamples(std::string* out, std::string_view name,
                            std::string_view label_prefix,
                            const LatencyHistogram::Snapshot& snap);

}  // namespace egp

#endif  // EGP_SERVER_METRICS_H_
