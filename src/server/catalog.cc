#include "server/catalog.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "common/timer.h"

namespace egp {
namespace {

bool ValidDatasetName(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '.' && c != '-') {
      return false;
    }
  }
  return true;
}

DatasetCatalog::Info MakeInfo(const std::string& name,
                              const std::string& path, const Engine& engine) {
  DatasetCatalog::Info info;
  info.name = name;
  info.path = path;
  if (const EntityGraph* graph = engine.graph()) {
    info.entities = graph->num_entities();
    info.relationships = graph->num_edges();
  }
  info.entity_types = engine.schema().num_types();
  info.relationship_types = engine.schema().edges().size();
  return info;
}

/// Per-dataset load result, filled by one (possibly pooled) job.
struct LoadSlot {
  Result<Engine> engine = Status::Internal("dataset not loaded");
  std::string storage = "unknown";
  double load_seconds = 0.0;
};

}  // namespace

Result<DatasetSpec> ParseDatasetSpec(const std::string& spec) {
  const size_t eq = spec.find('=');
  if (eq == std::string::npos) {
    return Status::InvalidArgument("--dataset expects name=path, got '" +
                                   spec + "'");
  }
  DatasetSpec parsed;
  parsed.name = spec.substr(0, eq);
  parsed.path = spec.substr(eq + 1);
  if (!ValidDatasetName(parsed.name)) {
    return Status::InvalidArgument(
        "dataset name '" + parsed.name +
        "' must be non-empty [A-Za-z0-9_.-] (it appears in URLs and "
        "metric labels)");
  }
  if (parsed.path.empty()) {
    return Status::InvalidArgument("dataset '" + parsed.name +
                                   "' has an empty path");
  }
  return parsed;
}

Result<DatasetCatalog> DatasetCatalog::Load(
    const std::vector<DatasetSpec>& specs, const CatalogLoadOptions& options) {
  for (const DatasetSpec& spec : specs) {
    if (!ValidDatasetName(spec.name)) {
      return Status::InvalidArgument("invalid dataset name '" + spec.name +
                                     "'");
    }
  }

  // One load job per dataset. Each job only writes its own slot, so the
  // result is independent of scheduling; a startup with many datasets
  // costs max(load time), not the sum.
  std::vector<LoadSlot> slots(specs.size());
  const auto load_one = [&](size_t i) {
    Timer timer;
    LoadSlot& slot = slots[i];
    if (const Status fault = FaultInjectStatus("catalog.load", specs[i].name);
        !fault.ok()) {
      slot.engine = fault;
      return;
    }
    auto loaded = LoadGraphFileAuto(specs[i].path, options.snapshot);
    if (!loaded.ok()) {
      slot.engine = loaded.status();
      EGP_LOG(Warning) << "dataset '" << specs[i].name << "' failed to load"
                       << " path=" << specs[i].path << ": "
                       << loaded.status().message();
      return;
    }
    slot.storage = GraphStorageName(loaded->storage);
    slot.engine =
        loaded->frozen
            ? Engine::FromFrozen(std::move(loaded->graph),
                                 std::move(*loaded->frozen), options.engine)
            : Engine::FromGraph(std::move(loaded->graph), options.engine);
    slot.load_seconds = timer.ElapsedSeconds();
    EGP_LOG(Info) << "dataset '" << specs[i].name << "' loaded path="
                  << specs[i].path << " storage=" << slot.storage
                  << " seconds=" << slot.load_seconds;
  };
  size_t load_threads = options.load_threads == 0
                            ? std::min<size_t>(specs.size(), Threads())
                            : options.load_threads;
  load_threads = std::min<size_t>(load_threads, specs.size());
  load_threads = std::min<size_t>(load_threads, kMaxThreads);
  if (load_threads > 1) {
    ThreadPool pool(static_cast<unsigned>(load_threads));
    ParallelForDynamic(&pool, 0, specs.size(), load_one);
  } else {
    for (size_t i = 0; i < specs.size(); ++i) load_one(i);
  }

  std::vector<std::pair<std::string, Engine>> engines;
  std::vector<FailedDataset> failed;
  engines.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    if (!slots[i].engine.ok()) {
      const Status annotated(slots[i].engine.status().code(),
                             "dataset '" + specs[i].name + "': " +
                                 slots[i].engine.status().message());
      if (!options.allow_partial) return annotated;
      failed.push_back(FailedDataset{specs[i].name, specs[i].path,
                                     std::string(annotated.message())});
      continue;
    }
    engines.emplace_back(specs[i].name, std::move(slots[i].engine).value());
  }
  if (engines.empty() && !failed.empty()) {
    // Nothing left to serve: degraded-but-empty is just "down", so
    // report it as the hard failure it is.
    return Status(StatusCode::kIOError, failed.front().error);
  }
  auto catalog = FromEngines(std::move(engines));
  if (!catalog.ok()) return catalog.status();
  std::sort(failed.begin(), failed.end(),
            [](const FailedDataset& a, const FailedDataset& b) {
              return a.name < b.name;
            });
  catalog->failed_ = std::move(failed);
  if (catalog->degraded()) {
    // A degraded catalog never has an implicit default: a request that
    // omits "dataset" must not silently land on whichever one survived.
    catalog->default_name_.clear();
  }
  // Replace the in-process placeholders with the on-disk facts.
  for (Info& info : catalog->infos_) {
    for (size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].name == info.name) {
        info.path = specs[i].path;
        info.storage = slots[i].storage;
        info.load_seconds = slots[i].load_seconds;
        break;
      }
    }
  }
  return catalog;
}

Result<DatasetCatalog> DatasetCatalog::Load(
    const std::vector<DatasetSpec>& specs,
    const EngineOptions& engine_options) {
  CatalogLoadOptions options;
  options.engine = engine_options;
  return Load(specs, options);
}

Result<DatasetCatalog> DatasetCatalog::FromEngines(
    std::vector<std::pair<std::string, Engine>> engines) {
  if (engines.empty()) {
    return Status::InvalidArgument("no datasets given (use --dataset "
                                   "name=path at least once)");
  }
  DatasetCatalog catalog;
  for (auto& [name, engine] : engines) {
    if (!ValidDatasetName(name)) {
      return Status::InvalidArgument("invalid dataset name '" + name + "'");
    }
    if (catalog.engines_.count(name) > 0) {
      return Status::InvalidArgument("duplicate dataset name '" + name + "'");
    }
    catalog.infos_.push_back(MakeInfo(name, "<in-process>", engine));
    catalog.engines_.emplace(name, std::move(engine));
  }
  std::sort(catalog.infos_.begin(), catalog.infos_.end(),
            [](const Info& a, const Info& b) { return a.name < b.name; });
  if (catalog.engines_.size() == 1) {
    catalog.default_name_ = catalog.infos_.front().name;
  }
  return catalog;
}

const Engine* DatasetCatalog::Find(const std::string& name) const {
  const auto it = engines_.find(name);
  return it == engines_.end() ? nullptr : &it->second;
}

const Engine* DatasetCatalog::Default() const {
  return default_name_.empty() ? nullptr : Find(default_name_);
}

const DatasetCatalog::FailedDataset* DatasetCatalog::FindFailed(
    const std::string& name) const {
  for (const FailedDataset& f : failed_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

}  // namespace egp
