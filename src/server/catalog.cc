#include "server/catalog.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "common/strings.h"
#include "io/graph_io.h"
#include "io/ntriples.h"

namespace egp {
namespace {

bool ValidDatasetName(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '.' && c != '-') {
      return false;
    }
  }
  return true;
}

Result<EntityGraph> LoadGraphFile(const std::string& path) {
  if (EndsWith(path, ".nt")) return ReadNTriplesFile(path);
  return ReadEntityGraphFile(path);
}

DatasetCatalog::Info MakeInfo(const std::string& name,
                              const std::string& path, const Engine& engine) {
  DatasetCatalog::Info info;
  info.name = name;
  info.path = path;
  if (const EntityGraph* graph = engine.graph()) {
    info.entities = graph->num_entities();
    info.relationships = graph->num_edges();
  }
  info.entity_types = engine.schema().num_types();
  info.relationship_types = engine.schema().edges().size();
  return info;
}

}  // namespace

Result<DatasetSpec> ParseDatasetSpec(const std::string& spec) {
  const size_t eq = spec.find('=');
  if (eq == std::string::npos) {
    return Status::InvalidArgument("--dataset expects name=path, got '" +
                                   spec + "'");
  }
  DatasetSpec parsed;
  parsed.name = spec.substr(0, eq);
  parsed.path = spec.substr(eq + 1);
  if (!ValidDatasetName(parsed.name)) {
    return Status::InvalidArgument(
        "dataset name '" + parsed.name +
        "' must be non-empty [A-Za-z0-9_.-] (it appears in URLs and "
        "metric labels)");
  }
  if (parsed.path.empty()) {
    return Status::InvalidArgument("dataset '" + parsed.name +
                                   "' has an empty path");
  }
  return parsed;
}

Result<DatasetCatalog> DatasetCatalog::Load(
    const std::vector<DatasetSpec>& specs, const EngineOptions& options) {
  std::vector<std::pair<std::string, Engine>> engines;
  engines.reserve(specs.size());
  for (const DatasetSpec& spec : specs) {
    if (!ValidDatasetName(spec.name)) {
      return Status::InvalidArgument("invalid dataset name '" + spec.name +
                                     "'");
    }
    auto graph = LoadGraphFile(spec.path);
    if (!graph.ok()) {
      return Status(graph.status().code(),
                    "dataset '" + spec.name + "': " +
                        graph.status().message());
    }
    engines.emplace_back(spec.name,
                         Engine::FromGraph(std::move(graph).value(), options));
  }
  auto catalog = FromEngines(std::move(engines));
  if (!catalog.ok()) return catalog.status();
  // Replace the placeholder labels with the real paths.
  for (Info& info : catalog->infos_) {
    for (const DatasetSpec& spec : specs) {
      if (spec.name == info.name) {
        info.path = spec.path;
        break;
      }
    }
  }
  return catalog;
}

Result<DatasetCatalog> DatasetCatalog::FromEngines(
    std::vector<std::pair<std::string, Engine>> engines) {
  if (engines.empty()) {
    return Status::InvalidArgument("no datasets given (use --dataset "
                                   "name=path at least once)");
  }
  DatasetCatalog catalog;
  for (auto& [name, engine] : engines) {
    if (!ValidDatasetName(name)) {
      return Status::InvalidArgument("invalid dataset name '" + name + "'");
    }
    if (catalog.engines_.count(name) > 0) {
      return Status::InvalidArgument("duplicate dataset name '" + name + "'");
    }
    catalog.infos_.push_back(MakeInfo(name, "<in-process>", engine));
    catalog.engines_.emplace(name, std::move(engine));
  }
  std::sort(catalog.infos_.begin(), catalog.infos_.end(),
            [](const Info& a, const Info& b) { return a.name < b.name; });
  if (catalog.engines_.size() == 1) {
    catalog.default_name_ = catalog.infos_.front().name;
  }
  return catalog;
}

const Engine* DatasetCatalog::Find(const std::string& name) const {
  const auto it = engines_.find(name);
  return it == engines_.end() ? nullptr : &it->second;
}

const Engine* DatasetCatalog::Default() const {
  return default_name_.empty() ? nullptr : Find(default_name_);
}

}  // namespace egp
