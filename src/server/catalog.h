// DatasetCatalog: the multi-dataset layer of the serving subsystem — one
// immutable egp::Engine per loaded entity graph, addressed by name.
//
// egp_server is started with repeated `--dataset name=path` flags; the
// catalog loads each graph (.egps binary snapshots detected by magic,
// otherwise .nt / .egt text by extension), derives its Engine, and
// serves lookups from then on without locks: the catalog is immutable
// after Load, and the Engines themselves are thread-safe. Loading fans
// out across a thread pool — one job per dataset — so a many-dataset
// catalog opens in max(dataset time), not sum.
#ifndef EGP_SERVER_CATALOG_H_
#define EGP_SERVER_CATALOG_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "io/graph_io.h"
#include "service/engine.h"

namespace egp {

/// One `--dataset name=path` argument.
struct DatasetSpec {
  std::string name;
  std::string path;
};

/// Parses "name=path". The name becomes part of URLs and metric labels,
/// so it is restricted to [A-Za-z0-9_.-], non-empty.
Result<DatasetSpec> ParseDatasetSpec(const std::string& spec);

struct CatalogLoadOptions {
  EngineOptions engine;
  /// Concurrent dataset loads: 0 resolves to min(#datasets,
  /// egp::Threads()), 1 loads sequentially.
  unsigned load_threads = 0;
  /// How .egps snapshots are opened (mmap zero-copy by default).
  SnapshotOpenOptions snapshot;
  /// When true (the default) a dataset that fails to load does not sink
  /// the whole catalog: the healthy datasets serve and the failures are
  /// reported via failed() (surfaced as "degraded" on /healthz). When
  /// every dataset fails — or this is false (egp_server --strict-load) —
  /// Load returns the first failure.
  bool allow_partial = true;
};

class DatasetCatalog {
 public:
  /// Summary of one loaded dataset, computed at load time.
  struct Info {
    std::string name;
    std::string path;
    size_t entities = 0;
    size_t relationships = 0;
    size_t entity_types = 0;
    size_t relationship_types = 0;
    /// GraphStorageName of the on-disk representation ("nt", "egt",
    /// "snapshot"), or "memory" for FromEngines catalogs.
    std::string storage = "memory";
    /// Wall-clock seconds spent opening this dataset (parse/open plus
    /// Engine construction); 0 for FromEngines catalogs.
    double load_seconds = 0.0;
  };

  /// A dataset that failed to load in a partial (degraded) catalog.
  struct FailedDataset {
    std::string name;
    std::string path;
    std::string error;
  };

  /// Loads every spec from disk; duplicate names and an empty spec list
  /// are errors. An unloadable file is an error only when
  /// `options.allow_partial` is false or every dataset fails — otherwise
  /// the catalog comes up degraded (see failed()). Datasets load
  /// concurrently per `options.load_threads`.
  static Result<DatasetCatalog> Load(const std::vector<DatasetSpec>& specs,
                                     const CatalogLoadOptions& options = {});

  /// Back-compat convenience: engine options only.
  static Result<DatasetCatalog> Load(const std::vector<DatasetSpec>& specs,
                                     const EngineOptions& engine_options);

  /// Builds a catalog from already-constructed engines (in-process tests
  /// and the latency bench; `path` in Info is the given label).
  static Result<DatasetCatalog> FromEngines(
      std::vector<std::pair<std::string, Engine>> engines);

  /// The engine serving `name`, or nullptr.
  const Engine* Find(const std::string& name) const;

  /// The single engine when exactly one dataset is loaded (so requests
  /// may omit "dataset"), nullptr otherwise.
  const Engine* Default() const;
  const std::string& default_name() const { return default_name_; }

  /// Sorted by name.
  const std::vector<Info>& infos() const { return infos_; }
  size_t size() const { return infos_.size(); }

  /// Datasets that failed to load (sorted by name); empty unless Load
  /// ran with allow_partial and some-but-not-all datasets failed.
  const std::vector<FailedDataset>& failed() const { return failed_; }
  bool degraded() const { return !failed_.empty(); }
  /// The failure record for `name`, or nullptr if it loaded (or was
  /// never requested).
  const FailedDataset* FindFailed(const std::string& name) const;

 private:
  std::map<std::string, Engine> engines_;
  std::vector<Info> infos_;
  std::vector<FailedDataset> failed_;
  std::string default_name_;
};

}  // namespace egp

#endif  // EGP_SERVER_CATALOG_H_
