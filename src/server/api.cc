#include "server/api.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "common/lock_stats.h"
#include "common/profiler.h"
#include "common/strings.h"
#include "common/timer.h"
#include "common/trace.h"
#include "io/json_export.h"
#include "server/access_log.h"
#include "server/process_stats.h"

namespace egp {
namespace {

std::string Quoted(std::string_view text) {
  return "\"" + JsonEscape(text) + "\"";
}

std::string Number(double value) { return StrFormat("%.10g", value); }

HttpResponse JsonErrorResponse(int status, std::string_view message) {
  HttpResponse response;
  response.status = status;
  response.body = "{\"error\":{\"status\":" + std::to_string(status) +
                  ",\"message\":" + Quoted(message) + "}}";
  return response;
}

/// HTTP status for an Engine/parse error. NotFound here means a bad
/// *parameter* (unknown measure name, say), not a bad URL — still the
/// client's request, so 400. (An unknown *dataset* is resource-shaped
/// and mapped to 404 at the ResolveDataset call sites instead.)
int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kFailedPrecondition:
      return 409;
    case StatusCode::kUnimplemented:
      return 501;
    case StatusCode::kUnavailable:
      return 503;
    default:
      return 500;
  }
}

/// Status for a request body that failed to parse: a malformed body is
/// the client's fault (400), but an I/O or internal failure while
/// parsing (fault injection, allocation) is ours (500).
int HttpStatusForBody(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIOError:
    case StatusCode::kInternal:
      return 500;
    default:
      return 400;
  }
}

/// Status mapping for ResolveDataset: there NotFound really is a missing
/// resource.
int HttpStatusForDataset(const Status& status) {
  return status.code() == StatusCode::kNotFound ? 404
                                                : HttpStatusFor(status);
}

// ---------------------------------------------------------------------------
// Field coercion: JSON numbers are doubles; integer-valued fields must
// actually be integers, and every field must have the right kind.
// ---------------------------------------------------------------------------

Status WrongKind(const char* key, std::string_view want,
                 const JsonValue& got) {
  return Status::InvalidArgument("field \"" + std::string(key) +
                                 "\" must be a " + std::string(want) +
                                 ", got " + std::string(JsonKindName(
                                     got.kind())));
}

/// Rejects any member not in `allowed` — typos fail loudly.
Status CheckAllowedKeys(const JsonValue& obj,
                        std::initializer_list<std::string_view> allowed,
                        const char* context) {
  for (const auto& [key, value] : obj.object()) {
    bool known = false;
    for (const std::string_view name : allowed) {
      if (key == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::string names;
      for (const std::string_view name : allowed) {
        if (!names.empty()) names += ", ";
        names += name;
      }
      return Status::InvalidArgument("unknown field \"" + key + "\" in " +
                                     context + " (allowed: " + names + ")");
    }
  }
  return Status::OK();
}

Result<int64_t> IntField(const JsonValue& obj, const char* key, int64_t dflt,
                         int64_t min, int64_t max) {
  const JsonValue* field = obj.Find(key);
  if (field == nullptr) return dflt;
  if (!field->is_number()) return WrongKind(key, "number", *field);
  const double value = field->number_value();
  if (std::floor(value) != value || std::abs(value) > 9.007199254740992e15) {
    return Status::InvalidArgument("field \"" + std::string(key) +
                                   "\" must be an integer");
  }
  const int64_t integer = static_cast<int64_t>(value);
  if (integer < min || integer > max) {
    return Status::InvalidArgument(
        "field \"" + std::string(key) + "\" must be in [" +
        std::to_string(min) + ", " + std::to_string(max) + "], got " +
        std::to_string(integer));
  }
  return integer;
}

Result<double> DoubleField(const JsonValue& obj, const char* key,
                           double dflt) {
  const JsonValue* field = obj.Find(key);
  if (field == nullptr) return dflt;
  if (!field->is_number()) return WrongKind(key, "number", *field);
  return field->number_value();
}

Result<std::string> StringField(const JsonValue& obj, const char* key,
                                const std::string& dflt) {
  const JsonValue* field = obj.Find(key);
  if (field == nullptr) return dflt;
  if (!field->is_string()) return WrongKind(key, "string", *field);
  return field->string_value();
}

Result<bool> BoolField(const JsonValue& obj, const char* key, bool dflt) {
  const JsonValue* field = obj.Find(key);
  if (field == nullptr) return dflt;
  if (!field->is_bool()) return WrongKind(key, "bool", *field);
  return field->bool_value();
}

Status ParseMeasures(const JsonValue& doc, MeasureSelection* measures) {
  const JsonValue* field = doc.Find("measures");
  if (field == nullptr) return Status::OK();
  if (!field->is_object()) return WrongKind("measures", "object", *field);
  EGP_RETURN_IF_ERROR(
      CheckAllowedKeys(*field, {"key", "nonkey", "walk"}, "\"measures\""));
  EGP_ASSIGN_OR_RETURN(measures->key,
                       StringField(*field, "key", measures->key));
  EGP_ASSIGN_OR_RETURN(measures->nonkey,
                       StringField(*field, "nonkey", measures->nonkey));
  if (const JsonValue* walk = field->Find("walk")) {
    if (!walk->is_object()) return WrongKind("walk", "object", *walk);
    EGP_RETURN_IF_ERROR(CheckAllowedKeys(
        *walk, {"smoothing", "maxIterations", "tolerance"}, "\"walk\""));
    EGP_ASSIGN_OR_RETURN(measures->walk.smoothing,
                         DoubleField(*walk, "smoothing",
                                     measures->walk.smoothing));
    if (!(measures->walk.smoothing >= 0) ||
        !std::isfinite(measures->walk.smoothing)) {
      return Status::InvalidArgument("\"smoothing\" must be finite and >= 0");
    }
    int64_t iterations = 0;
    EGP_ASSIGN_OR_RETURN(iterations,
                         IntField(*walk, "maxIterations",
                                  measures->walk.max_iterations, 1, 1000000));
    measures->walk.max_iterations = static_cast<int>(iterations);
    EGP_ASSIGN_OR_RETURN(measures->walk.tolerance,
                         DoubleField(*walk, "tolerance",
                                     measures->walk.tolerance));
    if (!(measures->walk.tolerance >= 0) ||
        !std::isfinite(measures->walk.tolerance)) {
      return Status::InvalidArgument("\"tolerance\" must be finite and >= 0");
    }
  }
  return Status::OK();
}

/// Value of `key` in an application/x-www-form-urlencoded query string,
/// or empty. No percent-decoding: the debug endpoint's parameters are
/// plain numbers.
std::string_view QueryParam(std::string_view query, std::string_view key) {
  while (!query.empty()) {
    const size_t amp = query.find('&');
    const std::string_view pair =
        query.substr(0, amp == std::string_view::npos ? query.size() : amp);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return {};
}

Result<DisplayBudget> ParseBudget(const JsonValue& field) {
  if (!field.is_object()) return WrongKind("budget", "object", field);
  EGP_RETURN_IF_ERROR(CheckAllowedKeys(
      field, {"widthChars", "heightRows", "columnWidth", "rowsPerTable"},
      "\"budget\""));
  DisplayBudget budget;
  int64_t value = 0;
  EGP_ASSIGN_OR_RETURN(
      value, IntField(field, "widthChars", budget.width_chars, 1, 1000000));
  budget.width_chars = static_cast<uint32_t>(value);
  EGP_ASSIGN_OR_RETURN(
      value, IntField(field, "heightRows", budget.height_rows, 1, 1000000));
  budget.height_rows = static_cast<uint32_t>(value);
  EGP_ASSIGN_OR_RETURN(
      value, IntField(field, "columnWidth", budget.column_width, 1, 10000));
  budget.column_width = static_cast<uint32_t>(value);
  EGP_ASSIGN_OR_RETURN(
      value,
      IntField(field, "rowsPerTable", budget.rows_per_table, 1, 10000));
  budget.rows_per_table = static_cast<uint32_t>(value);
  return budget;
}

}  // namespace

Result<ParsedPreviewRequest> ParsePreviewRequestJson(const JsonValue& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  EGP_RETURN_IF_ERROR(CheckAllowedKeys(
      doc,
      {"dataset", "k", "n", "tight", "diverse", "budget",
       "suggestedDistance", "measures", "algorithm", "sample"},
      "the request"));

  ParsedPreviewRequest parsed;
  EGP_ASSIGN_OR_RETURN(parsed.dataset, StringField(doc, "dataset", ""));
  PreviewRequest& request = parsed.request;

  const bool has_budget = doc.Find("budget") != nullptr;
  const bool has_explicit = doc.Find("k") != nullptr ||
                            doc.Find("n") != nullptr ||
                            doc.Find("tight") != nullptr ||
                            doc.Find("diverse") != nullptr;
  if (has_budget && has_explicit) {
    return Status::InvalidArgument(
        "\"budget\" (advisor mode) excludes explicit \"k\"/\"n\"/"
        "\"tight\"/\"diverse\" constraints");
  }
  if (doc.Find("suggestedDistance") != nullptr && !has_budget) {
    return Status::InvalidArgument(
        "\"suggestedDistance\" only applies with \"budget\"");
  }
  if (doc.Find("tight") != nullptr && doc.Find("diverse") != nullptr) {
    return Status::InvalidArgument("\"tight\" and \"diverse\" are exclusive");
  }

  if (has_budget) {
    EGP_ASSIGN_OR_RETURN(request.budget, ParseBudget(*doc.Find("budget")));
    std::string mode;
    EGP_ASSIGN_OR_RETURN(mode, StringField(doc, "suggestedDistance", "none"));
    if (mode == "none") {
      request.suggested_distance = DistanceMode::kNone;
    } else if (mode == "tight") {
      request.suggested_distance = DistanceMode::kTight;
    } else if (mode == "diverse") {
      request.suggested_distance = DistanceMode::kDiverse;
    } else {
      return Status::InvalidArgument(
          "\"suggestedDistance\" must be none, tight, or diverse");
    }
  } else {
    int64_t value = 0;
    EGP_ASSIGN_OR_RETURN(value, IntField(doc, "k", request.size.k, 1,
                                         1u << 20));
    request.size.k = static_cast<uint32_t>(value);
    EGP_ASSIGN_OR_RETURN(value, IntField(doc, "n", request.size.n, 1,
                                         1u << 20));
    request.size.n = static_cast<uint32_t>(value);
    if (doc.Find("tight") != nullptr) {
      EGP_ASSIGN_OR_RETURN(value, IntField(doc, "tight", 0, 1, 1u << 20));
      request.distance = DistanceConstraint::Tight(
          static_cast<uint32_t>(value));
    } else if (doc.Find("diverse") != nullptr) {
      EGP_ASSIGN_OR_RETURN(value, IntField(doc, "diverse", 0, 1, 1u << 20));
      request.distance = DistanceConstraint::Diverse(
          static_cast<uint32_t>(value));
    }
  }

  EGP_RETURN_IF_ERROR(ParseMeasures(doc, &request.measures));
  EGP_ASSIGN_OR_RETURN(request.algorithm,
                       StringField(doc, "algorithm", request.algorithm));

  if (const JsonValue* sample = doc.Find("sample")) {
    if (!sample->is_object()) return WrongKind("sample", "object", *sample);
    EGP_RETURN_IF_ERROR(CheckAllowedKeys(
        *sample, {"rows", "seed", "strategy", "mergeMultiway"},
        "\"sample\""));
    int64_t value = 0;
    EGP_ASSIGN_OR_RETURN(value, IntField(*sample, "rows", 0, 0, 100000));
    request.sample_rows = static_cast<size_t>(value);
    EGP_ASSIGN_OR_RETURN(
        value, IntField(*sample, "seed", 42, 0, 9007199254740992));
    request.sample_seed = static_cast<uint64_t>(value);
    std::string strategy;
    EGP_ASSIGN_OR_RETURN(strategy,
                         StringField(*sample, "strategy", "random"));
    if (strategy == "random") {
      request.sample_strategy = SamplingStrategy::kRandom;
    } else if (strategy == "frequency") {
      request.sample_strategy = SamplingStrategy::kFrequencyWeighted;
    } else {
      return Status::InvalidArgument(
          "\"strategy\" must be random or frequency");
    }
    EGP_ASSIGN_OR_RETURN(request.merge_multiway_columns,
                         BoolField(*sample, "mergeMultiway", false));
  }
  return parsed;
}

Result<ParsedSuggestRequest> ParseSuggestRequestJson(const JsonValue& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  EGP_RETURN_IF_ERROR(CheckAllowedKeys(doc, {"dataset", "budget", "measures"},
                                       "the request"));
  ParsedSuggestRequest parsed;
  EGP_ASSIGN_OR_RETURN(parsed.dataset, StringField(doc, "dataset", ""));
  if (const JsonValue* budget = doc.Find("budget")) {
    EGP_ASSIGN_OR_RETURN(parsed.budget, ParseBudget(*budget));
  }
  EGP_RETURN_IF_ERROR(ParseMeasures(doc, &parsed.measures));
  return parsed;
}

std::string PreviewResponseToJson(const Engine& engine,
                                  const std::string& dataset,
                                  const PreviewResponse& response,
                                  bool include_materialized) {
  std::string out = "{\"dataset\":" + Quoted(dataset);
  out += ",\"algorithm\":" + Quoted(response.algorithm);
  out += ",\"constraints\":{\"k\":" + std::to_string(response.size.k);
  out += ",\"n\":" + std::to_string(response.size.n);
  out += ",\"distance\":{\"mode\":";
  switch (response.distance.mode) {
    case DistanceMode::kNone:
      out += "\"none\"";
      break;
    case DistanceMode::kTight:
      out += "\"tight\"";
      break;
    case DistanceMode::kDiverse:
      out += "\"diverse\"";
      break;
  }
  out += ",\"d\":" + std::to_string(response.distance.d) + "}}";
  if (!response.rationale.empty()) {
    out += ",\"rationale\":" + Quoted(response.rationale);
  }
  out += ",\"cacheHit\":";
  out += response.prepared_cache_hit ? "true" : "false";
  out += ",\"score\":" + Number(response.score);
  out += ",\"preview\":" + PreviewToJson(*response.prepared,
                                         response.preview);
  if (include_materialized && engine.graph() != nullptr) {
    out += ",\"materialized\":" +
           MaterializedPreviewToJson(*engine.graph(), response.materialized);
  }
  out += ",\"stats\":{\"subsetsEnumerated\":" +
         std::to_string(response.stats.subsets_enumerated);
  out += ",\"subsetsScored\":" + std::to_string(response.stats.subsets_scored);
  out += ",\"truncated\":";
  out += response.stats.truncated ? "true" : "false";
  out += "}";
  out += ",\"timings\":{\"prepareSeconds\":" +
         Number(response.prepare_seconds);
  out += ",\"discoverSeconds\":" + Number(response.discover_seconds);
  out += ",\"sampleSeconds\":" + Number(response.sample_seconds);
  const PrepareTimings& phases = response.prepare_timings;
  out += ",\"preparePhases\":{\"keySeconds\":" + Number(phases.key_seconds);
  out += ",\"nonkeySeconds\":" + Number(phases.nonkey_seconds);
  out += ",\"distanceSeconds\":" + Number(phases.distance_seconds);
  out += ",\"candidateSortSeconds\":" + Number(phases.candidate_sort_seconds);
  out += ",\"totalSeconds\":" + Number(phases.total_seconds) + "}}}";
  return out;
}

PreviewService::PreviewService(DatasetCatalog catalog, std::string version,
                               const AdmissionOptions& admission)
    : catalog_(std::move(catalog)),
      version_(std::move(version)),
      admission_(admission) {}

Result<const Engine*> PreviewService::ResolveDataset(
    const std::string& name, std::string* resolved_name) const {
  if (name.empty()) {
    const Engine* engine = catalog_.Default();
    if (engine == nullptr) {
      return Status::InvalidArgument(
          "\"dataset\" is required when several datasets are loaded (see "
          "GET /v1/datasets)");
    }
    *resolved_name = catalog_.default_name();
    return engine;
  }
  const Engine* engine = catalog_.Find(name);
  if (engine == nullptr) {
    // Distinguish "no such dataset" (404, client error) from "we know
    // it but it failed to load" (503, degraded server).
    if (const DatasetCatalog::FailedDataset* failed =
            catalog_.FindFailed(name)) {
      return Status::Unavailable("dataset '" + name +
                                 "' failed to load: " + failed->error);
    }
    return Status::NotFound("unknown dataset '" + name +
                            "' (see GET /v1/datasets)");
  }
  *resolved_name = name;
  return engine;
}

void PreviewService::EnableProfiler(int default_hz) {
  if (default_hz < Profiler::kMinHz) default_hz = Profiler::kDefaultHz;
  if (default_hz > Profiler::kMaxHz) default_hz = Profiler::kMaxHz;
  profiler_default_hz_.store(default_hz, std::memory_order_relaxed);
  profiler_enabled_.store(true, std::memory_order_release);
}

HttpResponse PreviewService::Handle(const HttpRequest& request) {
  Timer timer;
  std::string endpoint = "other";
  std::string dataset;
  HttpResponse response = Route(request, &endpoint, &dataset);
  response.headers.emplace_back("Server", "egp/" + version_);
  const double seconds = timer.ElapsedSeconds();
  metrics_.RecordRequest(endpoint, response.status, seconds);
  // Dataset-scoped series only for names that resolved against the
  // catalog — arbitrary client strings must not mint label values.
  if (!dataset.empty()) {
    metrics_.RecordDataset(dataset, response.status, seconds);
  }
  return response;
}

HttpResponse PreviewService::Route(const HttpRequest& request,
                                   std::string* endpoint,
                                   std::string* dataset) {
  const std::string_view path = request.Path();
  const bool get = request.method == "GET" || request.method == "HEAD";
  const bool post = request.method == "POST";

  if (path == "/healthz" || path == "/v1/datasets" || path == "/metrics" ||
      path == "/v1/preview" || path == "/v1/suggest" ||
      path == "/v1/debug/requests" || path == "/v1/debug/locks" ||
      path == "/v1/debug/cache" || path == "/v1/debug/profile") {
    *endpoint = std::string(path);
  }
  if (path == "/healthz") {
    if (!get) return JsonErrorResponse(405, "use GET /healthz");
    return HandleHealthz();
  }
  if (path == "/metrics") {
    if (!get) return JsonErrorResponse(405, "use GET /metrics");
    return HandleMetrics();
  }
  if (path == "/v1/debug/requests") {
    if (!get) return JsonErrorResponse(405, "use GET /v1/debug/requests");
    return HandleDebugRequests(request);
  }
  if (path == "/v1/debug/locks") {
    if (!get) return JsonErrorResponse(405, "use GET /v1/debug/locks");
    return HandleDebugLocks();
  }
  if (path == "/v1/debug/cache") {
    if (!get) return JsonErrorResponse(405, "use GET /v1/debug/cache");
    return HandleDebugCache();
  }
  if (path == "/v1/debug/profile") {
    if (!get) return JsonErrorResponse(405, "use GET /v1/debug/profile");
    return HandleDebugProfile(request);
  }
  if (path == "/v1/datasets") {
    if (!get) return JsonErrorResponse(405, "use GET /v1/datasets");
    return HandleDatasets();
  }
  if (path == "/v1/preview") {
    if (!post) return JsonErrorResponse(405, "use POST /v1/preview");
    return HandlePreview(request, dataset);
  }
  if (path == "/v1/suggest") {
    if (!post) return JsonErrorResponse(405, "use POST /v1/suggest");
    return HandleSuggest(request, dataset);
  }
  return JsonErrorResponse(
      404, "no such endpoint (have: GET /healthz, GET /metrics, GET "
           "/v1/datasets, POST /v1/preview, POST /v1/suggest)");
}

HttpResponse PreviewService::HandlePreview(const HttpRequest& request,
                                           std::string* dataset_out) {
  const auto doc = ParseJson(request.body);
  if (!doc.ok()) {
    return JsonErrorResponse(HttpStatusForBody(doc.status()),
                             doc.status().message());
  }
  const auto parsed = ParsePreviewRequestJson(*doc);
  if (!parsed.ok()) return JsonErrorResponse(400, parsed.status().message());

  std::string dataset;
  const auto engine = ResolveDataset(parsed->dataset, &dataset);
  if (!engine.ok()) {
    return JsonErrorResponse(HttpStatusForDataset(engine.status()),
                             engine.status().message());
  }
  *dataset_out = dataset;
  RequestTrace* trace = CurrentRequestTrace();
  if (trace != nullptr) trace->dataset = dataset;

  // Cost-based admission: a prepared measure configuration is hot
  // (discovery only — the flat connection cap bounds it); an unprepared
  // one is cold (a PreparedSchema build) and must take a bounded build
  // slot or be shed, so a burst of expensive requests can't starve the
  // cheap traffic behind it.
  AdmissionController::Ticket ticket;
  if ((*engine)->IsPrepared(parsed->request.measures)) {
    admission_.RecordHot();
  } else {
    const ScopedTracePhase profiled_phase(TracePhase::kAdmission);
    Timer admission_timer;
    ticket = admission_.AcquireCold();
    if (trace != nullptr) {
      trace->admission_seconds = admission_timer.ElapsedSeconds();
    }
    if (!ticket.admitted()) {
      if (trace != nullptr) trace->outcome = "shed";
      HttpResponse shed = JsonErrorResponse(
          503, "cold preview capacity exhausted (schema build slots and "
               "queue are full); retry shortly");
      shed.headers.emplace_back(
          "Retry-After",
          std::to_string(admission_.options().retry_after_seconds));
      return shed;
    }
  }

  const auto served = (*engine)->Preview(parsed->request);
  if (!served.ok()) {
    return JsonErrorResponse(HttpStatusFor(served.status()),
                             served.status().message());
  }
  HttpResponse response;
  response.body = PreviewResponseToJson(**engine, dataset, *served,
                                        parsed->request.sample_rows > 0);
  return response;
}

HttpResponse PreviewService::HandleSuggest(const HttpRequest& request,
                                           std::string* dataset_out) {
  const auto doc = ParseJson(request.body);
  if (!doc.ok()) {
    return JsonErrorResponse(HttpStatusForBody(doc.status()),
                             doc.status().message());
  }
  const auto parsed = ParseSuggestRequestJson(*doc);
  if (!parsed.ok()) return JsonErrorResponse(400, parsed.status().message());

  std::string dataset;
  const auto engine = ResolveDataset(parsed->dataset, &dataset);
  if (!engine.ok()) {
    return JsonErrorResponse(HttpStatusForDataset(engine.status()),
                             engine.status().message());
  }
  *dataset_out = dataset;
  const auto suggestion =
      (*engine)->Suggest(parsed->budget, parsed->measures);
  if (!suggestion.ok()) {
    return JsonErrorResponse(HttpStatusFor(suggestion.status()),
                             suggestion.status().message());
  }
  HttpResponse response;
  response.body =
      "{\"dataset\":" + Quoted(dataset) +
      ",\"k\":" + std::to_string(suggestion->size.k) +
      ",\"n\":" + std::to_string(suggestion->size.n) +
      ",\"tightD\":" + std::to_string(suggestion->tight_d) +
      ",\"diverseD\":" + std::to_string(suggestion->diverse_d) +
      ",\"rationale\":" + Quoted(suggestion->rationale) + "}";
  return response;
}

HttpResponse PreviewService::HandleDatasets() const {
  std::string body = "{\"datasets\":[";
  bool first = true;
  for (const DatasetCatalog::Info& info : catalog_.infos()) {
    if (!first) body += ",";
    first = false;
    body += "{\"name\":" + Quoted(info.name);
    body += ",\"path\":" + Quoted(info.path);
    body += ",\"storage\":" + Quoted(info.storage);
    body += ",\"entities\":" + std::to_string(info.entities);
    body += ",\"relationships\":" + std::to_string(info.relationships);
    body += ",\"entityTypes\":" + std::to_string(info.entity_types);
    body += ",\"relationshipTypes\":" +
            std::to_string(info.relationship_types);
    body += ",\"status\":\"loaded\"}";
  }
  for (const DatasetCatalog::FailedDataset& failed : catalog_.failed()) {
    if (!first) body += ",";
    first = false;
    body += "{\"name\":" + Quoted(failed.name);
    body += ",\"path\":" + Quoted(failed.path);
    body += ",\"status\":\"failed\"";
    body += ",\"error\":" + Quoted(failed.error) + "}";
  }
  body += "]}";
  HttpResponse response;
  response.body = std::move(body);
  return response;
}

HttpResponse PreviewService::HandleHealthz() const {
  // Degraded (some datasets failed to load) still answers 200: the
  // process is healthy and serving what it has — orchestrators should
  // not kill it. The body carries the detail.
  HttpResponse response;
  std::string body =
      std::string("{\"status\":") +
      (catalog_.degraded() ? "\"degraded\"" : "\"ok\"") +
      ",\"version\":" + Quoted(version_) +
      ",\"datasets\":" + std::to_string(catalog_.size());
  if (catalog_.degraded()) {
    body += ",\"failedDatasets\":" + std::to_string(catalog_.failed().size());
    body += ",\"failed\":[";
    bool first = true;
    for (const DatasetCatalog::FailedDataset& failed : catalog_.failed()) {
      if (!first) body += ",";
      first = false;
      body += "{\"name\":" + Quoted(failed.name) +
              ",\"error\":" + Quoted(failed.error) + "}";
    }
    body += "]";
  }
  body += "}";
  response.body = std::move(body);
  return response;
}

HttpResponse PreviewService::HandleMetrics() const {
  std::string out = metrics_.PrometheusText();

  AppendMetricHeader(&out, "egp_prepared_cache_hits_total", "counter",
                     "Prepared-schema cache hits, by dataset.");
  for (const DatasetCatalog::Info& info : catalog_.infos()) {
    const Engine* engine = catalog_.Find(info.name);
    const Engine::CacheStats stats = engine->cache_stats();
    AppendMetric(&out, "egp_prepared_cache_hits_total",
                 "dataset=\"" + info.name + "\"", stats.hits);
  }
  AppendMetricHeader(&out, "egp_prepared_cache_misses_total", "counter",
                     "Prepared-schema cache misses, by dataset.");
  for (const DatasetCatalog::Info& info : catalog_.infos()) {
    const Engine::CacheStats stats =
        catalog_.Find(info.name)->cache_stats();
    AppendMetric(&out, "egp_prepared_cache_misses_total",
                 "dataset=\"" + info.name + "\"", stats.misses);
  }
  AppendMetricHeader(&out, "egp_prepared_cache_evictions_total", "counter",
                     "Prepared-schema cache evictions, by dataset.");
  for (const DatasetCatalog::Info& info : catalog_.infos()) {
    const Engine::CacheStats stats =
        catalog_.Find(info.name)->cache_stats();
    AppendMetric(&out, "egp_prepared_cache_evictions_total",
                 "dataset=\"" + info.name + "\"", stats.evictions);
  }
  AppendMetricHeader(&out, "egp_prepared_cache_entries", "gauge",
                     "Prepared schemas currently cached, by dataset.");
  for (const DatasetCatalog::Info& info : catalog_.infos()) {
    const Engine::CacheStats stats =
        catalog_.Find(info.name)->cache_stats();
    AppendMetric(&out, "egp_prepared_cache_entries",
                 "dataset=\"" + info.name + "\"",
                 static_cast<uint64_t>(stats.entries));
  }

  AppendMetricHeader(&out, "egp_catalog_datasets_loaded", "gauge",
                     "Datasets serving from the catalog.");
  AppendMetric(&out, "egp_catalog_datasets_loaded", "",
               static_cast<uint64_t>(catalog_.size()));
  AppendMetricHeader(&out, "egp_catalog_datasets_failed", "gauge",
                     "Datasets that failed to load.");
  AppendMetric(&out, "egp_catalog_datasets_failed", "",
               static_cast<uint64_t>(catalog_.failed().size()));

  {
    const AdmissionStats admission = admission_.stats();
    AppendMetricHeader(&out, "egp_admission_hot_total", "counter",
                       "Previews admitted on the hot (cached) path.");
    AppendMetric(&out, "egp_admission_hot_total", "", admission.hot_admitted);
    AppendMetricHeader(&out, "egp_admission_cold_admitted_total", "counter",
                       "Cold previews granted a build slot.");
    AppendMetric(&out, "egp_admission_cold_admitted_total", "",
                 admission.cold_admitted);
    AppendMetricHeader(&out, "egp_admission_cold_queued_total", "counter",
                       "Cold previews that waited in the build queue.");
    AppendMetric(&out, "egp_admission_cold_queued_total", "",
                 admission.cold_queued);
    AppendMetricHeader(&out, "egp_admission_cold_shed_total", "counter",
                       "Cold previews shed with 503.");
    AppendMetric(&out, "egp_admission_cold_shed_total", "",
                 admission.cold_shed);
    AppendMetricHeader(&out, "egp_admission_cold_inflight", "gauge",
                       "Cold builds currently holding a slot.");
    AppendMetric(&out, "egp_admission_cold_inflight", "",
                 static_cast<uint64_t>(admission.cold_inflight));
    AppendMetricHeader(&out, "egp_admission_cold_queue_depth", "gauge",
                       "Cold builds currently queued for a slot.");
    AppendMetric(&out, "egp_admission_cold_queue_depth", "",
                 static_cast<uint64_t>(admission.cold_queue_depth));
  }

  if (const HttpServer* server = server_.load(std::memory_order_acquire)) {
    const HttpServerStats stats = server->stats();
    AppendMetricHeader(&out, "egp_http_connections_accepted_total",
                       "counter", "Connections accepted.");
    AppendMetric(&out, "egp_http_connections_accepted_total", "",
                 stats.accepted_connections);
    AppendMetricHeader(&out, "egp_http_connections_rejected_total",
                       "counter", "Connections 503'd at the cap.");
    AppendMetric(&out, "egp_http_connections_rejected_total", "",
                 stats.rejected_connections);
    AppendMetricHeader(&out, "egp_http_connections_timed_out_total",
                       "counter", "Connections closed by an I/O deadline.");
    AppendMetric(&out, "egp_http_connections_timed_out_total", "",
                 stats.timed_out_connections);
    AppendMetricHeader(&out, "egp_http_parse_errors_total", "counter",
                       "Requests rejected by the HTTP parser.");
    AppendMetric(&out, "egp_http_parse_errors_total", "",
                 stats.parse_errors);
    AppendMetricHeader(&out, "egp_http_accept_overloads_total", "counter",
                       "Accept failures from fd or memory exhaustion.");
    AppendMetric(&out, "egp_http_accept_overloads_total", "",
                 stats.accept_overloads);
    AppendMetricHeader(&out, "egp_http_overload_sheds_total", "counter",
                       "Connections shed via the emergency descriptor.");
    AppendMetric(&out, "egp_http_overload_sheds_total", "",
                 stats.overload_sheds);

    const HttpServerRuntimeStats runtime = server->runtime_stats();
    AppendHistogram(
        &out, "egp_loop_lag_seconds",
        "Event-loop pass duration (epoll wake until back to waiting).",
        runtime.loop_lag);
    AppendMetricHeader(&out, "egp_connections", "gauge",
                       "Open connections by lifecycle phase.");
    AppendMetric(&out, "egp_connections", "phase=\"reading\"",
                 static_cast<uint64_t>(runtime.connections_reading));
    AppendMetric(&out, "egp_connections", "phase=\"handling\"",
                 static_cast<uint64_t>(runtime.connections_handling));
    AppendMetric(&out, "egp_connections", "phase=\"writing\"",
                 static_cast<uint64_t>(runtime.connections_writing));
    AppendMetricHeader(&out, "egp_timer_heap_depth", "gauge",
                       "Deadline-timer heap entries (incl. stale).");
    AppendMetric(&out, "egp_timer_heap_depth", "",
                 static_cast<uint64_t>(runtime.timer_heap_depth));
    AppendMetricHeader(&out, "egp_completion_queue_depth", "gauge",
                       "Handler results awaiting the event loop.");
    AppendMetric(&out, "egp_completion_queue_depth", "",
                 static_cast<uint64_t>(runtime.completion_queue_depth));
  }

  if (const FlightRecorder* recorder =
          recorder_.load(std::memory_order_acquire)) {
    AppendMetricHeader(&out, "egp_flight_recorder_traces_total", "counter",
                       "Request traces recorded (ring overwrites count).");
    AppendMetric(&out, "egp_flight_recorder_traces_total", "",
                 recorder->recorded());
  }

  {
    const std::vector<LockSiteSnapshot> sites = SnapshotLockSites();
    if (!sites.empty()) {
      AppendMetricHeader(&out, "egp_mutex_acquisitions_total", "counter",
                         "Labeled-mutex acquisitions, by site.");
      for (const LockSiteSnapshot& site : sites) {
        AppendMetric(&out, "egp_mutex_acquisitions_total",
                     "site=\"" + std::string(site.name) + "\"",
                     site.acquisitions);
      }
      AppendMetricHeader(&out, "egp_mutex_contentions_total", "counter",
                         "Acquisitions that found the lock held, by site.");
      for (const LockSiteSnapshot& site : sites) {
        AppendMetric(&out, "egp_mutex_contentions_total",
                     "site=\"" + std::string(site.name) + "\"",
                     site.contentions);
      }
      // Hand-rolled histogram: lock-wait bounds differ from the request
      // LatencyHistogram's, so AppendHistogramSamples does not apply.
      AppendMetricHeader(&out, "egp_mutex_wait_seconds", "histogram",
                         "Contended lock-wait time, by site.");
      for (const LockSiteSnapshot& site : sites) {
        const std::string prefix = "site=\"" + std::string(site.name) + "\"";
        uint64_t cumulative = 0;
        for (size_t i = 0; i + 1 < kLockWaitBucketCount; ++i) {
          cumulative += site.wait_buckets[i];
          AppendMetric(&out, "egp_mutex_wait_seconds_bucket",
                       prefix + ",le=\"" +
                           StrFormat("%g", kLockWaitBounds[i]) + "\"",
                       cumulative);
        }
        // +Inf and _count derive from the bucket sums (not the separate
        // contentions counter) so a scrape racing RecordLockWait still
        // sees a self-consistent, monotone histogram.
        cumulative += site.wait_buckets[kLockWaitBucketCount - 1];
        AppendMetric(&out, "egp_mutex_wait_seconds_bucket",
                     prefix + ",le=\"+Inf\"", cumulative);
        AppendMetric(&out, "egp_mutex_wait_seconds_sum", prefix,
                     site.wait_seconds);
        AppendMetric(&out, "egp_mutex_wait_seconds_count", prefix,
                     cumulative);
      }
    }
  }

  {
    const ProfilerStats prof = Profiler::Global().stats();
    AppendMetricHeader(&out, "egp_profiler_windows_total", "counter",
                       "Completed profiling windows.");
    AppendMetric(&out, "egp_profiler_windows_total", "", prof.windows_total);
    AppendMetricHeader(&out, "egp_profiler_samples_total", "counter",
                       "Stack samples captured across all windows.");
    AppendMetric(&out, "egp_profiler_samples_total", "", prof.samples_total);
    AppendMetricHeader(&out, "egp_profiler_dropped_total", "counter",
                       "Samples dropped to full per-thread rings.");
    AppendMetric(&out, "egp_profiler_dropped_total", "", prof.dropped_total);
    AppendMetricHeader(&out, "egp_profiler_active", "gauge",
                       "1 while a profiling window is collecting.");
    AppendMetric(&out, "egp_profiler_active", "",
                 static_cast<uint64_t>(prof.active ? 1 : 0));
    AppendMetricHeader(&out, "egp_profiler_threads", "gauge",
                       "Threads registered for profiling signals.");
    AppendMetric(&out, "egp_profiler_threads", "",
                 static_cast<uint64_t>(prof.registered_threads));
  }

  const ProcessStats process = ReadProcessStats();
  AppendMetricHeader(&out, "egp_process_resident_bytes", "gauge",
                     "Resident set size from /proc/self/statm.");
  AppendMetric(&out, "egp_process_resident_bytes", "",
               process.resident_bytes);
  AppendMetricHeader(&out, "egp_process_open_fds", "gauge",
                     "Open file descriptors.");
  AppendMetric(&out, "egp_process_open_fds", "", process.open_fds);
  AppendMetricHeader(&out, "egp_process_uptime_seconds", "gauge",
                     "Seconds since process start.");
  AppendMetric(&out, "egp_process_uptime_seconds", "",
               process.uptime_seconds);

  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = std::move(out);
  return response;
}

HttpResponse PreviewService::HandleDebugRequests(
    const HttpRequest& request) const {
  const FlightRecorder* recorder =
      recorder_.load(std::memory_order_acquire);
  if (recorder == nullptr) {
    return JsonErrorResponse(503, "flight recorder not attached");
  }
  const std::string_view query = request.Query();
  double min_ms = 0.0;
  int status = 0;
  if (const std::string_view raw = QueryParam(query, "min_ms");
      !raw.empty()) {
    const std::string text(raw);
    char* end = nullptr;
    min_ms = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || !(min_ms >= 0)) {
      return JsonErrorResponse(400, "min_ms must be a number >= 0");
    }
  }
  if (const std::string_view raw = QueryParam(query, "status");
      !raw.empty()) {
    const std::string text(raw);
    char* end = nullptr;
    const long parsed = std::strtol(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size() || parsed < 100 || parsed > 599) {
      return JsonErrorResponse(400, "status must be an HTTP status code");
    }
    status = static_cast<int>(parsed);
  }
  FlightRecorder::Filter filter;
  filter.min_ms = min_ms;
  filter.status = status;
  if (const std::string_view raw = QueryParam(query, "limit");
      !raw.empty()) {
    const std::string text(raw);
    char* end = nullptr;
    const long parsed = std::strtol(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size() || parsed < 0) {
      return JsonErrorResponse(400, "limit must be a non-negative integer");
    }
    filter.limit = static_cast<size_t>(parsed);
  }
  filter.dataset = std::string(QueryParam(query, "dataset"));

  std::string body = "{\"recorded\":" + std::to_string(recorder->recorded());
  body += ",\"capacity\":" + std::to_string(recorder->capacity());
  body += ",\"requests\":[";
  bool first = true;
  for (const RequestTrace& trace : recorder->Snapshot(filter)) {
    if (!first) body += ",";
    first = false;
    body += RequestTraceToJson(trace);
  }
  body += "]}";
  HttpResponse response;
  response.body = std::move(body);
  return response;
}

HttpResponse PreviewService::HandleDebugLocks() const {
  std::vector<LockSiteSnapshot> sites = SnapshotLockSites();
  std::sort(sites.begin(), sites.end(),
            [](const LockSiteSnapshot& a, const LockSiteSnapshot& b) {
              if (a.wait_seconds != b.wait_seconds) {
                return a.wait_seconds > b.wait_seconds;
              }
              return a.contentions > b.contentions;
            });
  std::string body = "{\"sites\":[";
  bool first = true;
  for (const LockSiteSnapshot& site : sites) {
    if (!first) body += ",";
    first = false;
    body += "{\"site\":" + Quoted(site.name);
    body += ",\"acquisitions\":" + std::to_string(site.acquisitions);
    body += ",\"contentions\":" + std::to_string(site.contentions);
    body += ",\"waitSeconds\":" + Number(site.wait_seconds);
    body += ",\"maxWaitSeconds\":" + Number(site.max_wait_seconds);
    body += ",\"holdSamples\":" + std::to_string(site.hold_samples);
    body += ",\"holdSeconds\":" + Number(site.hold_seconds);
    body += ",\"maxHoldSeconds\":" + Number(site.max_hold_seconds);
    body += "}";
  }
  body += "]}";
  HttpResponse response;
  response.body = std::move(body);
  return response;
}

HttpResponse PreviewService::HandleDebugCache() const {
  std::string body = "{\"datasets\":[";
  bool first_dataset = true;
  for (const DatasetCatalog::Info& info : catalog_.infos()) {
    const Engine* engine = catalog_.Find(info.name);
    if (engine == nullptr) continue;
    if (!first_dataset) body += ",";
    first_dataset = false;
    const Engine::CacheStats stats = engine->cache_stats();
    body += "{\"dataset\":" + Quoted(info.name);
    body += ",\"hits\":" + std::to_string(stats.hits);
    body += ",\"misses\":" + std::to_string(stats.misses);
    body += ",\"evictions\":" + std::to_string(stats.evictions);
    body += ",\"entries\":[";
    bool first_entry = true;
    for (const Engine::CacheEntryInfo& entry : engine->cache_entries()) {
      if (!first_entry) body += ",";
      first_entry = false;
      body += "{\"measures\":" + Quoted(entry.measures);
      body += ",\"ready\":" + std::string(entry.ready ? "true" : "false");
      body += ",\"building\":" +
              std::string(entry.building ? "true" : "false");
      body += ",\"hits\":" + std::to_string(entry.hits);
      body += ",\"ageSeconds\":" + Number(entry.age_seconds);
      body += ",\"idleSeconds\":" + Number(entry.idle_seconds);
      body += ",\"approxBytes\":" + std::to_string(entry.approx_bytes);
      body += "}";
    }
    body += "]}";
  }
  body += "]}";
  HttpResponse response;
  response.body = std::move(body);
  return response;
}

HttpResponse PreviewService::HandleDebugProfile(
    const HttpRequest& request) const {
  if (!profiler_enabled_.load(std::memory_order_acquire)) {
    return JsonErrorResponse(
        503, "profiler disabled; start the server with --profiler");
  }
  const std::string_view query = request.Query();
  double seconds = 2.0;
  if (const std::string_view raw = QueryParam(query, "seconds");
      !raw.empty()) {
    const std::string text(raw);
    char* end = nullptr;
    seconds = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || !(seconds > 0) ||
        seconds > Profiler::kMaxWindowSeconds) {
      return JsonErrorResponse(
          400, StrFormat("seconds must be a number in (0, %g]",
                         Profiler::kMaxWindowSeconds));
    }
  }
  int hz = profiler_default_hz_.load(std::memory_order_relaxed);
  if (const std::string_view raw = QueryParam(query, "hz"); !raw.empty()) {
    const std::string text(raw);
    char* end = nullptr;
    const long parsed = std::strtol(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size() || parsed < Profiler::kMinHz ||
        parsed > Profiler::kMaxHz) {
      return JsonErrorResponse(
          400, StrFormat("hz must be an integer in [%d, %d]",
                         Profiler::kMinHz, Profiler::kMaxHz));
    }
    hz = static_cast<int>(parsed);
  }

  // Collect blocks this handler thread for the whole window; the event
  // loop keeps serving other requests meanwhile. Concurrent collections
  // are refused inside Collect (Unavailable → 503).
  const auto result = Profiler::Global().Collect(seconds, hz);
  if (!result.ok()) {
    return JsonErrorResponse(HttpStatusFor(result.status()),
                             result.status().message());
  }
  HttpResponse response;
  response.content_type = "text/plain; charset=utf-8";
  response.headers.emplace_back("X-Egp-Profile-Samples",
                                std::to_string(result->samples));
  response.headers.emplace_back("X-Egp-Profile-Dropped",
                                std::to_string(result->dropped));
  response.headers.emplace_back("X-Egp-Profile-Hz",
                                std::to_string(result->hz));
  response.headers.emplace_back("X-Egp-Profile-Seconds",
                                StrFormat("%g", result->seconds));
  response.headers.emplace_back("X-Egp-Profile-Threads",
                                std::to_string(result->threads));
  response.body = result->folded;
  return response;
}

}  // namespace egp
