#include "server/access_log.h"

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/strings.h"
#include "io/json_export.h"

namespace egp {
namespace {

std::string Quoted(std::string_view text) {
  return "\"" + JsonEscape(text) + "\"";
}

/// Milliseconds with enough digits for sub-microsecond phases.
std::string Millis(double seconds) {
  return StrFormat("%.6g", seconds * 1e3);
}

}  // namespace

std::string RequestTraceToJson(const RequestTrace& trace,
                               std::string_view level) {
  std::string out = "{\"id\":" + Quoted(trace.id);
  if (!level.empty()) out += ",\"level\":" + Quoted(level);
  out += ",\"method\":" + Quoted(trace.method);
  out += ",\"path\":" + Quoted(trace.path);
  out += ",\"dataset\":" + Quoted(trace.dataset);
  out += ",\"status\":" + std::to_string(trace.status);
  out += ",\"outcome\":" + Quoted(trace.outcome);
  out += ",\"cacheHit\":";
  out += trace.cache_hit ? "true" : "false";
  out += ",\"bytesIn\":" + std::to_string(trace.bytes_in);
  out += ",\"bytesOut\":" + std::to_string(trace.bytes_out);
  out += ",\"totalMs\":" + Millis(trace.total_seconds);
  out += ",\"phases\":{\"readMs\":" + Millis(trace.read_seconds);
  out += ",\"queueMs\":" + Millis(trace.queue_seconds);
  out += ",\"admissionMs\":" + Millis(trace.admission_seconds);
  out += ",\"handlerMs\":" + Millis(trace.handler_seconds);
  out += ",\"serializeMs\":" + Millis(trace.serialize_seconds);
  out += ",\"flushMs\":" + Millis(trace.flush_seconds) + "}";
  out += ",\"engine\":{\"prepareMs\":" + Millis(trace.prepare_seconds);
  out += ",\"discoverMs\":" + Millis(trace.discover_seconds);
  out += ",\"sampleMs\":" + Millis(trace.sample_seconds);
  out += ",\"prepare\":{\"keyMs\":" + Millis(trace.prepare_key_seconds);
  out += ",\"nonkeyMs\":" + Millis(trace.prepare_nonkey_seconds);
  out += ",\"distanceMs\":" + Millis(trace.prepare_distance_seconds);
  out += ",\"candidateSortMs\":" +
         Millis(trace.prepare_candidate_sort_seconds) + "}}}";
  return out;
}

Result<std::unique_ptr<AccessLog>> AccessLog::Open(
    const AccessLogOptions& options) {
  std::FILE* stream = nullptr;
  bool owns = false;
  if (options.path == "stderr") {
    stream = stderr;
  } else {
    stream = std::fopen(options.path.c_str(), "ae");
    if (stream == nullptr) {
      return Status::IOError("cannot open access log '" + options.path +
                             "': " + std::strerror(errno));
    }
    owns = true;
  }
  return std::unique_ptr<AccessLog>(new AccessLog(stream, owns, options));
}

AccessLog::~AccessLog() {
  MutexLock lock(&mu_);
  if (owns_stream_ && stream_ != nullptr) std::fclose(stream_);
  stream_ = nullptr;
}

void AccessLog::Write(const RequestTrace& trace) {
  const bool slow = options_.slow_request_ms >= 0 &&
                    trace.total_seconds * 1e3 >= options_.slow_request_ms;
  const LogLevel level = slow ? LogLevel::kWarning : LogLevel::kInfo;
  if (level < GetLogLevel()) return;
  std::string line = RequestTraceToJson(trace, slow ? "warning" : "info");
  line += "\n";
  MutexLock lock(&mu_);
  if (stream_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), stream_);
  // Flushed per line so a tailing operator (or the smoke test) sees the
  // trace as soon as the request finishes, not at buffer granularity.
  std::fflush(stream_);
  ++lines_;
}

uint64_t AccessLog::lines_written() const {
  MutexLock lock(&mu_);
  return lines_;
}

}  // namespace egp
