// Cost-based admission for /v1/preview: not every request costs the
// same. A request whose measure configuration is already prepared (an
// Engine cache hit) is "hot" — discovery only, milliseconds. A request
// needing a PreparedSchema build is "cold" — seconds of scoring work
// that can monopolize every handler thread and starve the cheap
// traffic behind it.
//
// Hot requests pass through under the server's flat in-flight cap
// (HttpServerOptions::max_connections) — they are cheap enough that the
// connection bound is the right bound. Cold requests go through a
// bounded build gate: at most `max_cold_inflight` builds run at once,
// at most `max_cold_queue` more wait (up to `queue_timeout_ms`), and
// everything beyond that is shed immediately with 503 + Retry-After so
// clients back off instead of piling up.
//
// Caveat, by design: a *queued* cold request holds its handler thread
// while it waits — the queue bounds how many threads can be parked this
// way, it does not free them. Size max_cold_queue well below the
// worker count if cold storms must never exhaust the pool.
#ifndef EGP_SERVER_ADMISSION_H_
#define EGP_SERVER_ADMISSION_H_

#include <cstddef>
#include <cstdint>

#include "common/mutex.h"

namespace egp {

struct AdmissionOptions {
  /// Concurrent PreparedSchema builds allowed; 0 = unlimited (admission
  /// control off for cold requests).
  size_t max_cold_inflight = 2;
  /// Cold requests allowed to wait for a build slot; beyond this they
  /// are shed at once.
  size_t max_cold_queue = 16;
  /// How long a queued cold request waits for a slot before being shed.
  int queue_timeout_ms = 2'000;
  /// Retry-After value (seconds) stamped on shed responses.
  int retry_after_seconds = 1;
};

/// Counters (monotone) and gauges (instantaneous) for /metrics.
struct AdmissionStats {
  uint64_t hot_admitted = 0;
  uint64_t cold_admitted = 0;
  uint64_t cold_queued = 0;  // waited for a slot (later admitted or shed)
  uint64_t cold_shed = 0;    // 503'd: queue full or wait timed out
  size_t cold_inflight = 0;     // gauge: builds holding a slot now
  size_t cold_queue_depth = 0;  // gauge: requests waiting now
};

/// Thread-safe gate; one instance per PreviewService.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options)
      : options_(options) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII cold-build slot: releases (and wakes one queued waiter) on
  /// destruction. A default-constructed ticket holds nothing —
  /// admitted() says which kind this is.
  class Ticket {
   public:
    Ticket() = default;
    ~Ticket() {
      if (controller_ != nullptr) controller_->Release();
    }
    Ticket(Ticket&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        if (controller_ != nullptr) controller_->Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    bool admitted() const { return controller_ != nullptr; }

   private:
    friend class AdmissionController;
    explicit Ticket(AdmissionController* controller)
        : controller_(controller) {}
    AdmissionController* controller_ = nullptr;
  };

  /// Acquires a cold-build slot, waiting in the bounded queue if all
  /// slots are busy. Returns an empty ticket when shed (queue full, or
  /// no slot freed within queue_timeout_ms) — answer 503 then.
  Ticket AcquireCold();

  /// Counts a hot (cache-hit) pass-through.
  void RecordHot();

  AdmissionStats stats() const;
  const AdmissionOptions& options() const { return options_; }

 private:
  void Release();

  const AdmissionOptions options_;
  mutable Mutex mu_{"admission"};
  CondVar slot_freed_;
  size_t cold_inflight_ EGP_GUARDED_BY(mu_) = 0;
  size_t waiting_ EGP_GUARDED_BY(mu_) = 0;
  uint64_t hot_admitted_ EGP_GUARDED_BY(mu_) = 0;
  uint64_t cold_admitted_ EGP_GUARDED_BY(mu_) = 0;
  uint64_t cold_queued_ EGP_GUARDED_BY(mu_) = 0;
  uint64_t cold_shed_ EGP_GUARDED_BY(mu_) = 0;
};

}  // namespace egp

#endif  // EGP_SERVER_ADMISSION_H_
