#include "server/flight_recorder.h"

namespace egp {

void FlightRecorder::Record(const RequestTrace& trace) {
  MutexLock lock(&mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(trace);
  } else {
    ring_[next_] = trace;
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<RequestTrace> FlightRecorder::Snapshot(
    const Filter& filter) const {
  MutexLock lock(&mu_);
  std::vector<RequestTrace> out;
  out.reserve(ring_.size());
  // Walk the ring newest -> oldest. `next_` is the oldest slot once the
  // ring has wrapped; before wrapping the vector is in insertion order.
  const size_t n = ring_.size();
  for (size_t i = 0; i < n; ++i) {
    if (filter.limit > 0 && out.size() >= filter.limit) break;
    const size_t slot = (next_ + n - 1 - i) % n;
    const RequestTrace& trace = ring_[slot];
    if (trace.total_seconds * 1e3 < filter.min_ms) continue;
    if (filter.status > 0 && trace.status != filter.status) continue;
    if (!filter.dataset.empty() && trace.dataset != filter.dataset) continue;
    out.push_back(trace);
  }
  return out;
}

uint64_t FlightRecorder::recorded() const {
  MutexLock lock(&mu_);
  return recorded_;
}

}  // namespace egp
