// HTTP/1.1 message handling for the serving subsystem: an incremental,
// limit-enforcing request parser and response serialization. Transport
// (sockets, timeouts, threading) lives in http_server.h; this layer is
// pure bytes → message and is unit-tested in isolation.
//
// Scope: the subset of RFC 9112 a JSON API server needs. Content-Length
// bodies only (Transfer-Encoding is answered with 501), no multi-line
// header folding (400, as the RFC now demands), one strict space in the
// request line. Every hard limit maps to the proper status code so
// hostile input degrades into a clean error response, never into
// unbounded buffering.
#ifndef EGP_SERVER_HTTP_H_
#define EGP_SERVER_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace egp {

struct HttpRequest {
  std::string method;   // "GET", "POST", ... (token, upper-case by spec)
  std::string target;   // origin-form, e.g. "/v1/preview?x=1"
  int minor_version = 1;  // HTTP/1.<minor>: 0 or 1
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header with that name, case-insensitively; nullptr if absent.
  const std::string* FindHeader(std::string_view name) const;
  /// Path part of the target (before '?').
  std::string_view Path() const;
  /// Query part (after '?'), or empty.
  std::string_view Query() const;
  /// Whether the connection should stay open after this exchange
  /// (HTTP/1.1 defaults to keep-alive, 1.0 to close; the Connection
  /// header overrides either way).
  bool KeepAlive() const;
};

struct HttpParserLimits {
  /// Request line + headers, including the blank line.
  size_t max_head_bytes = 16 * 1024;
  size_t max_body_bytes = 4 * 1024 * 1024;
};

/// Incremental request parser: feed it bytes as they arrive; it says when
/// a full request is ready. One instance parses a whole keep-alive
/// connection: after Take(), leftover bytes (pipelined requests) carry
/// over into the next parse.
class HttpRequestParser {
 public:
  enum class State { kNeedMore, kComplete, kError };

  explicit HttpRequestParser(const HttpParserLimits& limits = {})
      : limits_(limits) {}

  /// Consumes `data`; returns the parser state. After kComplete, call
  /// Take() before feeding again. After kError, the connection is
  /// poisoned: see error_status() for the response to send before close.
  State Feed(std::string_view data);

  /// Parse again from bytes already buffered (pipelining): equivalent to
  /// Feed("") but explicit at call sites.
  State Continue() { return Feed({}); }

  /// Moves the completed request out and resets for the next one on the
  /// same connection.
  HttpRequest Take();

  /// For kError: the HTTP status code that describes the fault (400
  /// malformed, 413 body too large, 431 head too large, 501
  /// Transfer-Encoding, 505 unsupported version).
  int error_status() const { return error_status_; }
  const std::string& error_message() const { return error_message_; }

  /// True when no bytes of a next request have arrived yet — the clean
  /// point to close an idle keep-alive connection.
  bool AtMessageBoundary() const {
    return state_ == State::kNeedMore && buffer_.empty() && !head_done_;
  }

  /// Wire bytes consumed by the message being parsed (head incl. the
  /// blank line, plus body so far). Read before Take(), which resets it;
  /// feeds RequestTrace::bytes_in.
  size_t message_bytes() const { return message_bytes_; }

 private:
  State Fail(int status, std::string message);
  State ParseHead();

  HttpParserLimits limits_;
  State state_ = State::kNeedMore;
  std::string buffer_;       // unconsumed input
  bool head_done_ = false;   // request line + headers parsed
  size_t body_needed_ = 0;   // Content-Length remaining to buffer
  size_t message_bytes_ = 0;  // consumed bytes of the current message
  HttpRequest request_;
  int error_status_ = 0;
  std::string error_message_;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra headers (name, value); Content-Length/-Type and Connection are
  /// emitted automatically.
  std::vector<std::pair<std::string, std::string>> headers;
  /// Force Connection: close regardless of what the client asked for.
  bool close_connection = false;
};

/// Canonical reason phrase ("OK", "Not Found", ...).
std::string_view HttpStatusReason(int status);

/// True when the comma-separated token list `value` (an RFC 9110 list
/// header value like Connection's) contains `token`, case-insensitively
/// and ignoring optional whitespace around elements. "close, TE"
/// contains "close"; "closet" does not.
bool HeaderListContainsToken(std::string_view value, std::string_view token);

/// The API's uniform error document: {"error":{"status":...,
/// "message":...}} with full JSON escaping. Shared by the transport
/// (parse/timeout errors) and the API layer so clients parse one shape.
std::string JsonErrorBody(int status, std::string_view message);

/// Full response bytes. `keep_alive` reflects the negotiated connection
/// state (response.close_connection overrides it to false).
/// `omit_body` serializes the head only — Content-Length still
/// describes the body, as a HEAD response requires.
std::string SerializeResponse(const HttpResponse& response, bool keep_alive,
                              bool omit_body = false);

}  // namespace egp

#endif  // EGP_SERVER_HTTP_H_
