// Minimal blocking HTTP/1.1 client over the same socket layer the server
// uses. Exists for the subsystem's own consumers — the load generator,
// the latency bench, and the end-to-end tests — not as a general client:
// it speaks exactly the dialect egp_server emits (Content-Length framed
// responses, keep-alive).
#ifndef EGP_SERVER_HTTP_CLIENT_H_
#define EGP_SERVER_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "server/socket.h"

namespace egp {

/// Retry policy for HttpClient::Request. The default (max_attempts 1)
/// keeps the historical fail-fast behavior; callers that want
/// resilience opt in. Independent of the always-on stale-keep-alive
/// reconnect (a pooled connection the server already closed is replayed
/// once transparently — that retry is a correctness fix, not policy).
struct HttpRetryOptions {
  /// Total attempts per Request() call; 1 disables retries. Idempotent
  /// requests (GET/HEAD) retry on any transport error; POST/PUT retry
  /// only when the *connect* failed (the request can't have reached the
  /// server).
  int max_attempts = 1;
  /// Exponential backoff between attempts: base, doubling, capped.
  int base_backoff_ms = 50;
  int max_backoff_ms = 2'000;
  /// Deterministic jitter stream: the same seed replays the same
  /// backoff sequence (tests assert on it).
  uint64_t jitter_seed = 1;
  /// Also retry 503 responses, honoring Retry-After (capped at
  /// max_backoff_ms). Off by default: a shed is a semantic answer.
  bool retry_on_503 = false;
};

struct HttpClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// What the server negotiated; when false the client reconnects before
  /// the next request.
  bool keep_alive = false;

  const std::string* FindHeader(std::string_view name) const;
};

class HttpClient {
 public:
  /// All stall budgets (connect, read, write) in one knob; the client is
  /// a test/bench tool, not a tunable surface.
  HttpClient(std::string host, uint16_t port, int timeout_ms = 10'000)
      : host_(std::move(host)), port_(port), timeout_ms_(timeout_ms) {}

  /// One request/response exchange. Connects lazily, reuses the
  /// connection while the server keeps it alive, reconnects after a
  /// close. An empty `content_type` omits the header.
  Result<HttpClientResponse> Request(std::string_view method,
                                     std::string_view target,
                                     std::string_view body = {},
                                     std::string_view content_type =
                                         "application/json");

  Result<HttpClientResponse> Get(std::string_view target) {
    return Request("GET", target, {}, {});
  }
  Result<HttpClientResponse> Post(std::string_view target,
                                  std::string_view body) {
    return Request("POST", target, body);
  }

  /// Drops the connection (next Request reconnects).
  void Disconnect() { fd_.Reset(); }
  bool connected() const { return fd_.valid(); }

  /// Slow-client simulation (loadgen's --trickle-* flags): when `bytes`
  /// is non-zero, request bytes go out in `bytes`-sized chunks with
  /// `interval_ms` of sleep between chunks. 0 restores normal sends.
  void SetTrickle(size_t bytes, int interval_ms) {
    trickle_bytes_ = bytes;
    trickle_interval_ms_ = interval_ms;
  }

  /// Sends raw bytes on the (possibly newly opened) connection and
  /// reads one response — for tests that need malformed requests. No
  /// retries, no transparent reconnect.
  Result<HttpClientResponse> RawExchange(std::string_view bytes);

  void set_retry_options(const HttpRetryOptions& options) {
    retry_ = options;
    jitter_state_ = options.jitter_seed == 0 ? 1 : options.jitter_seed;
  }
  const HttpRetryOptions& retry_options() const { return retry_; }

  /// Stale-pool reconnects performed (keep-alive connection found dead
  /// on reuse, replayed transparently).
  uint64_t transparent_reconnects() const { return transparent_reconnects_; }
  /// Policy retries performed (per HttpRetryOptions).
  uint64_t retries() const { return retries_; }

 private:
  Status EnsureConnected();
  Status SendBytes(std::string_view bytes);
  /// `*stale_candidate` is set when the failure looked like a dead
  /// keep-alive connection: closed/reset before a single response byte
  /// arrived (never on timeouts or malformed responses).
  Result<HttpClientResponse> ReadResponse(bool* stale_candidate);
  Result<HttpClientResponse> ExchangeOnce(std::string_view bytes,
                                          bool* connect_failure);
  void BackoffSleep(int attempt, int64_t min_wait_ms);

  std::string host_;
  uint16_t port_;
  int timeout_ms_;
  size_t trickle_bytes_ = 0;
  int trickle_interval_ms_ = 0;
  HttpRetryOptions retry_;
  uint64_t jitter_state_ = 1;
  uint64_t transparent_reconnects_ = 0;
  uint64_t retries_ = 0;
  UniqueFd fd_;
  std::string leftover_;  // bytes past the previous response
};

}  // namespace egp

#endif  // EGP_SERVER_HTTP_CLIENT_H_
