#include "server/process_stats.h"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <cstdlib>

#include "common/posix.h"
#include "common/trace.h"

namespace egp {
namespace {

/// Uptime anchor: captured at static initialization, i.e. process start
/// for practical purposes (before main runs).
const int64_t g_start_ns = MonotonicNanos();

uint64_t ReadResidentBytes() {
  const int fd = PosixOpen("/proc/self/statm", O_RDONLY | O_CLOEXEC);
  if (fd < 0) return 0;
  char buf[128];
  const ssize_t n = PosixRead(fd, buf, sizeof(buf) - 1);
  ::close(fd);
  if (n <= 0) return 0;
  buf[n] = '\0';
  // statm: size resident shared text lib data dt (pages).
  char* end = nullptr;
  (void)std::strtoull(buf, &end, 10);  // total program size: skip
  if (end == nullptr) return 0;
  const unsigned long long resident = std::strtoull(end, nullptr, 10);
  const long page = ::sysconf(_SC_PAGESIZE);
  return resident * static_cast<uint64_t>(page > 0 ? page : 4096);
}

uint64_t CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  uint64_t count = 0;
  while (struct dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    ++count;
  }
  ::closedir(dir);
  // The opendir fd itself is in the listing; don't count it.
  return count > 0 ? count - 1 : 0;
}

}  // namespace

ProcessStats ReadProcessStats() {
  ProcessStats stats;
  stats.resident_bytes = ReadResidentBytes();
  stats.open_fds = CountOpenFds();
  stats.uptime_seconds =
      static_cast<double>(MonotonicNanos() - g_start_ns) * 1e-9;
  return stats;
}

}  // namespace egp
